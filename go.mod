module kshape

go 1.22
