package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesSingleDataset(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "-name", "CBF"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"CBF_TRAIN.tsv", "CBF_TEST.tsv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 10 {
			t.Errorf("%s: only %d lines", name, len(lines))
		}
		fields := strings.Split(lines[0], ",")
		if len(fields) != 129 { // label + 128 values
			t.Errorf("%s: %d fields per line, want 129", name, len(fields))
		}
	}
}

func TestRunWritesCBFWorkload(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "-cbf-n", "12", "-cbf-m", "32"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "CBF_n12_m32.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 12 {
		t.Errorf("lines = %d, want 12", len(lines))
	}
}

func TestRunAllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("writing 96 files is slow")
	}
	dir := t.TempDir()
	if err := run([]string{"-dir", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 96 { // 48 datasets × train+test
		t.Errorf("files = %d, want 96", len(entries))
	}
}

func TestRunBadDir(t *testing.T) {
	if err := run([]string{"-dir", "/proc/definitely/not/writable"}); err == nil {
		t.Error("unwritable dir accepted")
	}
}
