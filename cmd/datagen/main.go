// Command datagen materializes the synthetic archive (or the CBF
// scalability workload) as UCR-format files, so the datasets behind the
// experiments can be inspected or fed to other tools.
//
// Usage:
//
//	datagen -dir out/                 # write all 48 archive datasets
//	datagen -dir out/ -name CBF       # one dataset
//	datagen -dir out/ -cbf-n 1000 -cbf-m 128  # CBF workload (single file)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"kshape/internal/cli"
	"kshape/internal/dataset"
	"kshape/internal/ts"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	dir := fs.String("dir", ".", "output directory")
	name := fs.String("name", "", "write only the named archive dataset")
	cbfN := fs.Int("cbf-n", 0, "if > 0, write a CBF workload with this many series instead of the archive")
	cbfM := fs.Int("cbf-m", 128, "CBF series length")
	seed := fs.Int64("seed", 1, "CBF seed")
	var common cli.Common
	common.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.HandleVersion(os.Stderr, "datagen") {
		return nil
	}
	logger, err := common.Logger("datagen", os.Stderr)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	if *cbfN > 0 {
		data := dataset.CBF(*cbfN, *cbfM, *seed)
		path := filepath.Join(*dir, fmt.Sprintf("CBF_n%d_m%d.tsv", *cbfN, *cbfM))
		if err := writeSeries(path, data); err != nil {
			return err
		}
		fmt.Println(path)
		logger.Debug("wrote CBF workload", "path", path, "n", *cbfN, "m", *cbfM, "seed", *seed)
		return nil
	}
	files := 0
	for _, spec := range dataset.ArchiveSpecs() {
		if *name != "" && spec.Name != *name {
			continue
		}
		ds := dataset.Generate(spec)
		trainPath := filepath.Join(*dir, spec.Name+"_TRAIN.tsv")
		testPath := filepath.Join(*dir, spec.Name+"_TEST.tsv")
		if err := writeSeries(trainPath, ds.Train); err != nil {
			return err
		}
		if err := writeSeries(testPath, ds.Test); err != nil {
			return err
		}
		fmt.Println(trainPath)
		fmt.Println(testPath)
		logger.Debug("wrote dataset", "dataset", spec.Name, "train", trainPath, "test", testPath)
		files += 2
	}
	logger.Debug("archive generation complete", "files", files, "dir", *dir)
	return nil
}

func writeSeries(path string, series []ts.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var sb strings.Builder
	for _, s := range series {
		sb.Reset()
		fmt.Fprintf(&sb, "%d", s.Label)
		for _, v := range s.Values {
			fmt.Fprintf(&sb, ",%.6f", v)
		}
		sb.WriteByte('\n')
		if _, err := f.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return nil
}
