package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"kshape/internal/dataset"
	"kshape/internal/dist"
	"kshape/internal/eval"
	"kshape/internal/ts"
)

// readFile loads one generated file or fails the test.
func readFile(t *testing.T, dir, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunDeterministicArchive pins the reproducibility contract: two
// invocations with identical flags must write byte-identical files, since
// every generator derives from fixed per-dataset seeds.
func TestRunDeterministicArchive(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	for _, dir := range []string{dirA, dirB} {
		if err := run([]string{"-dir", dir, "-name", "CBF"}); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"CBF_TRAIN.tsv", "CBF_TEST.tsv"} {
		a, b := readFile(t, dirA, name), readFile(t, dirB, name)
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between two identical runs (%d vs %d bytes)", name, len(a), len(b))
		}
	}
}

// TestRunDeterministicCBFWorkload does the same for the CBF scalability
// workload, and checks that the seed flag actually changes the output.
func TestRunDeterministicCBFWorkload(t *testing.T) {
	dirA, dirB, dirC := t.TempDir(), t.TempDir(), t.TempDir()
	for dir, seed := range map[string]string{dirA: "7", dirB: "7", dirC: "8"} {
		if err := run([]string{"-dir", dir, "-cbf-n", "15", "-cbf-m", "64", "-seed", seed}); err != nil {
			t.Fatal(err)
		}
	}
	const name = "CBF_n15_m64.tsv"
	a, b, c := readFile(t, dirA, name), readFile(t, dirB, name), readFile(t, dirC, name)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different CBF workloads")
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical CBF workloads")
	}
}

// TestGeneratedDataCarriesClassSignal guards against the generator
// emitting label-free noise: 1-NN under ED on the written CBF train/test
// split must beat 3-class chance by a wide margin.
func TestGeneratedDataCarriesClassSignal(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "-name", "CBF"}); err != nil {
		t.Fatal(err)
	}
	load := func(name string) []ts.Series {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		series, err := dataset.ParseUCR(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return series
	}
	train := load("CBF_TRAIN.tsv")
	test := load("CBF_TEST.tsv")
	acc := eval.OneNNAccuracy(dist.EDMeasure{}, train, test)
	if acc < 0.6 {
		t.Errorf("1-NN accuracy %v on generated CBF; chance is 1/3", acc)
	}
}
