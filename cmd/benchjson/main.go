// Command benchjson converts `go test -bench` output into the
// schema-stable JSON report committed as BENCH_kshape.json (see `make
// bench`). It reads the benchmark output from a file argument or stdin
// and writes JSON to -o (default stdout).
//
// Usage:
//
//	go test -bench=. -benchtime=1s -count=5 -run='^$' . > bench.out
//	benchjson -o BENCH_kshape.json bench.out
//
// With -count=N input each benchmark keeps its fastest run only (see
// benchfmt.Parse): background interference only ever slows a run down,
// so the minimum is the least-noisy sample.
//
// Schema (kshape.bench/v1): one object with build/host metadata and one
// entry per benchmark carrying iterations, ns/op, and every additional
// metric the benchmark reported — the "speedup" ratio of the parallel
// variants and the per-op kernel-counter deltas ("fft/op", "sbd/op", …)
// emitted by bench_test.go's benchCounters helper.
//
// The schema itself (types, parser, validation) lives in
// internal/benchfmt, shared with cmd/benchdiff; the aliases below keep
// this command's exported surface stable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"kshape/internal/benchfmt"
)

// Schema is the identifier embedded in every report this tool writes.
const Schema = benchfmt.Schema

// Report is the top-level JSON document.
type Report = benchfmt.Report

// Benchmark is one result line of `go test -bench` output.
type Benchmark = benchfmt.Benchmark

// Parse reads `go test -bench` output and assembles the report.
func Parse(r io.Reader) (*Report, error) { return benchfmt.Parse(r) }

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	outPath := fs.String("o", "", "write the JSON report to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	if fs.NArg() > 1 {
		return fmt.Errorf("at most one input file expected, got %d", fs.NArg())
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	rep, err := Parse(in)
	if err != nil {
		return err
	}
	var out io.Writer = stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
