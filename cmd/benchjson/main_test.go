package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: kshape
cpu: Test CPU @ 2.00GHz
BenchmarkED128-8   	15704728	        76.41 ns/op	       0 B/op	       0 allocs/op
BenchmarkDistanceMatrixSBDParallel-8   	       1	  12345678 ns/op	 123456 B/op	      42 allocs/op	         3.210 speedup	     7140 sbd/op	    14280 fft/op
BenchmarkKShapeRefinementSerial   	       2	   9876543 ns/op
PASS
ok  	kshape	12.345s
`

func TestParseSampleOutput(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Package != "kshape" {
		t.Errorf("header fields = %q %q %q", rep.GOOS, rep.GOARCH, rep.Package)
	}
	if !strings.Contains(rep.CPU, "Test CPU") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(rep.Benchmarks))
	}

	ed := rep.Benchmarks[0]
	if ed.Name != "ED128" || ed.Procs != 8 || ed.Iterations != 15704728 {
		t.Errorf("ED128 parsed as %+v", ed)
	}
	if ed.NsPerOp != 76.41 {
		t.Errorf("ED128 ns/op = %g", ed.NsPerOp)
	}

	par := rep.Benchmarks[1]
	if par.Name != "DistanceMatrixSBDParallel" {
		t.Errorf("name = %q", par.Name)
	}
	if par.Metrics["speedup"] != 3.21 {
		t.Errorf("speedup = %g", par.Metrics["speedup"])
	}
	if par.Metrics["sbd/op"] != 7140 || par.Metrics["fft/op"] != 14280 {
		t.Errorf("counter metrics = %v", par.Metrics)
	}
	if par.Metrics["B/op"] != 123456 {
		t.Errorf("B/op = %g", par.Metrics["B/op"])
	}

	noProcs := rep.Benchmarks[2]
	if noProcs.Name != "KShapeRefinementSerial" || noProcs.Procs != 0 {
		t.Errorf("suffix-less benchmark parsed as %+v", noProcs)
	}
}

// TestParseCollapsesRepeatedRuns covers `go test -count=N` input: each
// benchmark keeps only its fastest run, with that run's sibling metrics,
// and the report stays valid (no duplicate names).
func TestParseCollapsesRepeatedRuns(t *testing.T) {
	const repeated = `goos: linux
pkg: kshape
BenchmarkSBD128-8   	100	     20000 ns/op	    64 B/op	       2 allocs/op
BenchmarkED128-8   	1000	        80.0 ns/op
BenchmarkSBD128-8   	120	     17000 ns/op	    48 B/op	       1 allocs/op
BenchmarkED128-8   	1000	        95.0 ns/op
BenchmarkSBD128-8   	110	     18000 ns/op	    64 B/op	       2 allocs/op
PASS
`
	rep, err := Parse(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(rep.Benchmarks))
	}
	sbd := rep.Benchmarks[0]
	if sbd.Name != "SBD128" || sbd.NsPerOp != 17000 || sbd.Iterations != 120 {
		t.Errorf("fastest SBD128 run not kept: %+v", sbd)
	}
	if sbd.Metrics["B/op"] != 48 || sbd.Metrics["allocs/op"] != 1 {
		t.Errorf("metrics should come from the fastest run, got %v", sbd.Metrics)
	}
	if ed := rep.Benchmarks[1]; ed.Name != "ED128" || ed.NsPerOp != 80 {
		t.Errorf("fastest ED128 run not kept: %+v", ed)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok  kshape 0.1s\n")); err == nil {
		t.Error("input without benchmarks should fail validation")
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	rep := &Report{
		Schema: Schema, GoVersion: "go1.22",
		Benchmarks: []Benchmark{
			{Name: "A", Iterations: 1},
			{Name: "A", Iterations: 1},
		},
	}
	if err := rep.Validate(); err == nil {
		t.Error("duplicate names should fail validation")
	}
}

// TestCommittedReportValidates is the acceptance check for `make bench`:
// the BENCH_kshape.json at the repository root must parse as a valid
// v1 report and contain the serial/parallel benchmark family with its
// speedup and kernel-counter metrics.
func TestCommittedReportValidates(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_kshape.json")
	if err != nil {
		t.Fatalf("BENCH_kshape.json missing (run `make bench`): %v", err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_kshape.json is not valid JSON: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("BENCH_kshape.json invalid: %v", err)
	}
	byName := map[string]Benchmark{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	for _, name := range []string{
		"DistanceMatrixSBDSerial", "DistanceMatrixSBDParallel",
		"KShapeRefinementSerial", "KShapeRefinementParallel",
		"OneNNSerial", "OneNNParallel",
	} {
		b, ok := byName[name]
		if !ok {
			t.Errorf("report missing benchmark %q", name)
			continue
		}
		if strings.HasSuffix(name, "Parallel") {
			if b.Metrics["speedup"] <= 0 {
				t.Errorf("%s: no speedup metric (metrics: %v)", name, b.Metrics)
			}
		}
		if b.Metrics["sbd/op"] <= 0 {
			t.Errorf("%s: no sbd/op kernel-counter metric (metrics: %v)", name, b.Metrics)
		}
	}
}
