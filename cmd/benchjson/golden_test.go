package main

import (
	"encoding/json"
	"strings"
	"testing"

	"kshape/internal/testkit"
)

// goldenBenchText is a fixed `go test -bench` transcript covering the
// header lines, a plain result, a result with allocation metrics, and a
// result carrying the custom speedup / kernel-counter metrics emitted by
// bench_test.go.
const goldenBenchText = `goos: linux
goarch: amd64
pkg: kshape
cpu: Example CPU @ 2.40GHz
BenchmarkSBD-8           	   12345	      9876 ns/op
BenchmarkShapeExtraction-8	     420	   2847193 ns/op	  524288 B/op	      12 allocs/op
BenchmarkDistanceMatrixSBDParallel-8	      64	  18234567 ns/op	       6.21 speedup	     132 fft/op	      66 sbd/op
BenchmarkKShapeCBF
BenchmarkKShapeCBF-8     	      10	 104857600 ns/op
PASS
ok  	kshape	12.345s
`

// TestGoldenBenchJSON pins the exact JSON report benchjson emits for the
// fixed transcript above. Build-dependent fields (go version, module
// version, VCS revision) are overwritten with fixed strings so the golden
// file is reproducible on any toolchain. Regenerate with
// `go test ./cmd/benchjson/ -run Golden -update`.
func TestGoldenBenchJSON(t *testing.T) {
	rep, err := Parse(strings.NewReader(goldenBenchText))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rep.GoVersion = "go1.99.0"
	rep.Version = "(devel)"
	rep.Revision = "0000000000000000000000000000000000000000"

	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	testkit.Golden(t, "benchjson", b.String())
}
