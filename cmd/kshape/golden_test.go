package main

import (
	"bytes"
	"testing"

	"kshape"
	"kshape/internal/testkit"
)

// TestGoldenTrace pins the -trace table layout byte-for-byte: the
// tabwriter column alignment, the millisecond formatting, and the kernel
// counter line are all part of the tool's scrapeable output surface.
// Regenerate with `go test ./cmd/kshape/ -run Golden -update`.
func TestGoldenTrace(t *testing.T) {
	tr := &kshape.RunTrace{
		Method:    "k-Shape",
		TotalNS:   123_456_789,
		Converged: true,
		Iterations: []kshape.IterationStats{
			{Iteration: 1, Inertia: 41.2345, LabelChurn: 37, ClusterSizes: []int{20, 21, 19}, RefineNS: 31_000_000, AssignNS: 8_500_000, Reseeds: 0},
			{Iteration: 2, Inertia: 30.1, LabelChurn: 9, ClusterSizes: []int{22, 18, 20}, RefineNS: 29_250_000, AssignNS: 8_000_000, Reseeds: 1},
			{Iteration: 3, Inertia: 29.8765, LabelChurn: 0, ClusterSizes: []int{22, 18, 20}, RefineNS: 28_000_000, AssignNS: 7_750_000, Reseeds: 0},
		},
	}
	tr.Counters.FFT = 1234
	tr.Counters.IFFT = 1230
	tr.Counters.SBD = 615
	tr.Counters.EigenIterations = 88
	tr.Counters.EigenDecompositions = 9
	tr.Counters.ShapeExtractions = 9
	tr.Counters.Reseeds = 1

	var b bytes.Buffer
	writeTrace(&b, tr)
	testkit.Golden(t, "trace", b.String())
}

// TestGoldenTraceNoCounters pins the "(none)" form emitted when kernel
// counting was disabled and the trace has no iterations (methods without
// a refinement loop).
func TestGoldenTraceNoCounters(t *testing.T) {
	tr := &kshape.RunTrace{Method: "k-AVG+ED", TotalNS: 2_000_000}
	var b bytes.Buffer
	writeTrace(&b, tr)
	testkit.Golden(t, "trace-empty", b.String())
}
