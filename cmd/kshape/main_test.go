package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeToyFile writes a tiny two-class UCR file and returns its path.
func writeToyFile(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	// Two shape classes: a ramp and a spike, repeated with slight variants.
	rows := []string{
		"0,0,1,2,3,4,5,6,7",
		"0,0,1,2,3,4,5,6,8",
		"0,0,1,2,3,4,5,7,7",
		"1,0,0,0,9,9,0,0,0",
		"1,0,0,0,9,8,0,0,0",
		"1,0,0,1,9,9,0,0,0",
	}
	sb.WriteString(strings.Join(rows, "\n"))
	path := filepath.Join(t.TempDir(), "toy.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunClustersFile(t *testing.T) {
	path := writeToyFile(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-k", "2", "-seed", "3", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.HasPrefix(out, "index,cluster,label") {
		t.Errorf("missing CSV header: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 {
		t.Errorf("lines = %d, want header + 6", len(lines))
	}
	if !strings.Contains(stderr.String(), "Rand Index") {
		t.Errorf("labeled input should report Rand Index; stderr: %q", stderr.String())
	}
}

func TestRunWritesOutputFiles(t *testing.T) {
	path := writeToyFile(t)
	dir := t.TempDir()
	outPath := filepath.Join(dir, "assign.csv")
	cenPath := filepath.Join(dir, "centroids.csv")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-k", "2", "-out", outPath, "-centroids", cenPath, path}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Error("stdout should be empty when -out is set")
	}
	data, err := os.ReadFile(outPath)
	if err != nil || !strings.HasPrefix(string(data), "index,cluster,label") {
		t.Errorf("assignments file: %v, %q", err, string(data))
	}
	cen, err := os.ReadFile(cenPath)
	if err != nil || len(strings.Split(strings.TrimSpace(string(cen)), "\n")) != 2 {
		t.Errorf("centroids file: %v, %q", err, string(cen))
	}
}

func TestRunMethodSelection(t *testing.T) {
	path := writeToyFile(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-k", "2", "-method", "PAM+ED", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "PAM+ED") {
		t.Errorf("stderr should name the method: %q", stderr.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeToyFile(t)
	var out, errBuf bytes.Buffer
	cases := [][]string{
		{path},                            // missing -k
		{"-k", "2"},                       // missing file
		{"-k", "2", path, "extra"},        // too many args
		{"-k", "2", "/does/not/exist"},    // unreadable file
		{"-k", "2", "-method", "x", path}, // unknown method
	}
	for _, args := range cases {
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunTraceTable(t *testing.T) {
	path := writeToyFile(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-k", "2", "-seed", "3", "-trace", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	errOut := stderr.String()
	for _, want := range []string{"convergence trace", "inertia", "churn", "refine_ms", "kernel counters:", "sbd="} {
		if !strings.Contains(errOut, want) {
			t.Errorf("-trace output missing %q; stderr:\n%s", want, errOut)
		}
	}
	// One table row per iteration: rows start with the 1-based iteration
	// index, so "1\t" must appear after the header.
	if !strings.Contains(errOut, "iter") {
		t.Errorf("-trace output missing table header; stderr:\n%s", errOut)
	}
}

func TestRunNoTraceByDefault(t *testing.T) {
	path := writeToyFile(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-k", "2", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stderr.String(), "convergence trace") {
		t.Errorf("trace printed without -trace; stderr:\n%s", stderr.String())
	}
}
