package main

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestTelemetrySmoke is the end-to-end check behind `make smoke`: a real
// clustering run with -listen must serve /metrics with every kernel
// counter and phase-latency histograms whose sample counts match the
// run's shape. The scrape happens through telemetryScrapeHook, which
// fires after clustering completes but before the server shuts down, so
// the assertion is deterministic.
func TestTelemetrySmoke(t *testing.T) {
	path := writeToyFile(t)

	var metrics string
	var healthz string
	telemetryScrapeHook = func(baseURL string) {
		metrics = httpGet(t, baseURL+"/metrics")
		healthz = httpGet(t, baseURL+"/healthz")
	}
	defer func() { telemetryScrapeHook = nil }()

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-k", "2", "-seed", "3", "-listen", "127.0.0.1:0", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if metrics == "" {
		t.Fatal("scrape hook never fired")
	}
	if !strings.Contains(stderr.String(), "telemetry server listening") {
		t.Errorf("no listening log record; stderr: %q", stderr.String())
	}
	if !strings.Contains(healthz, `"status":"ok"`) {
		t.Errorf("/healthz = %q", healthz)
	}

	// All nine kernel counters must be exported; the ones a k-Shape run
	// exercises must be nonzero.
	counters := map[string]int64{}
	for _, m := range regexp.MustCompile(`kshape_kernel_ops_total\{kernel="(\w+)"\} (\d+)`).FindAllStringSubmatch(metrics, -1) {
		v, _ := strconv.ParseInt(m[2], 10, 64)
		counters[m[1]] = v
	}
	all := []string{"fft", "ifft", "sbd", "ed", "dtw",
		"eigen_iterations", "eigen_decompositions", "shape_extractions", "reseeds"}
	for _, name := range all {
		if _, ok := counters[name]; !ok {
			t.Errorf("/metrics missing kernel counter %q", name)
		}
	}
	for _, name := range []string{"fft", "ifft", "sbd", "shape_extractions"} {
		if counters[name] == 0 {
			t.Errorf("kernel counter %q is zero after a k-Shape run", name)
		}
	}

	// Phase histograms: at least refine, assign, iteration, and
	// shape_extract must have samples, and the per-iteration phases must
	// agree with each other on the sample count.
	phaseCounts := map[string]int64{}
	for _, m := range regexp.MustCompile(`kshape_phase_duration_seconds_count\{phase="(\w+)"\} (\d+)`).FindAllStringSubmatch(metrics, -1) {
		v, _ := strconv.ParseInt(m[2], 10, 64)
		phaseCounts[m[1]] = v
	}
	withSamples := 0
	for _, c := range phaseCounts {
		if c > 0 {
			withSamples++
		}
	}
	if withSamples < 3 {
		t.Errorf("only %d phase histograms have samples: %v", withSamples, phaseCounts)
	}
	iters := phaseCounts["iteration"]
	if iters < 1 {
		t.Fatalf("iteration histogram has no samples: %v", phaseCounts)
	}
	if phaseCounts["refine"] != iters || phaseCounts["assign"] != iters {
		t.Errorf("per-iteration phase counts disagree: %v", phaseCounts)
	}
	if phaseCounts["shape_extract"] == 0 {
		t.Errorf("shape_extract histogram empty: %v", phaseCounts)
	}

	// Gauges and cluster sizes from the finished run.
	if !strings.Contains(metrics, "kshape_current_iteration") {
		t.Error("/metrics missing current-iteration gauge")
	}
	if !strings.Contains(metrics, `kshape_cluster_size{cluster="0"}`) {
		t.Error("/metrics missing cluster-size gauge")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return string(body)
}
