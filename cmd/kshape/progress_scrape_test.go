package main

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"kshape"
	"kshape/internal/obs"
)

// TestProgressScrapeUnderLoad exercises the live-progress surface while a
// clustering job runs (the race detector covers the interleavings in
// `make test-race`): /metrics must expose parseable kshape_progress_*
// gauges whose sequence number never goes backward, the /progress SSE
// stream must deliver per-iteration JSON snapshots ending in the terminal
// one, and none of it may disturb the run.
func TestProgressScrapeUnderLoad(t *testing.T) {
	pub := obs.NewProgressPublisher()
	prevPub := obs.SetProgressPublisher(pub)
	defer obs.SetProgressPublisher(prevPub)
	srv, err := obs.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Enough series for the run to overlap many scrapes.
	const n, m = 120, 256
	data := make([][]float64, n)
	for i := range data {
		row := make([]float64, m)
		shift := float64(i%7) * 0.1
		for j := range row {
			x := float64(j) / float64(m) * 2 * math.Pi
			switch i % 3 {
			case 0:
				row[j] = math.Sin(x + shift)
			case 1:
				row[j] = math.Sin(2*x + shift)
			default:
				row[j] = math.Abs(math.Sin(x + shift))
			}
		}
		data[i] = row
	}

	// An SSE consumer runs for the whole job and reports every decoded
	// snapshot; it exits on the terminal event.
	type sseOutcome struct {
		events int
		last   obs.Progress
		err    error
	}
	sseDone := make(chan sseOutcome, 1)
	go func() {
		var out sseOutcome
		defer func() { sseDone <- out }()
		resp, err := http.Get(srv.URL() + "/progress")
		if err != nil {
			out.err = err
			return
		}
		defer resp.Body.Close()
		r := bufio.NewReader(resp.Body)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				out.err = err
				return
			}
			line = strings.TrimRight(line, "\n")
			if !strings.HasPrefix(line, "data: ") {
				continue // heartbeats, blank separators
			}
			var p obs.Progress
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
				out.err = err
				return
			}
			if p.Seq <= out.last.Seq {
				t.Errorf("SSE sequence went backward: %d after %d", p.Seq, out.last.Seq)
			}
			out.events++
			out.last = p
			if p.Phase == obs.ProgressPhaseDone {
				return
			}
		}
	}()

	clusterDone := make(chan error, 1)
	go func() {
		_, err := kshape.Cluster(data, 3, kshape.Options{Seed: 1})
		clusterDone <- err
	}()

	seqRe := regexp.MustCompile(`kshape_progress_seq (\d+)`)
	var lastSeq int64
	scrapes, progressScrapes := 0, 0
	checkScrape := func() {
		t.Helper()
		body := httpGet(t, srv.URL()+"/metrics")
		scrapes++
		m := seqRe.FindStringSubmatch(body)
		if m == nil {
			return // no snapshot published yet
		}
		progressScrapes++
		seq, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil || seq < lastSeq {
			t.Fatalf("scrape %d: progress seq %q after %d (err=%v)", scrapes, m[1], lastSeq, err)
		}
		lastSeq = seq
		// The init-phase snapshot has no cluster sizes yet, so that
		// family is asserted on the final scrape instead.
		for _, want := range []string{
			`kshape_progress_info{method="k-Shape"`,
			"kshape_progress_iteration ",
			"kshape_progress_inertia ",
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("scrape %d: missing %q alongside the seq gauge", scrapes, want)
			}
		}
	}

	running := true
	for running {
		select {
		case err := <-clusterDone:
			if err != nil {
				t.Fatal(err)
			}
			running = false
		default:
			checkScrape()
		}
	}
	checkScrape() // quiescent scrape: the terminal snapshot stays up
	if progressScrapes == 0 {
		t.Error("no scrape observed progress gauges")
	}
	body := httpGet(t, srv.URL()+"/metrics")
	if !strings.Contains(body, `phase="done"`) || !strings.Contains(body, "kshape_progress_converged 1") {
		t.Errorf("final scrape lacks the terminal snapshot:\n%s", firstLines(body, 10))
	}
	if !strings.Contains(body, `kshape_progress_cluster_size{cluster="0"}`) {
		t.Error("final scrape lacks the cluster-size gauge family")
	}

	select {
	case out := <-sseDone:
		if out.err != nil {
			t.Fatalf("SSE consumer: %v", out.err)
		}
		if out.events < 2 {
			t.Errorf("SSE delivered %d events; want at least iterating + done", out.events)
		}
		if out.last.Phase != obs.ProgressPhaseDone || !out.last.Converged {
			t.Errorf("SSE terminal event = %+v", out.last)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE consumer never saw the terminal event")
	}
}
