package main

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"kshape"
	"kshape/internal/obs"
)

// TestScrapeUnderLoad hammers the telemetry endpoints while a clustering
// job runs (the race detector covers the interleavings in `make
// test-race`): every /metrics scrape must parse, kernel counters must be
// monotone non-decreasing across scrapes, each histogram's cumulative
// +Inf bucket must account for its reported count (no torn reads), and
// /healthz must answer throughout.
func TestScrapeUnderLoad(t *testing.T) {
	srv, err := obs.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	// A dataset big enough for the run to overlap many scrapes: three
	// sine-ish shape classes with per-series phase jitter.
	const n, m = 120, 256
	data := make([][]float64, n)
	for i := range data {
		class := i % 3
		row := make([]float64, m)
		for j := range row {
			x := float64(j) / float64(m) * 2 * math.Pi
			shift := float64(i%7) * 0.1
			switch class {
			case 0:
				row[j] = math.Sin(x + shift)
			case 1:
				row[j] = math.Sin(2*x + shift)
			default:
				row[j] = math.Abs(math.Sin(x + shift))
			}
		}
		data[i] = row
	}

	done := make(chan error, 1)
	go func() {
		_, err := kshape.Cluster(data, 3, kshape.Options{Seed: 1})
		done <- err
	}()

	counterRe := regexp.MustCompile(`kshape_kernel_ops_total\{kernel="(\w+)"\} (\d+)`)
	scrapes := 0
	lastCounters := map[string]int64{}
	checkScrape := func() {
		t.Helper()
		body := httpGet(t, srv.URL()+"/metrics")
		scrapes++
		for _, match := range counterRe.FindAllStringSubmatch(body, -1) {
			v, err := strconv.ParseInt(match[2], 10, 64)
			if err != nil {
				t.Fatalf("scrape %d: unparseable counter line %q", scrapes, match[0])
			}
			if prev, ok := lastCounters[match[1]]; ok && v < prev {
				t.Fatalf("scrape %d: counter %q went backward: %d -> %d", scrapes, match[1], prev, v)
			}
			lastCounters[match[1]] = v
		}
		checkHistogramConsistency(t, scrapes, body)
		if h := httpGet(t, srv.URL()+"/healthz"); !strings.Contains(h, `"status":"ok"`) {
			t.Fatalf("scrape %d: /healthz = %q", scrapes, h)
		}
	}

	running := true
	for running {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			running = false
		default:
			checkScrape()
		}
	}
	checkScrape() // one quiescent scrape after the run
	if scrapes < 3 {
		t.Logf("only %d scrapes overlapped the run (fast machine); consistency checks still exercised", scrapes)
	}
	if lastCounters["sbd"] == 0 || lastCounters["fft"] == 0 {
		t.Errorf("final counters missing k-Shape kernel activity: %v", lastCounters)
	}
}

// checkHistogramConsistency asserts, per phase histogram in the scrape,
// that the cumulative +Inf bucket accounts for every sample the count
// line reports. Observe increments the bucket before the count and the
// snapshot reads the count before the buckets, so bucket >= count always
// holds for an untorn read; a violation means the scrape tore.
func checkHistogramConsistency(t *testing.T, scrape int, body string) {
	t.Helper()
	infRe := regexp.MustCompile(`kshape_phase_duration_seconds_bucket\{phase="(\w+)",le="\+Inf"\} (\d+)`)
	countRe := regexp.MustCompile(`kshape_phase_duration_seconds_count\{phase="(\w+)"\} (\d+)`)
	inf := map[string]int64{}
	for _, m := range infRe.FindAllStringSubmatch(body, -1) {
		v, _ := strconv.ParseInt(m[2], 10, 64)
		inf[m[1]] = v
	}
	counts := 0
	for _, m := range countRe.FindAllStringSubmatch(body, -1) {
		counts++
		c, _ := strconv.ParseInt(m[2], 10, 64)
		total, ok := inf[m[1]]
		if !ok {
			t.Fatalf("scrape %d: histogram %q has a count but no +Inf bucket", scrape, m[1])
		}
		if total < c {
			t.Fatalf("scrape %d: torn histogram %q: +Inf bucket %d < count %d", scrape, m[1], total, c)
		}
	}
	if counts == 0 {
		t.Fatalf("scrape %d: no phase histograms in scrape:\n%s", scrape, firstLines(body, 10))
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return fmt.Sprint(strings.Join(lines, "\n"))
}
