// Command kshape clusters a UCR-format time-series file from the command
// line.
//
// Usage:
//
//	kshape -k 3 [-method k-Shape] [-seed 1] [-out assignments.csv] data.tsv
//
// The input has one series per line: an integer class label (ignored for
// clustering, used to report the Rand Index when present) followed by the
// values, separated by commas, tabs, or spaces. Output is CSV with one line
// per series: index, assigned cluster, and (when labels exist) the true
// label; a summary with the Rand Index is printed to stderr.
//
// With -trace, a per-iteration convergence table (inertia, label churn,
// empty-cluster reseeds, refinement/assignment wall time, cluster sizes)
// and a kernel-counter summary are printed to stderr after clustering.
//
// With -listen ADDR, the process serves live telemetry while the run
// executes: /metrics (Prometheus text format: kernel counters, phase
// latency histograms, gauges, live progress), /progress (Server-Sent-
// Events stream of per-iteration snapshots), /healthz, /debug/vars, and
// /debug/pprof. With -progress, a live one-line convergence display
// (iteration, inertia, churn, drift, ETA) refreshes on stderr; with
// -dashboard FILE, a self-contained HTML run dashboard (convergence
// curves, phase latencies, execution timeline, counters, build identity)
// is written after the run. Progress and summaries are structured log
// records (-log-level, -log-json); -version prints build information.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"

	"kshape"
	"kshape/internal/cli"
	"kshape/internal/dataset"
	"kshape/internal/eval"
	"kshape/internal/ts"
)

// telemetryScrapeHook, when non-nil, is called with the telemetry
// server's base URL after clustering finishes but before the server
// shuts down. The smoke test uses it to scrape /metrics at a moment
// when all phase samples have landed, without racing the run.
var telemetryScrapeHook func(baseURL string)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "kshape:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("kshape", flag.ContinueOnError)
	fs.SetOutput(stderr)
	k := fs.Int("k", 0, "number of clusters (required)")
	method := fs.String("method", "k-Shape", "clustering method: "+strings.Join(kshape.Methods(), ", "))
	seed := fs.Int64("seed", 1, "random seed for initialization")
	outPath := fs.String("out", "", "write assignments CSV to this file (default stdout)")
	centroidsPath := fs.String("centroids", "", "write centroid series CSV to this file")
	traceRun := fs.Bool("trace", false, "print a per-iteration convergence table and kernel counters to stderr")
	workers := fs.Int("workers", runtime.NumCPU(), "max concurrent workers (1 = serial; results are identical for any value)")
	var common cli.Common
	common.Register(fs)
	common.RegisterListen(fs)
	common.RegisterReport(fs)
	common.RegisterProgress(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.HandleVersion(stderr, "kshape") {
		return nil
	}
	logger, err := common.Logger("kshape", stderr)
	if err != nil {
		return err
	}
	if *k < 1 {
		return fmt.Errorf("-k is required and must be >= 1")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("exactly one input file expected, got %d", fs.NArg())
	}
	srv, stopTelemetry, err := common.StartTelemetry(logger)
	if err != nil {
		return err
	}
	defer stopTelemetry()
	finishReport := common.StartReport("kshape", args, logger)
	stopProgress := common.StartProgress(stderr, logger)
	series, err := dataset.LoadUCRFile(fs.Arg(0))
	if err != nil {
		stopProgress()
		return err
	}
	data := ts.Rows(series)
	res, err := kshape.Cluster(data, *k, kshape.Options{
		Seed: *seed, Method: *method, CollectTrace: *traceRun, Workers: *workers, Logger: logger,
	})
	stopProgress()
	if err != nil {
		return err
	}

	var csv strings.Builder
	csv.WriteString("index,cluster,label\n")
	for i, l := range res.Labels {
		fmt.Fprintf(&csv, "%d,%d,%d\n", i, l, series[i].Label)
	}
	if err := writeFileOr(stdout, *outPath, csv.String()); err != nil {
		return err
	}

	if *centroidsPath != "" && res.Centroids != nil {
		var b strings.Builder
		for j, c := range res.Centroids {
			vals := make([]string, len(c))
			for i, v := range c {
				vals[i] = fmt.Sprintf("%.6f", v)
			}
			fmt.Fprintf(&b, "%d,%s\n", j, strings.Join(vals, ","))
		}
		if err := writeFileOr(nil, *centroidsPath, b.String()); err != nil {
			return err
		}
	}

	logger.Info("clustering complete",
		"method", *method, "series", len(series), "k", *k,
		"iterations", res.Iterations, "converged", res.Converged)
	if *traceRun && res.Trace != nil {
		writeTrace(stderr, res.Trace)
	}
	if hasLabels(series) {
		ri := eval.RandIndex(res.Labels, ts.Labels(series))
		logger.Info("Rand Index vs file labels", "rand_index", fmt.Sprintf("%.4f", ri))
	}
	if err := finishReport(); err != nil {
		return err
	}
	if srv != nil && telemetryScrapeHook != nil {
		telemetryScrapeHook(srv.URL())
	}
	return nil
}

// writeFileOr writes content to path when path is non-empty (creating the
// file and checking both the write and the close), otherwise to fallback.
func writeFileOr(fallback io.Writer, path, content string) error {
	if path == "" {
		_, err := io.WriteString(fallback, content)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(f, content); err != nil {
		_ = f.Close() // surfacing the write error matters more
		return err
	}
	return f.Close()
}

// writeTrace renders the per-iteration convergence table and the kernel
// counters accrued during the run. The table is assembled in memory
// (tabwriter over a strings.Builder cannot fail) and emitted to the
// diagnostic stream in one shot.
func writeTrace(w io.Writer, tr *kshape.RunTrace) {
	var b strings.Builder
	fmt.Fprintf(&b, "\nconvergence trace (%s, %.1f ms total):\n", tr.Method, float64(tr.TotalNS)/1e6)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	//lint:ignore errdrop tabwriter over a strings.Builder cannot fail
	fmt.Fprintln(tw, "iter\tinertia\tchurn\treseeds\trefine_ms\tassign_ms\tcluster_sizes")
	for _, it := range tr.Iterations {
		sizes := make([]string, len(it.ClusterSizes))
		for i, s := range it.ClusterSizes {
			sizes[i] = fmt.Sprintf("%d", s)
		}
		//lint:ignore errdrop tabwriter over a strings.Builder cannot fail
		fmt.Fprintf(tw, "%d\t%.4f\t%d\t%d\t%.2f\t%.2f\t%s\n",
			it.Iteration, it.Inertia, it.LabelChurn, it.Reseeds,
			float64(it.RefineNS)/1e6, float64(it.AssignNS)/1e6,
			strings.Join(sizes, "/"))
	}
	//lint:ignore errdrop tabwriter over a strings.Builder cannot fail
	tw.Flush()

	c := tr.Counters
	pairs := []struct {
		name  string
		value int64
	}{
		{"fft", c.FFT}, {"ifft", c.IFFT}, {"sbd", c.SBD}, {"ed", c.ED},
		{"dtw", c.DTW}, {"eigen_iterations", c.EigenIterations},
		{"eigen_decompositions", c.EigenDecompositions},
		{"shape_extractions", c.ShapeExtractions}, {"reseeds", c.Reseeds},
	}
	b.WriteString("kernel counters:")
	any := false
	for _, p := range pairs {
		if p.value != 0 {
			fmt.Fprintf(&b, " %s=%d", p.name, p.value)
			any = true
		}
	}
	if !any {
		b.WriteString(" (none)")
	}
	b.WriteString("\n")
	cli.Emit(w, "%s", b.String())
}

func hasLabels(series []ts.Series) bool {
	for _, s := range series {
		if s.Label != series[0].Label {
			return true
		}
	}
	return false
}
