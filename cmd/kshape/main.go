// Command kshape clusters a UCR-format time-series file from the command
// line.
//
// Usage:
//
//	kshape -k 3 [-method k-Shape] [-seed 1] [-out assignments.csv] data.tsv
//
// The input has one series per line: an integer class label (ignored for
// clustering, used to report the Rand Index when present) followed by the
// values, separated by commas, tabs, or spaces. Output is CSV with one line
// per series: index, assigned cluster, and (when labels exist) the true
// label; a summary with the Rand Index is printed to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kshape"
	"kshape/internal/dataset"
	"kshape/internal/eval"
	"kshape/internal/ts"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "kshape:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("kshape", flag.ContinueOnError)
	fs.SetOutput(stderr)
	k := fs.Int("k", 0, "number of clusters (required)")
	method := fs.String("method", "k-Shape", "clustering method: "+strings.Join(kshape.Methods(), ", "))
	seed := fs.Int64("seed", 1, "random seed for initialization")
	outPath := fs.String("out", "", "write assignments CSV to this file (default stdout)")
	centroidsPath := fs.String("centroids", "", "write centroid series CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *k < 1 {
		return fmt.Errorf("-k is required and must be >= 1")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("exactly one input file expected, got %d", fs.NArg())
	}
	series, err := dataset.LoadUCRFile(fs.Arg(0))
	if err != nil {
		return err
	}
	data := ts.Rows(series)
	res, err := kshape.Cluster(data, *k, kshape.Options{Seed: *seed, Method: *method})
	if err != nil {
		return err
	}

	var out io.Writer = stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	fmt.Fprintln(out, "index,cluster,label")
	for i, l := range res.Labels {
		fmt.Fprintf(out, "%d,%d,%d\n", i, l, series[i].Label)
	}

	if *centroidsPath != "" && res.Centroids != nil {
		f, err := os.Create(*centroidsPath)
		if err != nil {
			return err
		}
		for j, c := range res.Centroids {
			vals := make([]string, len(c))
			for i, v := range c {
				vals[i] = fmt.Sprintf("%.6f", v)
			}
			fmt.Fprintf(f, "%d,%s\n", j, strings.Join(vals, ","))
		}
		f.Close()
	}

	fmt.Fprintf(stderr, "%s: %d series, k=%d, %d iterations (converged=%v)\n",
		*method, len(series), *k, res.Iterations, res.Converged)
	if hasLabels(series) {
		ri := eval.RandIndex(res.Labels, ts.Labels(series))
		fmt.Fprintf(stderr, "Rand Index vs file labels: %.4f\n", ri)
	}
	return nil
}

func hasLabels(series []ts.Series) bool {
	for _, s := range series {
		if s.Label != series[0].Label {
			return true
		}
	}
	return false
}
