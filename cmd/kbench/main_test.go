package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kshape/internal/obs"
)

func TestRunRequiresExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(nil, &out, &errBuf); err == nil {
		t.Error("no experiment named should error")
	}
}

func TestRunCheapFigures(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-datasets", "1", "fig2", "fig3", "fig4"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 2", "Figure 3", "Figure 4", "Sakoe-Chiba", "shape extraction"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTable3Subset(t *testing.T) {
	if testing.Short() {
		t.Skip("clustering sweep is slow")
	}
	var out, errBuf bytes.Buffer
	err := run([]string{"-datasets", "1", "-runs", "1", "fig7"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 7a") {
		t.Errorf("output missing Figure 7a: %q", out.String())
	}
}

func TestRunWritesSVGFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a Table 2 computation")
	}
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	err := run([]string{"-datasets", "1", "-svgdir", dir, "fig5", "fig6"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig5a.svg", "fig5b.svg", "fig6.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(string(data), "<svg") {
			t.Errorf("%s: not an SVG", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"fig13"}, &out, &errBuf)
	if err == nil {
		t.Fatal("unknown experiment fig13 should error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "fig13") {
		t.Errorf("error does not name the bad experiment: %v", err)
	}
	for _, want := range []string{"table2", "fig12", "kestimation", "all"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error does not list valid name %q: %v", want, err)
		}
	}
}

// TestRunMetricsReport is the acceptance check for -metrics: a reduced
// table2+table3 run must produce a JSON report with per-method kernel
// counters, phase spans, and per-iteration convergence trajectories for the
// iterative clustering methods.
func TestRunMetricsReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full table2+table3 sweep is slow")
	}
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out, errBuf bytes.Buffer
	err := run([]string{"-datasets", "1", "-runs", "1", "-spectral-runs", "1",
		"-metrics", path, "table2", "table3"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report obs.Report
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("metrics file is not valid report JSON: %v", err)
	}

	if report.Tool != "kbench" {
		t.Errorf("tool = %q, want kbench", report.Tool)
	}
	if want := []string{"table2", "table3"}; len(report.Experiments) != 2 ||
		report.Experiments[0] != want[0] || report.Experiments[1] != want[1] {
		t.Errorf("experiments = %v, want %v", report.Experiments, want)
	}

	// Global counters: table2 exercises ED, DTW and the FFT-backed SBD;
	// table3's k-Shape runs drive the eigensolver.
	c := report.Counters
	if c.FFT == 0 || c.SBD == 0 || c.ED == 0 || c.DTW == 0 || c.EigenIterations == 0 {
		t.Errorf("expected nonzero fft/sbd/ed/dtw/eigen counters, got %+v", c)
	}

	// Phase spans for both experiments, with real durations.
	if report.Phases == nil {
		t.Fatal("report has no phase spans")
	}
	for _, name := range []string{"table2", "table3"} {
		sp := report.Phases.Find(name)
		if sp == nil {
			t.Errorf("no phase span %q", name)
			continue
		}
		if sp.DurationNS <= 0 {
			t.Errorf("phase %q has duration %d", name, sp.DurationNS)
		}
	}

	// Per-run records from both score kinds.
	kinds := map[string]bool{}
	perMethod := map[string]obs.Counters{}
	var kshapeRuns []obs.RunRecord
	for _, r := range report.Runs {
		kinds[r.ScoreKind] = true
		agg := perMethod[r.Method]
		perMethod[r.Method] = obs.Counters{
			FFT: agg.FFT + r.Counters.FFT,
			SBD: agg.SBD + r.Counters.SBD,
			ED:  agg.ED + r.Counters.ED,
			DTW: agg.DTW + r.Counters.DTW,
		}
		if r.Method == "k-Shape" {
			kshapeRuns = append(kshapeRuns, r)
		}
	}
	if !kinds["accuracy_1nn"] || !kinds["rand_index"] {
		t.Errorf("score kinds = %v, want both accuracy_1nn and rand_index", kinds)
	}
	if perMethod["SBD"].SBD == 0 {
		t.Error("table2 SBD row recorded no SBD evaluations")
	}
	if perMethod["ED"].ED == 0 {
		t.Error("table2 ED row recorded no ED evaluations")
	}
	if len(kshapeRuns) == 0 {
		t.Fatal("no k-Shape run records from table3")
	}
	for _, r := range kshapeRuns {
		if len(r.Trajectory) == 0 {
			t.Fatalf("k-Shape run on %s has no iteration trajectory", r.Dataset)
		}
		if len(r.Trajectory) != r.Iterations {
			t.Errorf("k-Shape run on %s: %d trajectory entries, %d iterations",
				r.Dataset, len(r.Trajectory), r.Iterations)
		}
		for i, it := range r.Trajectory {
			if it.Iteration != i+1 {
				t.Errorf("trajectory entry %d numbered %d", i, it.Iteration)
			}
			if it.Inertia < 0 {
				t.Errorf("negative inertia %g at iteration %d", it.Inertia, it.Iteration)
			}
		}
		if r.Counters.FFT == 0 {
			t.Errorf("k-Shape run on %s recorded no FFT work", r.Dataset)
		}
	}
}

func TestRunCPUProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.out")
	var out, errBuf bytes.Buffer
	err := run([]string{"-datasets", "1", "-cpuprofile", path, "fig2"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("CPU profile is empty")
	}
}
