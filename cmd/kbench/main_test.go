package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRequiresExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(nil, &out, &errBuf); err == nil {
		t.Error("no experiment named should error")
	}
}

func TestRunCheapFigures(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-datasets", "1", "fig2", "fig3", "fig4"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 2", "Figure 3", "Figure 4", "Sakoe-Chiba", "shape extraction"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTable3Subset(t *testing.T) {
	if testing.Short() {
		t.Skip("clustering sweep is slow")
	}
	var out, errBuf bytes.Buffer
	err := run([]string{"-datasets", "1", "-runs", "1", "fig7"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 7a") {
		t.Errorf("output missing Figure 7a: %q", out.String())
	}
}

func TestRunWritesSVGFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a Table 2 computation")
	}
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	err := run([]string{"-datasets", "1", "-svgdir", dir, "fig5", "fig6"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig5a.svg", "fig5b.svg", "fig6.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(string(data), "<svg") {
			t.Errorf("%s: not an SVG", name)
		}
	}
}
