package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kshape/internal/obs"
)

// TestRunFlightReport is the acceptance check for -report/-timeline: a
// reduced table3 sweep must produce a schema-valid kshape.runreport/v1
// document with multi-worker busy/wait attribution, a sampled runtime
// trajectory, and populated phase histograms, plus a well-formed SVG
// timeline.
func TestRunFlightReport(t *testing.T) {
	if testing.Short() {
		t.Skip("table3 sweep is slow")
	}
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "run.json")
	timelinePath := filepath.Join(dir, "timeline.svg")
	var out, errBuf bytes.Buffer
	// Two datasets: the sweep parallelizes over datasets, so a single
	// dataset would attribute all work to one pool worker.
	err := run([]string{"-datasets", "2", "-runs", "1", "-workers", "4",
		"-report", reportPath, "-timeline", timelinePath, "table3"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report fails schema validation: %v", err)
	}
	if rep.Tool != "kbench" {
		t.Errorf("tool = %q, want kbench", rep.Tool)
	}
	if rep.RunID == "" {
		t.Error("report missing run_id")
	}
	if len(rep.Workers) < 2 {
		t.Errorf("report attributes %d workers, want >= 2 with -workers 4", len(rep.Workers))
	}
	for _, w := range rep.Workers {
		if w.BusyNS+w.WaitNS != w.WallNS {
			t.Errorf("worker %d: busy %d + wait %d != wall %d", w.Worker, w.BusyNS, w.WaitNS, w.WallNS)
		}
	}
	if rep.Pool == nil || rep.Pool.Efficiency <= 0 || rep.Pool.Efficiency > 1 {
		t.Errorf("pool stats implausible: %+v", rep.Pool)
	}
	if len(rep.RuntimeSamples) < 10 {
		t.Errorf("report has %d runtime samples, want >= 10 from the background sampler", len(rep.RuntimeSamples))
	}
	populated := 0
	for _, p := range rep.Phases {
		if p.Count > 0 {
			populated++
		}
	}
	if populated < 3 {
		t.Errorf("only %d phase histograms populated: %+v", populated, rep.Phases)
	}
	if len(rep.Events) == 0 {
		t.Error("report carries no flight-recorder events")
	}

	svg, err := os.ReadFile(timelinePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svg), "<svg") || !strings.Contains(string(svg), "worker 0") {
		t.Errorf("timeline SVG malformed (%d bytes)", len(svg))
	}

	// The recorder must uninstall itself at finish: later runs in this
	// process must not leak events into this report's recorder.
	if obs.ActiveRecorder() != nil {
		t.Error("flight recorder still installed after run returned")
	}
}

// TestRunReportFlagsOffIsNoop: without -report/-timeline no recorder is
// installed and no artifacts appear.
func TestRunReportFlagsOffIsNoop(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-datasets", "1", "fig2"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if obs.ActiveRecorder() != nil {
		t.Error("recorder installed without -report")
	}
}
