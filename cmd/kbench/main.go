// Command kbench regenerates the tables and figures of the k-Shape paper's
// evaluation on the synthetic archive.
//
// Usage:
//
//	kbench [-datasets N] [-runs R] [-spectral-runs S] [-seed X] [-v]
//	       [-metrics out.json] [-cpuprofile cpu.out] [-memprofile mem.out]
//	       [-listen :9090] [-log-level info] [-log-json] [-version]
//	       <experiment>...
//
// Experiments: table2, table3, table4, fig2, fig3, fig4, fig5, fig6, fig7,
// fig8, fig9, fig10, fig11, fig12, ablations, table2x, kestimation,
// datasets, all.
//
// Table 2 and table-3/4 experiments print rows in the paper's layout;
// figure experiments print the series/CSV data behind each plot. See
// EXPERIMENTS.md for the paper-vs-measured comparison.
//
// -metrics writes a structured JSON report of the run: kernel counters (FFT
// transforms, SBD/ED/DTW evaluations, eigensolver iterations), hierarchical
// phase timings, and one record per (method, dataset) unit of work,
// including per-iteration inertia/churn trajectories for the iterative
// clustering methods. -cpuprofile/-memprofile capture runtime/pprof
// profiles of the same run.
//
// -listen ADDR serves live telemetry while the experiments execute:
// /metrics (Prometheus text format, including live-progress gauges),
// /progress (Server-Sent-Events per-iteration snapshots), /healthz,
// /debug/vars, and /debug/pprof — useful for watching kernel-counter
// rates and phase latency histograms during a long sweep. -progress
// renders a live convergence line on stderr; -dashboard FILE writes a
// self-contained HTML run dashboard after the sweep. Progress output is
// structured (-v enables it; -log-json switches to JSON lines).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"kshape/internal/cli"
	"kshape/internal/experiments"
	"kshape/internal/obs"
	"kshape/internal/plot"
)

// experimentNames lists every runnable experiment, in the order of the
// paper's presentation. "all" expands to the tables and figures (not the
// auxiliary kestimation/datasets reports), as before.
var experimentNames = []string{
	"table2", "table3", "table4",
	"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12",
	"ablations", "table2x", "kestimation", "datasets",
}

var allExperiments = []string{
	"table2", "table3", "table4", "fig2", "fig3", "fig4",
	"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
	"ablations", "table2x",
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "kbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("kbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nDatasets := fs.Int("datasets", 48, "number of archive datasets to use (1-48)")
	runs := fs.Int("runs", 5, "random restarts for partitional methods (paper: 10)")
	spectralRuns := fs.Int("spectral-runs", 10, "random restarts for spectral methods (paper: 100)")
	seed := fs.Int64("seed", 1, "base random seed")
	verbose := fs.Bool("v", false, "log one structured progress record per completed unit of work to stderr")
	svgDir := fs.String("svgdir", "", "also write the scatter/rank/runtime figures as SVG files into this directory")
	metricsPath := fs.String("metrics", "", "write a JSON metrics report (kernel counters, phase timings, per-run records) to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a runtime/pprof heap profile to this file at exit")
	workers := fs.Int("workers", runtime.NumCPU(), "max concurrent dataset workers per sweep (1 = serial; results are identical for any value; ignored with -metrics, which runs serially so counter deltas stay attributable to one run)")
	var common cli.Common
	common.Register(fs)
	common.RegisterListen(fs)
	common.RegisterReport(fs)
	common.RegisterProgress(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.HandleVersion(stderr, "kbench") {
		return nil
	}
	logger, err := common.Logger("kbench", stderr)
	if err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no experiment named; choose from: %s, all", strings.Join(experimentNames, " "))
	}
	// -metrics forces serial sweeps for counter attribution; warn when the
	// user explicitly asked for parallelism that will be ignored.
	workersSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})
	if *metricsPath != "" && workersSet && *workers > 1 {
		logger.Warn("-metrics runs dataset sweeps serially so per-run counter deltas stay attributable; explicit -workers is ignored",
			"workers", *workers)
	}

	cfg := experiments.ReducedConfig(*nDatasets)
	cfg.Runs = *runs
	cfg.SpectralRuns = *spectralRuns
	cfg.Seed = *seed
	cfg.Workers = *workers
	if *verbose {
		cfg.Logger = logger
	}

	_, stopTelemetry, err := common.StartTelemetry(logger)
	if err != nil {
		return err
	}
	defer stopTelemetry()
	finishReport := common.StartReport("kbench", args, logger)
	stopProgress := common.StartProgress(stderr, logger)
	defer stopProgress()

	valid := map[string]bool{}
	for _, e := range experimentNames {
		valid[e] = true
	}
	want := map[string]bool{}
	for _, a := range fs.Args() {
		if a == "all" {
			for _, e := range allExperiments {
				want[e] = true
			}
			continue
		}
		if !valid[a] {
			return fmt.Errorf("unknown experiment %q; valid experiments: %s, all", a, strings.Join(experimentNames, " "))
		}
		want[a] = true
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	// With -metrics, enable the kernel counters for the duration of the
	// run and collect per-run records plus a phase-span trace.
	var collector *obs.Collector
	var trace *obs.Trace
	var countersBefore obs.Counters
	if *metricsPath != "" {
		collector = obs.NewCollector()
		cfg.Metrics = collector
		prev := obs.SetEnabled(true)
		defer obs.SetEnabled(prev)
		countersBefore = obs.ReadCounters()
		trace = obs.NewTrace("kbench")
	}
	// phase wraps one experiment's computation in a trace span and
	// propagates the write error of any report the body renders.
	phase := func(name string, fn func() error) error {
		if trace == nil {
			return fn()
		}
		sp := trace.Root().Child(name)
		err := fn()
		sp.End()
		return err
	}

	// Experiments share intermediate results: Table 2 feeds figs 5-6,
	// Tables 3-4 feed figs 7-9.
	var t2 *experiments.Table2Result
	needT2 := want["table2"] || want["fig5"] || want["fig6"]
	var t3 *experiments.Table3Result
	needT3 := want["table3"] || want["fig7"] || want["fig8"] || want["fig9"]
	var t4 *experiments.Table4Result
	needT4 := want["table4"] || want["fig9"]

	section := func(name string) {
		cli.Emit(stdout, "\n==== %s ====\n", name)
	}
	writeSVG := func(name string, data []byte) {
		if *svgDir == "" {
			return
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			logger.Warn("svgdir", "error", err)
			return
		}
		path := filepath.Join(*svgDir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			logger.Warn("svg write failed", "error", err)
			return
		}
		logger.Info("wrote figure", "path", path)
	}
	sw := obs.NewStopwatch()

	if needT2 {
		if err := phase("table2", func() error {
			r := experiments.Table2(cfg)
			t2 = &r
			return nil
		}); err != nil {
			return err
		}
	}
	if needT3 {
		if err := phase("table3", func() error {
			r := experiments.Table3(cfg)
			t3 = &r
			return nil
		}); err != nil {
			return err
		}
	}
	if needT4 {
		if err := phase("table4", func() error {
			r := experiments.Table4(cfg)
			t4 = &r
			return nil
		}); err != nil {
			return err
		}
	}

	if want["table2"] {
		section("Table 2")
		if err := experiments.WriteTable2(stdout, *t2); err != nil {
			return err
		}
	}
	if want["table3"] {
		section("Table 3")
		if err := experiments.WriteClusterTable(stdout, "Table 3: k-means variants vs k-AVG+ED (Rand Index)", t3.Baseline, t3.Rows, true); err != nil {
			return err
		}
	}
	if want["table4"] {
		section("Table 4")
		if err := experiments.WriteClusterTable(stdout, "Table 4: non-scalable methods vs k-AVG+ED (Rand Index)", t4.Baseline, t4.Rows, false); err != nil {
			return err
		}
	}
	if want["fig2"] {
		section("Figure 2")
		if err := phase("fig2", func() error { return experiments.WriteFig2(stdout, experiments.Fig2(cfg)) }); err != nil {
			return err
		}
	}
	if want["fig3"] {
		section("Figure 3")
		if err := phase("fig3", func() error { return experiments.WriteFig3(stdout, experiments.Fig3(cfg)) }); err != nil {
			return err
		}
	}
	if want["fig4"] {
		section("Figure 4")
		if err := phase("fig4", func() error { return experiments.WriteFig4(stdout, experiments.Fig4(cfg)) }); err != nil {
			return err
		}
	}
	if want["fig5"] {
		section("Figure 5")
		if err := phase("fig5", func() error {
			f5 := experiments.Fig5(cfg, *t2)
			if err := experiments.WriteScatter(stdout, "Figure 5a: SBD vs ED (1-NN accuracy)", "ED", "SBD", f5.Names, f5.ED, f5.SBD); err != nil {
				return err
			}
			if err := experiments.WriteScatter(stdout, "Figure 5b: SBD vs DTW (1-NN accuracy)", "DTW", "SBD", f5.Names, f5.DTW, f5.SBD); err != nil {
				return err
			}
			writeSVG("fig5a.svg", plot.Scatter("SBD vs ED (1-NN accuracy)", "ED", "SBD", f5.ED, f5.SBD, 0.3, 1.0))
			writeSVG("fig5b.svg", plot.Scatter("SBD vs DTW (1-NN accuracy)", "DTW", "SBD", f5.DTW, f5.SBD, 0.3, 1.0))
			return nil
		}); err != nil {
			return err
		}
	}
	if want["fig6"] {
		section("Figure 6")
		if err := phase("fig6", func() error {
			f6 := experiments.Fig6(cfg, *t2)
			if err := experiments.WriteRanks(stdout, "Figure 6: distance-measure average ranks (Friedman + Nemenyi)", f6); err != nil {
				return err
			}
			writeSVG("fig6.svg", plot.CDRanks("Distance-measure ranks", f6.Names, f6.AvgRanks, f6.CD, f6.Groups))
			return nil
		}); err != nil {
			return err
		}
	}
	if want["fig7"] {
		section("Figure 7")
		if err := phase("fig7", func() error {
			f7 := experiments.Fig7(cfg, *t3)
			if err := experiments.WriteScatter(stdout, "Figure 7a: k-Shape vs KSC (Rand Index)", "KSC", "k-Shape", f7.Names, f7.KSC, f7.KShape); err != nil {
				return err
			}
			if err := experiments.WriteScatter(stdout, "Figure 7b: k-Shape vs k-DBA (Rand Index)", "k-DBA", "k-Shape", f7.Names, f7.KDBA, f7.KShape); err != nil {
				return err
			}
			writeSVG("fig7a.svg", plot.Scatter("k-Shape vs KSC (Rand Index)", "KSC", "k-Shape", f7.KSC, f7.KShape, 0.3, 1.0))
			writeSVG("fig7b.svg", plot.Scatter("k-Shape vs k-DBA (Rand Index)", "k-DBA", "k-Shape", f7.KDBA, f7.KShape, 0.3, 1.0))
			return nil
		}); err != nil {
			return err
		}
	}
	if want["fig8"] {
		section("Figure 8")
		if err := phase("fig8", func() error {
			f8 := experiments.Fig8(cfg, *t3)
			if err := experiments.WriteRanks(stdout, "Figure 8: k-means-variant average ranks (Friedman + Nemenyi)", f8); err != nil {
				return err
			}
			writeSVG("fig8.svg", plot.CDRanks("k-means-variant ranks", f8.Names, f8.AvgRanks, f8.CD, f8.Groups))
			return nil
		}); err != nil {
			return err
		}
	}
	if want["fig9"] {
		section("Figure 9")
		if err := phase("fig9", func() error {
			f9 := experiments.Fig9(cfg, *t3, *t4)
			if err := experiments.WriteRanks(stdout, "Figure 9: methods beating k-AVG+ED, average ranks (Friedman + Nemenyi)", f9); err != nil {
				return err
			}
			writeSVG("fig9.svg", plot.CDRanks("Methods beating k-AVG+ED", f9.Names, f9.AvgRanks, f9.CD, f9.Groups))
			return nil
		}); err != nil {
			return err
		}
	}
	if want["fig10"] {
		section("Figure 10")
		if err := phase("fig10", func() error {
			return experiments.WriteAppendixA(stdout, experiments.AppendixA(cfg, experiments.NormOptimalScaling))
		}); err != nil {
			return err
		}
	}
	if want["fig11"] {
		section("Figure 11")
		if err := phase("fig11", func() error {
			if err := experiments.WriteAppendixA(stdout, experiments.AppendixA(cfg, experiments.NormValues01)); err != nil {
				return err
			}
			return experiments.WriteAppendixA(stdout, experiments.AppendixA(cfg, experiments.NormZScore))
		}); err != nil {
			return err
		}
	}
	if want["fig12"] {
		section("Figure 12")
		if err := phase("fig12", func() error {
			f12 := experiments.Fig12(cfg)
			if err := experiments.WriteFig12(stdout, f12); err != nil {
				return err
			}
			if len(f12.VaryN) > 0 {
				xs := make([]float64, len(f12.VaryN))
				kshapeS := make([]float64, len(f12.VaryN))
				kavgS := make([]float64, len(f12.VaryN))
				for i, p := range f12.VaryN {
					xs[i] = float64(p.N)
					kshapeS[i] = p.KShapeSeconds
					kavgS[i] = p.KAvgEDSeconds
				}
				writeSVG("fig12a.svg", plot.Lines("Runtime vs number of series (CBF)", "n", "seconds", xs,
					map[string][]float64{"k-Shape": kshapeS, "k-AVG+ED": kavgS}))
			}
			if len(f12.VaryM) > 0 {
				xs := make([]float64, len(f12.VaryM))
				kshapeS := make([]float64, len(f12.VaryM))
				kavgS := make([]float64, len(f12.VaryM))
				for i, p := range f12.VaryM {
					xs[i] = float64(p.M)
					kshapeS[i] = p.KShapeSeconds
					kavgS[i] = p.KAvgEDSeconds
				}
				writeSVG("fig12b.svg", plot.Lines("Runtime vs series length (CBF)", "m", "seconds", xs,
					map[string][]float64{"k-Shape": kshapeS, "k-AVG+ED": kavgS}))
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if want["ablations"] {
		section("Ablations")
		if err := phase("ablations", func() error {
			ab := experiments.Ablations(cfg)
			return experiments.WriteClusterTable(stdout,
				"Design-choice ablations vs full k-Shape (Rand Index)", ab.Rows[0], ab.Rows, true)
		}); err != nil {
			return err
		}
	}
	if want["table2x"] {
		section("Table 2 extended")
		if err := phase("table2x", func() error {
			return experiments.WriteTable2(stdout, experiments.Table2Extended(cfg))
		}); err != nil {
			return err
		}
	}
	if want["kestimation"] {
		section("k estimation")
		if err := phase("kestimation", func() error {
			return experiments.WriteKEstimation(stdout, experiments.KEstimation(cfg))
		}); err != nil {
			return err
		}
	}
	if want["datasets"] {
		section("Datasets")
		if err := phase("datasets", func() error {
			return experiments.WriteDatasetInventory(stdout, experiments.Inventory(cfg))
		}); err != nil {
			return err
		}
	}

	if *metricsPath != "" {
		names := make([]string, 0, len(want))
		for e := range want {
			names = append(names, e)
		}
		sort.Strings(names)
		report := collector.BuildReport("kbench", args, names,
			obs.ReadCounters().Sub(countersBefore), trace.Finish())
		f, err := os.Create(*metricsPath)
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		if err := report.WriteJSON(f); err != nil {
			_ = f.Close() // surfacing the write error matters more
			return fmt.Errorf("metrics: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		logger.Info("wrote metrics report", "path", *metricsPath)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			_ = f.Close() // surfacing the write error matters more
			return fmt.Errorf("memprofile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	stopProgress()
	if err := finishReport(); err != nil {
		return err
	}
	logger.Info("kbench finished", "seconds", sw.Seconds())
	return nil
}
