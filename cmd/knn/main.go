// Command knn runs 1-nearest-neighbor time-series classification — the
// protocol behind the paper's distance-measure evaluation (Table 2) — on
// UCR-format files.
//
// Usage:
//
//	knn [-measure SBD] [-out predictions.csv] train.tsv test.tsv
//
// Each input line is an integer label followed by the series values
// (comma, tab, or space separated). The tool prints per-query predictions
// as CSV and the overall accuracy (when the test file carries labels) to
// stderr.
//
// With -listen ADDR, the process serves live telemetry while the
// classification runs: /metrics (Prometheus text format: kernel
// counters, phase latency histograms), /healthz, /debug/vars, and
// /debug/pprof — the same scrape surface as kshape and kbench.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"kshape"
	"kshape/internal/cli"
	"kshape/internal/dataset"
	"kshape/internal/ts"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "knn:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("knn", flag.ContinueOnError)
	fs.SetOutput(stderr)
	measure := fs.String("measure", "SBD", "distance measure: "+strings.Join(kshape.Measures(), ", "))
	outPath := fs.String("out", "", "write predictions CSV to this file (default stdout)")
	workers := fs.Int("workers", runtime.NumCPU(), "max concurrent workers (1 = serial; results are identical for any value)")
	var common cli.Common
	common.Register(fs)
	common.RegisterListen(fs)
	common.RegisterReport(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.HandleVersion(stderr, "knn") {
		return nil
	}
	logger, err := common.Logger("knn", stderr)
	if err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("expected train and test files, got %d arguments", fs.NArg())
	}
	_, stopTelemetry, err := common.StartTelemetry(logger)
	if err != nil {
		return err
	}
	defer stopTelemetry()
	finishReport := common.StartReport("knn", args, logger)
	train, err := dataset.LoadUCRFile(fs.Arg(0))
	if err != nil {
		return err
	}
	test, err := dataset.LoadUCRFile(fs.Arg(1))
	if err != nil {
		return err
	}
	if train[0].Len() != test[0].Len() {
		return fmt.Errorf("train length %d != test length %d", train[0].Len(), test[0].Len())
	}
	pred, err := kshape.Classify1NNWorkers(ts.Rows(train), ts.Labels(train), ts.Rows(test), *measure, false, *workers)
	if err != nil {
		return err
	}

	var csv strings.Builder
	csv.WriteString("index,predicted,label\n")
	correct := 0
	for i, p := range pred {
		fmt.Fprintf(&csv, "%d,%d,%d\n", i, p, test[i].Label)
		if p == test[i].Label {
			correct++
		}
	}
	if err := writeFileOr(stdout, *outPath, csv.String()); err != nil {
		return err
	}
	logger.Info("1-NN classification complete",
		"measure", *measure, "correct", correct, "queries", len(test),
		"accuracy", fmt.Sprintf("%.4f", float64(correct)/float64(len(test))))
	return finishReport()
}

// writeFileOr writes content to path when path is non-empty (creating the
// file and checking both the write and the close), otherwise to fallback.
func writeFileOr(fallback io.Writer, path, content string) error {
	if path == "" {
		_, err := io.WriteString(fallback, content)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(f, content); err != nil {
		_ = f.Close() // surfacing the write error matters more
		return err
	}
	return f.Close()
}
