package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFiles(t *testing.T) (train, test string) {
	t.Helper()
	dir := t.TempDir()
	train = filepath.Join(dir, "train.csv")
	test = filepath.Join(dir, "test.csv")
	trainRows := []string{
		"0,0,1,2,3,4,5,6,7",
		"0,0,1,2,3,4,5,6,8",
		"1,0,0,0,9,9,0,0,0",
		"1,0,0,0,9,8,0,0,0",
	}
	testRows := []string{
		"0,0,1,2,3,4,5,7,8",
		"1,0,0,1,9,9,0,0,0",
	}
	if err := os.WriteFile(train, []byte(strings.Join(trainRows, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(test, []byte(strings.Join(testRows, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestRunClassifies(t *testing.T) {
	train, test := writeFiles(t)
	for _, measure := range []string{"ED", "SBD", "cDTW5"} {
		var stdout, stderr bytes.Buffer
		if err := run([]string{"-measure", measure, train, test}, &stdout, &stderr); err != nil {
			t.Fatalf("%s: %v", measure, err)
		}
		if !strings.Contains(stderr.String(), "accuracy=1.0000") {
			t.Errorf("%s: expected perfect accuracy on separable toy data; stderr: %q",
				measure, stderr.String())
		}
		if !strings.HasPrefix(stdout.String(), "index,predicted,label") {
			t.Errorf("missing CSV header")
		}
	}
}

func TestRunWritesFile(t *testing.T) {
	train, test := writeFiles(t)
	out := filepath.Join(t.TempDir(), "pred.csv")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-out", out, train, test}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil || !strings.Contains(string(data), "index,predicted") {
		t.Errorf("predictions file: %v %q", err, string(data))
	}
}

func TestRunErrors(t *testing.T) {
	train, test := writeFiles(t)
	var out, errBuf bytes.Buffer
	for _, args := range [][]string{
		{train},                        // missing test file
		{"-measure", "x", train, test}, // unknown measure
		{"/missing", test},             // unreadable train
		{train, "/missing"},            // unreadable test
	} {
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
