package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kshape/internal/lint"
)

// seededModule is a standalone module containing exactly one violation
// per analyzer; the test asserts each check fires with its stable ID.
const seededModule = `package main

import (
	"fmt"
	"math/rand"
	"os"
)

func main() {
	x, y := 1.0, 2.0
	if x == y {
		fmt.Println("equal")
	}
	_ = rand.Intn(10)
	go fmt.Println("spawned")
	m := map[string]int{"a": 1}
	for k := range m {
		fmt.Fprintln(os.Stdout, k)
	}
	f, _ := os.Create("out.txt")
	f.Close()
}
`

// cleanModule has none of the banned constructs.
const cleanModule = `package main

import "fmt"

func main() {
	fmt.Println("nothing to see")
}
`

func writeModule(t *testing.T, source string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixturemod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(source), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSeededViolationsAllChecksFire(t *testing.T) {
	dir := writeModule(t, seededModule)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, check := range []string{"floatcmp", "detrand", "goroutine", "maporder", "errdrop"} {
		if !strings.Contains(out, "["+check+"]") {
			t.Errorf("seeded violation for %q not reported; output:\n%s", check, out)
		}
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("missing findings summary on stderr: %q", stderr.String())
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, seededModule)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array of diagnostics: %v\n%s", err, stdout.String())
	}
	seen := map[string]bool{}
	for _, d := range diags {
		seen[d.Check] = true
		if d.Position.Filename == "" || d.Position.Line == 0 || d.Message == "" {
			t.Errorf("diagnostic missing position or message: %+v", d)
		}
	}
	for _, check := range []string{"floatcmp", "detrand", "goroutine", "maporder", "errdrop"} {
		if !seen[check] {
			t.Errorf("JSON output missing check %q", check)
		}
	}
}

func TestCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, cleanModule)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run should print nothing, got %q", stdout.String())
	}
}

func TestCleanModuleJSONEmitsEmptyArray(t *testing.T) {
	dir := writeModule(t, cleanModule)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json run = %q, want []", got)
	}
}

func TestChecksFlagRestrictsAnalyzers(t *testing.T) {
	dir := writeModule(t, seededModule)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "floatcmp", "-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	out := stdout.String()
	if !strings.Contains(out, "[floatcmp]") {
		t.Error("-checks floatcmp did not report the seeded float comparison")
	}
	for _, other := range []string{"detrand", "goroutine", "maporder", "errdrop"} {
		if strings.Contains(out, "["+other+"]") {
			t.Errorf("-checks floatcmp also ran %q", other)
		}
	}
}

func TestDisableFlag(t *testing.T) {
	dir := writeModule(t, seededModule)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-disable", "errdrop,maporder", "-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	out := stdout.String()
	if strings.Contains(out, "[errdrop]") || strings.Contains(out, "[maporder]") {
		t.Errorf("disabled checks still reported:\n%s", out)
	}
}

func TestUnknownCheckIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "nosuch", "."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown check") {
		t.Errorf("stderr = %q, want unknown-check message", stderr.String())
	}
}

func TestListPrintsRegistry(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %q", a.Name)
		}
	}
}

// interprocModule seeds one violation for each interprocedural
// analyzer: an allocating //kshape:hotpath function, a plain read of an
// atomically accessed variable, and a stale suppression directive.
const interprocModule = `package main

import "sync/atomic"

var count int64

//kshape:hotpath
func hot(n int) []float64 {
	return make([]float64, n)
}

func bump() { atomic.AddInt64(&count, 1) }

func read() int64 {
	//lint:ignore floatcmp this comparison was rewritten long ago
	return count
}

func main() {
	_ = hot(3)
	bump()
	_ = read()
}
`

func TestInterprocChecksFire(t *testing.T) {
	dir := writeModule(t, interprocModule)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-checks", "hotpath,atomicinv,ignoredrift", "-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, check := range []string{"hotpath", "atomicinv", "ignoredrift"} {
		if !strings.Contains(out, "["+check+"]") {
			t.Errorf("seeded violation for %q not reported; output:\n%s", check, out)
		}
	}
}

func TestDiffPrintsPatchWithoutWriting(t *testing.T) {
	dir := writeModule(t, interprocModule)
	before, err := os.ReadFile(filepath.Join(dir, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-diff", "-checks", "ignoredrift", "-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	patch := stdout.String()
	for _, frag := range []string{
		"--- a/main.go",
		"+++ b/main.go",
		"-\t//lint:ignore floatcmp this comparison was rewritten long ago",
	} {
		if !strings.Contains(patch, frag) {
			t.Errorf("patch missing %q:\n%s", frag, patch)
		}
	}
	if !strings.Contains(stderr.String(), "[ignoredrift]") {
		t.Errorf("findings should move to stderr under -diff, got %q", stderr.String())
	}
	after, err := os.ReadFile(filepath.Join(dir, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("-diff must be a dry run; main.go was modified")
	}
}

func TestDiffImpliesIgnoreDrift(t *testing.T) {
	// -diff with a selection that excludes ignoredrift still appends it,
	// so the patch is never silently empty.
	dir := writeModule(t, interprocModule)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-diff", "-checks", "floatcmp", "-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "--- a/main.go") {
		t.Errorf("-diff -checks floatcmp should still render the stale-directive patch, got %q", stdout.String())
	}
}

func TestDiffConflictsWithJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-diff", "-json", "."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Errorf("stderr = %q, want mutual-exclusion message", stderr.String())
	}
}

func TestDiffCleanModuleEmpty(t *testing.T) {
	dir := writeModule(t, cleanModule)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-diff", "-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean -diff run should print no patch, got %q", stdout.String())
	}
}

func TestSuppressionHonoredEndToEnd(t *testing.T) {
	suppressed := strings.Replace(seededModule,
		"\tif x == y {",
		"\t//lint:ignore floatcmp seeded fixture keeps the comparison on purpose\n\tif x == y {", 1)
	dir := writeModule(t, suppressed)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "floatcmp", "-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0 after suppression; output:\n%s", code, stdout.String())
	}
}
