// Command kshapelint runs the repo's static-analysis suite
// (internal/lint): stdlib-only go/ast + go/types analyzers enforcing the
// numerical, determinism, and concurrency invariants the paper's results
// depend on. It loads and type-checks every package matched by the
// argument patterns and exits nonzero when any analyzer reports an
// unsuppressed diagnostic.
//
// Usage:
//
//	kshapelint ./...                      # everything, text output
//	kshapelint -json ./...                # machine-readable findings
//	kshapelint -checks floatcmp ./...     # one analyzer only
//	kshapelint -disable errdrop ./...     # all but one
//	kshapelint -diff ./...                # stale-directive removals as a unified diff
//	kshapelint -list                      # print check IDs and exit
//
// -diff is a dry run: the patch deleting stale //lint:ignore directives
// goes to stdout (findings move to stderr); no file is ever written.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"go/token"
	"io"
	"os"

	"kshape/internal/cli"
	"kshape/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kshapelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	diffOut := fs.Bool("diff", false, "print a unified diff removing stale //lint:ignore directives (dry run, implies -checks ignoredrift)")
	checks := fs.String("checks", "all", "comma-separated check IDs to enable (default all)")
	disable := fs.String("disable", "", "comma-separated check IDs to disable")
	list := fs.Bool("list", false, "print the registered checks and exit")
	dir := fs.String("C", ".", "module directory to analyze (passed to go list)")
	var common cli.Common
	common.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if common.HandleVersion(stderr, "kshapelint") {
		return 0
	}
	if *list {
		for _, a := range lint.Analyzers() {
			cli.Emit(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.Select(*checks, *disable)
	if err != nil {
		cli.Emit(stderr, "kshapelint: %v\n", err)
		return 2
	}
	if *diffOut {
		if *jsonOut {
			cli.Emit(stderr, "kshapelint: -diff and -json are mutually exclusive\n")
			return 2
		}
		found := false
		for _, a := range analyzers {
			if a == lint.IgnoreDriftAnalyzer {
				found = true
			}
		}
		if !found {
			analyzers = append(analyzers, lint.IgnoreDriftAnalyzer)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := lint.Load(fset, *dir, patterns)
	if err != nil {
		cli.Emit(stderr, "kshapelint: %v\n", err)
		return 2
	}
	// One Program spans every package: the call graph, function
	// summaries, and atomic-access facts are built once and shared by
	// all interprocedural analyzer runs.
	prog := lint.NewProgram(fset, pkgs)
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		pass := pkg.Pass(fset)
		pass.Prog = prog
		diags = append(diags, pass.Run(analyzers)...)
	}

	if *diffOut {
		patch, err := lint.StaleIgnoreDiff(diags, *dir)
		if err != nil {
			cli.Emit(stderr, "kshapelint: %v\n", err)
			return 2
		}
		cli.Emit(stdout, "%s", patch)
		for _, d := range diags {
			cli.Emit(stderr, "%s\n", d)
		}
		if len(diags) > 0 {
			cli.Emit(stderr, "kshapelint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
			return 1
		}
		return 0
	}
	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{} // emit [] rather than null
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			cli.Emit(stderr, "kshapelint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			cli.Emit(stdout, "%s\n", d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			cli.Emit(stderr, "kshapelint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}
