package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kshape/internal/benchfmt"
)

// writeReport marshals a minimal valid kshape.bench/v1 report to a temp
// file and returns its path.
func writeReport(t *testing.T, name string, benchNSByName map[string]float64) string {
	t.Helper()
	rep := benchfmt.Report{
		Schema:    benchfmt.Schema,
		GoVersion: "go1.22",
		Version:   "test",
		Revision:  "deadbeef",
	}
	names := make([]string, 0, len(benchNSByName))
	for n := range benchNSByName {
		names = append(names, n)
	}
	// Deterministic file content regardless of map order.
	for len(names) > 0 {
		min := 0
		for i := range names {
			if names[i] < names[min] {
				min = i
			}
		}
		n := names[min]
		names = append(names[:min], names[min+1:]...)
		rep.Benchmarks = append(rep.Benchmarks, benchfmt.Benchmark{
			Name: n, Iterations: 1, NsPerOp: benchNSByName[n],
		})
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBaselineVsItselfPasses(t *testing.T) {
	p := writeReport(t, "base.json", map[string]float64{"A": 1000, "B": 2000})
	var out, errOut strings.Builder
	if code := run([]string{"-threshold", "25%", p, p}, &out, &errOut); code != exitOK {
		t.Fatalf("exit = %d, want %d; output:\n%s%s", code, exitOK, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "OK:") {
		t.Errorf("missing OK summary in output:\n%s", out.String())
	}
}

func TestSyntheticRegressionFails(t *testing.T) {
	base := writeReport(t, "base.json", map[string]float64{"A": 1000, "B": 2000})
	// A grew 30%: beyond the 25% threshold.
	cur := writeReport(t, "cur.json", map[string]float64{"A": 1300, "B": 2000})
	var out, errOut strings.Builder
	if code := run([]string{"-threshold", "25%", base, cur}, &out, &errOut); code != exitRegression {
		t.Fatalf("exit = %d, want %d; output:\n%s%s", code, exitRegression, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION marker in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL: 1 benchmark(s)") {
		t.Errorf("missing FAIL summary in output:\n%s", out.String())
	}
}

func TestRegressionWithinThresholdPasses(t *testing.T) {
	base := writeReport(t, "base.json", map[string]float64{"A": 1000})
	cur := writeReport(t, "cur.json", map[string]float64{"A": 1200}) // +20% < 25%
	var out, errOut strings.Builder
	if code := run([]string{"-threshold", "25%", base, cur}, &out, &errOut); code != exitOK {
		t.Fatalf("exit = %d, want %d; output:\n%s", code, exitOK, out.String())
	}
}

func TestDisjointBenchmarksAreListedNotFailed(t *testing.T) {
	base := writeReport(t, "base.json", map[string]float64{"A": 1000, "Gone": 500})
	cur := writeReport(t, "cur.json", map[string]float64{"A": 1000, "New": 700})
	var out, errOut strings.Builder
	if code := run([]string{"-threshold", "25%", base, cur}, &out, &errOut); code != exitOK {
		t.Fatalf("exit = %d, want %d; output:\n%s", code, exitOK, out.String())
	}
	if !strings.Contains(out.String(), "Gone") || !strings.Contains(out.String(), "only in baseline") {
		t.Errorf("missing only-in-baseline listing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "New") || !strings.Contains(out.String(), "only in new report") {
		t.Errorf("missing only-in-new listing:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	valid := writeReport(t, "base.json", map[string]float64{"A": 1000})
	cases := [][]string{
		{},                                 // no files
		{valid},                            // one file
		{"-threshold", "0%", valid, valid}, // non-positive threshold
		{"-threshold", "nope", valid, valid},
		{valid, filepath.Join(t.TempDir(), "missing.json")},
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestParseThresholdForms(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{
		{"25%", 0.25},
		{"10%", 0.10},
		{"0.25", 0.25},
		{" 5% ", 0.05},
	} {
		got, err := parseThreshold(tc.in)
		if err != nil {
			t.Errorf("parseThreshold(%q): %v", tc.in, err)
			continue
		}
		if diff := got - tc.want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("parseThreshold(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
