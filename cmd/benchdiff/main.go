// Command benchdiff compares two kshape.bench/v1 reports (see cmd/benchjson
// and `make bench`) and flags performance regressions: benchmarks whose
// ns/op grew by more than -threshold relative to the baseline. It is the
// gate behind `make bench-diff` and the CI bench-smoke job.
//
// Usage:
//
//	benchdiff -threshold 10% BENCH_kshape.json bench-new.json
//
// Exit status: 0 when no benchmark regressed beyond the threshold, 1 when
// at least one did, 2 on usage or input errors. Benchmarks present in only
// one of the two reports are listed but never fail the run — the
// comparison covers the name intersection only.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"kshape/internal/benchfmt"
	"kshape/internal/cli"
)

const (
	exitOK         = 0
	exitRegression = 1
	exitUsage      = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.String("threshold", "10%",
		"relative ns/op growth that counts as a regression (e.g. 10% or 0.10)")
	fs.Usage = func() {
		cli.Emit(stderr, "usage: benchdiff [-threshold PCT] baseline.json new.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return exitUsage
	}
	limit, err := parseThreshold(*threshold)
	if err != nil {
		cli.Emit(stderr, "benchdiff: %v\n", err)
		return exitUsage
	}
	base, err := benchfmt.Load(fs.Arg(0))
	if err != nil {
		cli.Emit(stderr, "benchdiff: baseline: %v\n", err)
		return exitUsage
	}
	cur, err := benchfmt.Load(fs.Arg(1))
	if err != nil {
		cli.Emit(stderr, "benchdiff: new: %v\n", err)
		return exitUsage
	}
	regressed := diff(stdout, base, cur, limit)
	if regressed > 0 {
		cli.Emit(stdout, "\nFAIL: %d benchmark(s) regressed more than %s\n", regressed, formatPct(limit))
		return exitRegression
	}
	cli.Emit(stdout, "\nOK: no benchmark regressed more than %s\n", formatPct(limit))
	return exitOK
}

// parseThreshold accepts "25%" (percent) or "0.25" (ratio) forms; both
// mean the same limit. The value must be positive.
func parseThreshold(s string) (float64, error) {
	str := strings.TrimSpace(s)
	pct := strings.HasSuffix(str, "%")
	str = strings.TrimSuffix(str, "%")
	v, err := strconv.ParseFloat(str, 64)
	if err != nil {
		return 0, fmt.Errorf("bad threshold %q: %w", s, err)
	}
	if pct {
		v /= 100
	}
	if !(v > 0) {
		return 0, fmt.Errorf("threshold must be positive, got %q", s)
	}
	return v, nil
}

func formatPct(ratio float64) string {
	return strconv.FormatFloat(ratio*100, 'g', 4, 64) + "%"
}

// diff prints the per-benchmark comparison over the name intersection in
// sorted order and returns how many benchmarks regressed beyond limit.
func diff(w io.Writer, base, cur *benchfmt.Report, limit float64) int {
	baseBy, curBy := base.ByName(), cur.ByName()
	names := make([]string, 0, len(baseBy))
	var onlyBase, onlyCur []string
	for _, b := range base.Benchmarks {
		if _, ok := curBy[b.Name]; ok {
			names = append(names, b.Name)
		} else {
			onlyBase = append(onlyBase, b.Name)
		}
	}
	for _, b := range cur.Benchmarks {
		if _, ok := baseBy[b.Name]; !ok {
			onlyCur = append(onlyCur, b.Name)
		}
	}
	sort.Strings(names)
	sort.Strings(onlyBase)
	sort.Strings(onlyCur)

	cli.Emit(w, "%-44s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	regressed := 0
	for _, name := range names {
		oldNS, newNS := baseBy[name].NsPerOp, curBy[name].NsPerOp
		var delta float64
		if oldNS > 0 {
			delta = newNS/oldNS - 1
		}
		mark := ""
		if delta > limit {
			mark = "  REGRESSION"
			regressed++
		}
		cli.Emit(w, "%-44s %14.0f %14.0f %+8.1f%%%s\n", name, oldNS, newNS, delta*100, mark)
	}
	for _, name := range onlyBase {
		cli.Emit(w, "%-44s (only in baseline)\n", name)
	}
	for _, name := range onlyCur {
		cli.Emit(w, "%-44s (only in new report)\n", name)
	}
	return regressed
}
