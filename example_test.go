package kshape_test

import (
	"fmt"
	"math"

	"kshape"
)

// wave builds a noiseless prototype of one of two shapes, shifted by s.
func wave(shape, s int) []float64 {
	const m = 32
	x := make([]float64, m)
	for i := range x {
		t := 2 * math.Pi * float64(i+s) / m
		if shape == 0 {
			x[i] = math.Sin(t)
		} else {
			x[i] = math.Abs(math.Sin(t)) - 0.5
		}
	}
	return x
}

func ExampleCluster() {
	// Six series: two shape classes, three phases each.
	data := [][]float64{
		wave(0, 0), wave(0, 3), wave(0, 6),
		wave(1, 0), wave(1, 3), wave(1, 6),
	}
	res, err := kshape.Cluster(data, 2, kshape.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("same cluster within class A:", res.Labels[0] == res.Labels[1] && res.Labels[1] == res.Labels[2])
	fmt.Println("same cluster within class B:", res.Labels[3] == res.Labels[4] && res.Labels[4] == res.Labels[5])
	fmt.Println("classes separated:", res.Labels[0] != res.Labels[3])
	// Output:
	// same cluster within class A: true
	// same cluster within class B: true
	// classes separated: true
}

func ExampleSBD() {
	x := kshape.ZNormalize(wave(0, 0))
	shifted := kshape.ZNormalize(wave(0, 5)) // same shape, out of phase
	other := kshape.ZNormalize(wave(1, 0))   // different shape

	dShift, _ := kshape.SBD(x, shifted)
	dOther, _ := kshape.SBD(x, other)
	fmt.Println("shifted copy stays close:", dShift < 0.2)
	fmt.Println("different shape is farther:", dOther > dShift)
	// Output:
	// shifted copy stays close: true
	// different shape is farther: true
}

func ExampleClassify1NN() {
	train := [][]float64{wave(0, 0), wave(0, 2), wave(1, 0), wave(1, 2)}
	labels := []int{0, 0, 1, 1}
	queries := [][]float64{wave(0, 4), wave(1, 4)}
	pred, err := kshape.Classify1NN(train, labels, queries, "SBD", false)
	if err != nil {
		panic(err)
	}
	fmt.Println(pred)
	// Output:
	// [0 1]
}

func ExampleEstimateK() {
	var data [][]float64
	for s := 0; s < 8; s++ {
		data = append(data, wave(0, s), wave(1, s))
	}
	k, _, err := kshape.EstimateK(data, 5, kshape.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("estimated k:", k)
	// Output:
	// estimated k: 2
}
