// ECG example: the paper's motivating scenario (Figure 1). Heartbeats from
// two morphological classes are recorded out of phase — the measurement
// can start anywhere in the cardiac cycle — so a shape-based method must
// align them globally before comparing. The paper reports that k-Shape
// reaches 84% clustering accuracy on ECGFiveDays while k-medoids with cDTW
// reaches only 53%; this example reproduces that comparison on synthetic
// two-class ECG-like beats and prints the Rand Index of several methods.
//
// Run with:
//
//	go run ./examples/ecg
package main

import (
	"fmt"
	"math/rand"

	"kshape"
)

const (
	seriesLen   = 136 // ECGFiveDays length
	perClass    = 40
	maxPhaseOff = 12
)

// beat synthesizes one heartbeat-like series. Class 0 has a sharp rise then
// a drop then a slow recovery; class 1 rises gradually before the drop.
func beat(class int, rng *rand.Rand) []float64 {
	x := make([]float64, seriesLen)
	for i := range x {
		t := float64(i) / seriesLen
		switch {
		case class == 0 && t < 0.15:
			x[i] = t / 0.15 * 3
		case class == 0 && t < 0.30:
			x[i] = 3 - (t-0.15)/0.15*4
		case class == 0:
			x[i] = -1 + (t-0.30)/0.70*1.8
		case t < 0.35:
			x[i] = t / 0.35 * 2
		case t < 0.45:
			x[i] = 2 - (t-0.35)/0.10*3
		default:
			x[i] = -1 + (t-0.45)/0.55*1.8
		}
		x[i] += 0.12 * rng.NormFloat64()
	}
	// Random phase: rotate the recording start point.
	off := rng.Intn(2*maxPhaseOff+1) - maxPhaseOff
	rotated := make([]float64, seriesLen)
	for i := range rotated {
		rotated[i] = x[((i+off)%seriesLen+seriesLen)%seriesLen]
	}
	return rotated
}

func main() {
	rng := rand.New(rand.NewSource(5))
	var data [][]float64
	var truth []int
	for c := 0; c < 2; c++ {
		for i := 0; i < perClass; i++ {
			data = append(data, beat(c, rng))
			truth = append(truth, c)
		}
	}

	methods := []string{"k-Shape", "PAM+cDTW5", "k-AVG+ED", "H-C+SBD"}
	fmt.Printf("%-12s %s\n", "method", "Rand Index (avg of 5 seeds)")
	for _, method := range methods {
		sum := 0.0
		for seed := int64(0); seed < 5; seed++ {
			res, err := kshape.Cluster(data, 2, kshape.Options{Seed: seed, Method: method})
			if err != nil {
				panic(err)
			}
			sum += kshape.RandIndex(res.Labels, truth)
		}
		fmt.Printf("%-12s %.3f\n", method, sum/5)
	}
}
