// Scalability example: verify the paper's central efficiency claim — that
// k-Shape scales linearly with the number of time series (Appendix B,
// Figure 12) — by timing it on growing CBF-style workloads and printing the
// per-series cost, which should stay roughly flat.
//
// Run with:
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"math/rand"
	"time"

	"kshape"
)

// cbf synthesizes one Cylinder/Bell/Funnel instance of length m.
func cbf(class, m int, rng *rand.Rand) []float64 {
	mf := float64(m)
	a := mf/8 + rng.Float64()*mf/8
	b := a + mf/4 + rng.Float64()*mf/2
	if b > mf-1 {
		b = mf - 1
	}
	amp := 6 + rng.NormFloat64()
	x := make([]float64, m)
	for i := range x {
		t := float64(i)
		if t >= a && t <= b {
			switch class {
			case 0:
				x[i] = amp
			case 1:
				x[i] = amp * (t - a) / (b - a)
			default:
				x[i] = amp * (b - t) / (b - a)
			}
		}
		x[i] += rng.NormFloat64()
	}
	return x
}

func main() {
	const m = 128
	fmt.Printf("%-8s %-12s %-24s %s\n", "n", "wall time", "us per series-iteration", "iterations")
	for _, n := range []int{250, 500, 1000, 2000, 4000} {
		rng := rand.New(rand.NewSource(1))
		data := make([][]float64, n)
		for i := range data {
			data[i] = cbf(i%3, m, rng)
		}
		//lint:ignore detrand this example exists to report wall-clock scaling (Figure 12a)
		start := time.Now()
		res, err := kshape.Cluster(data, 3, kshape.Options{Seed: 1})
		if err != nil {
			panic(err)
		}
		//lint:ignore detrand this example exists to report wall-clock scaling (Figure 12a)
		elapsed := time.Since(start)
		fmt.Printf("%-8d %-12v %-24.1f %d\n",
			n, elapsed.Round(time.Millisecond),
			float64(elapsed.Microseconds())/float64(n*res.Iterations), res.Iterations)
	}
	fmt.Println("\nper-series-iteration cost staying flat as n grows => linear scaling, as in Figure 12a")
}
