// Web-traffic example: clustering attention patterns of online content —
// the domain that motivated the KSC baseline (Yang & Leskovec). Articles
// and videos receive traffic in characteristic temporal shapes (sudden
// spike with fast decay, anticipation build-up, steady periodic interest),
// but the spike may land on any day and the absolute traffic volume varies
// by orders of magnitude. Shape-based clustering recovers the pattern
// classes, and Predict routes newly published content to an existing
// pattern for, e.g., cache-warming decisions.
//
// Run with:
//
//	go run ./examples/webtraffic
package main

import (
	"fmt"
	"math"
	"math/rand"

	"kshape"
)

const days = 96 // ~3 months of daily hits

// patternNames describes the three generator classes.
var patternNames = []string{"spike+decay", "build-up", "weekly-periodic"}

// traffic synthesizes one content item's daily-hit curve for a class.
func traffic(class int, rng *rand.Rand) []float64 {
	x := make([]float64, days)
	peak := 20 + rng.Intn(30) // event day varies per item
	volume := math.Pow(10, 1+2*rng.Float64())
	for i := range x {
		t := float64(i - peak)
		var v float64
		switch class {
		case 0: // sudden spike, fast power-law decay
			if i >= peak {
				v = 1 / math.Pow(1+t/2, 2)
			}
		case 1: // slow anticipation build-up to the event, gentler drop
			if i <= peak {
				v = math.Exp(t / 15)
			} else {
				v = math.Exp(-t / 8)
			}
		default: // steady weekly periodicity
			v = 0.5 + 0.4*math.Sin(2*math.Pi*float64(i)/7)
		}
		x[i] = volume*v + 0.02*volume*rng.NormFloat64()
	}
	return x
}

func main() {
	rng := rand.New(rand.NewSource(11))
	var data [][]float64
	var truth []int
	for c := 0; c < 3; c++ {
		for i := 0; i < 30; i++ {
			data = append(data, traffic(c, rng))
			truth = append(truth, c)
		}
	}

	res, err := kshape.Cluster(data, 3, kshape.Options{Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("clustered %d traffic curves into 3 shape patterns "+
		"(Rand Index vs generator classes: %.3f)\n",
		len(data), kshape.RandIndex(res.Labels, truth))

	// Describe each discovered cluster by its majority generator class.
	counts := make([]map[int]int, 3)
	for i := range counts {
		counts[i] = map[int]int{}
	}
	for i, l := range res.Labels {
		counts[l][truth[i]]++
	}
	for j, c := range counts {
		bestClass, bestN, total := 0, 0, 0
		for cls, n := range c {
			total += n
			if n > bestN {
				bestClass, bestN = cls, n
			}
		}
		fmt.Printf("cluster %d: %d items, %d%% %q\n",
			j, total, 100*bestN/max(total, 1), patternNames[bestClass])
	}

	// Route fresh content to a pattern without re-clustering.
	fresh := make([][]float64, 3)
	for c := range fresh {
		fresh[c] = traffic(c, rng)
	}
	assigned := kshape.Predict(res.Centroids, fresh, false)
	for c, cl := range assigned {
		fmt.Printf("new %q item -> cluster %d\n", patternNames[c], cl)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
