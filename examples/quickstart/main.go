// Quickstart: cluster a handful of noisy, out-of-phase waveforms with
// k-Shape and print the assignments and the extracted centroid shapes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"math/rand"

	"kshape"
)

func main() {
	// Two shape families — a sine and a rectified sine — with random phase,
	// amplitude, and offset per instance. k-Shape's z-normalization and
	// shift-invariant distance see through all three distortions.
	rng := rand.New(rand.NewSource(42))
	const m = 64
	var data [][]float64
	for c := 0; c < 2; c++ {
		for i := 0; i < 10; i++ {
			phase := rng.Float64() * 2 * math.Pi
			amp := 0.5 + 3*rng.Float64()
			offset := 10 * rng.NormFloat64()
			x := make([]float64, m)
			for j := range x {
				v := math.Sin(2*math.Pi*2*float64(j)/m + phase)
				if c == 1 {
					v = math.Abs(v) - 0.5
				}
				x[j] = amp*v + offset + 0.1*rng.NormFloat64()
			}
			data = append(data, x)
		}
	}

	res, err := kshape.Cluster(data, 2, kshape.Options{Seed: 1})
	if err != nil {
		panic(err)
	}

	fmt.Printf("converged after %d iterations\n", res.Iterations)
	fmt.Printf("assignments: %v\n", res.Labels)
	for j, c := range res.Centroids {
		fmt.Printf("centroid %d (first 8 points): ", j)
		for _, v := range c[:8] {
			fmt.Printf("%+.2f ", v)
		}
		fmt.Println()
	}

	// The shape-based distance is available directly, too.
	d, _ := kshape.SBD(kshape.ZNormalize(data[0]), kshape.ZNormalize(data[1]))
	fmt.Printf("SBD(series 0, series 1) = %.3f (same shape class, different phase)\n", d)
	d, _ = kshape.SBD(kshape.ZNormalize(data[0]), kshape.ZNormalize(data[10]))
	fmt.Printf("SBD(series 0, series 10) = %.3f (different shape class)\n", d)
}
