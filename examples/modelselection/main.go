// Model-selection example: choosing the number of clusters without labels.
// The paper (footnote 2) notes that k can be estimated by varying it and
// scoring each clustering with an intrinsic criterion; kshape.EstimateK
// implements exactly that with the silhouette coefficient under SBD.
//
// Run with:
//
//	go run ./examples/modelselection
package main

import (
	"fmt"
	"math"
	"math/rand"

	"kshape"
)

func main() {
	// Generate data with a hidden number of shape classes.
	const trueK = 4
	rng := rand.New(rand.NewSource(9))
	var data [][]float64
	m := 80
	for c := 0; c < trueK; c++ {
		for i := 0; i < 20; i++ {
			x := make([]float64, m)
			phase := rng.Float64() * 0.5
			for j := range x {
				t := float64(j)/float64(m) + phase/10
				switch c {
				case 0:
					x[j] = math.Sin(2 * math.Pi * 1 * t)
				case 1:
					x[j] = math.Sin(2 * math.Pi * 6 * t)
				case 2:
					if math.Mod(3*t, 1) < 0.5 {
						x[j] = 1
					} else {
						x[j] = -1
					}
				default:
					x[j] = math.Exp(-40 * (t - 0.5) * (t - 0.5))
				}
				x[j] += 0.1 * rng.NormFloat64()
			}
			data = append(data, x)
		}
	}

	k, sil, err := kshape.EstimateK(data, 8, kshape.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("data generated with %d hidden shape classes\n", trueK)
	fmt.Printf("estimated k = %d (best silhouette %.3f)\n", k, sil)

	res, err := kshape.ClusterRestarts(data, k, 3, kshape.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	sizes := map[int]int{}
	for _, l := range res.Labels {
		sizes[l]++
	}
	fmt.Printf("cluster sizes at k=%d: %v\n", k, sizes)
}
