// Command gencorpus regenerates the checked-in seed corpora for the
// module's fuzz targets (testdata/fuzz/<Target>/ in each kernel package).
// Run it from the repository root:
//
//	go run ./internal/testkit/gencorpus
//
// The corpora are deterministic renderings of hand-picked shapes: the
// degenerate inputs that historically break distance kernels (constants,
// zeros, spikes, single points), boundary lengths around the FFT padding,
// and regression inputs for bugs the differential harness surfaced (the
// constant-127 series whose rounding-level Std defeated ZNormalize's exact
// zero-variance guard). Keeping them as generated files rather than opaque
// binaries makes every seed reviewable here.
package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"kshape/internal/testkit"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gencorpus:", err)
		os.Exit(1)
	}
}

// entry is one corpus file: the Go-syntax lines after the version header.
type entry struct {
	name  string
	lines []string
}

// bytesLine renders a []byte fuzz argument in corpus syntax.
func bytesLine(b []byte) string { return "[]byte(" + strconv.Quote(string(b)) + ")" }

// byteLine renders a byte fuzz argument in corpus syntax.
func byteLine(b byte) string { return "byte(" + strconv.QuoteRune(rune(b)) + ")" }

func run() error {
	targets := []struct {
		dir     string
		entries []entry
	}{
		{"internal/dist/testdata/fuzz/FuzzSBD", sbdEntries()},
		{"internal/dist/testdata/fuzz/FuzzDTWBand", dtwEntries()},
		{"internal/fft/testdata/fuzz/FuzzFFTRoundTrip", fftEntries()},
		{"internal/fft/testdata/fuzz/FuzzRFFT", rfftEntries()},
		{"internal/ts/testdata/fuzz/FuzzZNormalize", znormEntries()},
		{"internal/dataset/testdata/fuzz/FuzzUCRLoader", ucrEntries()},
	}
	for _, tgt := range targets {
		if err := os.MkdirAll(tgt.dir, 0o755); err != nil {
			return err
		}
		for _, e := range tgt.entries {
			content := "go test fuzz v1\n"
			for _, l := range e.lines {
				content += l + "\n"
			}
			if err := os.WriteFile(filepath.Join(tgt.dir, e.name), []byte(content), 0o644); err != nil {
				return err
			}
			fmt.Println(filepath.Join(tgt.dir, e.name))
		}
	}
	return nil
}

// pairBytes encodes x followed by y (equal lengths) as one fuzz input.
func pairBytes(x, y []float64) []byte {
	return testkit.EncodeFloats(append(append([]float64(nil), x...), y...))
}

func sine(m int, freq, phase float64) []float64 {
	out := make([]float64, m)
	for i := range out {
		out[i] = math.Sin(freq*2*math.Pi*float64(i)/float64(m) + phase)
	}
	return out
}

func constant(m int, v float64) []float64 {
	out := make([]float64, m)
	for i := range out {
		out[i] = v
	}
	return out
}

func spike(m, at int, v float64) []float64 {
	out := make([]float64, m)
	out[at] = v
	return out
}

func ramp(m int, slope float64) []float64 {
	out := make([]float64, m)
	for i := range out {
		out[i] = slope * float64(i)
	}
	return out
}

func sbdEntries() []entry {
	return []entry{
		{"sine-vs-shifted", []string{bytesLine(pairBytes(sine(32, 1, 0), sine(32, 1, 1.2)))}},
		{"constant-pair", []string{bytesLine(pairBytes(constant(16, 3.25), constant(16, -2)))}},
		{"zeros", []string{bytesLine(pairBytes(constant(8, 0), constant(8, 0)))}},
		{"spike-vs-spike", []string{bytesLine(pairBytes(spike(24, 3, 100), spike(24, 19, -50)))}},
		{"pow2-boundary", []string{bytesLine(pairBytes(sine(64, 3, 0.5), ramp(64, 0.25)))}},
		{"odd-length", []string{bytesLine(pairBytes(sine(31, 2, 0), spike(31, 15, 7)))}},
		{"single-point", []string{bytesLine(pairBytes([]float64{2.5}, []float64{-1.5}))}},
		// Regression: with norms near 1e-100, sqrt(Dot(x,x)·Dot(y,y))
		// underflowed to 0 and SBD(x,x) returned the degenerate 1 instead
		// of 0; the denominator now multiplies the norms directly.
		{"tiny-norm-underflow", []string{bytesLine(pairBytes([]float64{1.2e-100}, []float64{1.3e-76}))}},
	}
}

func dtwEntries() []entry {
	return []entry{
		{"diagonal-band", []string{byteLine(1), bytesLine(pairBytes(ramp(10, 1), ramp(10, -1)))}},
		{"full-band-sine", []string{byteLine(255), bytesLine(pairBytes(sine(24, 1, 0), sine(24, 2, 0.7)))}},
		{"minimal-band", []string{byteLine(2), bytesLine(pairBytes(spike(12, 2, 5), spike(12, 9, 5)))}},
		{"single-point", []string{byteLine(0), bytesLine(pairBytes([]float64{1}, []float64{-1}))}},
		{"constant-vs-steps", []string{byteLine(4), bytesLine(pairBytes(constant(16, 2), ramp(16, 0.5)))}},
	}
}

func fftEntries() []entry {
	cancel := make([]float64, 64)
	for i := range cancel {
		cancel[i] = 1e6
		if i%2 == 1 {
			cancel[i] = -1e6
		}
	}
	return []entry{
		{"impulse", []string{bytesLine(testkit.EncodeFloats(spike(16, 0, 1)))}},
		{"alternating", []string{bytesLine(testkit.EncodeFloats(cancel[:8]))}},
		{"cancellation-large", []string{bytesLine(testkit.EncodeFloats(cancel))}},
		{"single-value", []string{bytesLine(testkit.EncodeFloats([]float64{5}))}},
		{"non-pow2-length", []string{bytesLine(testkit.EncodeFloats(sine(27, 2, 0.3)))}},
	}
}

func rfftEntries() []entry {
	cancel := make([]float64, 32)
	for i := range cancel {
		cancel[i] = 1e8
		if i%2 == 1 {
			cancel[i] = -1e8
		}
	}
	return []entry{
		// Length regimes: power-of-two (transforms with zero padding only
		// from the doubled plan), odd, prime, and the single-point
		// degenerate plan, plus a cancellation-heavy input whose spectrum
		// concentrates in the top bin — the untangling's k=half edge.
		{"impulse-pow2", []string{bytesLine(testkit.EncodeFloats(spike(16, 0, 1)))}},
		{"sine-pow2", []string{bytesLine(testkit.EncodeFloats(sine(64, 3, 0.4)))}},
		{"odd-length", []string{bytesLine(testkit.EncodeFloats(sine(27, 2, 0.3)))}},
		{"prime-length", []string{bytesLine(testkit.EncodeFloats(ramp(13, 0.75)))}},
		{"single-value", []string{bytesLine(testkit.EncodeFloats([]float64{5}))}},
		{"alternating-large", []string{bytesLine(testkit.EncodeFloats(cancel))}},
		{"constant", []string{bytesLine(testkit.EncodeFloats(constant(24, -3.5)))}},
	}
}

func znormEntries() []entry {
	wiggle := constant(64, 1e6)
	wiggle[10] += 0.125
	wiggle[40] -= 0.125
	return []entry{
		// Regression: rounding in Mean over 127 copies of this value left
		// Std at ~1.8e-15, defeating the exact sd == 0 guard; ZNormalize
		// mapped the constant series to all ones.
		{"constant-127-rounding", []string{bytesLine(testkit.EncodeFloats(constant(127, -1.7954023232620309)))}},
		{"ramp", []string{bytesLine(testkit.EncodeFloats(ramp(32, 2)))}},
		{"huge-mean-tiny-variance", []string{bytesLine(testkit.EncodeFloats(wiggle))}},
		{"single-value", []string{bytesLine(testkit.EncodeFloats([]float64{42}))}},
		{"two-values", []string{bytesLine(testkit.EncodeFloats([]float64{1, 2}))}},
	}
}

func ucrEntries() []entry {
	return []entry{
		{"comma-two-rows", []string{bytesLine([]byte("1,0.5,1.5,2.5\n2,3.0,2.0,1.0\n"))}},
		{"tab-separated", []string{bytesLine([]byte("1\t0.5\t1.5\n2\t2.5\t3.5\n"))}},
		{"float-integer-label", []string{bytesLine([]byte("3.0 1 2 3\n"))}},
		{"scientific-notation", []string{bytesLine([]byte("-1,1e300,-2.5e-10,0\n"))}},
		{"ragged-rejected", []string{bytesLine([]byte("1,2,3\n4,5\n"))}},
		{"nan-rejected", []string{bytesLine([]byte("1,NaN,2\n"))}},
		{"blank-lines", []string{bytesLine([]byte("\n\n1,1,2\n\n2,3,4\n\n"))}},
		{"trailing-commas", []string{bytesLine([]byte("1,1,2,\n2,3,4,\n"))}},
	}
}
