package testkit

import (
	"math"
	"math/rand"
)

// Gen produces deterministic pseudo-random test cases for the differential
// oracles. A Gen is seeded explicitly (detrand: no ambient randomness) so
// every failure report can name the seed that reproduces it.
//
// The generator deliberately mixes well-behaved inputs (random walks, noisy
// sinusoids) with the degenerate shapes that historically break distance
// kernels: all-zero series, constants (zero variance), single spikes, ramps,
// and lengths of 1, 2, 3, exact powers of two, and awkward odd sizes.
type Gen struct {
	rng *rand.Rand
	// Seed is the value the Gen was constructed with, echoed in failures.
	Seed int64
}

// NewGen returns a generator for the given seed.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed)), Seed: seed}
}

// lengths is the pool Len draws from: boundary sizes, a power of two, and
// odd/awkward sizes that exercise FFT padding and band clamping.
var lengths = []int{1, 2, 3, 5, 8, 13, 16, 31, 32, 57, 64, 100, 127}

// Len picks a series length from the boundary-heavy pool.
func (g *Gen) Len() int { return lengths[g.rng.Intn(len(lengths))] }

// LenAtMost is Len restricted to sizes <= limit (for O(m²) oracles).
func (g *Gen) LenAtMost(limit int) int {
	for {
		if m := g.Len(); m <= limit {
			return m
		}
	}
}

// Series returns one length-m series. Roughly a quarter of draws are
// degenerate shapes; the rest are smooth or noisy signals with magnitudes
// up to a few hundred.
func (g *Gen) Series(m int) []float64 {
	x := make([]float64, m)
	switch g.rng.Intn(8) {
	case 0: // all zeros
	case 1: // constant (zero variance, non-zero energy)
		c := g.rng.NormFloat64() * 10
		for i := range x {
			x[i] = c
		}
	case 2: // single spike
		if m > 0 {
			x[g.rng.Intn(m)] = g.rng.NormFloat64() * 100
		}
	case 3: // linear ramp
		slope := g.rng.NormFloat64()
		for i := range x {
			x[i] = slope * float64(i)
		}
	case 4: // random walk
		v := 0.0
		for i := range x {
			v += g.rng.NormFloat64()
			x[i] = v
		}
	case 5: // noisy sinusoid
		freq := 1 + g.rng.Float64()*4
		phase := g.rng.Float64() * 2 * math.Pi
		amp := math.Exp(g.rng.NormFloat64())
		for i := range x {
			x[i] = amp*math.Sin(freq*2*math.Pi*float64(i)/float64(m)+phase) + 0.1*g.rng.NormFloat64()
		}
	default: // iid gaussian at a random scale
		scale := math.Exp(g.rng.NormFloat64() * 2)
		for i := range x {
			x[i] = scale * g.rng.NormFloat64()
		}
	}
	return x
}

// Pair returns two independent series sharing one random length.
func (g *Gen) Pair() (x, y []float64) {
	m := g.Len()
	return g.Series(m), g.Series(m)
}

// PairAtMost is Pair with both lengths bounded by limit.
func (g *Gen) PairAtMost(limit int) (x, y []float64) {
	m := g.LenAtMost(limit)
	return g.Series(m), g.Series(m)
}

// Cluster returns n series of length m built as noisy copies of one
// non-degenerate base shape — the coherent-cluster geometry shape
// extraction sees in practice, which keeps the Gram matrix's dominant
// eigenvalue well separated so the power-iteration and full-decomposition
// paths are comparable to tight tolerance. (Degenerate bases — constants,
// zeros — would z-normalize to pure noise and close that eigen gap, so the
// base here is always a two-tone sinusoid with a drift term.)
func (g *Gen) Cluster(n, m int) [][]float64 {
	base := make([]float64, m)
	f1 := 1 + g.rng.Float64()*3
	f2 := 4 + g.rng.Float64()*4
	phase := g.rng.Float64() * 2 * math.Pi
	drift := g.rng.NormFloat64() * 0.5
	for i := range base {
		u := float64(i) / float64(m)
		base[i] = math.Sin(f1*2*math.Pi*u+phase) + 0.4*math.Cos(f2*2*math.Pi*u) + drift*u
	}
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, m)
		for t := range s {
			s[t] = base[t] + 0.05*g.rng.NormFloat64()
		}
		out[i] = s
	}
	return out
}

// Matrix returns n independent series of length m.
func (g *Gen) Matrix(n, m int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = g.Series(m)
	}
	return out
}

// Complex returns n complex values with gaussian real and imaginary parts.
func (g *Gen) Complex(n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(g.rng.NormFloat64(), g.rng.NormFloat64())
	}
	return out
}

// Window picks a Sakoe-Chiba half-width for series of length m, covering
// the unconstrained (-1), diagonal (0), minimal (1), and full (m) bands.
func (g *Gen) Window(m int) int {
	switch g.rng.Intn(5) {
	case 0:
		return -1
	case 1:
		return 0
	case 2:
		return 1
	case 3:
		return m
	default:
		if m <= 1 {
			return 1
		}
		return 1 + g.rng.Intn(m)
	}
}

// Intn exposes the underlying deterministic source for ad-hoc choices.
func (g *Gen) Intn(n int) int { return g.rng.Intn(n) }

// NormFloat64 returns a standard-normal draw from the seeded source.
func (g *Gen) NormFloat64() float64 { return g.rng.NormFloat64() }

// Float64 returns a uniform value in [0, 1).
func (g *Gen) Float64() float64 { return g.rng.Float64() }
