package testkit

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// updateGolden is shared by every golden test in the module:
//
//	go test ./... -run Golden -update
//
// rewrites all pinned snapshots with the current output. The flag is
// registered once here; tests opt in by calling Golden.
var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// Golden compares got against the pinned snapshot
// testdata/golden/<name>.golden (relative to the calling test's package
// directory, where `go test` runs). With -update the snapshot is rewritten
// instead and the test passes; without it, a missing or differing snapshot
// fails the test with a line-level diff.
//
// Snapshots pin byte-exact renderer output — experiment tables, trace
// tables, benchmark JSON — so both numerical drift (a kernel change moving
// a reported digit) and formatting drift (a column realigning) fail CI
// with a readable message.
func Golden(t *testing.T, name, got string) {
	t.Helper()
	if err := golden(filepath.Join("testdata", "golden"), name, got, *updateGolden); err != nil {
		t.Fatal(err)
	}
}

// golden is the testable core of Golden: it pins got under dir/<name>.golden
// and returns an error instead of failing a *testing.T, so the harness's own
// tests can exercise the mismatch and update paths against temp directories.
func golden(dir, name, got string, update bool) error {
	path := filepath.Join(dir, name+".golden")
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("golden %s: %w", name, err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			return fmt.Errorf("golden %s: %w", name, err)
		}
		return nil
	}
	want, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("golden %s: %w (run `go test -run Golden -update` to create it)", name, err)
	}
	if string(want) == got {
		return nil
	}
	return fmt.Errorf("golden %s: output differs from %s\n%s\n(run `go test -run Golden -update` to accept the new output)",
		name, path, diffLines(got, string(want)))
}

// diffLines renders the first line-level divergence between got and want,
// with one line of context, plus a byte-length summary — enough to read the
// failure without opening the files.
func diffLines(got, want string) string {
	g := strings.Split(got, "\n")
	w := strings.Split(want, "\n")
	n := len(g)
	if len(w) < n {
		n = len(w)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  got %d bytes / %d lines, want %d bytes / %d lines\n",
		len(got), len(g), len(want), len(w))
	for i := 0; i < n; i++ {
		if g[i] != w[i] {
			if i > 0 {
				fmt.Fprintf(&b, "  line %d:  %q (both)\n", i, g[i-1])
			}
			fmt.Fprintf(&b, "  line %d:  got  %q\n", i+1, g[i])
			fmt.Fprintf(&b, "  line %d:  want %q", i+1, w[i])
			return b.String()
		}
	}
	// One output is a prefix of the other.
	if len(g) != len(w) {
		i := n
		if len(g) > len(w) {
			fmt.Fprintf(&b, "  line %d:  got  %q (extra)\n  line %d:  want <end of file>", i+1, g[i], i+1)
		} else {
			fmt.Fprintf(&b, "  line %d:  got  <end of file>\n  line %d:  want %q (extra)", i+1, i+1, w[i])
		}
	}
	return b.String()
}
