package testkit

import (
	"fmt"
	"math"

	"kshape/internal/avg"
	"kshape/internal/dist"
	"kshape/internal/fft"
	"kshape/internal/linalg"
	"kshape/internal/par"
	"kshape/internal/ts"
)

// OraclePair pairs an optimized kernel with a slow, obviously-correct
// reference implementation. Run draws one batch of cases from g, evaluates
// both sides, and returns a descriptive error on the first disagreement
// beyond Tol (Tol == 0 demands bit-for-bit equality — the contract of the
// deterministic parallel layer and of copy-vs-in-place transforms).
type OraclePair struct {
	Name string
	Doc  string
	Tol  float64
	Run  func(g *Gen) error
}

// Pairs returns the full oracle registry. Every optimized code path in the
// tree — FFT cross-correlation, the three SBD variants, the shared-spectra
// batch, banded rolling-row DTW, LB_Keogh, power iteration, shape
// extraction, and each parallel reduction — has an entry here; the
// differential test drives each entry across many seeds.
func Pairs() []OraclePair {
	return []OraclePair{
		{
			Name: "fft/roundtrip",
			Doc:  "Inverse(Forward(x)) reproduces x for power-of-two complex inputs",
			Tol:  DefaultTol,
			Run:  runFFTRoundTrip,
		},
		{
			Name: "fft/crosscorrelate-vs-direct",
			Doc:  "FFT cross-correlation matches the direct O(m²) definition (Eq. 12)",
			Tol:  DefaultTol,
			Run:  runCrossCorrelate,
		},
		{
			Name: "fft/convolve-vs-direct",
			Doc:  "FFT linear convolution matches the direct definition",
			Tol:  DefaultTol,
			Run:  runConvolve,
		},
		{
			Name: "fft/rfft-roundtrip",
			Doc:  "RFFT Inverse(Forward(x)) reproduces the zero-padded real input",
			Tol:  DefaultTol,
			Run:  runRFFTRoundTrip,
		},
		{
			Name: "fft/rfft-vs-complex",
			Doc:  "RFFT half-spectrum matches the complex reference transform bin by bin",
			Tol:  DefaultTol,
			Run:  runRFFTVsComplex,
		},
		{
			Name: "fft/rfft-ncc-vs-direct",
			Doc:  "cross-correlation assembled from RFFT spectra matches the direct O(m²) definition",
			Tol:  DefaultTol,
			Run:  runRFFTCrossCorrelate,
		},
		{
			Name: "sbd/fft-vs-reference",
			Doc:  "optimized SBD (pow2-padded FFT) matches the direct NCCc maximum (Eq. 9)",
			Tol:  DefaultTol,
			Run:  func(g *Gen) error { return runSBDVariant(g, "SBD", dist.SBD) },
		},
		{
			Name: "sbd/nopow2-vs-reference",
			Doc:  "SBD_NoPow2 (longer FFT) matches the direct NCCc maximum",
			Tol:  DefaultTol,
			Run:  func(g *Gen) error { return runSBDVariant(g, "SBDNoPow2", dist.SBDNoPow2) },
		},
		{
			Name: "sbd/nofft-vs-reference",
			Doc:  "SBD_NoFFT (naive correlation) matches the direct NCCc maximum",
			Tol:  DefaultTol,
			Run:  func(g *Gen) error { return runSBDVariant(g, "SBDNoFFT", dist.SBDNoFFT) },
		},
		{
			Name: "sbdbatch/batch-vs-pairwise",
			Doc:  "shared-spectra SBDBatch distances and shifts match per-pair SBD",
			Tol:  DefaultTol,
			Run:  runSBDBatch,
		},
		{
			Name: "sbdbatch/pairwise-and-nn",
			Doc:  "batch PairwiseInto and SBDNearest match per-pair SBD/NNIndex, worker-count independent",
			Tol:  DefaultTol,
			Run:  runSBDBatchPairwiseNN,
		},
		{
			Name: "dtw/rolling-vs-fullmatrix",
			Doc:  "rolling two-row banded cDTW matches an independent full-matrix DP",
			Tol:  DefaultTol,
			Run:  runDTWFullMatrix,
		},
		{
			Name: "dtw/warpingpath-consistency",
			Doc:  "WarpingPath stays in band, uses valid steps, and its cost equals CDTW",
			Tol:  DefaultTol,
			Run:  runWarpingPath,
		},
		{
			Name: "lbkeogh/bound-chain",
			Doc:  "LB_Keogh <= cDTW(w), DTW <= cDTW(w) <= ED, envelopes bracket the series",
			Tol:  DefaultTol,
			Run:  runBoundChain,
		},
		{
			Name: "eigen/power-vs-ql",
			Doc:  "power iteration matches Householder+QL on gap-controlled PSD spectra",
			Tol:  DefaultTol,
			Run:  runEigen,
		},
		{
			Name: "shape/power-vs-ql",
			Doc:  "shape extraction via power iteration matches a full-decomposition rebuild",
			Tol:  DefaultTol,
			Run:  runShapeExtraction,
		},
		{
			Name: "par/sum-serial-vs-parallel",
			Doc:  "SumFloat/SumInt are bit-identical for every worker count",
			Tol:  0,
			Run:  runParSums,
		},
		{
			Name: "par/minmax-serial-vs-parallel",
			Doc:  "MinIndex/MaxIndex match a serial scan (smallest-index ties) for every worker count",
			Tol:  0,
			Run:  runParMinMax,
		},
		{
			Name: "pairwise/serial-vs-parallel",
			Doc:  "PairwiseMatrixWorkers is bit-identical across worker counts and symmetric",
			Tol:  0,
			Run:  runPairwise,
		},
		{
			Name: "avg/dba-serial-vs-workers",
			Doc:  "DBAWorkers is bit-identical to serial DBA for every worker count",
			Tol:  0,
			Run:  runDBA,
		},
		{
			Name: "ts/znorm-copy-vs-inplace",
			Doc:  "ZNormalize and ZNormalizeInPlace agree bit-for-bit and satisfy IsZNormalized",
			Tol:  0,
			Run:  runZNorm,
		},
	}
}

// --- independent reference implementations -------------------------------

// refCrossCorrelate is the textbook O(len(x)·len(y)) cross-correlation with
// the package's lag convention: out[w] = Σ_l x[l+lag]·y[l], lag = w-(len(y)-1).
// It is written from the definition, independently of fft.CrossCorrelateNaive.
func refCrossCorrelate(x, y []float64) []float64 {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	out := make([]float64, len(x)+len(y)-1)
	for w := range out {
		lag := w - (len(y) - 1)
		acc := 0.0
		for l, yv := range y {
			xi := l + lag
			if xi >= 0 && xi < len(x) {
				acc += x[xi] * yv
			}
		}
		out[w] = acc
	}
	return out
}

// refConvolve is the direct O(len(x)·len(y)) linear convolution.
func refConvolve(x, y []float64) []float64 {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	out := make([]float64, len(x)+len(y)-1)
	for i, xv := range x {
		for j, yv := range y {
			out[i+j] += xv * yv
		}
	}
	return out
}

// refSBD computes the shape-based distance from the definition: the direct
// cross-correlation sequence, normalized by the norms' product, maximized by
// a first-strict-improvement scan. The degenerate zero-norm convention
// (dist 1) mirrors the optimized path.
func refSBD(x, y []float64) float64 {
	m := len(x)
	if m == 0 {
		return 0
	}
	// Norms are multiplied (not sqrt of the product of squared norms) so the
	// reference stays finite for tiny norms where Dot·Dot would underflow.
	den := ts.Norm(x) * ts.Norm(y)
	if den <= 0 {
		return 1
	}
	cc := refCrossCorrelate(x, y)
	best := math.Inf(-1)
	for _, v := range cc {
		if v > best {
			best = v
		}
	}
	return 1 - best/den
}

// refDTW computes banded DTW over the full (n+1)×(m+1) cost matrix — the
// memory-hungry formulation the rolling-row CDTW optimizes away. window < 0
// means unconstrained.
func refDTW(x, y []float64, window int) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	w := window
	if w < 0 {
		w = n
		if m > w {
			w = m
		}
	}
	inf := math.Inf(1)
	cost := make([][]float64, n+1)
	for i := range cost {
		cost[i] = make([]float64, m+1)
		for j := range cost[i] {
			cost[i][j] = inf
		}
	}
	cost[0][0] = 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if j < i-w || j > i+w {
				continue
			}
			best := cost[i-1][j-1]
			if cost[i-1][j] < best {
				best = cost[i-1][j]
			}
			if cost[i][j-1] < best {
				best = cost[i][j-1]
			}
			d := x[i-1] - y[j-1]
			cost[i][j] = d*d + best
		}
	}
	return math.Sqrt(cost[n][m])
}

// --- oracle runners ------------------------------------------------------

func runFFTRoundTrip(g *Gen) error {
	sizes := []int{1, 2, 4, 16, 64, 256}
	n := sizes[g.Intn(len(sizes))]
	x := g.Complex(n)
	work := append([]complex128(nil), x...)
	fft.Forward(work)
	fft.Inverse(work)
	for i := range x {
		if !Close(real(work[i]), real(x[i]), DefaultTol) || !Close(imag(work[i]), imag(x[i]), DefaultTol) {
			return fmt.Errorf("roundtrip n=%d: index %d got %v, want %v", n, i, work[i], x[i])
		}
	}
	return nil
}

func runCrossCorrelate(g *Gen) error {
	x := g.Series(g.LenAtMost(100))
	y := g.Series(g.LenAtMost(100))
	got := fft.CrossCorrelate(x, y)
	want := refCrossCorrelate(x, y)
	return CheckSlice(fmt.Sprintf("CrossCorrelate(len %d, %d)", len(x), len(y)), got, want, DefaultTol)
}

func runConvolve(g *Gen) error {
	x := g.Series(g.LenAtMost(100))
	y := g.Series(g.LenAtMost(100))
	got := fft.Convolve(x, y)
	want := refConvolve(x, y)
	return CheckSlice(fmt.Sprintf("Convolve(len %d, %d)", len(x), len(y)), got, want, DefaultTol)
}

// rfftSizes spans degenerate plans through several butterfly stages.
var rfftSizes = []int{1, 2, 4, 16, 64, 256}

func runRFFTRoundTrip(g *Gen) error {
	n := rfftSizes[g.Intn(len(rfftSizes))]
	// Input lengths below the transform length exercise the zero-padding.
	x := g.Series(1 + g.Intn(n))
	p := fft.NewRFFT(n)
	spec := make([]complex128, p.SpectrumLen())
	work := make([]complex128, p.WorkLen())
	out := make([]float64, n)
	p.Forward(x, spec, work)
	p.Inverse(spec, out, work)
	for i := range out {
		want := 0.0
		if i < len(x) {
			want = x[i]
		}
		if !Close(out[i], want, DefaultTol) {
			return fmt.Errorf("rfft roundtrip n=%d inLen=%d: index %d got %v, want %v", n, len(x), i, out[i], want)
		}
	}
	return nil
}

func runRFFTVsComplex(g *Gen) error {
	n := rfftSizes[g.Intn(len(rfftSizes))]
	x := g.Series(1 + g.Intn(n))
	p := fft.NewRFFT(n)
	spec := make([]complex128, p.SpectrumLen())
	work := make([]complex128, p.WorkLen())
	p.Forward(x, spec, work)
	ref := fft.ForwardReal(x, n)
	for k := range spec {
		if !Close(real(spec[k]), real(ref[k]), DefaultTol) || !Close(imag(spec[k]), imag(ref[k]), DefaultTol) {
			return fmt.Errorf("rfft n=%d inLen=%d bin %d: %v vs complex %v", n, len(x), k, spec[k], ref[k])
		}
	}
	return nil
}

// runRFFTCrossCorrelate rebuilds the SBD correlation pipeline on RFFT
// spectra — forward both series, multiply by the conjugate, invert, unwrap
// the circular lags — and checks it against the direct O(m²) definition.
// This is the NCC arithmetic the batch SBD paths run per pair.
func runRFFTCrossCorrelate(g *Gen) error {
	x, y := g.PairAtMost(100)
	m := len(x)
	n := fft.NextPow2(2*m - 1)
	p := fft.NewRFFT(n)
	sx := make([]complex128, p.SpectrumLen())
	sy := make([]complex128, p.SpectrumLen())
	work := make([]complex128, p.WorkLen())
	cc := make([]float64, n)
	p.Forward(x, sx, work)
	p.Forward(y, sy, work)
	for k := range sx {
		sx[k] *= complex(real(sy[k]), -imag(sy[k]))
	}
	p.Inverse(sx, cc, work)
	want := refCrossCorrelate(x, y)
	got := make([]float64, 2*m-1)
	for lag := -(m - 1); lag <= m-1; lag++ {
		idx := lag
		if idx < 0 {
			idx += n
		}
		got[lag+m-1] = cc[idx]
	}
	return CheckSlice(fmt.Sprintf("RFFT cross-correlation (m=%d)", m), got, want, DefaultTol)
}

func runSBDVariant(g *Gen, name string, f func(x, y []float64) (float64, []float64)) error {
	x, y := g.PairAtMost(100)
	got, aligned := f(x, y)
	want := refSBD(x, y)
	if err := CheckScalar(fmt.Sprintf("%s(len %d)", name, len(x)), got, want, DefaultTol); err != nil {
		return err
	}
	if got < -DefaultTol || got > 2+DefaultTol {
		return fmt.Errorf("%s(len %d) = %v outside [0, 2]", name, len(x), got)
	}
	if len(aligned) != len(y) {
		return fmt.Errorf("%s aligned length %d, want %d", name, len(aligned), len(y))
	}
	// Self-distance is zero up to rounding (non-degenerate inputs only; the
	// all-zero series maps to distance 1 by convention).
	if ts.Norm(x) > 0 {
		self, _ := f(x, x)
		if err := CheckScalar(fmt.Sprintf("%s(x, x)", name), self, 0, DefaultTol); err != nil {
			return err
		}
	}
	return nil
}

func runSBDBatch(g *Gen) error {
	m := g.LenAtMost(100)
	data := g.Matrix(4+g.Intn(5), m)
	b := dist.NewSBDBatch(data)
	q := g.Series(m)
	query := b.Query(q)
	scratch := b.Scratch()
	for i := range data {
		wantDist, _ := dist.SBD(q, data[i])
		gotDist, gotShift := query.Distance(i)
		if err := CheckScalar(fmt.Sprintf("batch dist[%d]", i), gotDist, wantDist, DefaultTol); err != nil {
			return err
		}
		// The batch path runs the real-input transform while the per-pair
		// reference runs the complex one, so on a tied correlation plateau
		// (constant×spike inputs) their argmax can legitimately differ by
		// rounding. The contract is therefore ε-equivalent maximization:
		// the batch shift must itself attain the reference optimum, checked
		// by recomputing its correlation value from the definition.
		if gotShift <= -m || gotShift >= m {
			return fmt.Errorf("batch shift[%d] = %d outside (-%d, %d)", i, gotShift, m, m)
		}
		if den := ts.Norm(q) * ts.Norm(data[i]); den > 0 {
			v := ts.Dot(q, ts.Shift(data[i], gotShift))
			if err := CheckScalar(fmt.Sprintf("batch shift[%d] optimality", i), 1-v/den, wantDist, DefaultTol); err != nil {
				return err
			}
		}
		// The caller-provided-scratch path must agree with the internal one.
		sDist, sShift := query.DistanceScratch(i, scratch)
		if err := CheckScalar(fmt.Sprintf("scratch dist[%d]", i), sDist, gotDist, 0); err != nil {
			return err
		}
		if err := CheckInt(fmt.Sprintf("scratch shift[%d]", i), sShift, gotShift); err != nil {
			return err
		}
	}
	return nil
}

// runSBDBatchPairwiseNN checks the cached-spectra batch endpoints against
// their per-pair references: PairwiseInto against an SBDDist matrix
// (within tolerance), bit-identical across worker counts, and SBDNearest
// against a serial NNIndex scan (indices equal whenever the per-pair
// winner is ε-separated; on near-ties both candidates must be optimal).
func runSBDBatchPairwiseNN(g *Gen) error {
	m := g.LenAtMost(64)
	data := g.Matrix(4+g.Intn(6), m)
	b := dist.NewSBDBatch(data)
	n := len(data)
	matrix := func(workers int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			out[i] = make([]float64, n)
		}
		b.PairwiseInto(out, workers)
		return out
	}
	got := matrix(1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i != j {
				want = dist.SBDDist(data[i], data[j])
			}
			if err := CheckScalar(fmt.Sprintf("PairwiseInto[%d][%d]", i, j), got[i][j], want, DefaultTol); err != nil {
				return err
			}
			if !SameBits(got[i][j], got[j][i]) {
				return fmt.Errorf("PairwiseInto asymmetric at (%d,%d): %v vs %v", i, j, got[i][j], got[j][i])
			}
		}
	}
	for _, w := range workerCounts {
		gw := matrix(w)
		for i := range gw {
			if err := CheckSlice(fmt.Sprintf("PairwiseInto row %d (workers=%d)", i, w), gw[i], got[i], 0); err != nil {
				return err
			}
		}
	}
	queries := g.Matrix(3+g.Intn(4), m)
	nearest := dist.SBDNearest(data, queries, 1)
	for qi, q := range queries {
		wantIdx, wantDist := dist.NNIndex(dist.SBDMeasure{}, q, data)
		gotIdx := nearest[qi]
		if gotIdx < 0 || gotIdx >= n {
			return fmt.Errorf("SBDNearest[%d] = %d out of range", qi, gotIdx)
		}
		if gotIdx != wantIdx {
			// Allowed only when the two candidates tie within tolerance.
			gotDist := dist.SBDDist(q, data[gotIdx])
			if err := CheckScalar(fmt.Sprintf("SBDNearest[%d] tie (%d vs %d)", qi, gotIdx, wantIdx), gotDist, wantDist, DefaultTol); err != nil {
				return err
			}
		}
	}
	for _, w := range workerCounts {
		nw := dist.SBDNearest(data, queries, w)
		for qi := range nw {
			if err := CheckInt(fmt.Sprintf("SBDNearest[%d] (workers=%d)", qi, w), nw[qi], nearest[qi]); err != nil {
				return err
			}
		}
	}
	return nil
}

func runDTWFullMatrix(g *Gen) error {
	// Unequal lengths exercise band clamping and the disconnected-band +Inf.
	x := g.Series(g.LenAtMost(48))
	y := g.Series(g.LenAtMost(48))
	maxLen := len(x)
	if len(y) > maxLen {
		maxLen = len(y)
	}
	for _, w := range []int{-1, 0, 1, maxLen / 4, maxLen, g.Window(maxLen)} {
		got := dist.CDTW(x, y, w)
		want := refDTW(x, y, w)
		if err := CheckScalar(fmt.Sprintf("CDTW(len %d, %d, w=%d)", len(x), len(y), w), got, want, DefaultTol); err != nil {
			return err
		}
	}
	return nil
}

func runWarpingPath(g *Gen) error {
	x, y := g.PairAtMost(48)
	w := g.Window(len(x))
	path, d := dist.WarpingPath(x, y, w)
	want := dist.CDTW(x, y, w)
	if err := CheckScalar(fmt.Sprintf("WarpingPath distance (len %d, w=%d)", len(x), w), d, want, DefaultTol); err != nil {
		return err
	}
	if math.IsInf(d, 1) {
		if path != nil {
			return fmt.Errorf("disconnected band returned a path of length %d", len(path))
		}
		return nil
	}
	if len(path) == 0 {
		return fmt.Errorf("finite distance %v with empty path", d)
	}
	if path[0] != [2]int{0, 0} || path[len(path)-1] != [2]int{len(x) - 1, len(y) - 1} {
		return fmt.Errorf("path endpoints %v .. %v, want (0,0) .. (%d,%d)",
			path[0], path[len(path)-1], len(x)-1, len(y)-1)
	}
	band := w
	if band < 0 {
		band = len(x)
		if len(y) > band {
			band = len(y)
		}
	}
	cost := 0.0
	for s, p := range path {
		i, j := p[0], p[1]
		if i < 0 || i >= len(x) || j < 0 || j >= len(y) {
			return fmt.Errorf("path step %d out of range: (%d,%d)", s, i, j)
		}
		if di := (i + 1) - (j + 1); di > band || -di > band {
			return fmt.Errorf("path step %d = (%d,%d) outside band w=%d", s, i, j, w)
		}
		if s > 0 {
			pi, pj := path[s-1][0], path[s-1][1]
			if i-pi < 0 || i-pi > 1 || j-pj < 0 || j-pj > 1 || (i == pi && j == pj) {
				return fmt.Errorf("path step %d: invalid move (%d,%d) -> (%d,%d)", s, pi, pj, i, j)
			}
		}
		dd := x[i] - y[j]
		cost += dd * dd
	}
	return CheckScalar("path cost", math.Sqrt(cost), d, DefaultTol)
}

func runBoundChain(g *Gen) error {
	x, y := g.PairAtMost(64)
	m := len(x)
	w := g.Window(m)
	if w < 0 {
		w = m
	}
	upper, lower := dist.Envelope(y, w)
	for i := range y {
		if lower[i] > y[i] || y[i] > upper[i] {
			return fmt.Errorf("envelope[%d] = [%v, %v] does not bracket y=%v (w=%d)", i, lower[i], upper[i], y[i], w)
		}
	}
	lb := dist.LBKeogh(x, upper, lower)
	cdtw := dist.CDTW(x, y, w)
	slack := DefaultTol * (1 + lb + cdtw)
	if lb > cdtw+slack {
		return fmt.Errorf("LB_Keogh %v > cDTW(w=%d) %v (m=%d)", lb, w, cdtw, m)
	}
	full := dist.DTW(x, y)
	if full > cdtw+DefaultTol*(1+full+cdtw) {
		return fmt.Errorf("DTW %v > cDTW(w=%d) %v (m=%d)", full, w, cdtw, m)
	}
	ed := dist.ED(x, y)
	if cdtw > ed+DefaultTol*(1+cdtw+ed) {
		return fmt.Errorf("cDTW(w=%d) %v > ED %v (m=%d)", w, cdtw, ed, m)
	}
	// The diagonal band degenerates to the Euclidean alignment exactly.
	return CheckScalar(fmt.Sprintf("cDTW(w=0) vs ED (m=%d)", m), dist.CDTW(x, y, 0), ed, DefaultTol)
}

// randomOrthonormal builds m orthonormal vectors of dimension m via modified
// Gram-Schmidt over gaussian draws, retrying the (measure-zero) degenerate
// draws.
func randomOrthonormal(g *Gen, m int) [][]float64 {
	vecs := make([][]float64, 0, m)
	for len(vecs) < m {
		v := make([]float64, m)
		for t := range v {
			v[t] = g.NormFloat64()
		}
		for _, u := range vecs {
			proj := 0.0
			for t := range v {
				proj += v[t] * u[t]
			}
			for t := range v {
				v[t] -= proj * u[t]
			}
		}
		nrm := 0.0
		for _, t := range v {
			nrm += t * t
		}
		nrm = math.Sqrt(nrm)
		if nrm < 1e-8 {
			continue
		}
		for t := range v {
			v[t] /= nrm
		}
		vecs = append(vecs, v)
	}
	return vecs
}

func absCos(a, b []float64) float64 {
	num, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		num += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	den := math.Sqrt(na * nb)
	if den <= 0 {
		return 0
	}
	return math.Abs(num) / den
}

func runEigen(g *Gen) error {
	m := 4 + g.Intn(9)
	basis := randomOrthonormal(g, m)
	// Geometric spectrum with ratio <= 0.4. Power iteration's stopping rule
	// bounds the angle between successive iterates, which is (1-ratio) times
	// the angle to the true eigenvector; the eigenvalue and |cos| comparisons
	// below converge quadratically in that angle, so a strong gap keeps both
	// far inside the 1e-9 tolerance. (A residual check ‖Sv-λv‖ would be
	// linear in the angle and cannot meet 1e-9 under the library's 1e-10
	// alignment criterion — hence its absence.)
	lambda1 := math.Exp(g.NormFloat64())
	ratio := 0.2 + 0.2*g.Float64()
	s := linalg.NewSym(m)
	lam := lambda1
	for k := 0; k < m; k++ {
		v := basis[k]
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				s.Data[i*m+j] += lam * v[i] * v[j]
			}
		}
		lam *= ratio
	}
	gotVal, gotVec := linalg.DominantEigen(s)
	if err := CheckScalar(fmt.Sprintf("DominantEigen value (m=%d)", m), gotVal, lambda1, DefaultTol); err != nil {
		return err
	}
	if c := absCos(gotVec, basis[0]); 1-c > DefaultTol {
		return fmt.Errorf("DominantEigen vector misaligned with constructed basis: 1-|cos| = %v", 1-c)
	}
	vals, vecs := linalg.EigenDecompose(s)
	qlVal, qlVec := vals[m-1], vecs[m-1]
	if err := CheckScalar("EigenDecompose top value", qlVal, lambda1, DefaultTol); err != nil {
		return err
	}
	if c := absCos(qlVec, gotVec); 1-c > DefaultTol {
		return fmt.Errorf("power vs QL eigenvectors misaligned: 1-|cos| = %v", 1-c)
	}
	// The full spectrum must reproduce the constructed eigenvalues
	// (EigenDecompose returns ascending order).
	lam = lambda1
	for k := 0; k < m; k++ {
		if err := CheckScalar(fmt.Sprintf("EigenDecompose value %d", k), vals[m-1-k], lam, DefaultTol); err != nil {
			return err
		}
		lam *= ratio
	}
	return nil
}

// refShapeExtraction rebuilds Algorithm 2's steps 2-4 using the full
// Householder+QL decomposition in place of power iteration, with the same
// z-normalization and sign-fix conventions.
func refShapeExtraction(aligned [][]float64) []float64 {
	m := len(aligned[0])
	s := linalg.NewSym(m)
	for _, a := range aligned {
		s.GramAddOuter(ts.ZNormalize(a))
	}
	s.CenterProject()
	_, vecs := linalg.EigenDecompose(s)
	cen := ts.ZNormalize(vecs[m-1])
	neg := make([]float64, m)
	for i, v := range cen {
		neg[i] = -v
	}
	if refSumSqED(aligned, neg) < refSumSqED(aligned, cen) {
		return neg
	}
	return cen
}

func refSumSqED(cluster [][]float64, c []float64) float64 {
	total := 0.0
	for _, x := range cluster {
		total += dist.SquaredED(ts.ZNormalize(x), c)
	}
	return total
}

func runShapeExtraction(g *Gen) error {
	m := 8 + g.Intn(25)
	cluster := g.Cluster(3+g.Intn(6), m)
	got := avg.ShapeExtractionAligned(cluster)
	want := refShapeExtraction(cluster)
	return CheckSlice(fmt.Sprintf("ShapeExtraction (n=%d, m=%d)", len(cluster), m), got, want, DefaultTol)
}

// workerCounts are the parallelism degrees every exact pair is checked at,
// against the serial (workers=1) reference.
var workerCounts = []int{2, 3, 7, 16}

func runParSums(g *Gen) error {
	n := 1 + g.Intn(2000)
	vals := make([]float64, n)
	ints := make([]int, n)
	for i := range vals {
		vals[i] = g.NormFloat64() * math.Exp(g.NormFloat64()*3)
		ints[i] = g.Intn(1000) - 500
	}
	term := func(i int) float64 { return vals[i] }
	wantF := par.SumFloat(1, n, term)
	wantI := par.SumInt(1, n, func(i int) int { return ints[i] })
	for _, w := range workerCounts {
		if err := CheckScalar(fmt.Sprintf("SumFloat(workers=%d, n=%d)", w, n), par.SumFloat(w, n, term), wantF, 0); err != nil {
			return err
		}
		if err := CheckInt(fmt.Sprintf("SumInt(workers=%d, n=%d)", w, n), par.SumInt(w, n, func(i int) int { return ints[i] }), wantI); err != nil {
			return err
		}
	}
	return nil
}

func runParMinMax(g *Gen) error {
	n := 1 + g.Intn(2000)
	vals := make([]float64, n)
	for i := range vals {
		// Draw from a small discrete set so ties are common and the
		// smallest-index tie-break is actually exercised.
		vals[i] = float64(g.Intn(7))
	}
	if n > 2 {
		vals[g.Intn(n)] = math.NaN() // NaN must never be selected
	}
	score := func(i int) float64 { return vals[i] }
	wantMinIdx, wantMin := par.MinIndex(1, n, score)
	wantMaxIdx, wantMax := par.MaxIndex(1, n, score)
	for _, w := range workerCounts {
		gotIdx, gotVal := par.MinIndex(w, n, score)
		if err := CheckInt(fmt.Sprintf("MinIndex(workers=%d, n=%d) idx", w, n), gotIdx, wantMinIdx); err != nil {
			return err
		}
		if err := CheckScalar(fmt.Sprintf("MinIndex(workers=%d, n=%d) val", w, n), gotVal, wantMin, 0); err != nil {
			return err
		}
		gotIdx, gotVal = par.MaxIndex(w, n, score)
		if err := CheckInt(fmt.Sprintf("MaxIndex(workers=%d, n=%d) idx", w, n), gotIdx, wantMaxIdx); err != nil {
			return err
		}
		if err := CheckScalar(fmt.Sprintf("MaxIndex(workers=%d, n=%d) val", w, n), gotVal, wantMax, 0); err != nil {
			return err
		}
	}
	return nil
}

func runPairwise(g *Gen) error {
	data := g.Matrix(6+g.Intn(8), g.LenAtMost(64))
	measures := []dist.Measure{dist.SBDMeasure{}, dist.EDMeasure{}, dist.CDTWMeasure{Window: 3}}
	d := measures[g.Intn(len(measures))]
	want := dist.PairwiseMatrixWorkers(d, data, 1)
	for _, w := range workerCounts {
		got := dist.PairwiseMatrixWorkers(d, data, w)
		for i := range got {
			if err := CheckSlice(fmt.Sprintf("%s pairwise row %d (workers=%d)", d.Name(), i, w), got[i], want[i], 0); err != nil {
				return err
			}
		}
	}
	for i := range want {
		for j := range want[i] {
			if !SameBits(want[i][j], want[j][i]) {
				return fmt.Errorf("%s pairwise asymmetric at (%d,%d): %v vs %v", d.Name(), i, j, want[i][j], want[j][i])
			}
		}
	}
	return nil
}

func runDBA(g *Gen) error {
	m := g.LenAtMost(40)
	cluster := g.Cluster(3+g.Intn(5), m)
	window := g.Window(m)
	iters := 1 + g.Intn(3)
	want := avg.DBAWorkers(cluster, nil, iters, window, 1)
	for _, w := range workerCounts {
		got := avg.DBAWorkers(cluster, nil, iters, window, w)
		if err := CheckSlice(fmt.Sprintf("DBA(m=%d, iters=%d, window=%d, workers=%d)", m, iters, window, w), got, want, 0); err != nil {
			return err
		}
	}
	return nil
}

func runZNorm(g *Gen) error {
	x := g.Series(g.Len())
	fromCopy := ts.ZNormalize(x)
	inPlace := ts.ZNormalizeInPlace(append([]float64(nil), x...))
	if err := CheckSlice(fmt.Sprintf("ZNormalize (m=%d)", len(x)), inPlace, fromCopy, 0); err != nil {
		return err
	}
	if !ts.IsZNormalized(fromCopy, 1e-6) {
		return fmt.Errorf("ZNormalize output fails IsZNormalized: mean=%v std=%v", ts.Mean(fromCopy), ts.Std(fromCopy))
	}
	// Idempotence: normalizing twice is a no-op up to rounding.
	twice := ts.ZNormalize(fromCopy)
	return CheckSlice("ZNormalize idempotence", twice, fromCopy, DefaultTol)
}
