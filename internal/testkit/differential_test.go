package testkit

import (
	"math"
	"testing"
)

// differentialSeeds is how many independent generator seeds each oracle
// pair is driven with. Every seed draws fresh lengths, shapes, windows, and
// worker counts, so one run covers the degenerate corners (zeros, constants,
// spikes, length 1/2/3, pow2 and odd sizes) many times over.
const differentialSeeds = 25

// TestDifferentialOracles drives every registered fast-kernel/reference
// pair across many seeds. A failure names the pair, the seed, and the first
// disagreement, which reproduces deterministically:
//
//	go test ./internal/testkit -run 'Differential/<pair-name>'
func TestDifferentialOracles(t *testing.T) {
	for _, p := range Pairs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			if p.Tol > DefaultTol {
				t.Fatalf("oracle %s declares tolerance %g, above the %g ceiling", p.Name, p.Tol, DefaultTol)
			}
			for seed := int64(1); seed <= differentialSeeds; seed++ {
				if err := p.Run(NewGen(seed)); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestOracleRegistry pins the registry's own invariants: unique names,
// non-empty docs, and presence of the pairs the harness documentation
// promises (one per optimized subsystem).
func TestOracleRegistry(t *testing.T) {
	pairs := Pairs()
	seen := map[string]bool{}
	for _, p := range pairs {
		if p.Name == "" || p.Doc == "" {
			t.Errorf("oracle pair with empty name or doc: %+v", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate oracle pair name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Run == nil {
			t.Errorf("oracle pair %q has no Run", p.Name)
		}
	}
	for _, required := range []string{
		"fft/roundtrip",
		"fft/crosscorrelate-vs-direct",
		"fft/rfft-roundtrip",
		"fft/rfft-vs-complex",
		"fft/rfft-ncc-vs-direct",
		"sbd/fft-vs-reference",
		"sbd/nopow2-vs-reference",
		"sbd/nofft-vs-reference",
		"sbdbatch/batch-vs-pairwise",
		"sbdbatch/pairwise-and-nn",
		"dtw/rolling-vs-fullmatrix",
		"lbkeogh/bound-chain",
		"eigen/power-vs-ql",
		"shape/power-vs-ql",
		"par/sum-serial-vs-parallel",
		"par/minmax-serial-vs-parallel",
		"pairwise/serial-vs-parallel",
		"avg/dba-serial-vs-workers",
		"ts/znorm-copy-vs-inplace",
	} {
		if !seen[required] {
			t.Errorf("registry is missing required oracle pair %q", required)
		}
	}
}

func TestCloseSemantics(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1 + 1e-6, 1e-9, false},
		{1e12, 1e12 * (1 + 1e-12), 1e-9, true}, // relative, not absolute
		{0, 1e-10, 1e-9, true},                 // absolute near zero
		{nan, nan, 1e-9, true},
		{nan, 1, 1e-9, false},
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.Inf(1), 1e300, 1e-9, false},
	}
	for _, c := range cases {
		if got := Close(c.a, c.b, c.tol); got != c.want {
			t.Errorf("Close(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}
