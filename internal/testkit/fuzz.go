package testkit

import (
	"encoding/binary"
	"math"
)

// Fuzz-input decoding shared by every fuzz target in the module. Raw fuzz
// bytes become float64 series deterministically: 8 bytes per value, little
// endian, sanitized so that the invariants under test are about the kernels
// rather than about IEEE edge cases the library explicitly rejects at its
// boundaries (the UCR loader refuses NaN/Inf inputs, and magnitudes are
// clamped so tolerance checks stay meaningfully conditioned).

// fuzzMagnitudeCap bounds |value| of decoded fuzz floats. 1e6 is far beyond
// any z-normalized or UCR-archive magnitude while keeping products of pairs
// (up to 1e12, summed over a series) comfortably inside float64's exact
// range for relative-tolerance comparisons.
const fuzzMagnitudeCap = 1e6

// fuzzMagnitudeFloor flushes decoded values with tiny magnitude to zero so
// pairwise products never land in the subnormal range, where relative
// rounding guarantees break down.
const fuzzMagnitudeFloor = 1e-100

// SanitizeFloat maps an arbitrary float64 bit pattern to the fuzz input
// domain: NaN and ±Inf become 0, magnitudes are wrapped into
// (-fuzzMagnitudeCap, fuzzMagnitudeCap), and subnormal-territory values are
// flushed to 0. The mapping is deterministic, so corpus entries reproduce.
func SanitizeFloat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	if math.Abs(v) >= fuzzMagnitudeCap {
		v = math.Mod(v, fuzzMagnitudeCap)
	}
	if math.Abs(v) < fuzzMagnitudeFloor {
		return 0
	}
	return v
}

// DecodeFloats decodes data into at most limit sanitized float64 values
// (8 bytes each, little endian; trailing bytes are dropped).
func DecodeFloats(data []byte, limit int) []float64 {
	n := len(data) / 8
	if n > limit {
		n = limit
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = SanitizeFloat(math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:])))
	}
	return out
}

// DecodePair splits data into two equal-length sanitized series of at most
// limit points each. Both are empty when data holds fewer than two values.
func DecodePair(data []byte, limit int) (x, y []float64) {
	vals := DecodeFloats(data, 2*limit)
	m := len(vals) / 2
	if m == 0 {
		return nil, nil
	}
	return vals[:m], vals[m : 2*m]
}

// EncodeFloats is the inverse layout of DecodeFloats, used to build seed
// corpus entries from readable float slices.
func EncodeFloats(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}
