// Package testkit is the repository's shared correctness-tooling layer:
// a differential-testing registry that pairs every optimized kernel with a
// slow, obviously-correct reference oracle (see oracles.go), a seeded
// random-case generator exercised by both the differential tests and the
// fuzz targets (gen.go), and a golden-snapshot harness that pins byte-exact
// renderer output with an opt-in -update flag (golden.go).
//
// The package is imported only from _test.go files (external test packages
// such as dist_test, fft_test), which keeps it out of production binaries
// while letting every kernel package share one set of oracles, tolerances,
// and corpus conventions.
package testkit

import (
	"fmt"
	"math"
)

// DefaultTol is the relative tolerance used by the differential oracles for
// floating-point kernels whose fast and reference paths round differently.
// Exact pairs (serial vs parallel reductions, copy vs in-place transforms)
// use 0 instead: those must agree bit for bit.
const DefaultTol = 1e-9

// Close reports whether a and b agree within the relative tolerance tol:
//
//	|a-b| <= tol * (1 + |a| + |b|)
//
// which behaves like an absolute tolerance near zero and a relative one for
// large magnitudes. NaNs are close only to NaNs, and infinities only to
// infinities of the same sign.
func Close(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return math.IsInf(a, 1) == math.IsInf(b, 1) && math.IsInf(a, -1) == math.IsInf(b, -1)
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// SameBits reports whether a and b are the same float64 bit pattern. This is
// the comparison the exact oracles use: "parallel equals serial" in this
// codebase means bit-for-bit, not merely within rounding.
func SameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// CheckScalar returns a descriptive error when got and want disagree beyond
// tol. tol == 0 demands bit equality (SameBits).
func CheckScalar(name string, got, want, tol float64) error {
	if tol <= 0 {
		if !SameBits(got, want) {
			return fmt.Errorf("%s: got %v (bits %#x), want %v (bits %#x) [exact]",
				name, got, math.Float64bits(got), want, math.Float64bits(want))
		}
		return nil
	}
	if !Close(got, want, tol) {
		return fmt.Errorf("%s: got %v, want %v (|diff| %v > tol %v)",
			name, got, want, math.Abs(got-want), tol)
	}
	return nil
}

// CheckSlice compares got and want elementwise under CheckScalar semantics,
// reporting the first mismatching index.
func CheckSlice(name string, got, want []float64, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if err := CheckScalar(fmt.Sprintf("%s[%d]", name, i), got[i], want[i], tol); err != nil {
			return err
		}
	}
	return nil
}

// CheckInt returns an error when two integer results (an argmin index, an
// alignment shift) disagree; integer outputs of paired kernels must match
// exactly.
func CheckInt(name string, got, want int) error {
	if got != want {
		return fmt.Errorf("%s: got %d, want %d", name, got, want)
	}
	return nil
}
