package testkit

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenHarness exercises the snapshot machinery itself against a temp
// directory: update mode creates the file, a clean match passes, any 1-byte
// perturbation fails with a line-level diff, and re-running update accepts
// the new output.
func TestGoldenHarness(t *testing.T) {
	dir := t.TempDir()
	content := "header a b c\nrow 1 2 3\nrow 4 5 6\n"

	if err := golden(dir, "sample", content, false); err == nil {
		t.Fatal("missing golden file did not fail")
	} else if !strings.Contains(err.Error(), "-update") {
		t.Errorf("missing-file error does not mention -update: %v", err)
	}

	if err := golden(dir, "sample", content, true); err != nil {
		t.Fatalf("update mode failed: %v", err)
	}
	written, err := os.ReadFile(filepath.Join(dir, "sample.golden"))
	if err != nil {
		t.Fatalf("golden file not written: %v", err)
	}
	if string(written) != content {
		t.Fatalf("golden file content %q, want %q", written, content)
	}

	if err := golden(dir, "sample", content, false); err != nil {
		t.Fatalf("clean match failed: %v", err)
	}

	// Every single-byte perturbation must fail the comparison.
	for i := 0; i < len(content); i++ {
		mutated := []byte(content)
		mutated[i] ^= 0x01
		if err := golden(dir, "sample", string(mutated), false); err == nil {
			t.Fatalf("1-byte perturbation at offset %d passed the golden comparison", i)
		}
	}

	// Truncation and extension must fail too.
	if err := golden(dir, "sample", content[:len(content)-4], false); err == nil {
		t.Fatal("truncated output passed the golden comparison")
	}
	if err := golden(dir, "sample", content+"row 7 8 9\n", false); err == nil {
		t.Fatal("extended output passed the golden comparison")
	}

	// The mismatch diff names the first diverging line.
	err = golden(dir, "sample", strings.Replace(content, "row 4 5 6", "row 4 9 6", 1), false)
	if err == nil {
		t.Fatal("mismatched output passed")
	}
	if !strings.Contains(err.Error(), `"row 4 9 6"`) || !strings.Contains(err.Error(), `"row 4 5 6"`) {
		t.Errorf("diff does not show got/want lines: %v", err)
	}

	// Update accepts new output in place.
	if err := golden(dir, "sample", "entirely new\n", true); err != nil {
		t.Fatalf("re-update failed: %v", err)
	}
	if err := golden(dir, "sample", "entirely new\n", false); err != nil {
		t.Fatalf("match after re-update failed: %v", err)
	}
}

func TestDiffLinesPrefix(t *testing.T) {
	// A strict line-prefix (no trailing newline) reaches the length branch.
	out := diffLines("a\nb", "a\nb\nc")
	if !strings.Contains(out, "end of file") {
		t.Errorf("prefix diff missing end-of-file marker: %s", out)
	}
	out = diffLines("a\nb\nc", "a\nb")
	if !strings.Contains(out, "extra") {
		t.Errorf("suffix diff missing extra marker: %s", out)
	}
}
