// Package experiments regenerates every table and figure of the k-Shape
// paper's evaluation (Section 5 and Appendices A-B) on the synthetic
// archive: Table 2 (distance measures), Table 3 (scalable clustering),
// Table 4 (non-scalable clustering), and Figures 2-12. Each experiment
// returns a structured result that cmd/kbench renders as text and that
// bench_test.go exercises under testing.B.
package experiments

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"strings"

	"kshape/internal/dataset"
	"kshape/internal/obs"
)

// Config controls experiment scale. The zero value is unusable; call
// DefaultConfig or ReducedConfig.
type Config struct {
	// Datasets to evaluate. Defaults to the full 48-dataset archive.
	Datasets []dataset.Dataset
	// Runs is the number of random restarts averaged for partitional
	// methods (the paper uses 10).
	Runs int
	// SpectralRuns is the number of restarts for spectral methods (the
	// paper uses 100).
	SpectralRuns int
	// Seed drives all randomized initializations.
	Seed int64
	// MaxWindowFrac bounds the cDTWopt leave-one-out window scan
	// (the paper scans up to 20% windows; we default to 0.10 which covers
	// the 4.5% average optimum the paper reports).
	MaxWindowFrac float64
	// Logger, if non-nil, receives one structured record per completed
	// unit of work (method, dataset, wall time, score fields) at info
	// level. cmd/kbench wires its -log-level/-log-json flags here.
	Logger *slog.Logger
	// Progress, if non-nil, receives one plain-text line per completed
	// unit of work — the legacy sink, kept for callers without a Logger.
	Progress io.Writer
	// Metrics, if non-nil, receives one RunRecord per (method, dataset)
	// unit of work — wall time, score, kernel-counter deltas, and (for
	// iterative methods) the per-iteration convergence trajectory. Callers
	// should also obs.SetEnabled(true) so the counter deltas are non-zero.
	// When Metrics is set, clustering sweeps run datasets serially so that
	// each record's counter delta is attributable to that run alone.
	Metrics *obs.Collector
	// Workers bounds the dataset-level parallelism of the experiment
	// sweeps (par.Resolve semantics: <= 0 means runtime.NumCPU(), 1 means
	// serial). Individual clustering runs inside a sweep always execute
	// serially so that per-run records stay attributable; results are
	// identical for every value.
	Workers int
}

// DefaultConfig is the full-scale configuration used by cmd/kbench: all 48
// datasets, 5 partitional runs, 10 spectral runs.
func DefaultConfig() Config {
	return Config{
		Datasets:      dataset.Archive(),
		Runs:          5,
		SpectralRuns:  10,
		Seed:          1,
		MaxWindowFrac: 0.10,
	}
}

// ReducedConfig is a down-scaled configuration for smoke tests and
// testing.B benchmarks: the first nDatasets archive entries and fewer runs.
func ReducedConfig(nDatasets int) Config {
	specs := dataset.ArchiveSpecs()
	if nDatasets > len(specs) {
		nDatasets = len(specs)
	}
	ds := make([]dataset.Dataset, nDatasets)
	for i := 0; i < nDatasets; i++ {
		ds[i] = dataset.Generate(specs[i])
	}
	return Config{
		Datasets:      ds,
		Runs:          2,
		SpectralRuns:  2,
		Seed:          1,
		MaxWindowFrac: 0.10,
	}
}

// progress reports one completed unit of work. attrs are alternating
// key/value pairs (slog convention): the Logger receives them as
// structured fields, and the legacy Progress writer gets a rendered
// "msg key=value ..." line.
func (c Config) progress(msg string, attrs ...any) {
	if c.Logger != nil {
		c.Logger.Info(msg, attrs...)
	}
	if c.Progress != nil {
		var sb strings.Builder
		sb.WriteString(msg)
		for i := 0; i+1 < len(attrs); i += 2 {
			fmt.Fprintf(&sb, " %v=%v", attrs[i], attrs[i+1])
		}
		//lint:ignore errdrop best-effort progress line to an interactive console
		fmt.Fprintln(c.Progress, sb.String())
	}
}

func (c Config) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed + offset))
}

// CompareCounts tallies, per dataset, whether each score in a beats, ties,
// or loses to the corresponding score in b (the ">", "=", "<" columns of
// Tables 2-4). Scores are compared after rounding to 3 decimals, the
// resolution at which the paper's tables report ties.
func CompareCounts(a, b []float64) (greater, equal, less int) {
	round := func(x float64) float64 {
		return float64(int(x*1000+0.5)) / 1000
	}
	for i := range a {
		switch {
		case round(a[i]) > round(b[i]):
			greater++
		//lint:ignore floatcmp exact tie in the rounded scores mirrors the paper's >/=/< counting
		case round(a[i]) == round(b[i]):
			equal++
		default:
			less++
		}
	}
	return greater, equal, less
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
