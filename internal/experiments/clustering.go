package experiments

import (
	"math/rand"
	"sync"
	"time"

	"kshape/internal/cluster"
	"kshape/internal/core"
	"kshape/internal/dataset"
	"kshape/internal/dist"
	"kshape/internal/eval"
	"kshape/internal/obs"
	"kshape/internal/par"
	"kshape/internal/stats"
	"kshape/internal/ts"
)

// ClusterRow is one row of Table 3 or Table 4.
type ClusterRow struct {
	Name string
	// RandIndexes holds the per-dataset Rand Index (averaged over runs for
	// randomized methods), aligned with Config.Datasets.
	RandIndexes []float64
	// Greater/Equal/Less count datasets vs the k-AVG+ED baseline.
	Greater, Equal, Less int
	// Better (Worse) is true when the method beats (loses to) k-AVG+ED with
	// Wilcoxon significance at the paper's 99% confidence.
	Better, Worse bool
	// AvgRandIndex is the mean Rand Index across datasets.
	AvgRandIndex float64
	// RuntimeRatio is total clustering time divided by k-AVG+ED's
	// (reported for the scalable methods of Table 3).
	RuntimeRatio float64
	// Runtime is the raw wall time.
	Runtime time.Duration
}

// Table3Result aggregates the scalable-methods comparison.
type Table3Result struct {
	// Baseline is the k-AVG+ED row all others are compared against.
	Baseline ClusterRow
	Rows     []ClusterRow
}

// Table3 reproduces the scalable clustering comparison: k-AVG+SBD,
// k-AVG+DTW, KSC, k-DBA, k-Shape+DTW, and k-Shape against k-AVG+ED, by
// Rand Index over the fused train+test split of every dataset, averaged
// over Config.Runs random initializations.
func Table3(cfg Config) Table3Result {
	methods := []cluster.Clusterer{
		cluster.NewKAvgSBD(),
		cluster.NewKAvgDTW(),
		cluster.NewKSC(),
		cluster.NewKDBA(),
		cluster.NewKShapeDTW(),
		cluster.NewKShape(),
	}
	baseline := runClusterer(cfg, cluster.NewKAvgED(), cfg.Runs)
	rows := make([]ClusterRow, len(methods))
	for i, m := range methods {
		rows[i] = runClusterer(cfg, m, cfg.Runs)
		finishRow(&rows[i], baseline)
	}
	finishRow(&baseline, baseline)
	return Table3Result{Baseline: baseline, Rows: rows}
}

// Table4Result aggregates the non-scalable-methods comparison.
type Table4Result struct {
	Baseline ClusterRow
	Rows     []ClusterRow
}

// Table4 reproduces the non-scalable clustering comparison — hierarchical
// (three linkages), spectral, and PAM, each with ED, cDTW5, and SBD —
// against k-AVG+ED. The pairwise dissimilarity matrix of each (dataset,
// measure) pair is computed once and shared across the methods that need
// it, as any practical implementation would.
func Table4(cfg Config) Table4Result {
	baseline := runClusterer(cfg, cluster.NewKAvgED(), cfg.Runs)
	finishRow(&baseline, baseline)

	measures := []dist.Measure{
		dist.EDMeasure{},
		dist.NewCDTWFrac("cDTW5", 0.05),
		dist.SBDMeasure{},
	}
	// Row order mirrors the paper's Table 4: H-S, H-A, H-C, S, PAM — each
	// expanded by measure.
	var rows []ClusterRow
	for _, meas := range measures {
		for _, linkage := range []cluster.Linkage{cluster.SingleLinkage, cluster.AverageLinkage, cluster.CompleteLinkage} {
			rows = append(rows, runMatrixClusterer(cfg, matrixJob{
				name:    cluster.NewHierarchical(linkage, meas).Name(),
				measure: meas,
				linkage: linkage,
				kind:    jobHierarchical,
			}))
		}
		rows = append(rows, runMatrixClusterer(cfg, matrixJob{
			name:    "S+" + meas.Name(),
			measure: meas,
			kind:    jobSpectral,
			runs:    cfg.SpectralRuns,
		}))
		rows = append(rows, runMatrixClusterer(cfg, matrixJob{
			name:    "PAM+" + meas.Name(),
			measure: meas,
			kind:    jobPAM,
			runs:    cfg.Runs,
		}))
	}
	for i := range rows {
		finishRow(&rows[i], baseline)
	}
	return Table4Result{Baseline: baseline, Rows: rows}
}

// finishRow fills the comparison columns of row against the baseline.
func finishRow(row *ClusterRow, baseline ClusterRow) {
	row.AvgRandIndex = Mean(row.RandIndexes)
	row.Greater, row.Equal, row.Less = CompareCounts(row.RandIndexes, baseline.RandIndexes)
	row.Better = stats.SignificantlyBetter(row.RandIndexes, baseline.RandIndexes, 0.99)
	row.Worse = stats.SignificantlyBetter(baseline.RandIndexes, row.RandIndexes, 0.99)
	if baseline.Runtime > 0 {
		row.RuntimeRatio = float64(row.Runtime) / float64(baseline.Runtime)
	}
}

// runClusterer evaluates one scalable clusterer across all datasets,
// averaging the Rand Index over runs random restarts. Datasets execute in
// parallel (serially when Config.Metrics is set, so counter deltas stay
// attributable to one run); seeding is deterministic per (dataset, run).
func runClusterer(cfg Config, c cluster.Clusterer, runs int) ClusterRow {
	datasets := cfg.Datasets
	row := ClusterRow{Name: c.Name(), RandIndexes: make([]float64, len(datasets))}
	if runs < 1 {
		runs = 1
	}
	sw := obs.NewStopwatch()
	evalDataset := func(d int) {
		ds := datasets[d]
		data := ts.Rows(ds.All())
		truth := ts.Labels(ds.All())
		sum := 0.0
		count := 0
		for r := 0; r < runs; r++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(d)*1000 + int64(r)))
			ri, ok := observedRun(cfg, c, data, truth, ds.Name, ds.K, r, rng)
			if !ok {
				continue
			}
			sum += ri
			count++
			if c.Deterministic() {
				break
			}
		}
		if count > 0 {
			row.RandIndexes[d] = sum / float64(count)
		}
	}
	if cfg.Metrics != nil {
		for d := range datasets {
			evalDataset(d)
		}
	} else {
		cfg.parallelOver(len(datasets), evalDataset)
	}
	row.Runtime = sw.Elapsed()
	cfg.progress("clustering sweep done", "method", c.Name(), "seconds", row.Runtime.Seconds(), "avg_rand_index", Mean(row.RandIndexes))
	return row
}

// observedRun executes one clustering run, recording a RunRecord (wall
// time, Rand Index, counter delta, iteration trajectory) when metrics
// collection is on. It returns the run's Rand Index.
func observedRun(cfg Config, c cluster.Clusterer, data [][]float64, truth []int, dsName string, k, run int, rng *rand.Rand) (float64, bool) {
	// Individual runs stay serial (Workers: 1): without Metrics the sweep
	// already parallelizes across datasets, and with Metrics a serial run
	// keeps the counter deltas and per-phase timings attributable to one
	// run at a time.
	if cfg.Metrics == nil {
		res, err := cluster.Run(c, data, k, rng, cluster.Opts{Workers: 1})
		if err != nil {
			return 0, false
		}
		return eval.RandIndex(res.Labels, truth), true
	}
	var traj []obs.IterationStats
	before := obs.ReadCounters()
	sw := obs.NewStopwatch()
	res, err := cluster.Run(c, data, k, rng, cluster.Opts{
		OnIteration: func(st obs.IterationStats) { traj = append(traj, st) },
		Workers:     1,
	})
	elapsed := sw.Elapsed()
	if err != nil {
		return 0, false
	}
	ri := eval.RandIndex(res.Labels, truth)
	cfg.Metrics.Record(obs.RunRecord{
		Method:     c.Name(),
		Dataset:    dsName,
		Run:        run,
		Seconds:    elapsed.Seconds(),
		Score:      ri,
		ScoreKind:  "rand_index",
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Counters:   obs.ReadCounters().Sub(before),
		Trajectory: traj,
	})
	return ri, true
}

type matrixJobKind int

const (
	jobHierarchical matrixJobKind = iota
	jobSpectral
	jobPAM
)

type matrixJob struct {
	name    string
	measure dist.Measure
	linkage cluster.Linkage
	kind    matrixJobKind
	runs    int
}

// matrixCache shares pairwise dissimilarity matrices across Table 4 methods
// within one process.
var matrixCache = struct {
	sync.Mutex
	m map[string][][]float64
}{m: map[string][][]float64{}}

func cachedMatrix(dsName string, meas dist.Measure, data [][]float64) [][]float64 {
	key := dsName + "|" + meas.Name()
	matrixCache.Lock()
	if d, ok := matrixCache.m[key]; ok {
		matrixCache.Unlock()
		return d
	}
	matrixCache.Unlock()
	d := dist.PairwiseMatrix(meas, data)
	matrixCache.Lock()
	matrixCache.m[key] = d
	matrixCache.Unlock()
	return d
}

// ResetMatrixCache clears the shared dissimilarity-matrix cache (used by
// benchmarks that must measure matrix construction).
func ResetMatrixCache() {
	matrixCache.Lock()
	matrixCache.m = map[string][][]float64{}
	matrixCache.Unlock()
}

// runMatrixClusterer evaluates one non-scalable method across all datasets.
func runMatrixClusterer(cfg Config, job matrixJob) ClusterRow {
	datasets := cfg.Datasets
	row := ClusterRow{Name: job.name, RandIndexes: make([]float64, len(datasets))}
	runs := job.runs
	if runs < 1 {
		runs = 1
	}
	sw := obs.NewStopwatch()
	for d, ds := range datasets {
		data := ts.Rows(ds.All())
		truth := ts.Labels(ds.All())
		var countersBefore obs.Counters
		var dsSW obs.Stopwatch
		if cfg.Metrics != nil {
			countersBefore = obs.ReadCounters()
			dsSW = obs.NewStopwatch()
		}
		dm := cachedMatrix(ds.Name, job.measure, data)
		switch job.kind {
		case jobHierarchical:
			h := cluster.NewHierarchical(job.linkage, job.measure)
			res, err := h.ClusterWithMatrix(data, dm, ds.K)
			if err == nil {
				row.RandIndexes[d] = eval.RandIndex(res.Labels, truth)
			}
		case jobSpectral:
			s := cluster.NewSpectral(job.measure)
			emb, err := s.Embed(dm, ds.K)
			if err != nil {
				continue
			}
			sum, count := 0.0, 0
			for r := 0; r < runs; r++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(d)*1000 + int64(r)))
				res, err := kmeansOnEmbedding(emb, ds.K, rng)
				if err != nil {
					continue
				}
				sum += eval.RandIndex(res.Labels, truth)
				count++
			}
			if count > 0 {
				row.RandIndexes[d] = sum / float64(count)
			}
		case jobPAM:
			p := cluster.NewPAM(job.measure)
			sum, count := 0.0, 0
			for r := 0; r < runs; r++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(d)*1000 + int64(r)))
				res, err := p.ClusterWithMatrix(data, dm, ds.K, rng)
				if err != nil {
					continue
				}
				sum += eval.RandIndex(res.Labels, truth)
				count++
			}
			if count > 0 {
				row.RandIndexes[d] = sum / float64(count)
			}
		}
		if cfg.Metrics != nil {
			// Matrix methods have no refinement loop to trace; the record
			// carries wall time (including any matrix build this method
			// triggered first) and the kernel-counter delta.
			cfg.Metrics.Record(obs.RunRecord{
				Method:    job.name,
				Dataset:   ds.Name,
				Seconds:   dsSW.Seconds(),
				Score:     row.RandIndexes[d],
				ScoreKind: "rand_index",
				Counters:  obs.ReadCounters().Sub(countersBefore),
			})
		}
	}
	row.Runtime = sw.Elapsed()
	cfg.progress("clustering sweep done", "method", job.name, "seconds", row.Runtime.Seconds(), "avg_rand_index", Mean(row.RandIndexes))
	return row
}

// kmeansOnEmbedding runs plain k-means (ED + mean) on spectral embedding
// rows.
func kmeansOnEmbedding(emb [][]float64, k int, rng *rand.Rand) (*core.Result, error) {
	return core.Lloyd(emb, core.Config{
		K:        k,
		Distance: func(c, x []float64) float64 { return dist.ED(c, x) },
		Centroid: func(members [][]float64, prev []float64) []float64 {
			if len(members) == 0 {
				return append([]float64(nil), prev...)
			}
			out := make([]float64, len(members[0]))
			for _, x := range members {
				for i, v := range x {
					out[i] += v
				}
			}
			for i := range out {
				out[i] /= float64(len(members))
			}
			return out
		},
		Rand: rng,
	})
}

// parallelOver runs fn(i) for i in [0, n) across the configured number of
// workers, on the shared internal/par substrate.
func (c Config) parallelOver(n int, fn func(int)) {
	par.For(c.Workers, n, fn)
}

// RowByName returns the named row (including the baseline), or nil.
func (t Table3Result) RowByName(name string) *ClusterRow {
	if t.Baseline.Name == name {
		return &t.Baseline
	}
	for i := range t.Rows {
		if t.Rows[i].Name == name {
			return &t.Rows[i]
		}
	}
	return nil
}

// RowByName returns the named row (including the baseline), or nil.
func (t Table4Result) RowByName(name string) *ClusterRow {
	if t.Baseline.Name == name {
		return &t.Baseline
	}
	for i := range t.Rows {
		if t.Rows[i].Name == name {
			return &t.Rows[i]
		}
	}
	return nil
}

// Fig7Result holds the Rand Index pairs behind Figure 7's scatter plots
// (k-Shape vs KSC, k-Shape vs k-DBA).
type Fig7Result struct {
	Names  []string
	KShape []float64
	KSC    []float64
	KDBA   []float64
}

// Fig7 derives the Figure 7 scatter data from a Table 3 result.
func Fig7(cfg Config, t3 Table3Result) Fig7Result {
	names := make([]string, len(cfg.Datasets))
	for i, ds := range cfg.Datasets {
		names[i] = ds.Name
	}
	return Fig7Result{
		Names:  names,
		KShape: t3.RowByName("k-Shape").RandIndexes,
		KSC:    t3.RowByName("KSC").RandIndexes,
		KDBA:   t3.RowByName("k-DBA").RandIndexes,
	}
}

// Fig8 runs the Friedman + Nemenyi analysis over the k-means variants of
// Figure 8: k-Shape, k-AVG+ED, KSC, k-DBA.
func Fig8(cfg Config, t3 Table3Result) RankResult {
	names := []string{"k-Shape", "k-AVG+ED", "KSC", "k-DBA"}
	return rankAnalysis(names, func(name string) []float64 {
		return t3.RowByName(name).RandIndexes
	}, len(cfg.Datasets))
}

// Fig9 runs the Friedman + Nemenyi analysis over the methods that beat
// k-AVG+ED (Figure 9): k-Shape, PAM+SBD, PAM+cDTW, S+SBD, plus k-AVG+ED.
func Fig9(cfg Config, t3 Table3Result, t4 Table4Result) RankResult {
	get := func(name string) []float64 {
		if r := t3.RowByName(name); r != nil {
			return r.RandIndexes
		}
		return t4.RowByName(name).RandIndexes
	}
	names := []string{"k-Shape", "PAM+SBD", "PAM+cDTW5", "S+SBD", "k-AVG+ED"}
	return rankAnalysis(names, get, len(cfg.Datasets))
}

// ECGDataset returns the ECG-like dataset used by the Figure 1/4
// illustrations.
func ECGDataset() dataset.Dataset {
	ds, ok := dataset.ArchiveByName("ECGLike")
	if !ok {
		panic("experiments: ECGLike missing from archive")
	}
	return ds
}
