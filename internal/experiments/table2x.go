package experiments

import (
	"kshape/internal/obs"

	"kshape/internal/dist"
	"kshape/internal/eval"
	"kshape/internal/stats"
)

// Table2Extended compares SBD and ED against the wider elastic-measure
// family (LCSS, EDR, ERP, MSM, TWED) from the comparative studies the
// paper's Section 2.3 builds on. The paper itself restricts Table 2 to
// ED/DTW/cDTW because those studies found them dominant; this experiment
// verifies that conclusion holds on the synthetic archive too.
func Table2Extended(cfg Config) Table2Result {
	measures := []dist.Measure{dist.EDMeasure{}, dist.SBDMeasure{}}
	measures = append(measures, dist.ElasticMeasures()...)
	rows := make([]DistanceRow, len(measures))
	for r, m := range measures {
		accs := make([]float64, len(cfg.Datasets))
		sw := obs.NewStopwatch()
		for i, ds := range cfg.Datasets {
			accs[i] = eval.OneNNAccuracy(m, ds.Train, ds.Test)
		}
		rows[r] = DistanceRow{Name: m.Name(), Accuracies: accs, Runtime: sw.Elapsed()}
		cfg.progress("table2x measure done", "measure", m.Name(), "seconds", rows[r].Runtime.Seconds(), "avg_accuracy", Mean(accs))
	}
	ed := rows[0]
	for r := range rows {
		rows[r].AvgAccuracy = Mean(rows[r].Accuracies)
		rows[r].Greater, rows[r].Equal, rows[r].Less = CompareCounts(rows[r].Accuracies, ed.Accuracies)
		rows[r].Better = stats.SignificantlyBetter(rows[r].Accuracies, ed.Accuracies, 0.99)
		if ed.Runtime > 0 {
			rows[r].RuntimeRatio = float64(rows[r].Runtime) / float64(ed.Runtime)
		}
	}
	return Table2Result{Rows: rows}
}
