package experiments

import (
	"fmt"
	"io"
	"strings"
)

// The Write* renderers below build each table in memory and emit it with
// a single checked write: a report is either complete on the destination
// or the caller gets the error. (The errdrop analyzer bans silently
// discarded write errors — a truncated accuracy table must not look like
// a success.)

// flush copies one fully rendered table to w in a single write.
func flush(w io.Writer, b *strings.Builder) error {
	_, err := io.WriteString(w, b.String())
	return err
}

// yesNo renders the paper's check/cross columns.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// WriteTable2 renders Table 2 in the paper's layout.
func WriteTable2(w io.Writer, t Table2Result) error {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 2: comparison of distance measures against ED (1-NN accuracy)")
	fmt.Fprintf(&b, "%-10s %4s %4s %4s %-7s %-9s %-9s\n",
		"Measure", ">", "=", "<", "Better", "AvgAcc", "Runtime")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s %4d %4d %4d %-7s %-9.3f %8.1fx\n",
			r.Name, r.Greater, r.Equal, r.Less, yesNo(r.Better), r.AvgAccuracy, r.RuntimeRatio)
	}
	if t.TunedWindows != nil {
		fmt.Fprintf(&b, "cDTWopt average tuned window: %.1f%% of series length\n",
			100*t.AvgTunedWindowFrac)
	}
	return flush(w, &b)
}

// WriteClusterTable renders Table 3 or Table 4 in the paper's layout.
func WriteClusterTable(w io.Writer, title string, baseline ClusterRow, rows []ClusterRow, withRuntime bool) error {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	if withRuntime {
		fmt.Fprintf(&b, "%-17s %4s %4s %4s %-7s %-6s %-9s %-9s\n",
			"Algorithm", ">", "=", "<", "Better", "Worse", "RandIdx", "Runtime")
	} else {
		fmt.Fprintf(&b, "%-17s %4s %4s %4s %-7s %-6s %-9s\n",
			"Algorithm", ">", "=", "<", "Better", "Worse", "RandIdx")
	}
	for _, r := range rows {
		if withRuntime {
			fmt.Fprintf(&b, "%-17s %4d %4d %4d %-7s %-6s %-9.3f %8.1fx\n",
				r.Name, r.Greater, r.Equal, r.Less, yesNo(r.Better), yesNo(r.Worse), r.AvgRandIndex, r.RuntimeRatio)
		} else {
			fmt.Fprintf(&b, "%-17s %4d %4d %4d %-7s %-6s %-9.3f\n",
				r.Name, r.Greater, r.Equal, r.Less, yesNo(r.Better), yesNo(r.Worse), r.AvgRandIndex)
		}
	}
	fmt.Fprintf(&b, "(baseline %s: avg Rand Index %.3f)\n", baseline.Name, baseline.AvgRandIndex)
	return flush(w, &b)
}

// WriteScatter renders per-dataset (x, y) pairs as CSV — the data behind
// the paper's scatter figures.
func WriteScatter(w io.Writer, title, xName, yName string, names []string, xs, ys []float64) error {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "dataset,%s,%s,winner\n", xName, yName)
	for i := range names {
		winner := yName
		switch {
		case xs[i] > ys[i]:
			winner = xName
		//lint:ignore floatcmp exact tie in the winner column mirrors the paper's ">/=/<" counting
		case xs[i] == ys[i]:
			winner = "tie"
		}
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%s\n", names[i], xs[i], ys[i], winner)
	}
	return flush(w, &b)
}

// WriteRanks renders an average-rank analysis with its Nemenyi grouping —
// the textual form of the paper's critical-difference figures.
func WriteRanks(w io.Writer, title string, r RankResult) error {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "Friedman p = %.4g, Nemenyi CD (α=0.05) = %.3f\n", r.FriedmanP, r.CD)
	for _, idx := range r.Order {
		fmt.Fprintf(&b, "  %-12s avg rank %.3f\n", r.Names[idx], r.AvgRanks[idx])
	}
	for g, group := range r.Groups {
		names := make([]string, len(group))
		for i, idx := range group {
			names[i] = r.Names[idx]
		}
		fmt.Fprintf(&b, "  group %d (no significant difference): %s\n", g+1, strings.Join(names, ", "))
	}
	if len(r.Groups) == 0 {
		fmt.Fprintln(&b, "  all pairwise rank differences exceed the critical difference")
	}
	return flush(w, &b)
}

// WriteAppendixA renders a Figure 10/11 comparison.
func WriteAppendixA(w io.Writer, r AppendixAResult) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Appendix A: cross-correlation variants under %s\n", r.Normalization)
	fmt.Fprintf(&b, "%-6s %-9s\n", "Var", "AvgAcc")
	for v, name := range r.Names {
		fmt.Fprintf(&b, "%-6s %-9.3f\n", name, Mean(r.Accuracies[v]))
	}
	n := len(r.Accuracies[0])
	fmt.Fprintf(&b, "SBD better than NCCu on %d/%d datasets, better than NCCb on %d/%d\n",
		r.SBDBeatsU, n, r.SBDBeatsB, n)
	return flush(w, &b)
}

// WriteFig2 renders the warping-path illustration as an ASCII band matrix.
func WriteFig2(w io.Writer, r Fig2Result) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: Sakoe-Chiba band (w=%d) and cDTW warping path, m=%d\n", r.Window, r.M)
	fmt.Fprintf(&b, "ED = %.3f, cDTW = %.3f\n", r.EDValue, r.CDTW)
	onPath := map[[2]int]bool{}
	for _, p := range r.Path {
		onPath[p] = true
	}
	for i := 0; i < r.M; i++ {
		for j := 0; j < r.M; j++ {
			switch {
			case onPath[[2]int{i, j}]:
				b.WriteByte('#')
			case abs(i-j) <= r.Window:
				b.WriteByte('.')
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	return flush(w, &b)
}

// WriteFig3 renders the normalization study.
func WriteFig3(w io.Writer, r Fig3Result) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: cross-correlation normalizations, m=%d (sequences aligned; correct peak shift = 0)\n", r.M)
	fmt.Fprintf(&b, "  NCCb without z-normalization: peak at shift %+d (spurious)\n", r.PeakShiftNCCbRaw)
	fmt.Fprintf(&b, "  NCCu with z-normalization:    peak at shift %+d\n", r.PeakShiftNCCu)
	fmt.Fprintf(&b, "  NCCc with z-normalization:    peak at shift %+d (value %.3f)\n", r.PeakShiftNCCc, r.PeakValueNCCc)
	return flush(w, &b)
}

// WriteFig4 renders the centroid comparison.
func WriteFig4(w io.Writer, r Fig4Result) error {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 4: class centroids on the ECG-like dataset (avg SBD to class members; lower is better)")
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "  class %d: arithmetic mean %.3f | shape extraction %.3f\n",
			c.Label, c.MeanSBD, c.ShapeSBD)
	}
	return flush(w, &b)
}

// WriteFig12 renders the scalability sweeps as CSV series.
func WriteFig12(w io.Writer, r Fig12Result) error {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 12a: runtime vs number of series (CBF, m fixed)")
	fmt.Fprintln(&b, "n,m,k-AVG+ED_sec,k-Shape_sec,k-AVG+ED_iters,k-Shape_iters")
	for _, p := range r.VaryN {
		fmt.Fprintf(&b, "%d,%d,%.3f,%.3f,%d,%d\n", p.N, p.M, p.KAvgEDSeconds, p.KShapeSeconds, p.KAvgEDIters, p.KShapeIters)
	}
	fmt.Fprintln(&b, "Figure 12b: runtime vs series length (CBF, n fixed)")
	fmt.Fprintln(&b, "n,m,k-AVG+ED_sec,k-Shape_sec,k-AVG+ED_iters,k-Shape_iters")
	for _, p := range r.VaryM {
		fmt.Fprintf(&b, "%d,%d,%.3f,%.3f,%d,%d\n", p.N, p.M, p.KAvgEDSeconds, p.KShapeSeconds, p.KAvgEDIters, p.KShapeIters)
	}
	return flush(w, &b)
}

// WriteKEstimation renders the k-estimation study.
func WriteKEstimation(w io.Writer, r KEstimationResult) error {
	var b strings.Builder
	fmt.Fprintln(&b, "k estimation by intrinsic criteria (paper footnote 2)")
	fmt.Fprintf(&b, "%-18s %-6s %-6s %-6s %-6s\n", "dataset", "true", "sil", "DB", "CH")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %-6d %-6d %-6d %-6d\n",
			row.Dataset, row.TrueK, row.SilhouetteK, row.DBK, row.CHK)
	}
	n := len(r.Rows)
	fmt.Fprintf(&b, "exact / within-1 of true k over %d datasets: silhouette %d/%d, Davies-Bouldin %d/%d, Calinski-Harabasz %d/%d\n",
		n, r.SilExact, r.SilWithinOne, r.DBExact, r.DBWithinOne, r.CHExact, r.CHWithinOne)
	return flush(w, &b)
}

// WriteDatasetInventory renders the archive catalog (name, classes, sizes),
// the analogue of the paper's dataset table.
func WriteDatasetInventory(w io.Writer, datasets []DatasetInfo) error {
	var b strings.Builder
	fmt.Fprintln(&b, "Synthetic archive inventory (UCR stand-in; see DESIGN.md §2)")
	fmt.Fprintf(&b, "%-18s %-4s %-6s %-7s %-6s\n", "dataset", "k", "length", "train", "test")
	for _, d := range datasets {
		fmt.Fprintf(&b, "%-18s %-4d %-6d %-7d %-6d\n", d.Name, d.K, d.M, d.Train, d.Test)
	}
	return flush(w, &b)
}

// DatasetInfo is the inventory row for WriteDatasetInventory.
type DatasetInfo struct {
	Name              string
	K, M, Train, Test int
}

// Inventory summarizes the configured datasets for WriteDatasetInventory.
func Inventory(cfg Config) []DatasetInfo {
	out := make([]DatasetInfo, len(cfg.Datasets))
	for i, ds := range cfg.Datasets {
		out[i] = DatasetInfo{Name: ds.Name, K: ds.K, M: ds.M, Train: len(ds.Train), Test: len(ds.Test)}
	}
	return out
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
