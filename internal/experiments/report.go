package experiments

import (
	"fmt"
	"io"
	"strings"
)

// yesNo renders the paper's check/cross columns.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// WriteTable2 renders Table 2 in the paper's layout.
func WriteTable2(w io.Writer, t Table2Result) {
	fmt.Fprintln(w, "Table 2: comparison of distance measures against ED (1-NN accuracy)")
	fmt.Fprintf(w, "%-10s %4s %4s %4s %-7s %-9s %-9s\n",
		"Measure", ">", "=", "<", "Better", "AvgAcc", "Runtime")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-10s %4d %4d %4d %-7s %-9.3f %8.1fx\n",
			r.Name, r.Greater, r.Equal, r.Less, yesNo(r.Better), r.AvgAccuracy, r.RuntimeRatio)
	}
	if t.TunedWindows != nil {
		fmt.Fprintf(w, "cDTWopt average tuned window: %.1f%% of series length\n",
			100*t.AvgTunedWindowFrac)
	}
}

// WriteClusterTable renders Table 3 or Table 4 in the paper's layout.
func WriteClusterTable(w io.Writer, title string, baseline ClusterRow, rows []ClusterRow, withRuntime bool) {
	fmt.Fprintln(w, title)
	if withRuntime {
		fmt.Fprintf(w, "%-17s %4s %4s %4s %-7s %-6s %-9s %-9s\n",
			"Algorithm", ">", "=", "<", "Better", "Worse", "RandIdx", "Runtime")
	} else {
		fmt.Fprintf(w, "%-17s %4s %4s %4s %-7s %-6s %-9s\n",
			"Algorithm", ">", "=", "<", "Better", "Worse", "RandIdx")
	}
	for _, r := range rows {
		if withRuntime {
			fmt.Fprintf(w, "%-17s %4d %4d %4d %-7s %-6s %-9.3f %8.1fx\n",
				r.Name, r.Greater, r.Equal, r.Less, yesNo(r.Better), yesNo(r.Worse), r.AvgRandIndex, r.RuntimeRatio)
		} else {
			fmt.Fprintf(w, "%-17s %4d %4d %4d %-7s %-6s %-9.3f\n",
				r.Name, r.Greater, r.Equal, r.Less, yesNo(r.Better), yesNo(r.Worse), r.AvgRandIndex)
		}
	}
	fmt.Fprintf(w, "(baseline %s: avg Rand Index %.3f)\n", baseline.Name, baseline.AvgRandIndex)
}

// WriteScatter renders per-dataset (x, y) pairs as CSV — the data behind
// the paper's scatter figures.
func WriteScatter(w io.Writer, title, xName, yName string, names []string, xs, ys []float64) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "dataset,%s,%s,winner\n", xName, yName)
	for i := range names {
		winner := yName
		switch {
		case xs[i] > ys[i]:
			winner = xName
		case xs[i] == ys[i]:
			winner = "tie"
		}
		fmt.Fprintf(w, "%s,%.4f,%.4f,%s\n", names[i], xs[i], ys[i], winner)
	}
}

// WriteRanks renders an average-rank analysis with its Nemenyi grouping —
// the textual form of the paper's critical-difference figures.
func WriteRanks(w io.Writer, title string, r RankResult) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "Friedman p = %.4g, Nemenyi CD (α=0.05) = %.3f\n", r.FriedmanP, r.CD)
	for _, idx := range r.Order {
		fmt.Fprintf(w, "  %-12s avg rank %.3f\n", r.Names[idx], r.AvgRanks[idx])
	}
	for g, group := range r.Groups {
		names := make([]string, len(group))
		for i, idx := range group {
			names[i] = r.Names[idx]
		}
		fmt.Fprintf(w, "  group %d (no significant difference): %s\n", g+1, strings.Join(names, ", "))
	}
	if len(r.Groups) == 0 {
		fmt.Fprintln(w, "  all pairwise rank differences exceed the critical difference")
	}
}

// WriteAppendixA renders a Figure 10/11 comparison.
func WriteAppendixA(w io.Writer, r AppendixAResult) {
	fmt.Fprintf(w, "Appendix A: cross-correlation variants under %s\n", r.Normalization)
	fmt.Fprintf(w, "%-6s %-9s\n", "Var", "AvgAcc")
	for v, name := range r.Names {
		fmt.Fprintf(w, "%-6s %-9.3f\n", name, Mean(r.Accuracies[v]))
	}
	n := len(r.Accuracies[0])
	fmt.Fprintf(w, "SBD better than NCCu on %d/%d datasets, better than NCCb on %d/%d\n",
		r.SBDBeatsU, n, r.SBDBeatsB, n)
}

// WriteFig2 renders the warping-path illustration as an ASCII band matrix.
func WriteFig2(w io.Writer, r Fig2Result) {
	fmt.Fprintf(w, "Figure 2: Sakoe-Chiba band (w=%d) and cDTW warping path, m=%d\n", r.Window, r.M)
	fmt.Fprintf(w, "ED = %.3f, cDTW = %.3f\n", r.EDValue, r.CDTW)
	onPath := map[[2]int]bool{}
	for _, p := range r.Path {
		onPath[p] = true
	}
	for i := 0; i < r.M; i++ {
		var sb strings.Builder
		for j := 0; j < r.M; j++ {
			switch {
			case onPath[[2]int{i, j}]:
				sb.WriteByte('#')
			case abs(i-j) <= r.Window:
				sb.WriteByte('.')
			default:
				sb.WriteByte(' ')
			}
		}
		fmt.Fprintln(w, sb.String())
	}
}

// WriteFig3 renders the normalization study.
func WriteFig3(w io.Writer, r Fig3Result) {
	fmt.Fprintf(w, "Figure 3: cross-correlation normalizations, m=%d (sequences aligned; correct peak shift = 0)\n", r.M)
	fmt.Fprintf(w, "  NCCb without z-normalization: peak at shift %+d (spurious)\n", r.PeakShiftNCCbRaw)
	fmt.Fprintf(w, "  NCCu with z-normalization:    peak at shift %+d\n", r.PeakShiftNCCu)
	fmt.Fprintf(w, "  NCCc with z-normalization:    peak at shift %+d (value %.3f)\n", r.PeakShiftNCCc, r.PeakValueNCCc)
}

// WriteFig4 renders the centroid comparison.
func WriteFig4(w io.Writer, r Fig4Result) {
	fmt.Fprintln(w, "Figure 4: class centroids on the ECG-like dataset (avg SBD to class members; lower is better)")
	for _, c := range r.Classes {
		fmt.Fprintf(w, "  class %d: arithmetic mean %.3f | shape extraction %.3f\n",
			c.Label, c.MeanSBD, c.ShapeSBD)
	}
}

// WriteFig12 renders the scalability sweeps as CSV series.
func WriteFig12(w io.Writer, r Fig12Result) {
	fmt.Fprintln(w, "Figure 12a: runtime vs number of series (CBF, m fixed)")
	fmt.Fprintln(w, "n,m,k-AVG+ED_sec,k-Shape_sec,k-AVG+ED_iters,k-Shape_iters")
	for _, p := range r.VaryN {
		fmt.Fprintf(w, "%d,%d,%.3f,%.3f,%d,%d\n", p.N, p.M, p.KAvgEDSeconds, p.KShapeSeconds, p.KAvgEDIters, p.KShapeIters)
	}
	fmt.Fprintln(w, "Figure 12b: runtime vs series length (CBF, n fixed)")
	fmt.Fprintln(w, "n,m,k-AVG+ED_sec,k-Shape_sec,k-AVG+ED_iters,k-Shape_iters")
	for _, p := range r.VaryM {
		fmt.Fprintf(w, "%d,%d,%.3f,%.3f,%d,%d\n", p.N, p.M, p.KAvgEDSeconds, p.KShapeSeconds, p.KAvgEDIters, p.KShapeIters)
	}
}

// WriteKEstimation renders the k-estimation study.
func WriteKEstimation(w io.Writer, r KEstimationResult) {
	fmt.Fprintln(w, "k estimation by intrinsic criteria (paper footnote 2)")
	fmt.Fprintf(w, "%-18s %-6s %-6s %-6s %-6s\n", "dataset", "true", "sil", "DB", "CH")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-18s %-6d %-6d %-6d %-6d\n",
			row.Dataset, row.TrueK, row.SilhouetteK, row.DBK, row.CHK)
	}
	n := len(r.Rows)
	fmt.Fprintf(w, "exact / within-1 of true k over %d datasets: silhouette %d/%d, Davies-Bouldin %d/%d, Calinski-Harabasz %d/%d\n",
		n, r.SilExact, r.SilWithinOne, r.DBExact, r.DBWithinOne, r.CHExact, r.CHWithinOne)
}

// WriteDatasetInventory renders the archive catalog (name, classes, sizes),
// the analogue of the paper's dataset table.
func WriteDatasetInventory(w io.Writer, datasets []DatasetInfo) {
	fmt.Fprintln(w, "Synthetic archive inventory (UCR stand-in; see DESIGN.md §2)")
	fmt.Fprintf(w, "%-18s %-4s %-6s %-7s %-6s\n", "dataset", "k", "length", "train", "test")
	for _, d := range datasets {
		fmt.Fprintf(w, "%-18s %-4d %-6d %-7d %-6d\n", d.Name, d.K, d.M, d.Train, d.Test)
	}
}

// DatasetInfo is the inventory row for WriteDatasetInventory.
type DatasetInfo struct {
	Name              string
	K, M, Train, Test int
}

// Inventory summarizes the configured datasets for WriteDatasetInventory.
func Inventory(cfg Config) []DatasetInfo {
	out := make([]DatasetInfo, len(cfg.Datasets))
	for i, ds := range cfg.Datasets {
		out[i] = DatasetInfo{Name: ds.Name, K: ds.K, M: ds.M, Train: len(ds.Train), Test: len(ds.Test)}
	}
	return out
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
