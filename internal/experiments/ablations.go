package experiments

import (
	"kshape/internal/obs"
	"math/rand"

	"kshape/internal/avg"
	"kshape/internal/core"
	"kshape/internal/dist"
	"kshape/internal/eval"
	"kshape/internal/ts"
)

// AblationResult compares k-Shape against variants that remove one design
// choice at a time, quantifying how much each contributes (the design
// choices Section 3 argues for: the coefficient normalization NCCc, and
// aligning members to the previous centroid before shape extraction).
type AblationResult struct {
	Rows []ClusterRow
}

// Ablations runs the design-choice ablation study over the configured
// datasets:
//
//   - "k-Shape"            — the full algorithm (reference);
//   - "k-Shape/NCCu"       — assignment distance 1 − max NCCu instead of NCCc;
//   - "k-Shape/NCCb"       — assignment distance 1 − max NCCb; note that on
//     z-normalized input every series shares one norm, so NCCb induces the
//     same ordering as NCCc and this variant ties the reference exactly —
//     the ablation that *bites* is NCCu, whose per-lag overlap scaling
//     reorders candidates;
//   - "k-Shape/no-align"   — shape extraction without aligning members to
//     the previous centroid;
//   - "k-AVG+SBD"          — arithmetic-mean centroids (ablating shape
//     extraction entirely; also a Table 3 row).
//
// Baseline for the >/=/< comparison columns is the full k-Shape.
func Ablations(cfg Config) AblationResult {
	type variant struct {
		name     string
		distance core.DistanceFunc
		centroid core.CentroidFunc
	}
	nccDist := func(norm dist.NCCNorm) core.DistanceFunc {
		return func(c, x []float64) float64 {
			v, _ := dist.MaxNCC(c, x, norm)
			return 1 - v
		}
	}
	variants := []variant{
		{
			name:     "k-Shape",
			distance: func(c, x []float64) float64 { return dist.SBDDist(c, x) },
			centroid: avg.ShapeExtraction,
		},
		{
			name:     "k-Shape/NCCu",
			distance: nccDist(dist.NCCu),
			centroid: avg.ShapeExtraction,
		},
		{
			name:     "k-Shape/NCCb",
			distance: nccDist(dist.NCCb),
			centroid: avg.ShapeExtraction,
		},
		{
			name:     "k-Shape/no-align",
			distance: func(c, x []float64) float64 { return dist.SBDDist(c, x) },
			centroid: func(members [][]float64, prev []float64) []float64 {
				return avg.ShapeExtraction(members, nil) // never align
			},
		},
		{
			name:     "k-AVG+SBD",
			distance: func(c, x []float64) float64 { return dist.SBDDist(c, x) },
			centroid: avg.MeanAverager{}.Average,
		},
	}

	rows := make([]ClusterRow, len(variants))
	for vi, v := range variants {
		row := ClusterRow{Name: v.name, RandIndexes: make([]float64, len(cfg.Datasets))}
		sw := obs.NewStopwatch()
		cfg.parallelOver(len(cfg.Datasets), func(d int) {
			ds := cfg.Datasets[d]
			data := ts.Rows(ds.All())
			truth := ts.Labels(ds.All())
			sum, count := 0.0, 0
			for r := 0; r < cfg.Runs; r++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(d)*1000 + int64(r)))
				res, err := core.Lloyd(data, core.Config{
					K:        ds.K,
					Distance: v.distance,
					Centroid: v.centroid,
					Rand:     rng,
				})
				if err != nil {
					continue
				}
				sum += eval.RandIndex(res.Labels, truth)
				count++
			}
			if count > 0 {
				row.RandIndexes[d] = sum / float64(count)
			}
		})
		row.Runtime = sw.Elapsed()
		rows[vi] = row
		cfg.progress("ablation done", "variant", v.name, "avg_rand_index", Mean(row.RandIndexes))
	}
	for i := range rows {
		finishRow(&rows[i], rows[0])
	}
	return AblationResult{Rows: rows}
}
