package experiments

import (
	"kshape/internal/obs"
	"math/rand"
	"time"

	"kshape/internal/cluster"
	"kshape/internal/dist"
	"kshape/internal/eval"
	"kshape/internal/ts"
)

// KEstimationRow records how an intrinsic criterion estimated the number of
// clusters for one dataset.
type KEstimationRow struct {
	Dataset string
	TrueK   int
	// SilhouetteK, DBK, CHK are the k picked by each criterion.
	SilhouetteK, DBK, CHK int
}

// KEstimationResult aggregates the k-estimation study.
type KEstimationResult struct {
	Rows []KEstimationRow
	// Exact counts, per criterion, how often the estimate equals the true
	// k; WithinOne counts |estimate − true| <= 1.
	SilExact, SilWithinOne int
	DBExact, DBWithinOne   int
	CHExact, CHWithinOne   int
	Runtime                time.Duration
}

// KEstimation evaluates the paper's footnote-2 recipe — choose k by
// sweeping it and scoring each clustering with an intrinsic criterion — on
// the archive, comparing three criteria: mean silhouette under SBD (picked
// by its maximum), Davies-Bouldin on the z-normalized rows (minimum), and
// Calinski-Harabasz (maximum). Candidate k ranges over [2, trueK+3].
func KEstimation(cfg Config) KEstimationResult {
	var res KEstimationResult
	sw := obs.NewStopwatch()
	res.Rows = make([]KEstimationRow, len(cfg.Datasets))
	cfg.parallelOver(len(cfg.Datasets), func(di int) {
		ds := cfg.Datasets[di]
		data := ts.Rows(ds.All())
		d := dist.PairwiseMatrixWorkers(dist.SBDMeasure{}, data, 1) // datasets already run in parallel
		kMax := ds.K + 3
		if kMax > len(data)-1 {
			kMax = len(data) - 1
		}
		row := KEstimationRow{Dataset: ds.Name, TrueK: ds.K}
		bestSil, bestDB, bestCH := -2.0, -1.0, -1.0
		for k := 2; k <= kMax; k++ {
			// Best-of-runs labeling per k, as EstimateK does.
			var labels []int
			bestInertia := -1.0
			for r := 0; r < cfg.Runs; r++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(di)*1000 + int64(k)*10 + int64(r)))
				out, err := cluster.NewKShape().Cluster(data, k, rng)
				if err != nil {
					continue
				}
				if labels == nil || out.Inertia < bestInertia {
					labels = out.Labels
					bestInertia = out.Inertia
				}
			}
			if labels == nil {
				continue
			}
			if s := eval.Silhouette(d, labels); s > bestSil {
				bestSil, row.SilhouetteK = s, k
			}
			if db := eval.DaviesBouldin(data, labels, k); db > 0 && (bestDB < 0 || db < bestDB) {
				bestDB, row.DBK = db, k
			}
			if ch := eval.CalinskiHarabasz(data, labels, k); ch > bestCH {
				bestCH, row.CHK = ch, k
			}
		}
		res.Rows[di] = row
		cfg.progress("kestimation dataset done",
			"dataset", ds.Name, "true_k", ds.K, "silhouette_k", row.SilhouetteK, "db_k", row.DBK, "ch_k", row.CHK)
	})
	for _, row := range res.Rows {
		tally := func(est int, exact, within *int) {
			if est == row.TrueK {
				*exact++
			}
			if est-row.TrueK <= 1 && row.TrueK-est <= 1 {
				*within++
			}
		}
		tally(row.SilhouetteK, &res.SilExact, &res.SilWithinOne)
		tally(row.DBK, &res.DBExact, &res.DBWithinOne)
		tally(row.CHK, &res.CHExact, &res.CHWithinOne)
	}
	res.Runtime = sw.Elapsed()
	return res
}
