package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestCompareCounts(t *testing.T) {
	a := []float64{0.9, 0.5, 0.5004, 0.2}
	b := []float64{0.8, 0.5, 0.5001, 0.3}
	g, e, l := CompareCounts(a, b)
	// 0.5004 vs 0.5001 both round to 0.500 => equal.
	if g != 1 || e != 2 || l != 1 {
		t.Errorf("CompareCounts = %d,%d,%d; want 1,2,1", g, e, l)
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 3}) != 2 {
		t.Error("Mean([1,3]) != 2")
	}
}

func TestReducedConfig(t *testing.T) {
	cfg := ReducedConfig(3)
	if len(cfg.Datasets) != 3 {
		t.Fatalf("datasets = %d", len(cfg.Datasets))
	}
	if cfg2 := ReducedConfig(1000); len(cfg2.Datasets) != 48 {
		t.Fatalf("oversized request should clamp to 48, got %d", len(cfg2.Datasets))
	}
}

func TestTable2Reduced(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	cfg := ReducedConfig(4)
	res := Table2(cfg)
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
	ed := res.RowByName("ED")
	if ed == nil || ed.RuntimeRatio != 1 {
		t.Fatalf("ED row: %+v", ed)
	}
	for _, r := range res.Rows {
		if len(r.Accuracies) != 4 {
			t.Errorf("%s: %d accuracies", r.Name, len(r.Accuracies))
		}
		for _, a := range r.Accuracies {
			if a < 0 || a > 1 {
				t.Errorf("%s: accuracy %v out of range", r.Name, a)
			}
		}
		if r.Greater+r.Equal+r.Less != 4 {
			t.Errorf("%s: counts don't sum to dataset count", r.Name)
		}
	}
	// The three SBD variants must agree exactly on accuracy.
	sbd := res.RowByName("SBD")
	for _, v := range []string{"SBDNoPow2", "SBDNoFFT"} {
		row := res.RowByName(v)
		for i := range sbd.Accuracies {
			if sbd.Accuracies[i] != row.Accuracies[i] {
				t.Errorf("%s accuracy diverges from SBD on dataset %d", v, i)
			}
		}
	}
	// LB-pruned rows must match their unpruned counterparts exactly.
	for _, pair := range [][2]string{{"cDTW5", "cDTW5LB"}, {"cDTW10", "cDTW10LB"}, {"cDTWopt", "cDTWoptLB"}, {"DTW", "DTWLB"}} {
		a, b := res.RowByName(pair[0]), res.RowByName(pair[1])
		for i := range a.Accuracies {
			if a.Accuracies[i] != b.Accuracies[i] {
				t.Errorf("%s and %s accuracies diverge on dataset %d: %v vs %v",
					pair[0], pair[1], i, a.Accuracies[i], b.Accuracies[i])
			}
		}
	}
	// Rendering must not panic and must include every row name.
	var buf bytes.Buffer
	WriteTable2(&buf, res)
	for _, r := range res.Rows {
		if !strings.Contains(buf.String(), r.Name) {
			t.Errorf("rendered table missing row %s", r.Name)
		}
	}

	// Figure 5 and 6 derive from the same result.
	f5 := Fig5(cfg, res)
	if len(f5.SBD) != 4 || len(f5.ED) != 4 || len(f5.DTW) != 4 {
		t.Error("Fig5 lengths wrong")
	}
	WriteScatter(&buf, "fig5a", "ED", "SBD", f5.Names, f5.ED, f5.SBD)

	f6 := Fig6(cfg, res)
	if len(f6.AvgRanks) != 4 {
		t.Error("Fig6 expects 4 measures")
	}
	WriteRanks(&buf, "fig6", f6)
}

func TestTable3And4Reduced(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	cfg := ReducedConfig(3)
	cfg.Runs = 2
	cfg.SpectralRuns = 2
	t3 := Table3(cfg)
	if len(t3.Rows) != 6 {
		t.Fatalf("table3 rows = %d, want 6", len(t3.Rows))
	}
	if t3.Baseline.Name != "k-AVG+ED" {
		t.Fatalf("baseline = %s", t3.Baseline.Name)
	}
	for _, r := range append(t3.Rows, t3.Baseline) {
		for _, ri := range r.RandIndexes {
			if ri < 0 || ri > 1 {
				t.Errorf("%s: Rand Index %v out of range", r.Name, ri)
			}
		}
	}
	if t3.RowByName("k-Shape") == nil || t3.RowByName("nope") != nil {
		t.Error("RowByName lookup broken")
	}

	t4 := Table4(cfg)
	if len(t4.Rows) != 15 {
		t.Fatalf("table4 rows = %d, want 15", len(t4.Rows))
	}
	var buf bytes.Buffer
	WriteClusterTable(&buf, "Table 3", t3.Baseline, t3.Rows, true)
	WriteClusterTable(&buf, "Table 4", t4.Baseline, t4.Rows, false)
	for _, r := range t4.Rows {
		if !strings.Contains(buf.String(), r.Name) {
			t.Errorf("rendered table missing %s", r.Name)
		}
	}

	f7 := Fig7(cfg, t3)
	if len(f7.KShape) != 3 {
		t.Error("Fig7 lengths wrong")
	}
	f8 := Fig8(cfg, t3)
	if len(f8.AvgRanks) != 4 {
		t.Error("Fig8 expects 4 methods")
	}
	f9 := Fig9(cfg, t3, t4)
	if len(f9.AvgRanks) != 5 {
		t.Error("Fig9 expects 5 methods")
	}
	WriteScatter(&buf, "fig7a", "KSC", "k-Shape", f7.Names, f7.KSC, f7.KShape)
	WriteRanks(&buf, "fig8", f8)
	WriteRanks(&buf, "fig9", f9)
}

func TestFig2(t *testing.T) {
	cfg := ReducedConfig(1)
	r := Fig2(cfg)
	if len(r.Path) == 0 {
		t.Fatal("empty warping path")
	}
	if r.CDTW >= r.EDValue {
		t.Errorf("cDTW %v should beat ED %v on shifted sines", r.CDTW, r.EDValue)
	}
	for _, p := range r.Path {
		if abs(p[0]-p[1]) > r.Window {
			t.Errorf("path cell %v escapes the band", p)
		}
	}
	var buf bytes.Buffer
	WriteFig2(&buf, r)
	if !strings.Contains(buf.String(), "#") {
		t.Error("rendered band missing path cells")
	}
}

func TestFig3(t *testing.T) {
	r := Fig3(ReducedConfig(1))
	if r.PeakShiftNCCc != 0 {
		t.Errorf("NCCc peak shift = %d, want 0 (sequences are aligned)", r.PeakShiftNCCc)
	}
	if r.PeakValueNCCc <= 0.5 || r.PeakValueNCCc > 1+1e-9 {
		t.Errorf("NCCc peak value = %v", r.PeakValueNCCc)
	}
	if r.PeakShiftNCCbRaw == 0 {
		t.Error("un-normalized NCCb peak should be spurious (nonzero) by construction")
	}
	var buf bytes.Buffer
	WriteFig3(&buf, r)
	if !strings.Contains(buf.String(), "NCCc") {
		t.Error("render missing NCCc line")
	}
}

func TestFig4ShapeExtractionWins(t *testing.T) {
	r := Fig4(ReducedConfig(1))
	if len(r.Classes) != 2 {
		t.Fatalf("classes = %d", len(r.Classes))
	}
	for _, c := range r.Classes {
		if c.ShapeSBD >= c.MeanSBD {
			t.Errorf("class %d: shape extraction (%.3f) should represent the class better than the mean (%.3f)",
				c.Label, c.ShapeSBD, c.MeanSBD)
		}
		if len(c.Mean) != len(c.ShapeExtracted) {
			t.Errorf("class %d: centroid lengths differ", c.Label)
		}
	}
	var buf bytes.Buffer
	WriteFig4(&buf, r)
	if !strings.Contains(buf.String(), "class 0") {
		t.Error("render missing class lines")
	}
}

func TestFig12Small(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep is slow")
	}
	cfg := ReducedConfig(1)
	r := Fig12Sizes(cfg, []int{60, 120}, 64, []int{32, 64}, 60)
	if len(r.VaryN) != 2 || len(r.VaryM) != 2 {
		t.Fatalf("sweep sizes wrong: %+v", r)
	}
	for _, p := range append(r.VaryN, r.VaryM...) {
		if p.KAvgEDSeconds <= 0 || p.KShapeSeconds <= 0 {
			t.Errorf("point %+v has non-positive runtime", p)
		}
		if p.KAvgEDIters < 1 || p.KShapeIters < 1 {
			t.Errorf("point %+v has no iterations", p)
		}
	}
	var buf bytes.Buffer
	WriteFig12(&buf, r)
	if !strings.Contains(buf.String(), "Figure 12a") {
		t.Error("render missing sweep header")
	}
}

func TestAppendixAReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("appendix sweep is slow")
	}
	cfg := ReducedConfig(3)
	for _, norm := range []Normalization{NormOptimalScaling, NormValues01, NormZScore} {
		r := AppendixA(cfg, norm)
		if len(r.Accuracies) != 3 {
			t.Fatalf("%v: variants = %d", norm, len(r.Accuracies))
		}
		for v := range r.Accuracies {
			for _, a := range r.Accuracies[v] {
				if a < 0 || a > 1 {
					t.Errorf("%v %s: accuracy %v", norm, r.Names[v], a)
				}
			}
		}
		var buf bytes.Buffer
		WriteAppendixA(&buf, r)
		if !strings.Contains(buf.String(), norm.String()) {
			t.Error("render missing normalization name")
		}
	}
}

func TestNormalizationString(t *testing.T) {
	if NormOptimalScaling.String() != "OptimalScaling" ||
		NormValues01.String() != "ValuesBetween0-1" ||
		NormZScore.String() != "z-normalization" ||
		Normalization(9).String() != "unknown" {
		t.Error("normalization names wrong")
	}
}

func TestAblationsReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow")
	}
	cfg := ReducedConfig(2)
	cfg.Runs = 2
	res := Ablations(cfg)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	if res.Rows[0].Name != "k-Shape" {
		t.Fatalf("reference row = %s", res.Rows[0].Name)
	}
	for _, r := range res.Rows {
		if len(r.RandIndexes) != 2 {
			t.Errorf("%s: %d scores", r.Name, len(r.RandIndexes))
		}
		for _, ri := range r.RandIndexes {
			if ri <= 0 || ri > 1 {
				t.Errorf("%s: Rand Index %v out of range", r.Name, ri)
			}
		}
	}
	var buf bytes.Buffer
	WriteClusterTable(&buf, "Ablations", res.Rows[0], res.Rows, true)
	if !strings.Contains(buf.String(), "k-Shape/no-align") {
		t.Error("render missing ablation row")
	}
}

func TestTable2ExtendedReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("extended distance sweep is slow")
	}
	cfg := ReducedConfig(2)
	res := Table2Extended(cfg)
	if len(res.Rows) != 7 { // ED, SBD + 5 elastic measures
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	if res.Rows[0].Name != "ED" || res.Rows[0].RuntimeRatio != 1 {
		t.Fatalf("baseline row: %+v", res.Rows[0])
	}
	for _, r := range res.Rows {
		if r.Greater+r.Equal+r.Less != 2 {
			t.Errorf("%s: comparison counts wrong", r.Name)
		}
		for _, a := range r.Accuracies {
			if a < 0 || a > 1 {
				t.Errorf("%s: accuracy %v", r.Name, a)
			}
		}
	}
	var buf bytes.Buffer
	WriteTable2(&buf, res)
	if strings.Contains(buf.String(), "cDTWopt average") {
		t.Error("extended table should not print the tuned-window line")
	}
}

func TestKEstimationReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("k-estimation sweep is slow")
	}
	cfg := ReducedConfig(2)
	cfg.Runs = 2
	res := KEstimation(cfg)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.TrueK < 2 {
			t.Errorf("%s: true k = %d", row.Dataset, row.TrueK)
		}
		for _, est := range []int{row.SilhouetteK, row.DBK, row.CHK} {
			if est < 2 || est > row.TrueK+3 {
				t.Errorf("%s: estimate %d outside sweep range", row.Dataset, est)
			}
		}
	}
	if res.SilWithinOne < res.SilExact || res.DBWithinOne < res.DBExact || res.CHWithinOne < res.CHExact {
		t.Error("within-1 counts cannot be below exact counts")
	}
	var buf bytes.Buffer
	WriteKEstimation(&buf, res)
	if !strings.Contains(buf.String(), "silhouette") {
		t.Error("render missing summary")
	}
}

func TestInventory(t *testing.T) {
	cfg := ReducedConfig(3)
	inv := Inventory(cfg)
	if len(inv) != 3 {
		t.Fatalf("inventory size = %d", len(inv))
	}
	for i, d := range inv {
		ds := cfg.Datasets[i]
		if d.Name != ds.Name || d.K != ds.K || d.M != ds.M ||
			d.Train != len(ds.Train) || d.Test != len(ds.Test) {
			t.Errorf("inventory row %d mismatch: %+v vs dataset %+v", i, d, ds.Name)
		}
	}
	var buf bytes.Buffer
	WriteDatasetInventory(&buf, inv)
	if !strings.Contains(buf.String(), "CBF") {
		t.Error("render missing dataset names")
	}
}
