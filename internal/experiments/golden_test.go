package experiments

import (
	"strings"
	"testing"
	"time"

	"kshape/internal/testkit"
)

// The golden tests pin the byte-exact output of every report renderer.
// Each subtest renders a small hand-constructed result struct and compares
// it against testdata/golden/<name>.golden; regenerate with
//
//	go test ./internal/experiments/ -run Golden -update
//
// A renderer change that alters a single byte of any table fails here, so
// formatting drift has to be an explicit, reviewed decision.

func render(t *testing.T, f func(w *strings.Builder) error) string {
	t.Helper()
	var b strings.Builder
	if err := f(&b); err != nil {
		t.Fatalf("renderer failed: %v", err)
	}
	return b.String()
}

func TestGoldenTable2(t *testing.T) {
	res := Table2Result{
		Rows: []DistanceRow{
			{Name: "ED", Equal: 6, AvgAccuracy: 0.8125, RuntimeRatio: 1, Runtime: time.Second},
			{Name: "SBD", Greater: 4, Equal: 1, Less: 1, Better: true, AvgAccuracy: 0.8671, RuntimeRatio: 4.3},
			{Name: "cDTW5", Greater: 3, Equal: 1, Less: 2, AvgAccuracy: 0.8449, RuntimeRatio: 225.4},
		},
		TunedWindows:       []int{3, 5, 0, 7, 2, 1},
		AvgTunedWindowFrac: 0.045,
	}
	got := render(t, func(w *strings.Builder) error { return WriteTable2(w, res) })
	testkit.Golden(t, "table2", got)
}

func TestGoldenClusterTable(t *testing.T) {
	baseline := ClusterRow{Name: "k-AVG+ED", AvgRandIndex: 0.659}
	rows := []ClusterRow{
		{Name: "k-Shape", Greater: 5, Equal: 0, Less: 1, Better: true, AvgRandIndex: 0.772, RuntimeRatio: 12.4},
		{Name: "k-AVG+SBD", Greater: 2, Equal: 2, Less: 2, Worse: true, AvgRandIndex: 0.601, RuntimeRatio: 7.9},
	}
	t.Run("with-runtime", func(t *testing.T) {
		got := render(t, func(w *strings.Builder) error {
			return WriteClusterTable(w, "Table 3: scalable methods", baseline, rows, true)
		})
		testkit.Golden(t, "cluster-table-runtime", got)
	})
	t.Run("without-runtime", func(t *testing.T) {
		got := render(t, func(w *strings.Builder) error {
			return WriteClusterTable(w, "Table 4: non-scalable methods", baseline, rows, false)
		})
		testkit.Golden(t, "cluster-table-plain", got)
	})
}

func TestGoldenScatter(t *testing.T) {
	got := render(t, func(w *strings.Builder) error {
		return WriteScatter(w, "Figure 5: SBD vs ED accuracy", "SBD", "ED",
			[]string{"synth-a", "synth-b", "synth-c"},
			[]float64{0.91, 0.5, 0.755},
			[]float64{0.85, 0.5, 0.81})
	})
	testkit.Golden(t, "scatter", got)
}

func TestGoldenRanks(t *testing.T) {
	t.Run("grouped", func(t *testing.T) {
		res := RankResult{
			Names:     []string{"cDTWopt", "cDTW5", "SBD", "ED"},
			AvgRanks:  []float64{1.75, 2.5, 2.25, 3.5},
			Order:     []int{0, 2, 1, 3},
			CD:        1.914,
			Groups:    [][]int{{0, 2, 1}, {1, 3}},
			FriedmanP: 0.0123,
		}
		got := render(t, func(w *strings.Builder) error {
			return WriteRanks(w, "Figure 6: ranks over distance measures", res)
		})
		testkit.Golden(t, "ranks-grouped", got)
	})
	t.Run("all-separated", func(t *testing.T) {
		res := RankResult{
			Names:     []string{"A", "B"},
			AvgRanks:  []float64{1, 2},
			Order:     []int{0, 1},
			CD:        0.5,
			FriedmanP: 1e-6,
		}
		got := render(t, func(w *strings.Builder) error {
			return WriteRanks(w, "Figure 6b: fully separated ranks", res)
		})
		testkit.Golden(t, "ranks-separated", got)
	})
}

func TestGoldenAppendixA(t *testing.T) {
	res := AppendixAResult{
		Normalization: "z-score",
		Names:         []string{"NCCb", "NCCu", "SBD"},
		Accuracies: [][]float64{
			{0.55, 0.6, 0.5, 0.65},
			{0.7, 0.72, 0.68, 0.66},
			{0.8, 0.82, 0.78, 0.76},
		},
		SBDBeatsU: 4,
		SBDBeatsB: 4,
	}
	got := render(t, func(w *strings.Builder) error { return WriteAppendixA(w, res) })
	testkit.Golden(t, "appendix-a", got)
}

func TestGoldenFig2(t *testing.T) {
	res := Fig2Result{
		M:       8,
		Window:  2,
		Path:    [][2]int{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 3}, {5, 4}, {6, 5}, {7, 6}, {7, 7}},
		CDTW:    1.234,
		EDValue: 2.345,
	}
	got := render(t, func(w *strings.Builder) error { return WriteFig2(w, res) })
	testkit.Golden(t, "fig2", got)
}

func TestGoldenFig3(t *testing.T) {
	res := Fig3Result{
		M:                1024,
		PeakShiftNCCbRaw: -511,
		PeakShiftNCCu:    0,
		PeakShiftNCCc:    0,
		PeakValueNCCc:    0.987,
	}
	got := render(t, func(w *strings.Builder) error { return WriteFig3(w, res) })
	testkit.Golden(t, "fig3", got)
}

func TestGoldenFig4(t *testing.T) {
	res := Fig4Result{
		Classes: []Fig4Class{
			{Label: 0, MeanSBD: 0.412, ShapeSBD: 0.118},
			{Label: 1, MeanSBD: 0.37, ShapeSBD: 0.095},
		},
	}
	got := render(t, func(w *strings.Builder) error { return WriteFig4(w, res) })
	testkit.Golden(t, "fig4", got)
}

func TestGoldenFig12(t *testing.T) {
	res := Fig12Result{
		VaryN: []Fig12Point{
			{N: 64, M: 128, KAvgEDSeconds: 0.021, KShapeSeconds: 0.094, KAvgEDIters: 11, KShapeIters: 6},
			{N: 128, M: 128, KAvgEDSeconds: 0.044, KShapeSeconds: 0.188, KAvgEDIters: 13, KShapeIters: 7},
		},
		VaryM: []Fig12Point{
			{N: 96, M: 64, KAvgEDSeconds: 0.017, KShapeSeconds: 0.061, KAvgEDIters: 10, KShapeIters: 6},
			{N: 96, M: 256, KAvgEDSeconds: 0.069, KShapeSeconds: 0.342, KAvgEDIters: 12, KShapeIters: 5},
		},
	}
	got := render(t, func(w *strings.Builder) error { return WriteFig12(w, res) })
	testkit.Golden(t, "fig12", got)
}

func TestGoldenKEstimation(t *testing.T) {
	res := KEstimationResult{
		Rows: []KEstimationRow{
			{Dataset: "synth-two-tone", TrueK: 3, SilhouetteK: 3, DBK: 4, CHK: 3},
			{Dataset: "synth-cbf", TrueK: 3, SilhouetteK: 2, DBK: 3, CHK: 5},
		},
		SilExact: 1, SilWithinOne: 2,
		DBExact: 1, DBWithinOne: 2,
		CHExact: 1, CHWithinOne: 1,
	}
	got := render(t, func(w *strings.Builder) error { return WriteKEstimation(w, res) })
	testkit.Golden(t, "kestimation", got)
}

func TestGoldenDatasetInventory(t *testing.T) {
	datasets := []DatasetInfo{
		{Name: "synth-two-tone", K: 3, M: 128, Train: 60, Test: 60},
		{Name: "synth-cbf", K: 3, M: 128, Train: 90, Test: 90},
	}
	got := render(t, func(w *strings.Builder) error { return WriteDatasetInventory(w, datasets) })
	testkit.Golden(t, "dataset-inventory", got)
}
