package experiments

import (
	"kshape/internal/obs"
	"math"

	"kshape/internal/avg"
	"kshape/internal/core"
	"kshape/internal/dataset"
	"kshape/internal/dist"
	"kshape/internal/ts"
)

// Fig2Result describes the expository alignment figure: the Sakoe-Chiba
// band and the cDTW warping path for a pair of sequences.
type Fig2Result struct {
	M       int
	Window  int
	Path    [][2]int
	CDTW    float64
	EDValue float64
}

// Fig2 reproduces the Figure 2 illustration on two out-of-phase sequences.
func Fig2(cfg Config) Fig2Result {
	m := 32
	rng := cfg.rng(2)
	x := make([]float64, m)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / float64(m))
	}
	y := ts.Shift(x, 3)
	for i := range y {
		y[i] += 0.05 * rng.NormFloat64()
	}
	window := 5
	path, d := dist.WarpingPath(x, y, window)
	return Fig2Result{M: m, Window: window, Path: path, CDTW: d, EDValue: dist.ED(x, y)}
}

// Fig3Result reports where each cross-correlation normalization peaks for
// a pair of aligned sequences of length 1024 (the paper's Figure 3): with
// proper normalization (z-norm + NCCc), the peak sits at zero shift.
type Fig3Result struct {
	M int
	// PeakShiftNCCbRaw is the peak shift of NCCb without z-normalization.
	PeakShiftNCCbRaw int
	// PeakShiftNCCu / PeakShiftNCCc are the peak shifts with z-normalized
	// inputs.
	PeakShiftNCCu int
	PeakShiftNCCc int
	// PeakValueNCCc is the NCCc maximum (bounded by 1).
	PeakValueNCCc float64
}

// Fig3 reproduces the normalization study on two aligned noisy sine
// sequences with very different amplitudes and offsets.
func Fig3(cfg Config) Fig3Result {
	m := 1024
	rng := cfg.rng(3)
	x := make([]float64, m)
	y := make([]float64, m)
	for i := range x {
		base := math.Sin(8*math.Pi*float64(i)/float64(m))*math.Exp(-3*math.Abs(float64(i)-float64(m)/2)/float64(m)) +
			0.02*rng.NormFloat64()
		x[i] = base
		// Same shape, aligned, but wildly different amplitude and offset —
		// the regime where the biased estimator without z-normalization
		// finds a spurious peak.
		y[i] = 40*base + 300
	}
	_, shiftRawB := dist.MaxNCC(x, y, dist.NCCb)
	zx, zy := ts.ZNormalize(x), ts.ZNormalize(y)
	_, shiftU := dist.MaxNCC(zx, zy, dist.NCCu)
	vC, shiftC := dist.MaxNCC(zx, zy, dist.NCCc)
	return Fig3Result{
		M:                m,
		PeakShiftNCCbRaw: shiftRawB,
		PeakShiftNCCu:    shiftU,
		PeakShiftNCCc:    shiftC,
		PeakValueNCCc:    vC,
	}
}

// Fig4Result compares the arithmetic-mean centroid against the
// shape-extraction centroid on each class of the ECG-like dataset.
type Fig4Result struct {
	// Classes holds, per class, the two candidate centroids and their SBD
	// to the class's true prototype shape.
	Classes []Fig4Class
}

// Fig4Class is the per-class payload of Figure 4.
type Fig4Class struct {
	Label          int
	Mean           []float64
	ShapeExtracted []float64
	// MeanSBD / ShapeSBD measure each centroid's average SBD to the class
	// members; smaller means the centroid represents the class better.
	MeanSBD  float64
	ShapeSBD float64
}

// Fig4 reproduces the centroid comparison of Figure 4 on the ECG-like
// two-class dataset: shape extraction should represent each class strictly
// better than the arithmetic mean under SBD.
func Fig4(cfg Config) Fig4Result {
	ds := ECGDataset()
	byClass := map[int][][]float64{}
	for _, s := range ds.All() {
		byClass[s.Label] = append(byClass[s.Label], s.Values)
	}
	var out Fig4Result
	for label := 0; label < ds.K; label++ {
		members := byClass[label]
		mean := ts.ZNormalize(avg.Mean(members))
		// Align members to their first element as the reference, as
		// Algorithm 2 does with a randomly selected reference.
		shape := avg.ShapeExtraction(members, members[0])
		avgSBD := func(c []float64) float64 {
			sum := 0.0
			for _, x := range members {
				d, _ := dist.SBD(c, x)
				sum += d
			}
			return sum / float64(len(members))
		}
		out.Classes = append(out.Classes, Fig4Class{
			Label:          label,
			Mean:           mean,
			ShapeExtracted: shape,
			MeanSBD:        avgSBD(mean),
			ShapeSBD:       avgSBD(shape),
		})
	}
	return out
}

// Fig12Point is one measurement of the Appendix B scalability study.
type Fig12Point struct {
	N, M          int
	KAvgEDSeconds float64
	KShapeSeconds float64
	// KAvgEDIters / KShapeIters report the iterations to convergence; the
	// paper notes k-Shape needs ~45% fewer iterations than k-AVG+ED.
	KAvgEDIters, KShapeIters int
}

// Fig12Result holds both sweeps of Figure 12.
type Fig12Result struct {
	// VaryN sweeps the number of series at fixed length M=128.
	VaryN []Fig12Point
	// VaryM sweeps the series length at a fixed number of series.
	VaryM []Fig12Point
}

// Fig12 reproduces the CBF scalability study. Sizes are scaled down from
// the paper's 100k×128 to keep a laptop run in seconds; pass larger
// NSweep/MSweep values via Fig12Sizes for the full curve.
func Fig12(cfg Config) Fig12Result {
	return Fig12Sizes(cfg, []int{300, 600, 1200, 2400}, 128, []int{64, 128, 256, 512}, 300)
}

// Fig12Sizes runs the scalability sweeps with explicit sizes.
func Fig12Sizes(cfg Config, nSweep []int, fixedM int, mSweep []int, fixedN int) Fig12Result {
	var res Fig12Result
	for _, n := range nSweep {
		res.VaryN = append(res.VaryN, fig12Point(cfg, n, fixedM))
		cfg.progress("fig12 point done", "n", n, "m", fixedM)
	}
	for _, m := range mSweep {
		res.VaryM = append(res.VaryM, fig12Point(cfg, fixedN, m))
		cfg.progress("fig12 point done", "n", fixedN, "m", m)
	}
	return res
}

func fig12Point(cfg Config, n, m int) Fig12Point {
	data := ts.Rows(dataset.CBF(n, m, cfg.Seed))
	k := 3
	pt := Fig12Point{N: n, M: m}

	sw := obs.NewStopwatch()
	resED, err := core.Lloyd(data, core.Config{
		K:        k,
		Distance: func(c, x []float64) float64 { return dist.ED(c, x) },
		Centroid: avg.MeanAverager{}.Average,
		Rand:     cfg.rng(int64(n)*7 + int64(m)),
	})
	if err == nil {
		pt.KAvgEDSeconds = sw.Seconds()
		pt.KAvgEDIters = resED.Iterations
	}

	sw = obs.NewStopwatch()
	resKS, err := core.KShape(data, k, cfg.rng(int64(n)*13+int64(m)))
	if err == nil {
		pt.KShapeSeconds = sw.Seconds()
		pt.KShapeIters = resKS.Iterations
	}
	return pt
}
