package experiments

import (
	"time"

	"kshape/internal/dist"
	"kshape/internal/eval"
	"kshape/internal/obs"
	"kshape/internal/stats"
	"kshape/internal/ts"
)

// DistanceRow is one row of Table 2.
type DistanceRow struct {
	Name string
	// Accuracies holds per-dataset 1-NN test accuracy, aligned with
	// Config.Datasets.
	Accuracies []float64
	// Greater/Equal/Less count datasets vs the ED baseline.
	Greater, Equal, Less int
	// Better is true when the row beats ED with Wilcoxon significance at
	// the paper's 99% confidence.
	Better bool
	// AvgAccuracy is the mean accuracy across datasets.
	AvgAccuracy float64
	// RuntimeRatio is total classification time divided by ED's.
	RuntimeRatio float64
	// Runtime is the raw wall time spent classifying.
	Runtime time.Duration
}

// Table2Result aggregates the distance-measure comparison.
type Table2Result struct {
	Rows []DistanceRow
	// TunedWindows holds the cDTWopt window chosen per dataset (in cells).
	TunedWindows []int
	// AvgTunedWindowFrac is the mean tuned window as a fraction of the
	// series length (the paper reports 4.5% across the UCR archive).
	AvgTunedWindowFrac float64
}

// distanceEvaluator classifies one dataset's test split and reports accuracy.
type distanceEvaluator struct {
	name string
	// evaluate returns the 1-NN accuracy for dataset index i.
	evaluate func(i int) float64
}

// Table2 reproduces the distance-measure evaluation: 1-NN classification
// accuracy and runtime for ED, DTW (±LB_Keogh), cDTWopt/cDTW5/cDTW10
// (±LB_Keogh), and the three SBD implementation variants, over the archive
// train/test splits.
func Table2(cfg Config) Table2Result {
	datasets := cfg.Datasets
	n := len(datasets)

	// Tune cDTWopt windows once per dataset (leave-one-out on train).
	windows := make([]int, n)
	fracSum := 0.0
	for i, ds := range datasets {
		w, _ := eval.TuneCDTWWindow(ds.Train, cfg.MaxWindowFrac)
		windows[i] = w
		fracSum += float64(w) / float64(ds.M)
		cfg.progress("table2 cDTWopt window tuned", "dataset", ds.Name, "window_cells", w)
	}

	cdtwWindow := func(frac float64, i int) int {
		w := int(frac*float64(datasets[i].M) + 0.5)
		if w < 1 {
			w = 1
		}
		return w
	}
	plain := func(m dist.Measure) func(int) float64 {
		return func(i int) float64 {
			return eval.OneNNAccuracy(m, datasets[i].Train, datasets[i].Test)
		}
	}
	cdtwPlain := func(window func(int) int) func(int) float64 {
		return func(i int) float64 {
			return eval.OneNNAccuracy(dist.CDTWMeasure{Window: window(i)}, datasets[i].Train, datasets[i].Test)
		}
	}
	cdtwLB := func(window func(int) int) func(int) float64 {
		return func(i int) float64 {
			return eval.OneNNAccuracyLB(window(i), datasets[i].Train, datasets[i].Test)
		}
	}
	optW := func(i int) int { return windows[i] }
	w5 := func(i int) int { return cdtwWindow(0.05, i) }
	w10 := func(i int) int { return cdtwWindow(0.10, i) }
	unconstrained := func(i int) int { return datasets[i].M }

	evaluators := []distanceEvaluator{
		{"ED", plain(dist.EDMeasure{})},
		{"DTW", plain(dist.DTWMeasure{})},
		{"DTWLB", cdtwLB(unconstrained)},
		{"cDTWopt", cdtwPlain(optW)},
		{"cDTWoptLB", cdtwLB(optW)},
		{"cDTW5", cdtwPlain(w5)},
		{"cDTW5LB", cdtwLB(w5)},
		{"cDTW10", cdtwPlain(w10)},
		{"cDTW10LB", cdtwLB(w10)},
		{"SBD", plain(dist.SBDMeasure{})},
		{"SBDNoPow2", plain(dist.SBDNoPow2Measure{})},
		{"SBDNoFFT", plain(dist.SBDNoFFTMeasure{})},
	}

	rows := make([]DistanceRow, len(evaluators))
	for r, ev := range evaluators {
		accs := make([]float64, n)
		sw := obs.NewStopwatch()
		for i := range datasets {
			if cfg.Metrics == nil {
				accs[i] = ev.evaluate(i)
				continue
			}
			countersBefore := obs.ReadCounters()
			dsSW := obs.NewStopwatch()
			accs[i] = ev.evaluate(i)
			cfg.Metrics.Record(obs.RunRecord{
				Method:    ev.name,
				Dataset:   datasets[i].Name,
				Seconds:   dsSW.Seconds(),
				Score:     accs[i],
				ScoreKind: "accuracy_1nn",
				Counters:  obs.ReadCounters().Sub(countersBefore),
			})
		}
		rows[r] = DistanceRow{
			Name:       ev.name,
			Accuracies: accs,
			Runtime:    sw.Elapsed(),
		}
		cfg.progress("table2 measure done", "measure", ev.name, "seconds", rows[r].Runtime.Seconds(), "avg_accuracy", Mean(accs))
	}

	edRow := rows[0]
	for r := range rows {
		rows[r].AvgAccuracy = Mean(rows[r].Accuracies)
		rows[r].Greater, rows[r].Equal, rows[r].Less = CompareCounts(rows[r].Accuracies, edRow.Accuracies)
		rows[r].Better = stats.SignificantlyBetter(rows[r].Accuracies, edRow.Accuracies, 0.99)
		if edRow.Runtime > 0 {
			rows[r].RuntimeRatio = float64(rows[r].Runtime) / float64(edRow.Runtime)
		}
	}
	return Table2Result{
		Rows:               rows,
		TunedWindows:       windows,
		AvgTunedWindowFrac: fracSum / float64(n),
	}
}

// RowByName returns the named row, or nil.
func (t Table2Result) RowByName(name string) *DistanceRow {
	for i := range t.Rows {
		if t.Rows[i].Name == name {
			return &t.Rows[i]
		}
	}
	return nil
}

// Fig5Result holds the per-dataset accuracy pairs behind the scatter plots
// of Figure 5 (SBD vs ED, SBD vs DTW).
type Fig5Result struct {
	Names []string
	SBD   []float64
	ED    []float64
	DTW   []float64
}

// Fig5 derives the Figure 5 scatter data from a Table 2 result.
func Fig5(cfg Config, t2 Table2Result) Fig5Result {
	names := make([]string, len(cfg.Datasets))
	for i, ds := range cfg.Datasets {
		names[i] = ds.Name
	}
	return Fig5Result{
		Names: names,
		SBD:   t2.RowByName("SBD").Accuracies,
		ED:    t2.RowByName("ED").Accuracies,
		DTW:   t2.RowByName("DTW").Accuracies,
	}
}

// RankResult holds an average-rank comparison with Nemenyi grouping
// (Figures 6, 8 and 9).
type RankResult struct {
	Names    []string
	AvgRanks []float64
	// Order lists method indices best-first.
	Order []int
	// CD is the Nemenyi critical difference at α = 0.05.
	CD float64
	// Groups lists maximal sets of statistically indistinguishable methods.
	Groups [][]int
	// FriedmanP is the p-value of the Friedman test.
	FriedmanP float64
}

// Fig6 runs the Friedman + Nemenyi analysis over cDTWopt, cDTW5, SBD, and
// ED (Figure 6) given a Table 2 result.
func Fig6(cfg Config, t2 Table2Result) RankResult {
	names := []string{"cDTWopt", "cDTW5", "SBD", "ED"}
	return rankAnalysis(names, func(name string) []float64 {
		return t2.RowByName(name).Accuracies
	}, len(cfg.Datasets))
}

func rankAnalysis(names []string, scores func(string) []float64, n int) RankResult {
	mat := make([][]float64, len(names))
	for i, name := range names {
		mat[i] = scores(name)
	}
	fr := stats.Friedman(mat)
	order, cd, groups := stats.NemenyiGroups(fr.AvgRanks, n)
	return RankResult{
		Names:     names,
		AvgRanks:  fr.AvgRanks,
		Order:     order,
		CD:        cd,
		Groups:    groups,
		FriedmanP: fr.P,
	}
}

// AppendixAResult compares the cross-correlation variants (SBD/NCCc, NCCu,
// NCCb) under one of the Appendix A time-series normalizations
// (Figures 10 and 11).
type AppendixAResult struct {
	Normalization string
	Names         []string
	// Accuracies[v][d] is variant v's accuracy on dataset d.
	Accuracies [][]float64
	// SBDBeatsU / SBDBeatsB count datasets where SBD is strictly better.
	SBDBeatsU, SBDBeatsB int
}

// Normalization selects the Appendix A preprocessing regime.
type Normalization int

const (
	// NormOptimalScaling matches each pair with the least-squares scaling
	// coefficient before the distance computation.
	NormOptimalScaling Normalization = iota
	// NormValues01 rescales each series into [0, 1].
	NormValues01
	// NormZScore z-normalizes each series.
	NormZScore
)

// String names the normalization as in Appendix A.
func (n Normalization) String() string {
	switch n {
	case NormOptimalScaling:
		return "OptimalScaling"
	case NormValues01:
		return "ValuesBetween0-1"
	case NormZScore:
		return "z-normalization"
	}
	return "unknown"
}

// AppendixA reproduces the Figure 10/11 study: sequences are first
// "denormalized" with a random per-sequence amplitude (the archive is
// z-normalized, as the paper notes), then renormalized per the chosen
// scheme, and the three cross-correlation variants are compared by 1-NN
// accuracy.
func AppendixA(cfg Config, norm Normalization) AppendixAResult {
	variants := []dist.Measure{
		dist.SBDMeasure{},
		dist.NCCMeasure{Norm: dist.NCCu},
		dist.NCCMeasure{Norm: dist.NCCb},
	}
	res := AppendixAResult{
		Normalization: norm.String(),
		Names:         []string{"SBD", "NCCu", "NCCb"},
		Accuracies:    make([][]float64, len(variants)),
	}
	for v := range variants {
		res.Accuracies[v] = make([]float64, len(cfg.Datasets))
	}
	for d, ds := range cfg.Datasets {
		rng := cfg.rng(int64(d))
		prep := func(in []ts.Series) []ts.Series {
			out := make([]ts.Series, len(in))
			for i, s := range in {
				amp := 0.5 + 4*rng.Float64() // random amplitude, per Appendix A
				raw := ts.Scale(s.Values, amp)
				var vals []float64
				switch norm {
				case NormValues01:
					vals = ts.Normalize01(raw)
				case NormZScore:
					vals = ts.ZNormalize(raw)
				default:
					vals = raw // pairwise optimal scaling happens in the measure
				}
				out[i] = ts.NewLabeled(vals, s.Label)
			}
			return out
		}
		train := prep(ds.Train)
		test := prep(ds.Test)
		for v, meas := range variants {
			m := meas
			if norm == NormOptimalScaling {
				m = optimalScalingMeasure{base: meas}
			}
			res.Accuracies[v][d] = eval.OneNNAccuracy(m, train, test)
		}
		cfg.progress("appendixA dataset done", "normalization", norm, "dataset", ds.Name)
	}
	for d := range cfg.Datasets {
		if res.Accuracies[0][d] > res.Accuracies[1][d] {
			res.SBDBeatsU++
		}
		if res.Accuracies[0][d] > res.Accuracies[2][d] {
			res.SBDBeatsB++
		}
	}
	return res
}

// optimalScalingMeasure wraps a measure with the per-pair least-squares
// scaling of Appendix A: dist(x, y) is computed as base(x, c·y) with
// c = x·yᵀ / y·yᵀ.
type optimalScalingMeasure struct {
	base dist.Measure
}

// Name implements dist.Measure.
func (m optimalScalingMeasure) Name() string { return m.base.Name() + "+OptScale" }

// Distance implements dist.Measure.
func (m optimalScalingMeasure) Distance(x, y []float64) float64 {
	c := ts.OptimalScale(x, y)
	return m.base.Distance(x, ts.Scale(y, c))
}
