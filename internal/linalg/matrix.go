// Package linalg provides the dense linear algebra the k-Shape reproduction
// needs: symmetric matrices, Rayleigh quotients, a power-iteration dominant
// eigensolver (used by shape extraction, Equation 15 of the paper), a
// shifted power iteration for smallest eigenvectors (used by the KSC
// centroid), and a full symmetric eigendecomposition via Householder
// tridiagonalization plus implicit-shift QL (used by spectral clustering).
package linalg

import (
	"fmt"
	"math"
)

// Sym is a dense symmetric n×n matrix stored fully (both triangles).
type Sym struct {
	N    int
	Data []float64 // row-major, len N*N
}

// NewSym allocates an n×n zero symmetric matrix.
func NewSym(n int) *Sym {
	if n <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimension %d", n))
	}
	return &Sym{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (s *Sym) At(i, j int) float64 { return s.Data[i*s.N+j] }

// Set sets elements (i, j) and (j, i) to v, preserving symmetry.
func (s *Sym) Set(i, j int, v float64) {
	s.Data[i*s.N+j] = v
	s.Data[j*s.N+i] = v
}

// Row returns row i as a slice aliasing the matrix storage.
func (s *Sym) Row(i int) []float64 { return s.Data[i*s.N : (i+1)*s.N] }

// Clone returns a deep copy of s.
func (s *Sym) Clone() *Sym {
	c := NewSym(s.N)
	copy(c.Data, s.Data)
	return c
}

// MulVec computes dst = S·x. dst and x must have length N and must not alias.
func (s *Sym) MulVec(dst, x []float64) {
	n := s.N
	if len(dst) != n || len(x) != n {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %d, %d vs %d", len(dst), len(x), n))
	}
	for i := 0; i < n; i++ {
		row := s.Data[i*n : (i+1)*n]
		acc := 0.0
		for j, v := range row {
			acc += v * x[j]
		}
		dst[i] = acc
	}
}

// GramAddOuter accumulates S += x·xᵀ. Used to build S = Σ xᵢxᵢᵀ in shape
// extraction without materializing the data matrix product.
func (s *Sym) GramAddOuter(x []float64) {
	n := s.N
	if len(x) != n {
		panic(fmt.Sprintf("linalg: GramAddOuter dimension mismatch: %d vs %d", len(x), n))
	}
	for i := 0; i < n; i++ {
		xi := x[i]
		//lint:ignore floatcmp exact zero-pivot guard
		if xi == 0 {
			continue
		}
		row := s.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] += xi * x[j]
		}
	}
}

// RayleighQuotient returns xᵀSx / xᵀx, the objective maximized by the shape
// extraction centroid. It returns 0 for a zero vector.
func (s *Sym) RayleighQuotient(x []float64) float64 {
	tmp := make([]float64, s.N)
	s.MulVec(tmp, x)
	num, den := 0.0, 0.0
	for i := range x {
		num += x[i] * tmp[i]
		den += x[i] * x[i]
	}
	//lint:ignore floatcmp exact zero-denominator guard
	if den == 0 {
		return 0
	}
	return num / den
}

// CenterProject replaces S with Qᵀ·S·Q where Q = I − (1/n)·11ᵀ is the
// centering projector of Equation 15. Because Q is symmetric and idempotent
// this amounts to removing row means and then column means.
func (s *Sym) CenterProject() {
	n := s.N
	rowMean := make([]float64, n)
	for i := 0; i < n; i++ {
		rowMean[i] = mean(s.Data[i*n : (i+1)*n])
	}
	grand := mean(rowMean)
	colMean := make([]float64, n)
	for j := 0; j < n; j++ {
		acc := 0.0
		for i := 0; i < n; i++ {
			acc += s.Data[i*n+j]
		}
		colMean[j] = acc / float64(n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.Data[i*n+j] += grand - rowMean[i] - colMean[j]
		}
	}
}

func mean(x []float64) float64 {
	acc := 0.0
	for _, v := range x {
		acc += v
	}
	return acc / float64(len(x))
}

// normalize scales x to unit L2 norm in place and returns the original norm.
func normalize(x []float64) float64 {
	ss := 0.0
	for _, v := range x {
		ss += v * v
	}
	nrm := math.Sqrt(ss)
	//lint:ignore floatcmp exact zero-norm guard before dividing by it
	if nrm == 0 {
		return 0
	}
	for i := range x {
		x[i] /= nrm
	}
	return nrm
}
