package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randPSD builds a random PSD matrix A = BᵀB of size n.
func randPSD(n int, rng *rand.Rand) *Sym {
	s := NewSym(n)
	rows := n + 3
	for r := 0; r < rows; r++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		s.GramAddOuter(x)
	}
	return s
}

// randSym builds a random symmetric (not necessarily PSD) matrix.
func randSym(n int, rng *rand.Rand) *Sym {
	s := NewSym(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			s.Set(i, j, rng.NormFloat64())
		}
	}
	return s
}

func residual(s *Sym, lambda float64, v []float64) float64 {
	n := s.N
	tmp := make([]float64, n)
	s.MulVec(tmp, v)
	worst := 0.0
	for i := 0; i < n; i++ {
		r := math.Abs(tmp[i] - lambda*v[i])
		if r > worst {
			worst = r
		}
	}
	return worst
}

func TestSymSetAt(t *testing.T) {
	s := NewSym(3)
	s.Set(0, 2, 5)
	if s.At(0, 2) != 5 || s.At(2, 0) != 5 {
		t.Error("Set did not preserve symmetry")
	}
}

func TestNewSymPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSym(0)
}

func TestMulVec(t *testing.T) {
	s := NewSym(2)
	s.Set(0, 0, 1)
	s.Set(0, 1, 2)
	s.Set(1, 1, 3)
	dst := make([]float64, 2)
	s.MulVec(dst, []float64{1, 1})
	if dst[0] != 3 || dst[1] != 5 {
		t.Errorf("MulVec = %v, want [3 5]", dst)
	}
}

func TestGramAddOuter(t *testing.T) {
	s := NewSym(2)
	s.GramAddOuter([]float64{1, 2})
	s.GramAddOuter([]float64{3, -1})
	// Expected: [1 2; 2 4] + [9 -3; -3 1] = [10 -1; -1 5]
	want := [][]float64{{10, -1}, {-1, 5}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(s.At(i, j)-want[i][j]) > 1e-12 {
				t.Fatalf("Gram(%d,%d) = %v, want %v", i, j, s.At(i, j), want[i][j])
			}
		}
	}
}

func TestDominantEigenKnownMatrix(t *testing.T) {
	// [[2 1][1 2]] has eigenvalues 3 (v = [1 1]/√2) and 1.
	s := NewSym(2)
	s.Set(0, 0, 2)
	s.Set(0, 1, 1)
	s.Set(1, 1, 2)
	lambda, v := DominantEigen(s)
	if math.Abs(lambda-3) > 1e-8 {
		t.Errorf("dominant eigenvalue = %v, want 3", lambda)
	}
	if math.Abs(math.Abs(v[0])-math.Sqrt(0.5)) > 1e-6 || math.Abs(v[0]-v[1]) > 1e-6 {
		t.Errorf("dominant eigenvector = %v, want ±[0.707 0.707]", v)
	}
}

func TestDominantEigenZeroMatrix(t *testing.T) {
	s := NewSym(4)
	lambda, v := DominantEigen(s)
	if lambda != 0 {
		t.Errorf("eigenvalue of zero matrix = %v", lambda)
	}
	nrm := 0.0
	for _, x := range v {
		nrm += x * x
	}
	if math.Abs(nrm-1) > 1e-12 {
		t.Errorf("eigenvector not unit norm: %v", v)
	}
}

func TestDominantEigenResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 5, 16, 40} {
		s := randPSD(n, rng)
		lambda, v := DominantEigen(s)
		if lambda < 0 {
			t.Errorf("n=%d: PSD matrix produced negative dominant eigenvalue %v", n, lambda)
		}
		if r := residual(s, lambda, v); r > 1e-5*(math.Abs(lambda)+1) {
			t.Errorf("n=%d: residual %v too large for lambda=%v", n, r, lambda)
		}
	}
}

func TestDominantMatchesFullDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		s := randPSD(8, rng)
		lp, _ := DominantEigen(s)
		vals, _ := EigenDecompose(s)
		lf := vals[len(vals)-1]
		if math.Abs(lp-lf) > 1e-6*(math.Abs(lf)+1) {
			t.Errorf("trial %d: power iteration %v vs full decomposition %v", trial, lp, lf)
		}
	}
}

func TestSmallestEigen(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		s := randPSD(10, rng)
		lmin, v := SmallestEigen(s)
		vals, _ := EigenDecompose(s)
		if math.Abs(lmin-vals[0]) > 1e-5*(math.Abs(vals[0])+1) {
			t.Errorf("trial %d: smallest %v, want %v", trial, lmin, vals[0])
		}
		if r := residual(s, lmin, v); r > 1e-4*(math.Abs(lmin)+1) {
			t.Errorf("trial %d: residual %v", trial, r)
		}
	}
}

func TestEigenDecomposeReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 3, 7, 20} {
		s := randSym(n, rng)
		vals, vecs := EigenDecompose(s)
		// Ascending order.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("n=%d: eigenvalues not ascending: %v", n, vals)
			}
		}
		// Each pair satisfies S v = λ v.
		for i := 0; i < n; i++ {
			if r := residual(s, vals[i], vecs[i]); r > 1e-8*(math.Abs(vals[i])+1) {
				t.Errorf("n=%d: eigenpair %d residual %v", n, i, r)
			}
		}
		// Orthonormal eigenvectors.
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				d := dot(vecs[i], vecs[j])
				want := 0.0
				if i == j {
					want = 1.0
				}
				if math.Abs(d-want) > 1e-8 {
					t.Errorf("n=%d: <v%d,v%d> = %v, want %v", n, i, j, d, want)
				}
			}
		}
		// Trace equals sum of eigenvalues.
		tr, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			tr += s.At(i, i)
			sum += vals[i]
		}
		if math.Abs(tr-sum) > 1e-8*(math.Abs(tr)+1) {
			t.Errorf("n=%d: trace %v != eigenvalue sum %v", n, tr, sum)
		}
	}
}

func TestEigenDecomposeDiagonal(t *testing.T) {
	s := NewSym(3)
	s.Set(0, 0, 3)
	s.Set(1, 1, 1)
	s.Set(2, 2, 2)
	vals, vecs := EigenDecompose(s)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// Eigenvector for eigenvalue 1 must be ±e2.
	if math.Abs(math.Abs(vecs[0][1])-1) > 1e-10 {
		t.Errorf("eigenvector for 1 = %v, want ±e2", vecs[0])
	}
}

func TestRayleighQuotientBounds(t *testing.T) {
	// λmin <= R(x) <= λmax for any x — the variational property that
	// justifies solving Equation 15 with an eigendecomposition.
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randSym(6, rng)
		vals, _ := EigenDecompose(s)
		x := make([]float64, 6)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		q := s.RayleighQuotient(x)
		return q >= vals[0]-1e-8 && q <= vals[5]+1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRayleighQuotientZeroVector(t *testing.T) {
	s := NewSym(2)
	s.Set(0, 0, 1)
	if q := s.RayleighQuotient([]float64{0, 0}); q != 0 {
		t.Errorf("zero vector Rayleigh = %v", q)
	}
}

func TestCenterProject(t *testing.T) {
	// After Qᵀ S Q, the all-ones vector must be in the null space:
	// row sums and column sums of the projected matrix are zero.
	rng := rand.New(rand.NewSource(13))
	s := randSym(6, rng)
	s.CenterProject()
	for i := 0; i < 6; i++ {
		rowSum := 0.0
		for j := 0; j < 6; j++ {
			rowSum += s.At(i, j)
		}
		if math.Abs(rowSum) > 1e-10 {
			t.Errorf("row %d sum = %v after centering", i, rowSum)
		}
	}
}

func TestCenterProjectMatchesExplicitQ(t *testing.T) {
	// Compare the in-place centering with an explicit Q S Q product.
	n := 5
	rng := rand.New(rand.NewSource(17))
	s := randSym(n, rng)
	want := NewSym(n)
	q := func(i, j int) float64 {
		v := -1.0 / float64(n)
		if i == j {
			v += 1.0
		}
		return v
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := 0.0
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					acc += q(a, i) * s.At(a, b) * q(b, j)
				}
			}
			want.Data[i*n+j] = acc
		}
	}
	got := s.Clone()
	got.CenterProject()
	for i := 0; i < n*n; i++ {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-10 {
			t.Fatalf("CenterProject mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestClone(t *testing.T) {
	s := NewSym(2)
	s.Set(0, 1, 4)
	c := s.Clone()
	c.Set(0, 1, 9)
	if s.At(0, 1) != 4 {
		t.Error("Clone shares storage")
	}
}
