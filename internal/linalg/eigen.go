package linalg

import (
	"fmt"
	"math"

	"kshape/internal/obs"
)

// Power-iteration parameters. Shape extraction tolerates loose eigenvector
// accuracy (the centroid is refined every k-Shape iteration anyway), but we
// keep the tolerance tight enough for the unit tests that compare against
// the full decomposition.
const (
	powerMaxIter = 1000
	powerTol     = 1e-10
)

// DominantEigen returns the eigenvalue of largest magnitude and a
// corresponding unit eigenvector of s, computed by power iteration with a
// deterministic start vector. For PSD matrices (the shape-extraction M) this
// is the largest eigenvalue, i.e. the Rayleigh-quotient maximizer of
// Equation 15.
//
// The start vector is the matrix row of largest norm, falling back to e1,
// which avoids the pathological case of starting orthogonal to the dominant
// eigenspace while keeping the routine deterministic.
func DominantEigen(s *Sym) (float64, []float64) {
	n := s.N
	v := make([]float64, n)
	// Seed with the largest row, which always has a component along the
	// dominant eigenvector unless the matrix is zero.
	bestNorm := -1.0
	for i := 0; i < n; i++ {
		nrm := 0.0
		for _, x := range s.Row(i) {
			nrm += x * x
		}
		if nrm > bestNorm {
			bestNorm = nrm
			copy(v, s.Row(i))
		}
	}
	if bestNorm <= 0 {
		// Zero matrix: any unit vector is an eigenvector with eigenvalue 0.
		v[0] = 1
		return 0, v
	}
	normalize(v)
	next := make([]float64, n)
	lambda := 0.0
	iters := 0
	defer func() { obs.Add(obs.CounterEigenIterations, int64(iters)) }()
	for iter := 0; iter < powerMaxIter; iter++ {
		iters++
		s.MulVec(next, v)
		newLambda := dot(v, next)
		//lint:ignore floatcmp exact zero-vector guard; power iteration restarts from a fresh vector
		if normalize(next) == 0 {
			// v is in the null space; eigenvalue 0.
			return 0, v
		}
		// Convergence on both the eigenvalue and the direction (the angle
		// between successive unit iterates, sign-insensitive).
		align := math.Abs(dot(v, next))
		v, next = next, v
		if math.Abs(newLambda-lambda) <= powerTol*(math.Abs(newLambda)+1) && 1-align <= powerTol {
			lambda = newLambda
			break
		}
		lambda = newLambda
	}
	return lambda, v
}

// SmallestEigen returns the smallest eigenvalue and a corresponding unit
// eigenvector of symmetric s. This is what the KSC centroid computation
// needs (the minimizer of the normalized residual). Spectral shifts plus
// power iteration converge too slowly when the bottom eigenvalues cluster,
// so we use the full tridiagonal decomposition: the matrices involved are
// m×m for time-series length m, which is small by the paper's own argument
// (m ≪ n).
func SmallestEigen(s *Sym) (float64, []float64) {
	vals, vecs := EigenDecompose(s)
	return vals[0], vecs[0]
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// EigenDecompose computes the full eigendecomposition of symmetric s,
// returning eigenvalues in ascending order with matching unit eigenvectors
// (vecs[i] pairs with vals[i]). It uses Householder tridiagonalization
// followed by the implicit-shift QL algorithm — the classic tred2/tql2
// pair — which is O(n³) with a small constant and numerically robust.
func EigenDecompose(s *Sym) (vals []float64, vecs [][]float64) {
	obs.Inc(obs.CounterEigenDecompositions)
	n := s.N
	a := make([][]float64, n) // working copy; becomes the eigenvector matrix
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		copy(a[i], s.Row(i))
	}
	d := make([]float64, n) // diagonal
	e := make([]float64, n) // off-diagonal
	tred2(a, d, e)
	if err := tql2(a, d, e); err != nil {
		panic(err)
	}
	// tql2 leaves eigenvalues in d (ascending after our sort) and
	// eigenvectors in columns of a.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort ascending by eigenvalue.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && d[idx[j]] < d[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	vals = make([]float64, n)
	vecs = make([][]float64, n)
	for r, k := range idx {
		vals[r] = d[k]
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			v[i] = a[i][k]
		}
		vecs[r] = v
	}
	return vals, vecs
}

// tred2 reduces a real symmetric matrix (in a) to tridiagonal form using
// Householder reflections, accumulating the orthogonal transformation in a.
// On return d holds the diagonal and e the subdiagonal (e[0] unused).
// Adapted from the EISPACK routine TRED2.
func tred2(a [][]float64, d, e []float64) {
	n := len(a)
	for i := n - 1; i > 0; i-- {
		l := i - 1
		h, scale := 0.0, 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(a[i][k])
			}
			//lint:ignore floatcmp exact zero-scale guard mirroring the EISPACK tred2 reference
			if scale == 0 {
				e[i] = a[i][l]
			} else {
				for k := 0; k <= l; k++ {
					a[i][k] /= scale
					h += a[i][k] * a[i][k]
				}
				f := a[i][l]
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				a[i][l] = f - g
				f = 0.0
				for j := 0; j <= l; j++ {
					a[j][i] = a[i][j] / h
					g = 0.0
					for k := 0; k <= j; k++ {
						g += a[j][k] * a[i][k]
					}
					for k := j + 1; k <= l; k++ {
						g += a[k][j] * a[i][k]
					}
					e[j] = g / h
					f += e[j] * a[i][j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = a[i][j]
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						a[j][k] -= f*e[k] + g*a[i][k]
					}
				}
			}
		} else {
			e[i] = a[i][l]
		}
		d[i] = h
	}
	d[0] = 0.0
	e[0] = 0.0
	for i := 0; i < n; i++ {
		l := i - 1
		//lint:ignore floatcmp exact zero test mirroring the EISPACK tred2 reference
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				g := 0.0
				for k := 0; k <= l; k++ {
					g += a[i][k] * a[k][j]
				}
				for k := 0; k <= l; k++ {
					a[k][j] -= g * a[k][i]
				}
			}
		}
		d[i] = a[i][i]
		a[i][i] = 1.0
		for j := 0; j <= l; j++ {
			a[j][i] = 0.0
			a[i][j] = 0.0
		}
	}
}

// tql2 finds the eigenvalues and eigenvectors of a symmetric tridiagonal
// matrix by the implicit-shift QL method, accumulating eigenvectors into a
// (which must hold the tred2 transformation on entry). Adapted from the
// EISPACK routine TQL2.
func tql2(a [][]float64, d, e []float64) error {
	n := len(a)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0.0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= math.SmallestNonzeroFloat64*dd || math.Abs(e[m]) <= 1e-15*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 50 {
				return fmt.Errorf("linalg: tql2 failed to converge at eigenvalue %d", l)
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			sg := r
			if g < 0 {
				sg = -r
			}
			g = d[m] - d[l] + e[l]/(g+sg)
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				//lint:ignore floatcmp exact zero off-diagonal test mirroring the EISPACK tql2 reference
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < n; k++ {
					f = a[k][i+1]
					a[k][i+1] = s*a[k][i] + c*f
					a[k][i] = c*a[k][i] - s*f
				}
			}
			//lint:ignore floatcmp exact zero off-diagonal test mirroring the EISPACK tql2 reference
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}
