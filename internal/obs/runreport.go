package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// RunReportSchema identifies the self-contained JSON run report the
// flight recorder emits (`kshape -report`, `kbench -report`,
// `knn -report`). Bump on any incompatible shape change.
const RunReportSchema = "kshape.runreport/v1"

// RunReport is the top-level run-report document: everything needed to
// diagnose one process's run after the fact — build identity, kernel
// counters, phase latency histograms, per-worker pool attribution,
// runtime samples, and the retained event window.
type RunReport struct {
	Schema string `json:"schema"`
	// Tool and Args identify the invocation.
	Tool string   `json:"tool"`
	Args []string `json:"args,omitempty"`
	// RunID correlates the report with the invocation's log records.
	RunID string `json:"run_id,omitempty"`
	// Build carries version/revision/modified/go from BuildInfo.
	Build map[string]string `json:"build"`
	// WallNS is the recorder's lifetime (start to Report) on the
	// monotonic clock.
	WallNS int64 `json:"wall_ns"`
	// Counters is the kernel-counter delta over the recorded window.
	Counters Counters `json:"counters"`
	// Phases summarizes the per-phase latency histograms.
	Phases []PhaseStats `json:"phases"`
	// Workers is the per-worker pool attribution table (one row per pool
	// worker ID that executed work).
	Workers []WorkerStats `json:"workers"`
	// Pool holds the derived pool-level efficiency metrics (nil when no
	// parallel work ran).
	Pool *PoolStats `json:"pool,omitempty"`
	// RuntimeSamples is the background sampler's trajectory.
	RuntimeSamples []RuntimeSample `json:"runtime_samples"`
	// Events is the retained flight-recorder event window, oldest first.
	Events []ReportEvent `json:"events,omitempty"`
	// Recorder describes the recorder itself: capacities, retention, and
	// loss counters, so a truncated report is recognizable as such.
	Recorder RecorderStats `json:"recorder"`
}

// PhaseStats summarizes one phase histogram.
type PhaseStats struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	SumNS int64   `json:"sum_ns"`
	P50NS float64 `json:"p50_ns"`
	P95NS float64 `json:"p95_ns"`
	P99NS float64 `json:"p99_ns"`
}

// WorkerStats is one pool worker's lifetime attribution: how many chunks
// and items it executed, and how its wall time split between chunk bodies
// (busy) and waiting for work (wait). BusyNS + WaitNS == WallNS by
// construction.
type WorkerStats struct {
	Worker int   `json:"worker"`
	Chunks int64 `json:"chunks"`
	Items  int64 `json:"items"`
	BusyNS int64 `json:"busy_ns"`
	WaitNS int64 `json:"wait_ns"`
	WallNS int64 `json:"wall_ns"`
}

// PoolStats are the derived pool-level numbers the parallel-layer rework
// is judged by: efficiency (aggregate busy over aggregate wall — 1.0
// means no worker ever waited) and imbalance (max over min per-worker
// busy time — 1.0 means perfectly even load).
type PoolStats struct {
	Workers    int     `json:"workers"`
	ChunksNS   int64   `json:"busy_ns_total"`
	WaitNS     int64   `json:"wait_ns_total"`
	WallNS     int64   `json:"wall_ns_total"`
	Efficiency float64 `json:"efficiency"`
	Imbalance  float64 `json:"imbalance"`
}

// RuntimeSample is one background-sampler reading of the Go runtime.
type RuntimeSample struct {
	AtNS            int64  `json:"at_ns"`
	HeapInuseBytes  uint64 `json:"heap_inuse_bytes"`
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	Mallocs         uint64 `json:"mallocs"`
	GCPauseTotalNS  uint64 `json:"gc_pause_total_ns"`
	NumGC           uint32 `json:"num_gc"`
	Goroutines      int    `json:"goroutines"`
}

// ReportEvent is the JSON rendering of one flight-recorder event.
type ReportEvent struct {
	AtNS   int64  `json:"at_ns"`
	DurNS  int64  `json:"dur_ns,omitempty"`
	Kind   string `json:"kind"`
	Phase  string `json:"phase,omitempty"`
	Worker int    `json:"worker,omitempty"`
	Lo     int    `json:"lo,omitempty"`
	Hi     int    `json:"hi,omitempty"`
	Iter   int    `json:"iteration,omitempty"`
	Label  string `json:"label,omitempty"`
}

// RecorderStats describes the recorder's own state at report time.
type RecorderStats struct {
	EventCapacity    int   `json:"event_capacity"`
	EventsRecorded   int64 `json:"events_recorded"`
	EventsEvicted    int64 `json:"events_evicted"`
	Samples          int   `json:"samples"`
	SamplesDropped   int64 `json:"samples_dropped"`
	SampleIntervalMS int64 `json:"sample_interval_ms"`
	WorkerOverflow   int64 `json:"worker_overflow,omitempty"`
}

// Report assembles the run report at quiescence: call it after the
// measured work (and the sampler's stop function) has finished. counters
// should be the delta over the recorded window (ReadCounters().Sub of the
// snapshot taken when recording began).
func (r *Recorder) Report(tool, runID string, args []string, counters Counters) RunReport {
	samples, sampleDrops := r.Samples()
	rep := RunReport{
		Schema:         RunReportSchema,
		Tool:           tool,
		RunID:          runID,
		Args:           args,
		Build:          BuildInfo(),
		WallNS:         r.NowNS(),
		Counters:       counters,
		Phases:         phaseStats(),
		Workers:        r.workerStats(),
		RuntimeSamples: samples,
		Events:         reportEvents(r.Events()),
		Recorder: RecorderStats{
			EventCapacity:    len(r.slots),
			EventsRecorded:   r.next.Load(),
			EventsEvicted:    r.Evicted(),
			Samples:          len(samples),
			SamplesDropped:   sampleDrops,
			SampleIntervalMS: r.sampleInterval.Milliseconds(),
			WorkerOverflow:   r.overflow.Load(),
		},
	}
	rep.Pool = poolStats(rep.Workers)
	return rep
}

// phaseStats snapshots the process-global phase histograms.
func phaseStats() []PhaseStats {
	hs := PhaseHistograms()
	out := make([]PhaseStats, len(hs))
	for i, h := range hs {
		out[i] = PhaseStats{
			Name: h.Name, Count: h.Count, SumNS: h.SumNS,
			P50NS: h.P50(), P95NS: h.P95(), P99NS: h.P99(),
		}
	}
	return out
}

// workerStats flattens the attribution table into one row per worker
// that executed at least one chunk or recorded wall time.
func (r *Recorder) workerStats() []WorkerStats {
	var out []WorkerStats
	for w := 0; w < maxRecorderWorkers; w++ {
		acc := &r.workers[w]
		ws := WorkerStats{
			Worker: w,
			Chunks: acc.chunks.Load(),
			Items:  acc.items.Load(),
			BusyNS: acc.busyNS.Load(),
			WaitNS: acc.waitNS.Load(),
			WallNS: acc.wallNS.Load(),
		}
		if ws.Chunks != 0 || ws.WallNS != 0 {
			out = append(out, ws)
		}
	}
	return out
}

// poolStats derives the aggregate pool metrics from the worker table.
func poolStats(workers []WorkerStats) *PoolStats {
	if len(workers) == 0 {
		return nil
	}
	p := &PoolStats{Workers: len(workers)}
	minBusy, maxBusy := int64(-1), int64(0)
	for _, w := range workers {
		p.ChunksNS += w.BusyNS
		p.WaitNS += w.WaitNS
		p.WallNS += w.WallNS
		if w.BusyNS > maxBusy {
			maxBusy = w.BusyNS
		}
		if minBusy < 0 || w.BusyNS < minBusy {
			minBusy = w.BusyNS
		}
	}
	if p.WallNS > 0 {
		p.Efficiency = float64(p.ChunksNS) / float64(p.WallNS)
	}
	if minBusy > 0 {
		p.Imbalance = float64(maxBusy) / float64(minBusy)
	}
	return p
}

// reportEvents renders ring events with symbolic kind and phase names.
func reportEvents(evs []Event) []ReportEvent {
	out := make([]ReportEvent, len(evs))
	for i, e := range evs {
		re := ReportEvent{
			AtNS: e.AtNS, DurNS: e.DurNS, Kind: e.Kind.String(),
			Worker: int(e.Worker), Label: e.Label,
		}
		switch e.Kind {
		case EventPhaseEnter, EventPhaseExit:
			re.Phase = e.Phase.String()
		case EventChunk:
			re.Lo, re.Hi = int(e.Lo), int(e.Hi)
		case EventIteration:
			re.Iter = int(e.Iter)
		}
		out[i] = re
	}
	return out
}

// WriteJSON writes the report as indented JSON with one checked write.
func (r RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Validate checks the invariants the runreport schema promises consumers;
// the golden harness and the CI smoke job assert it on real reports.
func (r *RunReport) Validate() error {
	if r.Schema != RunReportSchema {
		return fmt.Errorf("schema = %q, want %q", r.Schema, RunReportSchema)
	}
	if r.Tool == "" {
		return fmt.Errorf("missing tool")
	}
	if r.WallNS < 0 {
		return fmt.Errorf("negative wall_ns %d", r.WallNS)
	}
	for _, key := range []string{"version", "revision", "go"} {
		if r.Build[key] == "" {
			return fmt.Errorf("build metadata missing %q", key)
		}
	}
	if len(r.Phases) != int(numPhases) {
		return fmt.Errorf("got %d phase summaries, want %d", len(r.Phases), numPhases)
	}
	for i, p := range r.Phases {
		if p.Name != Phase(i).String() {
			return fmt.Errorf("phase %d named %q, want %q", i, p.Name, Phase(i))
		}
		if p.Count < 0 || p.SumNS < 0 {
			return fmt.Errorf("phase %q has negative totals", p.Name)
		}
	}
	for _, w := range r.Workers {
		if w.Worker < 0 || w.Worker >= maxRecorderWorkers {
			return fmt.Errorf("worker ID %d out of range", w.Worker)
		}
		if w.BusyNS < 0 || w.WaitNS < 0 || w.WallNS < 0 {
			return fmt.Errorf("worker %d has negative time totals", w.Worker)
		}
		if w.BusyNS+w.WaitNS != w.WallNS {
			return fmt.Errorf("worker %d: busy %d + wait %d != wall %d",
				w.Worker, w.BusyNS, w.WaitNS, w.WallNS)
		}
	}
	prev := int64(-1)
	for i, s := range r.RuntimeSamples {
		if s.AtNS < prev {
			return fmt.Errorf("runtime sample %d goes backward (%d after %d)", i, s.AtNS, prev)
		}
		prev = s.AtNS
	}
	if r.Recorder.EventCapacity <= 0 {
		return fmt.Errorf("recorder event capacity %d", r.Recorder.EventCapacity)
	}
	if n := int64(len(r.Events)); n > int64(r.Recorder.EventCapacity) {
		return fmt.Errorf("%d events exceed capacity %d", n, r.Recorder.EventCapacity)
	}
	return nil
}
