package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// The Go toolchain only stamps vcs.* build settings into `go build` /
// `go install` binaries — `go run` and `go test` binaries carry none,
// which is how the committed bench report ended up with
// `revision: "unknown"`. The Makefile therefore injects the repository
// state through these ldflags fallbacks
// (-X kshape/internal/obs.fallbackRevision=…), consulted only when
// ReadBuildInfo has no vcs settings of its own.
var (
	fallbackRevision string
	fallbackModified string
)

// BuildInfo returns build metadata from runtime/debug.ReadBuildInfo:
// module version, VCS revision/time/dirty state when stamped, and the Go
// toolchain, falling back to the Makefile-injected ldflags values for
// binaries the toolchain does not stamp (`go run`, `go test`). Missing
// fields are reported as "unknown" so exports and bench reports always
// carry stable keys.
func BuildInfo() map[string]string {
	out := map[string]string{
		"version":  "unknown",
		"revision": "unknown",
		"time":     "unknown",
		"modified": "unknown",
		"go":       runtime.Version(),
	}
	if fallbackRevision != "" {
		out["revision"] = shortRev(fallbackRevision)
	}
	if fallbackModified != "" {
		out["modified"] = fallbackModified
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Version != "" {
		out["version"] = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out["revision"] = shortRev(s.Value)
		case "vcs.time":
			out["time"] = s.Value
		case "vcs.modified":
			out["modified"] = s.Value
		}
	}
	return out
}

// shortRev truncates a VCS revision to the 12-character short form used
// everywhere a revision is displayed or exported.
func shortRev(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}

// Version renders the one-line build identifier the CLIs print for
// -version and the telemetry surface embeds, so scraped metrics and bench
// JSON can be correlated with a build.
func Version() string {
	info := BuildInfo()
	return fmt.Sprintf("%s (revision %s, %s)", info["version"], info["revision"], info["go"])
}
