package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo returns build metadata from runtime/debug.ReadBuildInfo:
// module version, VCS revision/time/dirty state when stamped, and the Go
// toolchain. Missing fields are reported as "unknown" so exports and
// bench reports always carry stable keys.
func BuildInfo() map[string]string {
	out := map[string]string{
		"version":  "unknown",
		"revision": "unknown",
		"time":     "unknown",
		"modified": "unknown",
		"go":       runtime.Version(),
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Version != "" {
		out["version"] = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev := s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
			out["revision"] = rev
		case "vcs.time":
			out["time"] = s.Value
		case "vcs.modified":
			out["modified"] = s.Value
		}
	}
	return out
}

// Version renders the one-line build identifier the CLIs print for
// -version and the telemetry surface embeds, so scraped metrics and bench
// JSON can be correlated with a build.
func Version() string {
	info := BuildInfo()
	return fmt.Sprintf("%s (revision %s, %s)", info["version"], info["revision"], info["go"])
}
