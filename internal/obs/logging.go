package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// This file holds the structured-logging half of the export layer: every
// CLI builds a slog.Logger here (text or JSON, -log-level/-log-json) and
// threads it through the experiment harness and the clustering engines,
// replacing the ad-hoc fmt progress lines. The shared field schema:
//
//	tool    — the binary emitting the record (kshape, kbench, knn, datagen)
//	run_id  — random per-invocation ID correlating all records of one run
//	method / dataset / iteration — clustering context, where applicable
//	counters.* — kernel-counter deltas (Counters implements slog.LogValuer)

// ParseLevel maps a -log-level flag value (debug, info, warn, error;
// case-insensitive) to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds a slog.Logger writing to w at the named level, as
// human-readable text or JSON lines.
func NewLogger(w io.Writer, level string, json bool) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return slog.New(slog.NewTextHandler(w, opts)), nil
}

// NewRunID returns a short random hex identifier correlating every log
// record, metric scrape, and report of one CLI invocation.
func NewRunID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// LogValue renders one refinement iteration as a slog group, keeping the
// field names aligned with the JSON report schema.
func (s IterationStats) LogValue() slog.Value {
	return slog.GroupValue(
		slog.Int("iteration", s.Iteration),
		slog.Float64("inertia", s.Inertia),
		slog.Float64("inertia_delta", s.InertiaDelta),
		slog.Int("label_churn", s.LabelChurn),
		slog.Int("reseeds", s.Reseeds),
		slog.Float64("drift_max", s.DriftMax()),
		slog.Float64("silhouette_sample", s.SilhouetteSample),
		slog.Int64("refine_ns", s.RefineNS),
		slog.Int64("assign_ns", s.AssignNS),
	)
}

// LogValue renders a counter snapshot (or delta) as a slog group, so
// `logger.Info("done", "counters", delta)` emits counters.fft=…,
// counters.sbd=…, keeping the field schema identical in text and JSON.
func (c Counters) LogValue() slog.Value {
	attrs := make([]slog.Attr, 0, numCounters)
	c.Each(func(name string, v int64) {
		attrs = append(attrs, slog.Int64(name, v))
	})
	return slog.GroupValue(attrs...)
}
