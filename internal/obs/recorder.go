package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the flight recorder: a per-run, bounded, lock-free
// ring of timestamped events (phase enter/exit spans, iteration boundaries,
// per-worker chunk spans, free-form marks) plus a background runtime
// sampler (heap in use, cumulative allocations, GC pause totals, goroutine
// count) and a per-worker attribution table fed by internal/par. Together
// they answer the question the aggregate counters and histograms cannot:
// *where inside the run* the time went — which worker, which phase, and
// whether the pool was busy or waiting.
//
// One recorder is active per process at a time (SetRecorder); the
// instrumented call sites pay a single atomic pointer load when no
// recorder is installed, mirroring the Enabled() contract of the counters.
// Event slots are claimed with one atomic add and published with one
// atomic pointer store, so recording never locks and two writers lapping
// each other on the ring (overwrite-oldest) never race; the ring keeps
// the most recent events and counts evictions. Read the events at
// quiescence (after the run finishes) — Report is the sanctioned reader —
// since only then is the retained window a consistent prefix-free tail.

// EventKind discriminates the flight-recorder event types.
type EventKind uint8

// The event kinds.
const (
	// EventPhaseEnter marks the start of an instrumented phase span.
	EventPhaseEnter EventKind = iota
	// EventPhaseExit marks the end of an instrumented phase span; DurNS
	// carries the span length.
	EventPhaseExit
	// EventIteration marks a refinement-iteration boundary; Iter is the
	// 1-based iteration that just completed.
	EventIteration
	// EventChunk is one contiguous chunk of parallel work executed by one
	// pool worker: Worker, Lo/Hi (the index range), AtNS/DurNS (the span).
	EventChunk
	// EventMark is a free-form annotation (method dispatch, dataset
	// boundary) carrying Label.
	EventMark
)

var eventKindNames = [...]string{
	"phase_enter", "phase_exit", "iteration", "chunk", "mark",
}

// String returns the snake_case kind name used in the run report.
func (k EventKind) String() string {
	if int(k) >= len(eventKindNames) {
		return "unknown"
	}
	return eventKindNames[k]
}

// Event is one flight-recorder record. AtNS is the offset from the
// recorder's start on the monotonic clock; DurNS is nonzero for spans.
type Event struct {
	AtNS   int64
	DurNS  int64
	Kind   EventKind
	Phase  Phase // phase enter/exit and chunk events
	Worker int32 // chunk events; -1 elsewhere
	Lo, Hi int32 // chunk index range [Lo, Hi)
	Iter   int32 // iteration events
	Label  string
}

// maxRecorderWorkers bounds the per-worker attribution table. Worker IDs
// at or above the bound fold into the last slot (and are counted), so a
// misconfigured pool cannot index out of bounds.
const maxRecorderWorkers = 256

// workerAccum aggregates one pool worker's lifetime totals. All fields are
// atomically updated; padding keeps concurrent workers off each other's
// cache lines.
type workerAccum struct {
	chunks atomic.Int64
	items  atomic.Int64
	busyNS atomic.Int64
	waitNS atomic.Int64
	wallNS atomic.Int64
	_      [24]byte
}

// Recorder is the per-run flight recorder. Create one with NewRecorder,
// install it with SetRecorder, and read it back with Report after the run.
// Recording methods are safe for concurrent use; Events and Report must
// only be called when no writers are active.
type Recorder struct {
	start    Stopwatch
	slots    []atomic.Pointer[Event]
	mask     int64
	next     atomic.Int64
	workers  [maxRecorderWorkers]workerAccum
	overflow atomic.Int64 // worker IDs folded into the last slot

	samples struct {
		sync.Mutex
		s       []RuntimeSample
		dropped int64
	}
	sampleInterval time.Duration
	samplerStop    chan struct{}
	samplerDone    chan struct{}
}

// Recorder sizing defaults.
const (
	// DefaultEventCapacity is the ring size NewRecorder(0) allocates.
	DefaultEventCapacity = 1 << 13
	// maxRuntimeSamples bounds the sampler's memory; later samples are
	// dropped (and counted) rather than growing without bound.
	maxRuntimeSamples = 1 << 12
	// DefaultSampleInterval is the sampler period StartSampler(0) uses.
	DefaultSampleInterval = 20 * time.Millisecond
)

// NewRecorder builds a recorder whose event ring holds at least capacity
// events (rounded up to a power of two); capacity <= 0 means
// DefaultEventCapacity. The recorder's clock starts at the moment of the
// call.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Recorder{
		start: NewStopwatch(),
		slots: make([]atomic.Pointer[Event], size),
		mask:  int64(size - 1),
	}
}

// activeRecorder is the process-global recorder the instrumented call
// sites consult; nil means flight recording is off and each site costs
// one atomic pointer load.
var activeRecorder atomic.Pointer[Recorder]

// SetRecorder installs r (nil uninstalls) and returns the previously
// active recorder.
func SetRecorder(r *Recorder) (previous *Recorder) {
	return activeRecorder.Swap(r)
}

// ActiveRecorder returns the installed recorder, or nil.
func ActiveRecorder() *Recorder { return activeRecorder.Load() }

// NowNS returns the recorder-clock offset (monotonic nanoseconds since
// NewRecorder).
func (r *Recorder) NowNS() int64 { return r.start.ElapsedNS() }

// record claims the next ring slot and publishes ev into it with an
// atomic pointer store (one small allocation per event — events fire per
// chunk/phase/iteration, not per item, so this is off the hot path). When
// the ring is full the oldest event is overwritten; Evicted reports how
// many.
func (r *Recorder) record(ev Event) {
	i := r.next.Add(1) - 1
	r.slots[i&r.mask].Store(&ev)
}

// RecordPhaseSpan records a phase span that ended at the moment of the
// call (enter at now-durNS, exit at now) — the shape the engine loops
// produce, where the duration is measured with a Stopwatch and reported
// when the phase body finishes.
func (r *Recorder) RecordPhaseSpan(p Phase, durNS int64) {
	if durNS < 0 {
		durNS = 0
	}
	at := r.NowNS() - durNS
	if at < 0 {
		at = 0
	}
	r.record(Event{AtNS: at, Kind: EventPhaseEnter, Phase: p, Worker: -1})
	r.record(Event{AtNS: at + durNS, DurNS: durNS, Kind: EventPhaseExit, Phase: p, Worker: -1})
}

// RecordIteration marks a completed refinement iteration (1-based).
func (r *Recorder) RecordIteration(iter int) {
	r.record(Event{AtNS: r.NowNS(), Kind: EventIteration, Iter: int32(iter), Worker: -1})
}

// RecordMark records a free-form annotation event.
func (r *Recorder) RecordMark(label string) {
	r.record(Event{AtNS: r.NowNS(), Kind: EventMark, Label: label, Worker: -1})
}

// RecordChunk records one executed chunk of pool work: worker is the pool
// worker ID, [lo, hi) the index range, startNS the recorder-clock offset
// the chunk began at, and durNS its execution time.
func (r *Recorder) RecordChunk(worker, lo, hi int, startNS, durNS int64) {
	r.record(Event{
		AtNS: startNS, DurNS: durNS, Kind: EventChunk,
		Worker: int32(clampWorker(worker)), Lo: int32(lo), Hi: int32(hi),
	})
}

// AddWorkerSpan folds one pool invocation's per-worker totals into the
// lifetime attribution table: chunks executed, items covered, time spent
// inside chunk bodies (busy), time spent waiting for work or on pool
// startup/teardown (wait), and the worker's wall time for the invocation
// (busy + wait, by construction).
func (r *Recorder) AddWorkerSpan(worker int, chunks, items, busyNS, waitNS, wallNS int64) {
	w := clampWorker(worker)
	if w != worker {
		r.overflow.Add(1)
	}
	acc := &r.workers[w]
	acc.chunks.Add(chunks)
	acc.items.Add(items)
	acc.busyNS.Add(busyNS)
	acc.waitNS.Add(waitNS)
	acc.wallNS.Add(wallNS)
}

func clampWorker(w int) int {
	if w < 0 {
		return 0
	}
	if w >= maxRecorderWorkers {
		return maxRecorderWorkers - 1
	}
	return w
}

// Events returns the retained events in append order (oldest first). Call
// at quiescence for a consistent window: racing writers cannot tear a
// slot (stores are atomic), but a claimed-not-yet-published slot reads as
// its previous occupant.
func (r *Recorder) Events() []Event {
	total := r.next.Load()
	size := int64(len(r.slots))
	appendSlot := func(out []Event, i int64) []Event {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
		return out
	}
	if total <= size {
		out := make([]Event, 0, total)
		for i := int64(0); i < total; i++ {
			out = appendSlot(out, i)
		}
		return out
	}
	out := make([]Event, 0, size)
	head := total & r.mask // oldest retained slot
	for i := head; i < size; i++ {
		out = appendSlot(out, i)
	}
	for i := int64(0); i < head; i++ {
		out = appendSlot(out, i)
	}
	return out
}

// Evicted reports how many events the ring has overwritten.
func (r *Recorder) Evicted() int64 {
	total := r.next.Load()
	if size := int64(len(r.slots)); total > size {
		return total - size
	}
	return 0
}

// StartSampler launches the background runtime sampler at the given
// interval (<= 0 means DefaultSampleInterval) and returns the function
// that stops it (idempotent is not required; call exactly once). One
// sample is taken immediately and one at stop, so even sub-interval runs
// report at least two samples. The sampler goroutine touches no
// clustering state — it only reads runtime statistics — so determinism of
// the computation is unaffected.
func (r *Recorder) StartSampler(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	r.sampleInterval = interval
	r.samplerStop = make(chan struct{})
	r.samplerDone = make(chan struct{})
	r.sample()
	//lint:ignore goroutine runtime-stats sampler lifetime, not data-path fan-out
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		defer close(r.samplerDone)
		for {
			select {
			case <-t.C:
				r.sample()
			case <-r.samplerStop:
				return
			}
		}
	}()
	return func() {
		close(r.samplerStop)
		<-r.samplerDone
		r.sample()
	}
}

// sample appends one runtime sample, dropping (and counting) past the cap.
func (r *Recorder) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeSample{
		AtNS:            r.NowNS(),
		HeapInuseBytes:  ms.HeapInuse,
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		GCPauseTotalNS:  ms.PauseTotalNs,
		NumGC:           ms.NumGC,
		Goroutines:      runtime.NumGoroutine(),
	}
	r.samples.Lock()
	if len(r.samples.s) < maxRuntimeSamples {
		r.samples.s = append(r.samples.s, s)
	} else {
		r.samples.dropped++
	}
	r.samples.Unlock()
}

// Samples returns a copy of the runtime samples taken so far and the
// number dropped past the cap.
func (r *Recorder) Samples() (samples []RuntimeSample, dropped int64) {
	r.samples.Lock()
	defer r.samples.Unlock()
	out := make([]RuntimeSample, len(r.samples.s))
	copy(out, r.samples.s)
	return out, r.samples.dropped
}

// Package-level recording helpers: each is a no-op costing one atomic
// load when no recorder is installed, so instrumented code calls them
// unconditionally.

// RecordPhaseSpan records a just-ended phase span on the active recorder.
func RecordPhaseSpan(p Phase, durNS int64) {
	if r := activeRecorder.Load(); r != nil {
		r.RecordPhaseSpan(p, durNS)
	}
}

// RecordIteration marks a completed refinement iteration on the active
// recorder.
func RecordIteration(iter int) {
	if r := activeRecorder.Load(); r != nil {
		r.RecordIteration(iter)
	}
}

// RecordMark records an annotation event on the active recorder.
func RecordMark(label string) {
	if r := activeRecorder.Load(); r != nil {
		r.RecordMark(label)
	}
}
