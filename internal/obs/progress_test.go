package obs

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// installPublisher installs a fresh publisher for the test and restores
// the previous one at cleanup.
func installPublisher(t *testing.T) *ProgressPublisher {
	t.Helper()
	pub := NewProgressPublisher()
	prev := SetProgressPublisher(pub)
	t.Cleanup(func() { SetProgressPublisher(prev) })
	return pub
}

func TestProgressPublisherLifecycle(t *testing.T) {
	pub := NewProgressPublisher()
	if _, ok := pub.Snapshot(); ok {
		t.Fatal("fresh publisher has a snapshot")
	}
	pub.BeginRun("k-Shape", 120, 3, 100)
	snap, ok := pub.Snapshot()
	if !ok || snap.Phase != ProgressPhaseInit {
		t.Fatalf("after BeginRun: ok=%v snap=%+v", ok, snap)
	}
	if snap.Method != "k-Shape" || snap.Series != 120 || snap.K != 3 || snap.MaxIterations != 100 {
		t.Errorf("run identity not published: %+v", snap)
	}
	if snap.Seq != 1 || snap.ETAIterations != -1 {
		t.Errorf("seq=%d eta=%d, want 1/-1", snap.Seq, snap.ETAIterations)
	}

	pub.PublishIteration(IterationStats{
		Iteration: 1, Inertia: 40.5, LabelChurn: 30,
		ClusterSizes: []int{50, 40, 30}, CentroidDrift: []float64{1, 1, 0.5},
		SilhouetteSample: 0.4,
	})
	pub.PublishIteration(IterationStats{
		Iteration: 2, Inertia: 30.25, InertiaDelta: -10.25, LabelChurn: 15,
		ClusterSizes: []int{45, 45, 30}, CentroidDrift: []float64{0.2, 0.1, 0.05},
		SilhouetteSample: 0.5,
	})
	snap, _ = pub.Snapshot()
	if snap.Phase != ProgressPhaseIterating || snap.Iteration != 2 || snap.Seq != 3 {
		t.Errorf("after two iterations: %+v", snap)
	}
	if snap.Inertia != 30.25 || snap.InertiaDelta != -10.25 || snap.LabelChurn != 15 {
		t.Errorf("latest stats not mirrored: %+v", snap)
	}
	if snap.DriftMax != 0.2 || snap.SilhouetteSample != 0.5 {
		t.Errorf("drift/silhouette not mirrored: %+v", snap)
	}
	if len(snap.ClusterSizes) != 3 || snap.ClusterSizes[0] != 45 {
		t.Errorf("cluster sizes not mirrored: %+v", snap.ClusterSizes)
	}

	pub.EndRun(true)
	snap, _ = pub.Snapshot()
	if snap.Phase != ProgressPhaseDone || !snap.Converged || snap.ETAIterations != 0 {
		t.Errorf("after EndRun(true): %+v", snap)
	}
	// The terminal snapshot keeps the last iteration's metrics readable.
	if snap.Iteration != 2 || snap.Inertia != 30.25 {
		t.Errorf("terminal snapshot dropped the metrics: %+v", snap)
	}

	history, dropped := pub.History()
	if len(history) != 2 || dropped != 0 {
		t.Fatalf("history: %d entries, %d dropped", len(history), dropped)
	}
	if history[0].Iteration != 1 || history[1].Iteration != 2 {
		t.Errorf("history out of order: %+v", history)
	}
}

func TestProgressPublisherReuseAcrossRuns(t *testing.T) {
	pub := NewProgressPublisher()
	pub.BeginRun("k-Shape", 10, 2, 100)
	pub.PublishIteration(IterationStats{Iteration: 1, LabelChurn: 5})
	pub.EndRun(true)
	pub.BeginRun("k-AVG+ED", 10, 2, 100)
	snap, _ := pub.Snapshot()
	if snap.Method != "k-AVG+ED" || snap.Phase != ProgressPhaseInit {
		t.Errorf("second BeginRun did not reset: %+v", snap)
	}
	if history, _ := pub.History(); len(history) != 0 {
		t.Errorf("history not reset: %d entries", len(history))
	}
}

func TestProgressHistoryBounded(t *testing.T) {
	pub := NewProgressPublisher()
	pub.BeginRun("k-Shape", 10, 2, maxProgressHistory+10)
	for i := 0; i < maxProgressHistory+10; i++ {
		pub.PublishIteration(IterationStats{Iteration: i + 1, LabelChurn: 1})
	}
	history, dropped := pub.History()
	if len(history) != maxProgressHistory || dropped != 10 {
		t.Fatalf("history: %d entries, %d dropped; want %d/%d",
			len(history), dropped, maxProgressHistory, 10)
	}
	if history[0].Iteration != 11 || history[len(history)-1].Iteration != maxProgressHistory+10 {
		t.Errorf("wrong window retained: first=%d last=%d",
			history[0].Iteration, history[len(history)-1].Iteration)
	}
}

func TestProgressSnapshotImmutable(t *testing.T) {
	pub := NewProgressPublisher()
	pub.BeginRun("k-Shape", 4, 2, 10)
	sizes := []int{2, 2}
	pub.PublishIteration(IterationStats{Iteration: 1, ClusterSizes: sizes})
	sizes[0] = 99 // caller mutates its slice after publishing
	snap, _ := pub.Snapshot()
	if snap.ClusterSizes[0] != 2 {
		t.Errorf("published snapshot aliased the caller's slice: %+v", snap.ClusterSizes)
	}
}

func TestProgressSubscribe(t *testing.T) {
	pub := NewProgressPublisher()
	ch, cancel := pub.Subscribe(8)
	defer cancel()
	pub.BeginRun("k-Shape", 10, 2, 100)
	pub.PublishIteration(IterationStats{Iteration: 1, LabelChurn: 3})
	pub.EndRun(false)
	want := []string{ProgressPhaseInit, ProgressPhaseIterating, ProgressPhaseDone}
	for _, phase := range want {
		select {
		case p := <-ch:
			if p.Phase != phase {
				t.Fatalf("got phase %q, want %q", p.Phase, phase)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("no %q snapshot delivered", phase)
		}
	}
	cancel()
	cancel() // idempotent
	if _, open := <-ch; open {
		t.Error("channel still open after cancel")
	}
	// Publishing after cancel must not panic or block.
	pub.PublishIteration(IterationStats{Iteration: 2})
}

func TestProgressSubscribeDropsWhenFull(t *testing.T) {
	pub := NewProgressPublisher()
	ch, cancel := pub.Subscribe(1)
	defer cancel()
	pub.BeginRun("k-Shape", 10, 2, 100)
	for i := 0; i < 50; i++ { // must not block despite the full buffer
		pub.PublishIteration(IterationStats{Iteration: i + 1})
	}
	if got := <-ch; got.Phase != ProgressPhaseInit {
		t.Errorf("first buffered snapshot = %+v", got)
	}
}

func TestProgressPackageHelpersGateOnInstall(t *testing.T) {
	prev := SetProgressPublisher(nil)
	t.Cleanup(func() { SetProgressPublisher(prev) })
	// Without a publisher every helper is a no-op.
	ProgressBeginRun("k-Shape", 10, 2, 100)
	ProgressPublishIteration(IterationStats{Iteration: 1})
	ProgressEndRun(true)
	if ActiveProgressPublisher() != nil {
		t.Fatal("no publisher should be active")
	}
	pub := NewProgressPublisher()
	SetProgressPublisher(pub)
	ProgressBeginRun("k-Shape", 10, 2, 100)
	ProgressPublishIteration(IterationStats{Iteration: 1, LabelChurn: 4})
	ProgressEndRun(true)
	snap, ok := pub.Snapshot()
	if !ok || snap.Phase != ProgressPhaseDone || !snap.Converged {
		t.Errorf("helpers did not forward: ok=%v %+v", ok, snap)
	}
}

func TestProgressDiagnosticsFlowThroughSnapshots(t *testing.T) {
	pub := NewProgressPublisher()
	pub.BeginRun("k-Shape", 100, 2, 100)
	for _, churn := range []int{40, 6, 6, 6, 6} {
		pub.PublishIteration(IterationStats{LabelChurn: churn})
	}
	snap, _ := pub.Snapshot()
	if !snap.Stalled {
		t.Errorf("stall not diagnosed: %+v", snap)
	}
	pub.BeginRun("k-Shape", 100, 2, 100)
	for _, churn := range []int{64, 32, 16, 8} {
		pub.PublishIteration(IterationStats{LabelChurn: churn})
	}
	snap, _ = pub.Snapshot()
	if snap.ETAIterations != 4 {
		t.Errorf("ETA = %d, want 4", snap.ETAIterations)
	}
}

func TestProgressConcurrentReadersUnderPublish(t *testing.T) {
	pub := installPublisher(t)
	pub.BeginRun("k-Shape", 100, 3, 1000)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if snap, ok := pub.Snapshot(); ok && snap.Seq < 1 {
					t.Error("torn snapshot")
					return
				}
				var sb strings.Builder
				if err := WritePrometheus(&sb); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		pub.PublishIteration(IterationStats{
			Iteration: i + 1, Inertia: float64(1000 - i), LabelChurn: 500 - i/2,
			ClusterSizes: []int{30, 40, 30}, CentroidDrift: []float64{0.1, 0.2, 0.3},
		})
	}
	pub.EndRun(true)
	close(done)
	wg.Wait()
}

func TestWritePrometheusProgressGauges(t *testing.T) {
	resetTelemetry(t)
	pub := installPublisher(t)

	// No snapshot yet: no progress families.
	var sb strings.Builder
	if err := WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "kshape_progress_") {
		t.Error("progress gauges rendered before any snapshot")
	}

	pub.BeginRun("k-Shape", 120, 3, 100)
	pub.PublishIteration(IterationStats{
		Iteration: 7, Inertia: 12.5, InertiaDelta: -1.25, LabelChurn: 9,
		ClusterSizes: []int{50, 40, 30}, CentroidDrift: []float64{0.3, 0.1, 0.2},
		SilhouetteSample: 0.625,
	})
	sb.Reset()
	if err := WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`kshape_progress_info{method="k-Shape",phase="iterating"} 1`,
		"kshape_progress_iteration 7",
		"kshape_progress_max_iterations 100",
		"kshape_progress_inertia 12.5",
		"kshape_progress_inertia_delta -1.25",
		"kshape_progress_label_churn 9",
		"kshape_progress_centroid_drift_max 0.3",
		"kshape_progress_silhouette_sample 0.625",
		"kshape_progress_eta_iterations",
		"kshape_progress_stalled 0",
		"kshape_progress_oscillating 0",
		"kshape_progress_converged 0",
		`kshape_progress_cluster_size{cluster="0"} 50`,
		`kshape_progress_cluster_size{cluster="2"} 30`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// readSSEEvent consumes lines until one data: event (returned decoded)
// or a comment heartbeat (returned as isHeartbeat).
func readSSEEvent(t *testing.T, r *bufio.Reader) (p Progress, isHeartbeat bool) {
	t.Helper()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
				t.Fatalf("bad event payload: %v (%q)", err, line)
			}
			return p, false
		case strings.HasPrefix(line, ":"):
			return Progress{}, true
		case line == "":
			continue
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
}

func TestProgressSSEStream(t *testing.T) {
	pub := installPublisher(t)
	pub.BeginRun("k-Shape", 64, 2, 100)

	srv := httptest.NewServer(progressHandler(120 * time.Millisecond))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)

	// The current snapshot replays on connect.
	first, hb := readSSEEvent(t, r)
	if hb || first.Phase != ProgressPhaseInit || first.Method != "k-Shape" {
		t.Fatalf("initial replay = %+v (heartbeat=%v)", first, hb)
	}

	pub.PublishIteration(IterationStats{Iteration: 1, Inertia: 5.5, LabelChurn: 12})
	ev, hb := readSSEEvent(t, r)
	if hb || ev.Iteration != 1 || ev.Inertia != 5.5 || ev.LabelChurn != 12 {
		t.Fatalf("iteration event = %+v (heartbeat=%v)", ev, hb)
	}

	// Idle stream: the next frame is a comment heartbeat.
	if _, hb := readSSEEvent(t, r); !hb {
		t.Fatal("expected a heartbeat on the idle stream")
	}

	pub.EndRun(true)
	for {
		ev, hb := readSSEEvent(t, r)
		if hb {
			continue
		}
		if ev.Phase != ProgressPhaseDone || !ev.Converged {
			t.Fatalf("terminal event = %+v", ev)
		}
		break
	}
}

func TestProgressSSEFollowsLateInstalledPublisher(t *testing.T) {
	prev := SetProgressPublisher(nil)
	t.Cleanup(func() { SetProgressPublisher(prev) })

	srv := httptest.NewServer(progressHandler(40 * time.Millisecond))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)

	// No publisher yet: only heartbeats.
	if _, hb := readSSEEvent(t, r); !hb {
		t.Fatal("expected heartbeat while no publisher is installed")
	}

	pub := NewProgressPublisher()
	SetProgressPublisher(pub)
	pub.BeginRun("k-AVG+ED", 10, 2, 50)
	deadline := time.Now().Add(5 * time.Second)
	for {
		ev, hb := readSSEEvent(t, r)
		if !hb {
			if ev.Method != "k-AVG+ED" {
				t.Fatalf("event from wrong run: %+v", ev)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("stream never picked up the late publisher")
		}
	}
}
