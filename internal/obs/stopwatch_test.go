package obs

import (
	"testing"
	"time"
)

func TestStopwatchMonotone(t *testing.T) {
	sw := NewStopwatch()
	time.Sleep(5 * time.Millisecond)
	ns1 := sw.ElapsedNS()
	if ns1 < (1 * time.Millisecond).Nanoseconds() {
		t.Fatalf("ElapsedNS = %d, want at least ~5ms worth", ns1)
	}
	ns2 := sw.ElapsedNS()
	if ns2 < ns1 {
		t.Fatalf("elapsed went backwards: %d then %d", ns1, ns2)
	}
	if d := sw.Elapsed(); d.Nanoseconds() < ns1 {
		t.Fatalf("Elapsed() = %v shorter than earlier ElapsedNS %d", d, ns1)
	}
	if s := sw.Seconds(); s <= 0 {
		t.Fatalf("Seconds() = %v, want positive", s)
	}
}
