package obs

import (
	"sync/atomic"
	"time"
)

// The latency histograms use fixed log-scaled bucket boundaries: bound i
// covers durations in (bound[i-1], bound[i]] nanoseconds, with bound[i] =
// 1µs·2^i. The final (implicit +Inf) bucket absorbs everything above the
// last finite bound (~33.6s). Fixed boundaries keep recording lock-free —
// one atomic add per sample — and make snapshots from different processes
// directly comparable.
const (
	histFirstBound  = int64(1000) // 1µs
	numFiniteBounds = 26
	numHistoBuckets = numFiniteBounds + 1 // + overflow
	histBoundGrowth = 2
)

// histBounds holds the finite upper bounds in nanoseconds.
var histBounds = func() [numFiniteBounds]int64 {
	var b [numFiniteBounds]int64
	v := histFirstBound
	for i := range b {
		b[i] = v
		v *= histBoundGrowth
	}
	return b
}()

// Histogram is a lock-free latency histogram over the package's fixed
// log-scaled bucket boundaries. The zero value is ready to use. Recording
// is a bucket scan plus three atomic adds; snapshots are taken bucket by
// bucket without locking, so a snapshot racing with writers may be off by
// the samples in flight (never torn per bucket).
type Histogram struct {
	buckets [numHistoBuckets]atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
}

// Observe records one duration in nanoseconds. Negative durations clamp to
// zero (they land in the first bucket).
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// bucketIndex returns the bucket for a duration: the first finite bound
// >= ns, or the overflow bucket.
func bucketIndex(ns int64) int {
	for i, b := range histBounds {
		if ns <= b {
			return i
		}
	}
	return numFiniteBounds
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	s.Buckets = make([]int64, numHistoBuckets)
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// reset zeroes the histogram.
func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumNS.Store(0)
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Buckets[i]
// counts samples in (BucketBound(i-1), BucketBound(i)]; the last entry is
// the overflow bucket.
type HistogramSnapshot struct {
	// Name identifies the histogram in exports (set for phase histograms).
	Name string `json:"name,omitempty"`
	// Count is the total number of recorded samples.
	Count int64 `json:"count"`
	// SumNS is the sum of all recorded durations in nanoseconds.
	SumNS int64 `json:"sum_ns"`
	// Buckets holds per-bucket sample counts (not cumulative).
	Buckets []int64 `json:"buckets"`
}

// NumHistogramBuckets is the number of buckets every Histogram has,
// including the overflow bucket.
const NumHistogramBuckets = numHistoBuckets

// BucketBound returns the upper bound of bucket i in nanoseconds; the
// overflow bucket (i >= NumHistogramBuckets-1) reports -1, meaning +Inf.
func BucketBound(i int) int64 {
	if i < 0 {
		return 0
	}
	if i >= numFiniteBounds {
		return -1
	}
	return histBounds[i]
}

// Quantile estimates the q-quantile (q in [0, 1]) of the recorded
// durations in nanoseconds, by linear interpolation inside the bucket the
// target rank falls in. An empty histogram reports 0; ranks landing in the
// overflow bucket report the last finite bound (the estimate cannot
// extrapolate past it). For a fixed snapshot the estimate is monotone
// non-decreasing in q.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1 // the rank of the smallest sample
	}
	cum := 0.0
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < target {
			continue
		}
		if i >= len(s.Buckets)-1 || BucketBound(i) < 0 {
			return float64(histBounds[numFiniteBounds-1])
		}
		lo := 0.0
		if i > 0 {
			lo = float64(histBounds[i-1])
		}
		hi := float64(histBounds[i])
		frac := (target - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return float64(histBounds[numFiniteBounds-1])
}

// P50 is Quantile(0.50).
func (s HistogramSnapshot) P50() float64 { return s.Quantile(0.50) }

// P95 is Quantile(0.95).
func (s HistogramSnapshot) P95() float64 { return s.Quantile(0.95) }

// P99 is Quantile(0.99).
func (s HistogramSnapshot) P99() float64 { return s.Quantile(0.99) }

// Phase identifies one instrumented hot phase with a process-global
// latency histogram.
type Phase int

// The phase histograms. Each wraps a region the span traces of the
// instrumentation layer already time: pairwise dissimilarity-matrix
// construction, the assignment and refinement steps of the iterative
// engines, one full refinement iteration, and one shape-extraction
// centroid computation.
const (
	// PhasePairwiseMatrix times dist.PairwiseMatrix builds (the SBD/ED/DTW
	// matrices behind the non-scalable methods and EstimateK).
	PhasePairwiseMatrix Phase = iota
	// PhaseAssign times one assignment step (all series to nearest
	// centroid) of the Lloyd and optimized k-Shape engines.
	PhaseAssign
	// PhaseRefine times one refinement step (all centroids recomputed).
	PhaseRefine
	// PhaseIteration times one full refinement iteration (refine + assign
	// + reseed).
	PhaseIteration
	// PhaseShapeExtract times one shape-extraction centroid computation
	// (Algorithm 2).
	PhaseShapeExtract

	numPhases
)

var phaseNames = [numPhases]string{
	"pairwise_matrix",
	"assign",
	"refine",
	"iteration",
	"shape_extract",
}

// String returns the snake_case phase name used in exports.
func (p Phase) String() string {
	if p < 0 || p >= numPhases {
		return "unknown"
	}
	return phaseNames[p]
}

var phaseHistograms [numPhases]Histogram

// ObservePhase records a phase duration (nanoseconds) into the phase's
// global histogram when collection is enabled; disabled it costs one
// atomic load, like the kernel counters.
func ObservePhase(p Phase, ns int64) {
	if !enabled.Load() {
		return
	}
	phaseHistograms[p].Observe(ns)
}

// noopStop is returned by StartPhase on the disabled path so that the
// deferred call allocates nothing.
var noopStop = func() {}

// StartPhase starts timing a phase and returns the function that records
// the elapsed duration: defer StartPhase(p)() around the phase body. The
// sample lands in the phase histogram when collection is enabled and in
// the flight recorder when one is installed; with neither active the
// returned function is a shared no-op and no clock is read.
func StartPhase(p Phase) func() {
	rec := activeRecorder.Load()
	if !enabled.Load() && rec == nil {
		return noopStop
	}
	start := time.Now()
	return func() {
		ns := time.Since(start).Nanoseconds()
		ObservePhase(p, ns)
		if rec != nil {
			rec.RecordPhaseSpan(p, ns)
		}
	}
}

// PhaseHistograms snapshots every phase histogram, in Phase order.
func PhaseHistograms() []HistogramSnapshot {
	out := make([]HistogramSnapshot, numPhases)
	for p := Phase(0); p < numPhases; p++ {
		out[p] = phaseHistograms[p].Snapshot()
		out[p].Name = p.String()
	}
	return out
}

// ResetHistograms zeroes every phase histogram.
func ResetHistograms() {
	for i := range phaseHistograms {
		phaseHistograms[i].reset()
	}
}
