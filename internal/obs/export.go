package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the export half of the instrumentation layer: it renders
// the kernel counters, gauges, and phase histograms in the Prometheus
// text exposition format, bridges them into expvar, and serves both —
// plus health and runtime/pprof endpoints — over HTTP so long-running
// clustering processes can be scraped and profiled mid-flight.

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): the nine kernel counters as one counter family
// labeled by kernel, the gauges, the per-cluster occupancy of the last
// run, and one histogram family labeled by phase with cumulative buckets
// in seconds. The exposition is built in memory and emitted with one
// checked write, so a scrape is either complete or reports its error.
func WritePrometheus(dst io.Writer) error {
	var w strings.Builder
	c := ReadCounters()
	fmt.Fprintln(&w, "# HELP kshape_kernel_ops_total Kernel operation counts (FFT transforms, distance evaluations, eigensolver iterations, reseeds).")
	fmt.Fprintln(&w, "# TYPE kshape_kernel_ops_total counter")
	c.Each(func(name string, v int64) {
		fmt.Fprintf(&w, "kshape_kernel_ops_total{kernel=%q} %d\n", name, v)
	})

	fmt.Fprintln(&w, "# HELP kshape_telemetry_enabled Whether kernel counting and histogram collection are on.")
	fmt.Fprintln(&w, "# TYPE kshape_telemetry_enabled gauge")
	fmt.Fprintf(&w, "kshape_telemetry_enabled %d\n", boolToInt(Enabled()))

	for g := Gauge(0); g < numGauges; g++ {
		name := "kshape_" + g.String()
		fmt.Fprintf(&w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(&w, "%s %d\n", name, ReadGauge(g))
	}

	if sizes := LastClusterSizes(); len(sizes) > 0 {
		fmt.Fprintln(&w, "# HELP kshape_cluster_size Cluster occupancy of the most recently finished run.")
		fmt.Fprintln(&w, "# TYPE kshape_cluster_size gauge")
		for j, s := range sizes {
			fmt.Fprintf(&w, "kshape_cluster_size{cluster=\"%d\"} %d\n", j, s)
		}
	}

	fmt.Fprintln(&w, "# HELP kshape_phase_duration_seconds Latency of the instrumented hot phases.")
	fmt.Fprintln(&w, "# TYPE kshape_phase_duration_seconds histogram")
	for _, h := range PhaseHistograms() {
		cum := int64(0)
		for i, n := range h.Buckets {
			cum += n
			le := "+Inf"
			if b := BucketBound(i); b >= 0 {
				le = strconv.FormatFloat(float64(b)/1e9, 'g', -1, 64)
			}
			fmt.Fprintf(&w, "kshape_phase_duration_seconds_bucket{phase=%q,le=%q} %d\n", h.Name, le, cum)
		}
		fmt.Fprintf(&w, "kshape_phase_duration_seconds_sum{phase=%q} %g\n", h.Name, float64(h.SumNS)/1e9)
		fmt.Fprintf(&w, "kshape_phase_duration_seconds_count{phase=%q} %d\n", h.Name, h.Count)
	}

	writeProgressMetrics(&w)

	fmt.Fprintln(&w, "# HELP kshape_build_info Build metadata; the value is always 1.")
	fmt.Fprintln(&w, "# TYPE kshape_build_info gauge")
	info := BuildInfo()
	fmt.Fprintf(&w, "kshape_build_info{version=%q,revision=%q,go=%q} 1\n",
		info["version"], info["revision"], info["go"])
	_, err := io.WriteString(dst, w.String())
	return err
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// writeProgressMetrics renders the live-progress gauge family from the
// active publisher's latest snapshot; no publisher or no snapshot means
// no progress families, so scrapes of idle processes stay small.
func writeProgressMetrics(w *strings.Builder) {
	pub := ActiveProgressPublisher()
	if pub == nil {
		return
	}
	p, ok := pub.Snapshot()
	if !ok {
		return
	}
	fmt.Fprintln(w, "# HELP kshape_progress_info Live run identity; the value is always 1.")
	fmt.Fprintln(w, "# TYPE kshape_progress_info gauge")
	fmt.Fprintf(w, "kshape_progress_info{method=%q,phase=%q} 1\n", p.Method, p.Phase)
	scalar := func(name, help string, v string) {
		fmt.Fprintf(w, "# HELP kshape_progress_%s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE kshape_progress_%s gauge\n", name)
		fmt.Fprintf(w, "kshape_progress_%s %s\n", name, v)
	}
	ints := func(name, help string, v int64) { scalar(name, help, strconv.FormatInt(v, 10)) }
	floats := func(name, help string, v float64) {
		scalar(name, help, strconv.FormatFloat(v, 'g', -1, 64))
	}
	ints("seq", "Snapshot sequence number of the live run.", p.Seq)
	ints("iteration", "Last completed refinement iteration.", int64(p.Iteration))
	ints("max_iterations", "Configured iteration cap.", int64(p.MaxIterations))
	floats("inertia", "Objective value after the last iteration.", p.Inertia)
	floats("inertia_delta", "Inertia change versus the previous iteration.", p.InertiaDelta)
	ints("label_churn", "Series that changed cluster in the last iteration.", int64(p.LabelChurn))
	floats("centroid_drift_max", "Largest per-cluster centroid drift (SBD) of the last iteration.", p.DriftMax)
	floats("silhouette_sample", "Sampled simplified-silhouette estimate of the last iteration.", p.SilhouetteSample)
	ints("eta_iterations", "Estimated iterations to convergence (-1 unknown).", int64(p.ETAIterations))
	ints("stalled", "Whether churn is flat and nonzero (1) or not (0).", int64(boolToInt(p.Stalled)))
	ints("oscillating", "Whether churn shows a period-2 cycle (1) or not (0).", int64(boolToInt(p.Oscillating)))
	ints("converged", "Whether the run reached its fixed point (1) or not (0).", int64(boolToInt(p.Converged)))
	if len(p.ClusterSizes) > 0 {
		fmt.Fprintln(w, "# HELP kshape_progress_cluster_size Live cluster occupancy of the in-flight run.")
		fmt.Fprintln(w, "# TYPE kshape_progress_cluster_size gauge")
		for j, s := range p.ClusterSizes {
			fmt.Fprintf(w, "kshape_progress_cluster_size{cluster=\"%d\"} %d\n", j, s)
		}
	}
}

// MetricsHandler serves WritePrometheus output.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A scrape whose connection died mid-write has no recovery path;
		// the next scrape starts fresh.
		_ = WritePrometheus(w)
	})
}

// publishExpvar registers the kernel counters, gauges, and phase-quantile
// summaries as expvar variables (served on /debug/vars). expvar panics on
// duplicate names, so registration happens once per process.
var publishExpvar = sync.OnceFunc(func() {
	expvar.Publish("kshape.counters", expvar.Func(func() any { return ReadCounters() }))
	expvar.Publish("kshape.gauges", expvar.Func(func() any {
		g := Gauges()
		if sizes := LastClusterSizes(); sizes != nil {
			return map[string]any{"scalars": g, "cluster_sizes": sizes}
		}
		return map[string]any{"scalars": g}
	}))
	expvar.Publish("kshape.phases", expvar.Func(func() any {
		type phaseSummary struct {
			Count int64   `json:"count"`
			SumNS int64   `json:"sum_ns"`
			P50NS float64 `json:"p50_ns"`
			P95NS float64 `json:"p95_ns"`
			P99NS float64 `json:"p99_ns"`
		}
		out := map[string]phaseSummary{}
		for _, h := range PhaseHistograms() {
			out[h.Name] = phaseSummary{
				Count: h.Count, SumNS: h.SumNS,
				P50NS: h.P50(), P95NS: h.P95(), P99NS: h.P99(),
			}
		}
		return out
	}))
})

// NewTelemetryMux builds the HTTP surface served by -listen: Prometheus
// metrics on /metrics, the live-progress SSE stream on /progress, a
// liveness probe on /healthz, expvar JSON on /debug/vars, and the
// runtime profiler under /debug/pprof/.
func NewTelemetryMux() *http.ServeMux {
	publishExpvar()
	started := time.Now()
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/progress", ProgressHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Probe responses are best-effort: a prober that hung up mid-read
		// will simply retry.
		_, _ = fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%.3f,\"telemetry_enabled\":%v,\"version\":%q}\n",
			time.Since(started).Seconds(), Enabled(), Version())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// TelemetryServer is a running telemetry HTTP server.
type TelemetryServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeTelemetry binds addr (host:port; port 0 picks a free one) and
// serves the telemetry mux on it until Close. It does not flip the
// collection switch — callers decide whether serving implies measuring
// (the CLIs enable collection for the duration of a -listen run).
func ServeTelemetry(addr string) (*TelemetryServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry listener: %w", err)
	}
	srv := &http.Server{Handler: NewTelemetryMux()}
	// Serve returns ErrServerClosed on Close; nothing clustering-related
	// flows through this goroutine, so determinism is unaffected.
	//lint:ignore goroutine telemetry HTTP server lifetime, not data-path fan-out
	go srv.Serve(ln)
	return &TelemetryServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (with the real port when :0 was asked).
func (t *TelemetryServer) Addr() string { return t.ln.Addr().String() }

// URL returns the server's base URL.
func (t *TelemetryServer) URL() string { return "http://" + t.Addr() }

// Close stops the server and releases the listener.
func (t *TelemetryServer) Close() error { return t.srv.Close() }
