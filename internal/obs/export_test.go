package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// resetTelemetry restores a clean metric state for export tests, which
// assert on absolute values.
func resetTelemetry(t *testing.T) {
	t.Helper()
	prev := SetEnabled(false)
	ResetCounters()
	ResetHistograms()
	ResetGauges()
	t.Cleanup(func() {
		SetEnabled(prev)
		ResetCounters()
		ResetHistograms()
		ResetGauges()
	})
}

func TestWritePrometheusRendersAllCounters(t *testing.T) {
	resetTelemetry(t)
	SetEnabled(true)
	Inc(CounterFFT)
	Add(CounterSBD, 41)
	Inc(CounterSBD)

	var sb strings.Builder
	WritePrometheus(&sb)
	out := sb.String()

	for _, kernel := range []string{
		"fft", "ifft", "sbd", "ed", "dtw",
		"eigen_iterations", "eigen_decompositions", "shape_extractions", "reseeds",
	} {
		if !strings.Contains(out, `kshape_kernel_ops_total{kernel="`+kernel+`"}`) {
			t.Errorf("missing counter sample for kernel %q", kernel)
		}
	}
	if !strings.Contains(out, `kshape_kernel_ops_total{kernel="fft"} 1`) {
		t.Error("fft counter value not rendered")
	}
	if !strings.Contains(out, `kshape_kernel_ops_total{kernel="sbd"} 42`) {
		t.Error("sbd counter value not rendered")
	}
	if !strings.Contains(out, "kshape_telemetry_enabled 1") {
		t.Error("enabled gauge not rendered")
	}
	if !strings.Contains(out, "kshape_build_info{") {
		t.Error("build info not rendered")
	}
}

func TestWritePrometheusHistogramCumulative(t *testing.T) {
	resetTelemetry(t)
	SetEnabled(true)
	ObservePhase(PhaseAssign, int64(2*time.Millisecond))
	ObservePhase(PhaseAssign, int64(40*time.Millisecond))

	var sb strings.Builder
	WritePrometheus(&sb)
	out := sb.String()

	if !strings.Contains(out, `kshape_phase_duration_seconds_count{phase="assign"} 2`) {
		t.Errorf("assign count sample missing:\n%s", out)
	}
	if !strings.Contains(out, `le="+Inf"} 2`) {
		t.Error("+Inf bucket must equal the total count")
	}
	// Cumulative buckets must be non-decreasing in le for each phase.
	var prevCum int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `kshape_phase_duration_seconds_bucket{phase="assign"`) {
			continue
		}
		fields := strings.Fields(line)
		cum, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if cum < prevCum {
			t.Fatalf("cumulative bucket decreased: %q", line)
		}
		prevCum = cum
	}
	if prevCum != 2 {
		t.Errorf("last cumulative bucket = %d, want 2", prevCum)
	}
	// The sum is in seconds.
	if !strings.Contains(out, `kshape_phase_duration_seconds_sum{phase="assign"} 0.042`) {
		t.Errorf("sum not rendered in seconds:\n%s", out)
	}
}

func TestTelemetryServerEndpoints(t *testing.T) {
	resetTelemetry(t)
	SetEnabled(true)
	Inc(CounterFFT)
	SetGauge(GaugeCurrentIteration, 7)
	SetClusterSizes([]int{10, 20})

	srv, err := ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		`kshape_kernel_ops_total{kernel="fft"} 1`,
		"kshape_current_iteration 7",
		`kshape_cluster_size{cluster="1"} 20`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	var health struct {
		Status           string  `json:"status"`
		UptimeSeconds    float64 `json:"uptime_seconds"`
		TelemetryEnabled bool    `json:"telemetry_enabled"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v (%q)", err, body)
	}
	if health.Status != "ok" || !health.TelemetryEnabled {
		t.Errorf("/healthz = %+v", health)
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	for _, key := range []string{"kshape.counters", "kshape.gauges", "kshape.phases"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}

	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
}

func TestGaugeLifecycle(t *testing.T) {
	resetTelemetry(t)
	SetEnabled(true)
	SetGauge(GaugeActiveWorkers, 3)
	AddGauge(GaugeActiveWorkers, 2)
	AddGauge(GaugeActiveWorkers, -5)
	if v := ReadGauge(GaugeActiveWorkers); v != 0 {
		t.Errorf("active workers = %d, want 0 after balanced add/subtract", v)
	}
	SetEnabled(false)
	SetGauge(GaugeCurrentIteration, 9)
	if v := ReadGauge(GaugeCurrentIteration); v != 0 {
		t.Errorf("SetGauge wrote %d while disabled", v)
	}
}

func TestVersionNonEmpty(t *testing.T) {
	info := BuildInfo()
	for _, key := range []string{"version", "revision", "go"} {
		if info[key] == "" {
			t.Errorf("BuildInfo missing %q", key)
		}
	}
	if Version() == "" {
		t.Error("empty Version()")
	}
}
