package obs

import "sync"

// Gauge identifies one instantaneous-value metric.
type Gauge int

// The gauges. Unlike counters they move in both directions and describe
// the current state of a run rather than accumulated work.
const (
	// GaugeActiveWorkers is the number of goroutines currently executing
	// inside the parallel substrate (internal/par).
	GaugeActiveWorkers Gauge = iota
	// GaugeCurrentIteration is the refinement iteration the most recent
	// iterative clustering run is on (1-based; sticks at the final value
	// after the run ends).
	GaugeCurrentIteration

	numGauges
)

var gaugeNames = [numGauges]string{
	"active_workers",
	"current_iteration",
}

// String returns the snake_case gauge name used in exports.
func (g Gauge) String() string {
	if g < 0 || g >= numGauges {
		return "unknown"
	}
	return gaugeNames[g]
}

var gauges [numGauges]paddedInt64

// SetGauge sets g to v when collection is enabled.
func SetGauge(g Gauge, v int64) {
	if enabled.Load() {
		gauges[g].v.Store(v)
	}
}

// AddGauge adds delta (which may be negative) to g. Unlike SetGauge it is
// not gated on Enabled: callers check Enabled once and then issue the
// add/subtract pair unconditionally, so the pair stays balanced even when
// collection is toggled between the two calls.
func AddGauge(g Gauge, delta int64) {
	gauges[g].v.Add(delta)
}

// ReadGauge returns the current value of g.
func ReadGauge(g Gauge) int64 { return gauges[g].v.Load() }

// ResetGauges zeroes every gauge and clears the last-run cluster sizes.
func ResetGauges() {
	for i := range gauges {
		gauges[i].v.Store(0)
	}
	clusterSizes.Lock()
	clusterSizes.sizes = nil
	clusterSizes.Unlock()
}

// clusterSizes holds the per-cluster occupancy of the most recently
// finished clustering run — a small labeled gauge vector, so it lives
// behind a mutex rather than per-slot atomics.
var clusterSizes struct {
	sync.Mutex
	sizes []int64
}

// SetClusterSizes publishes the cluster occupancy of the run that just
// finished, when collection is enabled.
func SetClusterSizes(sizes []int) {
	if !enabled.Load() {
		return
	}
	out := make([]int64, len(sizes))
	for i, s := range sizes {
		out[i] = int64(s)
	}
	clusterSizes.Lock()
	clusterSizes.sizes = out
	clusterSizes.Unlock()
}

// LastClusterSizes returns the most recently published cluster occupancy
// (nil if no run has published one).
func LastClusterSizes() []int64 {
	clusterSizes.Lock()
	defer clusterSizes.Unlock()
	if clusterSizes.sizes == nil {
		return nil
	}
	out := make([]int64, len(clusterSizes.sizes))
	copy(out, clusterSizes.sizes)
	return out
}

// Gauges returns every scalar gauge by name.
func Gauges() map[string]int64 {
	out := make(map[string]int64, numGauges)
	for g := Gauge(0); g < numGauges; g++ {
		out[g.String()] = ReadGauge(g)
	}
	return out
}
