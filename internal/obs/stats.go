package obs

// IterationStats describes one refinement iteration of the Lloyd-style
// engine: the objective value, how many series changed cluster, where the
// wall time went, and the resulting cluster occupancy. The engine invokes
// the OnIteration callback with one of these per iteration, and RunTrace
// accumulates the full trajectory.
type IterationStats struct {
	// Iteration is 1-based, matching Result.Iterations at termination.
	Iteration int `json:"iteration"`
	// Inertia is the within-cluster sum of squared assignment distances
	// after this iteration's assignment step (Equation 1).
	Inertia float64 `json:"inertia"`
	// LabelChurn is the number of series whose cluster changed relative to
	// the previous iteration; 0 means the fixed point was reached.
	LabelChurn int `json:"label_churn"`
	// ClusterSizes is the occupancy of each cluster after assignment and
	// re-seeding.
	ClusterSizes []int `json:"cluster_sizes"`
	// RefineNS and AssignNS split the iteration's wall time between the
	// centroid-refinement and assignment phases (monotonic clock).
	RefineNS int64 `json:"refine_ns"`
	AssignNS int64 `json:"assign_ns"`
	// Reseeds is the number of empty clusters re-seeded this iteration.
	Reseeds int `json:"reseeds"`
	// CentroidDrift is the SBD between each cluster's centroid before and
	// after this iteration's refinement step — the per-cluster movement in
	// shape space. A freshly (re)seeded or first-iteration centroid drifts
	// from the zero series, which SBD maps to 1. Empty when the engine ran
	// without an observer that requested it.
	CentroidDrift []float64 `json:"centroid_drift,omitempty"`
	// InertiaDelta is this iteration's inertia minus the previous
	// iteration's (0 on the first iteration): negative while the objective
	// improves, 0 at the fixed point.
	InertiaDelta float64 `json:"inertia_delta"`
	// SilhouetteSample is a simplified (centroid-based) silhouette score
	// over a fixed, seeded sample of series: a is the distance to the own
	// centroid, b the minimum distance to any other centroid, and the score
	// averages (b-a)/max(a,b). It reuses distances the assignment step
	// already computed, so it is deterministic and costs no extra kernel
	// evaluations. 0 when k < 2 or no observer requested it.
	SilhouetteSample float64 `json:"silhouette_sample"`
}

// DriftMax returns the largest per-cluster centroid drift of the
// iteration, or 0 when drift was not observed.
func (s IterationStats) DriftMax() float64 {
	max := 0.0
	for _, d := range s.CentroidDrift {
		if d > max {
			max = d
		}
	}
	return max
}

// RunTrace summarizes one clustering run: the per-iteration trajectory plus
// the kernel counters and wall time accrued over the run.
type RunTrace struct {
	// Method is the algorithm name ("k-Shape", "k-AVG+ED", ...).
	Method string `json:"method"`
	// Iterations is the per-iteration trajectory, empty for methods
	// without a refinement loop (hierarchical, PAM, spectral).
	Iterations []IterationStats `json:"iterations,omitempty"`
	// Counters is the delta of the global kernel counters over the run;
	// all-zero unless counting was enabled (see SetEnabled).
	Counters Counters `json:"counters"`
	// TotalNS is the run's wall time on the monotonic clock.
	TotalNS int64 `json:"total_ns"`
	// Converged mirrors Result.Converged.
	Converged bool `json:"converged"`
}
