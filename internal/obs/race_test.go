package obs_test

import (
	"sync"
	"testing"

	"kshape/internal/obs"
	"kshape/internal/par"
)

// TestCountersExactUnderParSubstrate drives the counters through the same
// par primitives the kernels use, with concurrent ReadCounters snapshots in
// flight — the exact interleaving a parallel clustering run produces. Run
// under -race this doubles as the data-race check for the obs/par pair;
// either way the final totals must be exact, not approximate.
func TestCountersExactUnderParSubstrate(t *testing.T) {
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	before := obs.ReadCounters()

	const n = 20000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					// Snapshots taken mid-run must never panic or tear; the
					// values are monotone but otherwise unconstrained here.
					_ = obs.ReadCounters().Sub(before)
				}
			}
		}()
	}

	par.ForChunks(8, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			obs.Inc(obs.CounterSBD)
			obs.Add(obs.CounterFFT, 2)
		}
	})
	par.For(8, n, func(i int) {
		obs.Inc(obs.CounterED)
	})
	close(stop)
	readers.Wait()

	got := obs.ReadCounters().Sub(before)
	if got.SBD != n {
		t.Errorf("SBD = %d, want %d", got.SBD, n)
	}
	if got.FFT != 2*n {
		t.Errorf("FFT = %d, want %d", got.FFT, 2*n)
	}
	if got.ED != n {
		t.Errorf("ED = %d, want %d", got.ED, n)
	}
}
