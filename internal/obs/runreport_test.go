package obs_test

// External-package tests for the run report: Validate invariants on real
// recorder output, and a golden snapshot of the JSON encoding (registered
// under the shared golden harness) built from a fixed literal so the
// snapshot is deterministic.

import (
	"strings"
	"testing"

	"kshape/internal/obs"
	"kshape/internal/testkit"
)

// buildReport exercises a real recorder end to end and returns its report.
func buildReport(t *testing.T) obs.RunReport {
	t.Helper()
	r := obs.NewRecorder(256)
	prev := obs.SetRecorder(r)
	defer obs.SetRecorder(prev)
	stop := r.StartSampler(0)
	r.RecordMark("method:test")
	r.RecordPhaseSpan(obs.PhaseAssign, 1000)
	r.RecordPhaseSpan(obs.PhaseRefine, 2000)
	r.RecordIteration(1)
	r.RecordChunk(0, 0, 8, 10, 500)
	r.RecordChunk(1, 8, 16, 12, 600)
	r.AddWorkerSpan(0, 1, 8, 500, 40, 540)
	r.AddWorkerSpan(1, 1, 8, 600, 20, 620)
	stop()
	return r.Report("obs_test", "runid01", []string{"-fake"}, obs.Counters{})
}

func TestReportValidatesOnRealRecorder(t *testing.T) {
	rep := buildReport(t)
	if err := rep.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	if len(rep.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(rep.Workers))
	}
	for _, w := range rep.Workers {
		if w.BusyNS+w.WaitNS != w.WallNS {
			t.Errorf("worker %d: busy %d + wait %d != wall %d", w.Worker, w.BusyNS, w.WaitNS, w.WallNS)
		}
	}
	if rep.Pool == nil {
		t.Fatal("pool stats missing with two attributed workers")
	}
	if rep.Pool.Workers != 2 {
		t.Errorf("pool workers = %d, want 2", rep.Pool.Workers)
	}
	if len(rep.RuntimeSamples) < 2 {
		t.Errorf("runtime samples = %d, want >= 2", len(rep.RuntimeSamples))
	}
	if len(rep.Events) < 7 {
		t.Errorf("events = %d, want the 7 recorded", len(rep.Events))
	}
}

func TestReportValidateCatchesCorruption(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*obs.RunReport)
		want string
	}{
		{"bad schema", func(r *obs.RunReport) { r.Schema = "nope" }, "schema"},
		{"missing tool", func(r *obs.RunReport) { r.Tool = "" }, "tool"},
		{"missing build key", func(r *obs.RunReport) { delete(r.Build, "revision") }, "revision"},
		{"phase count", func(r *obs.RunReport) { r.Phases = r.Phases[:2] }, "phase summaries"},
		{"phase name", func(r *obs.RunReport) { r.Phases[0].Name = "bogus" }, "named"},
		{"worker identity", func(r *obs.RunReport) { r.Workers[0].WaitNS += 7 }, "!= wall"},
		{"sample order", func(r *obs.RunReport) {
			r.RuntimeSamples[0].AtNS = r.RuntimeSamples[len(r.RuntimeSamples)-1].AtNS + 1
		}, "backward"},
		{"capacity", func(r *obs.RunReport) { r.Recorder.EventCapacity = 0 }, "capacity"},
	}
	for _, tc := range mutations {
		rep := buildReport(t)
		tc.mut(&rep)
		err := rep.Validate()
		if err == nil {
			t.Errorf("%s: Validate() passed corrupted report", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// fixedReport is a fully deterministic report literal for the golden
// snapshot: every field that would vary run to run (clocks, build info,
// runtime stats) is pinned.
func fixedReport() obs.RunReport {
	return obs.RunReport{
		Schema: obs.RunReportSchema,
		Tool:   "kshape",
		Args:   []string{"-k", "3", "data.tsv"},
		RunID:  "0123abcd",
		Build: map[string]string{
			"version": "v1.0.0", "revision": "deadbeefcafe", "modified": "false",
			"go": "go1.24.0", "time": "2026-01-01T00:00:00Z",
		},
		WallNS: 5_000_000,
		Phases: []obs.PhaseStats{
			{Name: "pairwise_matrix"},
			{Name: "assign", Count: 2, SumNS: 2000, P50NS: 1000, P95NS: 1900, P99NS: 1980},
			{Name: "refine", Count: 2, SumNS: 4000, P50NS: 2000, P95NS: 3800, P99NS: 3960},
			{Name: "iteration", Count: 2, SumNS: 6000, P50NS: 3000, P95NS: 5700, P99NS: 5940},
			{Name: "shape_extract", Count: 6, SumNS: 1200, P50NS: 200, P95NS: 380, P99NS: 396},
		},
		Workers: []obs.WorkerStats{
			{Worker: 0, Chunks: 4, Items: 32, BusyNS: 2200, WaitNS: 100, WallNS: 2300},
			{Worker: 1, Chunks: 4, Items: 32, BusyNS: 2000, WaitNS: 300, WallNS: 2300},
		},
		Pool: &obs.PoolStats{
			Workers: 2, ChunksNS: 4200, WaitNS: 400, WallNS: 4600,
			Efficiency: 0.9130434782608695, Imbalance: 1.1,
		},
		RuntimeSamples: []obs.RuntimeSample{
			{AtNS: 0, HeapInuseBytes: 1 << 20, HeapAllocBytes: 1 << 19, TotalAllocBytes: 1 << 21, Mallocs: 1000, Goroutines: 4},
			{AtNS: 5_000_000, HeapInuseBytes: 1 << 21, HeapAllocBytes: 1 << 20, TotalAllocBytes: 1 << 22, Mallocs: 2000, GCPauseTotalNS: 50_000, NumGC: 1, Goroutines: 6},
		},
		Events: []obs.ReportEvent{
			{AtNS: 0, Kind: "mark", Worker: -1, Label: "method:k-Shape"},
			{AtNS: 10, Kind: "phase_enter", Phase: "assign", Worker: -1},
			{AtNS: 1010, DurNS: 1000, Kind: "phase_exit", Phase: "assign", Worker: -1},
			{AtNS: 20, DurNS: 490, Kind: "chunk", Lo: 0, Hi: 16},
			{AtNS: 25, DurNS: 480, Kind: "chunk", Worker: 1, Lo: 16, Hi: 32},
			{AtNS: 1020, Kind: "iteration", Worker: -1, Iter: 1},
		},
		Recorder: obs.RecorderStats{
			EventCapacity: 8192, EventsRecorded: 6, Samples: 2, SampleIntervalMS: 20,
		},
	}
}

// TestRunReportGoldenJSON pins the report's JSON encoding byte-for-byte:
// any field rename, reorder, or format change in the kshape.runreport/v1
// schema must show up as a reviewed golden diff.
func TestRunReportGoldenJSON(t *testing.T) {
	rep := fixedReport()
	if err := rep.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	var b strings.Builder
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	testkit.Golden(t, "runreport_v1", b.String())
}
