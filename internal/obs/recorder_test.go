package obs

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderRingKeepsMostRecent(t *testing.T) {
	r := NewRecorder(4) // rounds to 4 slots
	for i := 1; i <= 6; i++ {
		r.RecordIteration(i)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		want := int32(i + 3) // iterations 3..6 survive
		if ev.Kind != EventIteration || ev.Iter != want {
			t.Errorf("event %d = kind %v iter %d, want iteration %d", i, ev.Kind, ev.Iter, want)
		}
	}
	if got := r.Evicted(); got != 2 {
		t.Errorf("Evicted() = %d, want 2", got)
	}
}

func TestRecorderEventsBelowCapacity(t *testing.T) {
	r := NewRecorder(8)
	r.RecordMark("a")
	r.RecordMark("b")
	evs := r.Events()
	if len(evs) != 2 || evs[0].Label != "a" || evs[1].Label != "b" {
		t.Fatalf("Events() = %+v, want marks a, b in order", evs)
	}
	if r.Evicted() != 0 {
		t.Errorf("Evicted() = %d, want 0", r.Evicted())
	}
}

func TestRecorderCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultEventCapacity}, {-1, DefaultEventCapacity},
		{1, 1}, {3, 4}, {4, 4}, {1000, 1024},
	} {
		r := NewRecorder(tc.in)
		if len(r.slots) != tc.want {
			t.Errorf("NewRecorder(%d) capacity = %d, want %d", tc.in, len(r.slots), tc.want)
		}
	}
}

func TestRecordPhaseSpanEmitsEnterExitPair(t *testing.T) {
	r := NewRecorder(16)
	r.RecordPhaseSpan(PhaseAssign, 1000)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want enter+exit", len(evs))
	}
	enter, exit := evs[0], evs[1]
	if enter.Kind != EventPhaseEnter || exit.Kind != EventPhaseExit {
		t.Fatalf("kinds = %v, %v", enter.Kind, exit.Kind)
	}
	if enter.Phase != PhaseAssign || exit.Phase != PhaseAssign {
		t.Errorf("phases = %v, %v, want assign", enter.Phase, exit.Phase)
	}
	if exit.AtNS-enter.AtNS != 1000 || exit.DurNS != 1000 {
		t.Errorf("span [%d, %d] dur %d, want a 1000ns span", enter.AtNS, exit.AtNS, exit.DurNS)
	}
}

func TestRecorderConcurrentWritersDontRace(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.RecordChunk(worker, i, i+1, int64(i), 1)
				r.AddWorkerSpan(worker, 1, 1, 1, 0, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := r.next.Load(); got != 8*500 {
		t.Fatalf("recorded %d events, want %d", got, 8*500)
	}
	var chunks int64
	for w := 0; w < 8; w++ {
		chunks += r.workers[w].chunks.Load()
	}
	if chunks != 8*500 {
		t.Fatalf("worker table counted %d chunks, want %d", chunks, 8*500)
	}
}

func TestWorkerClampFoldsOutOfRangeIDs(t *testing.T) {
	r := NewRecorder(16)
	r.AddWorkerSpan(-5, 1, 1, 1, 0, 1)
	r.AddWorkerSpan(maxRecorderWorkers+10, 1, 1, 1, 0, 1)
	if got := r.workers[0].chunks.Load(); got != 1 {
		t.Errorf("negative worker not folded to 0 (chunks = %d)", got)
	}
	if got := r.workers[maxRecorderWorkers-1].chunks.Load(); got != 1 {
		t.Errorf("oversized worker not folded to last slot (chunks = %d)", got)
	}
	if got := r.overflow.Load(); got != 2 {
		t.Errorf("overflow = %d, want 2", got)
	}
}

func TestSamplerTakesStartAndStopSamples(t *testing.T) {
	r := NewRecorder(16)
	stop := r.StartSampler(time.Hour) // interval never fires in-test
	stop()
	samples, dropped := r.Samples()
	if len(samples) < 2 {
		t.Fatalf("got %d samples, want >= 2 (start + stop)", len(samples))
	}
	if dropped != 0 {
		t.Errorf("dropped = %d, want 0", dropped)
	}
	for i, s := range samples {
		if s.Goroutines < 1 {
			t.Errorf("sample %d has %d goroutines", i, s.Goroutines)
		}
		if i > 0 && s.AtNS < samples[i-1].AtNS {
			t.Errorf("sample %d timestamp went backward", i)
		}
	}
}

func TestSamplerTicks(t *testing.T) {
	r := NewRecorder(16)
	stop := r.StartSampler(time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	stop()
	samples, _ := r.Samples()
	if len(samples) < 5 {
		t.Fatalf("got %d samples after 25ms at 1ms interval, want >= 5", len(samples))
	}
}

func TestSetRecorderInstallsAndRestores(t *testing.T) {
	if ActiveRecorder() != nil {
		t.Fatal("recorder active at test start")
	}
	r := NewRecorder(16)
	prev := SetRecorder(r)
	if prev != nil {
		t.Errorf("previous recorder = %v, want nil", prev)
	}
	if ActiveRecorder() != r {
		t.Error("ActiveRecorder() != installed recorder")
	}
	RecordMark("via package helper")
	RecordIteration(1)
	RecordPhaseSpan(PhaseRefine, 10)
	if SetRecorder(nil) != r {
		t.Error("SetRecorder(nil) did not return the installed recorder")
	}
	if got := len(r.Events()); got != 4 {
		t.Errorf("package-level helpers recorded %d events, want 4", got)
	}
	// With no recorder installed the helpers must be no-ops, not panics.
	RecordMark("dropped")
	RecordIteration(2)
	RecordPhaseSpan(PhaseAssign, 10)
	if got := len(r.Events()); got != 4 {
		t.Errorf("helpers wrote to an uninstalled recorder (%d events)", got)
	}
}

func TestStartPhaseFeedsRecorderWithoutCounters(t *testing.T) {
	if Enabled() {
		t.Fatal("collection enabled at test start")
	}
	r := NewRecorder(16)
	defer SetRecorder(SetRecorder(r))
	stop := StartPhase(PhasePairwiseMatrix)
	stop()
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("StartPhase with recorder but disabled counters recorded %d events, want 2", len(evs))
	}
	if evs[0].Phase != PhasePairwiseMatrix {
		t.Errorf("phase = %v, want pairwise_matrix", evs[0].Phase)
	}
}
