package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// RunRecord is one measured unit of experiment work: a clustering run or a
// 1-NN classification pass of one method over one dataset.
type RunRecord struct {
	// Method is the algorithm or distance-measure name.
	Method string `json:"method"`
	// Dataset names the archive dataset the run executed on.
	Dataset string `json:"dataset,omitempty"`
	// Run is the restart index for randomized methods (0-based).
	Run int `json:"run"`
	// Seconds is the run's wall time.
	Seconds float64 `json:"seconds"`
	// Score is the quality metric of the run and ScoreKind its
	// interpretation: "rand_index" for clustering, "accuracy_1nn" for
	// distance evaluation.
	Score     float64 `json:"score"`
	ScoreKind string  `json:"score_kind"`
	// Iterations and Converged describe the refinement loop (clustering
	// runs only).
	Iterations int  `json:"iterations,omitempty"`
	Converged  bool `json:"converged,omitempty"`
	// Counters is the kernel-counter delta accrued by this run.
	Counters Counters `json:"counters"`
	// Trajectory is the per-iteration convergence data (clustering runs
	// with an iterative engine only).
	Trajectory []IterationStats `json:"trajectory,omitempty"`
}

// Collector accumulates RunRecords from concurrent experiment code and
// renders them, together with phase spans and the global counter totals,
// as the `kbench -metrics` JSON report.
type Collector struct {
	mu   sync.Mutex
	runs []RunRecord
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record appends one run record; safe for concurrent use.
func (c *Collector) Record(r RunRecord) {
	c.mu.Lock()
	c.runs = append(c.runs, r)
	c.mu.Unlock()
}

// Runs returns a copy of the records collected so far.
func (c *Collector) Runs() []RunRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RunRecord, len(c.runs))
	copy(out, c.runs)
	return out
}

// Report is the top-level schema of the `kbench -metrics` JSON dump.
type Report struct {
	// Tool and Args identify the invocation that produced the report.
	Tool string   `json:"tool"`
	Args []string `json:"args,omitempty"`
	// Experiments lists the experiment names that ran.
	Experiments []string `json:"experiments,omitempty"`
	// Counters holds the process-wide kernel-counter totals accrued while
	// the experiments ran.
	Counters Counters `json:"counters"`
	// Phases is the hierarchical span tree of experiment phase timings.
	Phases *Span `json:"phases,omitempty"`
	// Runs holds every per-(method, dataset, restart) record.
	Runs []RunRecord `json:"runs"`
}

// BuildReport assembles a Report from the collected runs, a counter delta,
// and an optional finished phase trace.
func (c *Collector) BuildReport(tool string, args, experiments []string, counters Counters, phases *Span) Report {
	return Report{
		Tool:        tool,
		Args:        args,
		Experiments: experiments,
		Counters:    counters,
		Phases:      phases,
		Runs:        c.Runs(),
	}
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
