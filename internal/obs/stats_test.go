package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestIterationStatsJSONRoundTrip(t *testing.T) {
	in := IterationStats{
		Iteration: 4, Inertia: 17.375, LabelChurn: 6,
		ClusterSizes: []int{12, 9, 3}, RefineNS: 1500, AssignNS: 800, Reseeds: 1,
		CentroidDrift: []float64{0.25, 0.5, 1}, InertiaDelta: -2.625,
		SilhouetteSample: 0.4375,
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"iteration":4`, `"centroid_drift":[0.25,0.5,1]`,
		`"inertia_delta":-2.625`, `"silhouette_sample":0.4375`,
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("marshal missing %s: %s", key, raw)
		}
	}
	var out IterationStats
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestIterationStatsDriftOmittedWhenUnobserved(t *testing.T) {
	raw, err := json.Marshal(IterationStats{Iteration: 1, Inertia: 2})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "centroid_drift") {
		t.Errorf("empty drift serialized: %s", raw)
	}
}

func TestDriftMax(t *testing.T) {
	if got := (IterationStats{}).DriftMax(); got != 0 {
		t.Errorf("no drift: DriftMax = %v", got)
	}
	st := IterationStats{CentroidDrift: []float64{0.1, 0.9, 0.4}}
	if got := st.DriftMax(); got != 0.9 {
		t.Errorf("DriftMax = %v, want 0.9", got)
	}
}

func TestRunTraceJSONRoundTrip(t *testing.T) {
	in := RunTrace{
		Method: "k-Shape",
		Iterations: []IterationStats{
			{Iteration: 1, Inertia: 20, LabelChurn: 18, ClusterSizes: []int{10, 10},
				CentroidDrift: []float64{1, 1}, SilhouetteSample: 0.25},
			{Iteration: 2, Inertia: 15, LabelChurn: 0, ClusterSizes: []int{11, 9},
				CentroidDrift: []float64{0.125, 0.0625}, InertiaDelta: -5,
				SilhouetteSample: 0.5},
		},
		Counters:  Counters{FFT: 42, SBD: 7},
		TotalNS:   123456,
		Converged: true,
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out RunTrace
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}
