// Package obs is the instrumentation layer of the repository: cheap atomic
// kernel counters (FFT transforms, distance evaluations, eigensolver
// iterations, empty-cluster reseeds), monotonic-clock span timers forming a
// hierarchical trace (run → iteration → phase), per-iteration refinement
// statistics, and a collector that aggregates per-method/per-dataset run
// records into the JSON report emitted by `kbench -metrics`.
//
// The package is standard-library only and designed so that the disabled
// path costs a single atomic load per instrumented call site: counters are
// only bumped after Enabled() reports true, and hot loops accumulate
// locally and publish once. Counters are process-global — scope a
// measurement by snapshotting with ReadCounters before and after the work
// and subtracting (see Counters.Sub).
package obs

import "sync/atomic"

// Counter identifies one kernel counter.
type Counter int

// The kernel counters. Each names the operation whose invocation count the
// paper's complexity analysis (§3.3) reasons about: FFT transforms dominate
// SBD, distance evaluations dominate the assignment step, eigensolver
// iterations dominate shape extraction, and reseeds flag degenerate
// initializations.
const (
	// CounterFFT counts forward FFT transforms (fft.Forward, including
	// those inside ForwardReal).
	CounterFFT Counter = iota
	// CounterIFFT counts inverse FFT transforms (fft.Inverse).
	CounterIFFT
	// CounterSBD counts shape-based distance evaluations, across the
	// pairwise, batched, and naive implementations.
	CounterSBD
	// CounterED counts Euclidean distance evaluations (ED and SquaredED).
	CounterED
	// CounterDTW counts DTW and constrained-DTW evaluations.
	CounterDTW
	// CounterEigenIterations counts power-method iterations inside
	// linalg.DominantEigen.
	CounterEigenIterations
	// CounterEigenDecompositions counts full tridiagonal
	// eigendecompositions (linalg.EigenDecompose).
	CounterEigenDecompositions
	// CounterShapeExtractions counts shape-extraction centroid
	// computations (Algorithm 2).
	CounterShapeExtractions
	// CounterReseeds counts empty-cluster re-seeding events in the
	// refinement engine.
	CounterReseeds

	numCounters
)

// String returns the snake_case name used in the JSON report.
func (c Counter) String() string {
	if c < 0 || c >= numCounters {
		return "unknown"
	}
	return counterNames[c]
}

var counterNames = [numCounters]string{
	"fft",
	"ifft",
	"sbd",
	"ed",
	"dtw",
	"eigen_iterations",
	"eigen_decompositions",
	"shape_extractions",
	"reseeds",
}

// paddedInt64 keeps each counter on its own cache line so that concurrent
// workers bumping different counters do not false-share.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

var (
	enabled  atomic.Bool
	counters [numCounters]paddedInt64
)

// SetEnabled turns counter accumulation on or off and returns the previous
// state. Counting is off by default so that instrumented kernels cost one
// atomic load when nobody is measuring.
func SetEnabled(on bool) (previous bool) {
	return enabled.Swap(on)
}

// Enabled reports whether counters are being accumulated.
func Enabled() bool { return enabled.Load() }

// Inc adds 1 to c if counting is enabled.
func Inc(c Counter) {
	if enabled.Load() {
		counters[c].v.Add(1)
	}
}

// Add adds n to c if counting is enabled. Hot loops should count locally
// and publish once through Add.
func Add(c Counter, n int64) {
	if n != 0 && enabled.Load() {
		counters[c].v.Add(n)
	}
}

// ResetCounters zeroes every counter.
func ResetCounters() {
	for i := range counters {
		counters[i].v.Store(0)
	}
}

// Counters is a point-in-time snapshot of every kernel counter, with JSON
// names matching Counter.String.
type Counters struct {
	FFT                 int64 `json:"fft"`
	IFFT                int64 `json:"ifft"`
	SBD                 int64 `json:"sbd"`
	ED                  int64 `json:"ed"`
	DTW                 int64 `json:"dtw"`
	EigenIterations     int64 `json:"eigen_iterations"`
	EigenDecompositions int64 `json:"eigen_decompositions"`
	ShapeExtractions    int64 `json:"shape_extractions"`
	Reseeds             int64 `json:"reseeds"`
}

// ReadCounters snapshots the current counter values.
func ReadCounters() Counters {
	return Counters{
		FFT:                 counters[CounterFFT].v.Load(),
		IFFT:                counters[CounterIFFT].v.Load(),
		SBD:                 counters[CounterSBD].v.Load(),
		ED:                  counters[CounterED].v.Load(),
		DTW:                 counters[CounterDTW].v.Load(),
		EigenIterations:     counters[CounterEigenIterations].v.Load(),
		EigenDecompositions: counters[CounterEigenDecompositions].v.Load(),
		ShapeExtractions:    counters[CounterShapeExtractions].v.Load(),
		Reseeds:             counters[CounterReseeds].v.Load(),
	}
}

// Sub returns the component-wise difference c - prev: the counts accrued
// between two snapshots.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		FFT:                 c.FFT - prev.FFT,
		IFFT:                c.IFFT - prev.IFFT,
		SBD:                 c.SBD - prev.SBD,
		ED:                  c.ED - prev.ED,
		DTW:                 c.DTW - prev.DTW,
		EigenIterations:     c.EigenIterations - prev.EigenIterations,
		EigenDecompositions: c.EigenDecompositions - prev.EigenDecompositions,
		ShapeExtractions:    c.ShapeExtractions - prev.ShapeExtractions,
		Reseeds:             c.Reseeds - prev.Reseeds,
	}
}

// Each calls fn once per counter in declaration order, with the counter's
// snake_case name — the iteration primitive behind the Prometheus, expvar,
// slog, and bench-JSON exports.
func (c Counters) Each(fn func(name string, value int64)) {
	fn("fft", c.FFT)
	fn("ifft", c.IFFT)
	fn("sbd", c.SBD)
	fn("ed", c.ED)
	fn("dtw", c.DTW)
	fn("eigen_iterations", c.EigenIterations)
	fn("eigen_decompositions", c.EigenDecompositions)
	fn("shape_extractions", c.ShapeExtractions)
	fn("reseeds", c.Reseeds)
}

// Total returns the sum of every counter — a quick "did anything get
// measured" check.
func (c Counters) Total() int64 {
	return c.FFT + c.IFFT + c.SBD + c.ED + c.DTW +
		c.EigenIterations + c.EigenDecompositions + c.ShapeExtractions + c.Reseeds
}
