package obs

import (
	"sync"
	"time"
)

// Trace is a hierarchy of timed spans sharing one monotonic clock origin.
// A trace is safe for concurrent use: spans may be started and ended from
// multiple goroutines (each span's own Start/End calls must not race with
// themselves, which the natural begin/end pairing guarantees).
type Trace struct {
	mu   sync.Mutex
	t0   time.Time
	root *Span
}

// NewTrace starts a trace whose root span is named name. The clock origin
// is the moment of this call; all span offsets are relative to it and come
// from the monotonic clock (immune to wall-clock steps).
func NewTrace(name string) *Trace {
	t := &Trace{t0: time.Now()}
	t.root = &Span{Name: name, trace: t}
	return t
}

// Root returns the root span (already started, never ended by End on the
// trace's behalf — call Finish to close it).
func (t *Trace) Root() *Span { return t.root }

// Finish ends the root span and returns it.
func (t *Trace) Finish() *Span {
	t.root.End()
	return t.root
}

func (t *Trace) now() int64 { return int64(time.Since(t.t0)) }

// Span is one named timed region of a Trace. Offsets and durations are
// nanoseconds on the trace's monotonic clock; the exported fields are what
// the JSON report serializes.
type Span struct {
	Name       string  `json:"name"`
	StartNS    int64   `json:"start_ns"`
	DurationNS int64   `json:"duration_ns"`
	Children   []*Span `json:"children,omitempty"`

	trace *Trace
}

// Child starts a sub-span of s named name.
func (s *Span) Child(name string) *Span {
	c := &Span{Name: name, trace: s.trace}
	if s.trace != nil {
		c.StartNS = s.trace.now()
		s.trace.mu.Lock()
		s.Children = append(s.Children, c)
		s.trace.mu.Unlock()
	} else {
		s.Children = append(s.Children, c)
	}
	return c
}

// End closes the span, fixing its duration. Ending twice keeps the first
// duration.
func (s *Span) End() {
	if s.trace == nil || s.DurationNS != 0 {
		return
	}
	s.DurationNS = s.trace.now() - s.StartNS
}

// Find returns the first descendant span (depth-first, including s itself)
// with the given name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}
