package obs

import "math"

// Convergence diagnostics derived from the label-churn trajectory. The
// Lloyd-style engines converge when churn hits zero; the shape of the
// churn sequence before that tells an operator whether a run is healthy
// (geometric decay), stalled (churn flat and nonzero — the assignment
// keeps shuffling the same series), or oscillating (a period-2 cycle
// between two label configurations, the classic Lloyd limit cycle).
// These are heuristics for dashboards and progress lines, not
// termination criteria: the engines never read them.

// Diagnosis is the convergence health summary Diagnose derives from a
// churn history.
type Diagnosis struct {
	// Stalled reports that churn has been flat and nonzero for the last
	// stallWindow iterations: the run is moving the same number of series
	// every pass without approaching the fixed point.
	Stalled bool `json:"stalled"`
	// Oscillating reports a period-2 churn pattern (a,b,a,b,...) with
	// a != b over the last oscillationWindow iterations — the signature of
	// a label limit cycle.
	Oscillating bool `json:"oscillating"`
	// ETAIterations estimates how many more iterations until churn
	// reaches zero, from the geometric decay ratio of the recent churn
	// history. 0 means converged, -1 means no estimate (too little
	// history, or churn is not decaying).
	ETAIterations int `json:"eta_iterations"`
}

// Diagnosis window sizes. Stalls need a few flat iterations to be
// distinguishable from a plateau mid-decay; oscillations need three full
// periods before the pattern is trustworthy.
const (
	stallWindow       = 4
	oscillationWindow = 6
	// etaMaxHorizon caps the ETA estimate: beyond this the decay ratio is
	// so close to 1 that the extrapolation is meaningless.
	etaMaxHorizon = 1000
)

// Diagnose inspects a churn history (churn[i] is iteration i+1's label
// churn, oldest first) and returns the stall/oscillation flags plus an
// ETA estimate. It is pure and deterministic.
func Diagnose(churn []int) Diagnosis {
	return Diagnosis{
		Stalled:       stalled(churn),
		Oscillating:   oscillating(churn),
		ETAIterations: etaIterations(churn),
	}
}

// stalled reports whether the last stallWindow churn values are equal and
// nonzero.
func stalled(churn []int) bool {
	if len(churn) < stallWindow {
		return false
	}
	w := churn[len(churn)-stallWindow:]
	if w[0] == 0 {
		return false
	}
	for _, c := range w[1:] {
		if c != w[0] {
			return false
		}
	}
	return true
}

// oscillating reports a strict period-2 pattern over the last
// oscillationWindow values: churn alternates between two distinct
// nonzero values. A flat sequence is a stall, not an oscillation.
func oscillating(churn []int) bool {
	if len(churn) < oscillationWindow {
		return false
	}
	w := churn[len(churn)-oscillationWindow:]
	a, b := w[0], w[1]
	if a == b || a == 0 || b == 0 {
		return false
	}
	for i, c := range w {
		want := a
		if i%2 == 1 {
			want = b
		}
		if c != want {
			return false
		}
	}
	return true
}

// etaIterations extrapolates the churn decay. The churn of a healthy
// Lloyd run decays roughly geometrically (each pass re-assigns a
// shrinking boundary set), so the estimate fits a ratio r over the
// recent window and solves c*r^t < 0.5 for t. Returns 0 when churn is
// already zero, -1 when there is no usable decay signal.
func etaIterations(churn []int) int {
	n := len(churn)
	if n == 0 {
		return -1
	}
	last := churn[n-1]
	if last == 0 {
		return 0
	}
	if n < 3 {
		return -1
	}
	// Geometric-mean decay ratio over up to the last 4 steps.
	const window = 4
	lo := n - 1 - window
	if lo < 0 {
		lo = 0
	}
	logSum, steps := 0.0, 0
	for i := lo; i < n-1; i++ {
		prev, next := churn[i], churn[i+1]
		if prev <= 0 {
			// Churn rose from zero: a reseed restarted the decay, so older
			// history does not describe the current regime.
			logSum, steps = 0, 0
			continue
		}
		logSum += math.Log(float64(next) / float64(prev))
		steps++
	}
	if steps == 0 {
		return -1
	}
	logR := logSum / float64(steps)
	if logR >= -0.01 { // r >= ~0.99: not decaying
		return -1
	}
	// Solve last * r^t = 0.5 (churn is integral, so below 0.5 means 0).
	t := math.Ceil(math.Log(0.5/float64(last)) / logR)
	if t < 1 {
		t = 1
	}
	if t > etaMaxHorizon {
		return -1
	}
	return int(t)
}
