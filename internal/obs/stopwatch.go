package obs

import "time"

// Stopwatch is the sanctioned way to measure elapsed time outside this
// package. The detrand analyzer (internal/lint) bans time.Now/Since in
// every other package so that determinism-sensitive code has exactly one
// auditable clock entry point; runtime measurement — the paper's Figure
// 12 curves, the per-iteration refine/assign latencies, CLI wall-clock
// summaries — goes through a Stopwatch instead.
//
// The zero Stopwatch is not meaningful; always start one with
// NewStopwatch.
type Stopwatch struct {
	start time.Time
}

// NewStopwatch starts timing at the moment of the call.
func NewStopwatch() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Elapsed returns the time since the stopwatch started, measured on the
// monotonic clock (immune to wall-clock steps).
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}

// ElapsedNS returns the elapsed time in nanoseconds.
func (s Stopwatch) ElapsedNS() int64 {
	return time.Since(s.start).Nanoseconds()
}

// Seconds returns the elapsed time in seconds.
func (s Stopwatch) Seconds() float64 {
	return time.Since(s.start).Seconds()
}
