package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements live progress publication: a per-run publisher
// that turns the engine's IterationStats stream into (1) an atomically
// published Progress snapshot concurrent readers scrape without locks,
// (2) a bounded iteration history the dashboard renders after the run,
// and (3) a fan-out to Server-Sent-Events subscribers. Installation
// mirrors the flight recorder: one publisher is active per process
// (SetProgressPublisher), and the engine-side hooks cost a single atomic
// pointer load when none is installed. Publication is observation only —
// it never feeds back into the clustering, so results are bit-identical
// with the publisher on or off.

// Progress phase names.
const (
	// ProgressPhaseInit is published by BeginRun, before iteration 1.
	ProgressPhaseInit = "initializing"
	// ProgressPhaseIterating is published once per completed iteration.
	ProgressPhaseIterating = "iterating"
	// ProgressPhaseDone is published by EndRun.
	ProgressPhaseDone = "done"
)

// Progress is one immutable snapshot of a clustering run's state. The
// publisher stores a fresh value per event; readers get a consistent
// view from a single atomic load (the slices are never mutated after
// publication).
type Progress struct {
	// Seq increases by one per published snapshot, so pollers can detect
	// missed updates.
	Seq int64 `json:"seq"`
	// Method is the algorithm name ("k-Shape", "k-AVG+ED", ...), empty
	// until BeginRun.
	Method string `json:"method"`
	// Phase is one of the ProgressPhase* constants.
	Phase string `json:"phase"`
	// Series and K describe the run's shape: number of time series and
	// requested clusters.
	Series int `json:"series"`
	K      int `json:"k"`
	// Iteration is the last completed iteration (0 before the first);
	// MaxIterations is the configured cap.
	Iteration     int `json:"iteration"`
	MaxIterations int `json:"max_iterations"`
	// Inertia, InertiaDelta, LabelChurn, ClusterSizes, CentroidDrift and
	// SilhouetteSample mirror the latest IterationStats.
	Inertia          float64   `json:"inertia"`
	InertiaDelta     float64   `json:"inertia_delta"`
	LabelChurn       int       `json:"label_churn"`
	ClusterSizes     []int     `json:"cluster_sizes,omitempty"`
	CentroidDrift    []float64 `json:"centroid_drift,omitempty"`
	DriftMax         float64   `json:"drift_max"`
	SilhouetteSample float64   `json:"silhouette_sample"`
	// Converged is set by EndRun.
	Converged bool `json:"converged"`
	// Stalled, Oscillating and ETAIterations are the convergence
	// diagnostics (see Diagnose); ETAIterations is -1 when unknown.
	Stalled       bool `json:"stalled"`
	Oscillating   bool `json:"oscillating"`
	ETAIterations int  `json:"eta_iterations"`
	// UpdatedNS is the publisher-clock offset (monotonic nanoseconds
	// since NewProgressPublisher) at publication time.
	UpdatedNS int64 `json:"updated_ns"`
}

// maxProgressHistory bounds the retained iteration history. Runs beyond
// the cap keep the newest entries; HistoryDropped counts the evictions.
const maxProgressHistory = 1 << 12

// ProgressPublisher converts engine iteration callbacks into scrapeable
// snapshots, a bounded history, and subscriber fan-out. All methods are
// safe for concurrent use.
type ProgressPublisher struct {
	clock Stopwatch
	snap  atomic.Pointer[Progress]
	seq   atomic.Int64

	mu      sync.Mutex
	subs    map[chan Progress]struct{}
	history []IterationStats
	dropped int64
	churn   []int
	method  string
	series  int
	k       int
	maxIter int
}

// NewProgressPublisher builds a publisher; its clock starts at the
// moment of the call. Install it with SetProgressPublisher.
func NewProgressPublisher() *ProgressPublisher {
	return &ProgressPublisher{
		clock: NewStopwatch(),
		subs:  make(map[chan Progress]struct{}),
	}
}

// activeProgress is the process-global publisher the engine-side hooks
// consult; nil means progress publication is off and each hook costs one
// atomic pointer load.
var activeProgress atomic.Pointer[ProgressPublisher]

// SetProgressPublisher installs p (nil uninstalls) and returns the
// previously active publisher.
func SetProgressPublisher(p *ProgressPublisher) (previous *ProgressPublisher) {
	return activeProgress.Swap(p)
}

// ActiveProgressPublisher returns the installed publisher, or nil.
func ActiveProgressPublisher() *ProgressPublisher { return activeProgress.Load() }

// BeginRun resets the publisher for a new run and publishes an
// initializing snapshot. A publisher is reusable across sequential runs
// (restarts, benchmark sweeps); the history always describes the latest.
func (p *ProgressPublisher) BeginRun(method string, series, k, maxIterations int) {
	p.mu.Lock()
	p.method, p.series, p.k, p.maxIter = method, series, k, maxIterations
	p.history = p.history[:0]
	p.dropped = 0
	p.churn = p.churn[:0]
	p.mu.Unlock()
	p.publish(Progress{
		Method: method, Phase: ProgressPhaseInit,
		Series: series, K: k, MaxIterations: maxIterations,
		ETAIterations: -1,
	})
}

// PublishIteration folds one completed iteration into the history and
// publishes the updated snapshot.
func (p *ProgressPublisher) PublishIteration(st IterationStats) {
	p.mu.Lock()
	if len(p.history) >= maxProgressHistory {
		copy(p.history, p.history[1:])
		p.history = p.history[:maxProgressHistory-1]
		p.dropped++
	}
	p.history = append(p.history, st)
	p.churn = append(p.churn, st.LabelChurn)
	diag := Diagnose(p.churn)
	next := Progress{
		Method: p.method, Phase: ProgressPhaseIterating,
		Series: p.series, K: p.k,
		Iteration: st.Iteration, MaxIterations: p.maxIter,
		Inertia: st.Inertia, InertiaDelta: st.InertiaDelta,
		LabelChurn:       st.LabelChurn,
		ClusterSizes:     append([]int(nil), st.ClusterSizes...),
		CentroidDrift:    append([]float64(nil), st.CentroidDrift...),
		DriftMax:         st.DriftMax(),
		SilhouetteSample: st.SilhouetteSample,
		Stalled:          diag.Stalled, Oscillating: diag.Oscillating,
		ETAIterations: diag.ETAIterations,
	}
	p.mu.Unlock()
	p.publish(next)
}

// EndRun publishes the terminal snapshot, carrying the last iteration's
// metrics forward with the done phase and the convergence flag.
func (p *ProgressPublisher) EndRun(converged bool) {
	p.mu.Lock()
	next := Progress{Method: p.method, Phase: ProgressPhaseDone, ETAIterations: -1}
	p.mu.Unlock()
	if cur := p.snap.Load(); cur != nil {
		next = *cur
		next.Phase = ProgressPhaseDone
	}
	next.Converged = converged
	if converged {
		next.ETAIterations = 0
	}
	p.publish(next)
}

// publish stamps, stores, and fans out one snapshot.
func (p *ProgressPublisher) publish(next Progress) {
	next.Seq = p.seq.Add(1)
	next.UpdatedNS = p.clock.ElapsedNS()
	p.snap.Store(&next)
	p.mu.Lock()
	// Every subscriber receives the same value and sends never block, so
	// delivery order across subscribers is unobservable.
	//lint:ignore maporder independent non-blocking sends of one value; order is unobservable
	for ch := range p.subs {
		select {
		case ch <- next:
		default: // slow subscriber: drop, never block the engine
		}
	}
	p.mu.Unlock()
}

// Snapshot returns the latest published snapshot; ok is false before the
// first publication. The call is a single atomic load plus a copy.
func (p *ProgressPublisher) Snapshot() (snap Progress, ok bool) {
	if cur := p.snap.Load(); cur != nil {
		return *cur, true
	}
	return Progress{}, false
}

// History returns a copy of the retained iteration history (oldest
// first) and how many early iterations were evicted past the cap.
func (p *ProgressPublisher) History() (stats []IterationStats, dropped int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]IterationStats, len(p.history))
	copy(out, p.history)
	return out, p.dropped
}

// Subscribe registers a snapshot channel with the given buffer (<= 0
// means 16) and returns it with its cancel function. Snapshots a full
// buffer cannot absorb are dropped — subscribers observe the freshest
// state, not a lossless log. Cancel is idempotent and closes the channel.
func (p *ProgressPublisher) Subscribe(buffer int) (<-chan Progress, func()) {
	if buffer <= 0 {
		buffer = 16
	}
	ch := make(chan Progress, buffer)
	p.mu.Lock()
	p.subs[ch] = struct{}{}
	p.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			p.mu.Lock()
			delete(p.subs, ch)
			p.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

// Package-level hooks for the engines: no-ops costing one atomic load
// when no publisher is installed.

// ProgressBeginRun forwards to the active publisher's BeginRun.
func ProgressBeginRun(method string, series, k, maxIterations int) {
	if p := activeProgress.Load(); p != nil {
		p.BeginRun(method, series, k, maxIterations)
	}
}

// ProgressPublishIteration forwards to the active publisher.
func ProgressPublishIteration(st IterationStats) {
	if p := activeProgress.Load(); p != nil {
		p.PublishIteration(st)
	}
}

// ProgressEndRun forwards to the active publisher's EndRun.
func ProgressEndRun(converged bool) {
	if p := activeProgress.Load(); p != nil {
		p.EndRun(converged)
	}
}

// DefaultProgressHeartbeat is the SSE comment-ping interval when no
// snapshot arrives; it keeps idle connections alive through proxies.
const DefaultProgressHeartbeat = 15 * time.Second

// ProgressHandler returns the /progress Server-Sent-Events handler: one
// `data:` event per published snapshot (JSON, the Progress schema) plus
// an initial event replaying the current snapshot on connect, and
// comment heartbeats while idle. The stream follows whichever publisher
// is active, so a connection opened before a run starts begins emitting
// once SetProgressPublisher installs one.
func ProgressHandler() http.Handler { return progressHandler(DefaultProgressHeartbeat) }

// progressHandler is ProgressHandler with the heartbeat interval
// exposed for tests.
func progressHandler(heartbeat time.Duration) http.Handler {
	if heartbeat <= 0 {
		heartbeat = DefaultProgressHeartbeat
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-store")
		h.Set("X-Accel-Buffering", "no")
		w.WriteHeader(http.StatusOK)

		send := func(p Progress) bool {
			data, err := json.Marshal(p)
			if err != nil {
				return false
			}
			if _, err := w.Write(append(append([]byte("data: "), data...), '\n', '\n')); err != nil {
				return false
			}
			fl.Flush()
			return true
		}
		heartbeatMsg := []byte(": heartbeat\n\n")

		// Track the active publisher across the connection: a nil channel
		// blocks forever in select, so an idle stream only wakes on the
		// heartbeat (where it re-checks for a newly installed publisher).
		var (
			pub    *ProgressPublisher
			events <-chan Progress
			cancel func()
		)
		defer func() {
			if cancel != nil {
				cancel()
			}
		}()
		resubscribe := func() bool {
			cur := ActiveProgressPublisher()
			if cur == pub {
				return true
			}
			if cancel != nil {
				cancel()
				events, cancel = nil, nil
			}
			pub = cur
			if pub == nil {
				return true
			}
			events, cancel = pub.Subscribe(0)
			if snap, ok := pub.Snapshot(); ok && !send(snap) {
				return false
			}
			return true
		}
		if !resubscribe() {
			return
		}
		ticker := time.NewTicker(heartbeat)
		defer ticker.Stop()
		for {
			select {
			case <-r.Context().Done():
				return
			case p, ok := <-events:
				if !ok { // publisher swapped out under us
					events, cancel = nil, nil
					continue
				}
				if !send(p) {
					return
				}
			case <-ticker.C:
				if !resubscribe() {
					return
				}
				if _, err := w.Write(heartbeatMsg); err != nil {
					return
				}
				fl.Flush()
			}
		}
	})
}
