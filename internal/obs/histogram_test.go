package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.SumNS != 0 {
		t.Errorf("empty snapshot: count=%d sum=%d", s.Count, s.SumNS)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("Quantile(%g) on empty histogram = %g, want 0", q, got)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(int64(5 * time.Millisecond))
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.SumNS != int64(5*time.Millisecond) {
		t.Errorf("sum = %d", s.SumNS)
	}
	// Every quantile of a single-sample histogram lands in the sample's
	// bucket, so the estimates must bracket the true value within one
	// power-of-two bucket.
	for _, q := range []float64{0.5, 0.95, 0.99} {
		est := s.Quantile(q)
		if est < float64(2500*time.Microsecond) || est > float64(10*time.Millisecond) {
			t.Errorf("Quantile(%g) = %gns, outside the sample's bucket", q, est)
		}
	}
}

func TestHistogramBelowFirstBound(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-50) // negative durations clamp to zero
	h.Observe(500) // 0.5µs, below the 1µs first bound
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0] != 3 {
		t.Errorf("first bucket = %d, want 3", s.Buckets[0])
	}
	if est := s.P99(); est > float64(time.Microsecond) {
		t.Errorf("P99 = %g, want within the first bucket", est)
	}
}

func TestHistogramAboveLastBound(t *testing.T) {
	var h Histogram
	huge := int64(2 * time.Hour) // far past the ~33s last finite bound
	h.Observe(huge)
	s := h.Snapshot()
	if s.Buckets[NumHistogramBuckets-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", s.Buckets[NumHistogramBuckets-1])
	}
	// The overflow bucket has no upper bound; the estimate reports the
	// last finite bound rather than inventing a value.
	want := float64(BucketBound(NumHistogramBuckets - 2))
	if got := s.P50(); got != want {
		t.Errorf("P50 = %g, want last finite bound %g", got, want)
	}
}

func TestHistogramBucketBoundsCoverObserved(t *testing.T) {
	// Each sample must land in the first bucket whose bound is >= sample.
	var h Histogram
	samples := []int64{
		int64(time.Microsecond) - 1,
		int64(time.Microsecond),
		int64(time.Microsecond) + 1,
		int64(30 * time.Millisecond),
		int64(time.Second),
	}
	for _, ns := range samples {
		h.Observe(ns)
	}
	s := h.Snapshot()
	var total int64
	for i, c := range s.Buckets {
		total += c
		for j := int64(0); j < c && i < NumHistogramBuckets-1; j++ {
			if b := BucketBound(i); b < 0 {
				t.Fatalf("finite bucket %d has infinite bound", i)
			}
		}
	}
	if total != int64(len(samples)) {
		t.Errorf("bucket total = %d, want %d", total, len(samples))
	}
}

// TestHistogramQuantileMonotoneUnderConcurrentRecording drives concurrent
// writers while repeatedly snapshotting, asserting that within every
// snapshot the quantile estimates are monotone (p50 <= p95 <= p99) and the
// bucket total equals the count — i.e. snapshots are internally consistent
// even while racing with writers. Run under -race this also proves the
// lock-free recording path is data-race free.
func TestHistogramQuantileMonotoneUnderConcurrentRecording(t *testing.T) {
	var h Histogram
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			ns := seed*7919 + 1
			for i := 0; i < perWriter; i++ {
				ns = (ns*6364136223846793005 + 1442695040888963407) % int64(40*time.Second)
				if ns < 0 {
					ns = -ns
				}
				h.Observe(ns)
			}
		}(int64(w))
	}
	go func() { wg.Wait(); close(stop) }()

	for {
		s := h.Snapshot()
		p50, p95, p99 := s.P50(), s.P95(), s.P99()
		if p50 > p95 || p95 > p99 {
			t.Fatalf("quantiles not monotone: p50=%g p95=%g p99=%g", p50, p95, p99)
		}
		select {
		case <-stop:
			final := h.Snapshot()
			if final.Count != writers*perWriter {
				t.Fatalf("final count = %d, want %d", final.Count, writers*perWriter)
			}
			var total int64
			for _, c := range final.Buckets {
				total += c
			}
			if total != final.Count {
				t.Fatalf("bucket total %d != count %d", total, final.Count)
			}
			return
		default:
		}
	}
}

func TestObservePhaseGatedByEnabled(t *testing.T) {
	ResetHistograms()
	defer ResetHistograms()
	prev := SetEnabled(false)
	defer SetEnabled(prev)

	ObservePhase(PhaseAssign, int64(time.Millisecond))
	StartPhase(PhaseRefine)()
	for _, s := range PhaseHistograms() {
		if s.Count != 0 {
			t.Errorf("phase %q recorded %d samples while disabled", s.Name, s.Count)
		}
	}

	SetEnabled(true)
	ObservePhase(PhaseAssign, int64(time.Millisecond))
	StartPhase(PhaseRefine)()
	byName := map[string]HistogramSnapshot{}
	for _, s := range PhaseHistograms() {
		byName[s.Name] = s
	}
	if byName[PhaseAssign.String()].Count != 1 {
		t.Errorf("assign count = %d, want 1", byName[PhaseAssign.String()].Count)
	}
	if byName[PhaseRefine.String()].Count != 1 {
		t.Errorf("refine count = %d, want 1", byName[PhaseRefine.String()].Count)
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	var h Histogram
	// 100 samples in the same bucket: quantile estimates interpolate
	// linearly within [lower, upper) of that bucket and never leave it.
	ns := int64(3 * time.Millisecond)
	for i := 0; i < 100; i++ {
		h.Observe(ns)
	}
	s := h.Snapshot()
	lower := float64(BucketBound(bucketIndex(ns) - 1))
	upper := float64(BucketBound(bucketIndex(ns)))
	for q := 0.01; q <= 1.0; q += 0.01 {
		est := s.Quantile(q)
		if est < lower-1e-6 || est > upper+1e-6 {
			t.Fatalf("Quantile(%g) = %g outside bucket [%g, %g]", q, est, lower, upper)
		}
	}
	if math.Abs(s.Quantile(1.0)-upper) > 1e-6 {
		t.Errorf("Quantile(1) = %g, want bucket upper bound %g", s.Quantile(1.0), upper)
	}
}
