package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCountersDisabledByDefault(t *testing.T) {
	if Enabled() {
		t.Fatal("counters enabled at package init")
	}
	before := ReadCounters()
	Inc(CounterFFT)
	Add(CounterSBD, 100)
	got := ReadCounters().Sub(before)
	if got.Total() != 0 {
		t.Fatalf("disabled counters accrued counts: %+v", got)
	}
}

func TestCounterAtomicityUnderGoroutines(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	before := ReadCounters()

	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				Inc(CounterSBD)
				Add(CounterEigenIterations, 3)
			}
		}()
	}
	wg.Wait()

	got := ReadCounters().Sub(before)
	if got.SBD != workers*perWorker {
		t.Errorf("SBD = %d, want %d", got.SBD, workers*perWorker)
	}
	if got.EigenIterations != 3*workers*perWorker {
		t.Errorf("EigenIterations = %d, want %d", got.EigenIterations, 3*workers*perWorker)
	}
}

func TestSetEnabledReturnsPrevious(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	if !SetEnabled(false) {
		t.Error("SetEnabled(false) should report previously-enabled")
	}
	if SetEnabled(prev) {
		t.Error("SetEnabled should report previously-disabled")
	}
}

func TestCounterString(t *testing.T) {
	if CounterFFT.String() != "fft" {
		t.Errorf("CounterFFT.String() = %q", CounterFFT.String())
	}
	if CounterEigenIterations.String() != "eigen_iterations" {
		t.Errorf("CounterEigenIterations.String() = %q", CounterEigenIterations.String())
	}
	if Counter(-1).String() != "unknown" || numCounters.String() != "unknown" {
		t.Error("out-of-range counters should stringify as unknown")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTrace("run")
	iter := tr.Root().Child("iteration-1")
	refine := iter.Child("refine")
	time.Sleep(time.Millisecond)
	refine.End()
	assign := iter.Child("assign")
	assign.End()
	iter.End()
	root := tr.Finish()

	if root.Name != "run" || len(root.Children) != 1 {
		t.Fatalf("root = %q with %d children, want run with 1", root.Name, len(root.Children))
	}
	if got := root.Find("refine"); got != refine {
		t.Fatal("Find(refine) did not locate the nested span")
	}
	if root.Find("missing") != nil {
		t.Fatal("Find(missing) should be nil")
	}
	if refine.DurationNS <= 0 {
		t.Errorf("refine duration = %d, want > 0", refine.DurationNS)
	}
	if refine.StartNS < iter.StartNS {
		t.Errorf("child started (%d) before parent (%d)", refine.StartNS, iter.StartNS)
	}
	if root.DurationNS < refine.StartNS+refine.DurationNS {
		t.Errorf("root duration %d shorter than child extent %d",
			root.DurationNS, refine.StartNS+refine.DurationNS)
	}
	// End is idempotent: a second End must not change the duration.
	d := refine.DurationNS
	refine.End()
	if refine.DurationNS != d {
		t.Error("second End changed the span duration")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTrace("run")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Root().Child("child").End()
		}()
	}
	wg.Wait()
	if n := len(tr.Finish().Children); n != 16 {
		t.Errorf("got %d children, want 16", n)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	col := NewCollector()
	col.Record(RunRecord{
		Method: "k-Shape", Dataset: "CBF", Run: 1, Seconds: 0.25,
		Score: 0.9, ScoreKind: "rand_index", Iterations: 2, Converged: true,
		Counters: Counters{FFT: 10, IFFT: 5, SBD: 7},
		Trajectory: []IterationStats{
			{Iteration: 1, Inertia: 12.5, LabelChurn: 30, ClusterSizes: []int{10, 20}, RefineNS: 100, AssignNS: 200},
			{Iteration: 2, Inertia: 11.0, LabelChurn: 0, ClusterSizes: []int{12, 18}, RefineNS: 90, AssignNS: 180, Reseeds: 1},
		},
	})
	tr := NewTrace("kbench")
	tr.Root().Child("table2").End()
	report := col.BuildReport("kbench", []string{"-metrics", "x.json"}, []string{"table2"},
		Counters{FFT: 10, SBD: 7}, tr.Finish())

	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Tool != "kbench" || len(back.Runs) != 1 || back.Counters.FFT != 10 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	r := back.Runs[0]
	if r.Method != "k-Shape" || len(r.Trajectory) != 2 || r.Trajectory[1].Reseeds != 1 {
		t.Fatalf("run record mismatch: %+v", r)
	}
	if back.Phases == nil || back.Phases.Find("table2") == nil {
		t.Fatal("phase span tree lost in round-trip")
	}

	// The wire names must stay snake_case and match Counter.String.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	counters, ok := raw["counters"].(map[string]any)
	if !ok {
		t.Fatalf("counters not an object: %T", raw["counters"])
	}
	for c := Counter(0); c < numCounters; c++ {
		if _, ok := counters[c.String()]; !ok {
			t.Errorf("counters JSON missing key %q", c.String())
		}
	}
}

func TestCollectorConcurrentRecord(t *testing.T) {
	col := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(run int) {
			defer wg.Done()
			col.Record(RunRecord{Method: "m", Run: run})
		}(i)
	}
	wg.Wait()
	if n := len(col.Runs()); n != 32 {
		t.Errorf("got %d records, want 32", n)
	}
}

func TestCountersSubTotal(t *testing.T) {
	a := Counters{FFT: 5, SBD: 3, Reseeds: 1}
	b := Counters{FFT: 2, SBD: 3}
	d := a.Sub(b)
	if d.FFT != 3 || d.SBD != 0 || d.Reseeds != 1 {
		t.Errorf("Sub = %+v", d)
	}
	if d.Total() != 4 {
		t.Errorf("Total = %d, want 4", d.Total())
	}
}
