package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
		" WARN ": slog.LevelWarn,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestNewLoggerJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "info", true)
	if err != nil {
		t.Fatal(err)
	}
	logger.Debug("hidden")
	logger.Info("refinement iteration", "stats", IterationStats{
		Iteration: 3, Inertia: 1.5, LabelChurn: 2, Reseeds: 1,
		RefineNS: 100, AssignNS: 50,
		InertiaDelta: -0.5, CentroidDrift: []float64{0.2, 0.7}, SilhouetteSample: 0.4,
	})
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON line: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "refinement iteration" {
		t.Errorf("msg = %v", rec["msg"])
	}
	stats, ok := rec["stats"].(map[string]any)
	if !ok {
		t.Fatalf("stats not a group: %v", rec["stats"])
	}
	for _, key := range []string{
		"iteration", "inertia", "label_churn", "reseeds", "refine_ns", "assign_ns",
		"inertia_delta", "drift_max", "silhouette_sample",
	} {
		if _, ok := stats[key]; !ok {
			t.Errorf("stats missing %q", key)
		}
	}
	if got := stats["drift_max"]; got != 0.7 {
		t.Errorf("drift_max = %v, want max of centroid drifts", got)
	}
}

func TestCountersLogValueListsAllKernels(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "info", false)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("done", "counters", Counters{FFT: 5, SBD: 2})
	out := buf.String()
	for _, want := range []string{"counters.fft=5", "counters.sbd=2", "counters.reseeds=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("log line missing %q: %q", want, out)
		}
	}
}

func TestNewRunIDDistinct(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if len(a) != 8 || len(b) != 8 {
		t.Errorf("run IDs %q, %q: want 8 hex chars", a, b)
	}
	if a == b {
		t.Errorf("consecutive run IDs collided: %q", a)
	}
}
