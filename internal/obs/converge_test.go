package obs

import "testing"

func TestDiagnoseEmptyAndShortHistories(t *testing.T) {
	if d := Diagnose(nil); d.Stalled || d.Oscillating || d.ETAIterations != -1 {
		t.Errorf("empty history: %+v", d)
	}
	if d := Diagnose([]int{5}); d.Stalled || d.Oscillating || d.ETAIterations != -1 {
		t.Errorf("one iteration: %+v", d)
	}
	if d := Diagnose([]int{5, 0}); d.ETAIterations != 0 {
		t.Errorf("converged history should report ETA 0: %+v", d)
	}
}

func TestDiagnoseStalled(t *testing.T) {
	if d := Diagnose([]int{20, 10, 4, 4, 4, 4}); !d.Stalled {
		t.Errorf("flat nonzero tail not reported as stalled: %+v", d)
	}
	if d := Diagnose([]int{4, 4, 4, 4}); !d.Stalled {
		t.Error("exactly stallWindow flat values not reported")
	}
	if d := Diagnose([]int{4, 4, 4}); d.Stalled {
		t.Error("too-short flat tail reported as stalled")
	}
	if d := Diagnose([]int{4, 4, 0, 0, 0, 0}); d.Stalled {
		t.Error("flat-at-zero tail is convergence, not a stall")
	}
	if d := Diagnose([]int{8, 4, 4, 4, 2}); d.Stalled {
		t.Error("decaying tail reported as stalled")
	}
}

func TestDiagnoseOscillating(t *testing.T) {
	if d := Diagnose([]int{3, 7, 3, 7, 3, 7}); !d.Oscillating {
		t.Errorf("period-2 pattern not detected: %+v", d)
	}
	if d := Diagnose([]int{50, 20, 3, 7, 3, 7, 3, 7}); !d.Oscillating {
		t.Error("period-2 tail after decay not detected")
	}
	if d := Diagnose([]int{3, 3, 3, 3, 3, 3}); d.Oscillating {
		t.Error("flat sequence misreported as oscillating (it is a stall)")
	}
	if d := Diagnose([]int{3, 7, 3, 7}); d.Oscillating {
		t.Error("two periods is below the detection window")
	}
	if d := Diagnose([]int{3, 7, 3, 8, 3, 7}); d.Oscillating {
		t.Error("broken pattern misreported")
	}
}

func TestDiagnoseETAFromGeometricDecay(t *testing.T) {
	// Churn halving every iteration: 64, 32, 16, 8 → r = 0.5, so
	// 8·0.5^t < 0.5 at t = 4.
	d := Diagnose([]int{64, 32, 16, 8})
	if d.ETAIterations != 4 {
		t.Errorf("halving decay: ETA = %d, want 4", d.ETAIterations)
	}
	// Flat churn has no decay signal.
	if d := Diagnose([]int{5, 5, 5, 5, 5}); d.ETAIterations != -1 {
		t.Errorf("flat churn: ETA = %d, want -1", d.ETAIterations)
	}
	// Growing churn has no decay signal either.
	if d := Diagnose([]int{2, 4, 8, 16}); d.ETAIterations != -1 {
		t.Errorf("growing churn: ETA = %d, want -1", d.ETAIterations)
	}
	// A reseed spike from zero restarts the regime; the estimator must
	// not divide by the zero churn.
	if d := Diagnose([]int{4, 0, 6, 3}); d.ETAIterations < -1 {
		t.Errorf("restart history mishandled: %+v", d)
	}
}
