package plot

import (
	"bytes"
	"strings"
	"testing"

	"kshape/internal/obs"
	"kshape/internal/testkit"
)

// sampleDashboard is a fixed, fully-populated DashboardData covering every
// section of the page: convergence curves with drift and silhouette,
// phase latencies, a timeline, counters, and build identity.
func sampleDashboard() DashboardData {
	d := DashboardData{
		Title:     "kshape run f00dcafe",
		Tool:      "kshape",
		Method:    "k-Shape",
		RunID:     "f00dcafe",
		Converged: true,
		WallNS:    123_456_789,
		Workers:   2,
		Iterations: []obs.IterationStats{
			{Iteration: 1, Inertia: 41.25, LabelChurn: 37, ClusterSizes: []int{20, 21, 19},
				RefineNS: 31_000_000, AssignNS: 8_500_000,
				CentroidDrift: []float64{1, 1, 1}, SilhouetteSample: 0.125},
			{Iteration: 2, Inertia: 30.5, InertiaDelta: -10.75, LabelChurn: 9, Reseeds: 1,
				ClusterSizes: []int{22, 18, 20}, RefineNS: 29_250_000, AssignNS: 8_000_000,
				CentroidDrift: []float64{0.25, 0.125, 0.5}, SilhouetteSample: 0.375},
			{Iteration: 3, Inertia: 29.875, InertiaDelta: -0.625, LabelChurn: 0,
				ClusterSizes: []int{22, 18, 20}, RefineNS: 28_000_000, AssignNS: 7_750_000,
				CentroidDrift: []float64{0.0625, 0, 0.03125}, SilhouetteSample: 0.4375},
		},
		Phases: []obs.PhaseStats{
			{Name: "assign", Count: 3, SumNS: 24_250_000, P50NS: 8_000_000, P95NS: 8_500_000, P99NS: 8_500_000},
			{Name: "refine", Count: 3, SumNS: 88_250_000, P50NS: 29_250_000, P95NS: 31_000_000, P99NS: 31_000_000},
		},
		Timeline: []TimelineSpan{
			{Worker: -1, Phase: "assign", StartNS: 0, DurNS: 500},
			{Worker: 0, Phase: "assign", StartNS: 10, DurNS: 200},
			{Worker: 1, Phase: "refine", StartNS: 520, DurNS: 300},
		},
		TimelineWorkers: 2,
		Build: map[string]string{
			"go_version": "go1.24.0",
			"vcs":        "git",
			"revision":   "abc1234",
		},
	}
	d.Counters.FFT = 1234
	d.Counters.IFFT = 1230
	d.Counters.SBD = 615
	d.Counters.ShapeExtractions = 9
	d.Counters.Reseeds = 1
	return d
}

// TestGoldenDashboard pins the single-file HTML dashboard byte-for-byte:
// the page is a published artifact (CI uploads it from bench-smoke runs),
// so its layout only changes deliberately. Regenerate with
// `go test ./internal/plot/ -run Golden -update`.
func TestGoldenDashboard(t *testing.T) {
	testkit.Golden(t, "dashboard", string(Dashboard(sampleDashboard())))
}

func TestDashboardSections(t *testing.T) {
	page := string(Dashboard(sampleDashboard()))
	for _, want := range []string{
		"<!DOCTYPE html>", "</html>",
		"kshape run f00dcafe", "k-Shape", "converged",
		"Convergence", "inertia", "Centroid drift", "silhouette",
		"Phase latency", "assign", "refine",
		"Execution timeline", "worker 0", "worker 1",
		"Kernel counters", "fft", "sbd",
		"Build", "go_version", "abc1234",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if strings.Contains(page, "<script") {
		t.Error("dashboard must be script-free (self-contained static HTML)")
	}
	// Self-contained: no fetched resources (the SVG xmlns URI is a
	// namespace identifier, not a fetch).
	if strings.Contains(page, "src=") || strings.Contains(page, "href=") {
		t.Error("dashboard must not reference external resources")
	}
}

// TestDashboardDeterministic renders twice and requires identical bytes —
// map-ordered sections (counters, build info) must be sorted internally.
func TestDashboardDeterministic(t *testing.T) {
	a := Dashboard(sampleDashboard())
	b := Dashboard(sampleDashboard())
	if !bytes.Equal(a, b) {
		t.Fatal("dashboard output is not deterministic")
	}
}

// TestDashboardMinimalData renders from a nearly-empty report — a run
// with no iterations (method without a refinement loop), no timeline, no
// counters — without panicking or emitting empty-section artifacts.
func TestDashboardMinimalData(t *testing.T) {
	page := string(Dashboard(DashboardData{
		Title: "kbench run 00000000",
		Tool:  "kbench",
		RunID: "00000000",
	}))
	if !strings.Contains(page, "<!DOCTYPE html>") || !strings.Contains(page, "</html>") {
		t.Fatalf("minimal dashboard not a complete page:\n%s", page)
	}
	if strings.Contains(page, "Kernel counters") {
		t.Error("zero-counter run should omit the counters table")
	}
}

func TestDashboardEscapesUntrustedStrings(t *testing.T) {
	d := DashboardData{
		Title:  "run <script>alert(1)</script>",
		Tool:   "kshape",
		Method: "a<b&c",
		Build:  map[string]string{"rev<": "x&y"},
	}
	page := string(Dashboard(d))
	if strings.Contains(page, "<script>alert(1)</script>") || strings.Contains(page, "a<b&c") {
		t.Error("untrusted strings not escaped")
	}
}
