// Package plot renders the experiment figures as standalone SVG documents
// using only the standard library: scatter plots with a reference diagonal
// (Figures 5, 7, 10, 11), log-log line charts (Figure 12), and
// critical-difference rank plots (Figures 6, 8, 9). The output is plain,
// dependency-free SVG meant for quick inspection in a browser.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Size of every generated figure in pixels.
const (
	width  = 480
	height = 420
	margin = 56
)

var palette = []string{"#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed", "#0891b2"}

type svgBuilder struct {
	strings.Builder
}

func newSVG(w, h int) *svgBuilder {
	b := &svgBuilder{}
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`, w, h, w, h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	return b
}

func (b *svgBuilder) finish() []byte {
	b.WriteString("</svg>\n")
	return []byte(b.String())
}

func (b *svgBuilder) text(x, y float64, anchor, s string) {
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" text-anchor="%s">%s</text>`, x, y, anchor, escape(s))
}

func (b *svgBuilder) line(x1, y1, x2, y2 float64, stroke string, dash bool) {
	d := ""
	if dash {
		d = ` stroke-dasharray="4 3"`
	}
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"%s/>`, x1, y1, x2, y2, stroke, d)
}

func (b *svgBuilder) circle(x, y, r float64, fill string) {
	fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.65"/>`, x, y, r, fill)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// Scatter renders an (x, y) accuracy scatter in [lo, hi]² with the y = x
// diagonal — points above the diagonal favor the y-axis method, the
// paper's visual convention.
func Scatter(title, xLabel, yLabel string, xs, ys []float64, lo, hi float64) []byte {
	b := newSVG(width, height)
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)
	px := func(v float64) float64 { return margin + (v-lo)/(hi-lo)*plotW }
	py := func(v float64) float64 { return float64(height-margin) - (v-lo)/(hi-lo)*plotH }

	b.text(float64(width)/2, 20, "middle", title)
	// Axes.
	b.line(px(lo), py(lo), px(hi), py(lo), "#111", false)
	b.line(px(lo), py(lo), px(lo), py(hi), "#111", false)
	// Diagonal.
	b.line(px(lo), py(lo), px(hi), py(hi), "#999", true)
	// Ticks at lo, mid, hi.
	for _, v := range []float64{lo, (lo + hi) / 2, hi} {
		b.text(px(v), py(lo)+16, "middle", fmt.Sprintf("%.1f", v))
		b.text(px(lo)-8, py(v)+4, "end", fmt.Sprintf("%.1f", v))
	}
	b.text(float64(width)/2, float64(height)-12, "middle", xLabel)
	fmt.Fprintf(b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`,
		height/2, height/2, escape(yLabel))
	for i := range xs {
		b.circle(px(clamp(xs[i], lo, hi)), py(clamp(ys[i], lo, hi)), 3.4, palette[0])
	}
	return b.finish()
}

// Lines renders one or more named series on linear axes (used for the
// Figure 12 runtime curves).
func Lines(title, xLabel, yLabel string, x []float64, series map[string][]float64) []byte {
	b := newSVG(width, height)
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)
	xLo, xHi := minMax(x)
	yLo, yHi := math.Inf(1), math.Inf(-1)
	for _, ys := range series {
		lo, hi := minMax(ys)
		yLo, yHi = math.Min(yLo, lo), math.Max(yHi, hi)
	}
	//lint:ignore floatcmp exact degenerate-range guard before dividing by the span
	if yLo == yHi {
		yHi = yLo + 1
	}
	//lint:ignore floatcmp exact degenerate-range guard before dividing by the span
	if xLo == xHi {
		xHi = xLo + 1
	}
	px := func(v float64) float64 { return margin + (v-xLo)/(xHi-xLo)*plotW }
	py := func(v float64) float64 { return float64(height-margin) - (v-yLo)/(yHi-yLo)*plotH }

	b.text(float64(width)/2, 20, "middle", title)
	b.line(px(xLo), py(yLo), px(xHi), py(yLo), "#111", false)
	b.line(px(xLo), py(yLo), px(xLo), py(yHi), "#111", false)
	b.text(float64(width)/2, float64(height)-12, "middle", xLabel)
	fmt.Fprintf(b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`,
		height/2, height/2, escape(yLabel))
	for _, v := range []float64{xLo, (xLo + xHi) / 2, xHi} {
		b.text(px(v), py(yLo)+16, "middle", fmt.Sprintf("%.0f", v))
	}
	for _, v := range []float64{yLo, (yLo + yHi) / 2, yHi} {
		b.text(px(xLo)-8, py(v)+4, "end", fmt.Sprintf("%.2g", v))
	}
	names := sortedKeys(series)
	for si, name := range names {
		ys := series[name]
		color := palette[si%len(palette)]
		for i := 1; i < len(ys) && i < len(x); i++ {
			b.line(px(x[i-1]), py(ys[i-1]), px(x[i]), py(ys[i]), color, false)
		}
		for i := 0; i < len(ys) && i < len(x); i++ {
			b.circle(px(x[i]), py(ys[i]), 3, color)
		}
		// Legend.
		ly := 34 + 16*si
		b.line(float64(width-margin-110), float64(ly), float64(width-margin-90), float64(ly), color, false)
		b.text(float64(width-margin-84), float64(ly)+4, "start", name)
	}
	return b.finish()
}

// CDRanks renders a critical-difference diagram: methods placed on a rank
// axis (best = left), with a bar for the Nemenyi critical difference and
// connector lines for each group of statistically indistinguishable
// methods — the paper's Figures 6, 8, and 9.
func CDRanks(title string, names []string, avgRanks []float64, cd float64, groups [][]int) []byte {
	k := len(names)
	b := newSVG(width, height)
	plotW := float64(width - 2*margin)
	lo, hi := 1.0, float64(k)
	px := func(v float64) float64 { return margin + (v-lo)/(hi-lo)*plotW }
	axisY := 80.0

	b.text(float64(width)/2, 20, "middle", title)
	b.line(px(lo), axisY, px(hi), axisY, "#111", false)
	for v := 1; v <= k; v++ {
		b.line(px(float64(v)), axisY-4, px(float64(v)), axisY+4, "#111", false)
		b.text(px(float64(v)), axisY-8, "middle", fmt.Sprintf("%d", v))
	}
	// CD bar at the top-left.
	b.line(px(lo), 40, px(lo+cd), 40, "#dc2626", false)
	b.text(px(lo+cd)+6, 44, "start", fmt.Sprintf("CD = %.2f", cd))

	// Method stems and labels, alternating above/below to avoid collisions.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	// Sort by rank.
	for i := 1; i < k; i++ {
		for j := i; j > 0 && avgRanks[order[j]] < avgRanks[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for pos, idx := range order {
		x := px(clamp(avgRanks[idx], lo, hi))
		labelY := axisY + 40 + float64(pos)*18
		b.line(x, axisY, x, labelY-12, "#555", false)
		b.text(x, labelY, "middle", fmt.Sprintf("%s (%.2f)", names[idx], avgRanks[idx]))
	}
	// Group connectors just under the axis.
	for gi, group := range groups {
		loR, hiR := math.Inf(1), math.Inf(-1)
		for _, idx := range group {
			loR = math.Min(loR, avgRanks[idx])
			hiR = math.Max(hiR, avgRanks[idx])
		}
		y := axisY + 8 + float64(gi)*6
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#111" stroke-width="3"/>`,
			px(clamp(loR, lo, hi))-3, y, px(clamp(hiR, lo, hi))+3, y)
	}
	return b.finish()
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if len(xs) == 0 {
		return 0, 1
	}
	return lo, hi
}

// sortedKeys returns m's keys in sorted order so that series render in a
// deterministic sequence — the SVG bytes must be identical across runs
// regardless of Go's randomized map iteration.
func sortedKeys(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
