package plot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed checks the output parses as XML.
func wellFormed(t *testing.T, svg []byte) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(string(svg)))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg)
		}
	}
}

func TestScatter(t *testing.T) {
	xs := []float64{0.5, 0.7, 0.9, 1.2} // 1.2 must clamp
	ys := []float64{0.6, 0.65, 0.95, 0.3}
	svg := Scatter("SBD vs ED", "ED", "SBD", xs, ys, 0.3, 1.0)
	wellFormed(t, svg)
	s := string(svg)
	if got := strings.Count(s, "<circle"); got != 4 {
		t.Errorf("circles = %d, want 4", got)
	}
	for _, want := range []string{"SBD vs ED", "stroke-dasharray"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestScatterEscapesMarkup(t *testing.T) {
	svg := Scatter("a < b & c", "x", "y", nil, nil, 0, 1)
	wellFormed(t, svg)
	if !strings.Contains(string(svg), "a &lt; b &amp; c") {
		t.Error("title not escaped")
	}
}

func TestLines(t *testing.T) {
	x := []float64{100, 200, 400}
	series := map[string][]float64{
		"k-Shape":  {0.1, 0.2, 0.4},
		"k-AVG+ED": {0.01, 0.02, 0.04},
	}
	svg := Lines("Figure 12a", "n", "seconds", x, series)
	wellFormed(t, svg)
	s := string(svg)
	if got := strings.Count(s, "<circle"); got != 6 {
		t.Errorf("markers = %d, want 6", got)
	}
	if !strings.Contains(s, "k-Shape") || !strings.Contains(s, "k-AVG+ED") {
		t.Error("legend entries missing")
	}
}

func TestLinesDegenerate(t *testing.T) {
	svg := Lines("flat", "x", "y", []float64{1, 1}, map[string][]float64{"a": {2, 2}})
	wellFormed(t, svg)
}

func TestCDRanks(t *testing.T) {
	names := []string{"k-Shape", "k-AVG+ED", "KSC", "k-DBA"}
	ranks := []float64{1.8, 3.0, 2.2, 3.1}
	groups := [][]int{{0, 2}, {1, 3}}
	svg := CDRanks("Figure 8", names, ranks, 0.68, groups)
	wellFormed(t, svg)
	s := string(svg)
	for _, n := range names {
		if !strings.Contains(s, n) {
			t.Errorf("missing method %q", n)
		}
	}
	if !strings.Contains(s, "CD = 0.68") {
		t.Error("missing CD bar label")
	}
	if got := strings.Count(s, `stroke-width="3"`); got != 2 {
		t.Errorf("group connectors = %d, want 2", got)
	}
}

func TestClampAndMinMax(t *testing.T) {
	if clamp(5, 0, 1) != 1 || clamp(-1, 0, 1) != 0 || clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp broken")
	}
	lo, hi := minMax(nil)
	if lo != 0 || hi != 1 {
		t.Errorf("empty minMax = %v, %v", lo, hi)
	}
	lo, hi = minMax([]float64{3, -2, 7})
	if lo != -2 || hi != 7 {
		t.Errorf("minMax = %v, %v", lo, hi)
	}
}

func TestSortedKeys(t *testing.T) {
	got := sortedKeys(map[string][]float64{"b": nil, "a": nil, "c": nil})
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("sortedKeys = %v", got)
	}
}

// TestLinesDeterministicBytes regression-tests the map-iteration fix in
// sortedKeys: a multi-series Lines chart (series delivered via a map)
// must render to byte-identical SVG on every call. Before keys were
// sorted, Go's randomized map order could swap the polyline sequence and
// legend between runs.
func TestLinesDeterministicBytes(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	series := map[string][]float64{
		"k-Shape":  {1, 2, 3, 4},
		"k-AVG+ED": {4, 3, 2, 1},
		"KSC":      {2, 2, 2, 2},
		"k-DBA":    {1, 3, 1, 3},
	}
	first := Lines("determinism", "x", "y", x, series)
	for i := 0; i < 10; i++ {
		if got := Lines("determinism", "x", "y", x, series); !bytes.Equal(got, first) {
			t.Fatalf("render %d differs from first render:\n%s\nvs\n%s", i, got, first)
		}
	}
}
