package plot

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"kshape/internal/obs"
)

// This file renders the single-file HTML run dashboard: the convergence
// and quality trajectory (inertia, churn, centroid drift, sampled
// silhouette), phase latency quantiles, the per-worker execution
// timeline, kernel counters, and build identity — all inline (CSS and
// SVG embedded, no external assets), so the file can be archived with a
// run or attached to a CI build and opened anywhere. Like every renderer
// in this package the output is deterministic: identical input produces
// identical bytes, and a golden test pins them.

// DashboardData is everything Dashboard renders. All fields are
// optional; sections without data are omitted.
type DashboardData struct {
	// Title heads the page; empty means "kshape run dashboard".
	Title string
	// Tool, Method and RunID identify the run (the CLI binary, the
	// clustering method, and the obs run ID correlating logs and metrics).
	Tool   string
	Method string
	RunID  string
	// Converged and WallNS summarize the outcome.
	Converged bool
	WallNS    int64
	// Workers is the pool size the run used (0 means unknown).
	Workers int
	// Iterations is the per-iteration quality trajectory.
	Iterations []obs.IterationStats
	// Phases carries the phase latency quantiles of the run.
	Phases []obs.PhaseStats
	// Counters is the kernel-counter delta over the run.
	Counters obs.Counters
	// Timeline, with TimelineWorkers lanes, is the per-worker Gantt chart
	// input (see Timeline); empty means no timeline section.
	Timeline        []TimelineSpan
	TimelineWorkers int
	// Build is the build-identity map (obs.BuildInfo), rendered sorted.
	Build map[string]string
}

// Dashboard renders d as a self-contained HTML document.
func Dashboard(d DashboardData) []byte {
	var b strings.Builder
	title := d.Title
	if title == "" {
		title = "kshape run dashboard"
	}
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n<title>%s</title>\n", html.EscapeString(title))
	b.WriteString("<style>\n" + dashboardCSS + "</style>\n</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))

	writeSummary(&b, d)

	if len(d.Iterations) > 0 {
		b.WriteString("<h2>Convergence</h2>\n<div class=\"charts\">\n")
		x := make([]float64, len(d.Iterations))
		inertia := make([]float64, len(d.Iterations))
		churn := make([]float64, len(d.Iterations))
		drift := make([]float64, len(d.Iterations))
		sil := make([]float64, len(d.Iterations))
		haveDrift, haveSil := false, false
		for i, st := range d.Iterations {
			x[i] = float64(st.Iteration)
			inertia[i] = st.Inertia
			churn[i] = float64(st.LabelChurn)
			drift[i] = st.DriftMax()
			sil[i] = st.SilhouetteSample
			if len(st.CentroidDrift) > 0 {
				haveDrift = true
			}
			//lint:ignore floatcmp exact zero means the field was never populated
			if st.SilhouetteSample != 0 {
				haveSil = true
			}
		}
		writeChart(&b, Lines("Inertia per iteration", "iteration", "inertia", x, map[string][]float64{"inertia": inertia}))
		writeChart(&b, Lines("Label churn per iteration", "iteration", "series reassigned", x, map[string][]float64{"churn": churn}))
		if haveDrift {
			writeChart(&b, Lines("Centroid drift per iteration", "iteration", "max SBD drift", x, map[string][]float64{"drift (max)": drift}))
		}
		if haveSil {
			writeChart(&b, Lines("Sampled silhouette per iteration", "iteration", "silhouette", x, map[string][]float64{"silhouette": sil}))
		}
		b.WriteString("</div>\n")
		writeIterationTable(&b, d.Iterations)
	}

	if len(d.Phases) > 0 {
		b.WriteString("<h2>Phase latency</h2>\n<div class=\"charts\">\n")
		writeChart(&b, phaseLatencySVG(d.Phases))
		b.WriteString("</div>\n")
		writePhaseTable(&b, d.Phases)
	}

	if len(d.Timeline) > 0 {
		b.WriteString("<h2>Execution timeline</h2>\n<div class=\"charts\">\n")
		writeChart(&b, Timeline("Per-worker execution timeline", d.TimelineWorkers, d.WallNS, d.Timeline))
		b.WriteString("</div>\n")
	}

	if d.Counters.Total() > 0 {
		b.WriteString("<h2>Kernel counters</h2>\n<table>\n<tr><th>kernel</th><th>operations</th></tr>\n")
		d.Counters.Each(func(name string, v int64) {
			fmt.Fprintf(&b, "<tr><td>%s</td><td class=\"num\">%d</td></tr>\n", html.EscapeString(name), v)
		})
		b.WriteString("</table>\n")
	}

	if len(d.Build) > 0 {
		b.WriteString("<h2>Build</h2>\n<table>\n<tr><th>key</th><th>value</th></tr>\n")
		keys := make([]string, 0, len(d.Build))
		for k := range d.Build {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td></tr>\n", html.EscapeString(k), html.EscapeString(d.Build[k]))
		}
		b.WriteString("</table>\n")
	}

	b.WriteString("</body>\n</html>\n")
	return []byte(b.String())
}

// dashboardCSS is the entire inline stylesheet — deliberately small, no
// external fonts or scripts.
const dashboardCSS = `body{font-family:sans-serif;margin:24px;color:#111;max-width:1100px}
h1{font-size:20px;margin-bottom:4px}
h2{font-size:15px;margin:24px 0 8px;border-bottom:1px solid #ddd;padding-bottom:4px}
.meta{color:#555;font-size:12px;margin-bottom:12px}
.cards{display:flex;flex-wrap:wrap;gap:12px;margin:12px 0}
.card{border:1px solid #ddd;border-radius:6px;padding:8px 14px;min-width:110px}
.card .v{font-size:18px;font-weight:bold}
.card .l{font-size:11px;color:#555}
.charts{display:flex;flex-wrap:wrap;gap:12px}
.charts svg{border:1px solid #eee}
table{border-collapse:collapse;font-size:12px;margin:8px 0}
th,td{border:1px solid #ddd;padding:3px 8px;text-align:left}
td.num{text-align:right;font-variant-numeric:tabular-nums}
.ok{color:#059669}.bad{color:#dc2626}
`

// writeSummary emits the run-identity line and the headline cards.
func writeSummary(b *strings.Builder, d DashboardData) {
	meta := make([]string, 0, 4)
	if d.Tool != "" {
		meta = append(meta, "tool "+d.Tool)
	}
	if d.Method != "" {
		meta = append(meta, "method "+d.Method)
	}
	if d.RunID != "" {
		meta = append(meta, "run "+d.RunID)
	}
	if d.Workers > 0 {
		meta = append(meta, fmt.Sprintf("%d workers", d.Workers))
	}
	if len(meta) > 0 {
		fmt.Fprintf(b, "<div class=\"meta\">%s</div>\n", html.EscapeString(strings.Join(meta, " · ")))
	}
	card := func(label, value, class string) {
		fmt.Fprintf(b, "<div class=\"card\"><div class=\"v %s\">%s</div><div class=\"l\">%s</div></div>\n",
			class, html.EscapeString(value), html.EscapeString(label))
	}
	b.WriteString("<div class=\"cards\">\n")
	if d.Converged {
		card("outcome", "converged", "ok")
	} else {
		card("outcome", "not converged", "bad")
	}
	if n := len(d.Iterations); n > 0 {
		last := d.Iterations[n-1]
		card("iterations", fmt.Sprintf("%d", last.Iteration), "")
		card("final inertia", fmt.Sprintf("%.6g", last.Inertia), "")
		card("final churn", fmt.Sprintf("%d", last.LabelChurn), "")
		//lint:ignore floatcmp exact zero means the field was never populated
		if last.SilhouetteSample != 0 {
			card("silhouette (sampled)", fmt.Sprintf("%.3f", last.SilhouetteSample), "")
		}
	}
	if d.WallNS > 0 {
		card("wall time", formatNS(d.WallNS), "")
	}
	b.WriteString("</div>\n")
}

// writeChart embeds one SVG document inline (SVG is valid HTML5 content).
func writeChart(b *strings.Builder, svg []byte) {
	b.Write(svg)
}

// writeIterationTable emits the full per-iteration trajectory.
func writeIterationTable(b *strings.Builder, iters []obs.IterationStats) {
	b.WriteString("<table>\n<tr><th>iter</th><th>inertia</th><th>Δ inertia</th><th>churn</th><th>reseeds</th><th>drift max</th><th>silhouette</th><th>refine</th><th>assign</th></tr>\n")
	for _, st := range iters {
		fmt.Fprintf(b, "<tr><td class=\"num\">%d</td><td class=\"num\">%.6g</td><td class=\"num\">%.6g</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td class=\"num\">%.4f</td><td class=\"num\">%.4f</td><td class=\"num\">%s</td><td class=\"num\">%s</td></tr>\n",
			st.Iteration, st.Inertia, st.InertiaDelta, st.LabelChurn, st.Reseeds,
			st.DriftMax(), st.SilhouetteSample, formatNS(st.RefineNS), formatNS(st.AssignNS))
	}
	b.WriteString("</table>\n")
}

// writePhaseTable emits the phase quantile table.
func writePhaseTable(b *strings.Builder, phases []obs.PhaseStats) {
	b.WriteString("<table>\n<tr><th>phase</th><th>count</th><th>total</th><th>p50</th><th>p95</th><th>p99</th></tr>\n")
	for _, p := range phases {
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td></tr>\n",
			html.EscapeString(p.Name), p.Count, formatNS(p.SumNS),
			formatNS(int64(p.P50NS)), formatNS(int64(p.P95NS)), formatNS(int64(p.P99NS)))
	}
	b.WriteString("</table>\n")
}

// phaseLatencySVG renders the phase quantiles as grouped horizontal bars
// (p50/p95/p99 per phase, log-free linear scale normalized to the
// largest p99). Phases render in the order given, which the run report
// already emits deterministically.
func phaseLatencySVG(phases []obs.PhaseStats) []byte {
	const (
		w        = 480
		rowH     = 46
		barH     = 10
		top      = 40
		left     = 110
		right    = 70
		bottom   = 16
		quantile = 3
	)
	h := top + rowH*len(phases) + bottom
	maxNS := 1.0
	for _, p := range phases {
		if p.P99NS > maxNS {
			maxNS = p.P99NS
		}
	}
	b := newSVG(w, h)
	b.text(float64(w)/2, 20, "middle", "Phase latency quantiles (p50 / p95 / p99)")
	plotW := float64(w - left - right)
	px := func(v float64) float64 { return float64(left) + v/maxNS*plotW }
	for pi, p := range phases {
		y := float64(top + pi*rowH)
		b.text(float64(left)-8, y+float64(quantile*barH)/2+4, "end", p.Name)
		qs := [quantile]struct {
			v float64
			c string
		}{
			{p.P50NS, palette[0]}, {p.P95NS, palette[3]}, {p.P99NS, palette[1]},
		}
		for qi, q := range qs {
			by := y + float64(qi*barH)
			bw := px(q.v) - float64(left)
			if bw < 0.5 {
				bw = 0.5
			}
			b.rect(float64(left), by, bw, barH-2, q.c, p.Name+" "+formatNS(int64(q.v)))
			b.text(float64(left)+bw+4, by+float64(barH)-3, "start", formatNS(int64(q.v)))
		}
	}
	return b.finish()
}
