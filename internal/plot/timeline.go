package plot

import (
	"fmt"
	"sort"
)

// TimelineSpan is one colored bar of an execution timeline: a phase span
// or a worker's chunk. Worker -1 places the span in the phase lane at the
// top of the chart; workers 0..N-1 get one lane each.
type TimelineSpan struct {
	Worker  int
	Phase   string
	StartNS int64
	DurNS   int64
}

// Timeline geometry.
const (
	tlWidth      = 960
	tlLaneHeight = 22
	tlLaneGap    = 4
	tlTop        = 56
	tlLeft       = 88
	tlRight      = 24
	tlBottom     = 40
)

// Timeline renders a run's execution timeline as an SVG Gantt chart:
// one lane per worker (plus a phase lane on top) spanning [0, wallNS],
// every span colored by its phase name. Spans are drawn in a fixed
// order and colors are assigned to sorted distinct phase names, so the
// output is byte-identical for identical input regardless of the order
// spans were collected in.
func Timeline(title string, workers int, wallNS int64, spans []TimelineSpan) []byte {
	if workers < 1 {
		workers = 1
	}
	if wallNS < 1 {
		wallNS = 1
	}
	// Deterministic draw order and color assignment.
	sorted := make([]TimelineSpan, len(spans))
	copy(sorted, spans)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Worker != sorted[j].Worker {
			return sorted[i].Worker < sorted[j].Worker
		}
		if sorted[i].StartNS != sorted[j].StartNS {
			return sorted[i].StartNS < sorted[j].StartNS
		}
		return sorted[i].Phase < sorted[j].Phase
	})
	names := map[string]bool{}
	for _, s := range sorted {
		names[s.Phase] = true
	}
	phases := make([]string, 0, len(names))
	for n := range names {
		phases = append(phases, n)
	}
	sort.Strings(phases)
	color := map[string]string{}
	for i, n := range phases {
		color[n] = palette[i%len(palette)]
	}

	lanes := workers + 1 // phase lane + one per worker
	h := tlTop + lanes*(tlLaneHeight+tlLaneGap) + tlBottom
	b := newSVG(tlWidth, h)
	b.text(float64(tlWidth)/2, 22, "middle", title)

	plotW := float64(tlWidth - tlLeft - tlRight)
	px := func(ns int64) float64 { return float64(tlLeft) + float64(ns)/float64(wallNS)*plotW }
	laneY := func(lane int) float64 { return float64(tlTop + lane*(tlLaneHeight+tlLaneGap)) }

	// Lane labels and baselines.
	b.text(float64(tlLeft)-8, laneY(0)+float64(tlLaneHeight)-7, "end", "phases")
	for w := 0; w < workers; w++ {
		b.text(float64(tlLeft)-8, laneY(w+1)+float64(tlLaneHeight)-7, "end", fmt.Sprintf("worker %d", w))
	}
	axisY := laneY(lanes) + 2
	b.line(float64(tlLeft), axisY, float64(tlWidth-tlRight), axisY, "#111", false)
	for i := 0; i <= 4; i++ {
		at := wallNS * int64(i) / 4
		b.line(px(at), axisY, px(at), axisY+4, "#111", false)
		b.text(px(at), axisY+16, "middle", formatNS(at))
	}

	// Spans. Phase lane (-1) maps to lane 0, worker w to lane w+1.
	for _, s := range sorted {
		lane := s.Worker + 1
		if lane < 0 || lane >= lanes {
			continue
		}
		x := px(s.StartNS)
		wpx := px(s.StartNS+s.DurNS) - x
		if wpx < 0.5 {
			wpx = 0.5 // keep sub-pixel spans visible
		}
		b.rect(x, laneY(lane), wpx, tlLaneHeight, color[s.Phase], escape(s.Phase))
	}

	// Legend along the bottom.
	lx := float64(tlLeft)
	ly := axisY + 30.0
	for _, n := range phases {
		b.rect(lx, ly-9, 10, 10, color[n], "")
		b.text(lx+14, ly, "start", n)
		lx += 18 + 7*float64(len(n)) + 14
	}
	return b.finish()
}

// rect draws a filled rectangle; a non-empty title becomes a hover
// tooltip in browsers.
func (b *svgBuilder) rect(x, y, w, h float64, fill, title string) {
	if title == "" {
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.8"/>`, x, y, w, h, fill)
		return
	}
	fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.8"><title>%s</title></rect>`, x, y, w, h, fill, title)
}

// formatNS renders a nanosecond tick label with a readable unit.
func formatNS(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
