package plot

import (
	"bytes"
	"strings"
	"testing"
)

func sampleSpans() []TimelineSpan {
	return []TimelineSpan{
		{Worker: -1, Phase: "assign", StartNS: 0, DurNS: 500},
		{Worker: -1, Phase: "refine", StartNS: 500, DurNS: 500},
		{Worker: 0, Phase: "assign", StartNS: 10, DurNS: 200},
		{Worker: 0, Phase: "refine", StartNS: 520, DurNS: 300},
		{Worker: 1, Phase: "assign", StartNS: 15, DurNS: 400},
		{Worker: 1, Phase: "refine", StartNS: 510, DurNS: 1}, // sub-pixel
	}
}

func TestTimelineWellFormed(t *testing.T) {
	svg := Timeline("run timeline", 2, 1000, sampleSpans())
	wellFormed(t, svg)
	for _, want := range []string{"worker 0", "worker 1", "phases", "assign", "refine"} {
		if !bytes.Contains(svg, []byte(want)) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestTimelineDeterministic feeds the same spans in two different orders
// and requires byte-identical output — the renderer sorts internally.
func TestTimelineDeterministic(t *testing.T) {
	spans := sampleSpans()
	reversed := make([]TimelineSpan, len(spans))
	for i, s := range spans {
		reversed[len(spans)-1-i] = s
	}
	a := Timeline("t", 2, 1000, spans)
	b := Timeline("t", 2, 1000, reversed)
	if !bytes.Equal(a, b) {
		t.Fatal("timeline output depends on span order")
	}
}

func TestTimelineDegenerateInputs(t *testing.T) {
	// No spans, zero wall, zero workers must still render something valid.
	svg := Timeline("empty", 0, 0, nil)
	wellFormed(t, svg)
	if !strings.Contains(string(svg), "worker 0") {
		t.Errorf("degenerate timeline missing worker lane:\n%s", svg)
	}
}

func TestTimelineEscapesPhaseNames(t *testing.T) {
	svg := Timeline("t", 1, 100, []TimelineSpan{
		{Worker: 0, Phase: "a<b&c", StartNS: 0, DurNS: 50},
	})
	wellFormed(t, svg)
	if bytes.Contains(svg, []byte("a<b&c")) {
		t.Error("phase name not escaped")
	}
}

func TestFormatNS(t *testing.T) {
	for _, tc := range []struct {
		ns   int64
		want string
	}{
		{500, "500ns"},
		{1500, "1.5µs"},
		{2_500_000, "2.5ms"},
		{3_000_000_000, "3.00s"},
	} {
		if got := formatNS(tc.ns); got != tc.want {
			t.Errorf("formatNS(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}
