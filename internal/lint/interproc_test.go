package lint

// Tests for the interprocedural layer: the hotpath/atomicinv fixture
// suites, the full-registry staleness semantics of ignoredrift, and the
// unified-diff renderer behind kshapelint -diff.

import (
	"strings"
	"testing"
)

func TestHotPathFixture(t *testing.T) {
	checkFixture(t, "hotpath", "fix/hotpath", []*Analyzer{HotPathAnalyzer})
}

func TestAtomicInvFixture(t *testing.T) {
	checkFixture(t, "atomicinv", "fix/atomicinv", []*Analyzer{AtomicInvAnalyzer})
}

// TestIgnoreDriftFixture runs ONLY the ignoredrift analyzer; Pass.Run
// internally executes the full registry so staleness is judged against
// every check, then drops the non-selected raw findings.
func TestIgnoreDriftFixture(t *testing.T) {
	checkFixture(t, "ignoredrift", "fix/ignoredrift", []*Analyzer{IgnoreDriftAnalyzer})
}

// TestHotPathSummaryCache asserts the interprocedural facts are computed
// once per function and shared: after an analyzer run, every reachable
// function has exactly one cached summary, and re-running against the
// same Program reports identical diagnostics without growing the caches.
func TestHotPathSummaryCache(t *testing.T) {
	p := parseFixture(t, "hotpath", "fix/hotpath")
	first := p.Run([]*Analyzer{HotPathAnalyzer})
	prog := p.Prog
	if prog == nil {
		t.Fatal("run did not attach a lazily built Program")
	}
	nsum, ntrans := len(prog.summaries), len(prog.transitive)
	if nsum == 0 || ntrans == 0 {
		t.Fatalf("no cached facts after a run: %d summaries, %d transitive", nsum, ntrans)
	}
	second := p.Run([]*Analyzer{HotPathAnalyzer})
	if len(prog.summaries) != nsum || len(prog.transitive) != ntrans {
		t.Errorf("re-run grew the caches: %d->%d summaries, %d->%d transitive",
			nsum, len(prog.summaries), ntrans, len(prog.transitive))
	}
	if len(first) != len(second) {
		t.Fatalf("re-run changed the findings: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("finding %d drifted between runs: %v vs %v", i, first[i], second[i])
		}
	}
}

// TestStaleIgnoreDiff renders the dry-run patch for the ignoredrift
// fixture: full-line stale directives become deletions, a trailing one
// is trimmed off its code line, and live/pinned directives are left
// untouched.
func TestStaleIgnoreDiff(t *testing.T) {
	p := parseFixture(t, "ignoredrift", "fix/ignoredrift")
	diags := p.Run([]*Analyzer{IgnoreDriftAnalyzer})
	if len(diags) != 3 {
		t.Fatalf("fixture should yield 3 stale directives, got %d: %v", len(diags), diags)
	}
	patch, err := StaleIgnoreDiff(diags, "")
	if err != nil {
		t.Fatal(err)
	}
	wantFragments := []string{
		"--- a/testdata/src/ignoredrift/ignoredrift.go",
		"+++ b/testdata/src/ignoredrift/ignoredrift.go",
		"@@ -",
		// Full-line directives are deleted outright.
		"-\t//lint:ignore floatcmp the comparison below was rewritten",
		"-\t//lint:ignore floatcmp,maporder neither check fires",
		// The trailing directive is trimmed, keeping the code.
		"-\treturn a < b //lint:ignore detrand ordering never tripped detrand",
		"+\treturn a < b\n",
	}
	for _, frag := range wantFragments {
		if !strings.Contains(patch, frag) {
			t.Errorf("patch missing %q:\n%s", frag, patch)
		}
	}
	for _, frag := range []string{
		"exactness is the point",    // live directive
		"one live check keeps",      // half-live directive
		"pinned: the exact",         // ignoredrift-pinned directive
		"kept deliberately through", // pin protecting its neighbor
		"kept while the comparison", // the pinned neighbor itself
	} {
		if strings.Contains(patch, "-\t//lint:ignore"+frag) || strings.Contains(patch, frag+" //") {
			t.Errorf("patch touches a live or pinned directive (%q):\n%s", frag, patch)
		}
	}
	// Live directives may appear as context lines (prefixed with a
	// space) but never as removals.
	for _, line := range strings.Split(patch, "\n") {
		if strings.HasPrefix(line, "-") && !strings.HasPrefix(line, "---") {
			if !strings.Contains(line, "//lint:ignore") {
				t.Errorf("removal of a non-directive line: %q", line)
			}
		}
	}
}

// TestStaleIgnoreDiffEmpty: no ignoredrift findings, no patch.
func TestStaleIgnoreDiffEmpty(t *testing.T) {
	diags := []Diagnostic{{Check: "floatcmp", Message: "x"}}
	patch, err := StaleIgnoreDiff(diags, "")
	if err != nil || patch != "" {
		t.Fatalf("want empty patch and nil error, got %q, %v", patch, err)
	}
}
