// Package maporder seeds order-sensitive range-over-map loops
// (violations) next to the order-blind folds and the sanctioned
// collect-then-sort idiom.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func appendUnderRange(m map[string]int) []string {
	var out []string
	for k, v := range m { // want "\[maporder\] range over map with an order-sensitive body \(append\)"
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

func printUnderRange(m map[string]int, w io.Writer) {
	for k := range m { // want "\[maporder\] range over map with an order-sensitive body \(fmt.Fprintln\)"
		fmt.Fprintln(w, k)
	}
}

func writeUnderRange(m map[string]int, b *strings.Builder) {
	for k := range m { // want "\[maporder\] range over map with an order-sensitive body \(write to WriteString\)"
		b.WriteString(k)
	}
}

func concatUnderRange(m map[string]int) string {
	s := ""
	for k := range m { // want "\[maporder\] range over map with an order-sensitive body \(string concatenation\)"
		s += k
	}
	return s
}

func sendUnderRange(m map[string]int, ch chan string) {
	for k := range m { // want "\[maporder\] range over map with an order-sensitive body \(channel send\)"
		ch <- k
	}
}

func collectedButNeverSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "\[maporder\] map keys collected into \"keys\" but never sorted"
		keys = append(keys, k)
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // the sanctioned idiom: collect, then sort
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func orderBlindFold(m map[string]int) int {
	total := 0
	for _, v := range m { // summation is order-blind: allowed
		total += v
	}
	return total
}

func rangeOverSlice(xs []string) []string {
	var out []string
	for _, x := range xs { // slices iterate in index order: allowed
		out = append(out, x)
	}
	return out
}
