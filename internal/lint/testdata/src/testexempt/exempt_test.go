// Package testexempt holds every category of violation inside a
// _test.go file, where all five analyzers must stay silent: exact-copy
// assertions, benchmark timing, and race-test goroutines are legitimate
// in tests.
package testexempt

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

func exactAssertion(got, want float64) bool {
	return got == want
}

func benchmarkTiming() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func ambientRand() int {
	return rand.Intn(10)
}

func raceProbe(fns []func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}

func goldenDump(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
