package cyclebug

//kshape:hotpath
func root1(n int) int {
	return cycA(n) // want "call to cycA reaches a hot-path violation: make allocates"
}

func cycA(n int) int {
	buf := make([]int, 1)
	if n == 0 {
		return buf[0]
	}
	return cycB(n - 1)
}

func cycB(n int) int {
	return cycA(n)
}

//kshape:hotpath
func root2(n int) int {
	return cycB(n) // want "call to cycB reaches a hot-path violation: make allocates"
}
