// Package goroutine seeds raw concurrency primitives (violations) next
// to the sync types the analyzer permits everywhere.
package goroutine

import "sync"

func spawn(work func()) {
	go work() // want "\[goroutine\] go statement outside internal/par"
}

func fanOut(fns []func()) {
	var wg sync.WaitGroup // want "\[goroutine\] raw sync.WaitGroup outside internal/par"
	for _, fn := range fns {
		wg.Add(1)
		go func() { // want "\[goroutine\] go statement outside internal/par"
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}

func clean() {
	var mu sync.Mutex // Mutex and Once are not fan-out: allowed
	var once sync.Once
	mu.Lock()
	once.Do(func() {})
	mu.Unlock()
}
