// Package floatcmp seeds exact floating-point comparisons (violations)
// next to the comparisons the analyzer must leave alone.
package floatcmp

import "math"

func violations(a, b float64, c float32, z complex128) bool {
	if a == b { // want "\[floatcmp\] floating-point == comparison"
		return true
	}
	if a != 0 { // want "\[floatcmp\] floating-point != comparison"
		return true
	}
	if c == 1.5 { // want "\[floatcmp\] floating-point == comparison"
		return true
	}
	if z == 0 { // want "\[floatcmp\] floating-point == comparison"
		return true
	}
	return a+1 == b*2 // want "\[floatcmp\] floating-point == comparison"
}

func clean(a, b float64, i, j int, s, t string) bool {
	if i == j { // integers compare exactly
		return true
	}
	if s != t { // strings compare exactly
		return true
	}
	if a == math.Inf(1) { // ±Inf sentinels are exact by construction
		return true
	}
	if math.Inf(-1) == b {
		return true
	}
	if math.Abs(a-b) < 1e-9 { // the sanctioned epsilon form
		return true
	}
	return a < b // ordering comparisons are fine
}
