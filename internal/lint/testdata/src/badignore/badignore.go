// Package badignore holds malformed suppression directives. Each is
// reported under the "ignore" pseudo-check and suppresses nothing; the
// harness asserts the exact lines from test code because a // want
// comment cannot share a line with the directive it describes.
package badignore

func missingReason(a, b float64) bool {
	//lint:ignore floatcmp
	return a == b // line 9: still reported, the directive above is void
}

func unknownCheck(a, b float64) bool {
	//lint:ignore nosuchcheck the check ID does not exist
	return a == b // line 14: still reported
}

func bareDirective(a, b float64) bool {
	//lint:ignore
	return a == b // line 19: still reported
}
