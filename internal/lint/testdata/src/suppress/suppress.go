// Package suppress exercises the //lint:ignore machinery: directives on
// the offending line and the line above, multi-check lists, and the
// "all" wildcard. A directive for the wrong check must not suppress.
package suppress

import "math/rand"

func suppressedAbove(a, b float64) bool {
	//lint:ignore floatcmp exactness is the point of this fixture
	return a == b
}

func suppressedTrailing(a, b float64) bool {
	return a == b //lint:ignore floatcmp trailing-comment placement works too
}

func suppressedMulti(a, b float64) float64 {
	//lint:ignore floatcmp,detrand one directive can cover several checks
	if a == b && rand.Float64() > 0.5 {
		return 1
	}
	return 0
}

func suppressedAll(work func()) {
	//lint:ignore all the wildcard silences every check on the next line
	go work()
}

func wrongCheckDoesNotSuppress(a, b float64) bool {
	//lint:ignore errdrop a directive for a different check must not silence floatcmp // want "stale directive: no \"errdrop\" diagnostic is suppressed here anymore"
	return a == b // want "\[floatcmp\] floating-point == comparison"
}

func farDirectiveDoesNotSuppress(a, b float64) bool {
	//lint:ignore floatcmp a directive two lines up is out of range // want "stale directive: no \"floatcmp\" diagnostic is suppressed here anymore"

	return a == b // want "\[floatcmp\] floating-point == comparison"
}
