// Package detrand seeds wall-clock reads and global-rand draws
// (violations) next to the seeded, threaded randomness the analyzer
// permits.
package detrand

import (
	"math/rand"
	"time"
)

func clocks() time.Duration {
	start := time.Now()         // want "\[detrand\] time.Now outside internal/obs"
	_ = time.Since(start)       // want "\[detrand\] time.Since outside internal/obs"
	_ = time.Until(start)       // want "\[detrand\] time.Until outside internal/obs"
	return 5 * time.Millisecond // the time package's types and constants are fine
}

func globalRand() float64 {
	_ = rand.Intn(10)                  // want "\[detrand\] global rand.Intn draws from the shared math/rand source"
	rand.Shuffle(3, func(i, j int) {}) // want "\[detrand\] global rand.Shuffle draws from the shared math/rand source"
	return rand.Float64()              // want "\[detrand\] global rand.Float64 draws from the shared math/rand source"
}

func seededRand() float64 {
	rng := rand.New(rand.NewSource(1)) // constructors take an explicit seed: allowed
	_ = rng.Intn(10)                   // methods on a threaded *rand.Rand: allowed
	return rng.Float64()
}
