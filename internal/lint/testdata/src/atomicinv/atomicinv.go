// Package atomicinv seeds the two invariant breaches the analyzer
// hunts: plain reads/writes of state that is accessed through
// sync/atomic elsewhere (one racy access voids every atomic one), and
// mutation of values already published to concurrent readers through
// atomic.Pointer/atomic.Value stores. Sanctioned shapes — &x straight
// into an atomic call, method calls on typed atomics, address-of to
// pass an atomic along, rebinding a published pointer variable — sit
// next to each violation.
package atomicinv

import "sync/atomic"

// stats mixes function-style atomic access with plain access to the
// same field.
type stats struct {
	n     int64
	clean int64 // never touched atomically; plain access is fine
}

func (s *stats) inc() {
	atomic.AddInt64(&s.n, 1) // the &s.n operand is the sanctioned access
}

func (s *stats) reset() {
	s.n = 0     // want "\[atomicinv\] non-atomic access to n, which is accessed via sync/atomic elsewhere"
	s.clean = 0 // not an atomic target
}

func (s *stats) read() int64 {
	return s.n // want "\[atomicinv\] non-atomic access to n"
}

func (s *stats) doubleCount() {
	// The sanction is precise: only the &s.n operand is exempt, the
	// second argument is still a plain racy read.
	atomic.AddInt64(&s.n, s.n) // want "\[atomicinv\] non-atomic access to n"
}

func (s *stats) suppressedReset() {
	//lint:ignore atomicinv runs in the constructor, before any reader goroutine exists
	s.n = 0
}

var hits int64

func bump() {
	atomic.AddInt64(&hits, 1)
}

func snapshotHits() int64 {
	return atomic.LoadInt64(&hits) // sanctioned load
}

func leakHits() int64 {
	return hits // want "\[atomicinv\] non-atomic access to hits"
}

// holder exercises the typed sync/atomic API.
type holder struct {
	flag atomic.Bool
	n    atomic.Int64
}

func (h *holder) set() {
	h.flag.Store(true) // method receiver is a sanctioned use
	h.n.Add(1)
}

func (h *holder) copyOut() atomic.Bool {
	return h.flag // want "\[atomicinv\] atomic\.Bool value used non-atomically"
}

func (h *holder) addr() *atomic.Int64 {
	return &h.n // address-of passes the atomic along without copying it
}

func slotStore(slots []atomic.Int64, i int) {
	slots[i].Store(0) // indexing on the way to a method call is fine
}

// snapshot is the payload published through the atomic pointers below.
type snapshot struct {
	iter    int
	inertia float64
}

var current atomic.Pointer[snapshot]
var box atomic.Value

func publishPointer(iter int) {
	s := &snapshot{iter: iter}
	current.Store(s)
	s.inertia = 1.5 // want "\[atomicinv\] s is mutated after being published via atomic\.Pointer\.Store"
}

func publishAddr(iter int) {
	var s snapshot
	s.iter = iter // writes before the store build the snapshot; fine
	current.Store(&s)
	s.inertia = 2.5 // want "\[atomicinv\] s is mutated after being published via atomic\.Pointer\.Store"
}

func publishValue() {
	s := &snapshot{iter: 1}
	box.Store(s)
	s.iter = 2 // want "\[atomicinv\] s is mutated after being published via atomic\.Value\.Store"
}

func publishClean(iter int) {
	s := &snapshot{iter: iter, inertia: 0.5}
	current.Store(s)
	s = &snapshot{iter: iter + 1} // rebinding the variable is not a write through it
	current.Store(s)
}
