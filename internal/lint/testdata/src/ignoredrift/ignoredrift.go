// Package ignoredrift seeds live, stale, and pinned //lint:ignore
// directives. Staleness is judged against the FULL registry regardless
// of -checks, so a directive for a non-selected check that still fires
// is live; a directive suppressing nothing at all is reported at its own
// position; and a directive listing ignoredrift among its own checks
// pins itself (and stale neighbors) in place. The want comments ride
// inside the stale directives' reason text: the report lands on the
// directive's line, where a separate comment cannot sit.
package ignoredrift

func live(a, b float64) bool {
	//lint:ignore floatcmp exactness is the point here; the directive still earns its keep
	return a == b
}

func liveTrailing(a, b float64) bool {
	return a == b //lint:ignore floatcmp trailing directives are credited too
}

func stale(a, b float64) bool {
	//lint:ignore floatcmp the comparison below was rewritten; nothing fires // want "stale directive: no \"floatcmp\" diagnostic is suppressed here anymore; delete it"
	return a < b
}

func staleTrailing(a, b float64) bool {
	return a < b //lint:ignore detrand ordering never tripped detrand // want "stale directive: no \"detrand\" diagnostic is suppressed here anymore"
}

func staleMulti(m map[string]bool) int {
	//lint:ignore floatcmp,maporder neither check fires on a plain len call // want "stale directive: no \"floatcmp,maporder\" diagnostic is suppressed here anymore"
	return len(m)
}

func halfLive(a, b float64) bool {
	//lint:ignore floatcmp,detrand one live check keeps the whole directive
	return a == b
}

func keepPin(a, b float64) bool {
	//lint:ignore floatcmp,ignoredrift pinned: the exact comparison returns under a build tag
	return a < b
}

func pinnedNeighbor(a, b float64) bool {
	//lint:ignore ignoredrift the directive below is kept deliberately through a migration
	//lint:ignore floatcmp kept while the comparison is rewritten
	return a < b
}

func unsuppressed(a, b float64) bool {
	// floatcmp fires raw here, feeds the staleness accounting, and is
	// then dropped: only ignoredrift was selected.
	return a == b
}
