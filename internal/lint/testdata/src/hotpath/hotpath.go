// Package hotpath seeds every class of //kshape:hotpath contract
// violation next to the shapes the analyzer must accept: allocation
// (builtins, literals, boxing, string work), blocking (channels, locks),
// dynamic dispatch, escape heuristics, transitive propagation through
// un-annotated callees, trust of annotated callees, and reasoned
// suppression. Un-annotated functions are never checked at their own
// declarations — only through annotated callers.
package hotpath

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

//kshape:hotpath
func builtins(m map[string]int, ch chan int, xs []float64) []float64 {
	buf := make([]float64, 8) // want "\[hotpath\] make allocates"
	_ = new(int)              // want "\[hotpath\] new allocates"
	xs = append(xs, 1)        // want "\[hotpath\] append may grow its backing array"
	delete(m, "k")            // want "\[hotpath\] map write \(delete\)"
	close(ch)                 // want "\[hotpath\] channel close"
	println("x")              // want "\[hotpath\] println writes to stderr"
	_ = buf
	return xs
}

//kshape:hotpath
func panics(n int) {
	if n < 0 {
		// Sprintf on the dying invariant path is exempt: it runs once, on
		// the way to a crash.
		panic(fmt.Sprintf("hotpath: negative n %d", n))
	}
	panic("always") // want "\[hotpath\] unguarded panic"
}

//kshape:hotpath
func boxing(n int, xs []float64) interface{} {
	var i interface{} = n // want "\[hotpath\] declaration boxes int into interface"
	_ = i
	var sink interface{}
	sink = xs // want "\[hotpath\] assignment boxes \[\]float64 into interface"
	_ = sink
	take(n)                // want "\[hotpath\] argument boxes int into interface"
	return interface{}(xs) // want "\[hotpath\] conversion boxes \[\]float64 into interface"
}

func take(v interface{}) { _ = v }

//kshape:hotpath
func conversions(bs []byte, s string) (string, []byte) {
	t := string(bs) // want "\[hotpath\] slice-to-string conversion copies and allocates"
	b := []byte(s)  // want "\[hotpath\] string-to-slice conversion copies and allocates"
	return t, b
}

//kshape:hotpath
func formats(xs []float64) {
	// One line, three findings: the materialized variadic slice, the
	// boxed argument, and the banned fmt call itself.
	fmt.Println(xs) // want "\[hotpath\] variadic call materializes its argument slice" "\[hotpath\] argument boxes \[\]float64 into interface" "\[hotpath\] fmt\.Println formats and allocates"
}

//kshape:hotpath
func spread(vs []interface{}) {
	sink2(vs...) // spreading an existing slice materializes nothing
}

func sink2(vs ...interface{}) {}

//kshape:hotpath
func dispatch(s fmt.Stringer, f func() int) int {
	_ = s.String() // want "\[hotpath\] dynamic dispatch through interface method String"
	return f()     // want "\[hotpath\] indirect call through a function value"
}

//kshape:hotpath
func literals(xs []float64) float64 {
	f := func(v float64) float64 { return v * 2 } // want "\[hotpath\] function literal allocates a closure"
	_ = f
	total := func() float64 { // immediately invoked: no closure escape
		t := 0.0
		for _, v := range xs {
			t += v
		}
		return t
	}()
	return total
}

type pair struct{ a, b int }

//kshape:hotpath
func composites() int {
	xs := []int{1, 2, 3}        // want "\[hotpath\] slice literal allocates"
	m := map[string]int{"a": 1} // want "\[hotpath\] map literal allocates"
	s := &pair{1, 2}            // want "\[hotpath\] &fix/hotpath\.pair literal allocates"
	v := pair{3, 4}             // plain struct literal is a stack value
	return xs[0] + m["a"] + s.a + v.b
}

//kshape:hotpath
func addresses(n int64) *int64 {
	var acc int64
	atomic.AddInt64(&acc, n) // &acc straight into a sync/atomic call is sanctioned
	p := &acc                // want "\[hotpath\] address of local acc may force a heap escape"
	return p
}

//kshape:hotpath
func mapAccess(m map[string]int) int {
	m["k"] = 1    // want "\[hotpath\] map write in a hot-path function"
	m["k"]++      // want "\[hotpath\] map write in a hot-path function"
	return m["k"] // map reads are allocation-free
}

//kshape:hotpath
func concat(a, b string) string {
	const pre = "k" + "shape" // constant-folded concatenation is free
	c := a + b                // want "\[hotpath\] string concatenation allocates"
	c += a                    // want "\[hotpath\] string concatenation allocates"
	return pre + c            // want "\[hotpath\] string concatenation allocates"
}

//kshape:hotpath
func blocking(ch chan int, done chan struct{}) {
	ch <- 1  // want "\[hotpath\] channel send may block"
	<-ch     // want "\[hotpath\] channel receive may block"
	select { // want "\[hotpath\] select statement may block"
	case <-done: // want "\[hotpath\] channel receive may block"
	default:
	}
	go drain(ch)    // want "\[hotpath\] go statement spawns a goroutine"
	defer drain(ch) // want "\[hotpath\] defer in a hot-path function"
}

func drain(ch chan int) {
	for range ch {
	}
}

//kshape:hotpath
func locks(mu *sync.Mutex, ints []int) {
	mu.Lock()        // want "\[hotpath\] sync\.Mutex\.Lock: mutex/pool/once operations block or allocate"
	sort.Ints(ints)  // want "\[hotpath\] call into package sort, which is not on the hot-path allowlist"
	mu.Unlock()      // want "\[hotpath\] sync\.Mutex\.Unlock"
	_ = math.Sqrt(2) // math is on the allowlist
}

// mid and deep are un-annotated: their violations must surface at the
// annotated call site below, with the deep position named in the message.
func mid(n int) []float64 {
	return deep(n)
}

func deep(n int) []float64 {
	out := make([]float64, n)
	return append(out, 1)
}

//kshape:hotpath
func transitive(n int) []float64 {
	return mid(n) // want "call to mid reaches a hot-path violation: make allocates" "call to mid reaches a hot-path violation: append may grow its backing array"
}

// pingPongA and pingPongB are mutually recursive and un-annotated: the
// cycle must terminate the transitive walk while still surfacing the
// allocation inside it once.
func pingPongA(n int) int {
	if n == 0 {
		return 0
	}
	return pingPongB(n - 1)
}

func pingPongB(n int) int {
	buf := make([]int, 1)
	return pingPongA(n) + buf[0]
}

//kshape:hotpath
func cyclic(n int) int {
	return pingPongA(n) // want "call to pingPongA reaches a hot-path violation: make allocates"
}

//kshape:hotpath
func recurse(n int) int {
	if n <= 1 {
		return 1
	}
	return n * recurse(n-1) // annotated self-recursion is trusted at the call site
}

//kshape:hotpath
func trusted(xs []float64) float64 {
	return kernel(xs) // annotated callees are trusted at the call site
}

//kshape:hotpath
func kernel(xs []float64) float64 {
	t := 0.0
	for _, v := range xs {
		t += v * v
	}
	return t
}

//kshape:hotpath
func suppressed(n int) []float64 {
	//lint:ignore hotpath the caller amortizes this one-time buffer build
	return make([]float64, n)
}

//kshape:hotpath
func clean(xs []float64, q *pair) float64 {
	total := 0.0
	for i := range xs {
		total += xs[i] * float64(i) // numeric conversions are free
	}
	total += math.Sqrt(total)
	v := pair{1, 2} // struct value stays on the stack
	q.a = v.a       // field writes through a pointer are plain stores
	return total
}
