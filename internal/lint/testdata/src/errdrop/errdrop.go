// Package errdrop seeds silently discarded error returns (violations)
// next to the allowlisted terminal writes, infallible in-memory writers,
// and explicit discards.
package errdrop

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

type report struct {
	strings.Builder // embedding makes the wrapper infallible too
}

func violations(w io.Writer, f *os.File) {
	fmt.Fprintln(w, "hello") // want "\[errdrop\] error returned by fmt.Fprintln is silently discarded"
	f.Sync()                 // want "\[errdrop\] error returned by f.Sync is silently discarded"
	f.Close()                // want "\[errdrop\] error returned by f.Close is silently discarded"
	io.WriteString(w, "x")   // want "\[errdrop\] error returned by io.WriteString is silently discarded"
	os.Remove("gone")        // want "\[errdrop\] error returned by os.Remove is silently discarded"
}

func allowlisted(b *strings.Builder, buf *bytes.Buffer, r *report) {
	fmt.Println("terminal")                // fmt.Print* writes to stdout
	fmt.Printf("%d\n", 1)                  //
	fmt.Fprintf(os.Stdout, "stdout\n")     // explicit stdout
	fmt.Fprintln(os.Stderr, "stderr")      // explicit stderr
	fmt.Fprintf(b, "in-memory %d\n", 2)    // strings.Builder cannot fail
	fmt.Fprintf(buf, "in-memory %d\n", 3)  // bytes.Buffer cannot fail
	fmt.Fprintf(r, "embedded builder\n")   // embedding propagates infallibility
	b.WriteString("documented nil error")  // Builder methods document err == nil
	buf.WriteByte('x')                     // Buffer methods likewise
	r.WriteString("promoted from Builder") // promoted methods too
}

func explicitDiscard(f *os.File) {
	_ = f.Close()   // visible, reviewable intent: allowed
	defer f.Close() // deferred cleanup: allowed
	n, _ := f.Seek(0, 0)
	_ = n
}

func handled(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}
