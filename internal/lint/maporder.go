package lint

import (
	"go/ast"
	"go/types"
)

// MapOrderAnalyzer flags `range` over a map when the loop body is
// order-sensitive: it appends to a slice, writes through an io.Writer /
// fmt.Fprint*, or concatenates strings. Go randomizes map iteration
// order per run, so any such loop makes output differ between otherwise
// identical invocations — exactly the nondeterminism that once made
// repeated `figures` runs emit different SVG bytes.
//
// The one recognized idiom is key collection: a body that is exactly
// `keys = append(keys, k)` is permitted provided the enclosing function
// also sorts that slice (sort.* or slices.Sort*) — collect-then-sort is
// the sanctioned way to iterate a map deterministically. Order-blind
// bodies (counting, summing, min/max folds) are not flagged.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "disallow order-sensitive bodies under range-over-map unless keys are sorted",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		// Function bodies, innermost-last, so a RangeStmt can find its
		// tightest enclosing function for the collect-then-sort search.
		var fns []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				fns = append(fns, n)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || isTestFile(p.Fset, rs.Pos()) {
				return true
			}
			tv, ok := p.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, ok := tv.Type.Underlying().(*types.Map); !ok {
				return true
			}
			if keysVar := keyCollectionTarget(p.TypesInfo, rs); keysVar != nil {
				if !sortedInFunc(p.TypesInfo, enclosingFunc(fns, rs), keysVar) {
					p.Reportf(rs.Pos(), "map keys collected into %q but never sorted; sort before use so iteration order cannot leak into output", keysVar.Name())
				}
				return true
			}
			if sink := orderSensitiveSink(p.TypesInfo, rs.Body); sink != "" {
				p.Reportf(rs.Pos(), "range over map with an order-sensitive body (%s); iterate sorted keys instead", sink)
			}
			return true
		})
	}
}

// keyCollectionTarget recognizes the one-statement idiom
// `keys = append(keys, k)` (k being the range key) and returns the
// slice variable, or nil when the body is anything else.
func keyCollectionTarget(info *types.Info, rs *ast.RangeStmt) *types.Var {
	keyIdent, ok := rs.Key.(*ast.Ident)
	if !ok || len(rs.Body.List) != 1 {
		return nil
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return nil
	}
	lhs, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if _, ok := info.Uses[fn].(*types.Builtin); !ok {
		return nil
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok || objOf(info, dst) == nil || objOf(info, dst) != objOf(info, lhs) {
		return nil
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || objOf(info, arg) == nil || objOf(info, arg) != objOf(info, keyIdent) {
		return nil
	}
	v, _ := objOf(info, lhs).(*types.Var)
	return v
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// enclosingFunc returns the tightest FuncDecl/FuncLit containing n.
func enclosingFunc(fns []ast.Node, n ast.Node) ast.Node {
	var best ast.Node
	for _, fn := range fns {
		if fn.Pos() <= n.Pos() && n.End() <= fn.End() {
			if best == nil || fn.Pos() >= best.Pos() {
				best = fn
			}
		}
	}
	return best
}

// sortedInFunc reports whether fn contains a sort.* / slices.Sort* call
// whose first argument is the given variable.
func sortedInFunc(info *types.Info, fn ast.Node, v *types.Var) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || len(call.Args) == 0 {
			return true
		}
		_, isSort := pkgFunc(info, call, "sort", "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable")
		if !isSort {
			_, isSort = pkgFunc(info, call, "slices", "Sort", "SortFunc", "SortStableFunc")
		}
		if !isSort {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && objOf(info, id) == types.Object(v) {
			found = true
		}
		return true
	})
	return found
}

// orderSensitiveSink scans a range body for constructs whose effect
// depends on iteration order, returning a description or "".
func orderSensitiveSink(info *types.Info, body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn, ok := n.Fun.(*ast.Ident); ok && fn.Name == "append" {
				if _, ok := info.Uses[fn].(*types.Builtin); ok {
					sink = "append"
					return false
				}
			}
			if name, ok := pkgFunc(info, n, "fmt"); ok {
				sink = "fmt." + name
				return false
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Write", "WriteString", "WriteByte", "WriteRune":
					sink = "write to " + sel.Sel.Name
					return false
				}
			}
		case *ast.SendStmt:
			sink = "channel send"
			return false
		case *ast.AssignStmt:
			// String concatenation accumulates in iteration order.
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 {
				if tv, ok := info.Types[n.Lhs[0]]; ok && tv.Type != nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						sink = "string concatenation"
						return false
					}
				}
			}
		}
		return true
	})
	return sink
}
