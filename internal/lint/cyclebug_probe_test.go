package lint

import "testing"

func TestCycleBugProbe(t *testing.T) {
	p := parseFixture(t, "cyclebug", "fix/cyclebug")
	diags := p.Run([]*Analyzer{HotPathAnalyzer})
	for _, d := range diags {
		t.Logf("%s: %s", d.Position, d.Message)
	}
	if len(diags) != 2 {
		t.Errorf("want 2 findings (one per root), got %d", len(diags))
	}
}
