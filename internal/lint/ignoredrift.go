package lint

// ignoredrift keeps the tree's reasoned //lint:ignore directives honest:
// a directive that no longer suppresses any diagnostic is dead weight —
// the code it excused has moved or been fixed — and is reported as
// stale so it can be deleted (kshapelint -diff prints the removal as a
// unified diff).
//
// Staleness is judged against the FULL analyzer registry regardless of
// -checks: when ignoredrift is selected, Pass.Run executes every other
// analyzer to collect the raw (pre-suppression) diagnostics, counts
// which directives suppressed something, and reports the rest. Raw
// findings from analyzers the user did not select are used only for
// that accounting and are never reported themselves.
//
// A stale report is itself suppressible with
//
//	//lint:ignore ignoredrift <reason>
//
// and a directive whose check list includes ignoredrift is therefore
// self-keeping — the documented way to pin a directive that guards a
// condition which only appears under edits (a "keep pin").
//
// The real work lives in Pass.Run, which owns the suppression machinery
// this analyzer audits; the Run hook here is intentionally empty.
var IgnoreDriftAnalyzer = &Analyzer{
	Name: "ignoredrift",
	Doc:  "//lint:ignore directives must still suppress at least one diagnostic",
	Run:  func(*Pass) {},
}

const ignoreDriftName = "ignoredrift"
