package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineAnalyzer keeps all fan-out inside the deterministic pool:
// outside kshape/internal/par, `go` statements and raw sync.WaitGroup
// plumbing are banned. PR 2's determinism guarantees (order-preserving
// reductions, smallest-index tie-breaks, worker-count-invariant kernel
// counters) hold only because every parallel loop goes through par.For /
// par.Sum / par.ArgMin; a bare goroutine reintroduces scheduling order
// as an input.
var GoroutineAnalyzer = &Analyzer{
	Name: "goroutine",
	Doc:  "disallow go statements and raw sync.WaitGroup outside internal/par",
	Run:  runGoroutine,
}

// parPkgPath is the one package allowed to spawn goroutines: the
// deterministic worker pool everything else is built on.
const parPkgPath = "kshape/internal/par"

func runGoroutine(p *Pass) {
	if p.PkgPath == parPkgPath {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !isTestFile(p.Fset, n.Pos()) {
					p.Reportf(n.Pos(), "go statement outside internal/par; use par.For or a par.Pool so execution stays deterministic")
				}
			case *ast.Ident:
				if isTestFile(p.Fset, n.Pos()) {
					return true
				}
				if obj := p.TypesInfo.Uses[n]; obj != nil {
					if tn, ok := obj.(*types.TypeName); ok && tn.Pkg() != nil &&
						tn.Pkg().Path() == "sync" && tn.Name() == "WaitGroup" {
						p.Reportf(n.Pos(), "raw sync.WaitGroup outside internal/par; fan-out must flow through the deterministic pool")
					}
				}
			}
			return true
		})
	}
}
