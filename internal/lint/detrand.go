package lint

import (
	"go/ast"
	"strings"
)

// DetRandAnalyzer enforces the repo's bit-determinism contract: library
// code must not read the wall clock or draw from ambient randomness.
//
//   - time.Now / time.Since / time.Until are permitted only inside
//     kshape/internal/obs — every other package measures time through
//     obs.NewStopwatch, so the clock has exactly one auditable entry
//     point.
//   - math/rand (and math/rand/v2) package-level functions — rand.Intn,
//     rand.Float64, rand.Shuffle, rand.Seed, … — are banned everywhere:
//     they draw from the shared global source, so results depend on what
//     else ran before. Randomness must enter through an explicitly
//     seeded *rand.Rand threaded as a parameter; the constructors
//     rand.New / rand.NewSource / rand.NewZipf (and v2's NewPCG /
//     NewChaCha8) are therefore allowed.
//
// crypto/rand is not flagged: it never feeds numerical results (the obs
// run-ID is the one user).
var DetRandAnalyzer = &Analyzer{
	Name: "detrand",
	Doc:  "disallow wall-clock reads outside internal/obs and global math/rand state",
	Run:  runDetRand,
}

// timeAllowedPrefix is the single package subtree where reading the
// clock is the point (histograms, spans, stopwatches).
const timeAllowedPrefix = "kshape/internal/obs"

// randConstructors take an explicit source/seed and are therefore
// deterministic; everything else at package level draws from the global
// source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDetRand(p *Pass) {
	timeOK := p.PkgPath == timeAllowedPrefix || strings.HasPrefix(p.PkgPath, timeAllowedPrefix+"/")
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isTestFile(p.Fset, call.Pos()) {
				return true
			}
			if !timeOK {
				if name, ok := pkgFunc(p.TypesInfo, call, "time", "Now", "Since", "Until"); ok {
					p.Reportf(call.Pos(), "time.%s outside internal/obs; route timing through obs.NewStopwatch so determinism-sensitive code has no clock access", name)
				}
			}
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				name, ok := pkgFunc(p.TypesInfo, call, path)
				if ok && !randConstructors[name] {
					p.Reportf(call.Pos(), "global rand.%s draws from the shared %s source; thread an explicitly seeded *rand.Rand instead", name, path)
				}
			}
			return true
		})
	}
}
