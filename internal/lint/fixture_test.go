package lint

// The fixture harness: each directory under testdata/src is one small
// package seeded with violations and non-violations. Expectations live in
// the fixtures themselves as trailing comments of the form
//
//	// want "regex" ["regex" ...]
//
// where each regex must match the "[check] message" of a diagnostic
// reported on that line, and every diagnostic must be claimed by a want —
// the same contract as x/tools' analysistest, reimplemented here because
// the linter (and so its tests) must stay stdlib-only.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// parseFixture parses and type-checks testdata/src/<name> as a package
// with the given import path. The path matters: goroutine and detrand
// scope their exemptions by it.
func parseFixture(t *testing.T, name, pkgPath string) *Pass {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	info := NewTypesInfo()
	imp := &moduleImporter{
		local:    map[string]*types.Package{},
		std:      importer.Default(),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", dir, err)
	}
	return &Pass{Fset: fset, Files: files, Pkg: tpkg, TypesInfo: info, PkgPath: pkgPath}
}

// want is one expectation: a diagnostic matching rx at file:line.
type want struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants scans every fixture file of the pass for want comments.
func collectWants(t *testing.T, p *Pass) []*want {
	t.Helper()
	var wants []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				quoted := quotedRE.FindAllString(m[1], -1)
				if len(quoted) == 0 {
					t.Fatalf("%s: want comment with no quoted pattern: %s", pos, c.Text)
				}
				for _, q := range quoted {
					rx, err := regexp.Compile(q[1 : len(q)-1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

// checkFixture runs the analyzers over the fixture package and matches
// diagnostics against the want comments in both directions.
func checkFixture(t *testing.T, name, pkgPath string, analyzers []*Analyzer) {
	t.Helper()
	p := parseFixture(t, name, pkgPath)
	wants := collectWants(t, p)
	diags := p.Run(analyzers)
	for _, d := range diags {
		text := fmt.Sprintf("[%s] %s", d.Check, d.Message)
		claimed := false
		for _, w := range wants {
			if !w.hit && w.file == d.Position.Filename && w.line == d.Position.Line && w.rx.MatchString(text) {
				w.hit = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic at %s: %s", d.Position, text)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

func TestFloatCmpFixture(t *testing.T) {
	checkFixture(t, "floatcmp", "fix/floatcmp", []*Analyzer{FloatCmpAnalyzer})
}

func TestDetRandFixture(t *testing.T) {
	checkFixture(t, "detrand", "fix/detrand", []*Analyzer{DetRandAnalyzer})
}

// TestDetRandObsExemption re-checks the same timing fixture under the
// instrumentation subtree's import path: every time.* finding disappears,
// while the global-rand findings stay.
func TestDetRandObsExemption(t *testing.T) {
	p := parseFixture(t, "detrand", "kshape/internal/obs/sub")
	for _, d := range p.Run([]*Analyzer{DetRandAnalyzer}) {
		if strings.Contains(d.Message, "time.") {
			t.Errorf("time finding inside internal/obs subtree should be exempt: %s", d)
		}
	}
}

func TestGoroutineFixture(t *testing.T) {
	checkFixture(t, "goroutine", "fix/goroutine", []*Analyzer{GoroutineAnalyzer})
}

// TestGoroutinParExemption re-checks the goroutine fixture as if it were
// internal/par itself: the one package allowed to spawn goroutines.
func TestGoroutineParExemption(t *testing.T) {
	p := parseFixture(t, "goroutine", "kshape/internal/par")
	if diags := p.Run([]*Analyzer{GoroutineAnalyzer}); len(diags) != 0 {
		t.Errorf("internal/par must be exempt, got %v", diags)
	}
}

func TestMapOrderFixture(t *testing.T) {
	checkFixture(t, "maporder", "fix/maporder", []*Analyzer{MapOrderAnalyzer})
}

func TestErrDropFixture(t *testing.T) {
	checkFixture(t, "errdrop", "fix/errdrop", []*Analyzer{ErrDropAnalyzer})
}

// TestSuppressionFixture exercises the //lint:ignore machinery: valid
// directives silence findings on the same and next line, malformed or
// unknown-check directives are themselves reported under "ignore".
func TestSuppressionFixture(t *testing.T) {
	checkFixture(t, "suppress", "fix/suppress", Analyzers())
}

// TestMalformedDirectives asserts that broken //lint:ignore directives
// (missing reason, unknown check, no operands at all) are reported under
// the "ignore" pseudo-check on the directive's line AND fail to suppress
// the finding beneath them. These lines are asserted from test code
// because a want comment cannot share a line with the directive it
// describes.
func TestMalformedDirectives(t *testing.T) {
	p := parseFixture(t, "badignore", "fix/badignore")
	diags := p.Run(Analyzers())
	got := map[string][]int{}
	for _, d := range diags {
		got[d.Check] = append(got[d.Check], d.Position.Line)
	}
	wantLines := map[string][]int{
		"ignore":   {8, 13, 18}, // the three broken directives
		"floatcmp": {9, 14, 19}, // the comparisons they failed to suppress
	}
	for check, lines := range wantLines {
		if fmt.Sprint(got[check]) != fmt.Sprint(lines) {
			t.Errorf("%s diagnostics on lines %v, want %v", check, got[check], lines)
		}
	}
	if len(diags) != 6 {
		t.Errorf("got %d diagnostics, want 6: %v", len(diags), diags)
	}
}

func TestTestFilesExempt(t *testing.T) {
	p := parseFixture(t, "testexempt", "fix/testexempt")
	if diags := p.Run(Analyzers()); len(diags) != 0 {
		t.Errorf("_test.go files must be exempt from all analyzers, got %v", diags)
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("all", "")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("Select(all) = %d analyzers, err %v", len(all), err)
	}
	one, err := Select("floatcmp", "")
	if err != nil || len(one) != 1 || one[0].Name != "floatcmp" {
		t.Fatalf("Select(floatcmp) = %v, err %v", one, err)
	}
	rest, err := Select("", "errdrop")
	if err != nil || len(rest) != len(Analyzers())-1 {
		t.Fatalf("Select(-errdrop) = %d analyzers, err %v", len(rest), err)
	}
	for _, a := range rest {
		if a.Name == "errdrop" {
			t.Error("disabled analyzer still selected")
		}
	}
	if _, err := Select("nosuch", ""); err == nil {
		t.Error("Select(nosuch) should fail")
	}
	if _, err := Select("", "nosuch"); err == nil {
		t.Error("Select(-nosuch) should fail")
	}
	// Selection order must follow the registry regardless of input order.
	two, err := Select("errdrop,floatcmp", "")
	if err != nil || len(two) != 2 || two[0].Name != "floatcmp" || two[1].Name != "errdrop" {
		t.Fatalf("Select order not registry-stable: %v, err %v", two, err)
	}
}

// TestDiagnosticsSorted verifies Run's position ordering on a fixture
// with findings across several lines.
func TestDiagnosticsSorted(t *testing.T) {
	p := parseFixture(t, "floatcmp", "fix/floatcmp")
	diags := p.Run([]*Analyzer{FloatCmpAnalyzer})
	if len(diags) < 2 {
		t.Fatalf("fixture too small to test ordering: %d findings", len(diags))
	}
	sorted := sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	if !sorted {
		t.Errorf("diagnostics not sorted by position: %v", diags)
	}
}
