package lint

// The interprocedural layer: a Program holds every loaded package of one
// lint invocation and lazily builds the facts the whole-program analyzers
// share — the static call graph between module-local functions, a cached
// per-function hot-path summary (direct allocation/blocking violations
// plus outgoing call sites), the transitive closure of those summaries,
// and the set of objects accessed through the function-style sync/atomic
// API. Everything is computed at most once per invocation and reused by
// every analyzer over every package, which is what keeps the
// interprocedural checks as cheap as the per-file ones: the cost is one
// AST walk per function body, not one per (annotated root × callee).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotPathDirective marks a function as a hot-path kernel: attached to a
// function declaration's doc comment, it asserts the function (and
// everything it calls) executes without allocating, blocking, or
// dynamically dispatching. The hotpath analyzer enforces the assertion.
const hotPathDirective = "//kshape:hotpath"

// hotPathSafePkgs are the standard-library packages hot-path code may
// call into freely: pure float/integer math and lock-free atomics, none
// of which allocate or block.
var hotPathSafePkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// FuncInfo ties one function declaration to its package and its hot-path
// annotation state.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Pkg  *Package
	Hot  bool
}

// violation is one hot-path contract breach inside a function body.
type violation struct {
	pos token.Pos
	msg string
}

// callSite is one statically resolved call to a module-local function.
type callSite struct {
	pos    token.Pos
	callee *types.Func
}

// summary caches the hot-path facts of one function body: its direct
// violations and its outgoing module-local calls, both in source order.
type summary struct {
	direct []violation
	calls  []callSite
}

// Program is the shared interprocedural state of one lint invocation.
// Build it once with NewProgram over every loaded package and attach it
// to each Pass (Pass.Prog); a Pass without one lazily builds a
// single-package Program, which keeps the fixture harness self-contained.
type Program struct {
	fset *token.FileSet
	pkgs []*Package

	fns        map[*types.Func]*FuncInfo
	summaries  map[*types.Func]*summary
	transitive map[*types.Func][]violation
	visiting   map[*types.Func]bool

	// atomicOps maps field/variable objects accessed through the
	// function-style sync/atomic API (atomic.AddInt64(&x, ...)) to the
	// positions of those accesses; nil until first use.
	atomicOps map[types.Object][]token.Pos
}

// NewProgram indexes every function declaration of the given packages.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	prog := &Program{
		fset:       fset,
		pkgs:       pkgs,
		fns:        map[*types.Func]*FuncInfo{},
		summaries:  map[*types.Func]*summary{},
		transitive: map[*types.Func][]violation{},
		visiting:   map[*types.Func]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.fns[obj] = &FuncInfo{Decl: fd, Pkg: pkg, Hot: hasHotPathDirective(fd.Doc)}
			}
		}
	}
	return prog
}

// program returns the pass's attached Program, lazily building a
// single-package one when the driver did not provide a whole-module view
// (fixtures, direct Pass construction).
func (p *Pass) program() *Program {
	if p.Prog == nil {
		p.Prog = NewProgram(p.Fset, []*Package{{
			ImportPath: p.PkgPath,
			Files:      p.Files,
			Types:      p.Pkg,
			Info:       p.TypesInfo,
		}})
	}
	return p.Prog
}

func hasHotPathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == hotPathDirective {
			return true
		}
	}
	return false
}

// summary returns (building and caching on first use) the hot-path facts
// of fn's body.
func (prog *Program) summary(fn *types.Func) *summary {
	if s, ok := prog.summaries[fn]; ok {
		return s
	}
	s := &summary{}
	if fi := prog.fns[fn]; fi != nil {
		prog.summarize(fi, s)
	}
	prog.summaries[fn] = s
	return s
}

// hotViolations returns the transitive hot-path violations reachable
// from fn through un-annotated module-local callees: fn's own direct
// violations plus, recursively, those of every callee that does not
// carry //kshape:hotpath (annotated callees are trusted here — the
// analyzer checks them at their own declaration). Cycles contribute
// nothing beyond their first traversal; results are memoized.
func (prog *Program) hotViolations(fn *types.Func) []violation {
	if vs, ok := prog.transitive[fn]; ok {
		return vs
	}
	if prog.visiting[fn] {
		return nil
	}
	prog.visiting[fn] = true
	sum := prog.summary(fn)
	out := append([]violation(nil), sum.direct...)
	for _, cs := range sum.calls {
		fi := prog.fns[cs.callee]
		if fi == nil || fi.Hot {
			continue
		}
		out = append(out, prog.hotViolations(cs.callee)...)
	}
	delete(prog.visiting, fn)
	prog.transitive[fn] = out
	return out
}

// summarize walks one function body recording direct hot-path violations
// and statically resolved module-local call sites. The walk keeps an
// ancestor stack so context-sensitive rules (panic guards, sanctioned
// &x arguments, immediately invoked literals) see where a node sits.
func (prog *Program) summarize(fi *FuncInfo, s *summary) {
	info := fi.Pkg.Info
	var stack []ast.Node
	v := func(pos token.Pos, format string, args ...any) {
		s.direct = append(s.direct, violation{pos, fmt.Sprintf(format, args...)})
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		// Anything evaluated only to build a panic value runs once, on a
		// dying invariant-violation path; allocation there is irrelevant.
		if inPanicArg(info, stack) {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			prog.checkCall(fi, n, stack, v, s)
		case *ast.GoStmt:
			v(n.Pos(), "go statement spawns a goroutine (allocates and hands off to the scheduler)")
		case *ast.DeferStmt:
			v(n.Pos(), "defer in a hot-path function")
		case *ast.SendStmt:
			v(n.Pos(), "channel send may block")
		case *ast.SelectStmt:
			v(n.Pos(), "select statement may block")
		case *ast.UnaryExpr:
			switch n.Op {
			case token.ARROW:
				v(n.Pos(), "channel receive may block")
			case token.AND:
				checkAddressOf(info, n, stack, v)
			}
		case *ast.CompositeLit:
			checkCompositeLit(info, n, stack, v)
		case *ast.FuncLit:
			if !immediatelyInvoked(n, stack) {
				v(n.Pos(), "function literal allocates a closure; hoist it or inline the loop")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.Types[n.X].Type) && info.Types[n].Value == nil {
				v(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			checkAssign(info, n, v)
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && isMapType(info.Types[ix.X].Type) {
				v(n.Pos(), "map write in a hot-path function")
			}
		case *ast.ValueSpec:
			checkValueSpec(info, n, v)
		}
		return true
	})
}

// checkCall classifies one call expression: violating builtins,
// interface-boxing conversions, banned standard-library packages,
// indirect calls, and — the call-graph edges — statically resolved
// module-local callees.
func (prog *Program) checkCall(fi *FuncInfo, call *ast.CallExpr, stack []ast.Node,
	v func(pos token.Pos, format string, args ...any), s *summary) {
	info := fi.Pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				v(call.Pos(), "%s allocates", b.Name())
			case "append":
				v(call.Pos(), "append may grow its backing array (allocates); size the buffer up front")
			case "delete":
				v(call.Pos(), "map write (delete) in a hot-path function")
			case "close":
				v(call.Pos(), "channel close in a hot-path function")
			case "print", "println":
				v(call.Pos(), "%s writes to stderr", b.Name())
			case "panic":
				if !guarded(stack) {
					v(call.Pos(), "unguarded panic; invariant panics must sit behind a guard condition")
				}
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(info, call, tv.Type, v)
		return
	}
	var callee *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = info.Uses[fun.Sel].(*types.Func)
	case *ast.FuncLit:
		// An invoked literal is statically resolved and its body is part
		// of this function's walk; the literal rule decides whether the
		// closure itself is a violation.
		return
	}
	if callee == nil {
		v(call.Pos(), "indirect call through a function value; hot-path calls must resolve statically")
		return
	}
	if sig, ok := callee.Type().(*types.Signature); ok {
		if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
			v(call.Pos(), "dynamic dispatch through interface method %s", callee.Name())
			return
		}
		checkCallArgs(info, call, sig, v)
	}
	if _, local := prog.fns[callee]; local {
		s.calls = append(s.calls, callSite{call.Pos(), callee})
		return
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return // error.Error and friends are caught by the interface-receiver rule
	}
	switch path := pkg.Path(); {
	case path == "fmt":
		v(call.Pos(), "fmt.%s formats and allocates", callee.Name())
	case path == "sync":
		v(call.Pos(), "sync.%s: mutex/pool/once operations block or allocate; hot paths must stay lock-free", calleeOwner(callee))
	case hotPathSafePkgs[path]:
		// math, math/bits, sync/atomic: pure or lock-free.
	default:
		v(call.Pos(), "call into package %s, which is not on the hot-path allowlist (math, math/bits, sync/atomic)", path)
	}
}

// calleeOwner names a method as Type.Method (Mutex.Lock) and a
// package-level function by its bare name.
func calleeOwner(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// checkConversion flags the converting calls that allocate: boxing a
// concrete value into an interface and string<->slice copies.
func checkConversion(info *types.Info, call *ast.CallExpr, dst types.Type,
	v func(pos token.Pos, format string, args ...any)) {
	if len(call.Args) != 1 {
		return
	}
	src := info.Types[call.Args[0]]
	if src.Type == nil {
		return
	}
	switch {
	case types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Type.Underlying()) && !src.IsNil():
		v(call.Pos(), "conversion boxes %s into interface %s (allocates)", src.Type, dst)
	case isStringType(dst) && isSliceType(src.Type):
		v(call.Pos(), "slice-to-string conversion copies and allocates")
	case isSliceType(dst) && isStringType(src.Type):
		v(call.Pos(), "string-to-slice conversion copies and allocates")
	}
}

// checkCallArgs flags interface boxing of concrete arguments and
// variadic calls that materialize an argument slice.
func checkCallArgs(info *types.Info, call *ast.CallExpr, sig *types.Signature,
	v func(pos token.Pos, format string, args ...any)) {
	nparams := sig.Params().Len()
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= nparams {
		v(call.Pos(), "variadic call materializes its argument slice (allocates)")
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= nparams-1:
			if sl, ok := sig.Params().At(nparams - 1).Type().(*types.Slice); ok && !call.Ellipsis.IsValid() {
				pt = sl.Elem()
			}
		case i < nparams:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.Types[arg]
		if at.Type != nil && !types.IsInterface(at.Type.Underlying()) && !at.IsNil() {
			v(arg.Pos(), "argument boxes %s into interface %s (allocates)", at.Type, pt)
		}
	}
}

// checkAssign flags map writes, string +=, and interface boxing through
// assignment to an interface-typed location.
func checkAssign(info *types.Info, n *ast.AssignStmt, v func(pos token.Pos, format string, args ...any)) {
	for _, lhs := range n.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapType(info.Types[ix.X].Type) {
			v(lhs.Pos(), "map write in a hot-path function")
		}
	}
	if n.Tok == token.ADD_ASSIGN && isStringType(info.Types[n.Lhs[0]].Type) {
		v(n.Pos(), "string concatenation allocates")
	}
	if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		lt := info.Types[lhs]
		rt := info.Types[n.Rhs[i]]
		if lt.Type == nil || rt.Type == nil {
			continue // the blank identifier has no recorded type
		}
		if types.IsInterface(lt.Type.Underlying()) && !types.IsInterface(rt.Type.Underlying()) && !rt.IsNil() {
			v(n.Rhs[i].Pos(), "assignment boxes %s into interface %s (allocates)", rt.Type, lt.Type)
		}
	}
}

// checkValueSpec flags `var x SomeInterface = concrete` declarations.
func checkValueSpec(info *types.Info, spec *ast.ValueSpec, v func(pos token.Pos, format string, args ...any)) {
	if spec.Type == nil {
		return
	}
	dt := info.Types[spec.Type]
	if dt.Type == nil || !types.IsInterface(dt.Type.Underlying()) {
		return
	}
	for _, val := range spec.Values {
		rt := info.Types[val]
		if rt.Type != nil && !types.IsInterface(rt.Type.Underlying()) && !rt.IsNil() {
			v(val.Pos(), "declaration boxes %s into interface %s (allocates)", rt.Type, dt.Type)
		}
	}
}

// checkAddressOf applies the conservative escape heuristic: taking the
// address of a function-local variable is flagged unless the pointer
// goes straight into a sync/atomic call (which never retains it).
func checkAddressOf(info *types.Info, n *ast.UnaryExpr, stack []ast.Node,
	v func(pos token.Pos, format string, args ...any)) {
	id, ok := ast.Unparen(n.X).(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || obj.IsField() || obj.Pkg() == nil || obj.Parent() == obj.Pkg().Scope() {
		return // fields and package-level variables do not stack-escape
	}
	if len(stack) >= 2 {
		if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && isSyncAtomicCall(info, call) {
			return
		}
	}
	v(n.Pos(), "address of local %s may force a heap escape", id.Name)
}

// checkCompositeLit flags slice and map literals (heap-backed); struct
// and array literals are plain stack values. A literal under & is left
// to the address-of rule's message.
func checkCompositeLit(info *types.Info, n *ast.CompositeLit, stack []ast.Node,
	v func(pos token.Pos, format string, args ...any)) {
	t := info.Types[n].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		v(n.Pos(), "slice literal allocates")
	case *types.Map:
		v(n.Pos(), "map literal allocates")
	case *types.Struct, *types.Array:
		if len(stack) >= 2 {
			if ue, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && ue.Op == token.AND {
				v(ue.Pos(), "&%s literal allocates", t)
			}
		}
	}
}

// immediatelyInvoked reports whether the literal is the callee of its
// parent call (func(){...}() does not escape and usually inlines).
func immediatelyInvoked(lit *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	return ok && call.Fun == lit
}

// inPanicArg reports whether the innermost node sits inside the argument
// of a panic call (excluding the call itself).
func inPanicArg(info *types.Info, stack []ast.Node) bool {
	for _, a := range stack[:len(stack)-1] {
		if call, ok := a.(*ast.CallExpr); ok && isBuiltinCall(info, call, "panic") {
			return true
		}
	}
	return false
}

// guarded reports whether any ancestor is a conditional construct — the
// shape of an invariant guard (`if bad { panic(...) }`).
func guarded(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.IfStmt, *ast.CaseClause, *ast.CommClause:
			return true
		}
	}
	return false
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isSyncAtomicCall reports whether the call statically resolves into
// package sync/atomic (functions or methods).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// atomicTargets returns (building on first use) the program-wide set of
// variables and struct fields accessed through the function-style
// sync/atomic API — the objects whose every other access the atomicinv
// analyzer requires to be atomic too.
func (prog *Program) atomicTargets() map[types.Object][]token.Pos {
	if prog.atomicOps != nil {
		return prog.atomicOps
	}
	prog.atomicOps = map[types.Object][]token.Pos{}
	for _, pkg := range prog.pkgs {
		for _, f := range pkg.Files {
			if isTestFile(prog.fset, f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicPkgFunc(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || ue.Op != token.AND {
						continue
					}
					if obj := referencedVar(pkg.Info, ue.X); obj != nil {
						prog.atomicOps[obj] = append(prog.atomicOps[obj], ue.X.Pos())
					}
				}
				return true
			})
		}
	}
	return prog.atomicOps
}

// isAtomicPkgFunc reports a call to a package-level sync/atomic function
// (AddInt64, LoadUint32, CompareAndSwapPointer, ...), as opposed to a
// method on one of its types.
func isAtomicPkgFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// referencedVar resolves the variable or struct-field object an
// address-of operand names: a bare identifier, the field of a selector,
// or the base reached through index expressions (&arr[i].f).
func referencedVar(info *types.Info, expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		return referencedVar(info, e.X)
	}
	return nil
}
