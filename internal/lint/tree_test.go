package lint

// Whole-tree regression tests: the interprocedural analyzers must be
// clean over the real module, and every //kshape:hotpath annotation in
// the tree must be backed by a testing.AllocsPerRun == 0 harness (or a
// written reason why none exists) via the manifest below. Adding an
// annotation without extending the manifest — or letting a harness rot
// away while its manifest entry still names it — fails here.

import (
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// hotPathHarnesses maps every annotated function (types.Func.FullName)
// to the AllocsPerRun test in its own package that pins it at zero
// allocations. A value not starting with "Test" is a reason string
// explaining why no direct harness exists; it must be non-empty.
var hotPathHarnesses = map[string]string{
	"(*kshape/internal/dist.SBDQuery).Distance":        "TestQueryDistanceAllocFree",
	"(*kshape/internal/dist.SBDQuery).DistanceScratch": "TestQueryDistanceAllocFree",
	"(*kshape/internal/dist.SBDQuery).Nearest":         "TestQueryIntoNearestAllocFree",
	"(*kshape/internal/dist.SBDBatch).PairDistance":    "TestPairDistanceAllocFree",
	"(*kshape/internal/dist.SBDBatch).pairwiseRows":    "TestPairwiseIntoRowLoopAllocFree",
	"kshape/internal/dist.scanCC":                      "TestQueryDistanceAllocFree",
	"(*kshape/internal/fft.RFFT).Forward":              "TestRFFTRoundTripAllocFree",
	"(*kshape/internal/fft.RFFT).Inverse":              "TestRFFTRoundTripAllocFree",
	"(*kshape/internal/fft.RFFT).transformHalf":        "TestRFFTRoundTripAllocFree",
	"kshape/internal/fft.conj":                         "TestRFFTRoundTripAllocFree",
	"kshape/internal/ts.ShiftInto":                     "TestShiftIntoAllocFree",
	"kshape/internal/par.sumFloatRange":                "TestReductionInnerLoopsAllocFree",
	"kshape/internal/par.sumFloats":                    "TestReductionInnerLoopsAllocFree",
	"kshape/internal/par.sumIntRange":                  "TestReductionInnerLoopsAllocFree",
	"kshape/internal/par.scanExtreme":                  "TestReductionInnerLoopsAllocFree",
	"kshape/internal/core.nearestCentroid":             "TestAssignmentScanAllocFree",
	"kshape/internal/core.alignMembers":                "TestAlignMembersAllocFree",
	"kshape/internal/core.equalFloatBits":              "TestAssignmentScanAllocFree",
	"kshape/internal/core.isAllZero":                   "TestAssignmentScanAllocFree",
}

// loadTree loads and type-checks the whole module once per test that
// needs it (the go/types work dominates; skipped in -short runs).
func loadTree(t *testing.T) (*token.FileSet, []*Package) {
	t.Helper()
	if testing.Short() {
		t.Skip("whole-module load is slow; skipped in -short")
	}
	fset := token.NewFileSet()
	pkgs, err := Load(fset, "../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	return fset, pkgs
}

// TestTreeInterprocClean is the acceptance gate in test form:
// hotpath, atomicinv, and ignoredrift report nothing on the real tree.
func TestTreeInterprocClean(t *testing.T) {
	fset, pkgs := loadTree(t)
	analyzers, err := Select("hotpath,atomicinv,ignoredrift", "")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(fset, pkgs)
	for _, pkg := range pkgs {
		pass := &Pass{
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			PkgPath:   pkg.ImportPath,
			Prog:      prog,
		}
		for _, d := range pass.Run(analyzers) {
			t.Errorf("%s", d)
		}
	}
}

// TestHotPathAnnotationsHaveHarnesses cross-references the annotated
// functions in the tree against hotPathHarnesses in both directions and
// verifies every named harness actually exists in that package's
// _test.go files.
func TestHotPathAnnotationsHaveHarnesses(t *testing.T) {
	fset, pkgs := loadTree(t)
	prog := NewProgram(fset, pkgs)
	annotated := map[string]*FuncInfo{}
	for fn, fi := range prog.fns {
		if fi.Hot {
			annotated[fn.FullName()] = fi
		}
	}
	var names []string
	for name := range annotated {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		entry, ok := hotPathHarnesses[name]
		if !ok {
			t.Errorf("%s is annotated //kshape:hotpath but missing from hotPathHarnesses; add its AllocsPerRun harness (or a reason)", name)
			continue
		}
		if entry == "" {
			t.Errorf("%s has an empty manifest entry; name a Test harness or write a reason", name)
			continue
		}
		if !strings.HasPrefix(entry, "Test") {
			continue // a written reason stands in for a harness
		}
		dir := annotated[name].Pkg.Dir
		if !testFuncExists(t, dir, entry) {
			t.Errorf("%s names harness %s, but no _test.go in %s defines it", name, entry, dir)
		}
	}
	for name := range hotPathHarnesses {
		if _, ok := annotated[name]; !ok {
			t.Errorf("manifest entry %s matches no //kshape:hotpath function; the annotation moved or was removed", name)
		}
	}
}

// testFuncExists scans dir's _test.go files for a test function with
// the given name.
func testFuncExists(t *testing.T, dir, name string) bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	needle := "func " + name + "("
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading %s: %v", e.Name(), err)
		}
		if strings.Contains(string(src), needle) {
			return true
		}
	}
	return false
}
