package lint

import (
	"go/ast"
	"go/types"
)

// ErrDropAnalyzer flags expression statements that silently discard an
// error result. A swallowed write or close error means a truncated
// report or dataset file looks like a success — the experiment tables
// must either be complete or fail loudly.
//
// Allowlisted (errors are impossible or the destination is the user's
// terminal, where the process is about to exit anyway):
//   - fmt.Print / fmt.Printf / fmt.Println;
//   - fmt.Fprint* to os.Stdout or os.Stderr;
//   - fmt.Fprint* and Write* methods whose destination is a
//     strings.Builder or bytes.Buffer (including types embedding one) —
//     those writers are documented never to return a non-nil error.
//
// Explicit discards (`_ = f()`) and deferred calls are not flagged: the
// blank assignment is a visible, reviewable statement of intent.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "disallow silently discarded error returns",
	Run:  runErrDrop,
}

var errType = types.Universe.Lookup("error").Type()

func runErrDrop(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok || isTestFile(p.Fset, call.Pos()) {
				return true
			}
			if !returnsError(p.TypesInfo, call) || errAllowlisted(p.TypesInfo, call) {
				return true
			}
			p.Reportf(call.Pos(), "error returned by %s is silently discarded; handle it or assign to _ deliberately", types.ExprString(call.Fun))
			return true
		})
	}
}

// returnsError reports whether any result of the call is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() { // conversion, not a call
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false // builtin
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			return true
		}
	}
	return false
}

func errAllowlisted(info *types.Info, call *ast.CallExpr) bool {
	// fmt.Print* always writes to stdout.
	if _, ok := pkgFunc(info, call, "fmt", "Print", "Printf", "Println"); ok {
		return true
	}
	// fmt.Fprint* to stdout/stderr or to an infallible in-memory writer.
	if _, ok := pkgFunc(info, call, "fmt", "Fprint", "Fprintf", "Fprintln"); ok && len(call.Args) > 0 {
		w := ast.Unparen(call.Args[0])
		if sel, ok := w.(*ast.SelectorExpr); ok {
			if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" &&
				(obj.Name() == "Stdout" || obj.Name() == "Stderr") {
				return true
			}
		}
		if tv, ok := info.Types[w]; ok && tv.Type != nil && isInfallibleWriter(tv.Type) {
			return true
		}
	}
	// Methods promoted from strings.Builder / bytes.Buffer
	// (WriteString, WriteByte, …) document a nil error.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj, ok := info.Uses[sel.Sel].(*types.Func); ok {
			if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
				switch namedPath(recv.Type()) {
				case "strings.Builder", "bytes.Buffer":
					return true
				}
			}
		}
	}
	return false
}

// isInfallibleWriter reports whether t is (a pointer to)
// strings.Builder / bytes.Buffer, or a struct embedding one.
func isInfallibleWriter(t types.Type) bool {
	switch namedPath(t) {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && isInfallibleWriter(f.Type()) {
			return true
		}
	}
	return false
}
