package lint

// atomicinv enforces the two invariants the lock-free layers (the flight
// recorder's atomic.Pointer ring, the progress publisher's snapshot
// pointer, the obs counters) depend on:
//
//  1. Atomicity is all-or-nothing. A variable or struct field accessed
//     anywhere through sync/atomic — the function-style API
//     (atomic.AddInt64(&x, 1)) or the typed API (a value of type
//     atomic.Int64, atomic.Pointer[T], ...) — must never be read or
//     written as plain memory elsewhere: one racy plain access voids
//     every atomic one.
//  2. Published means frozen. A value stored into an atomic.Pointer or
//     atomic.Value snapshot is visible to concurrent readers the moment
//     Store returns; mutating it afterwards (within the publishing
//     function, which is where the analyzer can see it) is a data race
//     even though every pointer operation was atomic.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicInvAnalyzer checks that atomically accessed state is never
// touched non-atomically and that published snapshots are not mutated.
var AtomicInvAnalyzer = &Analyzer{
	Name: "atomicinv",
	Doc:  "fields accessed via sync/atomic must never be accessed non-atomically; published atomic.Pointer values must not be mutated",
	Run:  runAtomicInv,
}

func runAtomicInv(p *Pass) {
	prog := p.program()
	targets := prog.atomicTargets()
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			continue
		}
		checkPlainAccess(p, f, targets)
		checkTypedMisuse(p, f)
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkWriteAfterPublish(p, fd)
			}
		}
	}
}

// checkPlainAccess flags every use of a function-style-atomic object
// that is not itself the sanctioned &x argument of a sync/atomic call.
// The sanction is precise: only the operand of the & that is passed
// directly to the atomic call is exempt, so the second operand of
// atomic.AddInt64(&s.n, s.n) is still caught.
func checkPlainAccess(p *Pass, f *ast.File, targets map[types.Object][]token.Pos) {
	if len(targets) == 0 {
		return
	}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if _, isTarget := targets[obj]; !isTarget {
			return true
		}
		if sanctionedAtomicOperand(p.TypesInfo, stack) {
			return true
		}
		p.Reportf(id.Pos(), "non-atomic access to %s, which is accessed via sync/atomic elsewhere; use the atomic API for every access", id.Name)
		return true
	})
}

// sanctionedAtomicOperand reports whether the innermost node sits under
// a &x expression passed directly as an argument of a sync/atomic call.
func sanctionedAtomicOperand(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		ue, ok := stack[i].(*ast.UnaryExpr)
		if !ok || ue.Op != token.AND {
			continue
		}
		call, ok := stack[i-1].(*ast.CallExpr)
		if !ok || !isAtomicPkgFunc(info, call) {
			return false
		}
		for _, arg := range call.Args {
			if arg == ue {
				return true
			}
		}
		return false
	}
	return false
}

// checkTypedMisuse flags value uses of sync/atomic-typed expressions
// (atomic.Int64, atomic.Pointer[T], ...) outside the two legitimate
// shapes: receiving a method call (x.Load()) and having their address
// taken (&x, to pass the atomic along). Anything else — assignment,
// comparison, function argument — copies or reads the raw struct,
// bypassing the atomic protocol.
func checkTypedMisuse(p *Pass, f *ast.File) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch expr.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		default:
			return true
		}
		tv, ok := p.TypesInfo.Types[expr]
		if !ok || !tv.IsValue() {
			return true
		}
		name, ok := syncAtomicTypeName(tv.Type)
		if !ok {
			return true
		}
		switch parent := enclosing(stack, 2).(type) {
		case *ast.SelectorExpr:
			return true // receiver of a method access (x.Load, x.Store, ...)
		case *ast.UnaryExpr:
			if parent.Op == token.AND {
				return true // address taken to pass the atomic along
			}
		case *ast.IndexExpr:
			if parent.X == expr {
				return true // slots[i] on the way to slots[i].Store(...)
			}
		}
		p.Reportf(expr.Pos(), "atomic.%s value used non-atomically; only method calls and address-of are allowed", name)
		return true
	})
}

// enclosing returns the nth enclosing node of the innermost one,
// skipping parentheses (n=2 is the immediate parent).
func enclosing(stack []ast.Node, n int) ast.Node {
	i := len(stack) - n
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); !ok {
			return stack[i]
		}
		i--
	}
	return nil
}

// syncAtomicTypeName returns the sync/atomic type name when t is (a
// pointer to) one of the package's named types.
func syncAtomicTypeName(t types.Type) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
		return "", false
	}
	return named.Obj().Name(), true
}

// publication is one X.Store(arg) of an atomic.Pointer / atomic.Value:
// the object whose memory became shared, and whether it was published
// through a pointer variable (writes *through* it are violations) or by
// address (&obj: every later write to obj is a violation).
type publication struct {
	pos    token.Pos
	obj    *types.Var
	typed  string // "Pointer" or "Value", for the message
	byAddr bool   // published as &obj rather than an already-pointer variable
}

// checkWriteAfterPublish scans one function for stores into
// atomic.Pointer/atomic.Value followed by mutation of the stored value.
func checkWriteAfterPublish(p *Pass, fd *ast.FuncDecl) {
	var pubs []publication
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Store" {
			return true
		}
		recvName, ok := syncAtomicTypeName(p.TypesInfo.Types[sel.X].Type)
		if !ok || (recvName != "Pointer" && recvName != "Value") {
			return true
		}
		switch arg := ast.Unparen(call.Args[0]).(type) {
		case *ast.Ident:
			if v, ok := p.TypesInfo.Uses[arg].(*types.Var); ok {
				if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
					pubs = append(pubs, publication{call.Pos(), v, recvName, false})
				}
			}
		case *ast.UnaryExpr:
			if arg.Op == token.AND {
				if id, ok := ast.Unparen(arg.X).(*ast.Ident); ok {
					if v, ok := p.TypesInfo.Uses[id].(*types.Var); ok {
						pubs = append(pubs, publication{call.Pos(), v, recvName, true})
					}
				}
			}
		}
		return true
	})
	if len(pubs) == 0 {
		return
	}
	report := func(pos token.Pos, pub publication) {
		p.Reportf(pos, "%s is mutated after being published via atomic.%s.Store at %s; copy before storing or treat the snapshot as immutable",
			pub.obj.Name(), pub.typed, p.Fset.Position(pub.pos))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var lhss []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			lhss = n.Lhs
		case *ast.IncDecStmt:
			lhss = []ast.Expr{n.X}
		default:
			return true
		}
		for _, lhs := range lhss {
			root, deref := lhsRoot(p.TypesInfo, lhs)
			if root == nil {
				continue
			}
			for _, pub := range pubs {
				if root != pub.obj || lhs.Pos() <= pub.pos {
					continue
				}
				// Rebinding the pointer variable itself (v = other) is
				// fine; only writes through it touch published memory.
				// For &obj publications every write to obj does.
				if pub.byAddr || deref {
					report(lhs.Pos(), pub)
				}
			}
		}
		return true
	})
}

// lhsRoot resolves the variable at the base of an assignment target and
// whether the path to it dereferences a pointer (writes through v rather
// than to v). Selecting a field through a pointer-typed base counts as a
// dereference, as do *v and v[i] on pointer/slice bases.
func lhsRoot(info *types.Info, lhs ast.Expr) (*types.Var, bool) {
	deref := false
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			v, ok := info.Uses[e].(*types.Var)
			if !ok {
				return nil, false
			}
			return v, deref
		case *ast.StarExpr:
			deref = true
			lhs = e.X
		case *ast.IndexExpr:
			deref = true
			lhs = e.X
		case *ast.SelectorExpr:
			if t := info.Types[e.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Pointer); ok {
					deref = true
				}
			}
			lhs = e.X
		default:
			return nil, false
		}
	}
}
