package lint

// The -diff renderer: stale-directive findings from ignoredrift become
// a unified diff that deletes them — a dry run only, nothing is ever
// written. Because every edit is a known single-line change (drop a
// full-line directive, trim a trailing one), the diff is assembled
// directly from the line edits instead of running a general diff
// algorithm.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// lineEdit is one single-line change: delete the line outright, or
// replace it (trim a trailing directive comment off code).
type lineEdit struct {
	line    int // 1-based
	del     bool
	replace string
}

const diffContext = 3

// StaleIgnoreDiff renders a unified diff removing the stale //lint:ignore
// directives named by the given ignoredrift diagnostics. Diagnostics
// from other checks are ignored. File paths in hunk headers are made
// relative to baseDir when possible. The returned patch is empty when
// no ignoredrift findings are present.
func StaleIgnoreDiff(diags []Diagnostic, baseDir string) (string, error) {
	byFile := map[string][]Diagnostic{}
	var files []string
	for _, d := range diags {
		if d.Check != ignoreDriftName {
			continue
		}
		if byFile[d.Position.Filename] == nil {
			files = append(files, d.Position.Filename)
		}
		byFile[d.Position.Filename] = append(byFile[d.Position.Filename], d)
	}
	sort.Strings(files)
	var out strings.Builder
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return "", err
		}
		lines := strings.Split(string(src), "\n")
		edits, err := directiveEdits(lines, byFile[file])
		if err != nil {
			return "", fmt.Errorf("%s: %w", file, err)
		}
		rel := file
		if baseDir != "" {
			if abs, err := filepath.Abs(baseDir); err == nil {
				if r, err := filepath.Rel(abs, file); err == nil && !strings.HasPrefix(r, "..") {
					rel = r
				}
			}
		}
		fmt.Fprintf(&out, "--- a/%s\n+++ b/%s\n", rel, rel)
		renderHunks(&out, lines, edits)
	}
	return out.String(), nil
}

// directiveEdits turns stale-directive positions into line edits: a
// directive alone on its line deletes the line; a trailing directive is
// trimmed off, leaving the code. Multiple findings on one line (two
// directives side by side) collapse into the single edit cutting at the
// leftmost one.
func directiveEdits(lines []string, diags []Diagnostic) ([]lineEdit, error) {
	cutAt := map[int]int{} // line -> leftmost directive column
	for _, d := range diags {
		if d.Position.Line < 1 || d.Position.Line > len(lines) {
			return nil, fmt.Errorf("line %d out of range", d.Position.Line)
		}
		if c, ok := cutAt[d.Position.Line]; !ok || d.Position.Column < c {
			cutAt[d.Position.Line] = d.Position.Column
		}
	}
	cutLines := make([]int, 0, len(cutAt))
	for line := range cutAt {
		cutLines = append(cutLines, line)
	}
	sort.Ints(cutLines)
	var edits []lineEdit
	for _, line := range cutLines {
		col := cutAt[line]
		text := lines[line-1]
		if col < 1 || col > len(text)+1 {
			return nil, fmt.Errorf("line %d: column %d out of range", line, col)
		}
		prefix := strings.TrimRight(text[:col-1], " \t")
		if prefix == "" {
			edits = append(edits, lineEdit{line: line, del: true})
		} else {
			edits = append(edits, lineEdit{line: line, replace: prefix})
		}
	}
	return edits, nil
}

// renderHunks prints the unified-diff hunks for one file's edits,
// merging edits whose context windows touch. lines is the file split on
// newlines (the final element after a trailing newline is the empty
// string and is not a line).
func renderHunks(out *strings.Builder, lines []string, edits []lineEdit) {
	nlines := len(lines)
	if nlines > 0 && lines[nlines-1] == "" {
		nlines-- // trailing newline artifact of Split
	}
	delta := 0 // cumulative new-minus-old line offset from prior hunks
	for i := 0; i < len(edits); {
		j := i + 1
		for j < len(edits) && edits[j].line-edits[j-1].line <= 2*diffContext+1 {
			j++
		}
		start := edits[i].line - diffContext
		if start < 1 {
			start = 1
		}
		end := edits[j-1].line + diffContext
		if end > nlines {
			end = nlines
		}
		dels := 0
		byLine := map[int]lineEdit{}
		for _, e := range edits[i:j] {
			byLine[e.line] = e
			if e.del {
				dels++
			}
		}
		oldCount := end - start + 1
		fmt.Fprintf(out, "@@ -%d,%d +%d,%d @@\n", start, oldCount, start+delta, oldCount-dels)
		for line := start; line <= end; line++ {
			e, edited := byLine[line]
			switch {
			case !edited:
				fmt.Fprintf(out, " %s\n", lines[line-1])
			case e.del:
				fmt.Fprintf(out, "-%s\n", lines[line-1])
			default:
				fmt.Fprintf(out, "-%s\n+%s\n", lines[line-1], e.replace)
			}
		}
		delta -= dels
		i = j
	}
}
