package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmpAnalyzer flags == and != between floating-point (or complex)
// operands. The SBD and shape-extraction math (Eq. 9, 13–15) converges
// through epsilon-tolerant checks; an exact comparison silently turns a
// tolerance into a bitwise test and breaks reproducibility across
// FMA/SIMD code paths.
//
// Exemptions:
//   - comparisons against math.Inf(...) — ±Inf sentinels are exact by
//     construction;
//   - _test.go files — exact-copy assertions ("output equals the bytes
//     the reference run produced") are legitimate there;
//   - //lint:ignore floatcmp <reason> for deliberate exact comparisons
//     (e.g. degenerate-range guards before a division).
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "disallow ==/!= on floating-point operands; use an epsilon tolerance",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isTestFile(p.Fset, be.Pos()) {
				return true
			}
			if !isFloatExpr(p.TypesInfo, be.X) && !isFloatExpr(p.TypesInfo, be.Y) {
				return true
			}
			if isInfSentinel(p.TypesInfo, be.X) || isInfSentinel(p.TypesInfo, be.Y) {
				return true
			}
			p.Reportf(be.Pos(), "floating-point %s comparison; use an epsilon tolerance (or //lint:ignore floatcmp <reason> if exactness is intended)", be.Op)
			return true
		})
	}
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isInfSentinel reports whether e is a direct math.Inf(...) call —
// comparing against an infinity sentinel is exact by construction.
func isInfSentinel(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	_, ok = pkgFunc(info, call, "math", "Inf")
	return ok
}
