// Package lint is the repo's static-analysis subsystem: a stdlib-only
// (go/parser, go/ast, go/types, go/importer — no x/tools) framework that
// loads and type-checks every package and runs a registry of analyzers,
// each enforcing an invariant the compiler cannot check but the paper's
// results depend on:
//
//	floatcmp  — no ==/!= on floating-point operands (Eq. 9, 13–15
//	            convergence checks must be epsilon-tolerant)
//	detrand   — no wall-clock or ambient randomness in library code
//	            (bit-determinism of the accuracy tables)
//	goroutine — all fan-out flows through the deterministic pool in
//	            internal/par (order-preserving reductions)
//	maporder  — no unordered map iteration feeding an output
//	errdrop   — no silently discarded error returns
//
// On top of the per-file checks sits an interprocedural layer (Program:
// a shared, cached call graph + per-function summaries over every loaded
// package) powering three whole-program analyzers:
//
//	hotpath     — //kshape:hotpath functions must not allocate, block,
//	              or dispatch dynamically, transitively through
//	              un-annotated callees
//	atomicinv   — state accessed via sync/atomic must never be accessed
//	              non-atomically; values published through atomic.Pointer
//	              must not be mutated after Store
//	ignoredrift — //lint:ignore directives must still suppress something
//
// Diagnostics carry a stable check ID and are suppressible with
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory: a suppression without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a stable check ID, a position, and a
// human-readable message.
type Diagnostic struct {
	Check    string         `json:"check"`
	Position token.Position `json:"position"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Check, d.Message)
}

// Analyzer is one registered check. Run inspects the package held by the
// Pass and reports findings through Pass.Reportf.
type Analyzer struct {
	Name string // stable check ID, e.g. "floatcmp"
	Doc  string // one-line description shown by -list
	Run  func(*Pass)
}

// Analyzers returns the full registry in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		FloatCmpAnalyzer,
		DetRandAnalyzer,
		GoroutineAnalyzer,
		MapOrderAnalyzer,
		ErrDropAnalyzer,
		HotPathAnalyzer,
		AtomicInvAnalyzer,
		IgnoreDriftAnalyzer,
	}
}

// Select resolves enable/disable comma-lists against the registry.
// enable == "" or "all" selects every analyzer; names must exist.
func Select(enable, disable string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	picked := map[string]bool{}
	if enable == "" || enable == "all" {
		for name := range byName {
			picked[name] = true
		}
	} else {
		for _, name := range splitList(enable) {
			if byName[name] == nil {
				return nil, fmt.Errorf("lint: unknown check %q", name)
			}
			picked[name] = true
		}
	}
	for _, name := range splitList(disable) {
		if byName[name] == nil {
			return nil, fmt.Errorf("lint: unknown check %q", name)
		}
		delete(picked, name)
	}
	var out []*Analyzer
	for _, a := range Analyzers() { // registry order keeps output stable
		if picked[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path used for path-scoped exemptions
	// (e.g. goroutine permits `go` statements only in kshape/internal/par).
	// It is Pkg.Path() under the real loader but overridable in fixtures.
	PkgPath string
	// Prog is the shared interprocedural state (call graph, function
	// summaries, atomic-access facts) spanning every package of the
	// invocation. The driver builds one Program and attaches it to each
	// package's Pass; when nil, the interprocedural analyzers lazily
	// build a single-package Program, which keeps fixtures and direct
	// Pass construction working.
	Prog *Program

	check  string
	report func(Diagnostic)
}

// Reportf records a finding for the analyzer currently running.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Check:    p.check,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over the package, applies
// //lint:ignore suppressions, and returns surviving diagnostics sorted by
// position. Malformed directives (unknown check, missing reason) are
// returned as diagnostics under the "ignore" pseudo-check.
//
// When ignoredrift is among the selected analyzers, Run executes the
// FULL registry (not just the selection) to collect raw diagnostics:
// a directive is stale only if no analyzer at all would hit it, so
// staleness must be judged against every check regardless of -checks.
// Raw findings from non-selected analyzers feed that accounting and are
// then dropped, never reported.
func (p *Pass) Run(analyzers []*Analyzer) []Diagnostic {
	selected := map[string]bool{}
	for _, a := range analyzers {
		selected[a.Name] = true
	}
	toRun := analyzers
	if selected[ignoreDriftName] {
		toRun = nil
		for _, a := range Analyzers() {
			if a.Name != ignoreDriftName {
				toRun = append(toRun, a)
			}
		}
	}
	var raw []Diagnostic
	p.report = func(d Diagnostic) { raw = append(raw, d) }
	for _, a := range toRun {
		p.check = a.Name
		a.Run(p)
	}
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	dirs, bad := parseIgnores(p.Fset, p.Files, known)
	out := append([]Diagnostic(nil), bad...)
	for _, d := range raw {
		if !dirs.suppresses(d) && selected[d.Check] {
			out = append(out, d)
		}
	}
	if selected[ignoreDriftName] {
		// Snapshot the stale candidates before suppression checks: a
		// directive listing ignoredrift earns its hit by suppressing a
		// stale report, and that must not rescue it from being one.
		var stale []*ignoreDirective
		for _, dir := range dirs.all {
			if dir.hits == 0 && !isTestFile(p.Fset, dir.comment.Pos()) {
				stale = append(stale, dir)
			}
		}
		for _, dir := range stale {
			d := Diagnostic{
				Check:    ignoreDriftName,
				Position: p.Fset.Position(dir.comment.Pos()),
				Message: fmt.Sprintf("stale directive: no %q diagnostic is suppressed here anymore; delete it",
					strings.Join(dir.checks, ",")),
			}
			if !dirs.suppresses(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Check < out[j].Check
	})
	return out
}

// ignoreDirective is one well-formed //lint:ignore comment: its checks,
// its source comment (position and text feed the ignoredrift report and
// the -diff renderer), and how many diagnostics it suppressed this run.
type ignoreDirective struct {
	comment *ast.Comment
	checks  []string
	hits    int
}

// ignoreSet indexes //lint:ignore directives by file and line. A
// directive at line L suppresses matching diagnostics on L (trailing
// comment) and L+1 (comment above the statement). Suppressions are
// counted per directive so ignoredrift can report the ones that never
// fired.
type ignoreSet struct {
	byLoc map[string]map[int][]*ignoreDirective // filename -> line -> directives
	all   []*ignoreDirective                    // parse order
}

// suppresses reports whether any directive covers the diagnostic,
// crediting a hit to every directive that does.
func (s *ignoreSet) suppresses(d Diagnostic) bool {
	lines := s.byLoc[d.Position.Filename]
	hit := false
	for _, line := range []int{d.Position.Line, d.Position.Line - 1} {
		for _, dir := range lines[line] {
			for _, check := range dir.checks {
				if check == d.Check || check == "all" {
					dir.hits++
					hit = true
					break
				}
			}
		}
	}
	return hit
}

const ignorePrefix = "//lint:ignore"

func parseIgnores(fset *token.FileSet, files []*ast.File, known map[string]bool) (*ignoreSet, []Diagnostic) {
	dirs := &ignoreSet{byLoc: map[string]map[int][]*ignoreDirective{}}
	var bad []Diagnostic
	malformed := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Diagnostic{
			Check:    "ignore",
			Position: fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed(c.Pos(), "malformed directive %q: want //lint:ignore <check>[,<check>...] <reason>", c.Text)
					continue
				}
				checks := splitList(fields[0])
				ok := true
				for _, check := range checks {
					if check != "all" && !known[check] {
						malformed(c.Pos(), "unknown check %q in ignore directive", check)
						ok = false
					}
				}
				if !ok {
					continue
				}
				dir := &ignoreDirective{comment: c, checks: checks}
				p := fset.Position(c.Pos())
				if dirs.byLoc[p.Filename] == nil {
					dirs.byLoc[p.Filename] = map[int][]*ignoreDirective{}
				}
				dirs.byLoc[p.Filename][p.Line] = append(dirs.byLoc[p.Filename][p.Line], dir)
				dirs.all = append(dirs.all, dir)
			}
		}
	}
	return dirs, bad
}

// ---- shared type/AST helpers used by the analyzers ----

// pkgFunc reports whether the call expression invokes the package-level
// function path.name (resolved through go/types, so import aliases are
// handled), returning the object's name on a match with any name in names.
func pkgFunc(info *types.Info, call *ast.CallExpr, path string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != path {
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false // method on a type from that package, not a package-level func
	}
	if len(names) == 0 {
		return obj.Name(), true
	}
	for _, n := range names {
		if obj.Name() == n {
			return obj.Name(), true
		}
	}
	return "", false
}

// namedPath returns the full path.Name of the (possibly pointered) named
// type, or "" when t is not a named type.
func namedPath(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// isTestFile reports whether the file containing pos is a _test.go file.
// The analyzers exempt test code: exact-copy assertions, benchmark
// timing, and race-test goroutines are all legitimate there.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
