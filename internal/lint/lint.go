// Package lint is the repo's static-analysis subsystem: a stdlib-only
// (go/parser, go/ast, go/types, go/importer — no x/tools) framework that
// loads and type-checks every package and runs a registry of analyzers,
// each enforcing an invariant the compiler cannot check but the paper's
// results depend on:
//
//	floatcmp  — no ==/!= on floating-point operands (Eq. 9, 13–15
//	            convergence checks must be epsilon-tolerant)
//	detrand   — no wall-clock or ambient randomness in library code
//	            (bit-determinism of the accuracy tables)
//	goroutine — all fan-out flows through the deterministic pool in
//	            internal/par (order-preserving reductions)
//	maporder  — no unordered map iteration feeding an output
//	errdrop   — no silently discarded error returns
//
// Diagnostics carry a stable check ID and are suppressible with
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory: a suppression without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a stable check ID, a position, and a
// human-readable message.
type Diagnostic struct {
	Check    string         `json:"check"`
	Position token.Position `json:"position"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Check, d.Message)
}

// Analyzer is one registered check. Run inspects the package held by the
// Pass and reports findings through Pass.Reportf.
type Analyzer struct {
	Name string // stable check ID, e.g. "floatcmp"
	Doc  string // one-line description shown by -list
	Run  func(*Pass)
}

// Analyzers returns the full registry in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		FloatCmpAnalyzer,
		DetRandAnalyzer,
		GoroutineAnalyzer,
		MapOrderAnalyzer,
		ErrDropAnalyzer,
	}
}

// Select resolves enable/disable comma-lists against the registry.
// enable == "" or "all" selects every analyzer; names must exist.
func Select(enable, disable string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	picked := map[string]bool{}
	if enable == "" || enable == "all" {
		for name := range byName {
			picked[name] = true
		}
	} else {
		for _, name := range splitList(enable) {
			if byName[name] == nil {
				return nil, fmt.Errorf("lint: unknown check %q", name)
			}
			picked[name] = true
		}
	}
	for _, name := range splitList(disable) {
		if byName[name] == nil {
			return nil, fmt.Errorf("lint: unknown check %q", name)
		}
		delete(picked, name)
	}
	var out []*Analyzer
	for _, a := range Analyzers() { // registry order keeps output stable
		if picked[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path used for path-scoped exemptions
	// (e.g. goroutine permits `go` statements only in kshape/internal/par).
	// It is Pkg.Path() under the real loader but overridable in fixtures.
	PkgPath string

	check  string
	report func(Diagnostic)
}

// Reportf records a finding for the analyzer currently running.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Check:    p.check,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over the package, applies
// //lint:ignore suppressions, and returns surviving diagnostics sorted by
// position. Malformed directives (unknown check, missing reason) are
// returned as diagnostics under the "ignore" pseudo-check.
func (p *Pass) Run(analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	p.report = func(d Diagnostic) { raw = append(raw, d) }
	for _, a := range analyzers {
		p.check = a.Name
		a.Run(p)
	}
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	dirs, bad := parseIgnores(p.Fset, p.Files, known)
	out := append([]Diagnostic(nil), bad...)
	for _, d := range raw {
		if !dirs.suppresses(d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Check < out[j].Check
	})
	return out
}

// ignoreSet indexes //lint:ignore directives by file and line. A
// directive at line L suppresses matching diagnostics on L (trailing
// comment) and L+1 (comment above the statement).
type ignoreSet map[string]map[int][]string // filename -> line -> check IDs

func (s ignoreSet) suppresses(d Diagnostic) bool {
	lines := s[d.Position.Filename]
	for _, line := range []int{d.Position.Line, d.Position.Line - 1} {
		for _, check := range lines[line] {
			if check == d.Check || check == "all" {
				return true
			}
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

func parseIgnores(fset *token.FileSet, files []*ast.File, known map[string]bool) (ignoreSet, []Diagnostic) {
	dirs := ignoreSet{}
	var bad []Diagnostic
	malformed := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Diagnostic{
			Check:    "ignore",
			Position: fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed(c.Pos(), "malformed directive %q: want //lint:ignore <check>[,<check>...] <reason>", c.Text)
					continue
				}
				checks := splitList(fields[0])
				ok := true
				for _, check := range checks {
					if check != "all" && !known[check] {
						malformed(c.Pos(), "unknown check %q in ignore directive", check)
						ok = false
					}
				}
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				if dirs[p.Filename] == nil {
					dirs[p.Filename] = map[int][]string{}
				}
				dirs[p.Filename][p.Line] = append(dirs[p.Filename][p.Line], checks...)
			}
		}
	}
	return dirs, bad
}

// ---- shared type/AST helpers used by the analyzers ----

// pkgFunc reports whether the call expression invokes the package-level
// function path.name (resolved through go/types, so import aliases are
// handled), returning the object's name on a match with any name in names.
func pkgFunc(info *types.Info, call *ast.CallExpr, path string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != path {
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false // method on a type from that package, not a package-level func
	}
	if len(names) == 0 {
		return obj.Name(), true
	}
	for _, n := range names {
		if obj.Name() == n {
			return obj.Name(), true
		}
	}
	return "", false
}

// namedPath returns the full path.Name of the (possibly pointered) named
// type, or "" when t is not a named type.
func namedPath(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// isTestFile reports whether the file containing pos is a _test.go file.
// The analyzers exempt test code: exact-copy assertions, benchmark
// timing, and race-test goroutines are all legitimate there.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
