package lint

// hotpath enforces the kernel contract behind the paper's efficiency
// claims: a function annotated //kshape:hotpath — the SBD batch/NCC/RFFT
// kernels, the par reduction inner loops, the assignment/refinement
// inner loops — must execute without allocating, blocking, or
// dispatching dynamically, and so must everything it calls. Direct
// violations are reported at the offending expression; violations inside
// un-annotated callees are reported at the call site (the position the
// annotated function's author controls), with the deep position named in
// the message. Annotated callees are trusted at the call site because
// the analyzer checks them at their own declaration.

import (
	"go/ast"
	"go/types"
)

// HotPathAnalyzer checks //kshape:hotpath functions transitively for
// allocation-free, block-free, statically dispatched execution.
var HotPathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "//kshape:hotpath functions must not allocate, block, or dispatch dynamically (transitively)",
	Run:  runHotPath,
}

func runHotPath(p *Pass) {
	prog := p.program()
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotPathDirective(fd.Doc) {
				continue
			}
			obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := prog.summary(obj)
			for _, v := range sum.direct {
				p.Reportf(v.pos, "%s", v.msg)
			}
			for _, cs := range sum.calls {
				fi := prog.fns[cs.callee]
				if fi == nil || fi.Hot {
					continue // annotated callees are checked at their own declaration
				}
				for _, v := range prog.hotViolations(cs.callee) {
					p.Reportf(cs.pos, "call to %s reaches a hot-path violation: %s (at %s); annotate the callee or hoist the work",
						cs.callee.Name(), v.msg, p.Fset.Position(v.pos))
				}
			}
		}
	}
}
