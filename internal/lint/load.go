package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked module package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Load resolves the given `go list` patterns (e.g. "./..."), parses and
// type-checks every in-module package in dependency order, and returns
// them ready for analysis. Only the go toolchain and the standard
// library are involved: module packages are type-checked from source
// here, standard-library imports come from go/importer.
//
// Test files are deliberately excluded: the analyzers exempt test code,
// so loading it would only cost time.
func Load(fset *token.FileSet, dir string, patterns []string) ([]*Package, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	local := map[string]*types.Package{}
	imp := &moduleImporter{
		local:    local,
		std:      importer.Default(),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	var out []*Package
	for _, m := range metas {
		pkg, err := check(fset, imp, m)
		if err != nil {
			return nil, err
		}
		local[m.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

type pkgMeta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
}

// goList shells out to `go list -deps -json`, which emits packages in
// dependency order (imports before importers) — exactly the order the
// type-checker needs. Standard-library entries are dropped; they load
// through go/importer instead.
func goList(dir string, patterns []string) ([]pkgMeta, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,GoFiles,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w", err)
	}
	var metas []pkgMeta
	dec := json.NewDecoder(outPipe)
	for {
		var m pkgMeta
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: go list output: %w", err)
		}
		if !m.Standard {
			metas = append(metas, m)
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, strings.TrimSpace(stderr.String()))
	}
	return metas, nil
}

func check(fset *token.FileSet, imp types.Importer, m pkgMeta) (*Package, error) {
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(m.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", m.ImportPath, err)
	}
	return &Package{ImportPath: m.ImportPath, Dir: m.Dir, Files: files, Types: tpkg, Info: info}, nil
}

// NewTypesInfo allocates the maps the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// moduleImporter resolves module-local packages from the already
// type-checked set, standard-library packages through the compiled
// export data, and anything the export data cannot serve from source.
type moduleImporter struct {
	local    map[string]*types.Package
	std      types.Importer
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.local[path]; ok {
		return pkg, nil
	}
	if pkg, err := m.std.Import(path); err == nil {
		return pkg, nil
	}
	return m.fallback.Import(path)
}

// Pass builds the analysis pass for a loaded package.
func (pkg *Package) Pass(fset *token.FileSet) *Pass {
	return &Pass{
		Fset:      fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		PkgPath:   pkg.ImportPath,
	}
}
