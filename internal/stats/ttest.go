package stats

import (
	"fmt"
	"math"
)

// TTestResult reports a two-sided paired t-test.
type TTestResult struct {
	// T is the t statistic.
	T float64
	// DF is the degrees of freedom (n-1).
	DF int
	// P is the two-sided p-value.
	P float64
}

// PairedTTest runs the two-sided paired Student t-test on samples a and b.
// The paper's Section 4 prefers the Wilcoxon signed-rank test because (per
// Demšar) the t-test assumes commensurability of differences and is more
// sensitive to outliers; the t-test is provided for completeness so users
// can compare the two.
//
// It returns P = 1 when the differences have zero variance (including the
// all-identical case).
func PairedTTest(a, b []float64) TTestResult {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: PairedTTest length mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	if n < 2 {
		return TTestResult{P: 1, DF: 0}
	}
	mean := 0.0
	for i := range a {
		mean += a[i] - b[i]
	}
	mean /= float64(n)
	ss := 0.0
	for i := range a {
		d := a[i] - b[i] - mean
		ss += d * d
	}
	variance := ss / float64(n-1)
	//lint:ignore floatcmp exact zero-variance guard before dividing by it
	if variance == 0 {
		return TTestResult{DF: n - 1, P: 1}
	}
	t := mean / math.Sqrt(variance/float64(n))
	return TTestResult{T: t, DF: n - 1, P: StudentTSurvival2(math.Abs(t), n-1)}
}

// StudentTSurvival2 returns the two-sided p-value P(|T| >= t) for a Student
// t distribution with df degrees of freedom, via the regularized incomplete
// beta function: P = I_{df/(df+t²)}(df/2, 1/2).
func StudentTSurvival2(t float64, df int) float64 {
	if df < 1 {
		return 1
	}
	if t <= 0 {
		return 1
	}
	x := float64(df) / (float64(df) + t*t)
	return RegularizedIncompleteBeta(float64(df)/2, 0.5, x)
}

// RegularizedIncompleteBeta computes I_x(a, b) by the continued-fraction
// expansion (Numerical Recipes §6.4), accurate to ~1e-14 for a, b > 0 and
// x in [0, 1].
func RegularizedIncompleteBeta(a, b, x float64) float64 {
	if x < 0 || x > 1 || a <= 0 || b <= 0 {
		return math.NaN()
	}
	//lint:ignore floatcmp exact domain-boundary guard of the incomplete beta function
	if x == 0 {
		return 0
	}
	//lint:ignore floatcmp exact domain-boundary guard of the incomplete beta function
	if x == 1 {
		return 1
	}
	lgA, _ := math.Lgamma(a)
	lgB, _ := math.Lgamma(b)
	lgAB, _ := math.Lgamma(a + b)
	front := math.Exp(lgAB - lgA - lgB + a*math.Log(x) + b*math.Log(1-x))
	// Use the symmetry relation to keep the continued fraction convergent.
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction of the incomplete beta function
// with the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-15
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
