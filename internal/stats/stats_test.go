package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
	if got := Ranks([]float64{5}); got[0] != 1 {
		t.Errorf("single rank = %v", got)
	}
	if got := Ranks(nil); len(got) != 0 {
		t.Errorf("empty ranks = %v", got)
	}
	// All-ties.
	got = Ranks([]float64{7, 7, 7})
	for _, r := range got {
		if r != 2 {
			t.Errorf("all-tie ranks = %v, want all 2", got)
		}
	}
}

func TestWilcoxonIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	res := Wilcoxon(a, a)
	if res.N != 0 || res.P != 1 {
		t.Errorf("identical samples: %+v", res)
	}
}

func TestWilcoxonClearDifference(t *testing.T) {
	// a consistently higher than b across 30 paired observations.
	rng := rand.New(rand.NewSource(1))
	n := 30
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		b[i] = rng.Float64()
		a[i] = b[i] + 0.5 + 0.1*rng.Float64()
	}
	res := Wilcoxon(a, b)
	if res.P > 0.001 {
		t.Errorf("p = %v, want < 0.001 for a uniform improvement", res.P)
	}
	if !SignificantlyBetter(a, b, 0.99) {
		t.Error("SignificantlyBetter should hold")
	}
	if SignificantlyBetter(b, a, 0.99) {
		t.Error("direction check failed: b is not better than a")
	}
}

func TestWilcoxonNoDifferenceOnNoise(t *testing.T) {
	// Independent same-distribution samples: rejections at the 1% level
	// should be rare. One fixed seed must not reject.
	rng := rand.New(rand.NewSource(2))
	n := 40
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	if SignificantlyBetter(a, b, 0.99) || SignificantlyBetter(b, a, 0.99) {
		t.Error("significance claimed on pure noise")
	}
}

func TestWilcoxonSymmetry(t *testing.T) {
	a := []float64{1, 5, 3, 8, 2, 9, 4}
	b := []float64{2, 3, 4, 6, 1, 7, 6}
	ra := Wilcoxon(a, b)
	rb := Wilcoxon(b, a)
	if math.Abs(ra.P-rb.P) > 1e-12 || ra.N != rb.N {
		t.Errorf("Wilcoxon not symmetric: %+v vs %+v", ra, rb)
	}
}

func TestWilcoxonPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Wilcoxon([]float64{1}, []float64{1, 2})
}

func TestFriedmanDetectsDominantMethod(t *testing.T) {
	// Method 0 always best, methods 1-2 noise.
	rng := rand.New(rand.NewSource(3))
	n := 30
	scores := make([][]float64, 3)
	for m := range scores {
		scores[m] = make([]float64, n)
		for d := range scores[m] {
			scores[m][d] = rng.Float64()
			if m == 0 {
				scores[m][d] += 1
			}
		}
	}
	res := Friedman(scores)
	if res.P > 0.001 {
		t.Errorf("Friedman p = %v, want < 0.001", res.P)
	}
	if res.AvgRanks[0] >= res.AvgRanks[1] || res.AvgRanks[0] >= res.AvgRanks[2] {
		t.Errorf("method 0 should have the best (smallest) rank: %v", res.AvgRanks)
	}
	if math.Abs(res.AvgRanks[0]-1) > 1e-9 {
		t.Errorf("dominant method rank = %v, want 1", res.AvgRanks[0])
	}
}

func TestFriedmanNullBehaviour(t *testing.T) {
	// Identical methods: chi-square 0 (all mid-ranks), p = 1.
	scores := [][]float64{
		{1, 2, 3, 4},
		{1, 2, 3, 4},
		{1, 2, 3, 4},
	}
	res := Friedman(scores)
	if res.ChiSq > 1e-9 {
		t.Errorf("chi-square = %v, want 0", res.ChiSq)
	}
	if res.P < 0.99 {
		t.Errorf("p = %v, want ~1", res.P)
	}
}

func TestFriedmanPanics(t *testing.T) {
	for _, scores := range [][][]float64{
		{{1, 2}},      // one method
		{{1, 2}, {1}}, // ragged
		{{}, {}},      // zero datasets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", scores)
				}
			}()
			Friedman(scores)
		}()
	}
}

func TestChiSquareSurvival(t *testing.T) {
	// Known values: P(X >= 3.841 | df=1) ≈ 0.05, P(X >= 5.991 | df=2) ≈ 0.05.
	cases := []struct {
		x    float64
		df   int
		want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{6.635, 1, 0.01},
		{9.210, 2, 0.01},
		{0, 5, 1},
	}
	for _, c := range cases {
		if got := ChiSquareSurvival(c.x, c.df); math.Abs(got-c.want) > 0.001 {
			t.Errorf("ChiSq(%v, df=%d) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
}

func TestChiSquareSurvivalMonotone(t *testing.T) {
	prev := 1.0
	for x := 0.5; x < 30; x += 0.5 {
		got := ChiSquareSurvival(x, 4)
		if got > prev+1e-12 {
			t.Fatalf("survival not monotone at %v", x)
		}
		prev = got
	}
}

func TestNemenyiCD(t *testing.T) {
	// Demšar's example scale: k=4, n=48 => CD = 2.569*sqrt(4*5/(6*48)).
	want := 2.569 * math.Sqrt(20.0/288.0)
	if got := NemenyiCD(4, 48); math.Abs(got-want) > 1e-9 {
		t.Errorf("CD = %v, want %v", got, want)
	}
}

func TestNemenyiCDPanicsOutOfTable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=50")
		}
	}()
	NemenyiCD(50, 10)
}

func TestNemenyiGroups(t *testing.T) {
	// Ranks 1.0, 1.2, 3.9, 4.0 with k=4, n=48: CD ≈ 0.68, so {0,1} and
	// {2,3} group, but not across.
	avg := []float64{1.0, 1.2, 3.9, 4.0}
	order, cd, groups := NemenyiGroups(avg, 48)
	if order[0] != 0 || order[3] != 3 {
		t.Errorf("order = %v", order)
	}
	if cd <= 0 {
		t.Errorf("cd = %v", cd)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 groups", groups)
	}
	inGroup := func(g []int, a, b int) bool {
		hasA, hasB := false, false
		for _, v := range g {
			if v == a {
				hasA = true
			}
			if v == b {
				hasB = true
			}
		}
		return hasA && hasB
	}
	if !inGroup(groups[0], 0, 1) || !inGroup(groups[1], 2, 3) {
		t.Errorf("unexpected groups %v", groups)
	}
	for _, g := range groups {
		if inGroup(g, 0, 3) {
			t.Errorf("methods 0 and 3 should not share a group: %v", groups)
		}
	}
}

func TestNemenyiGroupsAllEquivalent(t *testing.T) {
	avg := []float64{2.0, 2.1, 2.2}
	_, _, groups := NemenyiGroups(avg, 48)
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Errorf("expected one all-inclusive group, got %v", groups)
	}
}

func TestPairedTTestClearDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 30
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		b[i] = rng.NormFloat64()
		a[i] = b[i] + 1 + 0.1*rng.NormFloat64()
	}
	res := PairedTTest(a, b)
	if res.P > 1e-6 {
		t.Errorf("p = %v, want tiny for a unit improvement", res.P)
	}
	if res.T <= 0 {
		t.Errorf("t = %v, want positive when a > b", res.T)
	}
	if res.DF != n-1 {
		t.Errorf("df = %d", res.DF)
	}
}

func TestPairedTTestNull(t *testing.T) {
	a := []float64{1, 2, 3}
	res := PairedTTest(a, a)
	if res.P != 1 {
		t.Errorf("identical samples p = %v", res.P)
	}
	if res := PairedTTest([]float64{1}, []float64{2}); res.P != 1 {
		t.Errorf("n=1 p = %v", res.P)
	}
}

func TestPairedTTestNoiseRarelyRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 40
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	if res := PairedTTest(a, b); res.P < 0.01 {
		t.Errorf("pure noise rejected with p = %v", res.P)
	}
}

func TestPairedTTestPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PairedTTest([]float64{1}, []float64{1, 2})
}

func TestStudentTSurvivalKnownValues(t *testing.T) {
	// Two-sided critical values: t=2.045 at df=29 ~ p=0.05;
	// t=2.756 at df=29 ~ p=0.01; t=12.706 at df=1 ~ p=0.05.
	cases := []struct {
		t    float64
		df   int
		want float64
	}{
		{2.045, 29, 0.05},
		{2.756, 29, 0.01},
		{12.706, 1, 0.05},
		{63.657, 1, 0.01},
		{1.960, 100000, 0.05}, // converges to the normal
	}
	for _, c := range cases {
		if got := StudentTSurvival2(c.t, c.df); math.Abs(got-c.want) > 0.002 {
			t.Errorf("t=%v df=%d: p = %v, want ~%v", c.t, c.df, got, c.want)
		}
	}
	if p := StudentTSurvival2(0, 10); p != 1 {
		t.Errorf("t=0 p = %v", p)
	}
	if p := StudentTSurvival2(1, 0); p != 1 {
		t.Errorf("df=0 p = %v", p)
	}
}

func TestRegularizedIncompleteBeta(t *testing.T) {
	// I_x(1, 1) = x (uniform CDF).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := RegularizedIncompleteBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2, 2) = 3x² − 2x³.
	for _, x := range []float64{0.2, 0.5, 0.9} {
		want := 3*x*x - 2*x*x*x
		if got := RegularizedIncompleteBeta(2, 2, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
	if !math.IsNaN(RegularizedIncompleteBeta(-1, 1, 0.5)) {
		t.Error("invalid parameters should give NaN")
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	for _, x := range []float64{0.1, 0.4, 0.8} {
		lhs := RegularizedIncompleteBeta(2.5, 1.5, x)
		rhs := 1 - RegularizedIncompleteBeta(1.5, 2.5, 1-x)
		if math.Abs(lhs-rhs) > 1e-12 {
			t.Errorf("symmetry broken at %v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestWilcoxonAndTTestAgreeOnStrongSignal(t *testing.T) {
	// Both tests should reject on a clear improvement and agree in
	// direction — the cross-check the paper's methodology discussion
	// implies.
	rng := rand.New(rand.NewSource(12))
	n := 25
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		b[i] = rng.Float64()
		a[i] = b[i] + 0.3 + 0.05*rng.NormFloat64()
	}
	if w := Wilcoxon(a, b); w.P > 0.01 {
		t.Errorf("Wilcoxon p = %v", w.P)
	}
	if tt := PairedTTest(a, b); tt.P > 0.01 {
		t.Errorf("t-test p = %v", tt.P)
	}
}
