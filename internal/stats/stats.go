// Package stats implements the statistical machinery of the paper's
// Section 4: the Wilcoxon signed-rank test for pairwise method comparison
// over multiple datasets, the Friedman test over average ranks for
// multiple-method comparison, and the post-hoc Nemenyi test that groups
// methods whose rank difference falls below the critical difference —
// the analysis behind Tables 2-4 and Figures 6, 8, and 9.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Ranks assigns fractional ranks (1 = smallest) to the values, averaging
// ties — the standard mid-rank convention used by both the Wilcoxon and
// Friedman tests.
func Ranks(values []float64) []float64 {
	n := len(values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		//lint:ignore floatcmp exact tie detection for average-rank assignment
		for j+1 < n && values[idx[j+1]] == values[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for t := i; t <= j; t++ {
			ranks[idx[t]] = avg
		}
		i = j + 1
	}
	return ranks
}

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// WilcoxonResult reports a two-sided Wilcoxon signed-rank test.
type WilcoxonResult struct {
	// W is the smaller of the positive- and negative-rank sums.
	W float64
	// N is the number of non-zero differences actually ranked.
	N int
	// Z is the normal approximation statistic.
	Z float64
	// P is the two-sided p-value.
	P float64
}

// Wilcoxon runs the two-sided Wilcoxon signed-rank test on paired samples a
// and b (e.g. per-dataset accuracies of two methods), using the normal
// approximation with tie correction. Zero differences are dropped, the
// convention the paper's reference (Demšar) follows. Returns N = 0 and
// P = 1 when every pair ties.
func Wilcoxon(a, b []float64) WilcoxonResult {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: Wilcoxon length mismatch %d vs %d", len(a), len(b)))
	}
	var diffs []float64
	for i := range a {
		//lint:ignore floatcmp exactly zero differences are dropped by the signed-rank convention
		if d := a[i] - b[i]; d != 0 {
			diffs = append(diffs, d)
		}
	}
	n := len(diffs)
	if n == 0 {
		return WilcoxonResult{N: 0, P: 1}
	}
	absDiffs := make([]float64, n)
	for i, d := range diffs {
		absDiffs[i] = math.Abs(d)
	}
	ranks := Ranks(absDiffs)
	var wPlus, wMinus float64
	for i, d := range diffs {
		if d > 0 {
			wPlus += ranks[i]
		} else {
			wMinus += ranks[i]
		}
	}
	w := math.Min(wPlus, wMinus)
	nf := float64(n)
	mean := nf * (nf + 1) / 4
	variance := nf * (nf + 1) * (2*nf + 1) / 24
	// Tie correction: subtract sum(t³ - t)/48 over tie groups.
	variance -= tieCorrection(absDiffs) / 48
	if variance <= 0 {
		return WilcoxonResult{W: w, N: n, P: 1}
	}
	z := (w - mean) / math.Sqrt(variance)
	p := 2 * normalCDF(z) // w <= mean, so z <= 0 and CDF(z) is the lower tail
	if p > 1 {
		p = 1
	}
	return WilcoxonResult{W: w, N: n, Z: z, P: p}
}

func tieCorrection(values []float64) float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	total := 0.0
	for i := 0; i < len(sorted); {
		j := i
		//lint:ignore floatcmp exact tie detection for average-rank assignment
		for j+1 < len(sorted) && sorted[j+1] == sorted[i] {
			j++
		}
		t := float64(j - i + 1)
		if t > 1 {
			total += t*t*t - t
		}
		i = j + 1
	}
	return total
}

// SignificantlyBetter reports whether method a beats method b with the given
// confidence (e.g. 0.99 per the paper) under the Wilcoxon test: the test
// must reject equality AND a must have the larger values on balance.
func SignificantlyBetter(a, b []float64, confidence float64) bool {
	res := Wilcoxon(a, b)
	if res.P > 1-confidence {
		return false
	}
	sum := 0.0
	for i := range a {
		sum += a[i] - b[i]
	}
	return sum > 0
}

// FriedmanResult reports a Friedman test over k methods and N datasets.
type FriedmanResult struct {
	// AvgRanks holds, per method, the average rank across datasets
	// (1 = best). Higher metric values receive better (smaller) ranks.
	AvgRanks []float64
	// ChiSq is the Friedman chi-square statistic with k-1 degrees of
	// freedom.
	ChiSq float64
	// P is the p-value of the null hypothesis that all methods perform
	// alike.
	P float64
}

// Friedman runs the Friedman test on scores[method][dataset], where larger
// scores are better (accuracy, Rand Index). Within each dataset, methods
// are ranked 1 (best) to k (worst) with mid-ranks for ties.
func Friedman(scores [][]float64) FriedmanResult {
	k := len(scores)
	if k < 2 {
		panic("stats: Friedman needs at least 2 methods")
	}
	n := len(scores[0])
	for _, row := range scores {
		if len(row) != n {
			panic("stats: Friedman ragged score matrix")
		}
	}
	if n == 0 {
		panic("stats: Friedman needs at least 1 dataset")
	}
	avg := make([]float64, k)
	col := make([]float64, k)
	for d := 0; d < n; d++ {
		for m := 0; m < k; m++ {
			col[m] = -scores[m][d] // negate: larger score = smaller rank
		}
		ranks := Ranks(col)
		for m := 0; m < k; m++ {
			avg[m] += ranks[m]
		}
	}
	for m := range avg {
		avg[m] /= float64(n)
	}
	kf, nf := float64(k), float64(n)
	sum := 0.0
	for _, r := range avg {
		sum += r * r
	}
	chi := 12 * nf / (kf * (kf + 1)) * (sum - kf*(kf+1)*(kf+1)/4)
	p := ChiSquareSurvival(chi, k-1)
	return FriedmanResult{AvgRanks: avg, ChiSq: chi, P: p}
}

// ChiSquareSurvival returns P(X >= x) for a chi-square distribution with
// df degrees of freedom, via the regularized upper incomplete gamma
// function Q(df/2, x/2).
func ChiSquareSurvival(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return upperGammaRegularized(float64(df)/2, x/2)
}

// upperGammaRegularized computes Q(s, x) = Γ(s, x)/Γ(s) using the series
// expansion for x < s+1 and the Lentz continued fraction otherwise
// (Numerical Recipes §6.2).
func upperGammaRegularized(s, x float64) float64 {
	if x < 0 || s <= 0 {
		return math.NaN()
	}
	//lint:ignore floatcmp exact zero argument short-circuits the series expansion
	if x == 0 {
		return 1
	}
	if x < s+1 {
		return 1 - lowerGammaSeries(s, x)
	}
	return upperGammaCF(s, x)
}

func lowerGammaSeries(s, x float64) float64 {
	lg, _ := math.Lgamma(s)
	ap := s
	sum := 1.0 / s
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+s*math.Log(x)-lg)
}

func upperGammaCF(s, x float64) float64 {
	lg, _ := math.Lgamma(s)
	const tiny = 1e-300
	b := x + 1 - s
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - s)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+s*math.Log(x)-lg) * h
}

// nemenyiQ05 holds the critical values q_α for α = 0.05 of the studentized
// range statistic divided by √2, indexed by the number of methods k
// (entries 2..20), as tabulated in Demšar (2006).
var nemenyiQ05 = map[int]float64{
	2: 1.960, 3: 2.343, 4: 2.569, 5: 2.728, 6: 2.850,
	7: 2.949, 8: 3.031, 9: 3.102, 10: 3.164, 11: 3.219,
	12: 3.268, 13: 3.313, 14: 3.354, 15: 3.391, 16: 3.426,
	17: 3.458, 18: 3.489, 19: 3.517, 20: 3.544,
}

// NemenyiCD returns the critical difference of average ranks at α = 0.05
// for k methods over n datasets:
//
//	CD = q_α · sqrt(k(k+1) / (6n))
//
// Two methods whose average ranks differ by less than CD are not
// significantly different (the "wiggly line" grouping of Figures 6/8/9).
func NemenyiCD(k, n int) float64 {
	q, ok := nemenyiQ05[k]
	if !ok {
		panic(fmt.Sprintf("stats: Nemenyi critical value not tabulated for k=%d", k))
	}
	return q * math.Sqrt(float64(k)*float64(k+1)/(6*float64(n)))
}

// NemenyiGroups partitions method indices (sorted by average rank) into
// maximal runs whose extreme ranks differ by less than the critical
// difference — the groups connected by a line in the paper's rank plots.
// The same method may appear in multiple overlapping groups.
func NemenyiGroups(avgRanks []float64, n int) (order []int, cd float64, groups [][]int) {
	k := len(avgRanks)
	cd = NemenyiCD(k, n)
	order = make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return avgRanks[order[a]] < avgRanks[order[b]] })
	for i := 0; i < k; i++ {
		j := i
		for j+1 < k && avgRanks[order[j+1]]-avgRanks[order[i]] < cd {
			j++
		}
		if j > i {
			group := append([]int(nil), order[i:j+1]...)
			// Only keep maximal groups (skip those contained in the previous).
			if len(groups) == 0 || !containedIn(group, groups[len(groups)-1]) {
				groups = append(groups, group)
			}
		}
	}
	return order, cd, groups
}

func containedIn(inner, outer []int) bool {
	set := map[int]bool{}
	for _, v := range outer {
		set[v] = true
	}
	for _, v := range inner {
		if !set[v] {
			return false
		}
	}
	return true
}
