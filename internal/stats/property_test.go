package stats

import (
	"math"
	"math/rand"
	"testing"
)

// The tests in this file pin the statistical machinery against hand-worked
// small-n examples (every rank sum and statistic below is computed on
// paper) and against the invariances the tests must satisfy by
// construction: shifting both samples, flipping signs, and permuting
// datasets. The inputs use small integer-valued floats so the invariance
// checks can demand bit-exact equality — no rounding excuses.

func TestWilcoxonHandComputedNoTies(t *testing.T) {
	// diffs = a-b = [1, -2, 3, -4, 5]; |diffs| rank 1..5.
	// W+ = 1+3+5 = 9, W- = 2+4 = 6, so W = 6 over N = 5.
	// mean = 5·6/4 = 7.5, var = 5·6·11/24 = 13.75,
	// Z = (6 - 7.5)/sqrt(13.75).
	a := []float64{2, 1, 4, 1, 6}
	b := []float64{1, 3, 1, 5, 1}
	res := Wilcoxon(a, b)
	if res.W != 6 || res.N != 5 {
		t.Fatalf("W = %v, N = %d, want W = 6, N = 5", res.W, res.N)
	}
	wantZ := -1.5 / math.Sqrt(13.75)
	if math.Abs(res.Z-wantZ) > 1e-15 {
		t.Errorf("Z = %v, want %v", res.Z, wantZ)
	}
	wantP := 2 * 0.5 * math.Erfc(-wantZ/math.Sqrt2)
	if math.Abs(res.P-wantP) > 1e-15 {
		t.Errorf("P = %v, want %v", res.P, wantP)
	}
	if res.P < 0.5 {
		t.Errorf("P = %v: this weak signal must not look significant", res.P)
	}
}

func TestWilcoxonHandComputedWithTies(t *testing.T) {
	// diffs = [1, -1, 2]; |diffs| = [1, 1, 2] rank as [1.5, 1.5, 3].
	// W+ = 1.5+3 = 4.5, W- = 1.5, so W = 1.5.
	// One tie group of t = 2: correction (t³-t)/48 = 6/48 = 0.125,
	// var = 3·4·7/24 - 0.125 = 3.375.
	a := []float64{2, 0, 3}
	b := []float64{1, 1, 1}
	res := Wilcoxon(a, b)
	if res.W != 1.5 || res.N != 3 {
		t.Fatalf("W = %v, N = %d, want W = 1.5, N = 3", res.W, res.N)
	}
	wantZ := (1.5 - 3.0) / math.Sqrt(3.375)
	if math.Abs(res.Z-wantZ) > 1e-15 {
		t.Errorf("Z = %v, want %v", res.Z, wantZ)
	}
}

// integerSamples returns paired samples with small integer values, so that
// adding integer constants and negating stay exact in float64.
func integerSamples(rng *rand.Rand, n int) (a, b []float64) {
	a = make([]float64, n)
	b = make([]float64, n)
	for i := range a {
		a[i] = float64(rng.Intn(64))
		b[i] = float64(rng.Intn(64))
	}
	return a, b
}

func TestWilcoxonShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		a, b := integerSamples(rng, 3+rng.Intn(20))
		base := Wilcoxon(a, b)
		c := float64(rng.Intn(1000))
		as := make([]float64, len(a))
		bs := make([]float64, len(b))
		for i := range a {
			as[i], bs[i] = a[i]+c, b[i]+c
		}
		shifted := Wilcoxon(as, bs)
		if shifted != base {
			t.Fatalf("trial %d: shift by %v changed the test: %+v vs %+v", trial, c, shifted, base)
		}
	}
}

func TestWilcoxonSignFlipInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		a, b := integerSamples(rng, 3+rng.Intn(20))
		base := Wilcoxon(a, b)
		na := make([]float64, len(a))
		nb := make([]float64, len(b))
		for i := range a {
			na[i], nb[i] = -a[i], -b[i]
		}
		// Negating both samples swaps the roles of W+ and W-, which leaves
		// W = min(W+, W-) and everything derived from it unchanged.
		flipped := Wilcoxon(na, nb)
		if flipped != base {
			t.Fatalf("trial %d: sign flip changed the test: %+v vs %+v", trial, flipped, base)
		}
	}
}

func TestSignificantlyBetterAntisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		a, b := integerSamples(rng, 5+rng.Intn(15))
		if SignificantlyBetter(a, b, 0.95) && SignificantlyBetter(b, a, 0.95) {
			t.Fatalf("trial %d: both a>b and b>a reported significant", trial)
		}
	}
}

func TestFriedmanHandComputed(t *testing.T) {
	// Three methods strictly ordered on every one of four datasets:
	// average ranks [1, 2, 3], chi² = 12·4/(3·4)·(1+4+9 − 3·16/4) = 8,
	// and for df = 2 the survival function is exactly exp(-x/2).
	scores := [][]float64{
		{3, 3, 3, 3},
		{2, 2, 2, 2},
		{1, 1, 1, 1},
	}
	res := Friedman(scores)
	want := []float64{1, 2, 3}
	for m, r := range res.AvgRanks {
		if r != want[m] {
			t.Errorf("AvgRanks[%d] = %v, want %v", m, r, want[m])
		}
	}
	if res.ChiSq != 8 {
		t.Errorf("ChiSq = %v, want 8", res.ChiSq)
	}
	if math.Abs(res.P-math.Exp(-4)) > 1e-12 {
		t.Errorf("P = %v, want exp(-4) = %v", res.P, math.Exp(-4))
	}
}

func TestFriedmanDatasetPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	k, n := 4, 12
	scores := make([][]float64, k)
	for m := range scores {
		scores[m] = make([]float64, n)
		for d := range scores[m] {
			scores[m][d] = float64(rng.Intn(32))
		}
	}
	base := Friedman(scores)
	perm := rng.Perm(n)
	permuted := make([][]float64, k)
	for m := range permuted {
		permuted[m] = make([]float64, n)
		for d, p := range perm {
			permuted[m][d] = scores[m][p]
		}
	}
	got := Friedman(permuted)
	// Ranks are dyadic rationals and the scores integers, so reordering the
	// datasets must reproduce the result bit-for-bit.
	if got.ChiSq != base.ChiSq || got.P != base.P {
		t.Errorf("permuting datasets changed the statistic: %+v vs %+v", got, base)
	}
	for m := range got.AvgRanks {
		if got.AvgRanks[m] != base.AvgRanks[m] {
			t.Errorf("AvgRanks[%d] = %v after permutation, want %v", m, got.AvgRanks[m], base.AvgRanks[m])
		}
	}
}

func TestFriedmanPerDatasetShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	k, n := 3, 10
	scores := make([][]float64, k)
	for m := range scores {
		scores[m] = make([]float64, n)
		for d := range scores[m] {
			scores[m][d] = float64(rng.Intn(32))
		}
	}
	base := Friedman(scores)
	// Adding a per-dataset constant to every method's score changes no
	// within-dataset ordering, hence no ranks.
	shifted := make([][]float64, k)
	for m := range shifted {
		shifted[m] = make([]float64, n)
	}
	for d := 0; d < n; d++ {
		c := float64(rng.Intn(500))
		for m := 0; m < k; m++ {
			shifted[m][d] = scores[m][d] + c
		}
	}
	got := Friedman(shifted)
	if got.ChiSq != base.ChiSq || got.P != base.P {
		t.Errorf("per-dataset shift changed the statistic: %+v vs %+v", got, base)
	}
}

func TestRanksSumAndPermutationEquivariance(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(25)
		values := make([]float64, n)
		for i := range values {
			values[i] = float64(rng.Intn(10)) // force plenty of ties
		}
		ranks := Ranks(values)
		sum := 0.0
		for _, r := range ranks {
			sum += r
		}
		// Mid-ranks redistribute within tie groups but always preserve the
		// total 1+2+...+n; ranks are dyadic so the sum is exact.
		if want := float64(n*(n+1)) / 2; sum != want {
			t.Fatalf("trial %d: rank sum %v, want %v (values %v)", trial, sum, want, values)
		}
		perm := rng.Perm(n)
		permuted := make([]float64, n)
		for i, p := range perm {
			permuted[i] = values[p]
		}
		permRanks := Ranks(permuted)
		for i, p := range perm {
			if permRanks[i] != ranks[p] {
				t.Fatalf("trial %d: rank not equivariant under permutation at %d", trial, i)
			}
		}
	}
}
