// Package benchfmt holds the kshape.bench/v1 schema shared by the tools
// that produce and consume the committed benchmark report: cmd/benchjson
// parses `go test -bench` output into it (BENCH_kshape.json, regenerated
// by `make bench`) and cmd/benchdiff compares two such reports for
// regressions. Keeping the schema in one package guarantees producer and
// consumer cannot drift apart.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"kshape/internal/obs"
)

// Schema is the identifier embedded in every report; bump it if the
// report shape ever changes incompatibly.
const Schema = "kshape.bench/v1"

// Report is the top-level JSON document.
type Report struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"package,omitempty"`
	Version    string      `json:"version"`
	Revision   string      `json:"revision"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line of `go test -bench` output.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -PROCS suffix (e.g. "DistanceMatrixSBDParallel").
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the result line (0 if absent).
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op column.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other value/unit pair of the line keyed by
	// unit: "B/op", "allocs/op", "speedup", "fft/op", "sbd/op", ….
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Validate checks the invariants the schema promises consumers, so the
// committed BENCH_kshape.json can be asserted reproducible in tests.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("schema = %q, want %q", r.Schema, Schema)
	}
	if r.GoVersion == "" {
		return fmt.Errorf("missing go_version")
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks")
	}
	seen := map[string]bool{}
	for i, b := range r.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchmark %d has no name", i)
		}
		if seen[b.Name] {
			return fmt.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.Iterations < 1 {
			return fmt.Errorf("benchmark %q: iterations = %d", b.Name, b.Iterations)
		}
		if b.NsPerOp < 0 {
			return fmt.Errorf("benchmark %q: negative ns/op", b.Name)
		}
	}
	return nil
}

// ByName returns the report's benchmarks keyed by name. Validate
// guarantees names are unique.
func (r *Report) ByName() map[string]Benchmark {
	out := make(map[string]Benchmark, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		out[b.Name] = b
	}
	return out
}

// Parse reads `go test -bench` output and assembles the report,
// capturing the goos/goarch/cpu/pkg header lines and every
// "BenchmarkName-P  N  value unit [value unit ...]" result line.
//
// A benchmark that appears more than once (`go test -count=N`) is
// collapsed to its fastest run: interference on a shared machine only
// ever slows a run down, so the minimum ns/op line is the
// least-interfered sample and its sibling metrics ride along with it.
// This is what lets the 10% bench-diff gate hold on a machine whose
// background load drifts by more than that between single passes.
func Parse(r io.Reader) (*Report, error) {
	bi := obs.BuildInfo()
	rep := &Report{
		Schema:    Schema,
		GoVersion: bi["go"],
		Version:   bi["version"],
		Revision:  bi["revision"],
	}
	idx := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok, err := parseResultLine(line)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if i, dup := idx[b.Name]; dup {
			if b.NsPerOp < rep.Benchmarks[i].NsPerOp {
				rep.Benchmarks[i] = b
			}
			continue
		}
		idx[b.Name] = len(rep.Benchmarks)
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("parsed report invalid: %w", err)
	}
	return rep, nil
}

// parseResultLine parses one benchmark result line. Lines that merely
// name a running benchmark (no fields after the name) report ok=false.
func parseResultLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false, nil
	}
	var b Benchmark
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if procs, err := strconv.Atoi(name[i+1:]); err == nil {
			b.Procs = procs
			name = name[:i]
		}
	}
	b.Name = name
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, fmt.Errorf("%q: bad iteration count: %w", line, err)
	}
	b.Iterations = iters
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("%q: bad metric value %q: %w", line, fields[i], err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	return b, true, nil
}

// Load reads and validates a kshape.bench/v1 JSON report from path.
func Load(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// Decode reads and validates a kshape.bench/v1 JSON report.
func Decode(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, err
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return &rep, nil
}
