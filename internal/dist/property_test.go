package dist

import (
	"math"
	"math/rand"
	"testing"

	"kshape/internal/ts"
)

// Metamorphic properties of the distance layer: invariances the paper's
// Section 3 derives (shift invariance of SBD, the scaling/translation
// invariance provided by z-normalization, symmetry of NCCc) expressed as
// relations between transformed inputs rather than fixed expected values.

// compactSupportSeries returns a length-m series whose non-zero values
// occupy only the middle third, so that zero-padded shifts up to m/3 in
// either direction lose none of the signal — the regime where a shifted
// copy is *exactly* recoverable and SBD must be 0.
func compactSupportSeries(m int, rng *rand.Rand) []float64 {
	x := make([]float64, m)
	for i := m / 3; i < 2*m/3; i++ {
		x[i] = rng.NormFloat64() + math.Sin(6*float64(i)/float64(m))
	}
	return x
}

func TestSBDShiftInvarianceCompactSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, m := range []int{30, 64, 99} {
		x := compactSupportSeries(m, rng)
		for _, s := range []int{-m / 4, -3, -1, 1, 2, m / 4} {
			y := ts.Shift(x, s)
			d, aligned := SBD(x, y)
			if math.Abs(d) > 1e-9 {
				t.Errorf("m=%d s=%d: SBD(x, shift(x)) = %v, want 0", m, s, d)
			}
			if !almostEqualSlices(aligned, x, 1e-9) {
				t.Errorf("m=%d s=%d: SBD did not recover the original alignment", m, s)
			}
			v, recovered := MaxNCC(x, y, NCCc)
			if math.Abs(v-1) > 1e-9 {
				t.Errorf("m=%d s=%d: max NCCc = %v, want 1", m, s, v)
			}
			if recovered != -s {
				t.Errorf("m=%d s=%d: recovered shift %d, want %d", m, s, recovered, -s)
			}
		}
	}
}

func TestSBDValueSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, m := range []int{17, 50, 128} {
		for trial := 0; trial < 5; trial++ {
			x := ts.ZNormalize(randSeries(m, rng))
			y := ts.ZNormalize(randSeries(m, rng))
			if dxy, dyx := SBDDist(x, y), SBDDist(y, x); math.Abs(dxy-dyx) > 1e-12 {
				t.Errorf("m=%d: SBD(x,y)=%v != SBD(y,x)=%v", m, dxy, dyx)
			}
		}
	}
}

// TestNCCcReversalSymmetry: cross-correlation reverses under argument
// exchange, NCCc(x,y)[w] == NCCc(y,x)[2m-2-w], which implies the value
// symmetry of SBD and shift anti-symmetry of the alignment.
func TestNCCcReversalSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, m := range []int{9, 32, 70} {
		x := randSeries(m, rng)
		y := randSeries(m, rng)
		fwd := NCCSequence(x, y, NCCc)
		rev := NCCSequence(y, x, NCCc)
		for w := range fwd {
			if math.Abs(fwd[w]-rev[len(rev)-1-w]) > 1e-9 {
				t.Fatalf("m=%d w=%d: NCCc(x,y)[w]=%v != NCCc(y,x)[2m-2-w]=%v",
					m, w, fwd[w], rev[len(rev)-1-w])
			}
		}
		vxy, sxy := MaxNCC(x, y, NCCc)
		vyx, syx := MaxNCC(y, x, NCCc)
		if math.Abs(vxy-vyx) > 1e-9 {
			t.Errorf("m=%d: max NCCc asymmetric: %v vs %v", m, vxy, vyx)
		}
		if sxy != -syx {
			t.Errorf("m=%d: shifts not anti-symmetric: %d vs %d", m, sxy, syx)
		}
	}
}

// TestSBDAffineInvarianceAfterZNorm: z-normalization removes any positive
// affine transform a·x+b, so SBD on z-normalized inputs must not see it —
// the translation/scaling invariances of Section 3.1.
func TestSBDAffineInvarianceAfterZNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, m := range []int{25, 80} {
		x := randSeries(m, rng)
		y := randSeries(m, rng)
		base := SBDDist(ts.ZNormalize(x), ts.ZNormalize(y))
		for _, tf := range []struct{ a, b float64 }{{3.5, 0}, {1, -12}, {0.25, 7.5}} {
			xt := make([]float64, m)
			for i := range x {
				xt[i] = tf.a*x[i] + tf.b
			}
			d := SBDDist(ts.ZNormalize(xt), ts.ZNormalize(y))
			if math.Abs(d-base) > 1e-9 {
				t.Errorf("m=%d a=%v b=%v: SBD changed under affine transform: %v vs %v",
					m, tf.a, tf.b, d, base)
			}
		}
	}
}

// TestPairwiseMatrixProperties: any Measure's matrix must be symmetric with
// a zero diagonal (both SBD and ED are true dissimilarities on identical
// inputs), and the parallel builder must be bit-identical to serial for
// every worker count.
func TestPairwiseMatrixProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, m := 17, 40
	data := make([][]float64, n)
	for i := range data {
		data[i] = ts.ZNormalize(randSeries(m, rng))
	}
	for _, msr := range []Measure{SBDMeasure{}, EDMeasure{}} {
		serial := PairwiseMatrixWorkers(msr, data, 1)
		for i := 0; i < n; i++ {
			if serial[i][i] != 0 {
				t.Errorf("%s: diagonal[%d] = %v, want 0", msr.Name(), i, serial[i][i])
			}
			for j := 0; j < n; j++ {
				if serial[i][j] != serial[j][i] {
					t.Errorf("%s: matrix asymmetric at (%d,%d)", msr.Name(), i, j)
				}
			}
		}
		for _, workers := range []int{2, 8} {
			par := PairwiseMatrixWorkers(msr, data, workers)
			for i := range serial {
				for j := range serial[i] {
					if par[i][j] != serial[i][j] {
						t.Fatalf("%s workers=%d: matrix[%d][%d] = %v, serial = %v (must be bit-identical)",
							msr.Name(), workers, i, j, par[i][j], serial[i][j])
					}
				}
			}
		}
	}
}

// TestSBDTriangleRange pins the codomain: SBD stays within [0, 2] on
// z-normalized inputs for every variant, including adversarial
// anti-correlated pairs.
func TestSBDTriangleRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := 60
	x := ts.ZNormalize(randSeries(m, rng))
	neg := make([]float64, m)
	for i := range x {
		neg[i] = -x[i]
	}
	for _, pair := range [][2][]float64{{x, neg}, {x, ts.Reverse(x)}, {neg, ts.Reverse(x)}} {
		for _, fn := range []func(a, b []float64) (float64, []float64){SBD, SBDNoPow2, SBDNoFFT} {
			d, _ := fn(pair[0], pair[1])
			if d < 0 || d > 2 {
				t.Errorf("SBD out of [0, 2]: %v", d)
			}
		}
	}
}
