// Package dist implements the time-series distance measures evaluated in
// the k-Shape paper (Sections 2.3 and 3.1): Euclidean distance (ED),
// Dynamic Time Warping (DTW), constrained DTW with a Sakoe-Chiba band
// (cDTW), the LB_Keogh lower bound used to prune 1-NN search, the
// cross-correlation normalizations NCCb/NCCu/NCCc, and the shape-based
// distance SBD with its three implementation variants from Table 2
// (optimized FFT, FFT without power-of-two padding, and naive O(m²)).
package dist

import (
	"kshape/internal/obs"
	"kshape/internal/par"
)

// Measure is a dissimilarity between two equal-length time series. A
// smaller value means more similar; implementations define their own range
// (e.g. SBD is in [0, 2], ED in [0, ∞)).
type Measure interface {
	// Name returns the short identifier used in experiment tables
	// (e.g. "ED", "SBD", "cDTW5").
	Name() string
	// Distance returns the dissimilarity of x and y.
	Distance(x, y []float64) float64
}

// Func adapts a plain function to the Measure interface.
type Func struct {
	Label string
	Fn    func(x, y []float64) float64
}

// Name implements Measure.
func (f Func) Name() string { return f.Label }

// Distance implements Measure.
func (f Func) Distance(x, y []float64) float64 { return f.Fn(x, y) }

// PairwiseMatrix computes the full symmetric n×n dissimilarity matrix of
// data under d, parallelized across all CPUs. This is the matrix that
// non-scalable methods (PAM, hierarchical, spectral) require as input —
// the paper's main scalability critique of those methods.
func PairwiseMatrix(d Measure, data [][]float64) [][]float64 {
	return PairwiseMatrixWorkers(d, data, 0)
}

// PairwiseMatrixWorkers is PairwiseMatrix with an explicit degree of
// parallelism (par.Resolve semantics: <= 0 means runtime.NumCPU(), 1 means
// serial). The result is identical for every worker count: each upper-
// triangle entry is computed exactly once and mirrored afterwards.
func PairwiseMatrixWorkers(d Measure, data [][]float64, workers int) [][]float64 {
	defer obs.StartPhase(obs.PhasePairwiseMatrix)()
	n := len(data)
	out := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range out {
		out[i] = backing[i*n : (i+1)*n]
	}
	// The optimized SBD routes through the spectrum cache: one forward
	// transform per series instead of two per pair, pooled per-worker
	// scratch, and a half-size inverse per pair.
	if _, ok := d.(SBDMeasure); ok && n > 0 && len(data[0]) > 0 {
		NewSBDBatch(data).PairwiseInto(out, workers)
		return out
	}
	// Row i costs n-1-i evaluations; par's dynamic chunk scheduling keeps
	// workers busy despite the triangular skew.
	par.For(workers, n, func(i int) {
		for j := i + 1; j < n; j++ {
			out[i][j] = d.Distance(data[i], data[j])
		}
	})
	// Mirror the upper triangle.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			out[i][j] = out[j][i]
		}
	}
	return out
}
