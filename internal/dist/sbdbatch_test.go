package dist

import (
	"math"
	"math/rand"
	"testing"

	"kshape/internal/ts"
)

func TestSBDBatchMatchesPlainSBD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{4, 17, 64, 128} {
		n := 12
		data := make([][]float64, n)
		for i := range data {
			data[i] = ts.ZNormalize(randSeries(m, rng))
		}
		batch := NewSBDBatch(data)
		if batch.Len() != n {
			t.Fatalf("Len = %d", batch.Len())
		}
		for trial := 0; trial < 5; trial++ {
			query := ts.ZNormalize(randSeries(m, rng))
			q := batch.Query(query)
			for i := 0; i < n; i++ {
				gotD, gotShift := q.Distance(i)
				wantD, wantAligned := SBD(query, data[i])
				if math.Abs(gotD-wantD) > 1e-9 {
					t.Fatalf("m=%d i=%d: batch distance %v != plain %v", m, i, gotD, wantD)
				}
				aligned := ts.Shift(data[i], gotShift)
				for p := range aligned {
					if math.Abs(aligned[p]-wantAligned[p]) > 1e-9 {
						t.Fatalf("m=%d i=%d: batch alignment diverges at %d", m, i, p)
					}
				}
			}
		}
	}
}

func TestSBDBatchDegenerate(t *testing.T) {
	data := [][]float64{make([]float64, 8), ts.ZNormalize(randSeries(8, rand.New(rand.NewSource(2))))}
	batch := NewSBDBatch(data)
	q := batch.Query(data[1])
	if d, shift := q.Distance(0); d != 1 || shift != 0 {
		t.Errorf("degenerate member: d=%v shift=%d, want 1, 0", d, shift)
	}
	zq := batch.Query(make([]float64, 8))
	if d, _ := zq.Distance(1); d != 1 {
		t.Errorf("degenerate query: d=%v, want 1", d)
	}
}

func TestSBDBatchEmpty(t *testing.T) {
	b := NewSBDBatch(nil)
	if b.Len() != 0 {
		t.Errorf("empty batch Len = %d", b.Len())
	}
}

func TestSBDBatchPanicsOnRaggedData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSBDBatch([][]float64{{1, 2}, {1, 2, 3}})
}

func TestSBDBatchPanicsOnBadQueryLength(t *testing.T) {
	b := NewSBDBatch([][]float64{{1, 2, 3}})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.Query([]float64{1, 2})
}

func TestSBDBatchDoesNotObserveInputMutation(t *testing.T) {
	x := []float64{1, -1, 1, -1}
	y := []float64{1, 1, -1, -1}
	b := NewSBDBatch([][]float64{x, y})
	q := b.Query(ts.ZNormalize([]float64{1, -1, 1, -1}))
	before, _ := q.Distance(0)
	x[0] = 99 // mutate after precompute
	q2 := b.Query(ts.ZNormalize([]float64{1, -1, 1, -1}))
	after, _ := q2.Distance(0)
	if before != after {
		t.Error("batch observed input mutation; spectra must be captured at construction")
	}
}
