package dist

import (
	"fmt"
	"math"

	"kshape/internal/obs"
)

// ED computes the Euclidean distance between equal-length series x and y
// (Equation 3 of the paper). It panics on a length mismatch: callers are
// expected to validate dataset shape once, not per comparison.
func ED(x, y []float64) float64 {
	return math.Sqrt(SquaredED(x, y))
}

// SquaredED returns the squared Euclidean distance, useful when only the
// ordering matters (1-NN search, k-means objectives) as it skips the sqrt.
func SquaredED(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dist: ED length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	// Counted after the loop: an opaque call before it keeps the loop from
	// optimizing and costs ~40% on this sub-100ns kernel; here it is free.
	obs.Inc(obs.CounterED)
	return s
}

// EDMeasure is the Measure for Euclidean distance.
type EDMeasure struct{}

// Name implements Measure.
func (EDMeasure) Name() string { return "ED" }

// Distance implements Measure.
func (EDMeasure) Distance(x, y []float64) float64 { return ED(x, y) }
