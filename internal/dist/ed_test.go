package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestED(t *testing.T) {
	cases := []struct {
		x, y []float64
		want float64
	}{
		{[]float64{0, 0}, []float64{3, 4}, 5},
		{[]float64{1, 2, 3}, []float64{1, 2, 3}, 0},
		{[]float64{}, []float64{}, 0},
		{[]float64{-1}, []float64{1}, 2},
	}
	for _, c := range cases {
		if got := ED(c.x, c.y); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ED(%v, %v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestEDPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ED([]float64{1}, []float64{1, 2})
}

func TestEDMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() []float64 {
		x := make([]float64, 20)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		return x
	}
	f := func(_ int) bool {
		x, y, z := gen(), gen(), gen()
		dxy, dyx := ED(x, y), ED(y, x)
		if dxy != dyx { // symmetry
			return false
		}
		if dxy < 0 { // non-negativity
			return false
		}
		// Triangle inequality.
		return ED(x, z) <= dxy+ED(y, z)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSquaredEDConsistent(t *testing.T) {
	x := []float64{1, 5, -2}
	y := []float64{0, 3, 3}
	if got, want := SquaredED(x, y), ED(x, y)*ED(x, y); math.Abs(got-want) > 1e-9 {
		t.Errorf("SquaredED = %v, ED² = %v", got, want)
	}
}

func TestEDMeasureInterface(t *testing.T) {
	var m Measure = EDMeasure{}
	if m.Name() != "ED" {
		t.Errorf("Name = %q", m.Name())
	}
	if d := m.Distance([]float64{0}, []float64{2}); d != 2 {
		t.Errorf("Distance = %v", d)
	}
}

func TestFuncAdapter(t *testing.T) {
	m := Func{Label: "zero", Fn: func(x, y []float64) float64 { return 0 }}
	if m.Name() != "zero" || m.Distance(nil, nil) != 0 {
		t.Error("Func adapter broken")
	}
}

func TestPairwiseMatrix(t *testing.T) {
	data := [][]float64{{0, 0}, {3, 4}, {0, 1}}
	m := PairwiseMatrix(EDMeasure{}, data)
	if len(m) != 3 {
		t.Fatalf("size = %d", len(m))
	}
	for i := 0; i < 3; i++ {
		if m[i][i] != 0 {
			t.Errorf("diagonal (%d) = %v", i, m[i][i])
		}
		for j := 0; j < 3; j++ {
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
	if math.Abs(m[0][1]-5) > 1e-12 {
		t.Errorf("m[0][1] = %v, want 5", m[0][1])
	}
}

func TestPairwiseMatrixSingle(t *testing.T) {
	m := PairwiseMatrix(EDMeasure{}, [][]float64{{1, 2}})
	if len(m) != 1 || m[0][0] != 0 {
		t.Errorf("single-element matrix = %v", m)
	}
}
