package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kshape/internal/ts"
)

func TestNCCNormString(t *testing.T) {
	if NCCb.String() != "NCCb" || NCCu.String() != "NCCu" || NCCc.String() != "NCCc" {
		t.Error("NCCNorm names wrong")
	}
	if NCCNorm(99).String() != "NCCNorm(99)" {
		t.Error("unknown norm string")
	}
}

func TestNCCSequenceLength(t *testing.T) {
	x := randSeries(100, rand.New(rand.NewSource(1)))
	for _, norm := range []NCCNorm{NCCb, NCCu, NCCc} {
		cc := NCCSequence(x, x, norm)
		if len(cc) != 199 {
			t.Errorf("%v: length %d, want 199", norm, len(cc))
		}
	}
}

func TestNCCcBounded(t *testing.T) {
	// Coefficient normalization is a correlation: every entry in [-1, 1].
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		_ = rng
		m := 8 + r.Intn(64)
		x := randSeries(m, r)
		y := randSeries(m, r)
		for _, v := range NCCSequence(x, y, NCCc) {
			if v < -1-1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNCCcSelfPeakAtZeroShift(t *testing.T) {
	x := ts.ZNormalize(randSeries(128, rand.New(rand.NewSource(3))))
	v, shift := MaxNCC(x, x, NCCc)
	if math.Abs(v-1) > 1e-9 {
		t.Errorf("self NCCc max = %v, want 1", v)
	}
	if shift != 0 {
		t.Errorf("self shift = %d, want 0", shift)
	}
}

func TestMaxNCCDetectsShift(t *testing.T) {
	// y delayed by 7 relative to x: aligning needs y moved LEFT by 7, i.e.
	// computing MaxNCC(x, y) must report shift -7 (y moves left), while
	// MaxNCC(y, x) reports +7.
	m := 64
	rng := rand.New(rand.NewSource(4))
	base := randSeries(m, rng)
	x := ts.ZNormalize(base)
	y := ts.ZNormalize(ts.Shift(base, 7))
	_, shiftXY := MaxNCC(x, y, NCCc)
	if shiftXY != -7 {
		t.Errorf("shift(x, y-delayed) = %d, want -7", shiftXY)
	}
	_, shiftYX := MaxNCC(y, x, NCCc)
	if shiftYX != 7 {
		t.Errorf("shift(y-delayed, x) = %d, want 7", shiftYX)
	}
}

func TestSBDRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		m := 4 + rng.Intn(100)
		x := randSeries(m, rng)
		y := randSeries(m, rng)
		d, _ := SBD(x, y)
		if d < -1e-9 || d > 2+1e-9 {
			t.Fatalf("SBD = %v outside [0, 2]", d)
		}
	}
}

func TestSBDSelfZero(t *testing.T) {
	x := randSeries(50, rand.New(rand.NewSource(6)))
	d, aligned := SBD(x, x)
	if math.Abs(d) > 1e-9 {
		t.Errorf("SBD(x,x) = %v", d)
	}
	for i := range x {
		if math.Abs(aligned[i]-x[i]) > 1e-12 {
			t.Errorf("self-alignment moved the series at %d", i)
			break
		}
	}
}

func TestSBDScaleInvarianceAfterZNorm(t *testing.T) {
	// SBD on z-normalized inputs is invariant to amplitude scaling of the
	// raw series — the scaling invariance of Section 2.2.
	rng := rand.New(rand.NewSource(7))
	raw := randSeries(80, rng)
	x := ts.ZNormalize(raw)
	scaled := make([]float64, len(raw))
	for i, v := range raw {
		scaled[i] = 42*v + 17
	}
	y := ts.ZNormalize(scaled)
	d, _ := SBD(x, y)
	if math.Abs(d) > 1e-9 {
		t.Errorf("SBD after z-norm of a*x+b = %v, want 0", d)
	}
}

func TestSBDShiftInvariance(t *testing.T) {
	// A shifted copy should be nearly distance 0, with the aligned output
	// matching the original where the supports overlap.
	m := 128
	rng := rand.New(rand.NewSource(8))
	base := ts.ZNormalize(randSeries(m, rng))
	shifted := ts.Shift(base, 10)
	d, aligned := SBD(base, shifted)
	if d > 0.12 {
		t.Errorf("SBD to 10-shifted copy = %v, want small", d)
	}
	// aligned should shift `shifted` back left by 10.
	mismatch := 0.0
	for i := 0; i < m-10; i++ {
		mismatch += math.Abs(aligned[i] - base[i])
	}
	if mismatch/float64(m-10) > 1e-6 {
		t.Errorf("aligned sequence does not recover the original (avg |err| = %v)", mismatch/float64(m-10))
	}
}

func TestSBDSymmetryOfValue(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		m := 8 + rng.Intn(64)
		x := randSeries(m, rng)
		y := randSeries(m, rng)
		dxy, _ := SBD(x, y)
		dyx, _ := SBD(y, x)
		if math.Abs(dxy-dyx) > 1e-9 {
			t.Fatalf("SBD not symmetric: %v vs %v", dxy, dyx)
		}
	}
}

func TestSBDVariantsAgree(t *testing.T) {
	// All three implementation variants of Table 2 must produce identical
	// distances (they differ only in speed).
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		m := 4 + rng.Intn(200)
		x := randSeries(m, rng)
		y := randSeries(m, rng)
		d0, a0 := SBD(x, y)
		d1, a1 := SBDNoPow2(x, y)
		d2, a2 := SBDNoFFT(x, y)
		if math.Abs(d0-d1) > 1e-7 || math.Abs(d0-d2) > 1e-7 {
			t.Fatalf("m=%d: variant distances diverge: %v, %v, %v", m, d0, d1, d2)
		}
		for i := range a0 {
			if math.Abs(a0[i]-a1[i]) > 1e-6 || math.Abs(a0[i]-a2[i]) > 1e-6 {
				t.Fatalf("m=%d: aligned outputs diverge at %d", m, i)
			}
		}
	}
}

func TestSBDDegenerateZeroSeries(t *testing.T) {
	// A z-normalized constant is all zeros; SBD must stay defined (dist 1).
	x := ts.ZNormalize([]float64{5, 5, 5, 5})
	y := randSeries(4, rand.New(rand.NewSource(11)))
	d, aligned := SBD(x, y)
	if d != 1 {
		t.Errorf("SBD with zero-energy input = %v, want 1", d)
	}
	if len(aligned) != 4 {
		t.Errorf("aligned length = %d", len(aligned))
	}
	if d2, _ := SBD(x, x); d2 != 1 {
		t.Errorf("SBD(0,0) = %v, want 1 by the degenerate-input convention", d2)
	}
}

func TestSBDEmpty(t *testing.T) {
	d, aligned := SBD(nil, nil)
	if d != 0 || aligned != nil {
		t.Errorf("SBD(nil,nil) = %v, %v", d, aligned)
	}
}

func TestSBDPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SBD([]float64{1, 2}, []float64{1})
}

func TestSBDMeasures(t *testing.T) {
	x := ts.ZNormalize(randSeries(32, rand.New(rand.NewSource(12))))
	for _, m := range []Measure{SBDMeasure{}, SBDNoPow2Measure{}, SBDNoFFTMeasure{}} {
		if d := m.Distance(x, x); math.Abs(d) > 1e-9 {
			t.Errorf("%s self distance = %v", m.Name(), d)
		}
	}
	if (SBDMeasure{}).Name() != "SBD" ||
		(SBDNoPow2Measure{}).Name() != "SBDNoPow2" ||
		(SBDNoFFTMeasure{}).Name() != "SBDNoFFT" {
		t.Error("measure names wrong")
	}
}

func TestNCCMeasure(t *testing.T) {
	x := ts.ZNormalize(randSeries(32, rand.New(rand.NewSource(13))))
	for _, norm := range []NCCNorm{NCCb, NCCu, NCCc} {
		m := NCCMeasure{Norm: norm}
		if m.Name() != norm.String() {
			t.Errorf("Name = %q", m.Name())
		}
		// Self-dissimilarity should be minimal among random competitors.
		self := m.Distance(x, x)
		other := m.Distance(x, ts.ZNormalize(randSeries(32, rand.New(rand.NewSource(14)))))
		if self >= other {
			t.Errorf("%v: self distance %v not below other %v", norm, self, other)
		}
	}
}

func TestNCCuUnbiasedAtLargeLag(t *testing.T) {
	// The unbiased estimator divides by the overlap, so a perfect match at
	// a large lag is not attenuated. Construct x with a motif and y with the
	// same motif at a lag; NCCu should rank the true lag above NCCb's pick
	// when the overlap is small.
	m := 64
	x := make([]float64, m)
	y := make([]float64, m)
	for i := 0; i < 8; i++ {
		x[i] = 1
		y[m-8+i] = 1
	}
	ccb := NCCSequence(x, y, NCCb)
	ccu := NCCSequence(x, y, NCCu)
	// The motif match occurs at lag -(m-8).
	lag := -(m - 8)
	idx := lag + m - 1
	if ccu[idx] <= ccb[idx] {
		t.Errorf("NCCu (%v) should exceed NCCb (%v) at the low-overlap match", ccu[idx], ccb[idx])
	}
	if math.Abs(ccu[idx]-1) > 1e-9 {
		t.Errorf("NCCu at perfect 8-sample overlap = %v, want 1 (8/8)", ccu[idx])
	}
}

func TestNCCSequencePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NCCSequence([]float64{1}, []float64{1, 2}, NCCc)
}

func TestNCCSequenceEmptyInput(t *testing.T) {
	if cc := NCCSequence(nil, nil, NCCc); cc != nil {
		t.Errorf("empty input should give nil, got %v", cc)
	}
}
