package dist

import "math"

// This file implements the elastic distance measures that the paper's
// Section 2.3 discussion and the comparative studies it builds on (Ding et
// al., Wang et al., Giusti & Batista) evaluate alongside ED and DTW:
// LCSS, EDR, ERP, MSM, and TWED. The paper's evaluation focuses on
// ED/DTW/cDTW because those studies found them dominant; these measures are
// provided so the comparison can be extended (see kbench table2x) and
// because a time-series clustering library is expected to offer them.

// LCSS computes the Longest Common SubSequence similarity count for real
// sequences: coordinates match when they differ by at most epsilon and
// their indices by at most delta (the matching window; delta < 0 means
// unconstrained). Vlachos et al.
func LCSS(x, y []float64, epsilon float64, delta int) int {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return 0
	}
	if delta < 0 {
		delta = n + m
	}
	prev := make([]int, m+1)
	curr := make([]int, m+1)
	for i := 1; i <= n; i++ {
		for j := range curr {
			curr[j] = 0
		}
		lo := maxInt(1, i-delta)
		hi := minInt(m, i+delta)
		for j := lo; j <= hi; j++ {
			if math.Abs(x[i-1]-y[j-1]) <= epsilon {
				curr[j] = prev[j-1] + 1
			} else {
				curr[j] = maxInt(prev[j], curr[j-1])
			}
		}
		prev, curr = curr, prev
	}
	return prev[m]
}

// LCSSDistance converts the LCSS similarity into a dissimilarity in [0, 1]:
// 1 − LCSS/min(n, m).
func LCSSDistance(x, y []float64, epsilon float64, delta int) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return 1
	}
	return 1 - float64(LCSS(x, y, epsilon, delta))/float64(minInt(n, m))
}

// LCSSMeasure is the Measure adapter for LCSSDistance. Epsilon defaults to
// 0.5 (half a standard deviation of a z-normalized series) and Delta to
// unconstrained when left zero-valued — common defaults in the literature.
type LCSSMeasure struct {
	Epsilon float64
	Delta   int
}

// Name implements Measure.
func (LCSSMeasure) Name() string { return "LCSS" }

// Distance implements Measure.
func (l LCSSMeasure) Distance(x, y []float64) float64 {
	eps := l.Epsilon
	//lint:ignore floatcmp option-unset sentinel; exactly 0 selects the default threshold
	if eps == 0 {
		eps = 0.5
	}
	delta := l.Delta
	if delta == 0 {
		delta = -1
	}
	return LCSSDistance(x, y, eps, delta)
}

// EDR computes the Edit Distance on Real sequences (Chen et al.): an edit
// distance where two coordinates match (cost 0) when they differ by at most
// epsilon, substitution otherwise costs 1, and insertions/deletions cost 1.
func EDR(x, y []float64, epsilon float64) int {
	n, m := len(x), len(y)
	prev := make([]int, m+1)
	curr := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		curr[0] = i
		for j := 1; j <= m; j++ {
			sub := 1
			if math.Abs(x[i-1]-y[j-1]) <= epsilon {
				sub = 0
			}
			curr[j] = minInt(prev[j-1]+sub, minInt(prev[j]+1, curr[j-1]+1))
		}
		prev, curr = curr, prev
	}
	return prev[m]
}

// EDRMeasure is the Measure adapter for EDR, normalized by max(n, m) so the
// value lies in [0, 1]. Epsilon defaults to 0.5 when zero.
type EDRMeasure struct {
	Epsilon float64
}

// Name implements Measure.
func (EDRMeasure) Name() string { return "EDR" }

// Distance implements Measure.
func (e EDRMeasure) Distance(x, y []float64) float64 {
	if len(x) == 0 && len(y) == 0 {
		return 0
	}
	eps := e.Epsilon
	//lint:ignore floatcmp option-unset sentinel; exactly 0 selects the default threshold
	if eps == 0 {
		eps = 0.5
	}
	return float64(EDR(x, y, eps)) / float64(maxInt(len(x), len(y)))
}

// ERP computes the Edit distance with Real Penalty (Chen & Ng): an edit
// distance whose gap operations are penalized by the distance to a constant
// reference value g (0 for z-normalized series) and substitutions by
// |x_i − y_j|. Unlike DTW, ERP is a metric (it satisfies the triangle
// inequality).
func ERP(x, y []float64, g float64) float64 {
	n, m := len(x), len(y)
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + math.Abs(y[j-1]-g)
	}
	for i := 1; i <= n; i++ {
		curr[0] = prev[0] + math.Abs(x[i-1]-g)
		for j := 1; j <= m; j++ {
			sub := prev[j-1] + math.Abs(x[i-1]-y[j-1])
			del := prev[j] + math.Abs(x[i-1]-g)
			ins := curr[j-1] + math.Abs(y[j-1]-g)
			curr[j] = math.Min(sub, math.Min(del, ins))
		}
		prev, curr = curr, prev
	}
	return prev[m]
}

// ERPMeasure is the Measure adapter for ERP with gap reference G
// (0, the mean of a z-normalized series, when unset).
type ERPMeasure struct {
	G float64
}

// Name implements Measure.
func (ERPMeasure) Name() string { return "ERP" }

// Distance implements Measure.
func (e ERPMeasure) Distance(x, y []float64) float64 { return ERP(x, y, e.G) }

// MSM computes the Move-Split-Merge distance (Stefan, Athitsos & Das): an
// edit distance whose operations are value moves (cost |x−y|) and
// split/merge operations with constant cost c. MSM is a metric.
func MSM(x, y []float64, c float64) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	msmCost := func(v, prev, other float64) float64 {
		if (prev <= v && v <= other) || (other <= v && v <= prev) {
			return c
		}
		return c + math.Min(math.Abs(v-prev), math.Abs(v-other))
	}
	prev := make([]float64, m)
	curr := make([]float64, m)
	prev[0] = math.Abs(x[0] - y[0])
	for j := 1; j < m; j++ {
		prev[j] = prev[j-1] + msmCost(y[j], y[j-1], x[0])
	}
	for i := 1; i < n; i++ {
		curr[0] = prev[0] + msmCost(x[i], x[i-1], y[0])
		for j := 1; j < m; j++ {
			move := prev[j-1] + math.Abs(x[i]-y[j])
			split := prev[j] + msmCost(x[i], x[i-1], y[j])
			merge := curr[j-1] + msmCost(y[j], x[i], y[j-1])
			curr[j] = math.Min(move, math.Min(split, merge))
		}
		prev, curr = curr, prev
	}
	return prev[m-1]
}

// MSMMeasure is the Measure adapter for MSM with split/merge cost C
// (0.5 when unset, the midpoint of the costs Stefan et al. cross-validate).
type MSMMeasure struct {
	C float64
}

// Name implements Measure.
func (MSMMeasure) Name() string { return "MSM" }

// Distance implements Measure.
func (mm MSMMeasure) Distance(x, y []float64) float64 {
	c := mm.C
	//lint:ignore floatcmp option-unset sentinel; exactly 0 selects the default penalty
	if c == 0 {
		c = 0.5
	}
	return MSM(x, y, c)
}

// TWED computes the Time-Warp Edit Distance (Marteau): an elastic measure
// with a stiffness parameter nu that penalizes warping by the time-stamp
// difference and a constant deletion penalty lambda. TWED is a metric for
// nu > 0. Timestamps are taken as the sample indices.
func TWED(x, y []float64, lambda, nu float64) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	const inf = math.MaxFloat64
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	prev[0] = 0
	for j := 1; j <= m; j++ {
		yPrev := 0.0
		if j > 1 {
			yPrev = y[j-2]
		}
		prev[j] = prev[j-1] + math.Abs(y[j-1]-yPrev) + nu + lambda
	}
	for i := 1; i <= n; i++ {
		// The virtual 0th sample of each series is 0, consistent with the
		// deletion initialization above.
		xPrev := 0.0
		if i > 1 {
			xPrev = x[i-2]
		}
		curr[0] = prev[0] + math.Abs(x[i-1]-xPrev) + nu + lambda
		for j := 1; j <= m; j++ {
			yPrev := 0.0
			if j > 1 {
				yPrev = y[j-2]
			}
			// Match both heads (Marteau's γ_match: current and previous
			// sample differences plus twice the stiffness term).
			match := prev[j-1] + math.Abs(x[i-1]-y[j-1]) + math.Abs(xPrev-yPrev) +
				2*nu*math.Abs(float64(i-j))
			// Delete from x / delete from y.
			delX := prev[j] + math.Abs(x[i-1]-xPrev) + nu + lambda
			delY := curr[j-1] + math.Abs(y[j-1]-yPrev) + nu + lambda
			curr[j] = math.Min(match, math.Min(delX, delY))
			if curr[j] > inf {
				curr[j] = inf
			}
		}
		prev, curr = curr, prev
	}
	return prev[m]
}

// TWEDMeasure is the Measure adapter for TWED. Lambda defaults to 1 and Nu
// to 0.001 when unset (mid-range values from Marteau's grid).
type TWEDMeasure struct {
	Lambda float64
	Nu     float64
}

// Name implements Measure.
func (TWEDMeasure) Name() string { return "TWED" }

// Distance implements Measure.
func (t TWEDMeasure) Distance(x, y []float64) float64 {
	lambda, nu := t.Lambda, t.Nu
	//lint:ignore floatcmp option-unset sentinel; exactly 0 selects the default penalty
	if lambda == 0 {
		lambda = 1
	}
	//lint:ignore floatcmp option-unset sentinel; exactly 0 selects the default stiffness
	if nu == 0 {
		nu = 0.001
	}
	return TWED(x, y, lambda, nu)
}

// ElasticMeasures returns the extended measure set (with literature-default
// parameters) used by the table2x experiment.
func ElasticMeasures() []Measure {
	return []Measure{
		LCSSMeasure{},
		EDRMeasure{},
		ERPMeasure{},
		MSMMeasure{},
		TWEDMeasure{},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
