package dist

import (
	"math"
	"math/rand"
	"testing"

	"kshape/internal/ts"
)

// The repository carries four SBD implementations: the padded-FFT fast path
// (SBD), the unpadded-FFT variant (SBDNoPow2), the naive O(m²) correlation
// (SBDNoFFT), and the precomputed-spectrum batch path (SBDBatch/SBDQuery)
// used by the k-Shape inner loop. They exist for Table 2's runtime
// comparison, but they must all compute the same function; these tests pin
// the cross-implementation agreement on a sweep of lengths chosen to hit
// every padding regime: odd, even, exact powers of two, and one past a
// power of two.

const sbdTol = 1e-9

var equivalenceLengths = []int{7, 16, 33, 64, 100, 128}

func almostEqualSlices(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestSBDImplementationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, m := range equivalenceLengths {
		for trial := 0; trial < 5; trial++ {
			x := ts.ZNormalize(randSeries(m, rng))
			y := ts.ZNormalize(randSeries(m, rng))

			dFast, aFast := SBD(x, y)
			dNoPow2, aNoPow2 := SBDNoPow2(x, y)
			dNaive, aNaive := SBDNoFFT(x, y)

			if math.Abs(dFast-dNoPow2) > sbdTol {
				t.Errorf("m=%d: SBD=%v vs SBDNoPow2=%v", m, dFast, dNoPow2)
			}
			if math.Abs(dFast-dNaive) > sbdTol {
				t.Errorf("m=%d: SBD=%v vs SBDNoFFT=%v", m, dFast, dNaive)
			}
			if !almostEqualSlices(aFast, aNoPow2, sbdTol) {
				t.Errorf("m=%d: aligned output differs between SBD and SBDNoPow2", m)
			}
			if !almostEqualSlices(aFast, aNaive, sbdTol) {
				t.Errorf("m=%d: aligned output differs between SBD and SBDNoFFT", m)
			}
		}
	}
}

func TestSBDBatchAgreesWithAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range equivalenceLengths {
		n := 6
		data := make([][]float64, n)
		for i := range data {
			data[i] = ts.ZNormalize(randSeries(m, rng))
		}
		batch := NewSBDBatch(data)
		q := ts.ZNormalize(randSeries(m, rng))
		query := batch.Query(q)
		for i := 0; i < n; i++ {
			dBatch, shift := query.Distance(i)
			dPlain, aligned := SBD(q, data[i])
			if math.Abs(dBatch-dPlain) > sbdTol {
				t.Errorf("m=%d i=%d: batch dist %v vs SBD %v", m, i, dBatch, dPlain)
			}
			// The batch path reports the alignment as a shift rather than a
			// materialized series; applying it must reproduce SBD's aligned
			// output.
			if !almostEqualSlices(ts.Shift(data[i], shift), aligned, sbdTol) {
				t.Errorf("m=%d i=%d: batch shift %d does not reproduce SBD alignment", m, i, shift)
			}
			dNaive, _ := SBDNoFFT(q, data[i])
			if math.Abs(dBatch-dNaive) > sbdTol {
				t.Errorf("m=%d i=%d: batch dist %v vs naive %v", m, i, dBatch, dNaive)
			}
		}
	}
}

// TestSBDQueryScratchSharing pins the concurrency contract of
// DistanceScratch: a query's spectrum is read-only, so any number of
// scratch buffers must observe identical results, and the convenience
// Distance method is exactly DistanceScratch with the query's own buffer.
func TestSBDQueryScratchSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := 50
	data := make([][]float64, 8)
	for i := range data {
		data[i] = ts.ZNormalize(randSeries(m, rng))
	}
	batch := NewSBDBatch(data)
	query := batch.Query(ts.ZNormalize(randSeries(m, rng)))
	for i := range data {
		d1, s1 := query.Distance(i)
		d2, s2 := query.DistanceScratch(i, batch.Scratch())
		if d1 != d2 || s1 != s2 {
			t.Fatalf("i=%d: Distance (%v, %d) != DistanceScratch (%v, %d)", i, d1, s1, d2, s2)
		}
	}
}

// TestSBDAllZeroConventionAcrossImplementations: every implementation must
// agree on the degenerate all-zero case (a z-normalized constant series):
// distance 1, no shift.
func TestSBDAllZeroConventionAcrossImplementations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{7, 16, 100} {
		zero := make([]float64, m)
		x := ts.ZNormalize(randSeries(m, rng))

		for _, tc := range []struct {
			name string
			fn   func(a, b []float64) (float64, []float64)
		}{
			{"SBD", SBD}, {"SBDNoPow2", SBDNoPow2}, {"SBDNoFFT", SBDNoFFT},
		} {
			for _, pair := range [][2][]float64{{x, zero}, {zero, x}, {zero, zero}} {
				d, aligned := tc.fn(pair[0], pair[1])
				if d != 1 {
					t.Errorf("%s m=%d: zero-series dist = %v, want 1", tc.name, m, d)
				}
				if !almostEqualSlices(aligned, pair[1], 0) {
					t.Errorf("%s m=%d: zero-series aligned output shifted; want unshifted input", tc.name, m)
				}
			}
		}

		batch := NewSBDBatch([][]float64{zero, x})
		for _, q := range [][]float64{x, zero} {
			query := batch.Query(q)
			d, shift := query.Distance(0)
			if d != 1 || shift != 0 {
				t.Errorf("batch m=%d: query vs zero series = (%v, %d), want (1, 0)", m, d, shift)
			}
		}
	}
}

// TestSBDMeasureAdaptersAgree closes the loop at the Measure interface:
// the three named SBD measures must rank and value pairs identically.
func TestSBDMeasureAdaptersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	measures := []Measure{SBDMeasure{}, SBDNoPow2Measure{}, SBDNoFFTMeasure{}}
	for _, m := range []int{33, 64} {
		x := ts.ZNormalize(randSeries(m, rng))
		y := ts.ZNormalize(randSeries(m, rng))
		ref := measures[0].Distance(x, y)
		for _, msr := range measures[1:] {
			if d := msr.Distance(x, y); math.Abs(d-ref) > sbdTol {
				t.Errorf("m=%d: %s = %v, SBD = %v", m, msr.Name(), d, ref)
			}
		}
	}
}
