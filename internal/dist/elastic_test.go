package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLCSSKnownValues(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 2, 3, 4}
	if got := LCSS(x, y, 0.1, -1); got != 4 {
		t.Errorf("LCSS(identical) = %d, want 4", got)
	}
	y = []float64{9, 1, 2, 9}
	if got := LCSS(x, y, 0.1, -1); got != 2 {
		t.Errorf("LCSS = %d, want 2 (subsequence 1,2)", got)
	}
	if got := LCSS(nil, y, 0.1, -1); got != 0 {
		t.Errorf("LCSS(empty) = %d", got)
	}
}

func TestLCSSWindowConstrains(t *testing.T) {
	// Matches three positions off the diagonal are excluded by a tight
	// window.
	x := []float64{7, 8, 9, 1, 2, 3}
	y := []float64{1, 2, 3, 7, 8, 9}
	un := LCSS(x, y, 0.1, -1)
	win := LCSS(x, y, 0.1, 1)
	if un != 3 {
		t.Errorf("unconstrained LCSS = %d, want 3", un)
	}
	if win != 0 {
		t.Errorf("windowed LCSS = %d, want 0", win)
	}
}

func TestLCSSDistanceRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		x := randSeries(20, rng)
		y := randSeries(20, rng)
		d := LCSSDistance(x, y, 0.5, -1)
		if d < 0 || d > 1 {
			t.Fatalf("LCSSDistance = %v outside [0, 1]", d)
		}
	}
	if d := LCSSDistance(nil, nil, 0.5, -1); d != 0 {
		t.Errorf("empty vs empty = %v", d)
	}
	if d := LCSSDistance(nil, []float64{1}, 0.5, -1); d != 1 {
		t.Errorf("empty vs non-empty = %v", d)
	}
}

func TestEDRKnownValues(t *testing.T) {
	x := []float64{1, 2, 3}
	if got := EDR(x, x, 0.1); got != 0 {
		t.Errorf("EDR(identical) = %d", got)
	}
	// One substitution.
	if got := EDR(x, []float64{1, 9, 3}, 0.1); got != 1 {
		t.Errorf("EDR one sub = %d, want 1", got)
	}
	// One insertion.
	if got := EDR(x, []float64{1, 2, 2.5, 3}, 0.1); got != 1 {
		t.Errorf("EDR one ins = %d, want 1", got)
	}
	// Degenerates to Levenshtein-style length for disjoint values.
	if got := EDR([]float64{0, 0}, []float64{9, 9, 9}, 0.1); got != 3 {
		t.Errorf("EDR disjoint = %d, want 3", got)
	}
}

func TestERPProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randSeries(15, rng)
	if d := ERP(x, x, 0); d != 0 {
		t.Errorf("ERP(x,x) = %v", d)
	}
	// ERP is a metric: verify the triangle inequality on random triples.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randSeries(10, r), randSeries(10, r), randSeries(10, r)
		dab, dbc, dac := ERP(a, b, 0), ERP(b, c, 0), ERP(a, c, 0)
		return dac <= dab+dbc+1e-9 && math.Abs(ERP(a, b, 0)-ERP(b, a, 0)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestERPGapPenalty(t *testing.T) {
	// Deleting one sample costs |value - g|.
	x := []float64{5}
	if d := ERP(x, nil, 0); d != 5 {
		t.Errorf("ERP delete-all = %v, want 5", d)
	}
	if d := ERP(x, nil, 5); d != 0 {
		t.Errorf("ERP with g=5 = %v, want 0", d)
	}
}

func TestMSMProperties(t *testing.T) {
	x := []float64{1, 2, 3}
	if d := MSM(x, x, 0.5); d != 0 {
		t.Errorf("MSM(x,x) = %v", d)
	}
	// Symmetry and triangle inequality (MSM is a metric).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randSeries(8, r), randSeries(8, r), randSeries(8, r)
		if math.Abs(MSM(a, b, 0.5)-MSM(b, a, 0.5)) > 1e-9 {
			return false
		}
		return MSM(a, c, 0.5) <= MSM(a, b, 0.5)+MSM(b, c, 0.5)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	if d := MSM(nil, x, 0.5); !math.IsInf(d, 1) {
		t.Errorf("MSM with one empty side = %v, want +Inf", d)
	}
	if d := MSM(nil, nil, 0.5); d != 0 {
		t.Errorf("MSM(empty,empty) = %v", d)
	}
}

func TestMSMMoveOnly(t *testing.T) {
	// Same length, pointwise differences only: MSM cost = Σ|x−y| when no
	// split/merge helps.
	x := []float64{1, 2, 3}
	y := []float64{1.5, 2.5, 3.5}
	if d := MSM(x, y, 10); math.Abs(d-1.5) > 1e-9 {
		t.Errorf("MSM move-only = %v, want 1.5", d)
	}
}

func TestTWEDProperties(t *testing.T) {
	x := []float64{1, 2, 3, 2}
	if d := TWED(x, x, 1, 0.001); d != 0 {
		t.Errorf("TWED(x,x) = %v", d)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSeries(8, r), randSeries(8, r)
		dab, dba := TWED(a, b, 1, 0.01), TWED(b, a, 1, 0.01)
		if math.Abs(dab-dba) > 1e-9 {
			return false
		}
		return dab >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	if d := TWED(nil, x, 1, 0.01); !math.IsInf(d, 1) {
		t.Errorf("TWED one empty side = %v", d)
	}
	if d := TWED(nil, nil, 1, 0.01); d != 0 {
		t.Errorf("TWED(empty,empty) = %v", d)
	}
}

func TestTWEDStiffnessMonotone(t *testing.T) {
	// Larger nu penalizes warping more, so the distance cannot decrease.
	rng := rand.New(rand.NewSource(3))
	x := randSeries(20, rng)
	y := randSeries(20, rng)
	prev := -1.0
	for _, nu := range []float64{0.0001, 0.001, 0.01, 0.1, 1} {
		d := TWED(x, y, 1, nu)
		if d < prev-1e-9 {
			t.Fatalf("TWED decreased when nu grew to %v: %v < %v", nu, d, prev)
		}
		prev = d
	}
}

func TestElasticMeasureAdapters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randSeries(16, rng)
	names := map[string]bool{}
	for _, m := range ElasticMeasures() {
		names[m.Name()] = true
		if d := m.Distance(x, x); math.Abs(d) > 1e-9 {
			t.Errorf("%s self-distance = %v", m.Name(), d)
		}
		y := randSeries(16, rng)
		if d := m.Distance(x, y); d < 0 || math.IsNaN(d) {
			t.Errorf("%s distance = %v", m.Name(), d)
		}
	}
	for _, want := range []string{"LCSS", "EDR", "ERP", "MSM", "TWED"} {
		if !names[want] {
			t.Errorf("ElasticMeasures missing %s", want)
		}
	}
}

func TestElasticMeasuresSeparateShapeClasses(t *testing.T) {
	// Each elastic measure should rank a same-class series closer than a
	// different-class one on clean sine vs square data.
	m := 32
	sine := make([]float64, m)
	sine2 := make([]float64, m)
	square := make([]float64, m)
	for i := range sine {
		ph := 2 * math.Pi * float64(i) / float64(m)
		sine[i] = math.Sin(2 * ph)
		sine2[i] = math.Sin(2*ph + 0.2)
		if math.Sin(2*ph) >= 0 {
			square[i] = 1
		} else {
			square[i] = -1
		}
	}
	for _, meas := range ElasticMeasures() {
		same := meas.Distance(sine, sine2)
		diff := meas.Distance(sine, square)
		if same >= diff {
			t.Errorf("%s: same-class %v not below cross-class %v", meas.Name(), same, diff)
		}
	}
}
