package dist

import (
	"math/rand"
	"testing"

	"kshape/internal/ts"
)

// These allocation-regression tests pin the zero-allocation property of the
// steady-state batch SBD kernels: once a batch, query, and scratch exist,
// computing distances must not touch the heap. testing.AllocsPerRun runs
// the body on a single P, so the numbers are exact, not averages over
// scheduler noise; the pooled (AcquireScratch) paths are deliberately not
// asserted here because sync.Pool may legitimately refill after a GC.

func allocBatch(n, m int, seed int64) ([][]float64, *SBDBatch) {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, n)
	for i := range data {
		data[i] = ts.ZNormalize(randSeries(m, rng))
	}
	return data, NewSBDBatch(data)
}

func TestPairDistanceAllocFree(t *testing.T) {
	_, b := allocBatch(8, 128, 3)
	sc := b.Scratch()
	i := 0
	if n := testing.AllocsPerRun(100, func() {
		b.PairDistance(i, (i+3)%b.Len(), sc)
		i = (i + 1) % b.Len()
	}); n != 0 {
		t.Errorf("PairDistance allocates %v per op, want 0", n)
	}
}

func TestQueryDistanceAllocFree(t *testing.T) {
	data, b := allocBatch(8, 128, 4)
	q := b.Query(data[0])
	i := 0
	if n := testing.AllocsPerRun(100, func() {
		q.Distance(i)
		i = (i + 1) % b.Len()
	}); n != 0 {
		t.Errorf("Distance allocates %v per op, want 0", n)
	}
	sc := b.Scratch()
	if n := testing.AllocsPerRun(100, func() {
		q.DistanceScratch(i, sc)
		i = (i + 1) % b.Len()
	}); n != 0 {
		t.Errorf("DistanceScratch allocates %v per op, want 0", n)
	}
}

func TestQueryIntoNearestAllocFree(t *testing.T) {
	data, b := allocBatch(8, 128, 5)
	queries := make([][]float64, 4)
	rng := rand.New(rand.NewSource(6))
	for i := range queries {
		queries[i] = ts.ZNormalize(randSeries(128, rng))
	}
	q := b.Query(data[0]) // allocate the reusable buffers once
	i := 0
	if n := testing.AllocsPerRun(50, func() {
		q = b.QueryInto(q, queries[i%len(queries)])
		q.Nearest()
		i++
	}); n != 0 {
		t.Errorf("QueryInto+Nearest allocates %v per op, want 0", n)
	}
}

func TestPairwiseIntoRowLoopAllocFree(t *testing.T) {
	// The inner row loop of PairwiseInto: one scratch serving a whole row
	// of pair distances, as each worker chunk runs it.
	_, b := allocBatch(10, 64, 7)
	out := make([][]float64, b.Len())
	for i := range out {
		out[i] = make([]float64, b.Len())
	}
	sc := b.Scratch()
	if n := testing.AllocsPerRun(20, func() {
		for i := 0; i < b.Len(); i++ {
			row := out[i]
			for j := i + 1; j < b.Len(); j++ {
				row[j], _ = b.PairDistance(i, j, sc)
			}
		}
	}); n != 0 {
		t.Errorf("pairwise row loop allocates %v per run, want 0", n)
	}
}
