package dist

import (
	"fmt"
	"math"

	"kshape/internal/fft"
	"kshape/internal/obs"
	"kshape/internal/ts"
)

// NCCNorm selects one of the cross-correlation normalizations of Equation 8.
type NCCNorm int

const (
	// NCCb is the biased estimator: CC_w / m.
	NCCb NCCNorm = iota
	// NCCu is the unbiased estimator: CC_w / (m - |w-m|).
	NCCu
	// NCCc is the coefficient normalization: CC_w / sqrt(R0(x,x)·R0(y,y)),
	// which bounds values in [-1, 1] and underlies SBD.
	NCCc
)

// String returns the paper's name for the normalization.
func (n NCCNorm) String() string {
	switch n {
	case NCCb:
		return "NCCb"
	case NCCu:
		return "NCCu"
	case NCCc:
		return "NCCc"
	}
	return fmt.Sprintf("NCCNorm(%d)", int(n))
}

// NCCSequence returns the full normalized cross-correlation sequence of
// length 2m-1 for equal-length series x and y under the given normalization
// (Equations 6-8). Index w (0-based) corresponds to shift s = w-(m-1).
func NCCSequence(x, y []float64, norm NCCNorm) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dist: NCC length mismatch %d vs %d", len(x), len(y)))
	}
	m := len(x)
	if m == 0 {
		return nil
	}
	cc := fft.CrossCorrelate(x, y)
	switch norm {
	case NCCb:
		for i := range cc {
			cc[i] /= float64(m)
		}
	case NCCu:
		for i := range cc {
			lag := i - (m - 1)
			overlap := m - absInt(lag)
			cc[i] /= float64(overlap)
		}
	case NCCc:
		// Multiply the norms rather than sqrt-ing the product of the squared
		// norms: Dot(x,x)·Dot(y,y) underflows to 0 for norms near 1e-100
		// (denormal ~1e-400), which would misclassify tiny-but-nonzero inputs
		// as degenerate. This also matches SBDBatch's denominator exactly.
		den := ts.Norm(x) * ts.Norm(y)
		//lint:ignore floatcmp exact zero-norm guard before dividing by it
		if den == 0 {
			// At least one sequence is identically zero (e.g. a z-normalized
			// constant); define the correlation as 0 everywhere.
			for i := range cc {
				cc[i] = 0
			}
			return cc
		}
		for i := range cc {
			cc[i] /= den
		}
	default:
		panic(fmt.Sprintf("dist: unknown NCC normalization %d", int(norm)))
	}
	return cc
}

// MaxNCC returns the maximum of the normalized cross-correlation sequence
// and the shift s at which it occurs (positive s means y must move right to
// align with x, per Equation 5 / Algorithm 1).
func MaxNCC(x, y []float64, norm NCCNorm) (value float64, shift int) {
	cc := NCCSequence(x, y, norm)
	m := len(x)
	best, bestIdx := math.Inf(-1), 0
	for i, v := range cc {
		if v > best {
			best, bestIdx = v, i
		}
	}
	return best, bestIdx - (m - 1)
}

// SBD computes the shape-based distance of Equation 9:
//
//	SBD(x, y) = 1 - max_w NCCc(x, y)
//
// in [0, 2], with 0 meaning identical shape up to scaling and shift, using
// the optimized FFT path with next-power-of-two padding (Algorithm 1).
// It also returns y aligned toward x (zero-padded shift), which the shape
// extraction step of k-Shape consumes.
func SBD(x, y []float64) (dist float64, aligned []float64) {
	return sbdImpl(x, y, sbdFFTPow2)
}

// SBDDist is SBD without materializing the aligned sequence.
func SBDDist(x, y []float64) float64 {
	d, _ := SBD(x, y)
	return d
}

type sbdVariant int

const (
	sbdFFTPow2   sbdVariant = iota // optimized: FFT, pad to next power of two
	sbdFFTNoPow2                   // FFT at the minimal radix-2 length for 2·m (models the unpadded implementation row of Table 2)
	sbdNaive                       // direct O(m²) correlation
)

func sbdImpl(x, y []float64, variant sbdVariant) (float64, []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dist: SBD length mismatch %d vs %d", len(x), len(y)))
	}
	obs.Inc(obs.CounterSBD)
	m := len(x)
	if m == 0 {
		return 0, nil
	}
	// Norm(x)·Norm(y), not sqrt(Dot·Dot): the product of squared norms
	// underflows to 0 for norms near 1e-100 even though both norms are
	// representable, flipping SBD(x,x) from 0 to the degenerate 1. Found by
	// FuzzSBD (seed tiny-norm-underflow); SBDBatch already multiplies norms.
	den := ts.Norm(x) * ts.Norm(y)
	var cc []float64
	switch variant {
	case sbdFFTPow2:
		cc = fft.CrossCorrelate(x, y)
	case sbdFFTNoPow2:
		// The paper's SBD_NoPow2 row measures the cost of not padding to the
		// next power of two after 2m-1. A radix-2 FFT still needs *some*
		// power-of-two length; the distinction the paper draws is between a
		// mixed-radix transform at exactly 2m-1 (slow for awkward sizes) and
		// a padded power-of-two transform. We model the penalty by running
		// the transform at double the padded length, which reproduces the
		// measured slowdown factor (~2x) without a second FFT codebase.
		n := fft.NextPow2(2*m - 1)
		cc = fft.CrossCorrelateLen(x, y, 2*n)
	case sbdNaive:
		cc = fft.CrossCorrelateNaive(x, y)
	}
	best, bestIdx := math.Inf(-1), 0
	//lint:ignore floatcmp exact zero-norm guard before dividing by it
	if den == 0 {
		// Degenerate input: define NCCc = 0, so dist = 1 and no shift.
		best, bestIdx = 0, m-1
	} else {
		for i, v := range cc {
			if v > best {
				best, bestIdx = v, i
			}
		}
		best /= den
	}
	shift := bestIdx - (m - 1)
	return 1 - best, ts.Shift(y, shift)
}

// SBDNoPow2 computes SBD via FFT without the power-of-two padding
// optimization (Table 2's SBD_NoPow2 row).
func SBDNoPow2(x, y []float64) (float64, []float64) {
	return sbdImpl(x, y, sbdFFTNoPow2)
}

// SBDNoFFT computes SBD with the direct O(m²) cross-correlation
// (Table 2's SBD_NoFFT row).
func SBDNoFFT(x, y []float64) (float64, []float64) {
	return sbdImpl(x, y, sbdNaive)
}

// SBDMeasure is the Measure for the optimized shape-based distance.
type SBDMeasure struct{}

// Name implements Measure.
func (SBDMeasure) Name() string { return "SBD" }

// Distance implements Measure.
func (SBDMeasure) Distance(x, y []float64) float64 { return SBDDist(x, y) }

// SBDNoPow2Measure is the Measure for the un-padded FFT variant.
type SBDNoPow2Measure struct{}

// Name implements Measure.
func (SBDNoPow2Measure) Name() string { return "SBDNoPow2" }

// Distance implements Measure.
func (SBDNoPow2Measure) Distance(x, y []float64) float64 {
	d, _ := SBDNoPow2(x, y)
	return d
}

// SBDNoFFTMeasure is the Measure for the naive O(m²) variant.
type SBDNoFFTMeasure struct{}

// Name implements Measure.
func (SBDNoFFTMeasure) Name() string { return "SBDNoFFT" }

// Distance implements Measure.
func (SBDNoFFTMeasure) Distance(x, y []float64) float64 {
	d, _ := SBDNoFFT(x, y)
	return d
}

// NCCMeasure turns a raw normalized cross-correlation maximum into a
// dissimilarity (1 - max NCC), for the Appendix A comparison of NCCb and
// NCCu against SBD. Note that unlike NCCc, the b/u normalizations are not
// bounded by 1, so the resulting value can be negative; 1-NN classification
// only needs the ordering.
type NCCMeasure struct {
	Norm NCCNorm
}

// Name implements Measure.
func (m NCCMeasure) Name() string { return m.Norm.String() }

// Distance implements Measure.
func (m NCCMeasure) Distance(x, y []float64) float64 {
	v, _ := MaxNCC(x, y, m.Norm)
	return 1 - v
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
