package dist

import "math"

// Envelope computes the upper and lower running envelopes of y for a
// Sakoe-Chiba band of half-width window:
//
//	upper[i] = max(y[i-window .. i+window])
//	lower[i] = min(y[i-window .. i+window])
//
// It uses the Lemire streaming min/max algorithm with monotonic deques,
// which is O(m) regardless of the window size.
func Envelope(y []float64, window int) (upper, lower []float64) {
	m := len(y)
	upper = make([]float64, m)
	lower = make([]float64, m)
	if m == 0 {
		return upper, lower
	}
	if window < 0 {
		window = 0
	}
	// Monotonic deques of indices: maxDq decreasing values, minDq increasing.
	maxDq := make([]int, 0, m)
	minDq := make([]int, 0, m)
	// Process positions so that when computing envelope[i] the deques cover
	// indices [i-window, i+window].
	for i := 0; i < m+window; i++ {
		if i < m {
			for len(maxDq) > 0 && y[maxDq[len(maxDq)-1]] <= y[i] {
				maxDq = maxDq[:len(maxDq)-1]
			}
			maxDq = append(maxDq, i)
			for len(minDq) > 0 && y[minDq[len(minDq)-1]] >= y[i] {
				minDq = minDq[:len(minDq)-1]
			}
			minDq = append(minDq, i)
		}
		out := i - window
		if out < 0 || out >= m {
			continue
		}
		// Expire indices left of the window.
		for maxDq[0] < out-window {
			maxDq = maxDq[1:]
		}
		for minDq[0] < out-window {
			minDq = minDq[1:]
		}
		upper[out] = y[maxDq[0]]
		lower[out] = y[minDq[0]]
	}
	return upper, lower
}

// LBKeogh computes the LB_Keogh lower bound on cDTW(x, y) with the given
// Sakoe-Chiba half-width, given y's precomputed envelopes. The bound is the
// Euclidean distance from x to the envelope tube:
//
//	LB_Keogh(x, y) <= cDTW(x, y)
//
// which lets 1-NN search skip the full O(m·w) DP when the bound already
// exceeds the best distance found so far (the paper's "_LB" rows in Table 2).
func LBKeogh(x, upper, lower []float64) float64 {
	s := 0.0
	for i := range x {
		switch {
		case x[i] > upper[i]:
			d := x[i] - upper[i]
			s += d * d
		case x[i] < lower[i]:
			d := lower[i] - x[i]
			s += d * d
		}
	}
	return math.Sqrt(s)
}

// NNIndex finds the index in refs of the nearest neighbor of query under
// measure d, returning the index and distance. It performs a plain linear
// scan; see NNIndexLB for the LB_Keogh-accelerated variant.
func NNIndex(d Measure, query []float64, refs [][]float64) (int, float64) {
	best, bestIdx := math.Inf(1), -1
	for i, r := range refs {
		if dd := d.Distance(query, r); dd < best {
			best, bestIdx = dd, i
		}
	}
	return bestIdx, best
}

// LBNNSearcher performs 1-NN search under cDTW using LB_Keogh pruning with
// precomputed envelopes for the reference set.
type LBNNSearcher struct {
	refs   [][]float64
	upper  [][]float64
	lower  [][]float64
	window int
	// Pruned counts how many full DTW evaluations the bound avoided, for
	// the efficiency experiments.
	Pruned int
	// Evaluated counts full DTW evaluations performed.
	Evaluated int
}

// NewLBNNSearcher precomputes envelopes of refs for a Sakoe-Chiba band of
// half-width window (window < 0 means the unconstrained band m).
func NewLBNNSearcher(refs [][]float64, window int) *LBNNSearcher {
	s := &LBNNSearcher{refs: refs, window: window}
	s.upper = make([][]float64, len(refs))
	s.lower = make([][]float64, len(refs))
	for i, r := range refs {
		w := window
		if w < 0 {
			w = len(r)
		}
		s.upper[i], s.lower[i] = Envelope(r, w)
	}
	return s
}

// NN returns the index and cDTW distance of the nearest reference to query.
func (s *LBNNSearcher) NN(query []float64) (int, float64) {
	best, bestIdx := math.Inf(1), -1
	for i, r := range s.refs {
		if LBKeogh(query, s.upper[i], s.lower[i]) >= best {
			s.Pruned++
			continue
		}
		s.Evaluated++
		if dd := CDTW(query, r, s.window); dd < best {
			best, bestIdx = dd, i
		}
	}
	return bestIdx, best
}
