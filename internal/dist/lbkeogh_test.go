package dist

import (
	"math"
	"math/rand"
	"testing"
)

// envelopeNaive is the quadratic reference implementation.
func envelopeNaive(y []float64, window int) (upper, lower []float64) {
	m := len(y)
	upper = make([]float64, m)
	lower = make([]float64, m)
	for i := 0; i < m; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window
		if hi > m-1 {
			hi = m - 1
		}
		u, l := math.Inf(-1), math.Inf(1)
		for j := lo; j <= hi; j++ {
			if y[j] > u {
				u = y[j]
			}
			if y[j] < l {
				l = y[j]
			}
		}
		upper[i], lower[i] = u, l
	}
	return upper, lower
}

func TestEnvelopeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, m := range []int{1, 2, 5, 31, 100} {
		y := randSeries(m, rng)
		for _, w := range []int{0, 1, 3, 10, m} {
			gu, gl := Envelope(y, w)
			wu, wl := envelopeNaive(y, w)
			for i := 0; i < m; i++ {
				if gu[i] != wu[i] || gl[i] != wl[i] {
					t.Fatalf("m=%d w=%d i=%d: got (%v,%v), want (%v,%v)",
						m, w, i, gu[i], gl[i], wu[i], wl[i])
				}
			}
		}
	}
}

func TestEnvelopeEmpty(t *testing.T) {
	u, l := Envelope(nil, 3)
	if len(u) != 0 || len(l) != 0 {
		t.Error("empty input should give empty envelopes")
	}
}

func TestEnvelopeContainsSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	y := randSeries(64, rng)
	u, l := Envelope(y, 5)
	for i := range y {
		if y[i] > u[i] || y[i] < l[i] {
			t.Fatalf("series escapes envelope at %d: %v not in [%v, %v]", i, y[i], l[i], u[i])
		}
	}
}

func TestLBKeoghIsLowerBound(t *testing.T) {
	// LB_Keogh(x, y) <= cDTW(x, y) — the correctness property that makes
	// pruning sound (Table 2's _LB rows).
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		m := 40
		x := randSeries(m, rng)
		y := randSeries(m, rng)
		for _, w := range []int{1, 4, 10} {
			u, l := Envelope(y, w)
			lb := LBKeogh(x, u, l)
			d := CDTW(x, y, w)
			if lb > d+1e-9 {
				t.Fatalf("trial %d w=%d: LB_Keogh %v exceeds cDTW %v", trial, w, lb, d)
			}
		}
	}
}

func TestLBKeoghZeroWhenInsideEnvelope(t *testing.T) {
	y := []float64{0, 1, 2, 1, 0}
	u, l := Envelope(y, 2)
	if lb := LBKeogh(y, u, l); lb != 0 {
		t.Errorf("LB_Keogh of y against its own envelope = %v", lb)
	}
}

func TestNNIndex(t *testing.T) {
	refs := [][]float64{{0, 0}, {5, 5}, {1, 1}}
	idx, d := NNIndex(EDMeasure{}, []float64{0.9, 0.9}, refs)
	if idx != 2 {
		t.Errorf("NN index = %d, want 2", idx)
	}
	if math.Abs(d-ED([]float64{0.9, 0.9}, refs[2])) > 1e-12 {
		t.Errorf("NN distance = %v", d)
	}
}

func TestNNIndexEmptyRefs(t *testing.T) {
	idx, d := NNIndex(EDMeasure{}, []float64{1}, nil)
	if idx != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty refs: idx=%d d=%v", idx, d)
	}
}

func TestLBNNSearcherAgreesWithLinearScan(t *testing.T) {
	// The pruned search must return exactly the same nearest neighbor
	// distance as brute force (index may differ only under exact ties).
	rng := rand.New(rand.NewSource(13))
	m, n := 32, 25
	refs := make([][]float64, n)
	for i := range refs {
		refs[i] = randSeries(m, rng)
	}
	w := 3
	searcher := NewLBNNSearcher(refs, w)
	meas := CDTWMeasure{Window: w}
	for q := 0; q < 20; q++ {
		query := randSeries(m, rng)
		gotIdx, gotD := searcher.NN(query)
		wantIdx, wantD := NNIndex(meas, query, refs)
		if math.Abs(gotD-wantD) > 1e-9 {
			t.Fatalf("query %d: pruned NN distance %v (idx %d) != brute force %v (idx %d)",
				q, gotD, gotIdx, wantD, wantIdx)
		}
	}
	if searcher.Pruned == 0 {
		t.Log("note: no candidates were pruned in this run (bound never exceeded best)")
	}
	if searcher.Evaluated == 0 {
		t.Error("searcher performed no full evaluations")
	}
}

func TestLBNNSearcherPrunesObviousCases(t *testing.T) {
	// References far from the query except one: most should be pruned.
	m := 64
	refs := make([][]float64, 10)
	for i := range refs {
		refs[i] = make([]float64, m)
		for j := range refs[i] {
			refs[i][j] = 100 * float64(i+1)
		}
	}
	query := make([]float64, m) // all zeros; nearest is refs[0]
	s := NewLBNNSearcher(refs, 2)
	idx, _ := s.NN(query)
	if idx != 0 {
		t.Errorf("NN idx = %d, want 0", idx)
	}
	if s.Pruned == 0 {
		t.Error("expected pruning on well-separated references")
	}
}
