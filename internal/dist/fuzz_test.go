// Fuzz targets for the distance kernels, in an external test package so
// they can drive the kernels through the shared testkit harness (testkit
// imports dist, so an internal test package would cycle).
//
// Seed corpora live in testdata/fuzz/<Target>/ (regenerate with
// `go run ./internal/testkit/gencorpus`); the in-code f.Add seeds duplicate
// the most important shapes so `go test` alone exercises them too.
package dist_test

import (
	"math"
	"testing"

	"kshape/internal/dist"
	"kshape/internal/testkit"
	"kshape/internal/ts"
)

// fuzzTol is the relative tolerance for fuzz invariants. Fuzz inputs reach
// magnitudes up to 1e6 (far beyond z-normalized data), so this sits above
// the differential suite's 1e-9 purely to absorb the wider dynamic range.
const fuzzTol = 1e-6

func leq(a, b, tol float64) bool { return a <= b+tol*(1+math.Abs(a)+math.Abs(b)) }

func FuzzSBD(f *testing.F) {
	f.Add(testkit.EncodeFloats([]float64{1, 2, 3, 2, 1, 0, 1, 2, 3, 2}))
	f.Add(testkit.EncodeFloats([]float64{0, 0, 0, 0, 5, 5, 5, 5}))
	f.Add(testkit.EncodeFloats(sineSpikePair(32)))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		x, y := testkit.DecodePair(data, 256)
		if len(x) == 0 {
			return
		}
		d, aligned := dist.SBD(x, y)
		if d < -fuzzTol || d > 2+fuzzTol {
			t.Fatalf("SBD = %v outside [0, 2] (m=%d)", d, len(x))
		}
		if len(aligned) != len(y) {
			t.Fatalf("aligned length %d, want %d", len(aligned), len(y))
		}
		// All three implementation variants of Table 2 agree.
		dNoPow2, _ := dist.SBDNoPow2(x, y)
		dNoFFT, _ := dist.SBDNoFFT(x, y)
		if !testkit.Close(d, dNoPow2, fuzzTol) {
			t.Fatalf("SBD %v vs SBDNoPow2 %v (m=%d)", d, dNoPow2, len(x))
		}
		if !testkit.Close(d, dNoFFT, fuzzTol) {
			t.Fatalf("SBD %v vs SBDNoFFT %v (m=%d)", d, dNoFFT, len(x))
		}
		// Symmetry of the distance value.
		dRev, _ := dist.SBD(y, x)
		if !testkit.Close(d, dRev, fuzzTol) {
			t.Fatalf("SBD(x,y) %v vs SBD(y,x) %v (m=%d)", d, dRev, len(x))
		}
		// Positive-scale invariance: SBD ignores amplitude (Eq. 9 normalizes
		// by the norms).
		scale := 0.25 + 3.75*float64(len(data)%97)/96
		dScaled, _ := dist.SBD(x, ts.Scale(y, scale))
		if !testkit.Close(d, dScaled, fuzzTol) {
			t.Fatalf("SBD %v changed to %v under y*%v (m=%d)", d, dScaled, scale, len(x))
		}
		// Self-distance is 0 for non-degenerate x, 1 for the all-zero series.
		dSelf, _ := dist.SBD(x, x)
		if ts.Norm(x) > 0 {
			if !testkit.Close(dSelf, 0, fuzzTol) {
				t.Fatalf("SBD(x,x) = %v, want 0 (m=%d)", dSelf, len(x))
			}
		} else if !testkit.Close(dSelf, 1, fuzzTol) {
			t.Fatalf("SBD(0,0) = %v, want 1 by the degenerate convention", dSelf)
		}
	})
}

func FuzzDTWBand(f *testing.F) {
	f.Add(byte(2), testkit.EncodeFloats([]float64{0, 1, 2, 3, 4, 4, 3, 2, 1, 0}))
	f.Add(byte(0), testkit.EncodeFloats([]float64{1, 1, 1, 1, 5, 5, 5, 5}))
	f.Add(byte(255), testkit.EncodeFloats(sineSpikePair(24)))
	f.Add(byte(7), []byte{})
	f.Fuzz(func(t *testing.T, wByte byte, data []byte) {
		x, y := testkit.DecodePair(data, 48)
		m := len(x)
		if m == 0 {
			return
		}
		w := int(wByte)%(m+2) - 1 // covers -1 (unconstrained) through m
		cdtw := dist.CDTW(x, y, w)
		if math.IsInf(cdtw, 1) || math.IsNaN(cdtw) {
			t.Fatalf("cDTW(w=%d) = %v on equal lengths (m=%d)", w, cdtw, m)
		}
		if cdtw < 0 {
			t.Fatalf("cDTW(w=%d) = %v < 0", w, cdtw)
		}
		// The invariant chain of the pruned 1-NN search:
		// LB_Keogh <= cDTW(w), DTW <= cDTW(w) <= ED.
		ew := w
		if ew < 0 {
			ew = m
		}
		upper, lower := dist.Envelope(y, ew)
		if lb := dist.LBKeogh(x, upper, lower); !leq(lb, cdtw, fuzzTol) {
			t.Fatalf("LB_Keogh %v > cDTW(w=%d) %v (m=%d)", lb, w, cdtw, m)
		}
		full := dist.DTW(x, y)
		if !leq(full, cdtw, fuzzTol) {
			t.Fatalf("DTW %v > cDTW(w=%d) %v (m=%d)", full, w, cdtw, m)
		}
		ed := dist.ED(x, y)
		if !leq(cdtw, ed, fuzzTol) {
			t.Fatalf("cDTW(w=%d) %v > ED %v (m=%d)", w, cdtw, ed, m)
		}
		// Widening the band never increases the distance.
		if w >= 0 {
			if wider := dist.CDTW(x, y, w+1); !leq(wider, cdtw, fuzzTol) {
				t.Fatalf("cDTW(w=%d) %v > cDTW(w=%d) %v (m=%d)", w+1, wider, w, cdtw, m)
			}
		}
		// Symmetry for equal lengths.
		if rev := dist.CDTW(y, x, w); !testkit.Close(cdtw, rev, fuzzTol) {
			t.Fatalf("cDTW(x,y,w=%d) %v vs cDTW(y,x) %v (m=%d)", w, cdtw, rev, m)
		}
		// Identity: warping a series onto itself costs nothing.
		if self := dist.CDTW(x, x, w); self > fuzzTol {
			t.Fatalf("cDTW(x,x,w=%d) = %v, want 0 (m=%d)", w, self, m)
		}
		// WarpingPath agrees with the rolling-row distance.
		if _, pd := dist.WarpingPath(x, y, w); !testkit.Close(pd, cdtw, fuzzTol) {
			t.Fatalf("WarpingPath distance %v vs cDTW %v (w=%d, m=%d)", pd, cdtw, w, m)
		}
	})
}

// sineSpikePair builds a 2m-value buffer whose halves decode into a sinusoid
// and a spiked flat line — a seed that exercises alignment and the band.
func sineSpikePair(m int) []float64 {
	vals := make([]float64, 2*m)
	for i := 0; i < m; i++ {
		vals[i] = math.Sin(2 * math.Pi * float64(i) / float64(m))
	}
	vals[m+m/2] = 10
	return vals
}
