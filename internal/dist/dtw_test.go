package dist

import (
	"math"
	"math/rand"
	"testing"
)

func randSeries(m int, rng *rand.Rand) []float64 {
	x := make([]float64, m)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// dtwNaive is a straightforward full-matrix DTW used to validate the
// rolling-row implementation.
func dtwNaive(x, y []float64, window int) float64 {
	n, m := len(x), len(y)
	const inf = math.MaxFloat64
	w := window
	if w < 0 {
		w = n + m
	}
	c := make([][]float64, n+1)
	for i := range c {
		c[i] = make([]float64, m+1)
		for j := range c[i] {
			c[i][j] = inf
		}
	}
	c[0][0] = 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if j < i-w || j > i+w {
				continue
			}
			d := x[i-1] - y[j-1]
			best := c[i-1][j-1]
			if c[i-1][j] < best {
				best = c[i-1][j]
			}
			if c[i][j-1] < best {
				best = c[i][j-1]
			}
			c[i][j] = d*d + best
		}
	}
	if c[n][m] >= inf {
		return math.Inf(1)
	}
	return math.Sqrt(c[n][m])
}

func TestDTWIdentical(t *testing.T) {
	x := []float64{1, 2, 3, 2, 1}
	if d := DTW(x, x); d != 0 {
		t.Errorf("DTW(x,x) = %v", d)
	}
}

func TestDTWKnownValue(t *testing.T) {
	// x = [0 1 2], y = [0 2]: optimal alignment (0-0)(1-2?)...
	// DP: best warp aligns 0->0, 1->2 (cost 1), 2->2 (cost 0) => sqrt(1).
	x := []float64{0, 1, 2}
	y := []float64{0, 2}
	if d := DTW(x, y); math.Abs(d-1) > 1e-12 {
		t.Errorf("DTW = %v, want 1", d)
	}
}

func TestDTWShiftToleranceVsED(t *testing.T) {
	// A shifted spike: DTW should absorb the shift much better than ED.
	m := 50
	x := make([]float64, m)
	y := make([]float64, m)
	x[20] = 1
	y[23] = 1
	if DTW(x, y) >= ED(x, y) {
		t.Errorf("DTW (%v) should beat ED (%v) on shifted spikes", DTW(x, y), ED(x, y))
	}
}

func TestCDTWMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(40)
		m := 5 + rng.Intn(40)
		x := randSeries(n, rng)
		y := randSeries(m, rng)
		for _, w := range []int{-1, 0, 1, 3, 10, 100} {
			got := CDTW(x, y, w)
			want := dtwNaive(x, y, w)
			if math.IsInf(want, 1) {
				if !math.IsInf(got, 1) {
					t.Fatalf("trial %d w=%d: got %v, want +Inf", trial, w, got)
				}
				continue
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d w=%d: CDTW = %v, naive = %v", trial, w, got, want)
			}
		}
	}
}

func TestCDTWWindowMonotone(t *testing.T) {
	// Wider windows can only reduce (or keep) the distance.
	rng := rand.New(rand.NewSource(4))
	x := randSeries(30, rng)
	y := randSeries(30, rng)
	prev := math.Inf(1)
	for _, w := range []int{0, 1, 2, 4, 8, 16, 30} {
		d := CDTW(x, y, w)
		if d > prev+1e-9 {
			t.Fatalf("window %d gave larger distance %v than smaller window's %v", w, d, prev)
		}
		prev = d
	}
}

func TestCDTWZeroWindowEqualsED(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randSeries(25, rng)
	y := randSeries(25, rng)
	if got, want := CDTW(x, y, 0), ED(x, y); math.Abs(got-want) > 1e-9 {
		t.Errorf("cDTW(w=0) = %v, ED = %v", got, want)
	}
}

func TestCDTWUnreachableBand(t *testing.T) {
	// Length difference larger than window: corners cannot connect.
	if d := CDTW([]float64{1, 2, 3, 4, 5}, []float64{1}, 1); !math.IsInf(d, 1) {
		t.Errorf("expected +Inf, got %v", d)
	}
}

func TestDTWEmpty(t *testing.T) {
	if d := DTW(nil, nil); d != 0 {
		t.Errorf("DTW(nil,nil) = %v", d)
	}
	if d := DTW([]float64{1}, nil); !math.IsInf(d, 1) {
		t.Errorf("DTW(x,nil) = %v, want +Inf", d)
	}
}

func TestDTWLowerBoundedByCDTW(t *testing.T) {
	// DTW (unconstrained) <= cDTW for any window.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		x := randSeries(32, rng)
		y := randSeries(32, rng)
		full := DTW(x, y)
		for _, w := range []int{1, 3, 8} {
			if c := CDTW(x, y, w); c < full-1e-9 {
				t.Fatalf("cDTW(w=%d)=%v below unconstrained DTW=%v", w, c, full)
			}
		}
	}
}

func TestWarpingPath(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{0, 1, 1, 2, 3}
	path, d := WarpingPath(x, y, -1)
	if d != 0 {
		t.Errorf("distance along perfect warp = %v", d)
	}
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	// Path must start at (0,0), end at (n-1,m-1), and move by steps in
	// {(1,0),(0,1),(1,1)}.
	if path[0] != [2]int{0, 0} {
		t.Errorf("path start = %v", path[0])
	}
	if path[len(path)-1] != [2]int{3, 4} {
		t.Errorf("path end = %v", path[len(path)-1])
	}
	for k := 1; k < len(path); k++ {
		di := path[k][0] - path[k-1][0]
		dj := path[k][1] - path[k-1][1]
		if di < 0 || dj < 0 || di > 1 || dj > 1 || (di == 0 && dj == 0) {
			t.Fatalf("illegal step %v -> %v", path[k-1], path[k])
		}
	}
}

func TestWarpingPathDistanceMatchesCDTW(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		x := randSeries(20, rng)
		y := randSeries(20, rng)
		for _, w := range []int{2, 5, -1} {
			_, dPath := WarpingPath(x, y, w)
			d := CDTW(x, y, w)
			if math.Abs(dPath-d) > 1e-9 {
				t.Fatalf("path distance %v != cDTW %v (w=%d)", dPath, d, w)
			}
		}
	}
}

func TestWarpingPathStaysInBand(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randSeries(30, rng)
	y := randSeries(30, rng)
	w := 3
	path, _ := WarpingPath(x, y, w)
	for _, p := range path {
		if abs(p[0]-p[1]) > w {
			t.Fatalf("path cell %v outside Sakoe-Chiba band of width %d", p, w)
		}
	}
}

func TestCDTWMeasureWindows(t *testing.T) {
	c5 := NewCDTWFrac("cDTW5", 0.05)
	if w := c5.EffectiveWindow(100); w != 5 {
		t.Errorf("cDTW5 window for m=100 = %d, want 5", w)
	}
	if w := c5.EffectiveWindow(10); w != 1 {
		t.Errorf("cDTW5 window for m=10 = %d, want 1 (minimum)", w)
	}
	if c5.Name() != "cDTW5" {
		t.Errorf("Name = %q", c5.Name())
	}
	fixed := CDTWMeasure{Window: 7}
	if w := fixed.EffectiveWindow(1000); w != 7 {
		t.Errorf("fixed window = %d", w)
	}
	if fixed.Name() != "cDTW(w=7)" {
		t.Errorf("default name = %q", fixed.Name())
	}
}

func TestDTWMeasureInterface(t *testing.T) {
	var m Measure = DTWMeasure{}
	if m.Name() != "DTW" {
		t.Errorf("Name = %q", m.Name())
	}
	x := []float64{1, 2, 3}
	if got, want := m.Distance(x, x), 0.0; got != want {
		t.Errorf("Distance = %v", got)
	}
}
