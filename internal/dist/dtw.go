package dist

import (
	"fmt"
	"math"

	"kshape/internal/obs"
)

// DTW computes the unconstrained Dynamic Time Warping distance between x
// and y (Equation 4 of the paper), with squared pointwise costs and a final
// square root, matching the classic formulation where DTW extends ED with a
// non-linear alignment.
func DTW(x, y []float64) float64 {
	return CDTW(x, y, -1)
}

// CDTW computes the constrained DTW distance with a Sakoe-Chiba band of
// half-width window cells (Figure 2b of the paper). window < 0 means
// unconstrained; window 0 degenerates to Euclidean alignment along the
// diagonal (for equal lengths). The implementation uses two rolling rows,
// so memory is O(m) while time is O(m·w) for band width w.
func CDTW(x, y []float64, window int) float64 {
	obs.Inc(obs.CounterDTW)
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	if window >= 0 && abs(n-m) > window {
		// The band cannot connect the corners.
		return math.Inf(1)
	}
	w := window
	if w < 0 {
		w = max(n, m)
	}
	const inf = math.MaxFloat64
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range curr {
			curr[j] = inf
		}
		lo := max(1, i-w)
		hi := min(m, i+w)
		for j := lo; j <= hi; j++ {
			d := x[i-1] - y[j-1]
			best := prev[j-1] // match
			if prev[j] < best {
				best = prev[j] // insertion
			}
			if curr[j-1] < best {
				best = curr[j-1] // deletion
			}
			curr[j] = d*d + best
		}
		prev, curr = curr, prev
	}
	return math.Sqrt(prev[m])
}

// WarpingPath returns the optimal cDTW alignment as (i, j) index pairs from
// (0, 0) to (n-1, m-1), along with the distance. It materializes the full
// cost matrix, so it is intended for inspection and figures (Figure 2), not
// for bulk distance computation.
func WarpingPath(x, y []float64, window int) (path [][2]int, distance float64) {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return nil, math.Inf(1)
	}
	w := window
	if w < 0 {
		w = max(n, m)
	}
	const inf = math.MaxFloat64
	cost := make([][]float64, n+1)
	for i := range cost {
		cost[i] = make([]float64, m+1)
		for j := range cost[i] {
			cost[i][j] = inf
		}
	}
	cost[0][0] = 0
	for i := 1; i <= n; i++ {
		lo := max(1, i-w)
		hi := min(m, i+w)
		for j := lo; j <= hi; j++ {
			d := x[i-1] - y[j-1]
			best := cost[i-1][j-1]
			if cost[i-1][j] < best {
				best = cost[i-1][j]
			}
			if cost[i][j-1] < best {
				best = cost[i][j-1]
			}
			cost[i][j] = d*d + best
		}
	}
	if cost[n][m] >= inf {
		return nil, math.Inf(1)
	}
	// Backtrack from the corner.
	i, j := n, m
	for i > 0 || j > 0 {
		path = append(path, [2]int{i - 1, j - 1})
		switch {
		case i == 1 && j == 1:
			i, j = 0, 0
		case i == 1:
			j--
		case j == 1:
			i--
		default:
			diag, up, left := cost[i-1][j-1], cost[i-1][j], cost[i][j-1]
			if diag <= up && diag <= left {
				i--
				j--
			} else if up <= left {
				i--
			} else {
				j--
			}
		}
	}
	reversePath(path)
	return path, math.Sqrt(cost[n][m])
}

func reversePath(p [][2]int) {
	for a, b := 0, len(p)-1; a < b; a, b = a+1, b-1 {
		p[a], p[b] = p[b], p[a]
	}
}

// DTWMeasure is the Measure for unconstrained DTW.
type DTWMeasure struct{}

// Name implements Measure.
func (DTWMeasure) Name() string { return "DTW" }

// Distance implements Measure.
func (DTWMeasure) Distance(x, y []float64) float64 { return DTW(x, y) }

// CDTWMeasure is the Measure for Sakoe-Chiba-constrained DTW. Window is the
// band half-width in cells; WindowFrac, if positive, derives the window from
// the series length instead (e.g. 0.05 for the paper's cDTW5).
type CDTWMeasure struct {
	Label      string
	Window     int
	WindowFrac float64
}

// NewCDTWFrac returns a cDTW measure whose window is frac·m, rounded to the
// nearest cell, as in the paper's cDTW5 (5%) and cDTW10 (10%).
func NewCDTWFrac(label string, frac float64) CDTWMeasure {
	return CDTWMeasure{Label: label, WindowFrac: frac}
}

// Name implements Measure.
func (c CDTWMeasure) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return fmt.Sprintf("cDTW(w=%d)", c.Window)
}

// EffectiveWindow returns the band half-width used for series of length m.
func (c CDTWMeasure) EffectiveWindow(m int) int {
	if c.WindowFrac > 0 {
		w := int(math.Round(c.WindowFrac * float64(m)))
		if w < 1 {
			w = 1
		}
		return w
	}
	return c.Window
}

// Distance implements Measure.
func (c CDTWMeasure) Distance(x, y []float64) float64 {
	return CDTW(x, y, c.EffectiveWindow(len(x)))
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
