package dist

import (
	"fmt"
	"math"
	"math/cmplx"

	"kshape/internal/fft"
	"kshape/internal/obs"
	"kshape/internal/ts"
)

// SBDBatch precomputes the Fourier spectra of a fixed collection of
// equal-length series so that repeated SBD computations against changing
// queries (the k-Shape assignment and alignment steps, where the data is
// fixed and only centroids move) need just one forward FFT per query and
// one inverse FFT per pair, instead of three FFTs per pair.
type SBDBatch struct {
	m    int            // series length
	l    int            // padded transform length (power of two >= 2m-1)
	conj [][]complex128 // conj(FFT(x_i)), ready for the correlation product
	norm []float64      // ‖x_i‖
}

// NewSBDBatch precomputes spectra for data. All series must share one
// length; the slice contents are captured by value (later mutation of the
// input arrays is not observed).
func NewSBDBatch(data [][]float64) *SBDBatch {
	if len(data) == 0 {
		return &SBDBatch{}
	}
	m := len(data[0])
	b := &SBDBatch{
		m:    m,
		l:    fft.NextPow2(2*m - 1),
		conj: make([][]complex128, len(data)),
		norm: make([]float64, len(data)),
	}
	for i, x := range data {
		if len(x) != m {
			panic(fmt.Sprintf("dist: SBDBatch length mismatch at %d: %d vs %d", i, len(x), m))
		}
		spec := fft.ForwardReal(x, b.l)
		for k := range spec {
			spec[k] = cmplx.Conj(spec[k])
		}
		b.conj[i] = spec
		b.norm[i] = ts.Norm(x)
	}
	return b
}

// Len returns the number of series in the batch.
func (b *SBDBatch) Len() int { return len(b.conj) }

// SBDQuery holds the spectrum of one query series plus scratch buffers; it
// is not safe for concurrent use, but queries are cheap to create.
type SBDQuery struct {
	batch   *SBDBatch
	spec    []complex128
	norm    float64
	scratch []complex128
}

// Query prepares q (length m) for repeated distance computations against
// the batch.
func (b *SBDBatch) Query(q []float64) *SBDQuery {
	if len(q) != b.m {
		panic(fmt.Sprintf("dist: SBDBatch query length %d, want %d", len(q), b.m))
	}
	return &SBDQuery{
		batch:   b,
		spec:    fft.ForwardReal(q, b.l),
		norm:    ts.Norm(q),
		scratch: make([]complex128, b.l),
	}
}

// Distance returns SBD(q, x_i) and the shift aligning x_i toward q
// (aligned x_i = ts.Shift(x_i, shift)), exactly matching SBD/Algorithm 1.
func (s *SBDQuery) Distance(i int) (dist float64, shift int) {
	return s.DistanceScratch(i, s.scratch)
}

// Scratch allocates a buffer usable with DistanceScratch. Each goroutine
// sharing one SBDQuery needs its own.
func (b *SBDBatch) Scratch() []complex128 { return make([]complex128, b.l) }

// DistanceScratch is Distance computed in the caller-provided scratch
// buffer (length SBDBatch.Scratch()), which lets multiple goroutines share
// one prepared query — the query's spectrum is only read — without
// repeating its forward FFT.
func (s *SBDQuery) DistanceScratch(i int, scratch []complex128) (dist float64, shift int) {
	obs.Inc(obs.CounterSBD)
	b := s.batch
	m := b.m
	den := s.norm * b.norm[i]
	//lint:ignore floatcmp exact zero-norm guard before dividing by it
	if den == 0 {
		return 1, 0 // degenerate-input convention, as in SBD
	}
	for k, c := range b.conj[i] {
		scratch[k] = s.spec[k] * c
	}
	fft.Inverse(scratch)
	best, bestLag := math.Inf(-1), 0
	for lag := -(m - 1); lag <= m-1; lag++ {
		idx := lag
		if idx < 0 {
			idx += b.l
		}
		if v := real(scratch[idx]); v > best {
			best, bestLag = v, lag
		}
	}
	return 1 - best/den, bestLag
}
