package dist

import (
	"fmt"
	"math"
	"sync"

	"kshape/internal/fft"
	"kshape/internal/obs"
	"kshape/internal/par"
	"kshape/internal/ts"
)

// Cache-blocking floors for the batch loops: par's dynamic chunking is
// amortized over at least this many rows/queries per worker handoff, so a
// chunk claim (one atomic add plus a cache-line bounce) never dominates the
// O(m log m) kernel work inside it. Larger floors would under-split small
// inputs and starve the dynamic balancing on skewed loops.
const (
	pairwiseMinRows  = 2
	nearestMinPerJob = 4
)

// SBDBatch precomputes the real-input (RFFT) half-spectra of a fixed
// collection of equal-length series so that repeated SBD computations
// against changing queries (the k-Shape assignment and alignment steps,
// where the data is fixed and only centroids move) need just one forward
// transform per query and one half-size inverse transform per pair, instead
// of three full-size FFTs per pair. The half-spectrum layout stores only
// bins 0..l/2 (the rest is the conjugate mirror), halving both the
// transform work and the cached bytes relative to the previous full-
// spectrum cache.
//
// The precomputed spectra are read-only after construction, so one batch is
// shared by any number of goroutines; all mutable per-computation state
// lives in SBDScratch buffers (one per goroutine, pooled via
// AcquireScratch/ReleaseScratch) and in SBDQuery values.
type SBDBatch struct {
	m    int            // series length
	l    int            // padded transform length (power of two >= 2m-1)
	half int            // l / 2
	plan *fft.RFFT      // shared transform plan for length l
	spec [][]complex128 // conj(RFFT(x_i)) half-spectra, length half+1 each
	norm []float64      // ‖x_i‖
	pool sync.Pool      // *SBDScratch, reused across chunks and iterations
}

// NewSBDBatch precomputes spectra for data. All series must share one
// length; the slice contents are captured by value (later mutation of the
// input arrays is not observed).
func NewSBDBatch(data [][]float64) *SBDBatch {
	if len(data) == 0 {
		return &SBDBatch{}
	}
	m := len(data[0])
	l := fft.NextPow2(2*m - 1)
	b := &SBDBatch{
		m:    m,
		l:    l,
		half: l / 2,
		plan: fft.NewRFFT(l),
		spec: make([][]complex128, len(data)),
		norm: make([]float64, len(data)),
	}
	work := make([]complex128, b.plan.WorkLen())
	for i, x := range data {
		if len(x) != m {
			panic(fmt.Sprintf("dist: SBDBatch length mismatch at %d: %d vs %d", i, len(x), m))
		}
		spec := make([]complex128, b.plan.SpectrumLen())
		b.plan.Forward(x, spec, work)
		for k := range spec {
			spec[k] = complex(real(spec[k]), -imag(spec[k]))
		}
		b.spec[i] = spec
		b.norm[i] = ts.Norm(x)
	}
	return b
}

// Len returns the number of series in the batch.
func (b *SBDBatch) Len() int { return len(b.spec) }

// SBDScratch holds the per-goroutine buffers of one in-flight SBD
// computation: the spectral product, the half-size transform workspace, and
// the real correlation output. Scratches are tied to the batch geometry
// that created them and must not be shared between concurrent goroutines.
type SBDScratch struct {
	prod []complex128 // half+1: query spectrum × cached conjugate spectrum
	work []complex128 // half: RFFT internal workspace
	cc   []float64    // l: real cross-correlation, circularly laid out
}

// Scratch allocates a fresh buffer set usable with DistanceScratch and
// PairDistance. Each goroutine sharing one prepared query needs its own.
func (b *SBDBatch) Scratch() *SBDScratch {
	return &SBDScratch{
		prod: make([]complex128, b.half+1),
		work: make([]complex128, b.half),
		cc:   make([]float64, b.l),
	}
}

// AcquireScratch returns a scratch from the batch's internal pool (or a
// fresh one), for loops whose chunk bodies want allocation-free steady
// state without threading buffers through their callers. Pair it with
// ReleaseScratch.
func (b *SBDBatch) AcquireScratch() *SBDScratch {
	if sc, ok := b.pool.Get().(*SBDScratch); ok {
		return sc
	}
	return b.Scratch()
}

// ReleaseScratch returns a scratch obtained from AcquireScratch to the
// pool.
func (b *SBDBatch) ReleaseScratch(sc *SBDScratch) { b.pool.Put(sc) }

// SBDQuery holds the half-spectrum of one query series plus an owned
// scratch. One query is not safe for concurrent use through Distance or
// Nearest (they use the owned scratch), but its spectrum is read-only, so
// any number of goroutines may share it through DistanceScratch with their
// own buffers.
type SBDQuery struct {
	batch *SBDBatch
	spec  []complex128 // RFFT(q), not conjugated
	norm  float64
	own   *SBDScratch
}

// Query prepares q (length m) for repeated distance computations against
// the batch.
func (b *SBDBatch) Query(q []float64) *SBDQuery { return b.QueryInto(nil, q) }

// QueryInto is Query writing into dst's buffers (allocating them only on
// first use, or when dst is nil or belongs to another batch): one forward
// transform and no allocations in steady state. It returns dst, so cached
// queries can be refreshed in place when a centroid changes:
//
//	queries[j] = batch.QueryInto(queries[j], centroids[j])
func (b *SBDBatch) QueryInto(dst *SBDQuery, q []float64) *SBDQuery {
	if len(q) != b.m {
		panic(fmt.Sprintf("dist: SBDBatch query length %d, want %d", len(q), b.m))
	}
	if dst == nil {
		dst = &SBDQuery{}
	}
	if dst.batch != b || dst.own == nil {
		dst.batch = b
		dst.spec = make([]complex128, b.plan.SpectrumLen())
		dst.own = b.Scratch()
	}
	b.plan.Forward(q, dst.spec, dst.own.work)
	dst.norm = ts.Norm(q)
	return dst
}

// Distance returns SBD(q, x_i) and the shift aligning x_i toward q
// (aligned x_i = ts.Shift(x_i, shift)), exactly matching SBD/Algorithm 1.
//
//kshape:hotpath
func (s *SBDQuery) Distance(i int) (dist float64, shift int) {
	return s.DistanceScratch(i, s.own)
}

// DistanceScratch is Distance computed in the caller-provided scratch,
// which lets multiple goroutines share one prepared query — the query's
// spectrum is only read — without repeating its forward transform.
//
//kshape:hotpath
func (s *SBDQuery) DistanceScratch(i int, sc *SBDScratch) (dist float64, shift int) {
	obs.Inc(obs.CounterSBD)
	b := s.batch
	den := s.norm * b.norm[i]
	//lint:ignore floatcmp exact zero-norm guard before dividing by it
	if den == 0 {
		return 1, 0 // degenerate-input convention, as in SBD
	}
	ci := b.spec[i]
	for k, c := range ci {
		sc.prod[k] = s.spec[k] * c
	}
	b.plan.Inverse(sc.prod, sc.cc, sc.work)
	return scanCC(sc.cc, b.m, b.l, den)
}

// Nearest returns the batch index minimizing SBD(q, x_i) together with
// that distance, breaking ties toward the smaller index — exactly the
// result of NNIndex over the same series. It uses the query's owned
// scratch; Len()==0 yields (-1, +Inf).
//
//kshape:hotpath
func (s *SBDQuery) Nearest() (idx int, dist float64) {
	best, bestIdx := math.Inf(1), -1
	for i := range s.batch.spec {
		if d, _ := s.DistanceScratch(i, s.own); d < best {
			best, bestIdx = d, i
		}
	}
	return bestIdx, best
}

// PairDistance returns SBD(x_i, x_j) between two cached series and the
// shift aligning x_j toward x_i, without any forward transform: the
// spectral product is assembled directly from the two cached conjugate
// half-spectra (conj(conj(S_i)·) recovers S_i).
//
//kshape:hotpath
func (b *SBDBatch) PairDistance(i, j int, sc *SBDScratch) (dist float64, shift int) {
	obs.Inc(obs.CounterSBD)
	den := b.norm[i] * b.norm[j]
	//lint:ignore floatcmp exact zero-norm guard before dividing by it
	if den == 0 {
		return 1, 0
	}
	ci, cj := b.spec[i], b.spec[j]
	for k := range ci {
		sc.prod[k] = complex(real(ci[k]), -imag(ci[k])) * cj[k]
	}
	b.plan.Inverse(sc.prod, sc.cc, sc.work)
	return scanCC(sc.cc, b.m, b.l, den)
}

// scanCC finds the maximum of the circularly laid-out correlation over the
// valid lags -(m-1)..m-1 and converts it to (distance, shift). The scan
// visits lags in ascending order with a strict comparison — the exact
// tie-break of the per-pair SBD scan — but walks the two contiguous runs of
// the circular buffer (negative lags at the tail, non-negative at the head)
// instead of jumping between them per lag.
//
//kshape:hotpath
func scanCC(cc []float64, m, l int, den float64) (float64, int) {
	best, bestLag := math.Inf(-1), 0
	for lag := -(m - 1); lag < 0; lag++ {
		if v := cc[lag+l]; v > best {
			best, bestLag = v, lag
		}
	}
	for lag := 0; lag <= m-1; lag++ {
		if v := cc[lag]; v > best {
			best, bestLag = v, lag
		}
	}
	return 1 - best/den, bestLag
}

// PairwiseInto fills the preallocated n×n matrix out (n = Len) with all
// pairwise SBD distances from the cached spectra: one half-size inverse
// transform per upper-triangle pair and zero allocations in steady state
// (per-worker scratch comes from the batch pool). Rows are distributed
// dynamically with a cache-blocked floor of pairwiseMinRows rows per chunk;
// the result is identical for every worker count.
func (b *SBDBatch) PairwiseInto(out [][]float64, workers int) {
	n := len(b.spec)
	if par.Resolve(workers) == 1 && obs.ActiveRecorder() == nil {
		// Serial fast path: dispatching through ForChunksMin would heap-
		// allocate the chunk closure on every build (it escapes into the
		// worker-pool branch), which is the one allocation between a
		// prepared batch and a zero-alloc steady state. With no flight
		// recorder installed there is no chunk attribution to record, so
		// the inline loop is observationally identical.
		sc := b.AcquireScratch()
		b.pairwiseRows(out, 0, n, sc)
		b.ReleaseScratch(sc)
	} else {
		par.ForChunksMin(workers, n, pairwiseMinRows, func(lo, hi int) {
			sc := b.AcquireScratch()
			b.pairwiseRows(out, lo, hi, sc)
			b.ReleaseScratch(sc)
		})
	}
	// Mirror the upper triangle (the diagonal stays zero).
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			out[i][j] = out[j][i]
		}
	}
}

// pairwiseRows fills the upper-triangle entries of rows [lo, hi).
//
//kshape:hotpath
func (b *SBDBatch) pairwiseRows(out [][]float64, lo, hi int, sc *SBDScratch) {
	n := len(b.spec)
	for i := lo; i < hi; i++ {
		row := out[i]
		for j := i + 1; j < n; j++ {
			row[j], _ = b.PairDistance(i, j, sc)
		}
	}
}

// SBDNearest returns, for every query, the index of its nearest series in
// refs under SBD (ties toward the smaller index, matching NNIndex), using
// one spectrum cache over refs and per-chunk reused query buffers. With
// empty refs every result is -1. The result is identical for every worker
// count.
func SBDNearest(refs, queries [][]float64, workers int) []int {
	out := make([]int, len(queries))
	if len(refs) == 0 {
		for i := range out {
			out[i] = -1
		}
		return out
	}
	b := NewSBDBatch(refs)
	par.ForChunksMin(workers, len(queries), nearestMinPerJob, func(lo, hi int) {
		var q *SBDQuery
		for i := lo; i < hi; i++ {
			q = b.QueryInto(q, queries[i])
			out[i], _ = q.Nearest()
		}
	})
	return out
}
