package par

// Tests for the flight-recorder attribution in the pool: results must be
// bit-identical with and without a recorder at every worker count, the
// busy/wait/wall identity must hold exactly, and the chunk accounting must
// be deterministic (same totals every run).

import (
	"math"
	"testing"

	"kshape/internal/obs"
)

// withRecorder installs a fresh recorder around fn and returns it for
// inspection. The previous recorder (always nil in these tests) is
// restored afterward.
func withRecorder(t *testing.T, fn func()) *obs.Recorder {
	t.Helper()
	r := obs.NewRecorder(1 << 12)
	prev := obs.SetRecorder(r)
	defer obs.SetRecorder(prev)
	fn()
	return r
}

var attrWorkerCounts = []int{1, 2, 8}

func TestResultsBitIdenticalWithRecorder(t *testing.T) {
	const n = 500
	term := func(i int) float64 { return math.Sin(float64(i)) / (1 + float64(i%7)) }
	score := func(i int) float64 { return math.Cos(float64(i) * 1.7) }

	wantSum := SumFloat(1, n, term)
	wantIdx, wantMin := MinIndex(1, n, score)
	wantOut := make([]float64, n)
	For(1, n, func(i int) { wantOut[i] = term(i) * 2 })

	for _, w := range attrWorkerCounts {
		for _, recorded := range []bool{false, true} {
			run := func() {
				if got := SumFloat(w, n, term); got != wantSum {
					t.Errorf("workers=%d recorded=%v: SumFloat = %x, want %x",
						w, recorded, math.Float64bits(got), math.Float64bits(wantSum))
				}
				idx, min := MinIndex(w, n, score)
				if idx != wantIdx || min != wantMin {
					t.Errorf("workers=%d recorded=%v: MinIndex = (%d, %v), want (%d, %v)",
						w, recorded, idx, min, wantIdx, wantMin)
				}
				out := make([]float64, n)
				For(w, n, func(i int) { out[i] = term(i) * 2 })
				for i := range out {
					if out[i] != wantOut[i] {
						t.Errorf("workers=%d recorded=%v: For output differs at %d", w, recorded, i)
						break
					}
				}
			}
			if recorded {
				withRecorder(t, run)
			} else {
				run()
			}
		}
	}
}

func TestWorkerAttributionIdentity(t *testing.T) {
	const n = 300
	for _, w := range attrWorkerCounts {
		rec := withRecorder(t, func() {
			ForChunks(w, n, func(lo, hi int) {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += math.Sqrt(float64(i))
				}
				_ = s
			})
		})
		rep := rec.Report("par_test", "", nil, obs.Counters{})
		if len(rep.Workers) == 0 {
			t.Fatalf("workers=%d: no attribution rows", w)
		}
		if len(rep.Workers) > w {
			t.Errorf("workers=%d: %d attribution rows", w, len(rep.Workers))
		}
		var items, chunks int64
		for _, ws := range rep.Workers {
			if ws.BusyNS+ws.WaitNS != ws.WallNS {
				t.Errorf("workers=%d worker %d: busy %d + wait %d != wall %d",
					w, ws.Worker, ws.BusyNS, ws.WaitNS, ws.WallNS)
			}
			if ws.BusyNS < 0 || ws.WaitNS < 0 {
				t.Errorf("workers=%d worker %d: negative attribution", w, ws.Worker)
			}
			items += ws.Items
			chunks += ws.Chunks
		}
		if items != n {
			t.Errorf("workers=%d: attributed %d items, want %d", w, items, n)
		}
		wantChunks := int64(chunkCount(w, n))
		if chunks != wantChunks {
			t.Errorf("workers=%d: attributed %d chunks, want %d", w, chunks, wantChunks)
		}
	}
}

// chunkCount mirrors the pool's chunking arithmetic.
func chunkCount(w, n int) int {
	w = Resolve(w)
	if n <= 0 {
		return 0
	}
	if w > n {
		w = n
	}
	if w == 1 {
		return 1
	}
	chunks := w * chunksPerWorker
	if chunks > n {
		chunks = n
	}
	return chunks
}

func TestChunkEventsCoverRangeExactly(t *testing.T) {
	const n = 257
	for _, w := range attrWorkerCounts {
		rec := withRecorder(t, func() {
			ForChunks(w, n, func(lo, hi int) {})
		})
		covered := make([]int, n)
		events := 0
		for _, e := range rec.Events() {
			if e.Kind != obs.EventChunk {
				continue
			}
			events++
			if e.DurNS < 0 || e.AtNS < 0 {
				t.Errorf("workers=%d: chunk event with negative span (%d, %d)", w, e.AtNS, e.DurNS)
			}
			for i := e.Lo; i < e.Hi; i++ {
				covered[i]++
			}
		}
		if events != chunkCount(w, n) {
			t.Errorf("workers=%d: %d chunk events, want %d", w, events, chunkCount(w, n))
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", w, i, c)
			}
		}
	}
}

func TestExtremeIndexAttributesThroughPool(t *testing.T) {
	const n = 300
	rec := withRecorder(t, func() {
		MinIndex(4, n, func(i int) float64 { return float64((i * 7919) % 104729) })
	})
	rep := rec.Report("par_test", "", nil, obs.Counters{})
	var items int64
	for _, ws := range rep.Workers {
		items += ws.Items
	}
	if items != n {
		t.Errorf("MinIndex attributed %d items, want %d", items, n)
	}
}

func TestSerialPathAttributesWorkerZero(t *testing.T) {
	const n = 64
	rec := withRecorder(t, func() {
		ForChunks(1, n, func(lo, hi int) {})
	})
	rep := rec.Report("par_test", "", nil, obs.Counters{})
	if len(rep.Workers) != 1 || rep.Workers[0].Worker != 0 {
		t.Fatalf("serial path attribution rows = %+v, want exactly worker 0", rep.Workers)
	}
	if rep.Workers[0].Items != n || rep.Workers[0].Chunks != 1 {
		t.Errorf("serial attribution = %+v, want 1 chunk of %d items", rep.Workers[0], n)
	}
	if rep.Workers[0].WaitNS != 0 {
		t.Errorf("serial path recorded wait %dns, want 0", rep.Workers[0].WaitNS)
	}
}
