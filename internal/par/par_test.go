package par

import (
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

// workerCounts are the degrees of parallelism every determinism test
// sweeps; 8 deliberately exceeds most CI machines' core counts so that
// oversubscription is covered too.
var workerCounts = []int{1, 2, 3, 8}

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.NumCPU() {
		t.Errorf("Resolve(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Resolve(-3); got != runtime.NumCPU() {
		t.Errorf("Resolve(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	for _, w := range []int{1, 2, 64} {
		if got := Resolve(w); got != w {
			t.Errorf("Resolve(%d) = %d", w, got)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1023} {
		for _, w := range workerCounts {
			hits := make([]int32, n)
			For(w, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestForChunksPartition(t *testing.T) {
	for _, n := range []int{1, 5, 16, 97} {
		for _, w := range workerCounts {
			hits := make([]int32, n)
			ForChunks(w, n, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("empty chunk [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d covered %d times", n, w, i, h)
				}
			}
		}
	}
}

// TestSumFloatBitIdentical is the core determinism guarantee: the sum is
// bit-for-bit identical for every worker count, because accumulation order
// is fixed regardless of partitioning.
func TestSumFloatBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 10_000
	vals := make([]float64, n)
	for i := range vals {
		// Wildly varying magnitudes make the sum order-sensitive, so any
		// partition-dependent accumulation would show up here.
		vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6))
	}
	want := 0.0
	for _, v := range vals {
		want += v
	}
	for _, w := range workerCounts {
		got := SumFloat(w, n, func(i int) float64 { return vals[i] })
		if got != want {
			t.Errorf("workers=%d: sum %v != serial %v (diff %g)", w, got, want, got-want)
		}
	}
}

func TestSumInt(t *testing.T) {
	n := 5000
	want := n * (n - 1) / 2
	for _, w := range workerCounts {
		if got := SumInt(w, n, func(i int) int { return i }); got != want {
			t.Errorf("workers=%d: SumInt = %d, want %d", w, got, want)
		}
	}
	if got := SumInt(4, 0, func(int) int { return 1 }); got != 0 {
		t.Errorf("empty SumInt = %d", got)
	}
}

func TestMinIndexMatchesSerialScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		vals := make([]float64, n)
		for i := range vals {
			// Coarse quantization forces frequent exact ties.
			vals[i] = float64(rng.Intn(8))
		}
		wantIdx, wantVal := -1, math.Inf(1)
		for i, v := range vals {
			if v < wantVal {
				wantIdx, wantVal = i, v
			}
		}
		for _, w := range workerCounts {
			gotIdx, gotVal := MinIndex(w, n, func(i int) float64 { return vals[i] })
			if gotIdx != wantIdx || gotVal != wantVal {
				t.Fatalf("workers=%d n=%d: MinIndex = (%d, %v), want (%d, %v)",
					w, n, gotIdx, gotVal, wantIdx, wantVal)
			}
		}
	}
}

func TestMaxIndexMatchesSerialScan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(8))
		}
		wantIdx, wantVal := -1, math.Inf(-1)
		for i, v := range vals {
			if v > wantVal {
				wantIdx, wantVal = i, v
			}
		}
		for _, w := range workerCounts {
			gotIdx, gotVal := MaxIndex(w, n, func(i int) float64 { return vals[i] })
			if gotIdx != wantIdx || gotVal != wantVal {
				t.Fatalf("workers=%d n=%d: MaxIndex = (%d, %v), want (%d, %v)",
					w, n, gotIdx, gotVal, wantIdx, wantVal)
			}
		}
	}
}

func TestMinIndexEdgeCases(t *testing.T) {
	if idx, val := MinIndex(4, 0, func(int) float64 { return 0 }); idx != -1 || !math.IsInf(val, 1) {
		t.Errorf("empty MinIndex = (%d, %v)", idx, val)
	}
	// NaN scores are never selected.
	vals := []float64{math.NaN(), 3, math.NaN(), 2, math.NaN()}
	for _, w := range workerCounts {
		idx, val := MinIndex(w, len(vals), func(i int) float64 { return vals[i] })
		if idx != 3 || val != 2 {
			t.Errorf("workers=%d: MinIndex over NaNs = (%d, %v), want (3, 2)", w, idx, val)
		}
	}
	// All-NaN input selects nothing.
	allNaN := []float64{math.NaN(), math.NaN()}
	if idx, _ := MinIndex(2, len(allNaN), func(i int) float64 { return allNaN[i] }); idx != -1 {
		t.Errorf("all-NaN MinIndex idx = %d, want -1", idx)
	}
	// All-+Inf input selects nothing (matches a serial strict-< scan
	// starting from +Inf).
	if idx, _ := MinIndex(2, 3, func(int) float64 { return math.Inf(1) }); idx != -1 {
		t.Errorf("all-Inf MinIndex idx = %d, want -1", idx)
	}
}

// TestForConcurrentDisjointWrites exercises the documented usage contract
// (each iteration writes only its own slot) under the race detector.
func TestForConcurrentDisjointWrites(t *testing.T) {
	n := 4096
	out := make([]float64, n)
	For(8, n, func(i int) { out[i] = float64(i) * 0.5 })
	for i, v := range out {
		if v != float64(i)*0.5 {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
}
