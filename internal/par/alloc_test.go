package par

import (
	"math/rand"
	"testing"
)

// TestReductionInnerLoopsAllocFree pins the extracted //kshape:hotpath
// reduction kernels — the serial/per-chunk inner loops behind SumFloat,
// SumInt, and extremeIndex — at zero allocations. The caller-supplied
// term/score closures are hoisted outside the measured region, exactly
// as the exported wrappers hoist them outside their loops.
func TestReductionInnerLoopsAllocFree(t *testing.T) {
	vals := make([]float64, 512)
	rng := rand.New(rand.NewSource(5))
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	term := func(i int) float64 { return vals[i] }
	intTerm := func(i int) int { return i * i }
	better := func(v, best float64) bool { return v < best }
	var fsink float64
	var isink int
	var csink extremeCandidate
	if a := testing.AllocsPerRun(100, func() {
		fsink = sumFloatRange(0, len(vals), term)
		fsink += sumFloats(vals)
		isink = sumIntRange(0, len(vals), intTerm)
		csink = scanExtreme(0, len(vals), term, better)
	}); a != 0 {
		t.Errorf("reduction inner loops allocate %v per run, want 0", a)
	}
	_, _, _ = fsink, isink, csink
}
