// Package par is the repository's shared parallel-execution substrate: a
// stdlib-only work-partitioning layer used by every compute-heavy loop in
// the codebase (distance-matrix construction, the k-Shape assignment and
// refinement steps, DBA alignment passes, PAM cost scans, spectral affinity
// rows, and 1-NN evaluation).
//
// The design goal is determinism: for a fixed input, every exported helper
// produces bit-for-bit identical results regardless of the worker count or
// goroutine scheduling. The rules that make this hold are:
//
//   - For/ForChunks parallelize loops whose body writes only to state
//     addressed by the loop index (out[i] = f(i)); the write targets are
//     disjoint, so scheduling order is irrelevant.
//   - Floating-point reductions (SumFloat) evaluate the per-index terms in
//     parallel but combine them serially in index order, so the rounding
//     of the accumulation never depends on how work was partitioned.
//   - Index reductions (MinIndex, MaxIndex) break ties toward the smaller
//     index, which makes the merge associative and commutative over exact
//     comparisons and therefore partition-independent; the result matches
//     a serial ascending scan with a strict comparison.
//
// Work is scheduled dynamically: the index range is split into a few
// contiguous chunks per worker and goroutines claim chunks through an
// atomic cursor, which balances loops with heterogeneous per-index cost
// (triangular distance-matrix rows, uneven cluster sizes) without hurting
// the determinism contract above.
package par

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"kshape/internal/obs"
)

// chunksPerWorker oversamples the chunk count relative to the worker count
// so that dynamic scheduling can balance uneven per-index costs. Larger
// values smooth skew at the price of more cursor contention.
const chunksPerWorker = 4

// Resolve maps a requested worker count to the effective one: any value
// below 1 means runtime.NumCPU() (the package-wide default), and positive
// values are taken as-is. 1 means fully serial execution on the caller's
// goroutine.
func Resolve(workers int) int {
	if workers < 1 {
		return runtime.NumCPU()
	}
	return workers
}

// For runs fn(i) for every i in [0, n) using at most Resolve(workers)
// concurrent goroutines. fn must only write to state addressed by i (or
// otherwise owned by index i); under that contract the results are
// identical for every worker count. With workers == 1 (or n <= 1) the loop
// runs serially on the calling goroutine with no synchronization.
func For(workers, n int, fn func(i int)) {
	ForChunks(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunks partitions [0, n) into contiguous half-open chunks [lo, hi) and
// invokes fn once per chunk, using at most Resolve(workers) concurrent
// goroutines. Chunks are disjoint and cover the full range exactly once.
// Use it instead of For when the body wants per-chunk setup (a scratch
// buffer, a batched query) amortized over many indices.
//
// When a flight recorder is installed (obs.SetRecorder), every worker
// additionally records its chunk spans and per-invocation attribution —
// chunks executed, items covered, busy time inside fn versus time waiting
// for work — without perturbing scheduling or results: the recorder only
// adds clock reads around chunk bodies, and the work partition is
// identical with and without it. The serial path (one worker) is
// attributed to worker 0 so pool-efficiency numbers stay comparable
// across worker counts.
func ForChunks(workers, n int, fn func(lo, hi int)) {
	ForChunksMin(workers, n, 1, fn)
}

// ForChunksMin is ForChunks with a floor on the chunk size: the range is
// never split into chunks of fewer than min indices (except the final
// remainder), capping worker-handoff overhead when the per-index work is
// small. The partition depends only on (workers, n, min) — never on
// scheduling — so the determinism contract of ForChunks is unchanged. A
// min below 1 is treated as 1.
func ForChunksMin(workers, n, min int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if min < 1 {
		min = 1
	}
	w := Resolve(workers)
	if w > n {
		w = n
	}
	rec := obs.ActiveRecorder()
	if w == 1 {
		runSerial(rec, n, fn)
		return
	}
	chunks := w * chunksPerWorker
	if chunks > n {
		chunks = n
	}
	if maxChunks := n / min; maxChunks > 0 && chunks > maxChunks {
		chunks = maxChunks
	}
	if w > chunks {
		w = chunks
	}
	if w == 1 {
		// The chunk-size floor collapsed the range to one chunk; run it
		// serially instead of spawning a single-goroutine pool.
		runSerial(rec, n, fn)
		return
	}
	if rec == nil && poolSize(w) == 1 {
		// The scheduler has a single P, so the pool could never run two
		// chunks concurrently, and with no flight recorder installed the
		// chunk layout is unobservable. Every body contract in this package
		// is partition-independent (disjoint writes, serial-order merges),
		// so one big chunk produces identical results with zero pool
		// overhead — this is what makes workers=N on a single-core machine
		// cost the same as workers=1 instead of strictly more.
		runSerial(nil, n, fn)
		return
	}
	// Publish the pool size on the active-workers gauge while the pool
	// runs, mirroring runPool's spawn rule (the full logical pool under a
	// flight recorder, capped at the scheduler's parallelism otherwise).
	// Capture Enabled once so the add/subtract pair stays balanced even if
	// collection is toggled mid-loop.
	if obs.Enabled() {
		spawn := int64(w)
		if rec == nil {
			spawn = int64(poolSize(w))
		}
		obs.AddGauge(obs.GaugeActiveWorkers, spawn)
		defer obs.AddGauge(obs.GaugeActiveWorkers, -spawn)
	}
	runPool(w, chunks, n, func(_, lo, hi int) { fn(lo, hi) })
}

// runSerial executes the whole range as one chunk on the calling goroutine,
// attributing it to worker 0 when a flight recorder is installed so
// pool-efficiency numbers stay comparable across worker counts.
func runSerial(rec *obs.Recorder, n int, fn func(lo, hi int)) {
	if rec == nil {
		fn(0, n)
		return
	}
	sw := obs.NewStopwatch()
	fn(0, n)
	busy := sw.ElapsedNS()
	rec.RecordChunk(0, 0, n, rec.NowNS()-busy, busy)
	rec.AddWorkerSpan(0, 1, int64(n), busy, 0, busy)
}

// poolSize caps the number of goroutines a pool actually spawns at
// GOMAXPROCS. The chunk partition is always computed from the logical
// worker count — so results, chunk layouts, and recorder events are
// identical whatever the machine — but goroutines beyond the scheduler's
// available parallelism can never run concurrently and only add spawn and
// handoff overhead.
func poolSize(w int) int {
	if p := runtime.GOMAXPROCS(0); w > p {
		return p
	}
	return w
}

// runPool is the one place pool goroutines are spawned: up to poolSize(w)
// workers claim the chunks of [0, n) through an atomic cursor and run
// body(c, lo, hi) for each claimed chunk c. When a flight recorder is
// installed, each worker additionally records its chunk spans and publishes
// busy/wait attribution — wait being everything in the worker's wall time
// outside chunk bodies (cursor claims, goroutine startup, the final drain),
// so busy + wait equals wall exactly. The recorded variant claims chunks
// through the same cursor in the same order; only clock reads are added.
func runPool(w, chunks, n int, body func(c, lo, hi int)) {
	rec := obs.ActiveRecorder()
	spawn := w
	if rec == nil {
		// With no flight recorder the per-worker attribution is
		// unobservable, so goroutines beyond the scheduler's parallelism
		// are pure overhead; recorded runs keep the full logical pool so
		// reports faithfully show the requested concurrency.
		spawn = poolSize(w)
		if spawn == 1 {
			// Drain the identical chunk partition on the calling
			// goroutine: same chunks, same outputs, no spawn cost.
			for c := 0; c < chunks; c++ {
				body(c, c*n/chunks, (c+1)*n/chunks)
			}
			return
		}
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(spawn)
	for g := 0; g < spawn; g++ {
		go func(worker int) {
			defer wg.Done()
			if rec == nil {
				for {
					c := int(cursor.Add(1)) - 1
					if c >= chunks {
						return
					}
					body(c, c*n/chunks, (c+1)*n/chunks)
				}
			}
			wallSW := obs.NewStopwatch()
			var nchunks, items, busy int64
			for {
				c := int(cursor.Add(1)) - 1
				if c >= chunks {
					break
				}
				lo, hi := c*n/chunks, (c+1)*n/chunks
				start := rec.NowNS()
				sw := obs.NewStopwatch()
				body(c, lo, hi)
				d := sw.ElapsedNS()
				rec.RecordChunk(worker, lo, hi, start, d)
				nchunks++
				items += int64(hi - lo)
				busy += d
			}
			wall := wallSW.ElapsedNS()
			rec.AddWorkerSpan(worker, nchunks, items, busy, wall-busy, wall)
		}(g)
	}
	wg.Wait()
}

// sumFloatRange is the serial accumulation inner loop of SumFloat:
// ascending index order, one term at a time, so its rounding is the
// reference every parallel decomposition must reproduce.
//
//kshape:hotpath
func sumFloatRange(lo, hi int, term func(i int) float64) float64 {
	total := 0.0
	for i := lo; i < hi; i++ {
		//lint:ignore hotpath term is the caller-supplied kernel; the reduction loop itself stays allocation-free
		total += term(i)
	}
	return total
}

// sumFloats folds an already-materialized term slice in index order —
// the serial combine step of SumFloat's parallel path.
//
//kshape:hotpath
func sumFloats(vals []float64) float64 {
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total
}

// sumIntRange is the per-chunk integer reduction inner loop of SumInt.
//
//kshape:hotpath
func sumIntRange(lo, hi int, term func(i int) int) int {
	total := 0
	for i := lo; i < hi; i++ {
		//lint:ignore hotpath term is the caller-supplied kernel; the reduction loop itself stays allocation-free
		total += term(i)
	}
	return total
}

// SumFloat returns the sum of term(i) for i in [0, n). The terms are
// evaluated in parallel but accumulated serially in ascending index order,
// so the floating-point result is bit-for-bit identical for every worker
// count (including the serial path).
func SumFloat(workers, n int, term func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if Resolve(workers) == 1 || n == 1 {
		return sumFloatRange(0, n, term)
	}
	vals := make([]float64, n)
	For(workers, n, func(i int) { vals[i] = term(i) })
	return sumFloats(vals)
}

// SumInt returns the sum of term(i) for i in [0, n), evaluated in parallel.
// Integer addition is exact, so per-chunk partial sums are combined without
// any ordering concern.
func SumInt(workers, n int, term func(i int) int) int {
	if n <= 0 {
		return 0
	}
	if Resolve(workers) == 1 || n == 1 {
		return sumIntRange(0, n, term)
	}
	var total atomic.Int64
	ForChunks(workers, n, func(lo, hi int) {
		total.Add(int64(sumIntRange(lo, hi, term)))
	})
	return int(total.Load())
}

// MinIndex returns the index in [0, n) minimizing score(i) together with
// that score, breaking ties toward the smaller index — exactly the result
// of a serial ascending scan keeping the first strict improvement. NaN
// scores are never selected; if no index scores below +Inf the result is
// (-1, +Inf). The outcome is identical for every worker count.
func MinIndex(workers, n int, score func(i int) float64) (argmin int, min float64) {
	return extremeIndex(workers, n, score, func(v, best float64) bool { return v < best })
}

// MaxIndex is MinIndex for maximization: ties break toward the smaller
// index, NaN scores are never selected, and (-1, -Inf) is returned when no
// index scores above -Inf.
func MaxIndex(workers, n int, score func(i int) float64) (argmax int, max float64) {
	a, v := extremeIndex(workers, n, func(i int) float64 { return -score(i) },
		func(v, best float64) bool { return v < best })
	return a, -v
}

// extremeCandidate is one chunk's best (index, score) pair; idx -1 means
// the chunk selected nothing (empty range or all-NaN scores).
type extremeCandidate struct {
	idx int
	val float64
}

// scanExtreme is the ascending inner scan of MinIndex/MaxIndex over one
// chunk, keeping the first strict improvement (ties toward the smaller
// index).
//
//kshape:hotpath
func scanExtreme(lo, hi int, score func(i int) float64, better func(v, best float64) bool) extremeCandidate {
	best := extremeCandidate{-1, math.Inf(1)}
	for i := lo; i < hi; i++ {
		//lint:ignore hotpath score and better are the caller-supplied kernels; the scan loop itself stays allocation-free
		if v := score(i); better(v, best.val) {
			best = extremeCandidate{i, v}
		}
	}
	return best
}

func extremeIndex(workers, n int, score func(i int) float64, better func(v, best float64) bool) (int, float64) {
	inf := math.Inf(1)
	w := Resolve(workers)
	if n <= 0 {
		return -1, inf
	}
	if w == 1 || n == 1 {
		c := scanExtreme(0, n, score, better)
		return c.idx, c.val
	}
	if w > n {
		w = n
	}
	chunks := w * chunksPerWorker
	if chunks > n {
		chunks = n
	}
	partial := make([]extremeCandidate, chunks)
	runPool(w, chunks, n, func(c, lo, hi int) { partial[c] = scanExtreme(lo, hi, score, better) })
	// Merge in chunk (hence index) order; strict comparison keeps the
	// smallest index on ties, matching the serial scan.
	best := extremeCandidate{-1, inf}
	for _, c := range partial {
		if c.idx >= 0 && better(c.val, best.val) {
			best = c
		}
	}
	return best.idx, best.val
}
