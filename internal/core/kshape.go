// Package core implements the paper's primary contribution: the k-Shape
// clustering algorithm (Section 3.3, Algorithm 3), built on the shape-based
// distance (internal/dist.SBD) and shape extraction (internal/avg).
//
// The iterative refinement engine is exposed generically (Lloyd), since
// every scalable baseline in the paper's evaluation — k-AVG+ED, k-AVG+SBD,
// k-AVG+DTW, k-DBA, KSC, k-Shape+DTW — is the same loop with a different
// (distance, centroid) pair; internal/cluster instantiates them.
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"

	"kshape/internal/avg"
	"kshape/internal/dist"
	"kshape/internal/obs"
	"kshape/internal/par"
	"kshape/internal/ts"
)

// DefaultMaxIterations matches the paper's cap of 100 refinement iterations.
const DefaultMaxIterations = 100

// DistanceFunc measures dissimilarity between a centroid and a series.
type DistanceFunc func(centroid, x []float64) float64

// CentroidFunc computes a cluster representative given the members and the
// previous centroid (used as an alignment reference by shape extraction,
// DBA, and KSC).
type CentroidFunc func(members [][]float64, prev []float64) []float64

// Config parameterizes the Lloyd iterative-refinement engine.
type Config struct {
	// K is the number of clusters to produce. Required, 1 <= K <= n.
	K int
	// MaxIterations caps the refinement loop; 0 means DefaultMaxIterations.
	MaxIterations int
	// Distance is the assignment-step dissimilarity. Required.
	Distance DistanceFunc
	// Centroid is the refinement-step averaging method. Required.
	Centroid CentroidFunc
	// Rand supplies the random initial assignment. Required unless
	// InitialLabels is set.
	Rand *rand.Rand
	// InitialLabels, if non-nil, seeds the assignment deterministically
	// (length n, values in [0, K)).
	InitialLabels []int
	// OnIteration, if non-nil, is invoked synchronously after every
	// refinement iteration with that iteration's statistics (inertia,
	// label churn, per-phase wall time, cluster sizes). The callback runs
	// on the engine's goroutine; per-iteration bookkeeping is only
	// performed when it is set.
	OnIteration func(obs.IterationStats)
	// Workers bounds the engine's parallelism: the assignment step runs
	// in parallel across series and the refinement step across clusters.
	// <= 0 means runtime.NumCPU(), 1 means serial. Labels, centroids, and
	// the iteration trajectory are bit-for-bit identical for every value;
	// Distance and Centroid must therefore be safe for concurrent calls
	// (every implementation in this repository is).
	Workers int
	// Logger, if non-nil, receives structured per-iteration records at
	// debug level (iteration number, inertia, label churn, reseeds, phase
	// wall times). Iteration bookkeeping is only performed when the logger
	// is enabled for debug or OnIteration is set.
	Logger *slog.Logger
}

// Result reports a clustering.
type Result struct {
	// Labels assigns each input series to a cluster in [0, K).
	Labels []int
	// Centroids holds the K cluster representatives.
	Centroids [][]float64
	// Iterations is the number of refinement iterations executed.
	Iterations int
	// Converged is true when the loop stopped because no label changed
	// (rather than hitting MaxIterations).
	Converged bool
	// Inertia is the sum of squared assignment distances at termination —
	// the within-cluster objective of Equation 1.
	Inertia float64
}

// Errors returned by the engine.
var (
	ErrNoData = errors.New("core: no input series")
	ErrBadK   = errors.New("core: k must satisfy 1 <= k <= number of series")
)

// Lloyd runs the two-step iterative refinement of Algorithm 3 with the
// provided distance and centroid methods: refinement (recompute centroids)
// then assignment (reassign to nearest centroid), until labels stabilize or
// the iteration cap is hit.
//
// Centroids start as zero vectors and labels start random (or from
// InitialLabels), matching the paper's pseudocode. An emptied cluster is
// re-seeded with the series currently farthest from its own centroid, which
// keeps K clusters alive without biasing toward any particular member.
func Lloyd(data [][]float64, cfg Config) (*Result, error) {
	n := len(data)
	if n == 0 {
		return nil, ErrNoData
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("%w: k=%d, n=%d", ErrBadK, cfg.K, n)
	}
	if cfg.Distance == nil || cfg.Centroid == nil {
		return nil, errors.New("core: Config.Distance and Config.Centroid are required")
	}
	m := len(data[0])
	for i, x := range data {
		if len(x) != m {
			return nil, fmt.Errorf("core: series %d has length %d, want %d", i, len(x), m)
		}
	}
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	k := cfg.K

	labels := make([]int, n)
	switch {
	case cfg.InitialLabels != nil:
		if len(cfg.InitialLabels) != n {
			return nil, fmt.Errorf("core: InitialLabels length %d, want %d", len(cfg.InitialLabels), n)
		}
		for i, l := range cfg.InitialLabels {
			if l < 0 || l >= k {
				return nil, fmt.Errorf("core: InitialLabels[%d] = %d out of [0, %d)", i, l, k)
			}
			labels[i] = l
		}
	case cfg.Rand != nil:
		for i := range labels {
			labels[i] = cfg.Rand.Intn(k)
		}
	default:
		return nil, errors.New("core: Config.Rand is required when InitialLabels is nil")
	}

	centroids := make([][]float64, k)
	for j := range centroids {
		centroids[j] = make([]float64, m) // zero vectors, per Algorithm 3
	}
	assignDist := make([]float64, n)

	res := &Result{Labels: labels, Centroids: centroids}
	prev := make([]int, n)
	ob := newRunObserver(n, k, cfg.OnIteration, cfg.Logger)
	capture := ob.captureRows()
	for iter := 0; iter < maxIter; iter++ {
		copy(prev, labels)
		ob.beforeRefine(centroids)

		// Refinement step: recompute each centroid from its members, using
		// the previous centroid as the alignment reference. Clusters are
		// independent, so they refine in parallel.
		refineSW := obs.NewStopwatch()
		members := make([][][]float64, k)
		for i, l := range labels {
			members[l] = append(members[l], data[i])
		}
		par.For(cfg.Workers, k, func(j int) {
			centroids[j] = cfg.Centroid(members[j], centroids[j])
		})
		refineNS := refineSW.ElapsedNS()
		obs.RecordPhaseSpan(obs.PhaseRefine, refineNS)

		// Assignment step: each series moves to its closest centroid.
		// Each index writes only its own labels/assignDist slots, and the
		// centroid scan is ascending with a strict comparison, so the
		// outcome is worker-count independent.
		assignSW := obs.NewStopwatch()
		par.For(cfg.Workers, n, func(i int) {
			x := data[i]
			var capRow []float64
			if capture != nil {
				capRow = capture[i]
			}
			best, bestJ := math.Inf(1), labels[i]
			for j := 0; j < k; j++ {
				d := cfg.Distance(centroids[j], x)
				if capRow != nil {
					capRow[j] = d
				}
				if d < best {
					best, bestJ = d, j
				}
			}
			labels[i] = bestJ
			assignDist[i] = best
		})
		assignNS := assignSW.ElapsedNS()
		obs.RecordPhaseSpan(obs.PhaseAssign, assignNS)

		// Re-seed emptied clusters with the worst-fitting series.
		reseeds := reseedEmptyClusters(data, labels, assignDist, k)
		observeIterationTelemetry(iter, refineNS, assignNS, refineSW)

		res.Iterations = iter + 1
		converged := equalLabels(labels, prev)
		ob.observe(iter, labels, prev, assignDist, centroids, refineNS, assignNS, reseeds)
		if converged {
			res.Converged = true
			break
		}
	}
	res.Inertia = 0
	for _, d := range assignDist {
		res.Inertia += d * d
	}
	publishClusterSizes(labels, k)
	return res, nil
}

// observeIterationTelemetry records one iteration's phase latencies into
// the global histograms, advances the current-iteration gauge, and marks
// the iteration boundary (plus the whole-iteration span) on the flight
// recorder. All sinks are gated on their own switch, so with neither
// collection nor a recorder active the call costs a few atomic loads.
// The refine and assign spans are recorded inline by the engine loops the
// moment each phase ends, where their recorder-clock placement is exact.
func observeIterationTelemetry(iter int, refineNS, assignNS int64, iterSW obs.Stopwatch) {
	rec := obs.ActiveRecorder()
	if !obs.Enabled() && rec == nil {
		return
	}
	iterNS := iterSW.ElapsedNS()
	obs.ObservePhase(obs.PhaseRefine, refineNS)
	obs.ObservePhase(obs.PhaseAssign, assignNS)
	obs.ObservePhase(obs.PhaseIteration, iterNS)
	obs.SetGauge(obs.GaugeCurrentIteration, int64(iter+1))
	if rec != nil {
		rec.RecordPhaseSpan(obs.PhaseIteration, iterNS)
		rec.RecordIteration(iter + 1)
	}
}

// publishClusterSizes exposes the final cluster occupancy on the
// last-run-cluster-sizes gauge vector when collection is enabled.
func publishClusterSizes(labels []int, k int) {
	if !obs.Enabled() {
		return
	}
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	obs.SetClusterSizes(sizes)
}

// reseedEmptyClusters moves, for every empty cluster, the series with the
// largest assignment distance (among clusters with >1 member) into it, and
// returns the number of clusters re-seeded.
func reseedEmptyClusters(data [][]float64, labels []int, assignDist []float64, k int) int {
	counts := make([]int, k)
	for _, l := range labels {
		counts[l]++
	}
	reseeds := 0
	for j := 0; j < k; j++ {
		if counts[j] > 0 {
			continue
		}
		worst, worstI := -1.0, -1
		for i, d := range assignDist {
			if counts[labels[i]] > 1 && d > worst {
				worst, worstI = d, i
			}
		}
		if worstI < 0 {
			continue // cannot reseed without emptying another cluster
		}
		counts[labels[worstI]]--
		labels[worstI] = j
		counts[j] = 1
		assignDist[worstI] = 0
		reseeds++
	}
	obs.Add(obs.CounterReseeds, int64(reseeds))
	return reseeds
}

// iterationStats assembles the per-iteration record handed to OnIteration.
func iterationStats(iter int, labels, prev []int, assignDist []float64, k int,
	refineNS, assignNS int64, reseeds int) obs.IterationStats {
	churn := 0
	for i := range labels {
		if labels[i] != prev[i] {
			churn++
		}
	}
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	inertia := 0.0
	for _, d := range assignDist {
		inertia += d * d
	}
	return obs.IterationStats{
		Iteration:    iter + 1,
		Inertia:      inertia,
		LabelChurn:   churn,
		ClusterSizes: sizes,
		RefineNS:     refineNS,
		AssignNS:     assignNS,
		Reseeds:      reseeds,
	}
}

func equalLabels(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// KShape clusters z-normalized, equal-length series into k clusters with
// the shape-based distance and shape extraction (Algorithm 3). rng drives
// the random initial assignment; pass a fixed seed for reproducible runs.
//
// This entry point runs an optimized inner loop that precomputes the
// Fourier spectra of the input once (the data never moves between
// iterations, only the centroids do), cutting the per-iteration FFT count
// from three per comparison to one. Its results are identical to the
// generic Lloyd engine with SBD + shape extraction.
func KShape(data [][]float64, k int, rng *rand.Rand) (*Result, error) {
	return KShapeInit(data, k, rng, nil)
}

// KShapeInit is KShape with an optional deterministic initial assignment
// (labels in [0, k), length len(data)); rng may be nil when initLabels is
// provided.
func KShapeInit(data [][]float64, k int, rng *rand.Rand, initLabels []int) (*Result, error) {
	return KShapeRun(data, k, rng, KShapeOpts{InitialLabels: initLabels})
}

// KShapeOpts bundles the optional engine controls of the optimized k-Shape
// loop, mirroring the corresponding Config fields of the generic engine.
type KShapeOpts struct {
	// MaxIterations caps the refinement loop; 0 means DefaultMaxIterations.
	MaxIterations int
	// InitialLabels, if non-nil, seeds the assignment deterministically.
	InitialLabels []int
	// OnIteration, if non-nil, receives per-iteration statistics exactly
	// as in Config.OnIteration.
	OnIteration func(obs.IterationStats)
	// Workers bounds the loop's parallelism (Config.Workers semantics:
	// <= 0 means runtime.NumCPU(), 1 means serial). Results and kernel
	// counter totals are bit-for-bit identical for every value.
	Workers int
	// Logger, if non-nil, receives structured per-iteration records at
	// debug level (Config.Logger semantics).
	Logger *slog.Logger
}

// KShapeRun is the optimized k-Shape loop of KShape with explicit engine
// options (iteration cap, deterministic initialization, per-iteration
// observation).
func KShapeRun(data [][]float64, k int, rng *rand.Rand, opt KShapeOpts) (*Result, error) {
	n := len(data)
	if n == 0 {
		return nil, ErrNoData
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d, n=%d", ErrBadK, k, n)
	}
	m := len(data[0])
	for i, x := range data {
		if len(x) != m {
			return nil, fmt.Errorf("core: series %d has length %d, want %d", i, len(x), m)
		}
	}
	labels := make([]int, n)
	switch {
	case opt.InitialLabels != nil:
		if len(opt.InitialLabels) != n {
			return nil, fmt.Errorf("core: initial labels length %d, want %d", len(opt.InitialLabels), n)
		}
		for i, l := range opt.InitialLabels {
			if l < 0 || l >= k {
				return nil, fmt.Errorf("core: initial label %d out of [0, %d)", l, k)
			}
			labels[i] = l
		}
	case rng != nil:
		for i := range labels {
			labels[i] = rng.Intn(k)
		}
	default:
		return nil, errors.New("core: a random source is required without initial labels")
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}

	batch := dist.NewSBDBatch(data)
	centroids := make([][]float64, k)
	for j := range centroids {
		centroids[j] = make([]float64, m)
	}
	assignDist := make([]float64, n)
	res := &Result{Labels: labels, Centroids: centroids}
	prev := make([]int, n)
	ob := newRunObserver(n, k, opt.OnIteration, opt.Logger)
	capture := ob.captureRows()

	// All per-iteration state is allocated once, outside the loop, so the
	// steady-state iterations are allocation-free apart from the eigen
	// solve inside shape extraction:
	//   - queries caches one prepared spectrum per centroid; specFresh[j]
	//     records that queries[j] still matches centroids[j], so a centroid
	//     that did not move between iterations is never re-transformed.
	//   - settled[j] records that the last refinement reproduced
	//     centroids[j] bit for bit; combined with an unchanged member set
	//     the whole refinement of cluster j is a no-op and is skipped.
	//   - order/starts group member indices per cluster by counting sort
	//     (ascending within each cluster, exactly like the append-based
	//     grouping it replaces), and alignRows is the n×m backing the
	//     aligned members are shifted into.
	queries := make([]*dist.SBDQuery, k)
	specFresh := make([]bool, k)
	settled := make([]bool, k)
	membersChanged := make([]bool, k)
	for j := range membersChanged {
		membersChanged[j] = true
	}
	order := make([]int, n)
	starts := make([]int, k+1)
	fill := make([]int, k)
	alignRows := ts.NewMatrix(n, m)

	for iter := 0; iter < maxIter; iter++ {
		copy(prev, labels)
		ob.beforeRefine(centroids)

		// Group member indices per cluster: counting sort into order, with
		// cluster j occupying order[starts[j]:starts[j+1]].
		for j := range fill {
			starts[j] = 0
			fill[j] = 0
		}
		starts[k] = 0
		for _, l := range labels {
			starts[l+1]++
		}
		for j := 0; j < k; j++ {
			starts[j+1] += starts[j]
			fill[j] = starts[j]
		}
		for i, l := range labels {
			order[fill[l]] = i
			fill[l]++
		}

		// Refinement: align members to the previous centroid with one
		// batched query, then extract the new shape. Clusters refine in
		// parallel; each goroutine owns its cluster's query and a pooled
		// scratch. A cluster whose membership did not change and whose
		// last refinement was a bitwise fixed point is skipped outright —
		// recomputing it would reproduce the same centroid from the same
		// inputs.
		refineSW := obs.NewStopwatch()
		par.For(opt.Workers, k, func(j int) {
			if !disableSpectrumCache && settled[j] && !membersChanged[j] {
				return
			}
			idxs := order[starts[j]:starts[j+1]]
			if len(idxs) == 0 {
				centroids[j] = make([]float64, m)
				settled[j], specFresh[j] = false, false
				return
			}
			rows := alignRows[starts[j]:starts[j+1]]
			if isAllZero(centroids[j]) {
				for t, i := range idxs {
					copy(rows[t], data[i])
				}
			} else {
				if disableSpectrumCache || !specFresh[j] {
					queries[j] = batch.QueryInto(queries[j], centroids[j])
					specFresh[j] = true
				}
				sc := batch.AcquireScratch()
				alignMembers(queries[j], sc, data, idxs, rows)
				batch.ReleaseScratch(sc)
			}
			newC := avg.ShapeExtractionAligned(rows)
			settled[j] = equalFloatBits(newC, centroids[j])
			centroids[j] = newC
			if !settled[j] {
				specFresh[j] = false
			}
		})
		refineNS := refineSW.ElapsedNS()
		obs.RecordPhaseSpan(obs.PhaseRefine, refineNS)

		// Assignment: refresh the cached query of every centroid that
		// moved (at most k forward FFTs, fewer on later iterations as
		// centroids settle), then a parallel scan over series; each worker
		// chunk brings its own pooled inverse-FFT scratch so the queries
		// are shared read-only. The per-series centroid scan is ascending
		// with a strict comparison, so labels are worker-count independent.
		assignSW := obs.NewStopwatch()
		par.For(opt.Workers, k, func(j int) {
			if disableSpectrumCache || !specFresh[j] {
				queries[j] = batch.QueryInto(queries[j], centroids[j])
				specFresh[j] = true
			}
		})
		par.ForChunksMin(opt.Workers, n, assignMinPerChunk, func(lo, hi int) {
			scratch := batch.AcquireScratch()
			for i := lo; i < hi; i++ {
				var capRow []float64
				if capture != nil {
					capRow = capture[i]
				}
				assignDist[i], labels[i] = nearestCentroid(queries, scratch, i, labels[i], capRow)
			}
			batch.ReleaseScratch(scratch)
		})

		assignNS := assignSW.ElapsedNS()
		obs.RecordPhaseSpan(obs.PhaseAssign, assignNS)
		reseeds := reseedEmptyClusters(data, labels, assignDist, k)
		// Membership deltas (including reseeds) drive the next iteration's
		// refinement skip: only clusters that gained or lost a member need
		// their centroid recomputed — unless they hadn't settled yet.
		for j := range membersChanged {
			membersChanged[j] = false
		}
		for i := range labels {
			if labels[i] != prev[i] {
				membersChanged[labels[i]] = true
				membersChanged[prev[i]] = true
			}
		}
		observeIterationTelemetry(iter, refineNS, assignNS, refineSW)
		res.Iterations = iter + 1
		converged := equalLabels(labels, prev)
		ob.observe(iter, labels, prev, assignDist, centroids, refineNS, assignNS, reseeds)
		if converged {
			res.Converged = true
			break
		}
	}
	for _, d := range assignDist {
		res.Inertia += d * d
	}
	publishClusterSizes(labels, k)
	return res, nil
}

// assignMinPerChunk floors the per-chunk series count of the assignment
// scan so par's chunk handoff is amortized over several inverse transforms.
const assignMinPerChunk = 4

// disableSpectrumCache is a test hook: when set, KShapeRun recomputes every
// centroid spectrum and refinement each iteration (cache-cold behavior).
// The clustering output must be identical either way — only kernel-counter
// totals may differ.
var disableSpectrumCache bool

// nearestCentroid is the per-series inner loop of the assignment step:
// an ascending scan over the cached centroid queries keeping the first
// strict improvement (ties toward the smaller index, and toward the
// series' current label initJ when nothing improves on +Inf), computing
// each distance in the caller's scratch. capRow, when non-nil, captures
// the full distance row for the run observer.
//
//kshape:hotpath
func nearestCentroid(queries []*dist.SBDQuery, sc *dist.SBDScratch, i, initJ int, capRow []float64) (best float64, bestJ int) {
	best, bestJ = math.Inf(1), initJ
	for j, q := range queries {
		d, _ := q.DistanceScratch(i, sc)
		if capRow != nil {
			capRow[j] = d
		}
		if d < best {
			best, bestJ = d, j
		}
	}
	return best, bestJ
}

// alignMembers shifts each member series data[idxs[t]] into rows[t],
// aligned toward the query's centroid (Algorithm 1's alignment step for one
// cluster). It allocates nothing: the shift search runs in the provided
// scratch and the shifted series land in the preallocated rows.
//
//kshape:hotpath
func alignMembers(q *dist.SBDQuery, sc *dist.SBDScratch, data [][]float64, idxs []int, rows [][]float64) {
	for t, i := range idxs {
		_, shift := q.DistanceScratch(i, sc)
		ts.ShiftInto(rows[t], data[i], shift)
	}
}

// equalFloatBits reports whether a and b are elementwise bit-identical —
// the fixed-point test of the refinement skip (NaN-safe and distinguishing
// ±0, unlike ==).
//
//kshape:hotpath
func equalFloatBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

//kshape:hotpath
func isAllZero(x []float64) bool {
	for _, v := range x {
		//lint:ignore floatcmp exact all-zero test of a degenerate series
		if v != 0 {
			return false
		}
	}
	return true
}

// KShapeDTW is the k-Shape+DTW ablation of Table 3: shape extraction for
// centroids but DTW for assignment, demonstrating that mismatched
// distance/centroid pairs degrade accuracy.
func KShapeDTW(data [][]float64, k int, rng *rand.Rand) (*Result, error) {
	return Lloyd(data, Config{
		K:        k,
		Distance: func(c, x []float64) float64 { return dist.DTW(c, x) },
		Centroid: avg.ShapeExtraction,
		Rand:     rng,
	})
}
