package core

import (
	"math/rand"
	"testing"

	"kshape/internal/dist"
	"kshape/internal/ts"
)

// TestAlignMembersAllocFree pins the refinement inner loop — shift-search
// plus in-place member alignment — at zero allocations: all buffers (the
// cached query, the scratch, and the aligned rows) are provided by the
// caller, so iterating the k-Shape loop does not grow the heap with the
// cluster sizes.
func TestAlignMembersAllocFree(t *testing.T) {
	data, _ := twoClassShiftedData(12, 64, rand.New(rand.NewSource(21)))
	m := len(data[0])
	batch := dist.NewSBDBatch(data)
	centroid := ts.ZNormalize(append([]float64(nil), data[0]...))
	q := batch.Query(centroid)
	sc := batch.Scratch()
	idxs := make([]int, len(data))
	for i := range idxs {
		idxs[i] = i
	}
	rows := ts.NewMatrix(len(data), m)
	if n := testing.AllocsPerRun(50, func() {
		alignMembers(q, sc, data, idxs, rows)
	}); n != 0 {
		t.Errorf("alignMembers allocates %v per run, want 0", n)
	}
}

// TestAssignmentScanAllocFree pins the per-series assignment inner loop
// (nearestCentroid, with and without a distance-cap row) and the
// refinement fixed-point helpers at zero allocations.
func TestAssignmentScanAllocFree(t *testing.T) {
	data, _ := twoClassShiftedData(12, 64, rand.New(rand.NewSource(22)))
	batch := dist.NewSBDBatch(data)
	queries := []*dist.SBDQuery{
		batch.Query(ts.ZNormalize(data[0])),
		batch.Query(ts.ZNormalize(data[1])),
	}
	sc := batch.Scratch()
	capRow := make([]float64, len(queries))
	var d float64
	var j int
	if n := testing.AllocsPerRun(50, func() {
		d, j = nearestCentroid(queries, sc, 0, 0, capRow)
		d, j = nearestCentroid(queries, sc, 1, j, nil)
	}); n != 0 {
		t.Errorf("nearestCentroid allocates %v per run, want 0", n)
	}
	_ = d
	if n := testing.AllocsPerRun(50, func() {
		equalFloatBits(data[0], data[1])
		isAllZero(data[2])
	}); n != 0 {
		t.Errorf("refinement helpers allocate %v per run, want 0", n)
	}
}
