package core

import (
	"math/rand"
	"strconv"
	"testing"

	"kshape/internal/avg"
	"kshape/internal/dist"
	"kshape/internal/obs"
)

// TestKShapeRunPublisherBitIdentical pins the observability contract of
// the progress layer: installing a progress publisher must not change a
// single bit of the clustering — labels, centroids, inertia, the
// iteration trajectory, or kernel-counter totals — at any worker count.
func TestKShapeRunPublisherBitIdentical(t *testing.T) {
	data, _ := twoClassShiftedData(20, 48, rand.New(rand.NewSource(7)))
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	run := func(publish bool, workers int) *runSnapshot {
		if publish {
			pub := obs.NewProgressPublisher()
			prevPub := obs.SetProgressPublisher(pub)
			defer obs.SetProgressPublisher(prevPub)
		}
		snap := &runSnapshot{}
		before := obs.ReadCounters()
		res, err := KShapeRun(data, 3, rand.New(rand.NewSource(11)), KShapeOpts{
			OnIteration: snap.record,
			Workers:     workers,
		})
		if err != nil {
			t.Fatalf("publish=%v workers=%d: %v", publish, workers, err)
		}
		snap.res = *res
		snap.counters = obs.ReadCounters().Sub(before)
		return snap
	}

	want := run(false, 1)
	for _, w := range workerCounts {
		snapshotsEqual(t, want, run(true, w), "publisher-on workers="+strconv.Itoa(w))
		snapshotsEqual(t, want, run(false, w), "publisher-off workers="+strconv.Itoa(w))
	}
}

// TestKShapeRunPublisherOnlyMatchesUnobserved covers the publisher-only
// path (no OnIteration callback): the observer then exists solely to feed
// the publisher, and the clustering output must still match a fully
// unobserved run bit for bit. Kernel counters are exempt — the observer's
// centroid-drift SBDs legitimately add evaluations.
func TestKShapeRunPublisherOnlyMatchesUnobserved(t *testing.T) {
	data, _ := twoClassShiftedData(20, 48, rand.New(rand.NewSource(7)))

	run := func(publish bool, workers int) *Result {
		if publish {
			pub := obs.NewProgressPublisher()
			prevPub := obs.SetProgressPublisher(pub)
			defer obs.SetProgressPublisher(prevPub)
		}
		res, err := KShapeRun(data, 3, rand.New(rand.NewSource(11)), KShapeOpts{Workers: workers})
		if err != nil {
			t.Fatalf("publish=%v workers=%d: %v", publish, workers, err)
		}
		return res
	}

	want := run(false, 1)
	for _, w := range workerCounts {
		got := run(true, w)
		if got.Inertia != want.Inertia || got.Iterations != want.Iterations || got.Converged != want.Converged {
			t.Errorf("workers=%d: inertia/iterations/converged = %v/%d/%v, want %v/%d/%v",
				w, got.Inertia, got.Iterations, got.Converged, want.Inertia, want.Iterations, want.Converged)
		}
		for i := range want.Labels {
			if got.Labels[i] != want.Labels[i] {
				t.Fatalf("workers=%d: label[%d] = %d, want %d", w, i, got.Labels[i], want.Labels[i])
			}
		}
		for j := range want.Centroids {
			for i := range want.Centroids[j] {
				if got.Centroids[j][i] != want.Centroids[j][i] {
					t.Fatalf("workers=%d: centroid[%d][%d] = %v, want %v",
						w, j, i, got.Centroids[j][i], want.Centroids[j][i])
				}
			}
		}
	}
}

// TestLloydPublisherBitIdentical is the same guarantee for the generic
// engine with an ED/mean (k-means) configuration.
func TestLloydPublisherBitIdentical(t *testing.T) {
	data, _ := twoClassShiftedData(25, 32, rand.New(rand.NewSource(3)))

	run := func(publish bool, workers int) *runSnapshot {
		if publish {
			pub := obs.NewProgressPublisher()
			prevPub := obs.SetProgressPublisher(pub)
			defer obs.SetProgressPublisher(prevPub)
		}
		snap := &runSnapshot{}
		res, err := Lloyd(data, Config{
			K:           4,
			Distance:    func(c, x []float64) float64 { return dist.ED(c, x) },
			Centroid:    avg.MeanAverager{}.Average,
			Rand:        rand.New(rand.NewSource(5)),
			OnIteration: snap.record,
			Workers:     workers,
		})
		if err != nil {
			t.Fatalf("publish=%v workers=%d: %v", publish, workers, err)
		}
		snap.res = *res
		return snap
	}

	want := run(false, 1)
	for _, w := range workerCounts {
		snapshotsEqual(t, want, run(true, w), "Lloyd publisher-on workers="+strconv.Itoa(w))
	}
}

// TestKShapeRunPublishedHistoryMatchesTrace checks that what the engines
// publish is exactly the OnIteration trajectory: same iterations, same
// per-cluster drift, same silhouette samples, no extras.
func TestKShapeRunPublishedHistoryMatchesTrace(t *testing.T) {
	data, _ := twoClassShiftedData(20, 48, rand.New(rand.NewSource(7)))
	pub := obs.NewProgressPublisher()
	prevPub := obs.SetProgressPublisher(pub)
	defer obs.SetProgressPublisher(prevPub)

	var trace []obs.IterationStats
	res, err := KShapeRun(data, 3, rand.New(rand.NewSource(11)), KShapeOpts{
		OnIteration: func(st obs.IterationStats) { trace = append(trace, st) },
		Workers:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	history, dropped := pub.History()
	if dropped != 0 || len(history) != len(trace) {
		t.Fatalf("published %d iterations (%d dropped), trace has %d", len(history), dropped, len(trace))
	}
	for i := range trace {
		w, g := trace[i], history[i]
		if g.Iteration != w.Iteration || g.Inertia != w.Inertia || g.LabelChurn != w.LabelChurn ||
			g.InertiaDelta != w.InertiaDelta || g.SilhouetteSample != w.SilhouetteSample {
			t.Errorf("history[%d] = %+v, want %+v", i, g, w)
		}
		if len(g.CentroidDrift) != len(w.CentroidDrift) {
			t.Fatalf("history[%d] drift %v, want %v", i, g.CentroidDrift, w.CentroidDrift)
		}
		for j := range w.CentroidDrift {
			if g.CentroidDrift[j] != w.CentroidDrift[j] {
				t.Errorf("history[%d] drift[%d] = %v, want %v", i, j, g.CentroidDrift[j], w.CentroidDrift[j])
			}
		}
	}
	last := trace[len(trace)-1]
	snap, ok := pub.Snapshot()
	if !ok || snap.Iteration != last.Iteration || snap.Inertia != last.Inertia {
		t.Errorf("final snapshot %+v does not mirror last iteration %+v", snap, last)
	}
	if res.Converged && snap.LabelChurn != 0 {
		t.Errorf("converged run's final churn = %d", snap.LabelChurn)
	}
}

// TestRunObserverSilhouetteRange sanity-checks the sampled silhouette on
// well-separated data: scores must land in [-1, 1] and, once the
// clustering settles, be positive.
func TestRunObserverSilhouetteRange(t *testing.T) {
	data, _ := twoClassShiftedData(20, 48, rand.New(rand.NewSource(7)))
	var trace []obs.IterationStats
	res, err := KShapeRun(data, 2, rand.New(rand.NewSource(11)), KShapeOpts{
		OnIteration: func(st obs.IterationStats) { trace = append(trace, st) },
		Workers:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range trace {
		if st.SilhouetteSample < -1 || st.SilhouetteSample > 1 {
			t.Errorf("iteration %d: silhouette %v out of [-1, 1]", i+1, st.SilhouetteSample)
		}
	}
	if res.Converged {
		final := trace[len(trace)-1].SilhouetteSample
		if final <= 0 {
			t.Errorf("final silhouette %v on separable data; expected > 0", final)
		}
	}
}
