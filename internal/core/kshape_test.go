package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"kshape/internal/avg"
	"kshape/internal/dist"
	"kshape/internal/obs"
	"kshape/internal/ts"
)

// twoClassShiftedData builds a dataset with two shape classes (sine vs
// square-ish pulse), each member randomly shifted and noised — exactly the
// out-of-phase regime k-Shape targets. Returns data and true labels.
func twoClassShiftedData(nPerClass, m int, rng *rand.Rand) ([][]float64, []int) {
	protoA := make([]float64, m)
	protoB := make([]float64, m)
	for i := range protoA {
		protoA[i] = math.Sin(2 * math.Pi * float64(i) / float64(m))
		if i > m/4 && i < m/2 {
			protoB[i] = 1
		}
	}
	var data [][]float64
	var labels []int
	for c, proto := range [][]float64{protoA, protoB} {
		for i := 0; i < nPerClass; i++ {
			s := rng.Intn(9) - 4
			x := ts.Shift(proto, s)
			for j := range x {
				x[j] += 0.15 * rng.NormFloat64()
			}
			data = append(data, ts.ZNormalize(x))
			labels = append(labels, c)
		}
	}
	return data, labels
}

// clusterPurity is the fraction of points whose cluster's majority class
// matches their own class.
func clusterPurity(pred, truth []int, k int) float64 {
	counts := make([]map[int]int, k)
	for i := range counts {
		counts[i] = map[int]int{}
	}
	for i, p := range pred {
		counts[p][truth[i]]++
	}
	correct := 0
	for _, c := range counts {
		best := 0
		for _, v := range c {
			if v > best {
				best = v
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(pred))
}

func TestKShapeSeparatesShapeClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data, truth := twoClassShiftedData(30, 64, rng)
	res, err := KShape(data, 2, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if p := clusterPurity(res.Labels, truth, 2); p < 0.9 {
		t.Errorf("purity = %v, want >= 0.9", p)
	}
	if len(res.Centroids) != 2 || len(res.Centroids[0]) != 64 {
		t.Errorf("centroid shape wrong")
	}
}

func TestKShapeConvergesAndReportsIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data, _ := twoClassShiftedData(20, 32, rng)
	res, err := KShape(data, 2, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("expected convergence on small separable data")
	}
	if res.Iterations < 1 || res.Iterations > DefaultMaxIterations {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestKShapeDeterministicWithInitialLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data, _ := twoClassShiftedData(15, 32, rng)
	init := make([]int, len(data))
	for i := range init {
		init[i] = i % 2
	}
	run := func() *Result {
		res, err := Lloyd(data, Config{
			K:             2,
			Distance:      func(c, x []float64) float64 { return dist.SBDDist(c, x) },
			Centroid:      avg.ShapeExtraction,
			InitialLabels: init,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same initial labels produced different clusterings")
		}
	}
}

func TestLloydValidation(t *testing.T) {
	good := Config{
		K:        1,
		Distance: func(c, x []float64) float64 { return dist.ED(c, x) },
		Centroid: avg.MeanAverager{}.Average,
		Rand:     rand.New(rand.NewSource(1)),
	}
	if _, err := Lloyd(nil, good); !errors.Is(err, ErrNoData) {
		t.Errorf("empty data: %v", err)
	}
	data := [][]float64{{1, 2}, {3, 4}}
	bad := good
	bad.K = 3
	if _, err := Lloyd(data, bad); !errors.Is(err, ErrBadK) {
		t.Errorf("k > n: %v", err)
	}
	bad = good
	bad.K = 0
	if _, err := Lloyd(data, bad); !errors.Is(err, ErrBadK) {
		t.Errorf("k = 0: %v", err)
	}
	bad = good
	bad.Distance = nil
	if _, err := Lloyd(data, bad); err == nil {
		t.Error("nil distance accepted")
	}
	bad = good
	bad.Rand = nil
	if _, err := Lloyd(data, bad); err == nil {
		t.Error("nil rand without initial labels accepted")
	}
	bad = good
	bad.InitialLabels = []int{0}
	if _, err := Lloyd(data, bad); err == nil {
		t.Error("short InitialLabels accepted")
	}
	bad = good
	bad.InitialLabels = []int{0, 5}
	if _, err := Lloyd(data, bad); err == nil {
		t.Error("out-of-range InitialLabels accepted")
	}
	ragged := [][]float64{{1, 2}, {3}}
	if _, err := Lloyd(ragged, good); err == nil {
		t.Error("ragged data accepted")
	}
}

func TestLloydKEqualsN(t *testing.T) {
	data := [][]float64{
		ts.ZNormalize([]float64{1, 2, 3, 4}),
		ts.ZNormalize([]float64{4, 3, 2, 1}),
		ts.ZNormalize([]float64{1, -1, 1, -1}),
	}
	res, err := KShape(data, 3, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Errorf("k=n should produce singleton clusters, got labels %v", res.Labels)
	}
}

func TestLloydSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data, _ := twoClassShiftedData(5, 16, rng)
	res, err := KShape(data, 1, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatalf("labels = %v", res.Labels)
		}
	}
	if !res.Converged {
		t.Error("single cluster should converge immediately")
	}
}

func TestLloydEmptyClusterReseeded(t *testing.T) {
	// Force an initial assignment that starves cluster 2, and verify the
	// engine keeps all clusters non-empty at termination.
	rng := rand.New(rand.NewSource(9))
	data, _ := twoClassShiftedData(10, 32, rng)
	init := make([]int, len(data)) // everything in cluster 0
	res, err := Lloyd(data, Config{
		K:             3,
		Distance:      func(c, x []float64) float64 { return dist.SBDDist(c, x) },
		Centroid:      avg.ShapeExtraction,
		InitialLabels: init,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for _, l := range res.Labels {
		counts[l]++
	}
	for j, c := range counts {
		if c == 0 {
			t.Errorf("cluster %d empty at termination", j)
		}
	}
}

func TestKShapeCentroidsZNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data, _ := twoClassShiftedData(15, 32, rng)
	res, err := KShape(data, 2, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range res.Centroids {
		if !ts.IsZNormalized(c, 1e-6) {
			t.Errorf("centroid %d not z-normalized", j)
		}
	}
}

func TestKShapeInertiaNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data, _ := twoClassShiftedData(10, 32, rng)
	res, err := KShape(data, 2, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia < 0 {
		t.Errorf("inertia = %v", res.Inertia)
	}
}

func TestKShapeDTWRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	data, _ := twoClassShiftedData(8, 24, rng)
	res, err := KShapeDTW(data, 2, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != len(data) {
		t.Errorf("labels length %d", len(res.Labels))
	}
}

func TestLloydMaxIterationsRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	data, _ := twoClassShiftedData(20, 32, rng)
	res, err := Lloyd(data, Config{
		K:             2,
		MaxIterations: 1,
		Distance:      func(c, x []float64) float64 { return dist.SBDDist(c, x) },
		Centroid:      avg.ShapeExtraction,
		Rand:          rand.New(rand.NewSource(17)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", res.Iterations)
	}
}

func TestKShapeSpecializedMatchesGenericLloyd(t *testing.T) {
	// The optimized batched-FFT implementation must reproduce the generic
	// engine exactly for the same initial assignment.
	rng := rand.New(rand.NewSource(20))
	data, _ := twoClassShiftedData(15, 40, rng)
	init := make([]int, len(data))
	for i := range init {
		init[i] = (i * 7) % 3
	}
	generic, err := Lloyd(data, Config{
		K:             3,
		Distance:      func(c, x []float64) float64 { return dist.SBDDist(c, x) },
		Centroid:      avg.ShapeExtraction,
		InitialLabels: init,
	})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := KShapeInit(data, 3, nil, init)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Iterations != generic.Iterations || fast.Converged != generic.Converged {
		t.Errorf("iteration trace differs: fast %d/%v vs generic %d/%v",
			fast.Iterations, fast.Converged, generic.Iterations, generic.Converged)
	}
	for i := range generic.Labels {
		if fast.Labels[i] != generic.Labels[i] {
			t.Fatalf("labels diverge at %d: %d vs %d", i, fast.Labels[i], generic.Labels[i])
		}
	}
	for j := range generic.Centroids {
		for p := range generic.Centroids[j] {
			if math.Abs(fast.Centroids[j][p]-generic.Centroids[j][p]) > 1e-9 {
				t.Fatalf("centroid %d diverges at %d", j, p)
			}
		}
	}
}

func TestKShapeInitValidation(t *testing.T) {
	data := [][]float64{{1, 2, 3}, {3, 2, 1}}
	if _, err := KShapeInit(data, 2, nil, nil); err == nil {
		t.Error("nil rng and nil init accepted")
	}
	if _, err := KShapeInit(data, 2, nil, []int{0}); err == nil {
		t.Error("short init accepted")
	}
	if _, err := KShapeInit(data, 2, nil, []int{0, 5}); err == nil {
		t.Error("out-of-range init accepted")
	}
	if _, err := KShapeInit(nil, 1, nil, nil); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := KShapeInit(data, 9, nil, nil); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := KShapeInit([][]float64{{1, 2}, {1}}, 2, nil, []int{0, 1}); err == nil {
		t.Error("ragged data accepted")
	}
}

// checkTrajectory validates the invariants every OnIteration trajectory
// must satisfy: one callback per executed iteration with 1-based numbering,
// cluster sizes partitioning the input, non-negative phase timings, zero
// churn exactly on the converged final iteration, and (for objectives whose
// refinement step is an exact minimizer, like k-means) non-increasing
// inertia across reseed-free iterations.
func checkTrajectory(t *testing.T, stats []obs.IterationStats, res *Result, n int, wantMonotone bool) {
	t.Helper()
	if len(stats) != res.Iterations {
		t.Fatalf("OnIteration fired %d times, want once per iteration (%d)", len(stats), res.Iterations)
	}
	for i, it := range stats {
		if it.Iteration != i+1 {
			t.Errorf("stats[%d].Iteration = %d, want %d", i, it.Iteration, i+1)
		}
		total := 0
		for _, s := range it.ClusterSizes {
			total += s
		}
		if total != n {
			t.Errorf("iteration %d cluster sizes sum to %d, want %d", it.Iteration, total, n)
		}
		if it.RefineNS < 0 || it.AssignNS < 0 {
			t.Errorf("iteration %d has negative phase time: refine=%d assign=%d", it.Iteration, it.RefineNS, it.AssignNS)
		}
		if wantMonotone && i > 0 && it.Reseeds == 0 {
			prev := stats[i-1].Inertia
			if it.Inertia > prev*(1+1e-9)+1e-12 {
				t.Errorf("inertia increased at iteration %d: %g -> %g", it.Iteration, prev, it.Inertia)
			}
		}
	}
	last := stats[len(stats)-1]
	if res.Converged && last.LabelChurn != 0 {
		t.Errorf("converged run ended with churn %d, want 0", last.LabelChurn)
	}
	if math.Abs(last.Inertia-res.Inertia) > 1e-9*(1+math.Abs(res.Inertia)) {
		t.Errorf("final iteration inertia %g != Result.Inertia %g", last.Inertia, res.Inertia)
	}
}

func TestLloydOnIterationMonotoneInertia(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data, _ := twoClassShiftedData(30, 64, rng)

	var stats []obs.IterationStats
	res, err := Lloyd(data, Config{
		K:        2,
		Distance: dist.ED,
		Centroid: func(members [][]float64, prev []float64) []float64 {
			if len(members) == 0 {
				return prev
			}
			return avg.Mean(members)
		},
		Rand:        rand.New(rand.NewSource(3)),
		OnIteration: func(s obs.IterationStats) { stats = append(stats, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("want a multi-iteration run to observe, got %d iterations", res.Iterations)
	}
	// ED assignment + mean refinement is exact k-means: the sum of squared
	// assignment distances (what IterationStats.Inertia records) must never
	// increase between reseed-free iterations.
	checkTrajectory(t, stats, res, len(data), true)
}

func TestKShapeRunOnIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data, _ := twoClassShiftedData(25, 64, rng)

	var stats []obs.IterationStats
	res, err := KShapeRun(data, 2, rand.New(rand.NewSource(5)), KShapeOpts{
		OnIteration: func(s obs.IterationStats) { stats = append(stats, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shape extraction is not an exact SBD minimizer, so only the structural
	// invariants are asserted, not monotone inertia.
	checkTrajectory(t, stats, res, len(data), false)
}

func TestKShapeRunMaxIterationsLimitsCallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data, _ := twoClassShiftedData(20, 32, rng)

	calls := 0
	res, err := KShapeRun(data, 2, rand.New(rand.NewSource(4)), KShapeOpts{
		MaxIterations: 1,
		OnIteration:   func(obs.IterationStats) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 || calls != 1 {
		t.Errorf("iterations=%d callbacks=%d, want 1 and 1", res.Iterations, calls)
	}
}
