package core

import (
	"math/rand"
	"strconv"
	"testing"

	"kshape/internal/avg"
	"kshape/internal/dist"
	"kshape/internal/obs"
)

// runSnapshot captures everything about a clustering run that must be
// independent of the worker count: the result fields plus the iteration
// trajectory with the wall-clock fields zeroed (RefineNS/AssignNS measure
// time, which legitimately varies run to run).
type runSnapshot struct {
	res      Result
	trace    []obs.IterationStats
	counters obs.Counters
}

func (s *runSnapshot) record(it obs.IterationStats) {
	it.RefineNS, it.AssignNS = 0, 0
	s.trace = append(s.trace, it)
}

func snapshotsEqual(t *testing.T, want, got *runSnapshot, label string) {
	t.Helper()
	if got.res.Iterations != want.res.Iterations || got.res.Converged != want.res.Converged {
		t.Errorf("%s: iterations/converged = %d/%v, want %d/%v",
			label, got.res.Iterations, got.res.Converged, want.res.Iterations, want.res.Converged)
	}
	if got.res.Inertia != want.res.Inertia {
		t.Errorf("%s: inertia = %v, want %v (must be bit-identical)", label, got.res.Inertia, want.res.Inertia)
	}
	for i := range want.res.Labels {
		if got.res.Labels[i] != want.res.Labels[i] {
			t.Fatalf("%s: label[%d] = %d, want %d", label, i, got.res.Labels[i], want.res.Labels[i])
		}
	}
	if len(got.res.Centroids) != len(want.res.Centroids) {
		t.Fatalf("%s: %d centroids, want %d", label, len(got.res.Centroids), len(want.res.Centroids))
	}
	for j := range want.res.Centroids {
		for i := range want.res.Centroids[j] {
			if got.res.Centroids[j][i] != want.res.Centroids[j][i] {
				t.Fatalf("%s: centroid[%d][%d] = %v, want %v (must be bit-identical)",
					label, j, i, got.res.Centroids[j][i], want.res.Centroids[j][i])
			}
		}
	}
	if len(got.trace) != len(want.trace) {
		t.Fatalf("%s: trace has %d iterations, want %d", label, len(got.trace), len(want.trace))
	}
	for i := range want.trace {
		w, g := want.trace[i], got.trace[i]
		if g.Iteration != w.Iteration || g.Inertia != w.Inertia || g.LabelChurn != w.LabelChurn || g.Reseeds != w.Reseeds {
			t.Errorf("%s: trace[%d] = %+v, want %+v", label, i, g, w)
		}
		for j := range w.ClusterSizes {
			if g.ClusterSizes[j] != w.ClusterSizes[j] {
				t.Errorf("%s: trace[%d] cluster sizes %v, want %v", label, i, g.ClusterSizes, w.ClusterSizes)
				break
			}
		}
	}
	if got.counters != want.counters {
		t.Errorf("%s: kernel counters %+v, want %+v (parallel path must not change operation counts)",
			label, got.counters, want.counters)
	}
}

var workerCounts = []int{1, 2, 8}

// TestKShapeRunDeterministicAcrossWorkers is the central guarantee of the
// parallel execution layer: k-Shape produces bit-identical labels,
// centroids, iteration trajectories, and kernel-counter totals for every
// worker count under a fixed seed.
func TestKShapeRunDeterministicAcrossWorkers(t *testing.T) {
	data, _ := twoClassShiftedData(20, 48, rand.New(rand.NewSource(7)))
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	run := func(workers int) *runSnapshot {
		snap := &runSnapshot{}
		before := obs.ReadCounters()
		res, err := KShapeRun(data, 3, rand.New(rand.NewSource(11)), KShapeOpts{
			OnIteration: snap.record,
			Workers:     workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		snap.res = *res
		snap.counters = obs.ReadCounters().Sub(before)
		return snap
	}

	want := run(1)
	for _, w := range workerCounts[1:] {
		snapshotsEqual(t, want, run(w), "k-Shape workers="+strconv.Itoa(w))
	}
}

// TestKShapeSpectrumCacheWarmVsCold pins the correctness contract of the
// spectrum cache: a cache-cold run (every centroid spectrum recomputed and
// every cluster refined each iteration) must produce bit-identical labels,
// centroids, inertia, and iteration trajectory to the cached run, at every
// worker count. Kernel counters are exempt — skipping redundant transforms
// is the whole point — but everything observable in the clustering must
// match.
func TestKShapeSpectrumCacheWarmVsCold(t *testing.T) {
	data, _ := twoClassShiftedData(20, 48, rand.New(rand.NewSource(7)))
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	run := func(cold bool, workers int) *runSnapshot {
		disableSpectrumCache = cold
		defer func() { disableSpectrumCache = false }()
		snap := &runSnapshot{}
		before := obs.ReadCounters()
		res, err := KShapeRun(data, 3, rand.New(rand.NewSource(11)), KShapeOpts{
			OnIteration: snap.record,
			Workers:     workers,
		})
		if err != nil {
			t.Fatalf("cold=%v workers=%d: %v", cold, workers, err)
		}
		snap.res = *res
		snap.counters = obs.ReadCounters().Sub(before)
		return snap
	}

	warm := run(false, 1)
	for _, w := range workerCounts {
		cold := run(true, w)
		// Counter totals legitimately differ between the modes; compare
		// everything else bit for bit.
		cold.counters = warm.counters
		snapshotsEqual(t, warm, cold, "cache-cold workers="+strconv.Itoa(w))

		hot := run(false, w)
		snapshotsEqual(t, warm, hot, "cache-warm workers="+strconv.Itoa(w))
	}
}

// TestKShapeSpectrumCachePartialInvalidation proves the cache actually
// skips work in the partial-invalidation regime — a multi-iteration run in
// which some centroids settle while others still move — by comparing
// forward-transform totals between the cached and cache-cold modes on an
// output-identical run.
func TestKShapeSpectrumCachePartialInvalidation(t *testing.T) {
	// This data/rng seed pair converges in 11 iterations, so most
	// iterations run with a mix of settled and moving centroids.
	data, _ := twoClassShiftedData(20, 48, rand.New(rand.NewSource(1)))
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	run := func(cold bool) (*Result, obs.Counters) {
		disableSpectrumCache = cold
		defer func() { disableSpectrumCache = false }()
		before := obs.ReadCounters()
		res, err := KShapeRun(data, 3, rand.New(rand.NewSource(11)), KShapeOpts{Workers: 1})
		if err != nil {
			t.Fatalf("cold=%v: %v", cold, err)
		}
		return res, obs.ReadCounters().Sub(before)
	}

	warmRes, warmC := run(false)
	coldRes, coldC := run(true)
	if warmRes.Iterations < 3 {
		t.Fatalf("run converged in %d iterations; need >= 3 for a warm cache to matter", warmRes.Iterations)
	}
	if warmRes.Inertia != coldRes.Inertia {
		t.Fatalf("inertia diverged: warm %v, cold %v", warmRes.Inertia, coldRes.Inertia)
	}
	// Cold recomputes one forward transform per centroid per phase per
	// iteration; warm re-transforms only centroids that moved. With
	// settled clusters the totals must drop strictly.
	if warmC.FFT >= coldC.FFT {
		t.Errorf("cached run did %d forward transforms, cold %d; cache produced no savings", warmC.FFT, coldC.FFT)
	}
	if warmC.SBD != coldC.SBD && warmC.SBD > coldC.SBD {
		t.Errorf("cached run did more SBD evaluations (%d) than cold (%d)", warmC.SBD, coldC.SBD)
	}
}

// TestLloydDeterministicAcrossWorkers checks the generic engine with an
// ED/mean configuration (k-means): identical output for every worker count.
func TestLloydDeterministicAcrossWorkers(t *testing.T) {
	data, _ := twoClassShiftedData(25, 32, rand.New(rand.NewSource(3)))

	run := func(workers int) *runSnapshot {
		snap := &runSnapshot{}
		res, err := Lloyd(data, Config{
			K:           4,
			Distance:    func(c, x []float64) float64 { return dist.ED(c, x) },
			Centroid:    avg.MeanAverager{}.Average,
			Rand:        rand.New(rand.NewSource(5)),
			OnIteration: snap.record,
			Workers:     workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		snap.res = *res
		return snap
	}

	want := run(1)
	for _, w := range workerCounts[1:] {
		snapshotsEqual(t, want, run(w), "Lloyd workers="+strconv.Itoa(w))
	}
}

// TestKShapeDefaultWorkersMatchesSerial pins the Workers=0 (NumCPU) path to
// the serial reference as well, since that is the default every caller gets.
func TestKShapeDefaultWorkersMatchesSerial(t *testing.T) {
	data, _ := twoClassShiftedData(15, 40, rand.New(rand.NewSource(9)))
	serial, err := KShapeRun(data, 2, rand.New(rand.NewSource(2)), KShapeOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := KShapeRun(data, 2, rand.New(rand.NewSource(2)), KShapeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Labels {
		if serial.Labels[i] != auto.Labels[i] {
			t.Fatalf("label[%d]: serial %d, default-workers %d", i, serial.Labels[i], auto.Labels[i])
		}
	}
	if serial.Inertia != auto.Inertia {
		t.Fatalf("inertia: serial %v, default-workers %v", serial.Inertia, auto.Inertia)
	}
}
