package core

import (
	"context"
	"log/slog"
	"math"
	"math/rand"

	"kshape/internal/dist"
	"kshape/internal/obs"
	"kshape/internal/ts"
)

// This file holds the engines' per-iteration observation layer: the
// runObserver fuses the OnIteration callback, debug-level structured
// logging, and live progress publication into one hook, and computes the
// quality trajectory (inertia delta, per-cluster centroid drift, sampled
// silhouette) those sinks consume. Everything here is observation only:
// the sampled distances are captured from evaluations the assignment
// step performs anyway, the drift SBDs run on the engine goroutine after
// the iteration's parallel sections, and no observed value feeds back
// into the clustering — so results are bit-identical, at every worker
// count, whether or not an observer is active.

// silhouetteSampleCap bounds the silhouette sample so the per-iteration
// capture stays O(cap·k) regardless of n.
const silhouetteSampleCap = 64

// silhouetteSampleSeed fixes the sample; the sample must not draw from
// the caller's rng (consuming it would change the clustering) and must
// be identical run to run for the trajectory to be comparable.
const silhouetteSampleSeed = 0x5eed5eed

// runObserver computes and fans out per-iteration statistics. A nil
// *runObserver is the disabled state: every method is nil-safe and
// free, preserving the engines' "no bookkeeping unless observed"
// property.
type runObserver struct {
	onIter   func(obs.IterationStats)
	logger   *slog.Logger
	logDebug bool
	publish  bool
	k        int

	prevCentroids [][]float64 // snapshot taken just before refinement
	prevInertia   float64
	seen          bool

	// sampleIdx is the fixed silhouette sample (ascending); capture has
	// one k-wide row per sampled series (nil elsewhere) that the
	// assignment step fills with that iteration's centroid distances.
	sampleIdx []int
	capture   [][]float64
}

// newRunObserver returns the iteration observer for one run, or nil when
// no sink (callback, debug logger, progress publisher) wants iteration
// statistics.
func newRunObserver(n, k int, onIter func(obs.IterationStats), logger *slog.Logger) *runObserver {
	logDebug := logger != nil && logger.Enabled(context.Background(), slog.LevelDebug)
	publish := obs.ActiveProgressPublisher() != nil
	if onIter == nil && !logDebug && !publish {
		return nil
	}
	o := &runObserver{
		onIter: onIter, logger: logger, logDebug: logDebug, publish: publish, k: k,
	}
	if k >= 2 {
		o.sampleIdx = silhouetteSample(n)
		rows := ts.NewMatrix(len(o.sampleIdx), k)
		o.capture = make([][]float64, n)
		for t, i := range o.sampleIdx {
			o.capture[i] = rows[t]
		}
	}
	return o
}

// silhouetteSample picks min(n, silhouetteSampleCap) distinct series
// indices from a fixed seed, in ascending order.
func silhouetteSample(n int) []int {
	if n <= silhouetteSampleCap {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	rng := rand.New(rand.NewSource(silhouetteSampleSeed))
	perm := rng.Perm(n)
	idx := append([]int(nil), perm[:silhouetteSampleCap]...)
	// Insertion sort: the sample is small and ascending order keeps the
	// capture walk cache-friendly and the reported sample stable.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// captureRows exposes the distance-capture matrix to the assignment
// step: row i is non-nil exactly for sampled series, nil otherwise (and
// the whole return is nil when observation is off or k < 2).
func (o *runObserver) captureRows() [][]float64 {
	if o == nil {
		return nil
	}
	return o.capture
}

// beforeRefine snapshots the centroids about to be refined, so observe
// can measure how far each one moved.
func (o *runObserver) beforeRefine(centroids [][]float64) {
	if o == nil {
		return
	}
	if o.prevCentroids == nil {
		o.prevCentroids = ts.NewMatrix(len(centroids), len(centroids[0]))
	}
	for j := range centroids {
		copy(o.prevCentroids[j], centroids[j])
	}
}

// observe assembles one iteration's statistics and fans them out to the
// callback, the debug logger, and the active progress publisher.
func (o *runObserver) observe(iter int, labels, prev []int, assignDist []float64,
	centroids [][]float64, refineNS, assignNS int64, reseeds int) {
	if o == nil {
		return
	}
	st := iterationStats(iter, labels, prev, assignDist, o.k, refineNS, assignNS, reseeds)
	st.CentroidDrift = o.drift(centroids)
	if o.seen {
		st.InertiaDelta = st.Inertia - o.prevInertia
	}
	o.prevInertia, o.seen = st.Inertia, true
	st.SilhouetteSample = o.silhouette(labels, st.ClusterSizes)
	if o.onIter != nil {
		o.onIter(st)
	}
	if o.logDebug {
		o.logger.Debug("refinement iteration", "stats", st)
	}
	if o.publish {
		obs.ProgressPublishIteration(st)
	}
}

// drift measures each centroid's movement across the refinement step as
// an SBD. Iteration 1 starts from zero centroids, which SBD's
// degenerate-input convention maps to a drift of 1 — "moved from
// nothing". The k evaluations run on the engine goroutine after the
// parallel sections, so counter totals stay worker-count independent.
func (o *runObserver) drift(centroids [][]float64) []float64 {
	d := make([]float64, len(centroids))
	for j := range centroids {
		d[j] = dist.SBDDist(o.prevCentroids[j], centroids[j])
	}
	return d
}

// silhouette computes the simplified (centroid-based) silhouette over
// the fixed sample from the captured assignment distances: a is the
// distance to the own centroid, b the minimum distance to any other, and
// each sampled series contributes (b-a)/max(a,b) — 0 when its cluster is
// a singleton, matching internal/eval's convention.
func (o *runObserver) silhouette(labels, sizes []int) float64 {
	if o.k < 2 || len(o.sampleIdx) == 0 {
		return 0
	}
	sum := 0.0
	for _, i := range o.sampleIdx {
		row := o.capture[i]
		own := labels[i]
		if sizes[own] <= 1 {
			continue
		}
		a := row[own]
		b := math.Inf(1)
		for j, d := range row {
			if j != own && d < b {
				b = d
			}
		}
		denom := a
		if b > denom {
			denom = b
		}
		if denom > 0 && !math.IsInf(b, 1) {
			sum += (b - a) / denom
		}
	}
	return sum / float64(len(o.sampleIdx))
}
