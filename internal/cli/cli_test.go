package cli

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"strings"
	"testing"

	"kshape/internal/obs"
)

func newFlagSet() (*flag.FlagSet, *Common) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var c Common
	c.Register(fs)
	c.RegisterListen(fs)
	return fs, &c
}

func TestHandleVersion(t *testing.T) {
	fs, c := newFlagSet()
	if err := fs.Parse([]string{"-version"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if !c.HandleVersion(&buf, "kshape") {
		t.Fatal("-version should request exit")
	}
	out := buf.String()
	if !strings.HasPrefix(out, "kshape ") || !strings.Contains(out, "go1.") {
		t.Errorf("version output = %q", out)
	}

	fs2, c2 := newFlagSet()
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c2.HandleVersion(&buf, "kshape") {
		t.Error("exit requested without -version")
	}
}

func TestLoggerLevelAndFields(t *testing.T) {
	fs, c := newFlagSet()
	if err := fs.Parse([]string{"-log-level", "warn"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	logger, err := c.Logger("knn", &buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("suppressed")
	logger.Warn("shown")
	out := buf.String()
	if strings.Contains(out, "suppressed") {
		t.Error("info record emitted at warn level")
	}
	if !strings.Contains(out, "shown") || !strings.Contains(out, "tool=knn") || !strings.Contains(out, "run_id=") {
		t.Errorf("warn record missing shared fields: %q", out)
	}

	fs3, c3 := newFlagSet()
	if err := fs3.Parse([]string{"-log-level", "nope"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Logger("knn", &buf); err == nil {
		t.Error("bad -log-level accepted")
	}
}

func TestStartTelemetryServesAndRestores(t *testing.T) {
	prev := obs.SetEnabled(false)
	defer obs.SetEnabled(prev)

	fs, c := newFlagSet()
	if err := fs.Parse([]string{"-listen", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	srv, stop, err := c.StartTelemetry(nil)
	if err != nil {
		t.Fatal(err)
	}
	if srv == nil {
		t.Fatal("no server returned for -listen")
	}
	if !obs.Enabled() {
		t.Error("-listen should enable collection")
	}
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "kshape_kernel_ops_total") {
		t.Errorf("/metrics missing counter family: %q", body)
	}
	stop()
	if obs.Enabled() {
		t.Error("stop() must restore the collection switch")
	}

	fs2, c2 := newFlagSet()
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	srv2, stop2, err := c2.StartTelemetry(nil)
	if err != nil || srv2 != nil {
		t.Errorf("no -listen: srv=%v err=%v", srv2, err)
	}
	stop2()
}
