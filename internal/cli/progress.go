package cli

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"time"

	"kshape/internal/obs"
	"kshape/internal/plot"
)

// RegisterProgress installs the live-progress flags, -progress and
// -dashboard, on tools whose runs iterate long enough to watch (kshape,
// kbench).
func (c *Common) RegisterProgress(fs *flag.FlagSet) {
	fs.BoolVar(&c.ShowProgress, "progress", false,
		"render a live one-line progress display (iteration, inertia, churn, drift, ETA) on stderr while the run executes")
	fs.StringVar(&c.DashboardPath, "dashboard", "",
		"write a self-contained HTML run dashboard (convergence curves, phase latencies, execution timeline, counters, build identity) to this file; implies flight recording")
}

// progressLineInterval is the TTY progress line's refresh period.
const progressLineInterval = 200 * time.Millisecond

// StartProgress installs a progress publisher when -progress or
// -dashboard asked for one, making the engines publish per-iteration
// snapshots (served on /progress and /metrics when -listen is also
// given), and starts the TTY progress line when -progress was given. The
// returned stop function (always non-nil, idempotent; call after the
// run) restores the previous publisher and finishes the progress line;
// the collected history stays available for the dashboard writer.
func (c *Common) StartProgress(w io.Writer, logger *slog.Logger) (stop func()) {
	if !c.ShowProgress && c.DashboardPath == "" {
		return func() {}
	}
	pub := obs.NewProgressPublisher()
	c.progress = pub
	prev := obs.SetProgressPublisher(pub)
	if logger != nil {
		logger.Debug("progress publisher installed", "tty_line", c.ShowProgress, "dashboard", c.DashboardPath)
	}
	var stopLine func()
	if c.ShowProgress && w != nil {
		stopLine = startProgressLine(w, pub)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			obs.SetProgressPublisher(prev)
			if stopLine != nil {
				stopLine()
			}
		})
	}
}

// startProgressLine launches the refresher that redraws one carriage-
// returned status line from the publisher's latest snapshot. The
// goroutine only reads published snapshots — never clustering state — so
// determinism is unaffected.
func startProgressLine(w io.Writer, pub *obs.ProgressPublisher) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	//lint:ignore goroutine TTY progress-line refresher lifetime, not data-path fan-out
	go func() {
		defer close(finished)
		t := time.NewTicker(progressLineInterval)
		defer t.Stop()
		wrote := false
		render := func() {
			if p, ok := pub.Snapshot(); ok {
				Emit(w, "\r%-78s", progressLine(p))
				wrote = true
			}
		}
		for {
			select {
			case <-t.C:
				render()
			case <-done:
				render()
				if wrote {
					Emit(w, "\n")
				}
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// progressLine formats one snapshot as a single status line.
func progressLine(p obs.Progress) string {
	switch p.Phase {
	case obs.ProgressPhaseInit:
		return fmt.Sprintf("%s starting: %d series, k=%d", p.Method, p.Series, p.K)
	case obs.ProgressPhaseDone:
		outcome := "stopped at iteration cap"
		if p.Converged {
			outcome = "converged"
		}
		return fmt.Sprintf("%s %s: %d iterations, inertia %.6g", p.Method, outcome, p.Iteration, p.Inertia)
	}
	line := fmt.Sprintf("%s iter %d/%d  inertia %.6g (%+.3g)  churn %d  drift %.3f  sil %.3f",
		p.Method, p.Iteration, p.MaxIterations, p.Inertia, p.InertiaDelta,
		p.LabelChurn, p.DriftMax, p.SilhouetteSample)
	switch {
	case p.Stalled:
		line += "  [stalled]"
	case p.Oscillating:
		line += "  [oscillating]"
	case p.ETAIterations > 0:
		line += fmt.Sprintf("  eta %d", p.ETAIterations)
	}
	return line
}

// writeDashboard renders the single-file HTML dashboard from the flight
// report (phases, timeline, counters, build identity) and the progress
// publisher's iteration history (convergence curves), with checked
// writes.
func (c *Common) writeDashboard(tool string, rep obs.RunReport) error {
	workers, spans := TimelineSpans(rep)
	d := plot.DashboardData{
		Title:    fmt.Sprintf("%s run %s", tool, rep.RunID),
		Tool:     tool,
		RunID:    rep.RunID,
		WallNS:   rep.WallNS,
		Workers:  workers,
		Phases:   rep.Phases,
		Counters: rep.Counters,
		Timeline: spans, TimelineWorkers: workers,
		Build: rep.Build,
	}
	if c.progress != nil {
		if snap, ok := c.progress.Snapshot(); ok {
			d.Method = snap.Method
			d.Converged = snap.Converged
		}
		d.Iterations, _ = c.progress.History()
	}
	page := plot.Dashboard(d)
	f, err := os.Create(c.DashboardPath)
	if err != nil {
		return err
	}
	if _, err := f.Write(page); err != nil {
		_ = f.Close() // surface the write error, not the close error
		return err
	}
	return f.Close()
}
