// Package cli holds the flag plumbing shared by the four command-line
// tools (kshape, kbench, knn, datagen): the -version flag, the
// -log-level/-log-json structured-logging flags, and the -listen
// telemetry endpoint. Keeping it in one place guarantees every binary
// exposes the same observability surface with the same semantics.
package cli

import (
	"flag"
	"fmt"
	"io"
	"log/slog"

	"kshape/internal/obs"
)

// Common carries the flag values shared by every CLI. Register the
// subset a tool needs, call Parse on the FlagSet, then consult the
// fields.
type Common struct {
	// ShowVersion is set by -version: print build information and exit.
	ShowVersion bool
	// LogLevel is the -log-level value (debug, info, warn, error).
	LogLevel string
	// LogJSON switches log output from human-readable text to JSON lines.
	LogJSON bool
	// Listen is the -listen address (e.g. ":9090"); empty means no
	// telemetry server. Only present on tools that call RegisterListen.
	Listen string
	// ReportPath is the -report value: write a kshape.runreport/v1 JSON
	// flight-recorder report there after the run. Only present on tools
	// that call RegisterReport.
	ReportPath string
	// TimelinePath is the -timeline value: render the run's execution
	// timeline (workers × time SVG) there after the run.
	TimelinePath string
	// DashboardPath is the -dashboard value: write a self-contained HTML
	// run dashboard there after the run. Only present on tools that call
	// RegisterProgress.
	DashboardPath string
	// ShowProgress is set by -progress: render a live TTY progress line
	// while the run executes.
	ShowProgress bool

	// runID correlates this invocation's log records and run report; it is
	// generated on first use (Logger or StartReport).
	runID string
	// progress is the publisher StartProgress installed; it outlives the
	// run so the dashboard writer can read the iteration history.
	progress *obs.ProgressPublisher
}

// RunID returns the invocation's correlation ID, generating it on first
// call so the logger and the run report agree on one value.
func (c *Common) RunID() string {
	if c.runID == "" {
		c.runID = obs.NewRunID()
	}
	return c.runID
}

// Register installs the flags every tool shares: -version, -log-level,
// and -log-json.
func (c *Common) Register(fs *flag.FlagSet) {
	fs.BoolVar(&c.ShowVersion, "version", false, "print version and build information, then exit")
	fs.StringVar(&c.LogLevel, "log-level", "info", "structured log level: debug, info, warn, error")
	fs.BoolVar(&c.LogJSON, "log-json", false, "emit structured logs as JSON lines instead of text")
}

// RegisterListen additionally installs -listen for the long-running
// tools (kshape, kbench) that can serve live telemetry.
func (c *Common) RegisterListen(fs *flag.FlagSet) {
	fs.StringVar(&c.Listen, "listen", "",
		"serve telemetry on this address while the run executes: /metrics (Prometheus), /healthz, /debug/vars, /debug/pprof; implies metric collection")
}

// HandleVersion prints build information to w when -version was given
// and reports whether the caller should exit.
func (c *Common) HandleVersion(w io.Writer, tool string) bool {
	if !c.ShowVersion {
		return false
	}
	Emit(w, "%s %s\n", tool, obs.Version())
	return true
}

// Emit renders user-facing terminal output. A failed write to the user's
// console (closed pipe, detached terminal) has no recovery path in a
// CLI, so the error is deliberately dropped here — this helper is the
// one sanctioned funnel for that. Output that can land in a file
// (reports, CSV results, profiles) must check its write errors instead;
// the errdrop analyzer enforces the split.
func Emit(w io.Writer, format string, args ...any) {
	//lint:ignore errdrop terminal-output funnel; console write failures are unactionable
	fmt.Fprintf(w, format, args...)
}

// Logger builds the tool's structured logger from the -log-level and
// -log-json flags, pre-bound with the shared schema fields (tool name
// and a fresh run_id correlating all records of this invocation).
func (c *Common) Logger(tool string, w io.Writer) (*slog.Logger, error) {
	base, err := obs.NewLogger(w, c.LogLevel, c.LogJSON)
	if err != nil {
		return nil, err
	}
	bi := obs.BuildInfo()
	logger := base.With("tool", tool, "run_id", c.RunID())
	// Surface build identity once at startup (debug level keeps the
	// default output unchanged) so any log stream can be tied back to the
	// exact binary that produced it.
	logger.Debug("build", "version", bi["version"], "revision", bi["revision"], "go", bi["go"])
	return logger, nil
}

// StartTelemetry starts the -listen telemetry server, if requested, and
// enables metric collection so the scrape surface has data. It returns
// the server (nil when -listen was not given) and a shutdown function
// (always non-nil) that restores the collection switch and closes the
// server.
func (c *Common) StartTelemetry(logger *slog.Logger) (*obs.TelemetryServer, func(), error) {
	if c.Listen == "" {
		return nil, func() {}, nil
	}
	srv, err := obs.ServeTelemetry(c.Listen)
	if err != nil {
		return nil, nil, fmt.Errorf("listen: %w", err)
	}
	prev := obs.SetEnabled(true)
	if logger != nil {
		logger.Info("telemetry server listening", "addr", srv.Addr(), "metrics_url", srv.URL()+"/metrics")
	}
	return srv, func() {
		obs.SetEnabled(prev)
		if err := srv.Close(); err != nil && logger != nil {
			logger.Warn("telemetry server shutdown", "error", err)
		}
	}, nil
}
