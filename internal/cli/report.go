package cli

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"

	"kshape/internal/obs"
	"kshape/internal/plot"
)

// RegisterReport installs the flight-recorder flags, -report and
// -timeline, on tools that support per-run reports (kshape, kbench, knn).
func (c *Common) RegisterReport(fs *flag.FlagSet) {
	fs.StringVar(&c.ReportPath, "report", "",
		"write a self-contained JSON run report ("+obs.RunReportSchema+") to this file: phase histograms, per-worker busy/wait attribution, runtime samples, and the event timeline")
	fs.StringVar(&c.TimelinePath, "timeline", "",
		"render the run's execution timeline (workers × time SVG) to this file; implies flight recording")
}

// StartReport arms the flight recorder when -report, -timeline, or
// -dashboard was given: it installs a fresh recorder, enables metric
// collection (so the phase histograms and kernel counters populate), and
// starts the background runtime sampler. The returned finish function
// stops the sampler, restores the previous recorder and collection
// state, and writes the requested artifacts; call it exactly once, after
// the measured work completes (and after StartProgress's stop, so the
// dashboard sees the full iteration history). With none of the flags set
// both the setup and the finish are no-ops.
func (c *Common) StartReport(tool string, args []string, logger *slog.Logger) (finish func() error) {
	if c.ReportPath == "" && c.TimelinePath == "" && c.DashboardPath == "" {
		return func() error { return nil }
	}
	rec := obs.NewRecorder(0)
	prevRec := obs.SetRecorder(rec)
	prevEnabled := obs.SetEnabled(true)
	before := obs.ReadCounters()
	stopSampler := rec.StartSampler(0)
	if logger != nil {
		logger.Debug("flight recorder armed", "report", c.ReportPath, "timeline", c.TimelinePath)
	}
	return func() error {
		obs.SetRecorder(prevRec)
		stopSampler()
		obs.SetEnabled(prevEnabled)
		delta := obs.ReadCounters().Sub(before)
		rep := rec.Report(tool, c.RunID(), args, delta)
		if c.ReportPath != "" {
			if err := writeReport(c.ReportPath, rep); err != nil {
				return fmt.Errorf("run report: %w", err)
			}
			if logger != nil {
				logger.Info("run report written", "path", c.ReportPath,
					"events", len(rep.Events), "workers", len(rep.Workers),
					"runtime_samples", len(rep.RuntimeSamples))
			}
		}
		if c.TimelinePath != "" {
			if err := writeTimeline(c.TimelinePath, tool, rep); err != nil {
				return fmt.Errorf("timeline: %w", err)
			}
			if logger != nil {
				logger.Info("timeline written", "path", c.TimelinePath)
			}
		}
		if c.DashboardPath != "" {
			if err := c.writeDashboard(tool, rep); err != nil {
				return fmt.Errorf("dashboard: %w", err)
			}
			if logger != nil {
				logger.Info("dashboard written", "path", c.DashboardPath)
			}
		}
		return nil
	}
}

// writeReport writes the JSON run report with checked writes.
func writeReport(path string, rep obs.RunReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		_ = f.Close() // surface the write error, not the close error
		return err
	}
	return f.Close()
}

// writeTimeline renders the run report's event window as an SVG Gantt
// chart and writes it with checked writes.
func writeTimeline(path, tool string, rep obs.RunReport) error {
	workers, spans := TimelineSpans(rep)
	title := fmt.Sprintf("%s run %s — %d workers", tool, rep.RunID, workers)
	svg := plot.Timeline(title, workers, rep.WallNS, spans)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(svg); err != nil {
		_ = f.Close() // surface the write error, not the close error
		return err
	}
	return f.Close()
}

// phaseInterval is one completed phase span on the recorder clock.
type phaseInterval struct {
	name       string
	start, end int64
}

// TimelineSpans converts a run report's event window into timeline spans:
// phase spans land in the phase lane (worker -1) and chunk events in
// their worker's lane, colored by the innermost phase whose interval
// contains the chunk's midpoint — chunks don't know their phase (the
// pool is phase-agnostic), so attribution is temporal. Chunks outside
// any recorded phase fall back to the "pool" color.
func TimelineSpans(rep obs.RunReport) (workers int, spans []plot.TimelineSpan) {
	var phases []phaseInterval
	for _, e := range rep.Events {
		if e.Kind == obs.EventPhaseExit.String() && e.Phase != "" {
			phases = append(phases, phaseInterval{e.Phase, e.AtNS - e.DurNS, e.AtNS})
		}
	}
	// Sorting by width lets the containment scan stop at the first
	// (narrowest) match: the innermost enclosing phase.
	sort.SliceStable(phases, func(i, j int) bool {
		return phases[i].end-phases[i].start < phases[j].end-phases[j].start
	})
	workers = 1
	for _, e := range rep.Events {
		switch e.Kind {
		case obs.EventPhaseExit.String():
			spans = append(spans, plot.TimelineSpan{
				Worker: -1, Phase: e.Phase, StartNS: e.AtNS - e.DurNS, DurNS: e.DurNS,
			})
		case obs.EventChunk.String():
			if e.Worker+1 > workers {
				workers = e.Worker + 1
			}
			mid := e.AtNS + e.DurNS/2
			name := "pool"
			for _, p := range phases {
				if mid >= p.start && mid <= p.end {
					name = p.name
					break
				}
			}
			spans = append(spans, plot.TimelineSpan{
				Worker: e.Worker, Phase: name, StartNS: e.AtNS, DurNS: e.DurNS,
			})
		}
	}
	return workers, spans
}
