// Package avg implements the time-series averaging techniques surveyed in
// Section 2.5 of the k-Shape paper — arithmetic mean, NLAAF, PSA, DBA, and
// the KSC spectral centroid — plus the paper's own contribution, shape
// extraction (Section 3.2, Algorithm 2), which computes the centroid as the
// dominant eigenvector of a centered Gram matrix of SBD-aligned sequences.
package avg

import "kshape/internal/ts"

// Averager produces a representative (centroid) sequence for a cluster of
// equal-length series. ref is the previous centroid, used by methods that
// align members toward a reference before averaging (shape extraction, DBA
// initialization); implementations must tolerate a nil or all-zero ref.
type Averager interface {
	// Name returns the identifier used in experiment tables.
	Name() string
	// Average returns the centroid of cluster. The returned slice is fresh
	// (not aliased to any input).
	Average(cluster [][]float64, ref []float64) []float64
}

// Mean computes the coordinate-wise arithmetic mean of the cluster — the
// k-means centroid under Euclidean distance (Section 2.1, "arithmetic mean
// property"). It returns a zero series of length len(ref) for an empty
// cluster (or nil if ref is also nil).
func Mean(cluster [][]float64) []float64 {
	if len(cluster) == 0 {
		return nil
	}
	m := len(cluster[0])
	out := make([]float64, m)
	for _, x := range cluster {
		for i, v := range x {
			out[i] += v
		}
	}
	inv := 1.0 / float64(len(cluster))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// MeanAverager is the Averager wrapping Mean (used by k-AVG variants).
type MeanAverager struct{}

// Name implements Averager.
func (MeanAverager) Name() string { return "Mean" }

// Average implements Averager.
func (MeanAverager) Average(cluster [][]float64, ref []float64) []float64 {
	out := Mean(cluster)
	if out == nil && ref != nil {
		out = make([]float64, len(ref))
	}
	return out
}

// zNormOrZero z-normalizes x, mapping degenerate inputs to zeros.
func zNormOrZero(x []float64) []float64 { return ts.ZNormalize(x) }
