package avg

import (
	"math"

	"kshape/internal/linalg"
	"kshape/internal/ts"
)

// KSCDistance computes the K-Spectral Centroid distance of Yang & Leskovec
// (referenced as KSC in Sections 2.4-2.5 of the k-Shape paper):
//
//	d(x, y) = min_{α, q} ‖x − α·y(q)‖ / ‖x‖
//
// minimizing jointly over an amplitude coefficient α (closed form per shift)
// and an integer shift q of y. The shift search is exhaustive over
// q ∈ [−m+1, m−1] — the measure has no FFT shortcut because the optimal α
// changes with the shift, which is exactly why KSC is orders of magnitude
// slower than SBD in Table 3.
//
// It returns the distance and the aligned, optimally scaled copy of y.
func KSCDistance(x, y []float64) (float64, []float64) {
	m := len(x)
	if m == 0 {
		return 0, nil
	}
	nx := ts.Norm(x)
	//lint:ignore floatcmp exact zero-norm guard before dividing by it
	if nx == 0 {
		// Degenerate query: define the distance as 1 (full residual), with y
		// unshifted, mirroring the SBD degenerate-input convention.
		return 1, append([]float64(nil), y...)
	}
	best := math.Inf(1)
	bestShift := 0
	bestAlpha := 0.0
	for q := -(m - 1); q <= m-1; q++ {
		shifted := ts.Shift(y, q)
		den := ts.Dot(shifted, shifted)
		var alpha float64
		if den > 0 {
			alpha = ts.Dot(x, shifted) / den
		}
		ss := 0.0
		for i := range x {
			d := x[i] - alpha*shifted[i]
			ss += d * d
		}
		if d := math.Sqrt(ss) / nx; d < best {
			best, bestShift, bestAlpha = d, q, alpha
		}
	}
	aligned := ts.Shift(y, bestShift)
	for i := range aligned {
		aligned[i] *= bestAlpha
	}
	return best, aligned
}

// KSCCentroid computes the KSC cluster centroid: after aligning and scaling
// every member toward ref, the centroid is the minimizer of
//
//	Σ_i ‖x_i − α_i μ‖² / ‖x_i‖²
//
// which reduces to the eigenvector of the smallest eigenvalue of
// M = Σ_i (I − x̂_i·x̂_iᵀ) for unit-normalized aligned members x̂_i
// (the matrix-decomposition centroid of Section 2.5). The result is
// sign-corrected and z-normalized for use alongside the other centroids.
func KSCCentroid(cluster [][]float64, ref []float64) []float64 {
	if len(cluster) == 0 {
		if ref == nil {
			return nil
		}
		return make([]float64, len(ref))
	}
	m := len(cluster[0])
	refIsZero := ref == nil || isAllZero(ref)
	msum := linalg.NewSym(m)
	// M = n·I − Σ x̂ x̂ᵀ
	gram := linalg.NewSym(m)
	n := 0
	for _, x := range cluster {
		var a []float64
		if refIsZero {
			a = x
		} else {
			_, a = KSCDistance(ref, x)
		}
		nrm := ts.Norm(a)
		//lint:ignore floatcmp exact zero-norm guard before dividing by it
		if nrm == 0 {
			continue
		}
		unit := make([]float64, m)
		for i, v := range a {
			unit[i] = v / nrm
		}
		gram.GramAddOuter(unit)
		n++
	}
	if n == 0 {
		return make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			v := -gram.At(i, j)
			if i == j {
				v += float64(n)
			}
			msum.Data[i*m+j] = v
		}
	}
	_, v := linalg.SmallestEigen(msum)
	cen := ts.ZNormalize(v)
	// Sign correction: the centroid should correlate positively with the
	// cluster sum.
	total := make([]float64, m)
	for _, x := range cluster {
		for i, xv := range x {
			total[i] += xv
		}
	}
	if ts.Dot(cen, total) < 0 {
		for i := range cen {
			cen[i] = -cen[i]
		}
	}
	return cen
}

// KSCAverager is the Averager wrapping KSCCentroid.
type KSCAverager struct{}

// Name implements Averager.
func (KSCAverager) Name() string { return "KSC" }

// Average implements Averager.
func (KSCAverager) Average(cluster [][]float64, ref []float64) []float64 {
	return KSCCentroid(cluster, ref)
}
