package avg

import "kshape/internal/dist"

// NLAAF computes the Nonlinear Alignment and Averaging Filters average
// (Gupta et al., Section 2.5): sequences are averaged pairwise — each pair
// is DTW-aligned and the warped coordinates averaged — and the procedure is
// applied tournament-style until a single sequence remains. Averages of
// averages weight each member equally at every round, which is the method's
// known bias (and why DBA superseded it).
//
// The result is resampled back to the common length m by uniform linear
// interpolation, since pairwise DTW averaging yields paths longer than m.
func NLAAF(cluster [][]float64, window int) []float64 {
	if len(cluster) == 0 {
		return nil
	}
	level := make([][]float64, len(cluster))
	for i, x := range cluster {
		level[i] = append([]float64(nil), x...)
	}
	m := len(cluster[0])
	for len(level) > 1 {
		next := make([][]float64, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, pairAverageDTW(level[i], level[i+1], window, m))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// pairAverageDTW warps y onto x, averages the coupled coordinates along the
// warping path, and resamples the path-length average back to length m.
func pairAverageDTW(x, y []float64, window, m int) []float64 {
	path, _ := dist.WarpingPath(x, y, window)
	avg := make([]float64, len(path))
	for k, p := range path {
		avg[k] = (x[p[0]] + y[p[1]]) / 2
	}
	return resample(avg, m)
}

// resample linearly interpolates x onto n uniformly spaced points.
func resample(x []float64, n int) []float64 {
	if len(x) == 0 || n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if len(x) == 1 {
		for i := range out {
			out[i] = x[0]
		}
		return out
	}
	if n == 1 {
		out[0] = x[0]
		return out
	}
	scale := float64(len(x)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		pos := float64(i) * scale
		lo := int(pos)
		if lo >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = x[lo]*(1-frac) + x[lo+1]*frac
	}
	return out
}

// NLAAFAverager is the Averager wrapping NLAAF.
type NLAAFAverager struct {
	Window int
}

// Name implements Averager.
func (NLAAFAverager) Name() string { return "NLAAF" }

// Average implements Averager.
func (a NLAAFAverager) Average(cluster [][]float64, ref []float64) []float64 {
	out := NLAAF(cluster, a.Window)
	if out == nil && ref != nil {
		out = make([]float64, len(ref))
	}
	return out
}
