package avg

import (
	"kshape/internal/dist"
	"kshape/internal/linalg"
	"kshape/internal/obs"
	"kshape/internal/ts"
)

// ShapeExtraction computes the shape-based centroid of Algorithm 2:
//
//  1. align every series toward the reference ref with SBD;
//  2. form S = X′ᵀ·X′ over the aligned series;
//  3. project with Q = I − (1/m)·11ᵀ: M = Qᵀ·S·Q;
//  4. return the dominant eigenvector of M (the Rayleigh-quotient maximizer
//     of Equation 15), sign-corrected and z-normalized.
//
// When ref is nil or all zeros (the first k-Shape iteration), alignment is
// skipped (every series is its own alignment), matching the reference
// implementation's behaviour of aligning against a zero vector.
//
// The eigenvector's sign is ambiguous; we pick the orientation whose summed
// squared Euclidean distance to the aligned members is smaller, so the
// centroid correlates positively with the cluster.
func ShapeExtraction(cluster [][]float64, ref []float64) []float64 {
	if len(cluster) == 0 {
		if ref == nil {
			return nil
		}
		return make([]float64, len(ref))
	}
	refIsZero := ref == nil || isAllZero(ref)
	aligned := make([][]float64, len(cluster))
	for i, x := range cluster {
		if refIsZero {
			aligned[i] = x
		} else {
			_, a := dist.SBD(ref, x)
			aligned[i] = a
		}
	}
	return ShapeExtractionAligned(aligned)
}

// ShapeExtractionAligned is ShapeExtraction for members that are already
// aligned to a common reference (steps 2-4 of Algorithm 2). k-Shape's
// optimized inner loop uses it with batched-FFT alignment.
func ShapeExtractionAligned(aligned [][]float64) []float64 {
	if len(aligned) == 0 {
		return nil
	}
	defer obs.StartPhase(obs.PhaseShapeExtract)()
	obs.Inc(obs.CounterShapeExtractions)
	m := len(aligned[0])
	s := linalg.NewSym(m)
	for _, a := range aligned {
		// Z-normalize aligned members before the Gram accumulation: shifting
		// introduces zero padding that perturbs mean and variance, and
		// Equation 14 assumes z-normalized x_i.
		s.GramAddOuter(ts.ZNormalize(a))
	}
	s.CenterProject()
	_, v := linalg.DominantEigen(s)
	// Resolve the sign ambiguity: compare sum of squared distances of ±v
	// (z-normalized) to the aligned members.
	cen := ts.ZNormalize(v)
	neg := make([]float64, m)
	for i, x := range cen {
		neg[i] = -x
	}
	if sumSqED(aligned, neg) < sumSqED(aligned, cen) {
		cen = neg
	}
	return cen
}

func sumSqED(cluster [][]float64, c []float64) float64 {
	total := 0.0
	for _, x := range cluster {
		total += dist.SquaredED(ts.ZNormalize(x), c)
	}
	return total
}

func isAllZero(x []float64) bool {
	for _, v := range x {
		//lint:ignore floatcmp exact all-zero test of a degenerate centroid
		if v != 0 {
			return false
		}
	}
	return true
}

// ShapeAverager is the Averager wrapping ShapeExtraction (used by k-Shape).
type ShapeAverager struct{}

// Name implements Averager.
func (ShapeAverager) Name() string { return "ShapeExtraction" }

// Average implements Averager.
func (ShapeAverager) Average(cluster [][]float64, ref []float64) []float64 {
	return ShapeExtraction(cluster, ref)
}
