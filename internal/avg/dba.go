package avg

import (
	"math"

	"kshape/internal/dist"
	"kshape/internal/par"
)

// DBAIterations is the number of barycenter refinement passes per Average
// call. The original DBA paper iterates to convergence; in the k-means
// context one refinement per clustering iteration suffices (the paper's
// experimental setup refines centroids "once" per run, Section 4).
const DBAIterations = 1

// DBA computes the DTW Barycenter Average of a cluster (Petitjean et al.,
// referenced as the most robust DTW averaging method in Section 2.5).
// Starting from init (or the cluster medoid-ish first member when init is
// nil/zero), each pass warps every member onto the current average with DTW
// and re-estimates every coordinate as the barycenter of all member points
// mapped to it.
//
// window is the Sakoe-Chiba half-width for the alignments (negative =
// unconstrained), letting k-DBA use the same constraint as its assignment
// step.
func DBA(cluster [][]float64, init []float64, iterations, window int) []float64 {
	return DBAWorkers(cluster, init, iterations, window, 1)
}

// DBAWorkers is DBA with an explicit degree of parallelism for the
// per-member alignment pass (par.Resolve semantics: <= 0 means
// runtime.NumCPU(), 1 means serial). The warping paths — the expensive
// O(m²) part — are computed in parallel, one slot per member, and the
// barycenter accumulation then runs serially in member order, so the
// average is bit-for-bit identical for every worker count.
func DBAWorkers(cluster [][]float64, init []float64, iterations, window, workers int) []float64 {
	if len(cluster) == 0 {
		if init == nil {
			return nil
		}
		return append([]float64(nil), init...)
	}
	m := len(cluster[0])
	avg := make([]float64, m)
	if init == nil || isAllZero(init) {
		copy(avg, cluster[0])
	} else {
		copy(avg, init)
	}
	if iterations < 1 {
		iterations = 1
	}
	sum := make([]float64, m)
	count := make([]float64, m)
	paths := make([][][2]int, len(cluster))
	for it := 0; it < iterations; it++ {
		for i := range sum {
			sum[i] = 0
			count[i] = 0
		}
		par.For(workers, len(cluster), func(i int) {
			paths[i], _ = dist.WarpingPath(avg, cluster[i], window)
		})
		for ci, x := range cluster {
			for _, p := range paths[ci] {
				sum[p[0]] += x[p[1]]
				count[p[0]]++
			}
		}
		changed := false
		for i := range avg {
			//lint:ignore floatcmp empty-bin guard; the tally is an exact integer-valued count
			if count[i] == 0 {
				continue // keep previous coordinate (cannot happen with a valid path)
			}
			next := sum[i] / count[i]
			if math.Abs(next-avg[i]) > 1e-12 {
				changed = true
			}
			avg[i] = next
		}
		if !changed {
			break
		}
	}
	return avg
}

// DBAAverager is the Averager wrapping DBA (used by k-DBA). Window is the
// Sakoe-Chiba half-width (negative for unconstrained DTW, the k-DBA
// default); Iterations is the refinement count per call; Workers bounds
// the parallelism of the alignment pass (0 keeps it serial, which is the
// right choice inside the engine's already-parallel refinement step).
type DBAAverager struct {
	Window     int
	Iterations int
	Workers    int
}

// Name implements Averager.
func (DBAAverager) Name() string { return "DBA" }

// Average implements Averager.
func (a DBAAverager) Average(cluster [][]float64, ref []float64) []float64 {
	iters := a.Iterations
	if iters == 0 {
		iters = DBAIterations
	}
	workers := a.Workers
	if workers == 0 {
		workers = 1
	}
	return DBAWorkers(cluster, ref, iters, a.Window, workers)
}
