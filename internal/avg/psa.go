package avg

import "kshape/internal/dist"

// PSA computes the Prioritized Shape Averaging average (Niennattrakul &
// Ratanamahatana, Section 2.5). Like NLAAF it averages hierarchically under
// DTW, but each intermediate average carries a weight equal to the number of
// original sequences it summarizes, and coupled coordinates are combined as
// the weighted center — removing NLAAF's equal-weight bias.
//
// The full PSA builds the merge order from a hierarchical clustering of the
// members; we use the same deterministic sequential pairing as our NLAAF so
// the two methods differ only in the weighting, which is the property the
// survey in Section 2.5 attributes to PSA.
func PSA(cluster [][]float64, window int) []float64 {
	if len(cluster) == 0 {
		return nil
	}
	m := len(cluster[0])
	type weighted struct {
		seq []float64
		w   float64
	}
	level := make([]weighted, len(cluster))
	for i, x := range cluster {
		level[i] = weighted{seq: append([]float64(nil), x...), w: 1}
	}
	for len(level) > 1 {
		next := make([]weighted, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			a, b := level[i], level[i+1]
			path, _ := dist.WarpingPath(a.seq, b.seq, window)
			avgPath := make([]float64, len(path))
			for k, p := range path {
				avgPath[k] = (a.w*a.seq[p[0]] + b.w*b.seq[p[1]]) / (a.w + b.w)
			}
			next = append(next, weighted{seq: resample(avgPath, m), w: a.w + b.w})
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0].seq
}

// PSAAverager is the Averager wrapping PSA.
type PSAAverager struct {
	Window int
}

// Name implements Averager.
func (PSAAverager) Name() string { return "PSA" }

// Average implements Averager.
func (a PSAAverager) Average(cluster [][]float64, ref []float64) []float64 {
	out := PSA(cluster, a.Window)
	if out == nil && ref != nil {
		out = make([]float64, len(ref))
	}
	return out
}
