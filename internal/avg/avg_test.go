package avg

import (
	"math"
	"math/rand"
	"testing"

	"kshape/internal/dist"
	"kshape/internal/ts"
)

func randCluster(n, m int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, m)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64()
		}
	}
	return out
}

// sineCluster builds n noisy, randomly shifted copies of a sine prototype —
// the "similar but out of phase" regime that shape extraction targets.
func sineCluster(n, m int, maxShift int, noise float64, rng *rand.Rand) ([][]float64, []float64) {
	proto := make([]float64, m)
	for i := range proto {
		proto[i] = math.Sin(4 * math.Pi * float64(i) / float64(m))
	}
	out := make([][]float64, n)
	for i := range out {
		s := rng.Intn(2*maxShift+1) - maxShift
		x := ts.Shift(proto, s)
		for j := range x {
			x[j] += noise * rng.NormFloat64()
		}
		out[i] = ts.ZNormalize(x)
	}
	return out, ts.ZNormalize(proto)
}

func TestMean(t *testing.T) {
	c := [][]float64{{1, 2}, {3, 4}}
	got := Mean(c)
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("Mean = %v", got)
	}
	if Mean(nil) != nil {
		t.Error("Mean of empty should be nil")
	}
}

func TestMeanAveragerEmptyClusterUsesRefLength(t *testing.T) {
	out := MeanAverager{}.Average(nil, make([]float64, 5))
	if len(out) != 5 {
		t.Errorf("len = %d, want 5", len(out))
	}
}

func TestMeanMinimizesSquaredED(t *testing.T) {
	// The arithmetic mean is the Steiner point under ED (Section 2.1).
	rng := rand.New(rand.NewSource(1))
	c := randCluster(10, 8, rng)
	mean := Mean(c)
	obj := func(w []float64) float64 {
		s := 0.0
		for _, x := range c {
			s += dist.SquaredED(w, x)
		}
		return s
	}
	base := obj(mean)
	for trial := 0; trial < 20; trial++ {
		w := append([]float64(nil), mean...)
		w[rng.Intn(len(w))] += 0.1 * rng.NormFloat64()
		if obj(w) < base-1e-9 {
			t.Fatalf("perturbation beats the mean: %v < %v", obj(w), base)
		}
	}
}

func TestShapeExtractionRecoversPrototype(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cluster, proto := sineCluster(30, 64, 6, 0.1, rng)
	cen := ShapeExtraction(cluster, proto)
	// The extracted shape should be very close (under SBD) to the prototype.
	d, _ := dist.SBD(proto, cen)
	if d > 0.05 {
		t.Errorf("SBD(prototype, extracted) = %v, want < 0.05", d)
	}
	if !ts.IsZNormalized(cen, 1e-6) {
		t.Error("centroid not z-normalized")
	}
}

func TestShapeExtractionBeatsMeanOnShiftedData(t *testing.T) {
	// With random shifts, the arithmetic mean smears the shape; shape
	// extraction should stay closer to the prototype (Figure 4's point).
	rng := rand.New(rand.NewSource(3))
	cluster, proto := sineCluster(40, 64, 10, 0.05, rng)
	cen := ShapeExtraction(cluster, proto)
	mean := ts.ZNormalize(Mean(cluster))
	dShape, _ := dist.SBD(proto, cen)
	dMean, _ := dist.SBD(proto, mean)
	if dShape >= dMean {
		t.Errorf("shape extraction (%v) should beat arithmetic mean (%v) on shifted data", dShape, dMean)
	}
}

func TestShapeExtractionEmptyCluster(t *testing.T) {
	if got := ShapeExtraction(nil, nil); got != nil {
		t.Errorf("empty cluster, nil ref: %v", got)
	}
	got := ShapeExtraction(nil, make([]float64, 4))
	if len(got) != 4 {
		t.Errorf("empty cluster with ref: len %d", len(got))
	}
}

func TestShapeExtractionSingleMember(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := ts.ZNormalize(randSeriesAvg(32, rng))
	cen := ShapeExtraction([][]float64{x}, nil)
	d, _ := dist.SBD(x, cen)
	if d > 1e-6 {
		t.Errorf("single-member centroid should equal the member (SBD %v)", d)
	}
}

func TestShapeExtractionZeroRefSkipsAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cluster, _ := sineCluster(10, 32, 3, 0.1, rng)
	a := ShapeExtraction(cluster, nil)
	b := ShapeExtraction(cluster, make([]float64, 32))
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("nil ref and zero ref should behave identically")
		}
	}
}

func TestShapeAveragerInterface(t *testing.T) {
	var a Averager = ShapeAverager{}
	if a.Name() != "ShapeExtraction" {
		t.Errorf("Name = %q", a.Name())
	}
}

func randSeriesAvg(m int, rng *rand.Rand) []float64 {
	x := make([]float64, m)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestDBAConvergesToPrototypeUnderWarping(t *testing.T) {
	// Members are time-warped versions of a prototype; DBA should land near
	// the prototype in DTW distance.
	rng := rand.New(rand.NewSource(6))
	m := 48
	proto := make([]float64, m)
	for i := range proto {
		proto[i] = math.Sin(2 * math.Pi * float64(i) / float64(m))
	}
	cluster := make([][]float64, 15)
	for i := range cluster {
		x := make([]float64, m)
		for j := range x {
			// Local non-linear warp: jittered sampling position.
			pos := float64(j) + 2*rng.Float64() - 1
			if pos < 0 {
				pos = 0
			}
			if pos > float64(m-1) {
				pos = float64(m - 1)
			}
			lo := int(pos)
			frac := pos - float64(lo)
			hi := lo
			if lo < m-1 {
				hi = lo + 1
			}
			x[j] = proto[lo]*(1-frac) + proto[hi]*frac + 0.05*rng.NormFloat64()
		}
		cluster[i] = x
	}
	got := DBA(cluster, nil, 5, -1)
	if d := dist.DTW(proto, got); d > 1.0 {
		t.Errorf("DTW(proto, DBA) = %v, want < 1.0", d)
	}
	// DBA should beat the plain arithmetic mean under the DTW objective.
	mean := Mean(cluster)
	objDBA, objMean := 0.0, 0.0
	for _, x := range cluster {
		dd := dist.DTW(got, x)
		objDBA += dd * dd
		dm := dist.DTW(mean, x)
		objMean += dm * dm
	}
	if objDBA > objMean {
		t.Errorf("DBA objective %v worse than mean objective %v", objDBA, objMean)
	}
}

func TestDBAEmptyAndInit(t *testing.T) {
	if DBA(nil, nil, 1, -1) != nil {
		t.Error("empty cluster, nil init should give nil")
	}
	init := []float64{1, 2, 3}
	got := DBA(nil, init, 1, -1)
	if len(got) != 3 || &got[0] == &init[0] {
		t.Error("empty cluster should copy init")
	}
}

func TestDBAIdenticalMembersFixedPoint(t *testing.T) {
	x := []float64{0, 1, 0, -1, 0}
	cluster := [][]float64{x, x, x}
	got := DBA(cluster, nil, 3, -1)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("DBA of identical members = %v, want %v", got, x)
		}
	}
}

func TestDBAAveragerDefaults(t *testing.T) {
	a := DBAAverager{Window: -1}
	if a.Name() != "DBA" {
		t.Errorf("Name = %q", a.Name())
	}
	got := a.Average([][]float64{{1, 2}, {3, 4}}, nil)
	if len(got) != 2 {
		t.Errorf("len = %d", len(got))
	}
}

func TestNLAAFBasic(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	cluster := [][]float64{x, x, x, x}
	got := NLAAF(cluster, -1)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("NLAAF of identical members = %v", got)
		}
	}
	if NLAAF(nil, -1) != nil {
		t.Error("empty cluster should give nil")
	}
}

func TestNLAAFOddCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cluster := randCluster(5, 16, rng)
	got := NLAAF(cluster, -1)
	if len(got) != 16 {
		t.Errorf("len = %d, want 16", len(got))
	}
}

func TestPSAWeightsReduceOrderBias(t *testing.T) {
	// Identical members: PSA must also be an exact fixed point.
	x := []float64{0, 2, 1, -1}
	got := PSA([][]float64{x, x, x}, -1)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("PSA of identical members = %v", got)
		}
	}
}

func TestPSAAndNLAAFAveragers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cluster := randCluster(6, 20, rng)
	for _, a := range []Averager{NLAAFAverager{Window: -1}, PSAAverager{Window: -1}} {
		out := a.Average(cluster, nil)
		if len(out) != 20 {
			t.Errorf("%s: len = %d", a.Name(), len(out))
		}
	}
	if (NLAAFAverager{}).Name() != "NLAAF" || (PSAAverager{}).Name() != "PSA" {
		t.Error("names wrong")
	}
	if out := (PSAAverager{}).Average(nil, make([]float64, 3)); len(out) != 3 {
		t.Error("PSA empty-cluster fallback")
	}
	if out := (NLAAFAverager{}).Average(nil, make([]float64, 3)); len(out) != 3 {
		t.Error("NLAAF empty-cluster fallback")
	}
}

func TestResample(t *testing.T) {
	got := resample([]float64{0, 1, 2, 3}, 7)
	want := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("resample = %v, want %v", got, want)
		}
	}
	if got := resample([]float64{5}, 3); got[0] != 5 || got[2] != 5 {
		t.Errorf("constant resample = %v", got)
	}
	if resample(nil, 3) != nil {
		t.Error("empty resample")
	}
	if got := resample([]float64{1, 2}, 1); got[0] != 1 {
		t.Errorf("n=1 resample = %v", got)
	}
}

func TestKSCDistanceScaleInvariance(t *testing.T) {
	// d(x, a*x) == 0 for any positive scale a: the pairwise scaling
	// invariance KSC offers.
	rng := rand.New(rand.NewSource(9))
	x := randSeriesAvg(40, rng)
	y := ts.Scale(x, 3.5)
	d, aligned := KSCDistance(x, y)
	if d > 1e-9 {
		t.Errorf("KSC distance to scaled copy = %v", d)
	}
	for i := range x {
		if math.Abs(aligned[i]-x[i]) > 1e-9 {
			t.Errorf("aligned+scaled copy diverges at %d", i)
			break
		}
	}
}

func TestKSCDistanceShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randSeriesAvg(64, rng)
	y := ts.Shift(x, 5)
	d, _ := KSCDistance(x, y)
	// Zero padding costs a little mass at the boundary; distance stays small.
	if d > 0.35 {
		t.Errorf("KSC distance to shifted copy = %v", d)
	}
	dSelf, _ := KSCDistance(x, x)
	if dSelf > 1e-12 {
		t.Errorf("self distance = %v", dSelf)
	}
}

func TestKSCDistanceDegenerate(t *testing.T) {
	d, aligned := KSCDistance([]float64{0, 0, 0}, []float64{1, 2, 3})
	if d != 1 {
		t.Errorf("zero query distance = %v, want 1", d)
	}
	if len(aligned) != 3 {
		t.Errorf("aligned len = %d", len(aligned))
	}
	if d, _ := KSCDistance(nil, nil); d != 0 {
		t.Errorf("empty distance = %v", d)
	}
}

func TestKSCCentroidRecoversPrototype(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cluster, proto := sineCluster(25, 48, 4, 0.1, rng)
	cen := KSCCentroid(cluster, proto)
	d, _ := dist.SBD(proto, cen)
	if d > 0.05 {
		t.Errorf("SBD(proto, KSC centroid) = %v", d)
	}
	if !ts.IsZNormalized(cen, 1e-6) {
		t.Error("KSC centroid not z-normalized")
	}
}

func TestKSCCentroidEmpty(t *testing.T) {
	if KSCCentroid(nil, nil) != nil {
		t.Error("empty cluster, nil ref")
	}
	if got := KSCCentroid(nil, make([]float64, 4)); len(got) != 4 {
		t.Error("empty cluster with ref")
	}
	// All-zero members: centroid must stay defined.
	got := KSCCentroid([][]float64{make([]float64, 4)}, nil)
	if len(got) != 4 {
		t.Errorf("zero-member centroid len = %d", len(got))
	}
}

func TestKSCAveragerInterface(t *testing.T) {
	var a Averager = KSCAverager{}
	if a.Name() != "KSC" {
		t.Errorf("Name = %q", a.Name())
	}
}
