// Fuzz target for the FFT layer, in an external test package so it can use
// the shared testkit decode helpers and tolerance conventions.
package fft_test

import (
	"math"
	"testing"

	"kshape/internal/fft"
	"kshape/internal/testkit"
)

func FuzzFFTRoundTrip(f *testing.F) {
	f.Add(testkit.EncodeFloats([]float64{1, 0, -1, 0, 1, 0, -1, 0}))
	f.Add(testkit.EncodeFloats([]float64{5}))
	f.Add(testkit.EncodeFloats(make([]float64, 16)))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := testkit.DecodeFloats(data, 256)
		if len(vals) == 0 {
			return
		}
		// Round trip: Inverse(Forward(x)) == x at the padded length. The
		// error of both transforms is O(log n · eps) relative to the input
		// energy, so the elementwise slack scales with the largest magnitude.
		n := fft.NextPow2(len(vals))
		buf := make([]complex128, n)
		maxAbs := 0.0
		for i, v := range vals {
			buf[i] = complex(v, 0)
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		fft.Forward(buf)
		fft.Inverse(buf)
		slack := 1e-9 * (1 + maxAbs)
		for i := 0; i < n; i++ {
			want := 0.0
			if i < len(vals) {
				want = vals[i]
			}
			if math.Abs(real(buf[i])-want) > slack || math.Abs(imag(buf[i])) > slack {
				t.Fatalf("roundtrip n=%d index %d: got %v, want %v (slack %v)", n, i, buf[i], want, slack)
			}
		}
		// Differential: the FFT cross-correlation of the two halves matches
		// the direct O(m²) definition. Cancellation can leave small outputs
		// assembled from large products, so the slack scales with the norm
		// product rather than with the output value.
		m := len(vals) / 2
		if m == 0 {
			return
		}
		x, y := vals[:m], vals[m:2*m]
		got := fft.CrossCorrelate(x, y)
		want := fft.CrossCorrelateNaive(x, y)
		if len(got) != len(want) {
			t.Fatalf("CrossCorrelate length %d vs naive %d", len(got), len(want))
		}
		ccSlack := 1e-12 * (1 + norm(x)*norm(y))
		for i := range got {
			if math.Abs(got[i]-want[i]) > ccSlack {
				t.Fatalf("CrossCorrelate[%d] = %v vs naive %v (m=%d, slack %v)", i, got[i], want[i], m, ccSlack)
			}
		}
	})
}

// FuzzRFFT drives the real-input plan across arbitrary inputs and both
// padding regimes (tight and doubled), checking parity with the complex
// reference transform bin by bin and the Forward→Inverse round trip. The
// input length itself is unrestricted — odd, prime, and power-of-two
// lengths all land here via zero-padding, exactly as the SBD hot path
// pads 2m-1 up to a power of two.
func FuzzRFFT(f *testing.F) {
	f.Add(testkit.EncodeFloats([]float64{1, 0, -1, 0, 1, 0, -1, 0}))
	f.Add(testkit.EncodeFloats([]float64{5}))
	f.Add(testkit.EncodeFloats(make([]float64, 13)))
	f.Add([]byte{7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := testkit.DecodeFloats(data, 512)
		if len(vals) == 0 {
			return
		}
		maxAbs := 0.0
		for _, v := range vals {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		tight := fft.NextPow2(len(vals))
		for _, n := range []int{tight, 2 * tight} {
			p := fft.NewRFFT(n)
			spec := make([]complex128, p.SpectrumLen())
			work := make([]complex128, p.WorkLen())
			p.Forward(vals, spec, work)
			// Parity with the complex transform on the shared bins. Both
			// paths accumulate O(log n · eps) rounding relative to the input
			// energy, so the slack scales with the l2 norm.
			ref := fft.ForwardReal(vals, n)
			slack := 1e-9 * (1 + norm(vals)*math.Sqrt(float64(n)))
			for k := range spec {
				if math.Abs(real(spec[k])-real(ref[k])) > slack || math.Abs(imag(spec[k])-imag(ref[k])) > slack {
					t.Fatalf("n=%d bin %d: rfft %v vs complex %v (slack %v)", n, k, spec[k], ref[k], slack)
				}
			}
			// Round trip reproduces the zero-padded input.
			out := make([]float64, n)
			p.Inverse(spec, out, work)
			rtSlack := 1e-9 * (1 + maxAbs)
			for i := 0; i < n; i++ {
				want := 0.0
				if i < len(vals) {
					want = vals[i]
				}
				if math.Abs(out[i]-want) > rtSlack {
					t.Fatalf("rfft roundtrip n=%d index %d: got %v, want %v (slack %v)", n, i, out[i], want, rtSlack)
				}
			}
		}
	})
}

func norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
