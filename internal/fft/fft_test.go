package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// dftNaive is the O(n^2) reference DFT used to validate the fast transform.
func dftNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for r := 0; r < n; r++ {
			ang := -2 * math.Pi * float64(r) * float64(k) / float64(n)
			s += x[r] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 7: 8, 8: 8, 9: 16, 1023: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNextPow2PanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NextPow2(%d) should panic", n)
				}
			}()
			NextPow2(n)
		}()
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 64, 4096} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 12, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := dftNaive(x)
		got := make([]complex128, n)
		copy(got, x)
		Forward(got)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-8*float64(n) {
				t.Fatalf("n=%d: Forward[%d] = %v, want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 8, 128, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := make([]complex128, n)
		copy(y, x)
		Forward(y)
		Inverse(y)
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: round trip[%d] = %v, want %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestForwardPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Forward on length 3 should panic")
		}
	}()
	Forward(make([]complex128, 3))
}

func TestParsevalProperty(t *testing.T) {
	// sum |x|^2 == (1/n) sum |X|^2 for the unscaled forward transform.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		x := make([]complex128, n)
		var tx float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			tx += real(x[i]) * real(x[i])
		}
		Forward(x)
		var tf float64
		for _, v := range x {
			tf += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(tx-tf/float64(n)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConvolve(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{4, 5})
	want := []float64{4, 13, 22, 15}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("Convolve = %v, want %v", got, want)
		}
	}
	if Convolve(nil, []float64{1}) != nil {
		t.Error("empty input should give nil")
	}
}

func TestCrossCorrelateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range []int{1, 2, 5, 17, 64, 100, 257} {
		x := make([]float64, m)
		y := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		fast := CrossCorrelate(x, y)
		slow := CrossCorrelateNaive(x, y)
		if len(fast) != 2*m-1 || len(slow) != 2*m-1 {
			t.Fatalf("m=%d: lengths %d, %d; want %d", m, len(fast), len(slow), 2*m-1)
		}
		for w := range slow {
			if math.Abs(fast[w]-slow[w]) > 1e-7 {
				t.Fatalf("m=%d: CC[%d] = %v (fft) vs %v (naive)", m, w, fast[w], slow[w])
			}
		}
	}
}

func TestCrossCorrelateUnequalLengths(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 1}
	fast := CrossCorrelate(x, y)
	slow := CrossCorrelateNaive(x, y)
	if len(fast) != len(x)+len(y)-1 {
		t.Fatalf("len = %d", len(fast))
	}
	for w := range slow {
		if math.Abs(fast[w]-slow[w]) > 1e-9 {
			t.Fatalf("CC[%d] = %v vs %v", w, fast[w], slow[w])
		}
	}
}

func TestCrossCorrelatePeakAtKnownShift(t *testing.T) {
	// y is x delayed by 3 samples; the correlation peak must sit at lag +3,
	// i.e. index (m-1)+3.
	m := 32
	x := make([]float64, m)
	x[5] = 1 // impulse
	y := make([]float64, m)
	y[8] = 1                   // impulse delayed by 3
	cc := CrossCorrelate(y, x) // sum x-shifted: peak where y[l+k] matches x[l]
	best, bestW := math.Inf(-1), -1
	for w, v := range cc {
		if v > best {
			best, bestW = v, w
		}
	}
	if lag := bestW - (m - 1); lag != 3 {
		t.Errorf("peak at lag %d, want 3", lag)
	}
}

func TestCrossCorrelateLenCustomPadding(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{4, 3, 2, 1}
	ref := CrossCorrelateNaive(x, y)
	for _, n := range []int{8, 16, 32} {
		got := CrossCorrelateLen(x, y, n)
		for w := range ref {
			if math.Abs(got[w]-ref[w]) > 1e-9 {
				t.Fatalf("padding %d: CC[%d] = %v, want %v", n, w, got[w], ref[w])
			}
		}
	}
}

func TestCrossCorrelateLenRejectsBadPadding(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for transform length below 2m-1")
		}
	}()
	CrossCorrelateLen([]float64{1, 2, 3}, []float64{1, 2, 3}, 4)
}

func TestForwardRealAgainstComplex(t *testing.T) {
	x := []float64{1, -1, 2, 0.5, 3}
	n := NextPow2(len(x))
	got := ForwardReal(x, 0)
	want := make([]complex128, n)
	for i, v := range x {
		want[i] = complex(v, 0)
	}
	Forward(want)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ForwardReal[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
