package fft

import (
	"math/rand"
	"testing"
)

// TestRFFTRoundTripAllocFree pins the //kshape:hotpath transform kernels
// at zero allocations: with the plan built and the spectrum/work buffers
// preallocated, Forward and Inverse (and transformHalf and conj inside
// them) must never touch the heap — that is what lets the batch SBD
// loops stream thousands of transforms through one buffer set.
func TestRFFTRoundTripAllocFree(t *testing.T) {
	const n = 256
	p := NewRFFT(n)
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	spec := make([]complex128, p.SpectrumLen())
	work := make([]complex128, p.WorkLen())
	out := make([]float64, n)
	if a := testing.AllocsPerRun(100, func() {
		p.Forward(x, spec, work)
		p.Inverse(spec, out, work)
	}); a != 0 {
		t.Errorf("RFFT round trip allocates %v per run, want 0", a)
	}
}
