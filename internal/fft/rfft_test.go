package fft

import (
	"math"
	"math/rand"
	"testing"
)

// rfftLengths covers the degenerate plans (1, 2) through sizes large
// enough to exercise several butterfly stages.
var rfftLengths = []int{1, 2, 4, 8, 16, 64, 256}

func TestRFFTMatchesComplexForward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range rfftLengths {
		p := NewRFFT(n)
		if p.Len() != n || p.SpectrumLen() != n/2+1 || p.WorkLen() != n/2 {
			t.Fatalf("n=%d: plan geometry %d/%d/%d", n, p.Len(), p.SpectrumLen(), p.WorkLen())
		}
		// Both a full-length input and a shorter zero-padded one.
		for _, inLen := range []int{n, (n + 1) / 2} {
			x := make([]float64, inLen)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			spec := make([]complex128, p.SpectrumLen())
			work := make([]complex128, p.WorkLen())
			p.Forward(x, spec, work)
			want := ForwardReal(x, n)
			for k := range spec {
				if d := cabs(spec[k] - want[k]); d > 1e-9*(1+cabs(want[k])) {
					t.Fatalf("n=%d inLen=%d bin %d: rfft %v vs complex %v", n, inLen, k, spec[k], want[k])
				}
			}
		}
	}
}

func TestRFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range rfftLengths {
		p := NewRFFT(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
		}
		spec := make([]complex128, p.SpectrumLen())
		work := make([]complex128, p.WorkLen())
		out := make([]float64, n)
		p.Forward(x, spec, work)
		p.Inverse(spec, out, work)
		for i := range x {
			if math.Abs(out[i]-x[i]) > 1e-9*(1+math.Abs(x[i])) {
				t.Fatalf("n=%d: round trip diverges at %d: %v vs %v", n, i, out[i], x[i])
			}
		}
	}
}

func TestRFFTPanicsOnBadLengths(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRFFT(3) },
		func() { NewRFFT(0) },
		func() { NewRFFT(4).Forward(make([]float64, 5), make([]complex128, 3), make([]complex128, 2)) },
		func() { NewRFFT(4).Forward(make([]float64, 4), make([]complex128, 2), make([]complex128, 2)) },
		func() { NewRFFT(4).Inverse(make([]complex128, 2), make([]float64, 4), make([]complex128, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func cabs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }
