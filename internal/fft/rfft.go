package fft

import (
	"fmt"
	"math"
	"math/bits"

	"kshape/internal/obs"
)

// RFFT is a precomputed plan for forward and inverse DFTs of real-valued
// input at one fixed power-of-two length n. It exploits conjugate symmetry
// by packing the real input into a complex sequence of length n/2, running
// a half-size complex transform, and untangling the halves with the
// precomputed twiddle factors — about half the butterfly work and half the
// buffer traffic of the complex-FFT path (ForwardReal / Inverse), which
// remains the reference implementation the differential oracles compare
// against.
//
// A plan is immutable after construction and safe for concurrent use; all
// per-call state lives in caller-provided buffers, so the transforms
// allocate nothing. The batch SBD hot paths (internal/dist.SBDBatch) keep
// one plan per transform length and stream every spectrum and correlation
// through it.
type RFFT struct {
	n    int // real transform length (power of two)
	half int // n / 2: packed complex length
	// tw[k] = e^{-2πik/n} for k = 0..n/2, the untangling twiddles.
	tw []complex128
	// Tables for the plan-private half-size complex transform: the
	// bit-reversal permutation and the per-stage butterfly twiddles
	// (twF[j] = e^{-2πij/half}, twI its conjugate), indexed with a stride of
	// half/size at stage size. The generic transform recomputes these with
	// one complex multiply per butterfly; precomputing them is what makes
	// the batch SBD inverse measurably cheaper than the reference path.
	rev      []int32
	twF, twI []complex128
}

// NewRFFT builds a plan for real transforms of length n (a power of two).
func NewRFFT(n int) *RFFT {
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: RFFT length %d is not a power of two", n))
	}
	half := n / 2
	p := &RFFT{n: n, half: half, tw: make([]complex128, half+1)}
	for k := 0; k <= half; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.tw[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	if half > 0 {
		logH := bits.TrailingZeros(uint(half))
		p.rev = make([]int32, half)
		for i := 0; i < half; i++ {
			p.rev[i] = int32(bits.Reverse(uint(i)) >> (bits.UintSize - logH))
		}
		p.twF = make([]complex128, half/2)
		p.twI = make([]complex128, half/2)
		for j := range p.twF {
			ang := -2 * math.Pi * float64(j) / float64(half)
			p.twF[j] = complex(math.Cos(ang), math.Sin(ang))
			p.twI[j] = complex(math.Cos(ang), -math.Sin(ang))
		}
	}
	return p
}

// transformHalf runs the radix-2 butterfly network of length half over x in
// place, using the precomputed bit-reversal permutation and the stage
// twiddles tw (twF forward, twI inverse). It is numerically within one or
// two ulps of the generic transform (the tables are exact per index where
// the generic path accumulates w *= wStep) and is private to the plan: the
// complex-FFT reference path keeps the generic implementation so the
// differential oracles compare two genuinely distinct computations.
//
//kshape:hotpath
func (p *RFFT) transformHalf(x []complex128, tw []complex128) {
	h := p.half
	for i, j := range p.rev {
		if i < int(j) {
			x[i], x[int(j)] = x[int(j)], x[i]
		}
	}
	for size := 2; size <= h; size <<= 1 {
		hs := size >> 1
		stride := h / size
		for start := 0; start < h; start += size {
			ti := 0
			for k := 0; k < hs; k++ {
				a := x[start+k]
				b := x[start+k+hs] * tw[ti]
				x[start+k] = a + b
				x[start+k+hs] = a - b
				ti += stride
			}
		}
	}
}

// Len returns the real transform length n.
func (p *RFFT) Len() int { return p.n }

// SpectrumLen returns the half-spectrum length n/2+1 (bins 0..n/2; the
// remaining bins are the conjugate mirror and are never materialized).
func (p *RFFT) SpectrumLen() int { return p.half + 1 }

// WorkLen returns the scratch length n/2 required by Forward and Inverse.
func (p *RFFT) WorkLen() int { return p.half }

// Forward computes the DFT of the real input x zero-padded to length n,
// writing the Hermitian half-spectrum X_0..X_{n/2} into spec (length
// SpectrumLen). work (length WorkLen) is clobbered; x is not modified and
// must not exceed n samples. The result matches ForwardReal(x, n)[0..n/2]
// up to rounding.
//
//kshape:hotpath
func (p *RFFT) Forward(x []float64, spec, work []complex128) {
	if len(x) > p.n {
		panic(fmt.Sprintf("fft: RFFT input length %d exceeds plan length %d", len(x), p.n))
	}
	if len(spec) < p.half+1 || len(work) < p.half {
		panic("fft: RFFT Forward buffer too short")
	}
	if p.n == 1 {
		// Degenerate single-bin transform; count it like any other forward
		// transform so kernel-counter totals stay path-independent.
		obs.Inc(obs.CounterFFT)
		v := 0.0
		if len(x) == 1 {
			v = x[0]
		}
		spec[0] = complex(v, 0)
		return
	}
	half := p.half
	// Pack consecutive sample pairs into one complex point each:
	// z_j = x_{2j} + i·x_{2j+1}, zero-padded beyond len(x).
	for j := 0; j < half; j++ {
		re, im := 0.0, 0.0
		if 2*j < len(x) {
			re = x[2*j]
		}
		if 2*j+1 < len(x) {
			im = x[2*j+1]
		}
		work[j] = complex(re, im)
	}
	// Counted like the generic forward transform so kernel-counter totals
	// stay path-independent.
	obs.Inc(obs.CounterFFT)
	p.transformHalf(work[:half], p.twF)
	// Untangle: with E/O the spectra of the even/odd samples,
	// E_k = (Z_k + conj(Z_{h-k}))/2, O_k = -i·(Z_k - conj(Z_{h-k}))/2,
	// X_k = E_k + W_n^k·O_k for k = 0..n/2 (indices of Z mod h).
	for k := 0; k <= half; k++ {
		zk := work[k%half]
		zc := conj(work[(half-k)%half])
		even := (zk + zc) / 2
		odd := (zk - zc) / 2
		odd = complex(imag(odd), -real(odd)) // multiply by -i
		spec[k] = even + p.tw[k]*odd
	}
}

// Inverse computes the inverse DFT of the Hermitian half-spectrum spec
// (length SpectrumLen, as produced by Forward — bins beyond n/2 are implied
// by conjugate symmetry), writing the real result of length n into out.
// work (length WorkLen) is clobbered; spec is not modified. Scaling matches
// Inverse: the round trip Forward→Inverse reproduces the padded input.
//
//kshape:hotpath
func (p *RFFT) Inverse(spec []complex128, out []float64, work []complex128) {
	if len(spec) < p.half+1 || len(out) < p.n || len(work) < p.half {
		panic("fft: RFFT Inverse buffer too short")
	}
	if p.n == 1 {
		obs.Inc(obs.CounterIFFT)
		out[0] = real(spec[0])
		return
	}
	half := p.half
	// Re-tangle the half-spectrum into the packed transform:
	// E_k = (X_k + conj(X_{h-k}))/2, O_k = W_n^{-k}·(X_k - conj(X_{h-k}))/2,
	// Z_k = E_k + i·O_k; the half-size inverse then yields the packed
	// samples z_j = x_{2j} + i·x_{2j+1} with exactly the right 1/(n/2)
	// normalization.
	for k := 0; k < half; k++ {
		xk := spec[k]
		xc := conj(spec[half-k])
		even := (xk + xc) / 2
		odd := (xk - xc) / 2
		odd *= conj(p.tw[k])                            // W_n^{-k}
		work[k] = even + complex(-imag(odd), real(odd)) // + i·odd
	}
	obs.Inc(obs.CounterIFFT)
	p.transformHalf(work[:half], p.twI)
	// Unpack with the 1/(n/2) normalization folded in; half is a power of
	// two, so multiplying by its exact reciprocal is bit-identical to the
	// division the generic Inverse performs.
	scale := 1 / float64(half)
	for j := 0; j < half; j++ {
		out[2*j] = real(work[j]) * scale
		out[2*j+1] = imag(work[j]) * scale
	}
}

// conj avoids pulling math/cmplx into the hot loops for a one-liner.
//
//kshape:hotpath
func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }
