// Package fft implements an iterative radix-2 Cooley-Tukey fast Fourier
// transform over complex128 slices, plus the frequency-domain
// cross-correlation used by the shape-based distance (SBD) of the k-Shape
// paper (Equations 10-12).
//
// The package is self-contained (standard library only) and deterministic.
// Transforms require power-of-two lengths; NextPow2 computes the padding
// target and CrossCorrelate handles padding internally.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"kshape/internal/obs"
)

// NextPow2 returns the smallest power of two >= n. It panics for n <= 0 and
// for n so large that the result would overflow an int.
func NextPow2(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("fft: NextPow2 of non-positive %d", n))
	}
	if n&(n-1) == 0 {
		return n
	}
	shift := bits.Len(uint(n))
	if shift >= bits.UintSize-2 {
		panic(fmt.Sprintf("fft: NextPow2 overflow for %d", n))
	}
	return 1 << shift
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Forward computes the in-place forward DFT of x, whose length must be a
// power of two. It follows the engineering convention: no scaling on the
// forward transform, 1/N scaling on the inverse.
func Forward(x []complex128) {
	transform(x, false)
}

// Inverse computes the in-place inverse DFT of x (length must be a power of
// two), including the 1/N normalization.
func Inverse(x []complex128) {
	transform(x, true)
	n := float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])/n, imag(x[i])/n)
	}
}

// transform runs the iterative radix-2 Cooley-Tukey butterfly network.
func transform(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	if inverse {
		obs.Inc(obs.CounterIFFT)
	} else {
		obs.Inc(obs.CounterFFT)
	}
	// Bit-reversal permutation.
	logN := bits.TrailingZeros(uint(n))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> (bits.UintSize - logN))
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := 2 * math.Pi / float64(size) * sign
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// ForwardReal transforms a real slice into its complex spectrum of length
// NextPow2(len(x)) (or n if padTo > 0, which must be a power of two >=
// len(x)). The input is zero-padded; x itself is not modified.
func ForwardReal(x []float64, padTo int) []complex128 {
	n := padTo
	if n == 0 {
		n = NextPow2(len(x))
	}
	if n < len(x) || !IsPow2(n) {
		panic(fmt.Sprintf("fft: invalid padTo %d for input length %d", n, len(x)))
	}
	out := make([]complex128, n)
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	Forward(out)
	return out
}

// Convolve returns the linear convolution of x and y with length
// len(x)+len(y)-1, computed via FFT in O(L log L).
func Convolve(x, y []float64) []float64 {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	outLen := len(x) + len(y) - 1
	n := NextPow2(outLen)
	fx := ForwardReal(x, n)
	fy := ForwardReal(y, n)
	for i := range fx {
		fx[i] *= fy[i]
	}
	Inverse(fx)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fx[i])
	}
	return out
}

// CrossCorrelate returns the full cross-correlation sequence CC(x, y) of
// length len(x)+len(y)-1, computed as IFFT(FFT(x) * conj(FFT(y))) per
// Equation 12 of the paper. Entry w (0-based) corresponds to lag
// s = w - (len(y) - 1): element w is sum_l x[l] * y[l-s].
//
// For equal-length inputs of length m this matches the paper's CC_w with
// w in {1, ..., 2m-1} (1-based) and shift s = w - m.
//
// If pow2Pad is false the transform length is the exact 2m-1 rounded up only
// as strictly required for radix-2 (i.e. NextPow2(outLen)); the flag exists
// to reproduce the SBD_NoPow2 implementation row of Table 2, where the
// transform length is 2*m (not padded beyond the minimum) — see
// CrossCorrelateLen.
func CrossCorrelate(x, y []float64) []float64 {
	return crossCorrelatePadded(x, y, 0)
}

// CrossCorrelateLen computes the same cross-correlation as CrossCorrelate
// but lets the caller pick the FFT length n (a power of two >= 2m-1). The
// paper's optimized SBD uses NextPow2(2m-1); SBD_NoPow2 in Table 2 models a
// less careful choice of transform size that still yields correct values but
// is slower in aggregate because it cannot reuse power-of-two-friendly sizes.
func CrossCorrelateLen(x, y []float64, n int) []float64 {
	return crossCorrelatePadded(x, y, n)
}

func crossCorrelatePadded(x, y []float64, n int) []float64 {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	outLen := len(x) + len(y) - 1
	if n == 0 {
		n = NextPow2(outLen)
	}
	if n < outLen || !IsPow2(n) {
		panic(fmt.Sprintf("fft: invalid transform length %d for output %d", n, outLen))
	}
	fx := ForwardReal(x, n)
	fy := ForwardReal(y, n)
	for i := range fx {
		fx[i] *= cmplx.Conj(fy[i])
	}
	Inverse(fx)
	// The circular correlation places non-negative lags at the front and
	// negative lags at the tail of the buffer; unwrap so that index w
	// corresponds to lag w-(len(y)-1), i.e. most-negative lag first.
	out := make([]float64, outLen)
	my := len(y)
	for lag := -(my - 1); lag <= len(x)-1; lag++ {
		idx := lag
		if idx < 0 {
			idx += n
		}
		out[lag+my-1] = real(fx[idx])
	}
	return out
}

// CrossCorrelateNaive computes the same sequence as CrossCorrelate directly
// in O(len(x)*len(y)) time. It backs the SBD_NoFFT row of Table 2 and the
// correctness tests for the FFT path.
func CrossCorrelateNaive(x, y []float64) []float64 {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	outLen := len(x) + len(y) - 1
	out := make([]float64, outLen)
	my := len(y)
	for w := 0; w < outLen; w++ {
		lag := w - (my - 1) // x is shifted right by lag relative to y
		s := 0.0
		for l := 0; l < my; l++ {
			xi := l + lag
			if xi < 0 || xi >= len(x) {
				continue
			}
			s += x[xi] * y[l]
		}
		out[w] = s
	}
	return out
}
