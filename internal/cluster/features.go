package cluster

import (
	"math"
	"math/rand"

	"kshape/internal/avg"
	"kshape/internal/core"
	"kshape/internal/dist"
	"kshape/internal/ts"
)

// FeatureBased is the statistical/feature-based clustering family the
// paper's Section 6 contrasts with shape-based approaches
// (characteristic-based clustering, Wang, Smith & Hyndman): every series is
// summarized by a fixed vector of global descriptors, the feature columns
// are z-scored across the collection, and k-means with ED runs on the
// feature vectors. It is fast and length-independent but, as the paper
// argues, the fixed features are domain-sensitive — the shape information
// SBD preserves is discarded.
type FeatureBased struct{}

// NewFeatureBased returns the feature-based baseline clusterer.
func NewFeatureBased() Clusterer { return FeatureBased{} }

// Name implements Clusterer.
func (FeatureBased) Name() string { return "Features+k-means" }

// Deterministic implements Clusterer.
func (FeatureBased) Deterministic() bool { return false }

// Cluster implements Clusterer.
func (FeatureBased) Cluster(data [][]float64, k int, rng *rand.Rand) (*core.Result, error) {
	feats := FeatureMatrix(data)
	res, err := core.Lloyd(feats, core.Config{
		K:        k,
		Distance: func(c, x []float64) float64 { return dist.ED(c, x) },
		Centroid: avg.MeanAverager{}.Average,
		Rand:     rng,
	})
	if err != nil {
		return nil, err
	}
	// Feature-space centroids are not time series; drop them like the
	// spectral clusterer does.
	res.Centroids = nil
	return res, nil
}

// FeatureMatrix computes the descriptor vector of every series and z-scores
// each feature column across the collection, so no single scale dominates
// the Euclidean geometry.
func FeatureMatrix(data [][]float64) [][]float64 {
	n := len(data)
	feats := make([][]float64, n)
	for i, x := range data {
		feats[i] = Features(x)
	}
	if n == 0 {
		return feats
	}
	f := len(feats[0])
	col := make([]float64, n)
	for j := 0; j < f; j++ {
		for i := 0; i < n; i++ {
			col[i] = feats[i][j]
		}
		mu := ts.Mean(col)
		sd := ts.Std(col)
		for i := 0; i < n; i++ {
			if sd > 0 {
				feats[i][j] = (feats[i][j] - mu) / sd
			} else {
				feats[i][j] = 0
			}
		}
	}
	return feats
}

// Features computes the global descriptors of one series: mean, standard
// deviation, skewness, kurtosis, first-lag and seasonal-lag autocorrelation,
// linear-trend slope, mean absolute change, number of mean crossings, and
// spectral entropy — the classic characteristic-based set.
func Features(x []float64) []float64 {
	m := len(x)
	if m == 0 {
		return make([]float64, 10)
	}
	mu := ts.Mean(x)
	sd := ts.Std(x)
	skew, kurt := 0.0, 0.0
	if sd > 0 {
		for _, v := range x {
			z := (v - mu) / sd
			skew += z * z * z
			kurt += z * z * z * z
		}
		skew /= float64(m)
		kurt = kurt/float64(m) - 3
	}
	acf1 := autocorr(x, mu, sd, 1)
	acfSeason := autocorr(x, mu, sd, max(2, m/8))
	slope := trendSlope(x)
	mac := 0.0
	for i := 1; i < m; i++ {
		mac += math.Abs(x[i] - x[i-1])
	}
	if m > 1 {
		mac /= float64(m - 1)
	}
	crossings := 0.0
	for i := 1; i < m; i++ {
		if (x[i-1]-mu)*(x[i]-mu) < 0 {
			crossings++
		}
	}
	return []float64{
		mu, sd, skew, kurt, acf1, acfSeason, slope, mac, crossings,
		spectralEntropy(x),
	}
}

// autocorr computes the lag-l autocorrelation coefficient.
func autocorr(x []float64, mu, sd float64, lag int) float64 {
	m := len(x)
	//lint:ignore floatcmp exact zero-variance guard before dividing by sd
	if sd == 0 || lag >= m {
		return 0
	}
	s := 0.0
	for i := 0; i+lag < m; i++ {
		s += (x[i] - mu) * (x[i+lag] - mu)
	}
	return s / (float64(m) * sd * sd)
}

// trendSlope is the least-squares slope against the index.
func trendSlope(x []float64) float64 {
	m := len(x)
	if m < 2 {
		return 0
	}
	tMean := float64(m-1) / 2
	xMean := ts.Mean(x)
	num, den := 0.0, 0.0
	for i, v := range x {
		dt := float64(i) - tMean
		num += dt * (v - xMean)
		den += dt * dt
	}
	//lint:ignore floatcmp exact zero-denominator guard
	if den == 0 {
		return 0
	}
	return num / den
}

// spectralEntropy is the Shannon entropy of the normalized power spectrum,
// a complexity descriptor (low for periodic signals, high for noise).
func spectralEntropy(x []float64) float64 {
	m := len(x)
	if m < 4 {
		return 0
	}
	spec := powerSpectrum(x)
	total := 0.0
	for _, p := range spec {
		total += p
	}
	//lint:ignore floatcmp exact zero-total guard before normalizing
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, p := range spec {
		if p > 0 {
			q := p / total
			h -= q * math.Log(q)
		}
	}
	// Normalize by the maximum entropy so the feature is in [0, 1].
	return h / math.Log(float64(len(spec)))
}

// powerSpectrum returns |DFT(x)|² for the positive frequencies, computed
// naively (the feature extractor runs once per series, so O(m²) here is
// immaterial next to the clustering itself; callers needing bulk transforms
// use internal/fft).
func powerSpectrum(x []float64) []float64 {
	m := len(x)
	half := m / 2
	out := make([]float64, half)
	for k := 1; k <= half; k++ {
		re, im := 0.0, 0.0
		for t, v := range x {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(m)
			re += v * math.Cos(ang)
			im += v * math.Sin(ang)
		}
		out[k-1] = re*re + im*im
	}
	return out
}
