package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"kshape/internal/avg"
	"kshape/internal/core"
	"kshape/internal/dist"
	"kshape/internal/linalg"
	"kshape/internal/par"
)

// Spectral is the normalized spectral clustering of Ng, Jordan & Weiss
// (Section 2.4, "S+*" rows of Table 4):
//
//  1. build a Gaussian affinity A_ij = exp(−d_ij² / (2σ²)) with A_ii = 0,
//     where σ defaults to the median pairwise distance (a standard
//     parameter-free choice for an unsupervised setting);
//  2. form the normalized affinity L = D^(−1/2)·A·D^(−1/2);
//  3. take the k eigenvectors of L with the largest eigenvalues as columns
//     of an n×k embedding, renormalize its rows to unit length;
//  4. run k-means (ED + arithmetic mean) on the embedded rows.
//
// Like PAM and hierarchical clustering it needs the full dissimilarity
// matrix plus an O(n³) eigendecomposition, which is exactly why the paper
// classifies it as non-scalable.
type Spectral struct {
	Measure dist.Measure
	// Sigma overrides the Gaussian bandwidth; 0 selects the median
	// pairwise distance.
	Sigma float64
	// MaxIterations caps the embedded k-means; 0 means the default.
	MaxIterations int
	// Workers bounds the parallelism of the matrix build, the affinity
	// construction, and the embedded k-means (par.Resolve semantics:
	// <= 0 means runtime.NumCPU(), 1 means serial). Results are identical
	// for every value.
	Workers int
}

// NewSpectral returns normalized spectral clustering with the given
// distance measure (S+ED / S+cDTW / S+SBD in Table 4).
func NewSpectral(m dist.Measure) *Spectral { return &Spectral{Measure: m} }

// Name implements Clusterer.
func (s *Spectral) Name() string { return "S+" + s.Measure.Name() }

// Deterministic implements Clusterer.
func (s *Spectral) Deterministic() bool { return false }

// Cluster implements Clusterer.
func (s *Spectral) Cluster(data [][]float64, k int, rng *rand.Rand) (*core.Result, error) {
	if len(data) == 0 {
		return nil, core.ErrNoData
	}
	if k < 1 || k > len(data) {
		return nil, fmt.Errorf("%w: k=%d, n=%d", core.ErrBadK, k, len(data))
	}
	if rng == nil {
		return nil, errors.New("cluster: spectral clustering requires a random source")
	}
	d := dist.PairwiseMatrixWorkers(s.Measure, data, s.Workers)
	return s.ClusterWithMatrix(d, k, rng)
}

// ClusterWithMatrix runs spectral clustering on a precomputed dissimilarity
// matrix (shared across runs by the experiment harness).
func (s *Spectral) ClusterWithMatrix(d [][]float64, k int, rng *rand.Rand) (*core.Result, error) {
	n := len(d)
	if n == 0 {
		return nil, core.ErrNoData
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d, n=%d", core.ErrBadK, k, n)
	}
	emb, err := s.Embed(d, k)
	if err != nil {
		return nil, err
	}
	res, err := core.Lloyd(emb, core.Config{
		K:             k,
		MaxIterations: s.MaxIterations,
		Distance:      func(c, x []float64) float64 { return dist.ED(c, x) },
		Centroid:      avg.MeanAverager{}.Average,
		Rand:          rng,
		Workers:       s.Workers,
	})
	if err != nil {
		return nil, err
	}
	// The embedded centroids are not meaningful time series; drop them so
	// callers do not mistake them for sequence representatives.
	res.Centroids = nil
	return res, nil
}

// Embed computes the row-normalized spectral embedding (steps 1-3 above),
// exposed separately for tests and for reuse across k-means restarts.
func (s *Spectral) Embed(d [][]float64, k int) ([][]float64, error) {
	n := len(d)
	sigma := s.Sigma
	//lint:ignore floatcmp exact zero-bandwidth guard before dividing by sigma
	if sigma == 0 {
		sigma = medianOffDiagonal(d)
	}
	if sigma <= 0 {
		// All points identical: any embedding works; use a constant one.
		emb := make([][]float64, n)
		for i := range emb {
			emb[i] = make([]float64, k)
			emb[i][0] = 1
		}
		return emb, nil
	}
	// Affinity rows build in parallel: iteration i owns every (i, j) pair
	// with j > i and writes both mirrored entries, so the writes of
	// different iterations never overlap.
	a := linalg.NewSym(n)
	par.For(s.Workers, n, func(i int) {
		for j := i + 1; j < n; j++ {
			v := math.Exp(-d[i][j] * d[i][j] / (2 * sigma * sigma))
			a.Data[i*n+j] = v
			a.Data[j*n+i] = v
		}
	})
	// Normalize: L = D^(-1/2) A D^(-1/2). Each degree is a serial
	// ascending row sum, so deg is worker-count independent.
	deg := make([]float64, n)
	par.For(s.Workers, n, func(i int) {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += a.At(i, j)
		}
		if sum <= 0 {
			sum = 1 // isolated point; keep the row zero after scaling
		}
		deg[i] = 1 / math.Sqrt(sum)
	})
	par.For(s.Workers, n, func(i int) {
		for j := 0; j < n; j++ {
			a.Data[i*n+j] *= deg[i] * deg[j]
		}
	})
	_, vecs := linalg.EigenDecompose(a)
	// Largest k eigenvectors (EigenDecompose sorts ascending).
	emb := make([][]float64, n)
	for i := range emb {
		emb[i] = make([]float64, k)
	}
	for c := 0; c < k; c++ {
		v := vecs[n-1-c]
		for i := 0; i < n; i++ {
			emb[i][c] = v[i]
		}
	}
	// Row renormalization.
	par.For(s.Workers, n, func(i int) {
		nrm := 0.0
		for _, v := range emb[i] {
			nrm += v * v
		}
		nrm = math.Sqrt(nrm)
		if nrm > 0 {
			for c := range emb[i] {
				emb[i][c] /= nrm
			}
		}
	})
	return emb, nil
}

// medianOffDiagonal returns the median of the strictly-upper-triangle
// entries of d, or 0 when n < 2.
func medianOffDiagonal(d [][]float64) float64 {
	n := len(d)
	if n < 2 {
		return 0
	}
	vals := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := d[i][j]
			if math.IsInf(v, 0) || math.IsNaN(v) {
				continue
			}
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}
