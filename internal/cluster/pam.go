package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"kshape/internal/core"
	"kshape/internal/dist"
	"kshape/internal/par"
)

// PAM is the Partitioning Around Medoids implementation of k-medoids
// (Kaufman & Rousseeuw), the strongest non-scalable partitional baseline of
// Table 4. It computes the full n×n dissimilarity matrix up front — the
// scalability bottleneck the paper highlights — then alternates between
// assigning every series to its nearest medoid and re-electing, within each
// cluster, the member minimizing the summed dissimilarity to the others.
//
// Initial medoids are sampled uniformly without replacement, so repeated
// runs average over initializations exactly like the k-means variants.
type PAM struct {
	Measure dist.Measure
	// MaxIterations caps the alternation; 0 means core.DefaultMaxIterations.
	MaxIterations int
	// Workers bounds the parallelism of the matrix build, the assignment
	// step, and the medoid-update cost scans (par.Resolve semantics:
	// <= 0 means runtime.NumCPU(), 1 means serial). Results are identical
	// for every value.
	Workers int
}

// NewPAM returns PAM combined with the given distance measure
// (PAM+ED / PAM+cDTW / PAM+SBD in Table 4).
func NewPAM(m dist.Measure) *PAM { return &PAM{Measure: m} }

// Name implements Clusterer.
func (p *PAM) Name() string { return "PAM+" + p.Measure.Name() }

// Deterministic implements Clusterer.
func (p *PAM) Deterministic() bool { return false }

// Cluster implements Clusterer.
func (p *PAM) Cluster(data [][]float64, k int, rng *rand.Rand) (*core.Result, error) {
	n := len(data)
	if n == 0 {
		return nil, core.ErrNoData
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d, n=%d", core.ErrBadK, k, n)
	}
	if rng == nil {
		return nil, errors.New("cluster: PAM requires a random source")
	}
	d := dist.PairwiseMatrixWorkers(p.Measure, data, p.Workers)
	return p.clusterWithMatrix(data, d, k, rng)
}

// ClusterWithMatrix runs PAM on a precomputed dissimilarity matrix, which
// the experiment harness uses to share one matrix across runs.
func (p *PAM) ClusterWithMatrix(data [][]float64, d [][]float64, k int, rng *rand.Rand) (*core.Result, error) {
	if len(data) == 0 {
		return nil, core.ErrNoData
	}
	if k < 1 || k > len(data) {
		return nil, fmt.Errorf("%w: k=%d, n=%d", core.ErrBadK, k, len(data))
	}
	return p.clusterWithMatrix(data, d, k, rng)
}

func (p *PAM) clusterWithMatrix(data [][]float64, d [][]float64, k int, rng *rand.Rand) (*core.Result, error) {
	n := len(data)
	maxIter := p.MaxIterations
	if maxIter <= 0 {
		maxIter = core.DefaultMaxIterations
	}
	medoids := rng.Perm(n)[:k]
	labels := make([]int, n)
	prev := make([]int, n)
	res := &core.Result{}
	for iter := 0; iter < maxIter; iter++ {
		copy(prev, labels)
		// Assignment: nearest medoid, in parallel across points (the
		// medoid scan is ascending with a strict comparison, so labels
		// never depend on the worker count).
		par.For(p.Workers, n, func(i int) {
			best, bestJ := math.Inf(1), 0
			for j, med := range medoids {
				if dd := d[i][med]; dd < best {
					best, bestJ = dd, j
				}
			}
			labels[i] = bestJ
		})
		// Medoid update: the member minimizing within-cluster
		// dissimilarity. The O(|C_j|·n) cost scan parallelizes across
		// candidates; MinIndex breaks ties toward the smaller index,
		// matching the serial scan. An emptied cluster (possible with
		// duplicate points) keeps its medoid.
		for j := range medoids {
			cand, _ := par.MinIndex(p.Workers, n, func(cand int) float64 {
				if labels[cand] != j {
					return math.Inf(1)
				}
				cost := 0.0
				for i := 0; i < n; i++ {
					if labels[i] == j {
						cost += d[cand][i]
					}
				}
				return cost
			})
			if cand >= 0 {
				medoids[j] = cand
			}
		}
		res.Iterations = iter + 1
		if iter > 0 && equalInts(labels, prev) {
			res.Converged = true
			break
		}
	}
	res.Labels = labels
	res.Centroids = make([][]float64, k)
	for j, med := range medoids {
		res.Centroids[j] = append([]float64(nil), data[med]...)
	}
	for i, l := range labels {
		dd := d[i][medoids[l]]
		res.Inertia += dd * dd
	}
	return res, nil
}

func equalInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
