package cluster

import (
	"math"
	"math/rand"
	"testing"

	"kshape/internal/dist"
)

// blobMatrix builds an ED dissimilarity matrix over three well-separated
// 1-D blobs, returning the matrix and the true labels.
func blobMatrix(perBlob int, rng *rand.Rand) ([][]float64, []int) {
	var pts []float64
	var truth []int
	for b := 0; b < 3; b++ {
		center := float64(b) * 100
		for i := 0; i < perBlob; i++ {
			pts = append(pts, center+rng.NormFloat64())
			truth = append(truth, b)
		}
	}
	n := len(pts)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = math.Abs(pts[i] - pts[j])
		}
	}
	return d, truth
}

func TestBuildSwapFindsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, truth := blobMatrix(10, rng)
	medoids, cost := BuildSwap(d, 3)
	if len(medoids) != 3 {
		t.Fatalf("medoids = %v", medoids)
	}
	labels := AssignToMedoids(d, medoids)
	if p := purity(labels, truth, 3); p != 1 {
		t.Errorf("purity = %v, want 1 on separated blobs", p)
	}
	if cost <= 0 {
		t.Errorf("cost = %v", cost)
	}
	// Each medoid must come from a distinct blob.
	seen := map[int]bool{}
	for _, m := range medoids {
		seen[truth[m]] = true
	}
	if len(seen) != 3 {
		t.Errorf("medoids %v do not cover all blobs", medoids)
	}
}

func TestBuildSwapDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, _ := blobMatrix(8, rng)
	m1, c1 := BuildSwap(d, 3)
	m2, c2 := BuildSwap(d, 3)
	if c1 != c2 {
		t.Errorf("costs differ: %v vs %v", c1, c2)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("medoids differ: %v vs %v", m1, m2)
		}
	}
}

func TestBuildSwapNeverWorseThanAlternating(t *testing.T) {
	// BUILD+SWAP is a strictly stronger local search, so its final cost
	// must not exceed the best alternating k-medoids run across seeds.
	rng := rand.New(rand.NewSource(3))
	data, _ := threeBlobs(8, 16, rng)
	d := dist.PairwiseMatrix(dist.EDMeasure{}, data)
	_, swapCost := BuildSwap(d, 3)
	p := NewPAM(dist.EDMeasure{})
	bestAlt := math.Inf(1)
	for seed := int64(0); seed < 5; seed++ {
		res, err := p.ClusterWithMatrix(data, d, 3, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if cost := medoidCost(d, res.Labels, 3); cost < bestAlt {
			bestAlt = cost
		}
	}
	if swapCost > bestAlt+1e-9 {
		t.Errorf("BUILD+SWAP cost %v worse than alternating best %v", swapCost, bestAlt)
	}
}

// medoidCost computes the k-medoids objective of a labeling: for each
// cluster, the best member is elected medoid and members pay their distance
// to it.
func medoidCost(d [][]float64, labels []int, k int) float64 {
	total := 0.0
	for c := 0; c < k; c++ {
		var members []int
		for i, l := range labels {
			if l == c {
				members = append(members, i)
			}
		}
		if len(members) == 0 {
			continue
		}
		best := math.Inf(1)
		for _, cand := range members {
			cost := 0.0
			for _, m := range members {
				cost += d[cand][m]
			}
			if cost < best {
				best = cost
			}
		}
		total += best
	}
	return total
}

func TestBuildSwapPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BuildSwap([][]float64{{0}}, 2)
}

func TestBuildSwapKEqualsN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, _ := blobMatrix(2, rng)
	medoids, cost := BuildSwap(d, len(d))
	if len(medoids) != len(d) {
		t.Fatalf("medoids = %d", len(medoids))
	}
	if cost != 0 {
		t.Errorf("k=n cost = %v, want 0", cost)
	}
}

func TestDendrogramStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data, truth := threeBlobs(6, 16, rng)
	d := dist.PairwiseMatrix(dist.EDMeasure{}, data)
	h := NewHierarchical(AverageLinkage, dist.EDMeasure{})
	dg, err := h.Dendrogram(d)
	if err != nil {
		t.Fatal(err)
	}
	n := len(data)
	if dg.N != n || len(dg.Merges) != n-1 {
		t.Fatalf("dendrogram shape: N=%d merges=%d", dg.N, len(dg.Merges))
	}
	// The final merge must contain all observations.
	if dg.Merges[n-2].Size != n {
		t.Errorf("final merge size = %d, want %d", dg.Merges[n-2].Size, n)
	}
	// Cutting at k=3 must match ClusterWithMatrix labels up to relabeling.
	cut, err := dg.Cut(3)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := h.ClusterWithMatrix(data, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !samePartition(cut, direct.Labels) {
		t.Error("dendrogram cut disagrees with direct clustering")
	}
	if p := purity(cut, truth, 3); p < 0.9 {
		t.Errorf("cut purity = %v", p)
	}
	// Heights of single/complete/average linkage are monotone for these
	// reducible linkages.
	heights := dg.Heights()
	for i := 1; i < len(heights); i++ {
		if heights[i] < heights[i-1]-1e-9 {
			t.Errorf("heights not monotone at %d: %v < %v", i, heights[i], heights[i-1])
		}
	}
}

func TestDendrogramCutExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data, _ := threeBlobs(3, 8, rng)
	d := dist.PairwiseMatrix(dist.EDMeasure{}, data)
	h := NewHierarchical(CompleteLinkage, dist.EDMeasure{})
	dg, err := h.Dendrogram(d)
	if err != nil {
		t.Fatal(err)
	}
	all, err := dg.Cut(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range all {
		if l != 0 {
			t.Fatalf("k=1 cut = %v", all)
		}
	}
	singletons, err := dg.Cut(len(data))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range singletons {
		seen[l] = true
	}
	if len(seen) != len(data) {
		t.Errorf("k=n cut should be singletons: %v", singletons)
	}
	if _, err := dg.Cut(0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := dg.Cut(len(data) + 1); err == nil {
		t.Error("k>n accepted")
	}
}

// samePartition reports whether two labelings induce the same partition.
func samePartition(a, b []int) bool {
	mapping := map[int]int{}
	reverse := map[int]int{}
	for i := range a {
		if m, ok := mapping[a[i]]; ok {
			if m != b[i] {
				return false
			}
		} else {
			if _, ok := reverse[b[i]]; ok {
				return false
			}
			mapping[a[i]] = b[i]
			reverse[b[i]] = a[i]
		}
	}
	return true
}
