// Package cluster implements every clustering baseline of the k-Shape
// paper's evaluation (Section 4, Table 1): the scalable k-means family
// (k-AVG+ED, k-AVG+SBD, k-AVG+DTW, k-DBA, KSC) and the non-scalable methods
// that require a full dissimilarity matrix — PAM (k-medoids), agglomerative
// hierarchical clustering with single/average/complete linkage, and
// normalized spectral clustering — each combinable with ED, cDTW, or SBD.
package cluster

import (
	"log/slog"
	"math/rand"

	"kshape/internal/avg"
	"kshape/internal/core"
	"kshape/internal/dist"
	"kshape/internal/obs"
)

// Clusterer partitions equal-length series into k clusters.
type Clusterer interface {
	// Name returns the identifier used in experiment tables
	// (e.g. "k-AVG+ED", "PAM+cDTW", "H-S+SBD").
	Name() string
	// Cluster partitions data into k clusters. rng drives random
	// initialization; deterministic methods ignore it.
	Cluster(data [][]float64, k int, rng *rand.Rand) (*core.Result, error)
	// Deterministic reports whether repeated runs with different seeds
	// produce identical results (true for hierarchical clustering), which
	// the experiment harness uses to decide how many runs to average.
	Deterministic() bool
}

// Opts carries engine-level controls for clusterers built on the iterative
// refinement engine: the iteration cap and the per-iteration observation
// hook. The zero value means "engine defaults, no observation".
type Opts struct {
	// MaxIterations caps the refinement loop; 0 means the engine default.
	MaxIterations int
	// OnIteration, if non-nil, receives per-iteration statistics
	// (core.Config.OnIteration semantics).
	OnIteration func(obs.IterationStats)
	// Workers bounds the clusterer's parallelism (core.Config.Workers
	// semantics: <= 0 means runtime.NumCPU(), 1 means serial). Results
	// are identical for every value.
	Workers int
	// Logger, if non-nil, receives structured per-iteration records at
	// debug level (core.Config.Logger semantics). Non-iterative methods
	// ignore it.
	Logger *slog.Logger
}

// Iterative is implemented by clusterers whose refinement loop accepts
// engine options. Every Lloyd-style method in this package implements it;
// matrix-based methods (hierarchical, PAM, spectral) do not iterate and
// ignore these controls.
type Iterative interface {
	ClusterOpts(data [][]float64, k int, rng *rand.Rand, opt Opts) (*core.Result, error)
}

// Run clusters data with c, threading opt through when c supports engine
// options. This is the single dispatch point callers should use so that
// instrumentation hooks fire uniformly across methods; for non-iterative
// methods the options are (correctly) inert and OnIteration never fires.
func Run(c Clusterer, data [][]float64, k int, rng *rand.Rand, opt Opts) (*core.Result, error) {
	// Annotate the flight-recorder event stream with the method boundary
	// so a run report's chunk/phase spans can be mapped back to the
	// algorithm that produced them (no-op without an active recorder).
	obs.RecordMark("method:" + c.Name())
	// Bracket the run for the live-progress publisher (no-op without one):
	// the engines publish the per-iteration snapshots in between.
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = core.DefaultMaxIterations
	}
	obs.ProgressBeginRun(c.Name(), len(data), k, maxIter)
	res, err := func() (*core.Result, error) {
		if it, ok := c.(Iterative); ok {
			return it.ClusterOpts(data, k, rng, opt)
		}
		return c.Cluster(data, k, rng)
	}()
	if err == nil {
		obs.ProgressEndRun(res.Converged)
	}
	return res, err
}

// kmeansVariant is a Lloyd-style clusterer with pluggable distance and
// centroid computation — the template every scalable baseline shares.
type kmeansVariant struct {
	label    string
	distance core.DistanceFunc
	centroid core.CentroidFunc
}

// Name implements Clusterer.
func (v kmeansVariant) Name() string { return v.label }

// Deterministic implements Clusterer.
func (v kmeansVariant) Deterministic() bool { return false }

// Cluster implements Clusterer.
func (v kmeansVariant) Cluster(data [][]float64, k int, rng *rand.Rand) (*core.Result, error) {
	return v.ClusterOpts(data, k, rng, Opts{})
}

// ClusterOpts implements Iterative.
func (v kmeansVariant) ClusterOpts(data [][]float64, k int, rng *rand.Rand, opt Opts) (*core.Result, error) {
	return core.Lloyd(data, core.Config{
		K:             k,
		MaxIterations: opt.MaxIterations,
		Distance:      v.distance,
		Centroid:      v.centroid,
		Rand:          rng,
		OnIteration:   opt.OnIteration,
		Workers:       opt.Workers,
		Logger:        opt.Logger,
	})
}

// NewKAvgED returns k-means with Euclidean distance and arithmetic-mean
// centroids — the paper's robust scalable baseline, k-AVG+ED.
func NewKAvgED() Clusterer {
	return kmeansVariant{
		label:    "k-AVG+ED",
		distance: func(c, x []float64) float64 { return dist.ED(c, x) },
		centroid: avg.MeanAverager{}.Average,
	}
}

// NewKAvgSBD returns k-means with SBD assignment but arithmetic-mean
// centroids (k-AVG+SBD in Table 3): a deliberately inadequate pairing that
// shows replacing only the distance measure does not beat k-AVG+ED.
func NewKAvgSBD() Clusterer {
	return kmeansVariant{
		label:    "k-AVG+SBD",
		distance: func(c, x []float64) float64 { return dist.SBDDist(c, x) },
		centroid: avg.MeanAverager{}.Average,
	}
}

// NewKAvgDTW returns k-means with DTW assignment and arithmetic-mean
// centroids (k-AVG+DTW in Table 3).
func NewKAvgDTW() Clusterer {
	return kmeansVariant{
		label:    "k-AVG+DTW",
		distance: func(c, x []float64) float64 { return dist.DTW(c, x) },
		centroid: avg.MeanAverager{}.Average,
	}
}

// NewKDBA returns the k-DBA baseline: DTW assignment with DBA centroid
// refinement (Petitjean et al.), the most robust prior k-means adaptation
// for DTW per Section 2.5.
func NewKDBA() Clusterer {
	a := avg.DBAAverager{Window: -1}
	return kmeansVariant{
		label:    "k-DBA",
		distance: func(c, x []float64) float64 { return dist.DTW(c, x) },
		centroid: a.Average,
	}
}

// NewKSC returns the K-Spectral Centroid baseline (Yang & Leskovec): the
// pairwise scale-and-shift distance with the matrix-decomposition centroid.
func NewKSC() Clusterer {
	return kmeansVariant{
		label: "KSC",
		distance: func(c, x []float64) float64 {
			d, _ := avg.KSCDistance(x, c) // KSC distance normalizes by the data series
			return d
		},
		centroid: avg.KSCCentroid,
	}
}

// NewKShape returns the paper's k-Shape algorithm as a Clusterer, using the
// optimized batched-FFT implementation (core.KShape), which produces
// results identical to the generic Lloyd engine with SBD + shape
// extraction.
func NewKShape() Clusterer { return kshapeClusterer{} }

type kshapeClusterer struct{}

// Name implements Clusterer.
func (kshapeClusterer) Name() string { return "k-Shape" }

// Deterministic implements Clusterer.
func (kshapeClusterer) Deterministic() bool { return false }

// Cluster implements Clusterer.
func (kshapeClusterer) Cluster(data [][]float64, k int, rng *rand.Rand) (*core.Result, error) {
	return core.KShape(data, k, rng)
}

// ClusterOpts implements Iterative.
func (kshapeClusterer) ClusterOpts(data [][]float64, k int, rng *rand.Rand, opt Opts) (*core.Result, error) {
	return core.KShapeRun(data, k, rng, core.KShapeOpts{
		MaxIterations: opt.MaxIterations,
		OnIteration:   opt.OnIteration,
		Workers:       opt.Workers,
		Logger:        opt.Logger,
	})
}

// NewKShapeDTW returns the k-Shape+DTW ablation of Table 3.
func NewKShapeDTW() Clusterer {
	return kmeansVariant{
		label:    "k-Shape+DTW",
		distance: func(c, x []float64) float64 { return dist.DTW(c, x) },
		centroid: avg.ShapeExtraction,
	}
}
