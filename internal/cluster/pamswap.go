package cluster

import (
	"math"
)

// BuildSwap runs the classic deterministic PAM of Kaufman & Rousseeuw on a
// precomputed dissimilarity matrix: the BUILD phase greedily seeds k
// medoids (first the point minimizing total dissimilarity, then the point
// that most reduces the cost), and the SWAP phase repeatedly applies the
// single (medoid, non-medoid) exchange with the largest cost improvement
// until no exchange helps. It returns the medoid indices and the final
// assignment cost.
//
// Compared with the randomized alternating k-medoids used by PAM.Cluster
// (which matches the paper's averaged-over-initializations protocol),
// BUILD+SWAP is deterministic and typically finds slightly better optima at
// O(k(n−k)²) per SWAP pass.
func BuildSwap(d [][]float64, k int) (medoids []int, cost float64) {
	n := len(d)
	if k < 1 || k > n {
		panic("cluster: BuildSwap k out of range")
	}
	isMedoid := make([]bool, n)

	// BUILD: first medoid minimizes the total dissimilarity.
	best, bestIdx := math.Inf(1), 0
	for i := 0; i < n; i++ {
		total := 0.0
		for j := 0; j < n; j++ {
			total += d[i][j]
		}
		if total < best {
			best, bestIdx = total, i
		}
	}
	medoids = append(medoids, bestIdx)
	isMedoid[bestIdx] = true
	// nearest[i] is the distance from i to its closest chosen medoid.
	nearest := make([]float64, n)
	for i := 0; i < n; i++ {
		nearest[i] = d[i][bestIdx]
	}
	for len(medoids) < k {
		bestGain, bestCand := math.Inf(-1), -1
		for cand := 0; cand < n; cand++ {
			if isMedoid[cand] {
				continue
			}
			gain := 0.0
			for j := 0; j < n; j++ {
				if diff := nearest[j] - d[j][cand]; diff > 0 {
					gain += diff
				}
			}
			if gain > bestGain {
				bestGain, bestCand = gain, cand
			}
		}
		medoids = append(medoids, bestCand)
		isMedoid[bestCand] = true
		for j := 0; j < n; j++ {
			if d[j][bestCand] < nearest[j] {
				nearest[j] = d[j][bestCand]
			}
		}
	}

	totalCost := func(meds []int) float64 {
		c := 0.0
		for i := 0; i < n; i++ {
			best := math.Inf(1)
			for _, m := range meds {
				if d[i][m] < best {
					best = d[i][m]
				}
			}
			c += best
		}
		return c
	}

	// SWAP: best-improvement exchanges until a local optimum. Only strictly
	// positive improvements are accepted — a zero-gain swap would cycle.
	cost = totalCost(medoids)
	for {
		bestDelta, bestM, bestC := 1e-12, -1, -1
		for mi, m := range medoids {
			for cand := 0; cand < n; cand++ {
				if isMedoid[cand] {
					continue
				}
				medoids[mi] = cand
				if delta := cost - totalCost(medoids); delta > bestDelta {
					bestDelta, bestM, bestC = delta, mi, cand
				}
				medoids[mi] = m
			}
		}
		if bestM < 0 {
			break
		}
		isMedoid[medoids[bestM]] = false
		isMedoid[bestC] = true
		medoids[bestM] = bestC
		cost -= bestDelta
	}
	return medoids, totalCost(medoids)
}

// AssignToMedoids labels every point with the index (in medoids) of its
// nearest medoid.
func AssignToMedoids(d [][]float64, medoids []int) []int {
	labels := make([]int, len(d))
	for i := range d {
		best, bestJ := math.Inf(1), 0
		for j, m := range medoids {
			if d[i][m] < best {
				best, bestJ = d[i][m], j
			}
		}
		labels[i] = bestJ
	}
	return labels
}
