package cluster

import (
	"math"

	"kshape/internal/par"
)

// BuildSwap runs the classic deterministic PAM of Kaufman & Rousseeuw on a
// precomputed dissimilarity matrix: the BUILD phase greedily seeds k
// medoids (first the point minimizing total dissimilarity, then the point
// that most reduces the cost), and the SWAP phase repeatedly applies the
// single (medoid, non-medoid) exchange with the largest cost improvement
// until no exchange helps. It returns the medoid indices and the final
// assignment cost.
//
// Compared with the randomized alternating k-medoids used by PAM.Cluster
// (which matches the paper's averaged-over-initializations protocol),
// BUILD+SWAP is deterministic and typically finds slightly better optima at
// O(k(n−k)²) per SWAP pass.
func BuildSwap(d [][]float64, k int) (medoids []int, cost float64) {
	return BuildSwapWorkers(d, k, 1)
}

// BuildSwapWorkers is BuildSwap with its cost scans — the BUILD candidate
// gains and the SWAP exchange deltas, the O(n²) and O(k(n−k)²) parts —
// parallelized across candidates (par.Resolve semantics: <= 0 means
// runtime.NumCPU(), 1 means serial). Tie-breaking follows par.MinIndex /
// par.MaxIndex (smallest index), which matches the serial ascending scans,
// so the chosen medoids are identical for every worker count.
func BuildSwapWorkers(d [][]float64, k, workers int) (medoids []int, cost float64) {
	n := len(d)
	if k < 1 || k > n {
		panic("cluster: BuildSwap k out of range")
	}
	isMedoid := make([]bool, n)

	// BUILD: first medoid minimizes the total dissimilarity.
	bestIdx, _ := par.MinIndex(workers, n, func(i int) float64 {
		total := 0.0
		for j := 0; j < n; j++ {
			total += d[i][j]
		}
		return total
	})
	medoids = append(medoids, bestIdx)
	isMedoid[bestIdx] = true
	// nearest[i] is the distance from i to its closest chosen medoid.
	nearest := make([]float64, n)
	for i := 0; i < n; i++ {
		nearest[i] = d[i][bestIdx]
	}
	for len(medoids) < k {
		bestCand, _ := par.MaxIndex(workers, n, func(cand int) float64 {
			if isMedoid[cand] {
				return math.Inf(-1)
			}
			gain := 0.0
			for j := 0; j < n; j++ {
				if diff := nearest[j] - d[j][cand]; diff > 0 {
					gain += diff
				}
			}
			return gain
		})
		medoids = append(medoids, bestCand)
		isMedoid[bestCand] = true
		for j := 0; j < n; j++ {
			if d[j][bestCand] < nearest[j] {
				nearest[j] = d[j][bestCand]
			}
		}
	}

	totalCost := func(meds []int) float64 {
		c := 0.0
		for i := 0; i < n; i++ {
			best := math.Inf(1)
			for _, m := range meds {
				if d[i][m] < best {
					best = d[i][m]
				}
			}
			c += best
		}
		return c
	}
	// swapCost is totalCost with the medoid at position mi replaced by
	// cand, computed without mutating the shared medoid slice so that
	// exchange deltas can be evaluated concurrently.
	swapCost := func(mi, cand int) float64 {
		c := 0.0
		for i := 0; i < n; i++ {
			best := math.Inf(1)
			for pos, m := range medoids {
				if pos == mi {
					m = cand
				}
				if d[i][m] < best {
					best = d[i][m]
				}
			}
			c += best
		}
		return c
	}

	// SWAP: best-improvement exchanges until a local optimum. Only strictly
	// positive improvements are accepted — a zero-gain swap would cycle.
	// All k·(n−k) exchange deltas of a pass are evaluated in parallel over
	// the flattened (medoid, candidate) pair index; the smallest-index tie
	// break reproduces the serial medoid-major/candidate-minor scan.
	cost = totalCost(medoids)
	for {
		pair, delta := par.MaxIndex(workers, len(medoids)*n, func(p int) float64 {
			mi, cand := p/n, p%n
			if isMedoid[cand] {
				return math.Inf(-1)
			}
			return cost - swapCost(mi, cand)
		})
		if pair < 0 || delta <= 1e-12 {
			break
		}
		bestM, bestC := pair/n, pair%n
		isMedoid[medoids[bestM]] = false
		isMedoid[bestC] = true
		medoids[bestM] = bestC
		cost -= delta
	}
	return medoids, totalCost(medoids)
}

// AssignToMedoids labels every point with the index (in medoids) of its
// nearest medoid.
func AssignToMedoids(d [][]float64, medoids []int) []int {
	labels := make([]int, len(d))
	for i := range d {
		best, bestJ := math.Inf(1), 0
		for j, m := range medoids {
			if d[i][m] < best {
				best, bestJ = d[i][m], j
			}
		}
		labels[i] = bestJ
	}
	return labels
}
