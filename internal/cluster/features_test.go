package cluster

import (
	"math"
	"math/rand"
	"testing"

	"kshape/internal/ts"
)

func TestFeaturesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	f := Features(x)
	if len(f) != 10 {
		t.Fatalf("features = %d, want 10", len(f))
	}
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("feature %d non-finite: %v", i, v)
		}
	}
	if empty := Features(nil); len(empty) != 10 {
		t.Errorf("empty-series features = %d", len(empty))
	}
}

func TestFeaturesDiscriminate(t *testing.T) {
	// A smooth sine and white noise must differ in spectral entropy and
	// lag-1 autocorrelation.
	m := 128
	rng := rand.New(rand.NewSource(2))
	sine := make([]float64, m)
	noise := make([]float64, m)
	for i := range sine {
		sine[i] = math.Sin(2 * math.Pi * 4 * float64(i) / float64(m))
		noise[i] = rng.NormFloat64()
	}
	fs := Features(sine)
	fn := Features(noise)
	const (
		idxACF1    = 4
		idxEntropy = 9
	)
	if fs[idxACF1] <= fn[idxACF1] {
		t.Errorf("sine acf1 %v should exceed noise acf1 %v", fs[idxACF1], fn[idxACF1])
	}
	if fs[idxEntropy] >= fn[idxEntropy] {
		t.Errorf("sine spectral entropy %v should be below noise %v", fs[idxEntropy], fn[idxEntropy])
	}
}

func TestFeaturesTrendSlope(t *testing.T) {
	x := make([]float64, 20)
	for i := range x {
		x[i] = 2 * float64(i)
	}
	f := Features(x)
	const idxSlope = 6
	if math.Abs(f[idxSlope]-2) > 1e-9 {
		t.Errorf("slope feature = %v, want 2", f[idxSlope])
	}
}

func TestFeatureMatrixColumnsStandardized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([][]float64, 20)
	for i := range data {
		data[i] = make([]float64, 32)
		for j := range data[i] {
			data[i][j] = rng.NormFloat64() * float64(i+1)
		}
	}
	feats := FeatureMatrix(data)
	for j := 0; j < len(feats[0]); j++ {
		col := make([]float64, len(feats))
		for i := range feats {
			col[i] = feats[i][j]
		}
		if mu := ts.Mean(col); math.Abs(mu) > 1e-9 {
			t.Errorf("feature %d mean = %v", j, mu)
		}
		sd := ts.Std(col)
		if sd != 0 && math.Abs(sd-1) > 1e-9 {
			t.Errorf("feature %d std = %v", j, sd)
		}
	}
	if out := FeatureMatrix(nil); len(out) != 0 {
		t.Error("empty input should give empty output")
	}
}

func TestFeatureBasedClustersGlobalStructure(t *testing.T) {
	// Classes differing in global statistics (periodic vs noisy vs
	// trending) are exactly what the feature baseline can separate.
	rng := rand.New(rand.NewSource(4))
	m := 64
	var data [][]float64
	var truth []int
	for c := 0; c < 3; c++ {
		for i := 0; i < 12; i++ {
			x := make([]float64, m)
			for j := range x {
				switch c {
				case 0:
					x[j] = math.Sin(2*math.Pi*3*float64(j)/float64(m)) + 0.05*rng.NormFloat64()
				case 1:
					x[j] = rng.NormFloat64()
				default:
					x[j] = 0.1*float64(j) + 0.05*rng.NormFloat64()
				}
			}
			data = append(data, ts.ZNormalize(x))
			truth = append(truth, c)
		}
	}
	c := NewFeatureBased()
	if c.Name() != "Features+k-means" || c.Deterministic() {
		t.Error("metadata wrong")
	}
	if p := bestPurity(t, c, data, truth, 3, 5); p < 0.85 {
		t.Errorf("purity = %v", p)
	}
}

func TestFeatureBasedDropsCentroids(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data, _ := threeBlobs(5, 16, rng)
	res, err := NewFeatureBased().Cluster(data, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids != nil {
		t.Error("feature-space centroids must not be exposed as series")
	}
}
