package cluster

import (
	"math/rand"
	"testing"

	"kshape/internal/dist"
	"kshape/internal/ts"
)

// The non-scalable methods (PAM, spectral) parallelize their matrix scans
// through internal/par; these tests pin the layer's guarantee — identical
// output for every worker count under a fixed seed — at the clusterer level.

func gaussianBlobs(nPerBlob, m int, rng *rand.Rand) [][]float64 {
	centers := [][]float64{make([]float64, m), make([]float64, m), make([]float64, m)}
	for j := 0; j < m; j++ {
		centers[1][j] = 3
		centers[2][j] = float64(j%5) - 2
	}
	var data [][]float64
	for _, c := range centers {
		for i := 0; i < nPerBlob; i++ {
			x := make([]float64, m)
			for j := range x {
				x[j] = c[j] + 0.3*rng.NormFloat64()
			}
			data = append(data, ts.ZNormalize(x))
		}
	}
	return data
}

func TestPAMDeterministicAcrossWorkers(t *testing.T) {
	data := gaussianBlobs(12, 24, rand.New(rand.NewSource(2)))
	run := func(workers int) ([]int, float64) {
		p := NewPAM(dist.SBDMeasure{})
		p.Workers = workers
		res, err := p.Cluster(data, 3, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Labels, res.Inertia
	}
	wantLabels, wantInertia := run(1)
	for _, w := range []int{2, 8} {
		labels, inertia := run(w)
		if inertia != wantInertia {
			t.Errorf("workers=%d: inertia %v, want %v (must be bit-identical)", w, inertia, wantInertia)
		}
		for i := range wantLabels {
			if labels[i] != wantLabels[i] {
				t.Fatalf("workers=%d: label[%d] = %d, want %d", w, i, labels[i], wantLabels[i])
			}
		}
	}
}

func TestBuildSwapDeterministicAcrossWorkers(t *testing.T) {
	data := gaussianBlobs(10, 16, rand.New(rand.NewSource(5)))
	d := dist.PairwiseMatrixWorkers(dist.EDMeasure{}, data, 1)
	wantMedoids, wantCost := BuildSwapWorkers(d, 3, 1)
	for _, w := range []int{2, 8} {
		medoids, cost := BuildSwapWorkers(d, 3, w)
		if cost != wantCost {
			t.Errorf("workers=%d: cost %v, want %v (must be bit-identical)", w, cost, wantCost)
		}
		if len(medoids) != len(wantMedoids) {
			t.Fatalf("workers=%d: %d medoids, want %d", w, len(medoids), len(wantMedoids))
		}
		for i := range wantMedoids {
			if medoids[i] != wantMedoids[i] {
				t.Fatalf("workers=%d: medoid[%d] = %d, want %d", w, i, medoids[i], wantMedoids[i])
			}
		}
	}
	// BuildSwap is the documented serial entry point.
	medoids, cost := BuildSwap(d, 3)
	if cost != wantCost {
		t.Errorf("BuildSwap: cost %v, want %v", cost, wantCost)
	}
	for i := range wantMedoids {
		if medoids[i] != wantMedoids[i] {
			t.Fatalf("BuildSwap: medoid[%d] = %d, want %d", i, medoids[i], wantMedoids[i])
		}
	}
}

func TestSpectralEmbedDeterministicAcrossWorkers(t *testing.T) {
	data := gaussianBlobs(8, 20, rand.New(rand.NewSource(3)))
	d := dist.PairwiseMatrixWorkers(dist.SBDMeasure{}, data, 1)
	embed := func(workers int) [][]float64 {
		s := NewSpectral(dist.SBDMeasure{})
		s.Workers = workers
		emb, err := s.Embed(d, 3)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return emb
	}
	want := embed(1)
	for _, w := range []int{2, 8} {
		emb := embed(w)
		for i := range want {
			for j := range want[i] {
				if emb[i][j] != want[i][j] {
					t.Fatalf("workers=%d: embedding[%d][%d] = %v, want %v (must be bit-identical)",
						w, i, j, emb[i][j], want[i][j])
				}
			}
		}
	}
}

func TestSpectralClusterDeterministicAcrossWorkers(t *testing.T) {
	data := gaussianBlobs(8, 20, rand.New(rand.NewSource(4)))
	run := func(workers int) []int {
		s := NewSpectral(dist.EDMeasure{})
		s.Workers = workers
		res, err := s.Cluster(data, 3, rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Labels
	}
	want := run(1)
	for _, w := range []int{2, 8} {
		labels := run(w)
		for i := range want {
			if labels[i] != want[i] {
				t.Fatalf("workers=%d: label[%d] = %d, want %d", w, i, labels[i], want[i])
			}
		}
	}
}

// TestRunOptsWorkersDeterministic drives the shared Run entry point — the
// path the public API uses — with every registered iterative method cheap
// enough for a unit test.
func TestRunOptsWorkersDeterministic(t *testing.T) {
	data := gaussianBlobs(8, 24, rand.New(rand.NewSource(8)))
	for _, c := range []Clusterer{NewKShape(), NewKAvgED(), NewKAvgSBD()} {
		run := func(workers int) []int {
			res, err := Run(c, data, 3, rand.New(rand.NewSource(1)), Opts{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", c.Name(), workers, err)
			}
			return res.Labels
		}
		want := run(1)
		for _, w := range []int{2, 8} {
			labels := run(w)
			for i := range want {
				if labels[i] != want[i] {
					t.Fatalf("%s workers=%d: label[%d] = %d, want %d", c.Name(), w, i, labels[i], want[i])
				}
			}
		}
	}
}
