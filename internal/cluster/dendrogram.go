package cluster

import (
	"fmt"
	"math"

	"kshape/internal/core"
)

// Merge records one agglomeration step of a dendrogram. Cluster ids follow
// the scipy/R convention: ids 0..n-1 are the original observations; the
// merge recorded at Merges[t] creates cluster id n+t.
type Merge struct {
	// A and B are the merged cluster ids.
	A, B int
	// Height is the linkage distance at which the merge happened.
	Height float64
	// Size is the number of observations in the new cluster.
	Size int
}

// Dendrogram is the full merge tree of an agglomerative clustering over n
// observations (n-1 merges).
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Dendrogram runs the complete agglomeration (down to one cluster) on a
// precomputed dissimilarity matrix and returns the merge tree, which can be
// cut at any k with Cut. This exposes the structure that Cluster's fixed-k
// interface discards, e.g. for choosing k by inspecting merge heights.
func (h *Hierarchical) Dendrogram(d [][]float64) (*Dendrogram, error) {
	n := len(d)
	if n == 0 {
		return nil, core.ErrNoData
	}
	w := make([][]float64, n)
	for i := range w {
		w[i] = append([]float64(nil), d[i]...)
	}
	size := make([]int, n)
	active := make([]bool, n)
	id := make([]int, n) // dendrogram id of each live row
	for i := 0; i < n; i++ {
		size[i] = 1
		active[i] = true
		id[i] = i
	}
	dg := &Dendrogram{N: n}
	for t := 0; t < n-1; t++ {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if active[j] && w[i][j] < best {
					best, bi, bj = w[i][j], i, j
				}
			}
		}
		ni, nj := float64(size[bi]), float64(size[bj])
		for x := 0; x < n; x++ {
			if !active[x] || x == bi || x == bj {
				continue
			}
			var nd float64
			switch h.Linkage {
			case SingleLinkage:
				nd = math.Min(w[bi][x], w[bj][x])
			case CompleteLinkage:
				nd = math.Max(w[bi][x], w[bj][x])
			case AverageLinkage:
				nd = (ni*w[bi][x] + nj*w[bj][x]) / (ni + nj)
			default:
				return nil, fmt.Errorf("cluster: unknown linkage %d", int(h.Linkage))
			}
			w[bi][x] = nd
			w[x][bi] = nd
		}
		dg.Merges = append(dg.Merges, Merge{
			A:      id[bi],
			B:      id[bj],
			Height: best,
			Size:   size[bi] + size[bj],
		})
		size[bi] += size[bj]
		active[bj] = false
		id[bi] = n + t
	}
	return dg, nil
}

// Cut returns the labels produced by stopping the agglomeration when k
// clusters remain — equivalent to cutting the tree just below the height of
// the (n-k)th merge. Labels are compacted to [0, k).
func (dg *Dendrogram) Cut(k int) ([]int, error) {
	n := dg.N
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d, n=%d", core.ErrBadK, k, n)
	}
	parent := make([]int, n+len(dg.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	// Apply the first n-k merges.
	for t := 0; t < n-k; t++ {
		m := dg.Merges[t]
		newID := n + t
		parent[find(m.A)] = newID
		parent[find(m.B)] = newID
	}
	labels := make([]int, n)
	compact := map[int]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		l, ok := compact[r]
		if !ok {
			l = len(compact)
			compact[r] = l
		}
		labels[i] = l
	}
	return labels, nil
}

// Heights returns the merge heights in order, useful for picking k by the
// largest height gap.
func (dg *Dendrogram) Heights() []float64 {
	out := make([]float64, len(dg.Merges))
	for i, m := range dg.Merges {
		out[i] = m.Height
	}
	return out
}
