package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"kshape/internal/core"
	"kshape/internal/dist"
)

// Linkage selects the agglomerative merge criterion (Section 2.4).
type Linkage int

const (
	// SingleLinkage merges on the minimum pairwise distance between
	// clusters ("H-S" in Table 4).
	SingleLinkage Linkage = iota
	// AverageLinkage merges on the mean pairwise distance ("H-A").
	AverageLinkage
	// CompleteLinkage merges on the maximum pairwise distance ("H-C").
	CompleteLinkage
)

// String returns the table prefix for the linkage.
func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "H-S"
	case AverageLinkage:
		return "H-A"
	case CompleteLinkage:
		return "H-C"
	}
	return fmt.Sprintf("Linkage(%d)", int(l))
}

// Hierarchical is agglomerative hierarchical clustering: it starts from
// singleton clusters and repeatedly merges the closest pair under the
// linkage criterion until k clusters remain — equivalent to cutting the
// dendrogram at the minimum height that yields k clusters, as the paper's
// experimental setup does. The method is deterministic.
//
// Inter-cluster distances are maintained with the Lance-Williams update in
// O(n²) space; each merge rescans the active pairs, so the agglomeration is
// O(n³) worst-case with a small constant — immaterial next to the O(n²)
// distance-measure evaluations that dominate for cDTW/SBD.
type Hierarchical struct {
	Linkage Linkage
	Measure dist.Measure
}

// NewHierarchical returns hierarchical clustering with the given linkage
// and distance measure (e.g. H-C+SBD).
func NewHierarchical(l Linkage, m dist.Measure) *Hierarchical {
	return &Hierarchical{Linkage: l, Measure: m}
}

// Name implements Clusterer.
func (h *Hierarchical) Name() string { return h.Linkage.String() + "+" + h.Measure.Name() }

// Deterministic implements Clusterer.
func (h *Hierarchical) Deterministic() bool { return true }

// Cluster implements Clusterer. rng is ignored (the method is deterministic).
func (h *Hierarchical) Cluster(data [][]float64, k int, rng *rand.Rand) (*core.Result, error) {
	if len(data) == 0 {
		return nil, core.ErrNoData
	}
	if k < 1 || k > len(data) {
		return nil, fmt.Errorf("%w: k=%d, n=%d", core.ErrBadK, k, len(data))
	}
	d := dist.PairwiseMatrix(h.Measure, data)
	return h.ClusterWithMatrix(data, d, k)
}

// ClusterWithMatrix runs the agglomeration on a precomputed dissimilarity
// matrix (shared across methods by the experiment harness). The matrix is
// not modified.
func (h *Hierarchical) ClusterWithMatrix(data [][]float64, d [][]float64, k int) (*core.Result, error) {
	n := len(data)
	if n == 0 {
		return nil, core.ErrNoData
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d, n=%d", core.ErrBadK, k, n)
	}
	// Working inter-cluster distance matrix and live-cluster bookkeeping.
	w := make([][]float64, n)
	for i := range w {
		w[i] = append([]float64(nil), d[i]...)
	}
	size := make([]int, n)
	active := make([]bool, n)
	parentOf := make([]int, n) // for label extraction via union-find
	for i := 0; i < n; i++ {
		size[i] = 1
		active[i] = true
		parentOf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parentOf[x] != x {
			parentOf[x] = find(parentOf[x])
		}
		return parentOf[x]
	}
	remaining := n
	for remaining > k {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if w[i][j] < best {
					best, bi, bj = w[i][j], i, j
				}
			}
		}
		// Merge bj into bi with the Lance-Williams update.
		ni, nj := float64(size[bi]), float64(size[bj])
		for x := 0; x < n; x++ {
			if !active[x] || x == bi || x == bj {
				continue
			}
			var nd float64
			switch h.Linkage {
			case SingleLinkage:
				nd = math.Min(w[bi][x], w[bj][x])
			case CompleteLinkage:
				nd = math.Max(w[bi][x], w[bj][x])
			case AverageLinkage:
				nd = (ni*w[bi][x] + nj*w[bj][x]) / (ni + nj)
			default:
				return nil, fmt.Errorf("cluster: unknown linkage %d", int(h.Linkage))
			}
			w[bi][x] = nd
			w[x][bi] = nd
		}
		size[bi] += size[bj]
		active[bj] = false
		parentOf[find(bj)] = find(bi)
		remaining--
	}
	// Compact the surviving roots into labels 0..k-1.
	rootLabel := map[int]int{}
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		r := find(i)
		l, ok := rootLabel[r]
		if !ok {
			l = len(rootLabel)
			rootLabel[r] = l
		}
		labels[i] = l
	}
	res := &core.Result{Labels: labels, Converged: true, Iterations: n - remaining}
	// Report per-cluster arithmetic means as representatives for inspection.
	if m := len(data[0]); m > 0 {
		sums := make([][]float64, k)
		counts := make([]int, k)
		for j := range sums {
			sums[j] = make([]float64, m)
		}
		for i, l := range labels {
			counts[l]++
			for t, v := range data[i] {
				sums[l][t] += v
			}
		}
		for j := range sums {
			if counts[j] > 0 {
				for t := range sums[j] {
					sums[j][t] /= float64(counts[j])
				}
			}
		}
		res.Centroids = sums
	}
	return res, nil
}
