package cluster

import (
	"math"
	"math/rand"
	"testing"

	"kshape/internal/dist"
	"kshape/internal/ts"
)

// threeBlobs builds an easily separable Euclidean dataset: three classes of
// constant-ish level. Suitable for any distance measure.
func threeBlobs(nPerClass, m int, rng *rand.Rand) ([][]float64, []int) {
	var data [][]float64
	var labels []int
	protos := [][]float64{}
	for c := 0; c < 3; c++ {
		p := make([]float64, m)
		for i := range p {
			p[i] = math.Sin(2*math.Pi*float64(i)/float64(m) + float64(c)*2)
			if c == 1 {
				p[i] = math.Abs(p[i])
			}
		}
		protos = append(protos, p)
	}
	for c, proto := range protos {
		for i := 0; i < nPerClass; i++ {
			x := make([]float64, m)
			for j := range x {
				x[j] = proto[j] + 0.1*rng.NormFloat64()
			}
			data = append(data, ts.ZNormalize(x))
			labels = append(labels, c)
		}
	}
	return data, labels
}

func purity(pred, truth []int, k int) float64 {
	counts := make([]map[int]int, k)
	for i := range counts {
		counts[i] = map[int]int{}
	}
	for i, p := range pred {
		counts[p][truth[i]]++
	}
	correct := 0
	for _, c := range counts {
		best := 0
		for _, v := range c {
			if v > best {
				best = v
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(pred))
}

func TestAllClusterersSeparateEasyData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data, truth := threeBlobs(15, 48, rng)
	clusterers := []Clusterer{
		NewKAvgED(),
		NewKAvgSBD(),
		NewKShape(),
		NewPAM(dist.EDMeasure{}),
		NewPAM(dist.SBDMeasure{}),
		NewHierarchical(CompleteLinkage, dist.EDMeasure{}),
		NewHierarchical(AverageLinkage, dist.SBDMeasure{}),
		NewSpectral(dist.EDMeasure{}),
		NewSpectral(dist.SBDMeasure{}),
	}
	for _, c := range clusterers {
		t.Run(c.Name(), func(t *testing.T) {
			if p := bestPurity(t, c, data, truth, 3, 5); p < 0.85 {
				t.Errorf("%s purity = %v, want >= 0.85", c.Name(), p)
			}
		})
	}
}

// bestPurity runs a (possibly randomized) clusterer over several seeds and
// returns the best purity — mirroring the paper's averaging over random
// initializations for partitional and spectral methods.
func bestPurity(t *testing.T, c Clusterer, data [][]float64, truth []int, k, seeds int) float64 {
	t.Helper()
	best := 0.0
	for s := 0; s < seeds; s++ {
		res, err := c.Cluster(data, k, rand.New(rand.NewSource(int64(s+1))))
		if err != nil {
			t.Fatal(err)
		}
		if p := purity(res.Labels, truth, k); p > best {
			best = p
		}
		if c.Deterministic() {
			break
		}
	}
	return best
}

func TestSlowClusterersSeparateEasyData(t *testing.T) {
	if testing.Short() {
		t.Skip("DTW-based clusterers are slow")
	}
	rng := rand.New(rand.NewSource(2))
	data, truth := threeBlobs(8, 32, rng)
	clusterers := []Clusterer{
		NewKDBA(),
		NewKSC(),
		NewKAvgDTW(),
		NewKShapeDTW(),
		NewPAM(dist.NewCDTWFrac("cDTW5", 0.05)),
		NewHierarchical(CompleteLinkage, dist.NewCDTWFrac("cDTW5", 0.05)),
		NewSpectral(dist.NewCDTWFrac("cDTW5", 0.05)),
	}
	for _, c := range clusterers {
		t.Run(c.Name(), func(t *testing.T) {
			if p := bestPurity(t, c, data, truth, 3, 5); p < 0.7 {
				t.Errorf("%s purity = %v, want >= 0.7", c.Name(), p)
			}
		})
	}
}

func TestClustererNames(t *testing.T) {
	want := map[string]Clusterer{
		"k-AVG+ED":    NewKAvgED(),
		"k-AVG+SBD":   NewKAvgSBD(),
		"k-AVG+DTW":   NewKAvgDTW(),
		"k-DBA":       NewKDBA(),
		"KSC":         NewKSC(),
		"k-Shape":     NewKShape(),
		"k-Shape+DTW": NewKShapeDTW(),
		"PAM+ED":      NewPAM(dist.EDMeasure{}),
		"PAM+SBD":     NewPAM(dist.SBDMeasure{}),
		"H-S+ED":      NewHierarchical(SingleLinkage, dist.EDMeasure{}),
		"H-A+ED":      NewHierarchical(AverageLinkage, dist.EDMeasure{}),
		"H-C+SBD":     NewHierarchical(CompleteLinkage, dist.SBDMeasure{}),
		"S+ED":        NewSpectral(dist.EDMeasure{}),
	}
	for name, c := range want {
		if c.Name() != name {
			t.Errorf("Name = %q, want %q", c.Name(), name)
		}
	}
}

func TestDeterministicFlags(t *testing.T) {
	if NewKShape().Deterministic() {
		t.Error("k-Shape should be non-deterministic (random init)")
	}
	if !NewHierarchical(SingleLinkage, dist.EDMeasure{}).Deterministic() {
		t.Error("hierarchical should be deterministic")
	}
	if NewPAM(dist.EDMeasure{}).Deterministic() || NewSpectral(dist.EDMeasure{}).Deterministic() {
		t.Error("PAM/spectral should be non-deterministic")
	}
}

func TestHierarchicalDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data, _ := threeBlobs(10, 24, rng)
	h := NewHierarchical(AverageLinkage, dist.EDMeasure{})
	a, err := h.Cluster(data, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Cluster(data, 3, rand.New(rand.NewSource(999)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("hierarchical clustering not deterministic across seeds")
		}
	}
}

func TestHierarchicalSingleLinkageChaining(t *testing.T) {
	// Single linkage is known to chain: a bridge point connecting two blobs
	// pulls them into one cluster while complete linkage resists. Build two
	// 1-D-ish blobs with a chain of bridge points.
	m := 8
	mk := func(level float64) []float64 {
		x := make([]float64, m)
		for i := range x {
			x[i] = level
		}
		return x
	}
	var data [][]float64
	for i := 0; i < 5; i++ {
		data = append(data, mk(float64(i)*0.1)) // blob A around 0
	}
	for i := 0; i < 5; i++ {
		data = append(data, mk(10+float64(i)*0.1)) // blob B around 10
	}
	// Bridge at 5 plus an outlier at 30.
	data = append(data, mk(5))
	data = append(data, mk(30))
	hs := NewHierarchical(SingleLinkage, dist.EDMeasure{})
	res, err := hs.Cluster(data, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// With single linkage the outlier forms its own cluster and everything
	// else chains together.
	if res.Labels[len(data)-1] == res.Labels[0] {
		t.Error("single linkage should isolate the far outlier")
	}
	if res.Labels[0] != res.Labels[5] {
		t.Error("single linkage should chain the bridged blobs together")
	}
}

func TestHierarchicalK1AndKn(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data, _ := threeBlobs(4, 16, rng)
	h := NewHierarchical(CompleteLinkage, dist.EDMeasure{})
	res, err := h.Cluster(data, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatal("k=1 should give one cluster")
		}
	}
	res, err = h.Cluster(data, len(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != len(data) {
		t.Errorf("k=n should give singletons, got %d clusters", len(seen))
	}
}

func TestHierarchicalErrors(t *testing.T) {
	h := NewHierarchical(CompleteLinkage, dist.EDMeasure{})
	if _, err := h.Cluster(nil, 1, nil); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := h.Cluster([][]float64{{1}}, 2, nil); err == nil {
		t.Error("k > n accepted")
	}
}

func TestPAMCentroidsAreMedoids(t *testing.T) {
	// PAM centroids must be actual members of the dataset.
	rng := rand.New(rand.NewSource(5))
	data, _ := threeBlobs(10, 16, rng)
	res, err := NewPAM(dist.EDMeasure{}).Cluster(data, 3, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range res.Centroids {
		found := false
		for _, x := range data {
			same := true
			for i := range x {
				if x[i] != c[i] {
					same = false
					break
				}
			}
			if same {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("centroid %d is not a dataset member", j)
		}
	}
}

func TestPAMErrors(t *testing.T) {
	p := NewPAM(dist.EDMeasure{})
	if _, err := p.Cluster(nil, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := p.Cluster([][]float64{{1}}, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := p.Cluster([][]float64{{1}}, 1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestPAMClusterWithMatrixMatchesCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data, _ := threeBlobs(8, 16, rng)
	p := NewPAM(dist.EDMeasure{})
	d := dist.PairwiseMatrix(dist.EDMeasure{}, data)
	a, err := p.Cluster(data, 3, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.ClusterWithMatrix(data, d, 3, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("matrix path and direct path disagree for the same seed")
		}
	}
}

func TestSpectralEmbedProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data, _ := threeBlobs(8, 16, rng)
	s := NewSpectral(dist.EDMeasure{})
	d := dist.PairwiseMatrix(dist.EDMeasure{}, data)
	emb, err := s.Embed(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb) != len(data) || len(emb[0]) != 3 {
		t.Fatalf("embedding shape %dx%d", len(emb), len(emb[0]))
	}
	for i, row := range emb {
		nrm := 0.0
		for _, v := range row {
			nrm += v * v
		}
		if math.Abs(nrm-1) > 1e-8 {
			t.Errorf("row %d norm = %v, want 1", i, math.Sqrt(nrm))
		}
	}
}

func TestSpectralIdenticalPoints(t *testing.T) {
	// Degenerate case: all points identical => sigma = 0 path.
	data := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	s := NewSpectral(dist.EDMeasure{})
	res, err := s.Cluster(data, 2, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 3 {
		t.Errorf("labels = %v", res.Labels)
	}
}

func TestSpectralErrors(t *testing.T) {
	s := NewSpectral(dist.EDMeasure{})
	if _, err := s.Cluster(nil, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := s.Cluster([][]float64{{1}}, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := s.Cluster([][]float64{{1}}, 1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestMedianOffDiagonal(t *testing.T) {
	d := [][]float64{
		{0, 1, 2},
		{1, 0, 3},
		{2, 3, 0},
	}
	if got := medianOffDiagonal(d); got != 2 {
		t.Errorf("median = %v, want 2", got)
	}
	if got := medianOffDiagonal([][]float64{{0}}); got != 0 {
		t.Errorf("single-point median = %v, want 0", got)
	}
}

func TestLinkageString(t *testing.T) {
	if SingleLinkage.String() != "H-S" || AverageLinkage.String() != "H-A" || CompleteLinkage.String() != "H-C" {
		t.Error("linkage names wrong")
	}
	if Linkage(42).String() != "Linkage(42)" {
		t.Error("unknown linkage string")
	}
}
