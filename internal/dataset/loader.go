package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"kshape/internal/ts"
)

// LoadUCRFile reads one split of a UCR-format dataset: one series per line,
// the class label in the first field, values in the remaining fields,
// separated by commas, tabs, or spaces. Non-integer labels are rejected.
// All series must share one length. Values are returned as-is; call
// ts.ZNormalizeAll to apply the archive's normalization convention.
func LoadUCRFile(path string) ([]ts.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	series, err := ParseUCR(f)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	return series, nil
}

// ParseUCR parses UCR-format content from r (see LoadUCRFile).
func ParseUCR(r io.Reader) ([]ts.Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var out []ts.Series
	length := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := splitUCRLine(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("line %d: need a label and at least one value", lineNo)
		}
		label, err := parseLabel(fields[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		values := make([]float64, len(fields)-1)
		for i, fstr := range fields[1:] {
			v, err := strconv.ParseFloat(fstr, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad value %q: %w", lineNo, fstr, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("line %d: non-finite value %q", lineNo, fstr)
			}
			values[i] = v
		}
		if length == -1 {
			length = len(values)
		} else if len(values) != length {
			return nil, fmt.Errorf("line %d: length %d, want %d", lineNo, len(values), length)
		}
		out = append(out, ts.NewLabeled(values, label))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no series found")
	}
	return out, nil
}

// LoadUCRDataset loads a train/test pair into a Dataset, inferring K from
// the distinct labels across both splits.
func LoadUCRDataset(name, trainPath, testPath string) (Dataset, error) {
	train, err := LoadUCRFile(trainPath)
	if err != nil {
		return Dataset{}, err
	}
	test, err := LoadUCRFile(testPath)
	if err != nil {
		return Dataset{}, err
	}
	if train[0].Len() != test[0].Len() {
		return Dataset{}, fmt.Errorf("dataset: train length %d != test length %d", train[0].Len(), test[0].Len())
	}
	labels := map[int]bool{}
	for _, s := range train {
		labels[s.Label] = true
	}
	for _, s := range test {
		labels[s.Label] = true
	}
	return Dataset{
		Name:  name,
		K:     len(labels),
		M:     train[0].Len(),
		Train: train,
		Test:  test,
	}, nil
}

func splitUCRLine(line string) []string {
	if strings.ContainsRune(line, ',') {
		parts := strings.Split(line, ",")
		out := parts[:0]
		for _, p := range parts {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	return strings.Fields(line)
}

func parseLabel(s string) (int, error) {
	// UCR labels are integers, but some files store them as floats ("1.0").
	if v, err := strconv.Atoi(s); err == nil {
		return v, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad label %q", s)
	}
	v := int(f)
	//lint:ignore floatcmp exact integer-valuedness test of a parsed class label
	if float64(v) != f {
		return 0, fmt.Errorf("non-integer label %q", s)
	}
	return v, nil
}
