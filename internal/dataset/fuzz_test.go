// Fuzz target for the UCR parser: arbitrary bytes must never panic the
// loader, and anything it accepts must survive a render/reparse round trip
// bit-for-bit.
package dataset_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"kshape/internal/dataset"
)

func FuzzUCRLoader(f *testing.F) {
	f.Add([]byte("1,0.5,1.5,2.5\n2,3.0,2.0,1.0\n"))
	f.Add([]byte("1\t0.5\t1.5\n2\t2.5\t3.5\n"))
	f.Add([]byte("1.0 2 3 4\n"))
	f.Add([]byte("-1,1e300,-2.5e-10\n"))
	f.Add([]byte("1,NaN,2\n"))
	f.Add([]byte("1,2,3\n4,5\n")) // ragged
	f.Add([]byte(""))
	f.Add([]byte("label,1,2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		series, err := dataset.ParseUCR(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are what the target hunts
		}
		if len(series) == 0 {
			t.Fatal("ParseUCR returned no series and no error")
		}
		m := series[0].Len()
		for i, s := range series {
			if s.Len() != m {
				t.Fatalf("series %d length %d, others %d — parser accepted ragged input", i, s.Len(), m)
			}
			if s.Len() == 0 {
				t.Fatalf("series %d is empty", i)
			}
		}
		// Round trip: render what was parsed and reparse; labels and values
		// must come back bit-for-bit ('g'/-1 formatting round-trips float64
		// exactly).
		var b strings.Builder
		for _, s := range series {
			b.WriteString(strconv.Itoa(s.Label))
			for _, v := range s.Values {
				b.WriteByte(',')
				b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
			b.WriteByte('\n')
		}
		again, err := dataset.ParseUCR(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("reparse of rendered output failed: %v\nrendered:\n%s", err, b.String())
		}
		if len(again) != len(series) {
			t.Fatalf("reparse count %d, want %d", len(again), len(series))
		}
		for i := range series {
			if again[i].Label != series[i].Label {
				t.Fatalf("series %d label %d, want %d", i, again[i].Label, series[i].Label)
			}
			for j := range series[i].Values {
				a, w := again[i].Values[j], series[i].Values[j]
				if strconv.FormatFloat(a, 'b', -1, 64) != strconv.FormatFloat(w, 'b', -1, 64) {
					t.Fatalf("series %d value %d: %v, want %v", i, j, a, w)
				}
			}
		}
	})
}
