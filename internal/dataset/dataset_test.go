package dataset

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kshape/internal/dist"
	"kshape/internal/ts"
)

func TestArchiveHas48DistinctDatasets(t *testing.T) {
	specs := ArchiveSpecs()
	if len(specs) != 48 {
		t.Fatalf("archive size = %d, want 48", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate dataset name %q", s.Name)
		}
		names[s.Name] = true
		if len(s.Classes) < 2 {
			t.Errorf("%s: %d classes", s.Name, len(s.Classes))
		}
		if s.M < 24 {
			t.Errorf("%s: length %d below UCR minimum-like 24", s.Name, s.M)
		}
	}
}

func TestGenerateShapeAndNormalization(t *testing.T) {
	ds := Generate(ArchiveSpecs()[0])
	if ds.K < 2 || ds.N() == 0 {
		t.Fatalf("degenerate dataset %+v", ds)
	}
	for _, s := range ds.All() {
		if s.Len() != ds.M {
			t.Fatalf("series length %d, want %d", s.Len(), ds.M)
		}
		if !ts.IsZNormalized(s.Values, 1e-6) {
			t.Fatal("series not z-normalized")
		}
		if s.Label < 0 || s.Label >= ds.K {
			t.Fatalf("label %d out of range", s.Label)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := ArchiveSpecs()[5]
	a := Generate(spec)
	b := Generate(spec)
	for i := range a.Train {
		for j := range a.Train[i].Values {
			if a.Train[i].Values[j] != b.Train[i].Values[j] {
				t.Fatal("same spec+seed produced different data")
			}
		}
	}
}

func TestGeneratePanicsOnBadSpec(t *testing.T) {
	for _, spec := range []Spec{
		{Name: "one-class", M: 32, Classes: []ClassProto{SineProto(1, 0)}},
		{Name: "tiny", M: 2, Classes: []ClassProto{SineProto(1, 0), SineProto(2, 0)}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %q should panic", spec.Name)
				}
			}()
			Generate(spec)
		}()
	}
}

func TestArchiveByName(t *testing.T) {
	ds, ok := ArchiveByName("CBF")
	if !ok || ds.Name != "CBF" {
		t.Fatal("CBF not found")
	}
	if _, ok := ArchiveByName("NoSuchDataset"); ok {
		t.Error("bogus name found")
	}
}

func TestArchiveDatasetsAreLearnable(t *testing.T) {
	// Sanity: on every archive dataset, 1-NN with SBD must beat chance by a
	// solid margin — classes are meant to differ in shape.
	if testing.Short() {
		t.Skip("full archive scan is slow")
	}
	for _, spec := range ArchiveSpecs() {
		ds := Generate(spec)
		refs := ts.Rows(ds.Train)
		correct := 0
		for _, q := range ds.Test {
			idx, _ := dist.NNIndex(dist.SBDMeasure{}, q.Values, refs)
			if ds.Train[idx].Label == q.Label {
				correct++
			}
		}
		acc := float64(correct) / float64(len(ds.Test))
		chance := 1.0 / float64(ds.K)
		if acc < chance+0.15 {
			t.Errorf("%s: SBD 1-NN accuracy %.3f barely above chance %.3f", ds.Name, acc, chance)
		}
	}
}

func TestCBFGenerator(t *testing.T) {
	data := CBF(30, 128, 7)
	if len(data) != 30 {
		t.Fatalf("n = %d", len(data))
	}
	labels := map[int]int{}
	for _, s := range data {
		if s.Len() != 128 {
			t.Fatalf("length = %d", s.Len())
		}
		if !ts.IsZNormalized(s.Values, 1e-6) {
			t.Fatal("not z-normalized")
		}
		labels[s.Label]++
	}
	if len(labels) != 3 {
		t.Errorf("classes = %v, want 3", labels)
	}
	// Determinism.
	again := CBF(30, 128, 7)
	for i := range data {
		for j := range data[i].Values {
			if data[i].Values[j] != again[i].Values[j] {
				t.Fatal("CBF not deterministic for a fixed seed")
			}
		}
	}
}

func TestCBFClassesAreShapeDistinct(t *testing.T) {
	// Cylinder vs bell vs funnel should be separable by SBD 1-NN.
	train := CBF(60, 128, 1)
	test := CBF(30, 128, 2)
	refs := ts.Rows(train)
	correct := 0
	for _, q := range test {
		idx, _ := dist.NNIndex(dist.SBDMeasure{}, q.Values, refs)
		if train[idx].Label == q.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.7 {
		t.Errorf("CBF SBD 1-NN accuracy = %v, want >= 0.7", acc)
	}
}

func TestWarpPreservesLengthAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 64)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 64)
	}
	w := warp(x, 0.05, rng)
	if len(w) != len(x) {
		t.Fatalf("length changed: %d", len(w))
	}
	for i, v := range w {
		if v < -1.01 || v > 1.01 {
			t.Fatalf("warp extrapolated at %d: %v", i, v)
		}
	}
	// Zero strength is the identity.
	same := warp(x, 0, rng)
	for i := range x {
		if same[i] != x[i] {
			t.Fatal("warp(0) should be identity")
		}
	}
}

func TestProtoShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := 64
	protos := map[string]ClassProto{
		"sine":     SineProto(2, 0),
		"square":   SquareProto(2),
		"triangle": TriangleProto(2),
		"sawtooth": SawtoothProto(2),
		"chirp":    ChirpProto(1, 4),
		"gauss":    GaussProto(0.5, 0.1),
		"dgauss":   DoubleGaussProto(0.3, 0.7, 0.08, 1),
		"step":     StepProto(0.5),
		"trend":    TrendProto(1, 2, 0.3),
		"ecgA":     ECGSharpProto(),
		"ecgB":     ECGGradualProto(),
		"cyl":      CBFCylinderProto(),
		"bell":     CBFBellProto(),
		"funnel":   CBFFunnelProto(),
		"updown":   upDownProto(1, -1),
	}
	for name, p := range protos {
		x := p(m, rng)
		if len(x) != m {
			t.Errorf("%s: length %d", name, len(x))
		}
		allZero := true
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: non-finite value", name)
				break
			}
			if v != 0 {
				allZero = false
			}
		}
		if allZero {
			t.Errorf("%s: degenerate all-zero prototype", name)
		}
	}
}

func TestStepProtoPlacesStep(t *testing.T) {
	x := StepProto(0.5)(10, nil)
	if x[4] != 0 || x[5] != 1 {
		t.Errorf("step = %v", x)
	}
}

func TestParseUCRCommaAndTab(t *testing.T) {
	for _, content := range []string{
		"1,0.5,1.5,2.5\n2,3.5,4.5,5.5\n",
		"1\t0.5\t1.5\t2.5\n2\t3.5\t4.5\t5.5\n",
		"1 0.5 1.5 2.5\n\n2 3.5 4.5 5.5\n",
		"1.0,0.5,1.5,2.5\n2.0,3.5,4.5,5.5\n", // float labels
	} {
		got, err := ParseUCR(strings.NewReader(content))
		if err != nil {
			t.Fatalf("%q: %v", content, err)
		}
		if len(got) != 2 || got[0].Label != 1 || got[1].Label != 2 {
			t.Fatalf("%q: parsed %+v", content, got)
		}
		if got[0].Len() != 3 || got[0].Values[0] != 0.5 {
			t.Fatalf("%q: values %+v", content, got[0])
		}
	}
}

func TestParseUCRErrors(t *testing.T) {
	cases := []string{
		"",                 // empty
		"1\n",              // no values
		"x,1,2\n",          // bad label
		"1.5,1,2\n",        // non-integer label
		"1,a,b\n",          // bad value
		"1,1,2\n2,1,2,3\n", // ragged
	}
	for _, c := range cases {
		if _, err := ParseUCR(strings.NewReader(c)); err == nil {
			t.Errorf("content %q: expected error", c)
		}
	}
}

func TestLoadUCRDatasetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.tsv")
	testPath := filepath.Join(dir, "test.tsv")
	if err := os.WriteFile(trainPath, []byte("0,1,2,3\n1,4,5,6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(testPath, []byte("0,1,2,4\n1,4,5,7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadUCRDataset("toy", trainPath, testPath)
	if err != nil {
		t.Fatal(err)
	}
	if ds.K != 2 || ds.M != 3 || ds.N() != 4 {
		t.Errorf("dataset = %+v", ds)
	}
	if _, err := LoadUCRDataset("x", filepath.Join(dir, "missing"), testPath); err == nil {
		t.Error("missing file accepted")
	}
	// Mismatched lengths across splits.
	longPath := filepath.Join(dir, "long.tsv")
	if err := os.WriteFile(longPath, []byte("0,1,2,3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadUCRDataset("x", trainPath, longPath); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDatasetAllAndN(t *testing.T) {
	ds := Dataset{
		Train: []ts.Series{ts.NewLabeled([]float64{1}, 0)},
		Test:  []ts.Series{ts.NewLabeled([]float64{2}, 1), ts.NewLabeled([]float64{3}, 0)},
	}
	if ds.N() != 3 || len(ds.All()) != 3 {
		t.Errorf("N = %d, All = %d", ds.N(), len(ds.All()))
	}
}
