package dataset

import "math/rand"

// upDownProto returns a TwoPatterns-style class: a rectangular pulse of
// direction d1 in the first half and d2 in the second half, with per-
// instance jitter of the pulse positions (Geurts' classic benchmark shape).
func upDownProto(d1, d2 float64) ClassProto {
	return func(m int, rng *rand.Rand) []float64 {
		x := make([]float64, m)
		pulse := func(center int, dir float64) {
			w := m / 10
			if w < 2 {
				w = 2
			}
			for i := center - w/2; i < center+w/2; i++ {
				if i >= 0 && i < m {
					x[i] = dir
				}
			}
		}
		jitter := func(base int) int { return base + rng.Intn(m/8+1) - m/16 }
		pulse(jitter(m/4), d1)
		pulse(jitter(3*m/4), d2)
		return x
	}
}

// Archive returns the 48 synthetic class-labeled datasets that stand in for
// the UCR collection (see DESIGN.md §2). Classes within a dataset differ in
// *shape* — waveform family, frequency, event structure — never merely in
// phase, since the shape-based methods under test are shift-invariant by
// construction. Distortion regimes (noise, shift, warping) and sizes vary
// across datasets to span the archive's structural diversity.
//
// Generation is fully deterministic: every dataset has a fixed seed.
func Archive() []Dataset {
	specs := ArchiveSpecs()
	out := make([]Dataset, len(specs))
	for i, s := range specs {
		out[i] = Generate(s)
	}
	return out
}

// ArchiveByName returns the named archive dataset, or false.
func ArchiveByName(name string) (Dataset, bool) {
	for _, s := range ArchiveSpecs() {
		if s.Name == name {
			return Generate(s), true
		}
	}
	return Dataset{}, false
}

// ArchiveSpecs returns the 48 dataset specifications without materializing
// the data.
func ArchiveSpecs() []Spec {
	cbf := []ClassProto{CBFCylinderProto(), CBFBellProto(), CBFFunnelProto()}
	ecg := []ClassProto{ECGSharpProto(), ECGGradualProto()}
	waves4 := []ClassProto{SineProto(3, 0), SquareProto(3), TriangleProto(3), SawtoothProto(3)}
	twoPat := []ClassProto{
		upDownProto(1, 1), upDownProto(1, -1), upDownProto(-1, 1), upDownProto(-1, -1),
	}

	specs := []Spec{
		// --- CBF family (the Appendix B workload) -------------------------
		{Name: "CBF", M: 128, TrainPerClass: 10, TestPerClass: 30, Noise: 0, MaxShift: 0, Classes: cbf},
		{Name: "CBF-Large", M: 128, TrainPerClass: 25, TestPerClass: 55, Noise: 0, Classes: cbf},
		{Name: "CBF-Long", M: 256, TrainPerClass: 10, TestPerClass: 25, Noise: 0, Classes: cbf},
		{Name: "CBF-Shifted", M: 128, TrainPerClass: 12, TestPerClass: 28, MaxShift: 16, Classes: cbf},

		// --- ECGFiveDays-like family (Figure 1) ---------------------------
		{Name: "ECGLike", M: 136, TrainPerClass: 12, TestPerClass: 30, Noise: 0.10, MaxShift: 8, Classes: ecg},
		{Name: "ECGLike-Noisy", M: 136, TrainPerClass: 12, TestPerClass: 30, Noise: 0.30, MaxShift: 8, Classes: ecg},
		{Name: "ECGLike-Warped", M: 136, TrainPerClass: 12, TestPerClass: 30, Noise: 0.10, MaxShift: 4, WarpFrac: 0.03, Classes: ecg},
		{Name: "ECGLike-Short", M: 64, TrainPerClass: 15, TestPerClass: 35, Noise: 0.15, MaxShift: 5, Classes: ecg},

		// --- frequency discrimination --------------------------------------
		{Name: "Freq2v3", M: 96, TrainPerClass: 15, TestPerClass: 30, Noise: 0.20, MaxShift: 10,
			Classes: []ClassProto{SineProto(2, 0), SineProto(3, 0)}},
		{Name: "Freq1v2v4", M: 128, TrainPerClass: 12, TestPerClass: 24, Noise: 0.20, MaxShift: 8,
			Classes: []ClassProto{SineProto(1, 0), SineProto(2, 0), SineProto(4, 0)}},
		{Name: "FreqFine5v6", M: 192, TrainPerClass: 12, TestPerClass: 24, Noise: 0.15, MaxShift: 8,
			Classes: []ClassProto{SineProto(5, 0), SineProto(6, 0)}},

		// --- waveform families ---------------------------------------------
		{Name: "Waves4", M: 96, TrainPerClass: 10, TestPerClass: 22, Noise: 0.15, MaxShift: 6, Classes: waves4},
		{Name: "Waves4-Noisy", M: 96, TrainPerClass: 10, TestPerClass: 22, Noise: 0.45, MaxShift: 6, Classes: waves4},
		{Name: "SquareVsTriangle", M: 80, TrainPerClass: 16, TestPerClass: 32, Noise: 0.25, MaxShift: 5,
			Classes: []ClassProto{SquareProto(2), TriangleProto(2)}},
		{Name: "SineVsSaw", M: 80, TrainPerClass: 16, TestPerClass: 32, Noise: 0.25, MaxShift: 5,
			Classes: []ClassProto{SineProto(2, 0), SawtoothProto(2)}},
		{Name: "SquareVsSine", M: 72, TrainPerClass: 18, TestPerClass: 30, Noise: 0.35, MaxShift: 4,
			Classes: []ClassProto{SquareProto(3), SineProto(3, 0)}},

		// --- chirps (non-stationary frequency) ----------------------------
		{Name: "ChirpUpDown", M: 128, TrainPerClass: 14, TestPerClass: 28, Noise: 0.15, MaxShift: 6,
			Classes: []ClassProto{ChirpProto(1, 6), ChirpProto(6, 1)}},
		{Name: "ChirpVsSine", M: 128, TrainPerClass: 14, TestPerClass: 28, Noise: 0.20, MaxShift: 6,
			Classes: []ClassProto{ChirpProto(1, 5), SineProto(3, 0)}},
		{Name: "ChirpRates", M: 160, TrainPerClass: 12, TestPerClass: 24, Noise: 0.15, MaxShift: 8,
			Classes: []ClassProto{ChirpProto(1, 3), ChirpProto(1, 5), ChirpProto(1, 8)}},

		// --- event/bump structure -----------------------------------------
		{Name: "Bumps1v2", M: 112, TrainPerClass: 15, TestPerClass: 30, Noise: 0.15, MaxShift: 10,
			Classes: []ClassProto{GaussProto(0.5, 0.06), DoubleGaussProto(0.35, 0.65, 0.06, 1)}},
		{Name: "BumpWidths", M: 112, TrainPerClass: 15, TestPerClass: 30, Noise: 0.15, MaxShift: 8,
			Classes: []ClassProto{GaussProto(0.5, 0.04), GaussProto(0.5, 0.12)}},
		{Name: "BumpAsym", M: 112, TrainPerClass: 12, TestPerClass: 26, Noise: 0.20, MaxShift: 8,
			Classes: []ClassProto{DoubleGaussProto(0.35, 0.65, 0.06, 0.4), DoubleGaussProto(0.35, 0.65, 0.06, 1.6)}},
		{Name: "Bumps3Class", M: 144, TrainPerClass: 12, TestPerClass: 24, Noise: 0.15, MaxShift: 10,
			Classes: []ClassProto{
				GaussProto(0.5, 0.05),
				DoubleGaussProto(0.3, 0.7, 0.05, 1),
				DoubleGaussProto(0.3, 0.7, 0.05, -1),
			}},

		// --- steps, ramps, trends -----------------------------------------
		{Name: "StepVsRamp", M: 96, TrainPerClass: 16, TestPerClass: 32, Noise: 0.20, MaxShift: 6,
			Classes: []ClassProto{StepProto(0.5), TrendProto(1, 0, 0)}},
		{Name: "TrendUpDown", M: 96, TrainPerClass: 16, TestPerClass: 32, Noise: 0.25, MaxShift: 0,
			Classes: []ClassProto{TrendProto(1, 3, 0.3), TrendProto(-1, 3, 0.3)}},
		{Name: "TrendVsSeason", M: 128, TrainPerClass: 14, TestPerClass: 28, Noise: 0.20, MaxShift: 5,
			Classes: []ClassProto{TrendProto(1, 2, 0.2), TrendProto(0, 2, 1.0)}},
		{Name: "SeasonStrength", M: 128, TrainPerClass: 12, TestPerClass: 26, Noise: 0.25, MaxShift: 5,
			Classes: []ClassProto{TrendProto(0.5, 4, 0.2), TrendProto(0.5, 4, 1.2)}},

		// --- TwoPatterns family --------------------------------------------
		{Name: "TwoPatterns", M: 128, TrainPerClass: 12, TestPerClass: 25, Noise: 0.10, Classes: twoPat},
		{Name: "TwoPatterns-Noisy", M: 128, TrainPerClass: 12, TestPerClass: 25, Noise: 0.35, Classes: twoPat},
		{Name: "TwoPatterns-Short", M: 64, TrainPerClass: 14, TestPerClass: 28, Noise: 0.15, Classes: twoPat},

		// --- mixed hard cases ----------------------------------------------
		{Name: "MixedShapes5", M: 128, TrainPerClass: 10, TestPerClass: 20, Noise: 0.20, MaxShift: 8,
			Classes: []ClassProto{
				SineProto(2, 0), SquareProto(2), GaussProto(0.5, 0.08),
				ChirpProto(1, 4), StepProto(0.5),
			}},
		{Name: "MixedShapes6", M: 96, TrainPerClass: 9, TestPerClass: 18, Noise: 0.20, MaxShift: 6,
			Classes: []ClassProto{
				SineProto(2, 0), SineProto(4, 0), SquareProto(2),
				TriangleProto(2), SawtoothProto(2), GaussProto(0.5, 0.1),
			}},
		{Name: "CloseFreqsHard", M: 256, TrainPerClass: 10, TestPerClass: 20, Noise: 0.30, MaxShift: 12,
			Classes: []ClassProto{SineProto(7, 0), SineProto(8, 0)}},
		{Name: "SubtleBumps", M: 96, TrainPerClass: 14, TestPerClass: 28, Noise: 0.40, MaxShift: 8,
			Classes: []ClassProto{GaussProto(0.5, 0.07), DoubleGaussProto(0.42, 0.58, 0.05, 1)}},

		// --- warped variants (local alignment stress) ----------------------
		{Name: "WarpedSines", M: 128, TrainPerClass: 12, TestPerClass: 26, Noise: 0.15, WarpFrac: 0.05,
			Classes: []ClassProto{SineProto(2, 0), SineProto(3, 0)}},
		{Name: "WarpedCBF", M: 128, TrainPerClass: 10, TestPerClass: 24, WarpFrac: 0.04, Classes: cbf},
		{Name: "WarpedWaves", M: 96, TrainPerClass: 10, TestPerClass: 22, Noise: 0.15, WarpFrac: 0.05, Classes: waves4},
		{Name: "WarpedBumps", M: 112, TrainPerClass: 12, TestPerClass: 26, Noise: 0.15, MaxShift: 4, WarpFrac: 0.05,
			Classes: []ClassProto{GaussProto(0.5, 0.05), DoubleGaussProto(0.35, 0.65, 0.05, 1)}},

		// --- small-n regimes (UCR has datasets with as few as 56 series) ---
		{Name: "TinyECG", M: 136, TrainPerClass: 6, TestPerClass: 22, Noise: 0.12, MaxShift: 8, Classes: ecg},
		{Name: "TinyCBF", M: 128, TrainPerClass: 6, TestPerClass: 14, Classes: cbf},
		{Name: "TinyWaves", M: 80, TrainPerClass: 5, TestPerClass: 12, Noise: 0.15, MaxShift: 4, Classes: waves4},

		// --- long-series regimes -------------------------------------------
		{Name: "LongSines", M: 512, TrainPerClass: 8, TestPerClass: 16, Noise: 0.20, MaxShift: 20,
			Classes: []ClassProto{SineProto(4, 0), SineProto(6, 0)}},
		{Name: "LongECG", M: 384, TrainPerClass: 8, TestPerClass: 18, Noise: 0.15, MaxShift: 16, Classes: ecg},
		{Name: "LongChirps", M: 320, TrainPerClass: 8, TestPerClass: 16, Noise: 0.15, MaxShift: 12,
			Classes: []ClassProto{ChirpProto(2, 8), ChirpProto(8, 2)}},

		// --- short-series regimes ------------------------------------------
		{Name: "ShortWaves", M: 32, TrainPerClass: 20, TestPerClass: 40, Noise: 0.20, MaxShift: 3,
			Classes: []ClassProto{SineProto(1, 0), SquareProto(1), TriangleProto(1)}},
		{Name: "ShortBumps", M: 40, TrainPerClass: 20, TestPerClass: 40, Noise: 0.20, MaxShift: 4,
			Classes: []ClassProto{GaussProto(0.5, 0.08), DoubleGaussProto(0.3, 0.7, 0.08, 1)}},
		// --- high-noise stress ---------------------------------------------
		{Name: "NoisyFreqs", M: 128, TrainPerClass: 14, TestPerClass: 28, Noise: 0.60, MaxShift: 8,
			Classes: []ClassProto{SineProto(2, 0), SineProto(4, 0)}},
		{Name: "NoisyCBF", M: 128, TrainPerClass: 12, TestPerClass: 26, Noise: 0.50, Classes: cbf},
	}
	if len(specs) != 48 {
		panic("dataset: archive must contain exactly 48 datasets")
	}
	for i := range specs {
		specs[i].Seed = int64(1000 + 37*i)
	}
	return specs
}
