package dataset

import (
	"fmt"
	"math/rand"

	"kshape/internal/ts"
)

// Dataset is a labeled, train/test-split collection of equal-length series,
// mirroring the layout of the UCR archive the paper evaluates on.
type Dataset struct {
	Name  string
	K     int // number of classes
	M     int // series length
	Train []ts.Series
	Test  []ts.Series
}

// All returns the fused training and test sets, which the paper's
// clustering experiments operate on.
func (d Dataset) All() []ts.Series {
	out := make([]ts.Series, 0, len(d.Train)+len(d.Test))
	out = append(out, d.Train...)
	out = append(out, d.Test...)
	return out
}

// N returns the total number of series.
func (d Dataset) N() int { return len(d.Train) + len(d.Test) }

// Spec describes a synthetic dataset: its shape classes and the distortion
// regime applied to every instance (Section 2.2's invariance families).
type Spec struct {
	Name          string
	M             int     // series length
	TrainPerClass int     // training instances per class
	TestPerClass  int     // test instances per class
	Noise         float64 // additive Gaussian noise std (relative to unit-amplitude prototypes)
	MaxShift      int     // uniform random shift in [-MaxShift, MaxShift] (global alignment)
	WarpFrac      float64 // smooth monotone warping strength (local alignment)
	Classes       []ClassProto
	Seed          int64
}

// Generate materializes the dataset: every instance is a prototype draw,
// warped, shifted, noised, amplitude-scaled, and finally z-normalized
// (the archive convention the paper relies on).
func Generate(spec Spec) Dataset {
	if len(spec.Classes) < 2 {
		panic(fmt.Sprintf("dataset: spec %q needs at least 2 classes", spec.Name))
	}
	if spec.M < 4 {
		panic(fmt.Sprintf("dataset: spec %q has degenerate length %d", spec.Name, spec.M))
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	gen := func(perClass int) []ts.Series {
		var out []ts.Series
		for label, proto := range spec.Classes {
			for i := 0; i < perClass; i++ {
				x := proto(spec.M, rng)
				if spec.WarpFrac > 0 {
					x = warp(x, spec.WarpFrac, rng)
				}
				if spec.MaxShift > 0 {
					x = ts.Shift(x, rng.Intn(2*spec.MaxShift+1)-spec.MaxShift)
				}
				// Random amplitude scale and offset (removed by the final
				// z-normalization, but present in the raw signal as in real
				// recordings).
				scale := 0.5 + rng.Float64()*2
				offset := rng.NormFloat64() * 2
				y := make([]float64, spec.M)
				for j, v := range x {
					y[j] = scale*v + offset + spec.Noise*scale*rng.NormFloat64()
				}
				out = append(out, ts.NewLabeled(ts.ZNormalize(y), label))
			}
		}
		return out
	}
	return Dataset{
		Name:  spec.Name,
		K:     len(spec.Classes),
		M:     spec.M,
		Train: gen(spec.TrainPerClass),
		Test:  gen(spec.TestPerClass),
	}
}

// CBF generates n instances (labels uniform over the three CBF classes) of
// length m — the workload of the paper's Appendix B scalability study.
func CBF(n, m int, seed int64) []ts.Series {
	rng := rand.New(rand.NewSource(seed))
	protos := []ClassProto{CBFCylinderProto(), CBFBellProto(), CBFFunnelProto()}
	out := make([]ts.Series, n)
	for i := range out {
		label := i % 3
		out[i] = ts.NewLabeled(ts.ZNormalize(protos[label](m, rng)), label)
	}
	return out
}
