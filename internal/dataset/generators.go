// Package dataset provides the labeled time-series data substrate for the
// experiments: deterministic synthetic generators covering the distortion
// families of the paper's Section 2.2 (amplitude scaling, shift, warping,
// noise, trends), a 48-dataset archive standing in for the UCR collection
// (see DESIGN.md for the substitution rationale), the CBF generator used by
// the scalability experiments of Appendix B, and a loader for real
// UCR-format files.
package dataset

import (
	"math"
	"math/rand"
)

// ClassProto generates one raw (un-normalized, undistorted) instance of a
// shape class. Prototypes may randomize internal parameters per instance
// (as CBF does with its event boundaries).
type ClassProto func(m int, rng *rand.Rand) []float64

// --- basic waveform prototypes -------------------------------------------

// SineProto returns a sine prototype with the given number of cycles and
// phase (in radians).
func SineProto(cycles, phase float64) ClassProto {
	return func(m int, rng *rand.Rand) []float64 {
		x := make([]float64, m)
		for i := range x {
			x[i] = math.Sin(2*math.Pi*cycles*float64(i)/float64(m) + phase)
		}
		return x
	}
}

// SquareProto returns a square wave with the given cycles.
func SquareProto(cycles float64) ClassProto {
	return func(m int, rng *rand.Rand) []float64 {
		x := make([]float64, m)
		for i := range x {
			if math.Sin(2*math.Pi*cycles*float64(i)/float64(m)) >= 0 {
				x[i] = 1
			} else {
				x[i] = -1
			}
		}
		return x
	}
}

// TriangleProto returns a triangle wave with the given cycles.
func TriangleProto(cycles float64) ClassProto {
	return func(m int, rng *rand.Rand) []float64 {
		x := make([]float64, m)
		for i := range x {
			t := math.Mod(cycles*float64(i)/float64(m), 1)
			if t < 0.5 {
				x[i] = 4*t - 1
			} else {
				x[i] = 3 - 4*t
			}
		}
		return x
	}
}

// SawtoothProto returns a sawtooth wave with the given cycles.
func SawtoothProto(cycles float64) ClassProto {
	return func(m int, rng *rand.Rand) []float64 {
		x := make([]float64, m)
		for i := range x {
			x[i] = 2*math.Mod(cycles*float64(i)/float64(m), 1) - 1
		}
		return x
	}
}

// ChirpProto returns a frequency sweep from f0 to f1 cycles across the
// series.
func ChirpProto(f0, f1 float64) ClassProto {
	return func(m int, rng *rand.Rand) []float64 {
		x := make([]float64, m)
		// Analytic chirp phase: φ(t) = 2π(f0·t + (f1-f0)·t²/2), t ∈ [0, 1].
		for i := range x {
			t := float64(i) / float64(m)
			x[i] = math.Sin(2 * math.Pi * (f0*t + (f1-f0)*t*t/2))
		}
		return x
	}
}

// GaussProto returns a Gaussian bump centered at frac·m with width
// widthFrac·m.
func GaussProto(frac, widthFrac float64) ClassProto {
	return func(m int, rng *rand.Rand) []float64 {
		x := make([]float64, m)
		c := frac * float64(m)
		w := widthFrac * float64(m)
		for i := range x {
			d := (float64(i) - c) / w
			x[i] = math.Exp(-d * d / 2)
		}
		return x
	}
}

// DoubleGaussProto returns two Gaussian bumps, the second scaled by amp2.
func DoubleGaussProto(frac1, frac2, widthFrac, amp2 float64) ClassProto {
	g1 := GaussProto(frac1, widthFrac)
	g2 := GaussProto(frac2, widthFrac)
	return func(m int, rng *rand.Rand) []float64 {
		a := g1(m, rng)
		b := g2(m, rng)
		for i := range a {
			a[i] += amp2 * b[i]
		}
		return a
	}
}

// StepProto returns a step from 0 to 1 at frac·m.
func StepProto(frac float64) ClassProto {
	return func(m int, rng *rand.Rand) []float64 {
		x := make([]float64, m)
		at := int(frac * float64(m))
		for i := at; i < m; i++ {
			x[i] = 1
		}
		return x
	}
}

// TrendProto returns a linear trend with the given slope per series plus a
// seasonal sine of the given cycles and amplitude.
func TrendProto(slope, cycles, seasonAmp float64) ClassProto {
	return func(m int, rng *rand.Rand) []float64 {
		x := make([]float64, m)
		for i := range x {
			t := float64(i) / float64(m)
			x[i] = slope*t + seasonAmp*math.Sin(2*math.Pi*cycles*t)
		}
		return x
	}
}

// --- CBF (Cylinder-Bell-Funnel, Saito 1994) -------------------------------
//
// The classic synthetic benchmark used by the paper's Appendix B
// scalability study. Each instance places an event on a random interval
// [a, b] with random amplitude; the three classes differ in the event shape.

// CBFCylinderProto is the plateau-shaped CBF class.
func CBFCylinderProto() ClassProto {
	return func(m int, rng *rand.Rand) []float64 {
		return cbfInstance(m, rng, func(t, a, b float64) float64 { return 1 })
	}
}

// CBFBellProto is the rising-ramp CBF class.
func CBFBellProto() ClassProto {
	return func(m int, rng *rand.Rand) []float64 {
		return cbfInstance(m, rng, func(t, a, b float64) float64 { return (t - a) / (b - a) })
	}
}

// CBFFunnelProto is the falling-ramp CBF class.
func CBFFunnelProto() ClassProto {
	return func(m int, rng *rand.Rand) []float64 {
		return cbfInstance(m, rng, func(t, a, b float64) float64 { return (b - t) / (b - a) })
	}
}

// cbfInstance builds one CBF series: (6+η)·shape(t)·1[a,b](t) + ε(t), with
// a ~ U[m/8, m/4], b-a ~ U[m/4, 3m/4], matching Saito's construction scaled
// to the series length.
func cbfInstance(m int, rng *rand.Rand, shape func(t, a, b float64) float64) []float64 {
	mf := float64(m)
	a := mf/8 + rng.Float64()*mf/8
	span := mf/4 + rng.Float64()*mf/2
	b := a + span
	if b > mf-1 {
		b = mf - 1
	}
	amp := 6 + rng.NormFloat64()
	x := make([]float64, m)
	for i := range x {
		t := float64(i)
		if t >= a && t <= b {
			x[i] = amp * shape(t, a, b)
		}
		x[i] += rng.NormFloat64()
	}
	return x
}

// --- ECGFiveDays-like prototypes (Figure 1) --------------------------------

// ECGSharpProto mimics the paper's Class A: a sharp rise, a drop, then a
// gradual increase.
func ECGSharpProto() ClassProto {
	return func(m int, rng *rand.Rand) []float64 {
		x := make([]float64, m)
		for i := range x {
			t := float64(i) / float64(m)
			switch {
			case t < 0.15:
				x[i] = t / 0.15 * 3 // sharp rise
			case t < 0.3:
				x[i] = 3 - (t-0.15)/0.15*4 // drop below baseline
			default:
				x[i] = -1 + (t-0.3)/0.7*1.8 // gradual increase
			}
		}
		return x
	}
}

// ECGGradualProto mimics Class B: a gradual increase, a drop, then another
// gradual increase.
func ECGGradualProto() ClassProto {
	return func(m int, rng *rand.Rand) []float64 {
		x := make([]float64, m)
		for i := range x {
			t := float64(i) / float64(m)
			switch {
			case t < 0.35:
				x[i] = t / 0.35 * 2 // gradual increase
			case t < 0.45:
				x[i] = 2 - (t-0.35)/0.10*3 // drop
			default:
				x[i] = -1 + (t-0.45)/0.55*1.8 // gradual increase
			}
		}
		return x
	}
}

// --- distortions -----------------------------------------------------------

// warp applies a smooth monotone time warping of strength frac (fraction of
// the length moved at the extreme) with a random phase — the local
// alignment distortion of Section 2.2.
func warp(x []float64, frac float64, rng *rand.Rand) []float64 {
	m := len(x)
	if m == 0 || frac <= 0 {
		return x
	}
	out := make([]float64, m)
	phase := rng.Float64() * 2 * math.Pi
	amp := frac * float64(m)
	for i := range out {
		pos := float64(i) + amp*math.Sin(2*math.Pi*float64(i)/float64(m)+phase)
		if pos < 0 {
			pos = 0
		}
		if pos > float64(m-1) {
			pos = float64(m - 1)
		}
		lo := int(pos)
		hi := lo
		if lo < m-1 {
			hi = lo + 1
		}
		fracPos := pos - float64(lo)
		out[i] = x[lo]*(1-fracPos) + x[hi]*fracPos
	}
	return out
}
