package eval

import "fmt"

// Silhouette computes the mean silhouette coefficient of a clustering given
// the full pairwise dissimilarity matrix: for each point, a is its mean
// distance to its own cluster and b the smallest mean distance to another
// cluster; the coefficient is (b-a)/max(a,b). Values near 1 indicate
// compact, well-separated clusters.
//
// This is the intrinsic quality criterion the paper's footnote 2 refers to
// for choosing k without a gold standard: sweep k and keep the silhouette
// maximizer. Singleton clusters contribute 0, the standard convention.
func Silhouette(d [][]float64, labels []int) float64 {
	n := len(labels)
	if len(d) != n {
		panic(fmt.Sprintf("eval: Silhouette matrix size %d vs %d labels", len(d), n))
	}
	if n == 0 {
		return 0
	}
	// Cluster sizes keyed by label value.
	sizes := map[int]int{}
	for _, l := range labels {
		sizes[l]++
	}
	if len(sizes) < 2 {
		return 0 // silhouette undefined for a single cluster
	}
	total := 0.0
	sums := map[int]float64{}
	for i := 0; i < n; i++ {
		for l := range sums {
			delete(sums, l)
		}
		for j := 0; j < n; j++ {
			if j != i {
				sums[labels[j]] += d[i][j]
			}
		}
		own := labels[i]
		if sizes[own] <= 1 {
			continue // singleton: coefficient 0
		}
		a := sums[own] / float64(sizes[own]-1)
		b := -1.0
		for l, s := range sums {
			if l == own {
				continue
			}
			if mean := s / float64(sizes[l]); b < 0 || mean < b {
				b = mean
			}
		}
		if b < 0 {
			continue
		}
		den := a
		if b > den {
			den = b
		}
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n)
}
