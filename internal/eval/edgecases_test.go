package eval

import (
	"math"
	"testing"
)

// Edge cases for the intrinsic validity indices: hand-computed values on
// tiny inputs, exact-tie behaviour, and the k = n / single-cluster
// degeneracies the k-estimation sweep hits at the ends of its range.

// lineMatrix builds the pairwise |xi - xj| distance matrix of points on a
// line.
func lineMatrix(xs []float64) [][]float64 {
	n := len(xs)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = math.Abs(xs[i] - xs[j])
		}
	}
	return d
}

func TestSilhouetteHandComputed(t *testing.T) {
	// Points 0, 10, 11, 12 on a line, labels {0,0,1,1}: point 1 sits far
	// from its own cluster mate and close to cluster 1, so its coefficient
	// is strongly negative while the others are positive.
	d := lineMatrix([]float64{0, 10, 11, 12})
	got := Silhouette(d, []int{0, 0, 1, 1})
	s0 := (11.5 - 10.0) / 11.5 // a=10, b=(11+12)/2
	s1 := (1.5 - 10.0) / 10.0  // a=10, b=(1+2)/2
	s2 := (6.0 - 1.0) / 6.0    // a=1,  b=(11+1)/2
	s3 := (7.0 - 1.0) / 7.0    // a=1,  b=(12+2)/2
	want := (s0 + s1 + s2 + s3) / 4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("silhouette = %v, want hand-computed %v", got, want)
	}
}

func TestSilhouetteAllDistancesTie(t *testing.T) {
	// Every pairwise distance equal: a == b for every point, so each
	// coefficient — and the mean — is exactly 0.
	n := 6
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = 3.5
			}
		}
	}
	if s := Silhouette(d, []int{0, 0, 1, 1, 2, 2}); s != 0 {
		t.Errorf("all-ties silhouette = %v, want exactly 0", s)
	}
}

func TestSilhouetteKEqualsN(t *testing.T) {
	// Every point its own cluster: all singletons contribute 0.
	d := lineMatrix([]float64{0, 1, 5, 9})
	if s := Silhouette(d, []int{0, 1, 2, 3}); s != 0 {
		t.Errorf("k = n silhouette = %v, want 0", s)
	}
}

func TestDaviesBouldinHandComputed(t *testing.T) {
	// Clusters {0,2} and {10,12}: centroids 1 and 11, mean scatter 1 each,
	// centroid distance 10, so both ratios are (1+1)/10 and DB = 0.2.
	data := [][]float64{{0}, {2}, {10}, {12}}
	got := DaviesBouldin(data, []int{0, 0, 1, 1}, 2)
	if math.Abs(got-0.2) > 1e-12 {
		t.Errorf("DB = %v, want 0.2", got)
	}
}

func TestDaviesBouldinKEqualsN(t *testing.T) {
	// Singleton clusters have zero scatter, so every ratio is 0.
	data := [][]float64{{0}, {3}, {9}}
	if v := DaviesBouldin(data, []int{0, 1, 2}, 3); v != 0 {
		t.Errorf("k = n DB = %v, want 0", v)
	}
}

func TestDaviesBouldinCoincidentCentroids(t *testing.T) {
	// Two singleton clusters at the same point: their centroid distance is
	// 0 and the pair must be skipped rather than divided by zero.
	data := [][]float64{{1}, {1}, {5}}
	v := DaviesBouldin(data, []int{0, 1, 2}, 3)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("DB = %v with coincident centroids", v)
	}
	if v != 0 {
		t.Errorf("DB = %v, want 0 (all scatters are zero)", v)
	}
}

func TestCalinskiHarabaszHandComputed(t *testing.T) {
	// Clusters {0,2} and {10,12}: centroids 1 and 11, grand mean 6.
	// Between = 2·25 + 2·25 = 100, within = 4·1 = 4, so
	// CH = (100/1)/(4/2) = 50.
	data := [][]float64{{0}, {2}, {10}, {12}}
	got := CalinskiHarabasz(data, []int{0, 0, 1, 1}, 2)
	if math.Abs(got-50) > 1e-12 {
		t.Errorf("CH = %v, want 50", got)
	}
}

func TestCalinskiHarabaszKEqualsN(t *testing.T) {
	// n <= k is undefined by convention.
	data := [][]float64{{0}, {3}, {9}}
	if v := CalinskiHarabasz(data, []int{0, 1, 2}, 3); v != 0 {
		t.Errorf("k = n CH = %v, want 0", v)
	}
}

func TestValidityIndicesAgreeOnSeparationOrdering(t *testing.T) {
	// Tighter clusters at the same separation: silhouette and CH must not
	// decrease, DB must not increase.
	tight := [][]float64{{0}, {0.1}, {10}, {10.1}}
	loose := [][]float64{{0}, {4}, {10}, {14}}
	labels := []int{0, 0, 1, 1}
	if st, sl := Silhouette(lineMatrix([]float64{0, 0.1, 10, 10.1}), labels),
		Silhouette(lineMatrix([]float64{0, 4, 10, 14}), labels); st <= sl {
		t.Errorf("silhouette: tight %v not above loose %v", st, sl)
	}
	if dt, dl := DaviesBouldin(tight, labels, 2), DaviesBouldin(loose, labels, 2); dt >= dl {
		t.Errorf("DB: tight %v not below loose %v", dt, dl)
	}
	if ct, cl := CalinskiHarabasz(tight, labels, 2), CalinskiHarabasz(loose, labels, 2); ct <= cl {
		t.Errorf("CH: tight %v not above loose %v", ct, cl)
	}
}
