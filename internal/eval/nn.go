package eval

import (
	"math"
	"sync"

	"kshape/internal/dist"
	"kshape/internal/par"
	"kshape/internal/ts"
)

// OneNNAccuracy evaluates a distance measure by 1-NN classification
// (Section 4, "Metrics"): each test series is assigned the label of its
// nearest training series under d, and the returned value is the fraction
// classified correctly. Queries run in parallel across all CPUs.
func OneNNAccuracy(d dist.Measure, train, test []ts.Series) float64 {
	return OneNNAccuracyWorkers(d, train, test, 0)
}

// OneNNAccuracyWorkers is OneNNAccuracy with an explicit degree of
// parallelism (par.Resolve semantics: <= 0 means runtime.NumCPU(), 1 means
// serial). The accuracy is identical for every worker count.
func OneNNAccuracyWorkers(d dist.Measure, train, test []ts.Series, workers int) float64 {
	if len(test) == 0 || len(train) == 0 {
		return 0
	}
	refs := ts.Rows(train)
	// The optimized SBD classifies through the spectrum cache: every
	// training spectrum is transformed once up front, and each query costs
	// one forward transform plus one half-size inverse per candidate
	// (instead of three full transforms). NNIndex and SBDNearest share the
	// same ascending strict-< scan, so predictions are identical.
	if _, ok := d.(dist.SBDMeasure); ok && len(refs[0]) > 0 {
		queries := make([][]float64, len(test))
		for i := range test {
			queries[i] = test[i].Values
		}
		nearest := dist.SBDNearest(refs, queries, workers)
		correct := par.SumInt(workers, len(test), func(i int) int {
			if train[nearest[i]].Label == test[i].Label {
				return 1
			}
			return 0
		})
		return float64(correct) / float64(len(test))
	}
	correct := classifyCount(func(q []float64) int {
		idx, _ := dist.NNIndex(d, q, refs)
		return train[idx].Label
	}, test, workers)
	return float64(correct) / float64(len(test))
}

// OneNNAccuracyLB is OneNNAccuracy for cDTW with LB_Keogh pruning
// (Table 2's "_LB" rows). window is the Sakoe-Chiba half-width.
func OneNNAccuracyLB(window int, train, test []ts.Series) float64 {
	if len(test) == 0 || len(train) == 0 {
		return 0
	}
	refs := ts.Rows(train)
	// Each worker needs its own searcher (it keeps mutable counters).
	pool := sync.Pool{New: func() any {
		return dist.NewLBNNSearcher(refs, window)
	}}
	correct := classifyCount(func(q []float64) int {
		s := pool.Get().(*dist.LBNNSearcher)
		defer pool.Put(s)
		idx, _ := s.NN(q)
		return train[idx].Label
	}, test, 0)
	return float64(correct) / float64(len(test))
}

// classifyCount runs classify over all test series in parallel and counts
// correct predictions.
func classifyCount(classify func(q []float64) int, test []ts.Series, workers int) int {
	return par.SumInt(workers, len(test), func(i int) int {
		if classify(test[i].Values) == test[i].Label {
			return 1
		}
		return 0
	})
}

// TuneCDTWWindow finds the cDTWopt warping window (Section 4, "Parameter
// settings"): it scans half-widths from 0% to maxFrac of the series length
// and returns the one maximizing leave-one-out 1-NN accuracy on the
// training set, breaking ties toward the smaller (cheaper) window.
func TuneCDTWWindow(train []ts.Series, maxFrac float64) (window int, looAccuracy float64) {
	if len(train) < 2 {
		return 0, 0
	}
	m := train[0].Len()
	maxW := int(math.Round(maxFrac * float64(m)))
	if maxW < 0 {
		maxW = 0
	}
	bestW, bestAcc := 0, -1.0
	for w := 0; w <= maxW; w++ {
		acc := looAccuracyCDTW(train, w)
		if acc > bestAcc {
			bestAcc, bestW = acc, w
		}
	}
	return bestW, bestAcc
}

// looAccuracyCDTW computes leave-one-out 1-NN accuracy on train under cDTW
// with the given window, parallelized across held-out points.
func looAccuracyCDTW(train []ts.Series, window int) float64 {
	n := len(train)
	correct := par.SumInt(0, n, func(i int) int {
		best, bestJ := math.Inf(1), -1
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if d := dist.CDTW(train[i].Values, train[j].Values, window); d < best {
				best, bestJ = d, j
			}
		}
		if bestJ >= 0 && train[bestJ].Label == train[i].Label {
			return 1
		}
		return 0
	})
	return float64(correct) / float64(n)
}
