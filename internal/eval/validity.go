package eval

import (
	"fmt"
	"math"
)

// The indices in this file complement Silhouette as intrinsic clustering
// quality criteria (the paper's footnote 2). They operate on the raw data
// matrix under squared Euclidean geometry, the standard formulation.

// DaviesBouldin computes the Davies-Bouldin index of a clustering: the mean
// over clusters of the worst ratio (s_i + s_j) / d(c_i, c_j), where s is
// the mean distance of members to their centroid. Lower is better.
// Empty clusters are skipped; the index of a single non-empty cluster is 0.
func DaviesBouldin(data [][]float64, labels []int, k int) float64 {
	if len(data) != len(labels) {
		panic(fmt.Sprintf("eval: DaviesBouldin %d rows vs %d labels", len(data), len(labels)))
	}
	centroids, scatter, live := clusterStats(data, labels, k)
	if len(live) < 2 {
		return 0
	}
	total := 0.0
	for _, i := range live {
		worst := 0.0
		for _, j := range live {
			if i == j {
				continue
			}
			d := euclid(centroids[i], centroids[j])
			//lint:ignore floatcmp exact zero-distance guard (identical series)
			if d == 0 {
				continue
			}
			if r := (scatter[i] + scatter[j]) / d; r > worst {
				worst = r
			}
		}
		total += worst
	}
	return total / float64(len(live))
}

// CalinskiHarabasz computes the Calinski-Harabasz (variance ratio) index:
// between-cluster dispersion over within-cluster dispersion, scaled by
// (n-k)/(k-1). Higher is better. Returns 0 when undefined (k < 2, or zero
// within-cluster dispersion).
func CalinskiHarabasz(data [][]float64, labels []int, k int) float64 {
	n := len(data)
	if n != len(labels) {
		panic(fmt.Sprintf("eval: CalinskiHarabasz %d rows vs %d labels", n, len(labels)))
	}
	if k < 2 || n <= k {
		return 0
	}
	m := len(data[0])
	grand := make([]float64, m)
	for _, x := range data {
		for t, v := range x {
			grand[t] += v
		}
	}
	for t := range grand {
		grand[t] /= float64(n)
	}
	centroids, _, live := clusterStats(data, labels, k)
	counts := make([]int, k)
	for _, l := range labels {
		counts[l]++
	}
	between, within := 0.0, 0.0
	for _, j := range live {
		d := euclid(centroids[j], grand)
		between += float64(counts[j]) * d * d
	}
	for i, x := range data {
		d := euclid(x, centroids[labels[i]])
		within += d * d
	}
	//lint:ignore floatcmp exact zero within-cluster scatter guard
	if within == 0 {
		return 0
	}
	return (between / float64(k-1)) / (within / float64(n-k))
}

// clusterStats returns per-cluster centroids, mean member-to-centroid
// distances, and the list of non-empty cluster indices.
func clusterStats(data [][]float64, labels []int, k int) (centroids [][]float64, scatter []float64, live []int) {
	if len(data) == 0 {
		return nil, nil, nil
	}
	m := len(data[0])
	centroids = make([][]float64, k)
	counts := make([]int, k)
	for j := range centroids {
		centroids[j] = make([]float64, m)
	}
	for i, x := range data {
		l := labels[i]
		counts[l]++
		for t, v := range x {
			centroids[l][t] += v
		}
	}
	for j := range centroids {
		if counts[j] > 0 {
			for t := range centroids[j] {
				centroids[j][t] /= float64(counts[j])
			}
			live = append(live, j)
		}
	}
	scatter = make([]float64, k)
	for i, x := range data {
		scatter[labels[i]] += euclid(x, centroids[labels[i]])
	}
	for j := range scatter {
		if counts[j] > 0 {
			scatter[j] /= float64(counts[j])
		}
	}
	return centroids, scatter, live
}

func euclid(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
