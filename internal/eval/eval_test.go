package eval

import (
	"math"
	"math/rand"
	"testing"

	"kshape/internal/dist"
	"kshape/internal/ts"
)

func TestRandIndexPerfect(t *testing.T) {
	pred := []int{0, 0, 1, 1, 2}
	if r := RandIndex(pred, pred); r != 1 {
		t.Errorf("RandIndex(identical) = %v", r)
	}
	// Label permutation must not matter.
	perm := []int{2, 2, 0, 0, 1}
	if r := RandIndex(pred, perm); r != 1 {
		t.Errorf("RandIndex(permuted) = %v", r)
	}
}

func TestRandIndexKnownValue(t *testing.T) {
	// Classic example: pred = {0,0,1,1}, truth = {0,1,0,1}.
	// Pairs: (0,1) same-pred diff-truth FP; (0,2) diff-pred same-truth FN;
	// (0,3) diff/diff TN; (1,2) diff/diff TN; (1,3) diff-pred same-truth FN;
	// (2,3) same-pred diff-truth FP. R = 2/6.
	pred := []int{0, 0, 1, 1}
	truth := []int{0, 1, 0, 1}
	if r := RandIndex(pred, truth); math.Abs(r-2.0/6.0) > 1e-12 {
		t.Errorf("RandIndex = %v, want %v", r, 2.0/6.0)
	}
}

func TestRandIndexBruteForce(t *testing.T) {
	// Compare the contingency-table formula against the O(n²) definition.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		pred := make([]int, n)
		truth := make([]int, n)
		for i := range pred {
			pred[i] = rng.Intn(4)
			truth[i] = rng.Intn(3)
		}
		agree := 0
		total := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				samePred := pred[i] == pred[j]
				sameTruth := truth[i] == truth[j]
				if samePred == sameTruth {
					agree++
				}
				total++
			}
		}
		want := float64(agree) / float64(total)
		if got := RandIndex(pred, truth); math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: RandIndex = %v, brute force = %v", trial, got, want)
		}
	}
}

func TestRandIndexDegenerate(t *testing.T) {
	if r := RandIndex([]int{0}, []int{5}); r != 1 {
		t.Errorf("single point = %v", r)
	}
	if r := RandIndex(nil, nil); r != 1 {
		t.Errorf("empty = %v", r)
	}
}

func TestRandIndexPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RandIndex([]int{1}, []int{1, 2})
}

func TestAdjustedRandIndex(t *testing.T) {
	pred := []int{0, 0, 1, 1, 2, 2}
	if ari := AdjustedRandIndex(pred, pred); math.Abs(ari-1) > 1e-12 {
		t.Errorf("ARI(identical) = %v", ari)
	}
	// Independent random partitions should give ARI near 0 on average.
	rng := rand.New(rand.NewSource(2))
	sum := 0.0
	trials := 200
	for i := 0; i < trials; i++ {
		n := 60
		a := make([]int, n)
		b := make([]int, n)
		for j := range a {
			a[j] = rng.Intn(3)
			b[j] = rng.Intn(3)
		}
		sum += AdjustedRandIndex(a, b)
	}
	if avg := sum / float64(trials); math.Abs(avg) > 0.02 {
		t.Errorf("mean ARI of independent partitions = %v, want ~0", avg)
	}
}

func TestNMI(t *testing.T) {
	pred := []int{0, 0, 1, 1}
	if v := NMI(pred, pred); math.Abs(v-1) > 1e-12 {
		t.Errorf("NMI(identical) = %v", v)
	}
	// Completely uninformative clustering (one cluster) has zero MI.
	if v := NMI([]int{0, 0, 0, 0}, []int{0, 1, 0, 1}); v != 0 {
		t.Errorf("NMI(one cluster) = %v", v)
	}
	if v := NMI(nil, nil); v != 1 {
		t.Errorf("NMI(empty) = %v", v)
	}
}

// shiftedClassData builds two labeled shape classes with phase jitter.
func shiftedClassData(nPerClass, m int, rng *rand.Rand) []ts.Series {
	protoA := make([]float64, m)
	protoB := make([]float64, m)
	for i := range protoA {
		protoA[i] = math.Sin(2 * math.Pi * float64(i) / float64(m))
		protoB[i] = math.Abs(math.Sin(2*math.Pi*float64(i)/float64(m))) - 0.5
	}
	var out []ts.Series
	for c, proto := range [][]float64{protoA, protoB} {
		for i := 0; i < nPerClass; i++ {
			x := ts.Shift(proto, rng.Intn(7)-3)
			for j := range x {
				x[j] += 0.1 * rng.NormFloat64()
			}
			out = append(out, ts.NewLabeled(ts.ZNormalize(x), c))
		}
	}
	return out
}

func TestOneNNAccuracySeparableClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := shiftedClassData(20, 48, rng)
	test := shiftedClassData(15, 48, rng)
	for _, m := range []dist.Measure{dist.EDMeasure{}, dist.SBDMeasure{}, dist.DTWMeasure{}} {
		acc := OneNNAccuracy(m, train, test)
		if acc < 0.9 {
			t.Errorf("%s: accuracy = %v, want >= 0.9", m.Name(), acc)
		}
	}
}

func TestOneNNAccuracyEmpty(t *testing.T) {
	if acc := OneNNAccuracy(dist.EDMeasure{}, nil, nil); acc != 0 {
		t.Errorf("empty accuracy = %v", acc)
	}
}

func TestOneNNAccuracyLBMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train := shiftedClassData(15, 32, rng)
	test := shiftedClassData(10, 32, rng)
	w := 3
	plain := OneNNAccuracy(dist.CDTWMeasure{Window: w}, train, test)
	lb := OneNNAccuracyLB(w, train, test)
	if math.Abs(plain-lb) > 1e-12 {
		t.Errorf("LB-pruned accuracy %v != plain %v", lb, plain)
	}
}

func TestTuneCDTWWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train := shiftedClassData(12, 32, rng)
	w, acc := TuneCDTWWindow(train, 0.10)
	maxW := int(math.Round(0.10 * 32))
	if w < 0 || w > maxW {
		t.Errorf("window = %d outside [0, %d]", w, maxW)
	}
	if acc < 0.8 {
		t.Errorf("LOO accuracy = %v, want >= 0.8 on separable data", acc)
	}
}

func TestTuneCDTWWindowDegenerate(t *testing.T) {
	if w, acc := TuneCDTWWindow(nil, 0.05); w != 0 || acc != 0 {
		t.Errorf("empty train: w=%d acc=%v", w, acc)
	}
	one := []ts.Series{ts.NewLabeled([]float64{1, 2}, 0)}
	if w, acc := TuneCDTWWindow(one, 0.05); w != 0 || acc != 0 {
		t.Errorf("single train: w=%d acc=%v", w, acc)
	}
}

func TestTuneCDTWWindowPrefersWarpingWhenShifted(t *testing.T) {
	// With strong phase jitter and no noise, LOO should prefer w > 0.
	rng := rand.New(rand.NewSource(6))
	m := 40
	proto := make([]float64, m)
	for i := range proto {
		proto[i] = math.Sin(2 * math.Pi * float64(i) / float64(m))
	}
	var train []ts.Series
	for c := 0; c < 2; c++ {
		base := proto
		if c == 1 {
			base = make([]float64, m)
			for i := range base {
				base[i] = math.Sin(4 * math.Pi * float64(i) / float64(m))
			}
		}
		for i := 0; i < 10; i++ {
			x := ts.Shift(base, rng.Intn(5)-2)
			train = append(train, ts.NewLabeled(ts.ZNormalize(x), c))
		}
	}
	w, _ := TuneCDTWWindow(train, 0.2)
	if w == 0 {
		t.Log("note: window 0 won; acceptable when ED already separates the data")
	}
}

func TestSilhouetteWellSeparated(t *testing.T) {
	// Two tight, far-apart groups: silhouette near 1 for the true labels,
	// and clearly lower for a scrambled labeling.
	d := [][]float64{
		{0, 0.1, 5, 5},
		{0.1, 0, 5, 5},
		{5, 5, 0, 0.1},
		{5, 5, 0.1, 0},
	}
	good := Silhouette(d, []int{0, 0, 1, 1})
	if good < 0.9 {
		t.Errorf("silhouette of true clustering = %v, want > 0.9", good)
	}
	bad := Silhouette(d, []int{0, 1, 0, 1})
	if bad >= good {
		t.Errorf("scrambled labeling silhouette %v not below true %v", bad, good)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	d := [][]float64{{0, 1}, {1, 0}}
	if s := Silhouette(d, []int{0, 0}); s != 0 {
		t.Errorf("single cluster silhouette = %v, want 0", s)
	}
	// Singletons contribute 0.
	if s := Silhouette(d, []int{0, 1}); s != 0 {
		t.Errorf("all-singleton silhouette = %v, want 0", s)
	}
	if s := Silhouette(nil, nil); s != 0 {
		t.Errorf("empty silhouette = %v", s)
	}
}

func TestSilhouettePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Silhouette([][]float64{{0}}, []int{0, 1})
}

func blobData(perBlob, m int, rng *rand.Rand) ([][]float64, []int) {
	var data [][]float64
	var labels []int
	for b := 0; b < 3; b++ {
		for i := 0; i < perBlob; i++ {
			x := make([]float64, m)
			for j := range x {
				x[j] = float64(b)*10 + rng.NormFloat64()
			}
			data = append(data, x)
			labels = append(labels, b)
		}
	}
	return data, labels
}

func TestDaviesBouldinPrefersTrueClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data, truth := blobData(10, 8, rng)
	good := DaviesBouldin(data, truth, 3)
	scrambled := make([]int, len(truth))
	for i := range scrambled {
		scrambled[i] = i % 3
	}
	bad := DaviesBouldin(data, scrambled, 3)
	if good >= bad {
		t.Errorf("DB(true)=%v should be below DB(scrambled)=%v", good, bad)
	}
	if good <= 0 {
		t.Errorf("DB of noisy blobs should be positive, got %v", good)
	}
}

func TestDaviesBouldinDegenerate(t *testing.T) {
	data := [][]float64{{1}, {2}}
	if v := DaviesBouldin(data, []int{0, 0}, 2); v != 0 {
		t.Errorf("single live cluster DB = %v, want 0", v)
	}
}

func TestCalinskiHarabaszPrefersTrueClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data, truth := blobData(10, 8, rng)
	good := CalinskiHarabasz(data, truth, 3)
	scrambled := make([]int, len(truth))
	for i := range scrambled {
		scrambled[i] = i % 3
	}
	bad := CalinskiHarabasz(data, scrambled, 3)
	if good <= bad {
		t.Errorf("CH(true)=%v should exceed CH(scrambled)=%v", good, bad)
	}
}

func TestCalinskiHarabaszDegenerate(t *testing.T) {
	data := [][]float64{{1}, {2}, {3}}
	if v := CalinskiHarabasz(data, []int{0, 0, 0}, 1); v != 0 {
		t.Errorf("k=1 CH = %v, want 0", v)
	}
	// Perfect clusters => zero within dispersion => defined as 0.
	if v := CalinskiHarabasz([][]float64{{1}, {1}, {5}, {5}}, []int{0, 0, 1, 1}, 2); v != 0 {
		t.Errorf("zero-within CH = %v, want 0", v)
	}
}

func TestValidityPanicsOnMismatch(t *testing.T) {
	for _, f := range []func(){
		func() { DaviesBouldin([][]float64{{1}}, []int{0, 1}, 2) },
		func() { CalinskiHarabasz([][]float64{{1}}, []int{0, 1}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
