// Package eval implements the evaluation metrics of the paper's Section 4:
// the Rand Index for clustering accuracy, 1-NN classification accuracy for
// distance-measure quality, and the leave-one-out warping-window tuning
// used by cDTWopt.
package eval

import (
	"fmt"
	"math"
)

// RandIndex computes the Rand Index between a predicted clustering and the
// ground-truth classes:
//
//	R = (TP + TN) / (TP + TN + FP + FN)
//
// over all pairs of series, where TP counts pairs in the same class and the
// same cluster, and TN pairs in different classes and different clusters.
// It is computed in O(n + C·K) via the pair-count contingency table rather
// than the O(n²) pair loop.
func RandIndex(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: RandIndex length mismatch %d vs %d", len(pred), len(truth)))
	}
	n := len(pred)
	if n < 2 {
		return 1
	}
	cont, rowSum, colSum := contingency(pred, truth)
	var sumSq float64
	for _, row := range cont {
		for _, v := range row {
			sumSq += float64(v) * float64(v)
		}
	}
	var sumRowSq, sumColSq float64
	for _, v := range rowSum {
		sumRowSq += float64(v) * float64(v)
	}
	for _, v := range colSum {
		sumColSq += float64(v) * float64(v)
	}
	nf := float64(n)
	total := nf * (nf - 1) / 2
	tp := (sumSq - nf) / 2
	fp := (sumRowSq - sumSq) / 2
	fn := (sumColSq - sumSq) / 2
	tn := total - tp - fp - fn
	return (tp + tn) / total
}

// AdjustedRandIndex computes the chance-corrected Rand Index (Hubert &
// Arabie). It is 1 for identical partitions and ~0 for independent ones;
// provided alongside the paper's plain Rand Index for users who need a
// chance-corrected score.
func AdjustedRandIndex(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: AdjustedRandIndex length mismatch %d vs %d", len(pred), len(truth)))
	}
	n := len(pred)
	if n < 2 {
		return 1
	}
	cont, rowSum, colSum := contingency(pred, truth)
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var index float64
	for _, row := range cont {
		for _, v := range row {
			index += choose2(v)
		}
	}
	var a, b float64
	for _, v := range rowSum {
		a += choose2(v)
	}
	for _, v := range colSum {
		b += choose2(v)
	}
	expected := a * b / choose2(n)
	maxIndex := (a + b) / 2
	//lint:ignore floatcmp degenerate-partition guard; exact equality means the denominator below is 0
	if maxIndex == expected {
		return 1 // both partitions fully determined (e.g. all singletons)
	}
	return (index - expected) / (maxIndex - expected)
}

// NMI computes the normalized mutual information between the partitions,
// normalized by the arithmetic mean of the entropies. Like ARI it is an
// extra metric beyond the paper's Rand Index.
func NMI(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: NMI length mismatch %d vs %d", len(pred), len(truth)))
	}
	n := float64(len(pred))
	//lint:ignore floatcmp exact zero-pair-count guard
	if n == 0 {
		return 1
	}
	cont, rowSum, colSum := contingency(pred, truth)
	var mi float64
	for i, row := range cont {
		for j, v := range row {
			if v == 0 {
				continue
			}
			p := float64(v) / n
			mi += p * math.Log(p*n/(float64(rowSum[i])*float64(colSum[j])/n))
		}
	}
	entropy := func(sums []int) float64 {
		h := 0.0
		for _, v := range sums {
			if v == 0 {
				continue
			}
			p := float64(v) / n
			h -= p * math.Log(p)
		}
		return h
	}
	hp, ht := entropy(rowSum), entropy(colSum)
	//lint:ignore floatcmp exact zero-entropy guard for single-cluster partitions
	if hp == 0 && ht == 0 {
		return 1
	}
	den := (hp + ht) / 2
	//lint:ignore floatcmp exact zero-denominator guard
	if den == 0 {
		return 0
	}
	return mi / den
}

// contingency builds the cluster×class count table with dense reindexing of
// arbitrary label values.
func contingency(pred, truth []int) (cont [][]int, rowSum, colSum []int) {
	predIdx := denseIndex(pred)
	truthIdx := denseIndex(truth)
	cont = make([][]int, len(predIdx))
	for i := range cont {
		cont[i] = make([]int, len(truthIdx))
	}
	rowSum = make([]int, len(predIdx))
	colSum = make([]int, len(truthIdx))
	for i := range pred {
		r := predIdx[pred[i]]
		c := truthIdx[truth[i]]
		cont[r][c]++
		rowSum[r]++
		colSum[c]++
	}
	return cont, rowSum, colSum
}

func denseIndex(labels []int) map[int]int {
	idx := map[int]int{}
	for _, l := range labels {
		if _, ok := idx[l]; !ok {
			idx[l] = len(idx)
		}
	}
	return idx
}
