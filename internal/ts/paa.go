package ts

import "fmt"

// PAA computes the Piecewise Aggregate Approximation of x with the given
// number of segments: the series is partitioned into equal-width (possibly
// fractional) windows and each window is replaced by its mean. The paper
// (Section 3.3) recommends this kind of dimensionality reduction when the
// series length m approaches the collection size n, since k-Shape's
// per-iteration cost is dominated by m.
//
// Fractional boundaries are handled by weighting the straddling samples, so
// any 1 <= segments <= len(x) is valid and PAA(x, len(x)) == x.
func PAA(x []float64, segments int) []float64 {
	m := len(x)
	if segments < 1 || segments > m {
		panic(fmt.Sprintf("ts: PAA segments %d out of [1, %d]", segments, m))
	}
	if segments == m {
		out := make([]float64, m)
		copy(out, x)
		return out
	}
	out := make([]float64, segments)
	width := float64(m) / float64(segments)
	for s := 0; s < segments; s++ {
		lo := float64(s) * width
		hi := lo + width
		sum := 0.0
		// Integrate x as a step function over [lo, hi).
		for i := int(lo); i < m && float64(i) < hi; i++ {
			a := maxF(lo, float64(i))
			b := minF(hi, float64(i+1))
			if b > a {
				sum += x[i] * (b - a)
			}
		}
		out[s] = sum / width
	}
	return out
}

// PAAAll applies PAA to every row of data.
func PAAAll(data [][]float64, segments int) [][]float64 {
	out := make([][]float64, len(data))
	for i, x := range data {
		out[i] = PAA(x, segments)
	}
	return out
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
