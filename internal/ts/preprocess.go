package ts

import "fmt"

// Resample linearly interpolates x onto n uniformly spaced points. This is
// the preprocessing for the paper's *uniform scaling invariance*
// (Section 2.2): sequences of different lengths are stretched or shrunk to
// a common length before a fixed-length distance measure is applied.
func Resample(x []float64, n int) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("ts: Resample to non-positive length %d", n))
	}
	if len(x) == 0 {
		return make([]float64, n)
	}
	out := make([]float64, n)
	if len(x) == 1 || n == 1 {
		for i := range out {
			out[i] = x[0]
		}
		return out
	}
	scale := float64(len(x)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		pos := float64(i) * scale
		lo := int(pos)
		if lo >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = x[lo]*(1-frac) + x[lo+1]*frac
	}
	return out
}

// ResampleAll resamples every series (possibly of different lengths) to a
// common length n, the preprocessing step for mixed-length collections.
func ResampleAll(data []Series, n int) []Series {
	out := make([]Series, len(data))
	for i, s := range data {
		out[i] = NewLabeled(Resample(s.Values, n), s.Label)
	}
	return out
}

// Detrend removes the least-squares linear trend from x, returning the
// residuals. Useful before shape comparison when a global drift (e.g.
// inflation in the paper's currency example, Section 2.2) would otherwise
// dominate the z-normalized shape.
func Detrend(x []float64) []float64 {
	m := len(x)
	out := make([]float64, m)
	if m < 2 {
		copy(out, x)
		return out
	}
	// Least squares of x against t = 0..m-1.
	tMean := float64(m-1) / 2
	xMean := Mean(x)
	num, den := 0.0, 0.0
	for i, v := range x {
		dt := float64(i) - tMean
		num += dt * (v - xMean)
		den += dt * dt
	}
	slope := 0.0
	//lint:ignore floatcmp exact zero-denominator guard
	if den != 0 {
		slope = num / den
	}
	for i, v := range x {
		out[i] = v - (xMean + slope*(float64(i)-tMean))
	}
	return out
}

// MovingAverage smooths x with a centered window of the given odd width
// (edges use the available samples). Width 1 returns a copy.
func MovingAverage(x []float64, width int) []float64 {
	if width < 1 || width%2 == 0 {
		panic(fmt.Sprintf("ts: MovingAverage width %d must be odd and positive", width))
	}
	m := len(x)
	out := make([]float64, m)
	half := width / 2
	for i := 0; i < m; i++ {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi > m-1 {
			hi = m - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += x[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// Difference returns the first difference x[i+1] - x[i] (length m-1),
// a standard stationarity transform.
func Difference(x []float64) []float64 {
	if len(x) < 2 {
		return nil
	}
	out := make([]float64, len(x)-1)
	for i := range out {
		out[i] = x[i+1] - x[i]
	}
	return out
}
