// Package ts provides the basic time-series container and the normalization
// primitives that the rest of the library builds on: z-normalization,
// range normalization, optimal-scaling alignment, and integer shifting.
//
// All functions operate on []float64 slices; a Series couples such a slice
// with an integer class label so that labeled datasets (used for evaluating
// clustering quality) can be passed around as a single value.
package ts

import (
	"errors"
	"fmt"
	"math"
)

// Series is a single univariate time series together with an optional class
// label. Label is -1 when the series is unlabeled.
type Series struct {
	Values []float64
	Label  int
}

// New returns an unlabeled series wrapping values. The slice is not copied.
func New(values []float64) Series {
	return Series{Values: values, Label: -1}
}

// NewLabeled returns a labeled series wrapping values. The slice is not copied.
func NewLabeled(values []float64, label int) Series {
	return Series{Values: values, Label: label}
}

// Len returns the number of observations in the series.
func (s Series) Len() int { return len(s.Values) }

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	v := make([]float64, len(s.Values))
	copy(v, s.Values)
	return Series{Values: v, Label: s.Label}
}

// ErrEmpty is returned by operations that require a non-empty series.
var ErrEmpty = errors.New("ts: empty series")

// ErrLengthMismatch is returned by pairwise operations on series of
// different lengths when equal lengths are required.
var ErrLengthMismatch = errors.New("ts: series length mismatch")

// Mean returns the arithmetic mean of x. It returns 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Std returns the population standard deviation of x (dividing by n, as in
// the paper's z-normalization). It returns 0 for slices shorter than 1.
func Std(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	mu := Mean(x)
	ss := 0.0
	for _, v := range x {
		d := v - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(x)))
}

// Norm returns the Euclidean (L2) norm of x.
func Norm(x []float64) float64 {
	ss := 0.0
	for _, v := range x {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// Dot returns the inner product of x and y. It panics if lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("ts: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// degenerateStdRatio is the threshold below which a standard deviation is
// treated as zero relative to the mean's magnitude. A floating-point
// constant series can produce a non-zero Std purely from summation rounding
// (e.g. 127 copies of -1.7954023232620309 give Std ≈ 1.8e-15), and dividing
// by that noise would map a constant series to the constant 1 instead of
// the documented all-zeros. Rounding noise in the mean is bounded by about
// eps·m·|mu|, far below this threshold for any realistic series length,
// while genuinely low-variance data (sd/|mu| ≥ 1e-10, say) is unaffected.
const degenerateStdRatio = 1e-12

// zstats returns the mean and standard deviation used for z-normalization,
// flushing a rounding-noise-level deviation to exactly zero so degenerate
// (constant) series are detected robustly.
func zstats(x []float64) (mu, sd float64) {
	mu = Mean(x)
	sd = Std(x)
	if sd <= degenerateStdRatio*math.Abs(mu) {
		sd = 0
	}
	return mu, sd
}

// ZNormalize returns a new slice with mean 0 and standard deviation 1:
// x' = (x - mean(x)) / std(x). A constant (zero-variance) series is mapped
// to all zeros, which keeps downstream distance computations well defined.
func ZNormalize(x []float64) []float64 {
	out := make([]float64, len(x))
	mu, sd := zstats(x)
	//lint:ignore floatcmp exact zero-variance guard; constant series stay constant
	if sd == 0 {
		return out // all zeros
	}
	for i, v := range x {
		out[i] = (v - mu) / sd
	}
	return out
}

// ZNormalizeInPlace z-normalizes x in place and returns it.
func ZNormalizeInPlace(x []float64) []float64 {
	mu, sd := zstats(x)
	//lint:ignore floatcmp exact zero-variance guard; constant series stay constant
	if sd == 0 {
		for i := range x {
			x[i] = 0
		}
		return x
	}
	for i := range x {
		x[i] = (x[i] - mu) / sd
	}
	return x
}

// IsZNormalized reports whether x has mean ~0 and std ~1 (or is all zeros)
// within tol.
func IsZNormalized(x []float64, tol float64) bool {
	if len(x) == 0 {
		return true
	}
	mu := Mean(x)
	sd := Std(x)
	if math.Abs(mu) > tol {
		return false
	}
	return math.Abs(sd-1) <= tol || sd <= tol
}

// Normalize01 rescales x into [0, 1]: x' = (x - min) / (max - min).
// A constant series is mapped to all zeros. This is the
// "ValuesBetween0-1" normalization of the paper's Appendix A.
func Normalize01(x []float64) []float64 {
	out := make([]float64, len(x))
	if len(x) == 0 {
		return out
	}
	lo, hi := x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	//lint:ignore floatcmp exact degenerate-range guard before dividing by the span
	if hi == lo {
		return out
	}
	for i, v := range x {
		out[i] = (v - lo) / (hi - lo)
	}
	return out
}

// OptimalScale returns the least-squares scaling coefficient
// c = (x·y) / (y·y) that best matches c*y to x, as used by the
// "OptimalScaling" normalization of the paper's Appendix A.
// It returns 0 when y has zero energy.
func OptimalScale(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("ts: OptimalScale length mismatch %d vs %d", len(x), len(y)))
	}
	den := Dot(y, y)
	//lint:ignore floatcmp exact zero-denominator guard
	if den == 0 {
		return 0
	}
	return Dot(x, y) / den
}

// Scale returns a new slice c*y.
func Scale(y []float64, c float64) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = c * v
	}
	return out
}

// Shift returns y shifted by s positions, zero-padded, per Equation 5 of the
// paper: for s >= 0 the series moves right (s leading zeros); for s < 0 it
// moves left (|s| trailing zeros). The result has the same length as y.
func Shift(y []float64, s int) []float64 {
	m := len(y)
	out := make([]float64, m)
	if s >= m || -s >= m {
		return out // shifted entirely out of the window
	}
	if s >= 0 {
		copy(out[s:], y[:m-s])
	} else {
		copy(out, y[-s:])
	}
	return out
}

// ShiftInto is Shift writing into dst (length m), allocating nothing. dst
// may alias y: for s >= 0 the copy moves data right and the zero-fill
// follows it, for s < 0 the copy moves data left, so in both directions
// every source element is read before it is overwritten.
//
//kshape:hotpath
func ShiftInto(dst, y []float64, s int) {
	m := len(y)
	if len(dst) != m {
		panic("ts: ShiftInto length mismatch")
	}
	if s >= m || -s >= m {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if s >= 0 {
		copy(dst[s:], y[:m-s])
		for i := 0; i < s; i++ {
			dst[i] = 0
		}
	} else {
		copy(dst, y[-s:])
		for i := m + s; i < m; i++ {
			dst[i] = 0
		}
	}
}

// Reverse returns a new slice with the elements of x in reverse order.
func Reverse(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[len(x)-1-i] = v
	}
	return out
}

// Matrix is a dense n×m collection of equal-length rows, the layout used for
// cluster inputs ("an n-by-m matrix with z-normalized time series" in the
// paper's pseudocode).
type Matrix [][]float64

// NewMatrix allocates an n×m zero matrix backed by a single contiguous slice.
func NewMatrix(n, m int) Matrix {
	backing := make([]float64, n*m)
	rows := make(Matrix, n)
	for i := range rows {
		rows[i] = backing[i*m : (i+1)*m : (i+1)*m]
	}
	return rows
}

// Rows returns the values of labeled series as a Matrix (no copying).
func Rows(data []Series) Matrix {
	m := make(Matrix, len(data))
	for i, s := range data {
		m[i] = s.Values
	}
	return m
}

// Labels returns the labels of data as a slice.
func Labels(data []Series) []int {
	out := make([]int, len(data))
	for i, s := range data {
		out[i] = s.Label
	}
	return out
}

// ZNormalizeAll z-normalizes every series in data in place.
func ZNormalizeAll(data []Series) {
	for i := range data {
		ZNormalizeInPlace(data[i].Values)
	}
}

// EqualLength verifies that all series in data share one length and returns
// it. It returns an error for an empty collection or ragged lengths.
func EqualLength(data []Series) (int, error) {
	if len(data) == 0 {
		return 0, ErrEmpty
	}
	m := data[0].Len()
	for i, s := range data {
		if s.Len() != m {
			return 0, fmt.Errorf("%w: series 0 has length %d, series %d has length %d",
				ErrLengthMismatch, m, i, s.Len())
		}
	}
	return m, nil
}
