package ts

import (
	"math/rand"
	"testing"
)

// TestShiftIntoAllocFree pins the //kshape:hotpath shift kernel at zero
// allocations in both directions and in the shifted-out degenerate
// case; the refinement loop calls it once per member per iteration.
func TestShiftIntoAllocFree(t *testing.T) {
	const m = 128
	rng := rand.New(rand.NewSource(7))
	y := make([]float64, m)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	dst := make([]float64, m)
	if a := testing.AllocsPerRun(100, func() {
		ShiftInto(dst, y, 9)
		ShiftInto(dst, y, -9)
		ShiftInto(dst, y, m+1)
	}); a != 0 {
		t.Errorf("ShiftInto allocates %v per run, want 0", a)
	}
}
