// Fuzz target for the normalization primitives, in an external test package
// to use the shared testkit helpers.
package ts_test

import (
	"math"
	"testing"

	"kshape/internal/testkit"
	"kshape/internal/ts"
)

// constantSeries is the regression seed the differential harness surfaced:
// 127 copies of this value accumulate summation rounding in Mean, so Std
// came out as ~1.8e-15 instead of 0 and ZNormalize mapped the constant
// series to all ones instead of all zeros.
const constantSeriesValue = -1.7954023232620309

func constantSeries() []float64 {
	vals := make([]float64, 127)
	for i := range vals {
		vals[i] = constantSeriesValue
	}
	return vals
}

func FuzzZNormalize(f *testing.F) {
	f.Add(testkit.EncodeFloats([]float64{1, 2, 3, 4, 5}))
	f.Add(testkit.EncodeFloats(constantSeries()))
	f.Add(testkit.EncodeFloats([]float64{1e6, -1e6, 0.5}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		x := testkit.DecodeFloats(data, 512)
		if len(x) == 0 {
			return
		}
		out := ts.ZNormalize(x)
		if len(out) != len(x) {
			t.Fatalf("length %d, want %d", len(out), len(x))
		}
		// Copy and in-place paths are bit-identical.
		inPlace := ts.ZNormalizeInPlace(append([]float64(nil), x...))
		for i := range out {
			if math.Float64bits(out[i]) != math.Float64bits(inPlace[i]) {
				t.Fatalf("ZNormalize vs InPlace differ at %d: %v vs %v", i, out[i], inPlace[i])
			}
		}
		for i, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite output %v at %d (input %v)", v, i, x[i])
			}
		}
		mu, sd := ts.Mean(x), ts.Std(x)
		maxAbs := 0.0
		for _, v := range x {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		// Strict distributional invariants only hold when the variance is
		// well above the rounding noise of the mean (~eps·maxAbs); below
		// that the normalization is conditioning-limited by construction.
		wellConditioned := sd > 1e-7*(1+maxAbs)
		if wellConditioned {
			if !ts.IsZNormalized(out, 1e-6) {
				t.Fatalf("output fails IsZNormalized: mean=%v std=%v (input mean=%v std=%v)",
					ts.Mean(out), ts.Std(out), mu, sd)
			}
			// Idempotence: normalizing an already-normalized series is a
			// near-no-op.
			twice := ts.ZNormalize(out)
			for i := range out {
				if !testkit.Close(twice[i], out[i], 1e-9) {
					t.Fatalf("not idempotent at %d: %v vs %v", i, twice[i], out[i])
				}
			}
			// Affine invariance: ZNormalize(a·x + b) == ZNormalize(x) for
			// a > 0. a and b are derived from the input deterministically.
			a := 0.5 + 1.5*float64(len(data)%89)/88
			b := float64(len(data)%101) - 50
			shifted := make([]float64, len(x))
			for i, v := range x {
				shifted[i] = a*v + b
			}
			if sa := ts.Std(shifted); sa > 1e-7*(1+math.Abs(ts.Mean(shifted))+a*maxAbs) {
				affine := ts.ZNormalize(shifted)
				for i := range out {
					if !testkit.Close(affine[i], out[i], 1e-6) {
						t.Fatalf("affine invariance broken at %d: %v vs %v (a=%v b=%v)", i, affine[i], out[i], a, b)
					}
				}
			}
		}
		// A constant series must normalize to exactly zeros, however the
		// rounding noise falls (the constantSeries seed pins the historical
		// failure).
		if isConstant(x) {
			for i, v := range out {
				if v != 0 {
					t.Fatalf("constant series normalized to %v at %d (value %v, m=%d)", v, i, x[0], len(x))
				}
			}
		}
	})
}

func isConstant(x []float64) bool {
	for _, v := range x {
		if math.Float64bits(v) != math.Float64bits(x[0]) {
			return false
		}
	}
	return true
}
