package ts

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStd(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		mean float64
		std  float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{3}, 3, 0},
		{"constant", []float64{2, 2, 2, 2}, 2, 0},
		{"simple", []float64{1, 2, 3, 4}, 2.5, math.Sqrt(1.25)},
		{"negative", []float64{-1, 1}, 0, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.in); !almostEqual(got, c.mean, 1e-12) {
				t.Errorf("Mean = %v, want %v", got, c.mean)
			}
			if got := Std(c.in); !almostEqual(got, c.std, 1e-12) {
				t.Errorf("Std = %v, want %v", got, c.std)
			}
		})
	}
}

func TestZNormalize(t *testing.T) {
	x := []float64{3, 7, -2, 0, 5, 5, 1}
	z := ZNormalize(x)
	if !almostEqual(Mean(z), 0, 1e-12) {
		t.Errorf("mean after z-norm = %v", Mean(z))
	}
	if !almostEqual(Std(z), 1, 1e-12) {
		t.Errorf("std after z-norm = %v", Std(z))
	}
	// Original must be untouched.
	if x[0] != 3 {
		t.Errorf("input mutated: %v", x)
	}
}

func TestZNormalizeConstant(t *testing.T) {
	z := ZNormalize([]float64{5, 5, 5})
	for _, v := range z {
		if v != 0 {
			t.Fatalf("constant series should z-normalize to zeros, got %v", z)
		}
	}
}

func TestZNormalizeInPlace(t *testing.T) {
	x := []float64{1, 2, 3}
	out := ZNormalizeInPlace(x)
	if &out[0] != &x[0] {
		t.Error("ZNormalizeInPlace should return the same backing slice")
	}
	if !IsZNormalized(x, 1e-9) {
		t.Errorf("not z-normalized: %v", x)
	}
}

func TestZNormalizeScaleTranslationInvariance(t *testing.T) {
	// z(a*x + b) == z(x) for a > 0: the scaling/translation invariance that
	// the paper achieves through z-normalization (Section 2.2).
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	zx := ZNormalize(x)
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3.7*v - 12.5
	}
	zy := ZNormalize(y)
	for i := range zx {
		if !almostEqual(zx[i], zy[i], 1e-9) {
			t.Fatalf("z-norm not scale/translation invariant at %d: %v vs %v", i, zx[i], zy[i])
		}
	}
}

func TestNormalize01(t *testing.T) {
	x := []float64{2, 4, 6}
	got := Normalize01(x)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("Normalize01 = %v, want %v", got, want)
		}
	}
	if z := Normalize01([]float64{1, 1}); z[0] != 0 || z[1] != 0 {
		t.Errorf("constant series should map to zeros, got %v", z)
	}
	if z := Normalize01(nil); len(z) != 0 {
		t.Errorf("empty input should give empty output")
	}
}

func TestNormalize01Property(t *testing.T) {
	f := func(raw []float64) bool {
		in := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				in = append(in, math.Mod(v, 1e6))
			}
		}
		out := Normalize01(in)
		for _, v := range out {
			if v < 0 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOptimalScale(t *testing.T) {
	y := []float64{1, 2, 3}
	x := []float64{2, 4, 6}
	if c := OptimalScale(x, y); !almostEqual(c, 2, 1e-12) {
		t.Errorf("OptimalScale = %v, want 2", c)
	}
	if c := OptimalScale(x, []float64{0, 0, 0}); c != 0 {
		t.Errorf("zero-energy y should give 0, got %v", c)
	}
}

func TestOptimalScaleMinimizesResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	c := OptimalScale(x, y)
	res := func(cc float64) float64 {
		s := 0.0
		for i := range x {
			d := x[i] - cc*y[i]
			s += d * d
		}
		return s
	}
	best := res(c)
	for _, dc := range []float64{-0.1, -0.01, 0.01, 0.1} {
		if res(c+dc) < best-1e-9 {
			t.Fatalf("c=%v is not a least-squares minimum (c+%v is better)", c, dc)
		}
	}
}

func TestShift(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	cases := []struct {
		s    int
		want []float64
	}{
		{0, []float64{1, 2, 3, 4}},
		{1, []float64{0, 1, 2, 3}},
		{3, []float64{0, 0, 0, 1}},
		{4, []float64{0, 0, 0, 0}},
		{9, []float64{0, 0, 0, 0}},
		{-1, []float64{2, 3, 4, 0}},
		{-3, []float64{4, 0, 0, 0}},
		{-4, []float64{0, 0, 0, 0}},
	}
	for _, c := range cases {
		got := Shift(y, c.s)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("Shift(%v, %d) = %v, want %v", y, c.s, got, c.want)
				break
			}
		}
	}
}

func TestShiftRoundTripProperty(t *testing.T) {
	// Shifting right then left by s preserves the prefix that stayed in the
	// window.
	f := func(vals []float64, s uint8) bool {
		if len(vals) == 0 {
			return true
		}
		k := int(s) % len(vals)
		back := Shift(Shift(vals, k), -k)
		for i := 0; i < len(vals)-k; i++ {
			if back[i] != vals[i] {
				return false
			}
		}
		for i := len(vals) - k; i < len(vals); i++ {
			if back[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReverse(t *testing.T) {
	got := Reverse([]float64{1, 2, 3})
	want := []float64{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Reverse = %v, want %v", got, want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched lengths")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNewMatrix(t *testing.T) {
	m := NewMatrix(3, 4)
	if len(m) != 3 || len(m[0]) != 4 {
		t.Fatalf("NewMatrix shape = %dx%d", len(m), len(m[0]))
	}
	m[1][2] = 5
	if m[0][2] != 0 || m[2][2] != 0 {
		t.Error("rows alias each other")
	}
}

func TestEqualLength(t *testing.T) {
	data := []Series{New([]float64{1, 2}), New([]float64{3, 4})}
	m, err := EqualLength(data)
	if err != nil || m != 2 {
		t.Fatalf("EqualLength = %d, %v", m, err)
	}
	if _, err := EqualLength(nil); err == nil {
		t.Error("expected error on empty collection")
	}
	ragged := []Series{New([]float64{1}), New([]float64{1, 2})}
	if _, err := EqualLength(ragged); err == nil {
		t.Error("expected error on ragged lengths")
	}
}

func TestSeriesCloneAndAccessors(t *testing.T) {
	s := NewLabeled([]float64{1, 2, 3}, 7)
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Error("Clone shares backing array")
	}
	if s.Len() != 3 || s.Label != 7 {
		t.Errorf("accessors: len=%d label=%d", s.Len(), s.Label)
	}
	if u := New([]float64{1}); u.Label != -1 {
		t.Errorf("New should be unlabeled, got %d", u.Label)
	}
}

func TestRowsAndLabels(t *testing.T) {
	data := []Series{NewLabeled([]float64{1}, 0), NewLabeled([]float64{2}, 1)}
	r := Rows(data)
	if r[0][0] != 1 || r[1][0] != 2 {
		t.Errorf("Rows = %v", r)
	}
	l := Labels(data)
	if l[0] != 0 || l[1] != 1 {
		t.Errorf("Labels = %v", l)
	}
}

func TestZNormalizeAll(t *testing.T) {
	data := []Series{New([]float64{1, 2, 3, 4}), New([]float64{10, 20, 30, 40})}
	ZNormalizeAll(data)
	for i, s := range data {
		if !IsZNormalized(s.Values, 1e-9) {
			t.Errorf("series %d not z-normalized: %v", i, s.Values)
		}
	}
}

func TestIsZNormalized(t *testing.T) {
	if !IsZNormalized([]float64{}, 1e-9) {
		t.Error("empty should count as normalized")
	}
	if !IsZNormalized([]float64{0, 0, 0}, 1e-9) {
		t.Error("all-zero should count as normalized (degenerate case)")
	}
	if IsZNormalized([]float64{5, 6, 7}, 1e-9) {
		t.Error("unnormalized series misreported")
	}
}

func TestPAAKnownValues(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	got := PAA(x, 3)
	want := []float64{1.5, 3.5, 5.5}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("PAA = %v, want %v", got, want)
		}
	}
}

func TestPAAFractionalBoundaries(t *testing.T) {
	// 5 samples into 2 segments: segment width 2.5, so sample 2 is split
	// evenly between the two segments.
	x := []float64{2, 4, 10, 6, 8}
	got := PAA(x, 2)
	want := []float64{(2 + 4 + 0.5*10) / 2.5, (0.5*10 + 6 + 8) / 2.5}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("PAA = %v, want %v", got, want)
		}
	}
}

func TestPAAIdentityAndExtremes(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5}
	id := PAA(x, 5)
	for i := range x {
		if id[i] != x[i] {
			t.Fatalf("PAA(x, m) = %v, want copy of x", id)
		}
	}
	if &id[0] == &x[0] {
		t.Error("PAA must not alias its input")
	}
	one := PAA(x, 1)
	if !almostEqual(one[0], Mean(x), 1e-12) {
		t.Errorf("PAA(x, 1) = %v, want the mean %v", one[0], Mean(x))
	}
}

func TestPAAMeanPreservation(t *testing.T) {
	// The weighted segment means must preserve the global mean for any
	// segment count (the segments tile [0, m) exactly).
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 37)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, segs := range []int{1, 2, 5, 7, 36, 37} {
		p := PAA(x, segs)
		if !almostEqual(Mean(p), Mean(x), 1e-9) {
			t.Errorf("segments=%d: mean %v != %v", segs, Mean(p), Mean(x))
		}
	}
}

func TestPAAPanicsOnBadSegments(t *testing.T) {
	for _, segs := range []int{0, -1, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PAA with %d segments should panic", segs)
				}
			}()
			PAA([]float64{1, 2, 3, 4, 5}, segs)
		}()
	}
}

func TestPAAAll(t *testing.T) {
	data := [][]float64{{1, 2, 3, 4}, {4, 3, 2, 1}}
	out := PAAAll(data, 2)
	if len(out) != 2 || len(out[0]) != 2 {
		t.Fatalf("PAAAll shape wrong: %v", out)
	}
	if out[0][0] != 1.5 || out[1][0] != 3.5 {
		t.Errorf("PAAAll = %v", out)
	}
}

func TestResample(t *testing.T) {
	got := Resample([]float64{0, 1, 2, 3}, 7)
	want := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("Resample = %v, want %v", got, want)
		}
	}
	// Downsampling keeps the endpoints.
	down := Resample([]float64{0, 1, 2, 3, 4, 5, 6}, 3)
	if down[0] != 0 || down[2] != 6 || !almostEqual(down[1], 3, 1e-12) {
		t.Errorf("downsample = %v", down)
	}
	if one := Resample([]float64{5}, 4); one[3] != 5 {
		t.Errorf("constant resample = %v", one)
	}
	if z := Resample(nil, 3); len(z) != 3 {
		t.Errorf("empty resample = %v", z)
	}
}

func TestResamplePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Resample([]float64{1}, 0)
}

func TestResampleAllUniformScaling(t *testing.T) {
	data := []Series{
		NewLabeled([]float64{0, 2, 4}, 0),
		NewLabeled([]float64{0, 1, 2, 3, 4}, 1),
	}
	out := ResampleAll(data, 5)
	for i, s := range out {
		if s.Len() != 5 {
			t.Fatalf("series %d length %d", i, s.Len())
		}
		if s.Label != data[i].Label {
			t.Errorf("label lost")
		}
	}
	// Both ramps resample to the same shape.
	for i := range out[0].Values {
		if !almostEqual(out[0].Values[i], out[1].Values[i], 1e-12) {
			t.Fatalf("uniform scaling failed: %v vs %v", out[0].Values, out[1].Values)
		}
	}
}

func TestDetrendRemovesLinearTrend(t *testing.T) {
	x := make([]float64, 50)
	for i := range x {
		x[i] = 3*float64(i) - 7
	}
	res := Detrend(x)
	for i, v := range res {
		if !almostEqual(v, 0, 1e-9) {
			t.Fatalf("residual[%d] = %v, want 0 for a pure trend", i, v)
		}
	}
	// Short inputs pass through.
	if got := Detrend([]float64{5}); got[0] != 5 {
		t.Errorf("Detrend single = %v", got)
	}
}

func TestDetrendPreservesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	base := make([]float64, 60)
	for i := range base {
		base[i] = math.Sin(2 * math.Pi * float64(i) / 20)
	}
	drifted := make([]float64, len(base))
	for i := range base {
		drifted[i] = base[i] + 0.5*float64(i)
	}
	_ = rng
	res := Detrend(drifted)
	// After detrending, the series should correlate strongly with the base.
	if c := Dot(ZNormalize(res), ZNormalize(base)) / float64(len(base)); c < 0.95 {
		t.Errorf("correlation after detrend = %v", c)
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(x, 3)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("MovingAverage = %v, want %v", got, want)
		}
	}
	id := MovingAverage(x, 1)
	for i := range x {
		if id[i] != x[i] {
			t.Fatal("width-1 window should be identity")
		}
	}
}

func TestMovingAveragePanicsOnEvenWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MovingAverage([]float64{1, 2}, 2)
}

func TestDifference(t *testing.T) {
	got := Difference([]float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Difference = %v, want %v", got, want)
		}
	}
	if Difference([]float64{1}) != nil {
		t.Error("short input should give nil")
	}
}
